external now_ns : unit -> int64 = "mps_clock_now_ns"

let ns_to_ms ns = Int64.to_float ns /. 1_000_000.0
let ns_to_us ns = Int64.to_float ns /. 1_000.0
