(** Monotonic wall clock.

    The observability layer ({!Mps_obs.Obs}) timestamps spans with a clock
    that must never jump backwards — [Unix.gettimeofday] can (NTP slews,
    manual clock changes), and [Sys.time] measures CPU seconds, not wall
    time.  This module binds [clock_gettime(CLOCK_MONOTONIC)] directly via
    a one-line C stub, so timestamps are comparable across the domains of
    an {!Mps_exec.Pool} (the kernel clock is system-wide) and differences
    are always non-negative. *)

val now_ns : unit -> int64
(** Nanoseconds on the system monotonic clock.  The origin is arbitrary
    (typically boot time): only differences between two readings are
    meaningful. *)

val ns_to_ms : int64 -> float
(** Convenience: nanoseconds as fractional milliseconds. *)

val ns_to_us : int64 -> float
(** Nanoseconds as fractional microseconds (the unit Chrome trace-event
    JSON uses for [ts]/[dur]). *)
