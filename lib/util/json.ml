type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emitting --- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let render ~sep v =
  let buf = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_into buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf sep;
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf sep;
            escape_into buf k;
            Buffer.add_char buf ':';
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* Traces keep the newline separators for greppability; the serve protocol
   needs one value per line. *)
let to_string v = render ~sep:",\n" v
let to_line v = render ~sep:"," v

(* --- parsing --- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Emitted traces only escape control characters, so plain
                 byte emission covers the round-trip; anything above Latin-1
                 is preserved as '?' rather than rejected. *)
              Buffer.add_char buf
                (if code < 256 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
