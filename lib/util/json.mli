(** Minimal JSON tree, shared by every JSON producer and consumer in the
    repo: the Chrome trace-event files {!Mps_obs.Obs.chrome_trace} emits,
    and the line-delimited request/response protocol of the scheduling
    service ([lib/serve]).

    The emitter ({!to_string}) is what trace writing renders through, so
    every trace the CLI writes is valid by construction; {!to_line} is the
    single-line variant the wire protocol needs; the parser ({!parse}) is
    the round-trip check — [mpsched tracecheck], the serve request reader
    and the test suite all load emitted JSON back through it.  It is a
    strict recursive-descent parser for the JSON subset the emitters
    produce (objects, arrays, strings with escapes, numbers, booleans,
    null); it is not a general standards-lawyer JSON implementation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace except after the
    top-level commas of objects and arrays, for greppability).  Strings are
    escaped per RFC 8259; numbers print through ["%.12g"] with integral
    values rendered without a fractional part. *)

val to_line : t -> string
(** Like {!to_string} but with plain [","] separators — one line whatever
    the value, which is what the line-delimited serve protocol requires
    (a request or response is exactly one ['\n']-terminated line). *)

val parse : string -> (t, string) result
(** Parses one JSON value followed only by whitespace.  [Error] carries a
    byte offset and a reason. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on any other
    constructor. *)
