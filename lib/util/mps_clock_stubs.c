/* Monotonic clock binding for Mps_util.Clock. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value mps_clock_now_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec));
}
