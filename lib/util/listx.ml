let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest
