(** The list helpers the standard library lacks.

    Tiny, total functions shared by the selection strategies and the
    schedulers — each used to carry its own local copy. *)

val take : int -> 'a list -> 'a list
(** [take k l] is the first [k] elements of [l], in order — the whole list
    when it is shorter, [[]] when [k <= 0].  Not tail-recursive; every
    caller takes a capacity-bounded prefix (single digits). *)
