module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Bitset = Mps_util.Bitset

type t = {
  values : int array;
  keys : (int * int * int) array;
  rank : int array;
  s : int;
  t : int;
}

let compute g reach levels =
  let n = Dfg.node_count g in
  let direct = Array.init n (Dfg.out_degree g) in
  let all = Array.init n (fun i -> Bitset.cardinal (Reachability.descendants reach i)) in
  let height = Array.init n (Levels.height levels) in
  let max_all = Array.fold_left max 0 all in
  let t_param = max_all + 1 in
  let max_mix = ref 0 in
  for i = 0 to n - 1 do
    max_mix := max !max_mix ((t_param * direct.(i)) + all.(i))
  done;
  let s_param = !max_mix + 1 in
  let values =
    Array.init n (fun i -> (s_param * height.(i)) + (t_param * direct.(i)) + all.(i))
  in
  let keys = Array.init n (fun i -> (height.(i), direct.(i), all.(i))) in
  (* Precompute each node's position in the global descending priority
     order (value desc, id asc — a total order).  Candidate sorts then
     compare plain ranks instead of recomputing the two-level key. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j -> match compare values.(j) values.(i) with 0 -> compare i j | c -> c)
    order;
  let rank = Array.make n 0 in
  Array.iteri (fun pos i -> rank.(i) <- pos) order;
  { values; keys; rank; s = s_param; t = t_param }

let s_param p = p.s
let t_param p = p.t

let get arr i =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Node_priority: node id %d out of range" i);
  arr.(i)

let value p i = get p.values i
let key p i = get p.keys i
let rank p i = get p.rank i

(* Rank order is exactly (value desc, id asc): comparing ranks gives the
   same total order as the original two-step comparison. *)
let compare_desc p i j = compare (rank p i) (rank p j)
let sort p l = List.sort (compare_desc p) l
let sum_values p l = List.fold_left (fun acc i -> acc + value p i) 0 l
