module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels

(* Time frames under a target length [t_len]: fixed nodes have a one-cycle
   frame; unfixed nodes keep [earliest, alap-stretched-to-t_len]. *)
type frames = { lo : int array; hi : int array }

let compute_frames g levels ~t_len ~cycle_of ~floor_cycle =
  let n = Dfg.node_count g in
  let asap_max = Levels.asap_max levels in
  let stretch = t_len - (asap_max + 1) in
  let lo = Array.make n 0 and hi = Array.make n 0 in
  for i = 0 to n - 1 do
    if cycle_of.(i) >= 0 then begin
      lo.(i) <- cycle_of.(i);
      hi.(i) <- cycle_of.(i)
    end
    else begin
      lo.(i) <- max (Levels.asap levels i) floor_cycle.(i);
      hi.(i) <- Levels.alap levels i + stretch
    end
  done;
  (* Fixed predecessors push unfixed successors' windows forward; propagate
     in topological (id-independent) fashion via repeated relaxation over
     edges — the graph is a DAG, so one pass per level suffices; iterate to
     a fixpoint for simplicity. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Dfg.iter_edges
      (fun p s ->
        if cycle_of.(s) < 0 && lo.(s) < lo.(p) + 1 then begin
          lo.(s) <- lo.(p) + 1;
          changed := true
        end;
        if cycle_of.(p) < 0 && hi.(p) > hi.(s) - 1 then begin
          hi.(p) <- hi.(s) - 1;
          changed := true
        end)
      g
  done;
  { lo; hi }

let distribution g frames ~t_len =
  let dg = Hashtbl.create 8 in
  let get c = match Hashtbl.find_opt dg c with Some a -> a | None ->
    let a = Array.make t_len 0.0 in
    Hashtbl.add dg c a;
    a
  in
  Dfg.iter_nodes
    (fun i ->
      let a = get (Color.to_char (Dfg.color g i)) in
      let lo = frames.lo.(i) and hi = frames.hi.(i) in
      if hi >= lo then begin
        let p = 1.0 /. float_of_int (hi - lo + 1) in
        for c = lo to min hi (t_len - 1) do
          a.(c) <- a.(c) +. p
        done
      end)
    g;
  fun color cycle ->
    match Hashtbl.find_opt dg (Color.to_char color) with
    | Some a when cycle >= 0 && cycle < t_len -> a.(cycle)
    | _ -> 0.0

let self_force g dg frames i cycle =
  let lo = frames.lo.(i) and hi = frames.hi.(i) in
  let color = Dfg.color g i in
  let width = float_of_int (max 1 (hi - lo + 1)) in
  let mean = ref 0.0 in
  for c = lo to hi do
    mean := !mean +. dg color c
  done;
  dg color cycle -. (!mean /. width)

let schedule ?target_cycles ~capacity g =
  if capacity < 1 then invalid_arg "Force_directed.schedule: capacity < 1";
  let n = Dfg.node_count g in
  let levels = Levels.compute g in
  let cp = Levels.lower_bound_cycles levels in
  let t_len0 =
    match target_cycles with
    | None -> cp
    | Some t when t < cp ->
        invalid_arg "Force_directed.schedule: target below critical path"
    | Some t -> t
  in
  let cycle_of = Array.make n (-1) in
  let floor_cycle = Array.make n 0 in
  let unscheduled_preds = Array.init n (Dfg.in_degree g) in
  let scheduled = ref 0 in
  let t_len = ref (max 1 t_len0) in
  let cycle = ref 0 in
  while !scheduled < n do
    let frames = compute_frames g levels ~t_len:!t_len ~cycle_of ~floor_cycle in
    let dg = distribution g frames ~t_len:!t_len in
    let ready =
      List.filter (fun i -> cycle_of.(i) < 0 && unscheduled_preds.(i) = 0) (Dfg.nodes g)
    in
    let here = List.filter (fun i -> frames.lo.(i) <= !cycle) ready in
    let critical = List.filter (fun i -> frames.hi.(i) <= !cycle) here in
    if List.length critical > capacity then
      (* Too many deadline-critical ops for one cycle: relax the target and
         recompute everything (the frames stretch, deadlines move out). *)
      incr t_len
    else begin
      let optional =
        List.filter (fun i -> frames.hi.(i) > !cycle) here
        |> List.map (fun i -> (self_force g dg frames i !cycle, i))
        |> List.sort compare
      in
      let chosen =
        critical
        @ Mps_util.Listx.take (capacity - List.length critical)
            (List.map snd optional)
      in
      List.iter
        (fun i ->
          cycle_of.(i) <- !cycle;
          incr scheduled;
          List.iter
            (fun s ->
              unscheduled_preds.(s) <- unscheduled_preds.(s) - 1;
              floor_cycle.(s) <- max floor_cycle.(s) (!cycle + 1))
            (Dfg.succs g i))
        chosen;
      (* Deferred ready ops may not reappear before the next cycle. *)
      List.iter
        (fun i -> if cycle_of.(i) < 0 then floor_cycle.(i) <- max floor_cycle.(i) (!cycle + 1))
        here;
      incr cycle;
      if !cycle >= !t_len && !scheduled < n then incr t_len
    end
  done;
  Schedule.of_cycles g cycle_of
