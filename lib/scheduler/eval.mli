(** A reusable evaluation context for multi-pattern scheduling (§4, Fig. 3).

    Every search strategy — annealing, beam finalist scoring, portfolio,
    exhaustive, multi-kernel selection — asks the same question thousands of
    times: {e how many cycles does this pattern set cost on this graph?}
    Answering through {!Multi_pattern.schedule} pays for the reachability
    matrix, the ALAP/height levels, the node-priority ranks and the color
    tables on every call, then builds a {!Schedule.t} nobody looks at.

    An [Eval.t] amortizes all of that per graph.  {!make} computes the
    graph analyses once; {!cycles} runs the list-scheduling inner loop on
    dense int arrays (preallocated worklists, in-place candidate
    maintenance, no trace rows, no schedule construction) and memoizes the
    result per pattern set, so re-costing an already-seen set is a hash
    lookup.  {!schedule} is the full-fidelity path over the same context —
    trace rows, release constraints, declared-pattern table — and is what
    {!Multi_pattern.schedule} now wraps, so both paths share one
    implementation of the paper's algorithm and stay byte-identical.

    {2 The memo cache}

    The cache key is the pattern-id {e list} (interned in a private arena
    owned by the context, so [Pattern.t] copies don't matter) plus the
    pattern priority.  Order is part of the key on purpose: list position
    decides score ties in the scheduler, so two orderings of one multiset
    can produce different schedules and must not share an entry.  Hits and
    misses are reported through the
    [eval.cache.hits] / [eval.cache.misses] counters, and a hit {e replays}
    the counter aggregates of the evaluation it skips
    ([schedule.ready]/[schedule.placed]/[schedule.cycles], via
    {!Mps_obs.Obs.merge}), so [--stats] tables are identical whether or not
    a result came from the cache.

    {2 Determinism and [--jobs]}

    A context is a mutable arena (scratch buffers, memo table, private
    pattern arena): use it from one domain at a time.  Parallel phases give
    each pool task its own context — or, like portfolio, collect candidate
    sets in parallel and cost them on one shared context in submission
    order — which keeps every published determinism guarantee: results and
    counter totals are bit-identical for every [--jobs] value. *)

exception Unschedulable of Mps_dfg.Color.t list
(** Raised when candidates remain but no allowed pattern covers any of
    their colors; re-exported as {!Multi_pattern.Unschedulable}. *)

type pattern_priority = F1 | F2
(** Pattern priority: F1 = |S(p̄,CL)| (Eq. 6), F2 = Σ f(n) over the
    selected set (Eq. 7, the paper's refinement and the default). *)

type trace_row = {
  row_cycle : int;  (** 1-based, as in Table 2. *)
  row_candidates : int list;  (** CL sorted by decreasing node priority. *)
  row_selected : (Mps_pattern.Pattern.t * int list) list;
      (** S(p̄, CL) per allowed pattern, in the given pattern order. *)
  row_chosen : int;  (** Index into [row_selected] of the committed pattern. *)
}

type result = {
  schedule : Schedule.t;
  trace : trace_row list;  (** In cycle order; [] unless [trace] was set. *)
}

type t
(** The per-graph evaluation context. *)

val make : ?universe:Mps_pattern.Universe.t -> ?delta:bool -> Mps_dfg.Dfg.t -> t
(** Computes the graph analyses (reachability, levels, node priorities,
    color index) and allocates the scratch buffers once.  [universe], when
    given, plays two roles: {!schedule} hash-conses its patterns through it
    (exactly as {!Multi_pattern.schedule} documents), and {!cycles_ids}
    interprets ids in it.  The context never interns into the caller's
    universe on the fast path — memo keys live in a private arena — so
    sharing a universe across contexts stays safe.

    [delta] (default [false]) makes evaluations record replay data —
    per-cycle candidate color masks plus geometric-stride checkpoints of
    the engine state — so {!cycles_delta} can resume a memoized run
    mid-schedule instead of starting over.  Recording costs an O(n) copy
    per checkpoint and a mask OR per cycle, so it is opt-in: move-loop
    searches (annealing, beam, exact, serve edits) turn it on, one-shot
    costing does not.  On graphs with more than 62 colors the masks do not
    fit a single int and the flag is silently ignored ({!cycles_delta}
    then always takes the full-evaluation fallback). *)

val graph : t -> Mps_dfg.Dfg.t
(** The graph the context was built for. *)

val reachability : t -> Mps_dfg.Reachability.t
val levels : t -> Mps_dfg.Levels.t
val node_priority : t -> Node_priority.t
(** The amortized per-graph analyses, for callers that need them beyond
    scheduling (the context computed them anyway). *)

val cycles :
  ?priority:pattern_priority -> t -> Mps_pattern.Pattern.t list -> int
(** Schedule length of the pattern set on the context's graph — the fast
    path: dense-array list scheduling, memoized per (pattern list,
    priority).  Exactly
    [Schedule.cycles (Multi_pattern.schedule ~patterns g).schedule], with
    the same tie-breaking (earliest pattern in the given order wins equal
    scores).
    @raise Invalid_argument if [patterns] is empty.
    @raise Unschedulable as {!Multi_pattern.schedule} does. *)

val cycles_ids :
  ?priority:pattern_priority -> t -> Mps_pattern.Pattern.Id.t list -> int
(** {!cycles} on ids of the universe passed to {!make} — the zero-copy
    entry point for id-based searches (annealing).
    @raise Invalid_argument if the context was made without a universe or
    [ids] is empty. *)

val cycles_delta :
  ?priority:pattern_priority ->
  ?removed:Mps_pattern.Pattern.t ->
  t ->
  prev:Mps_pattern.Pattern.t list ->
  added:Mps_pattern.Pattern.t ->
  int
(** Cycle count of the set obtained from [prev] by one move — replacing the
    first occurrence of [removed] with [added] (a swap), or appending
    [added] when [removed] is omitted (a grow).  Returns exactly what
    {!cycles} would return on the moved set (same memo key, same cache and
    [schedule.*] counter accounting), but when the context records replay
    data ({!make}'s [delta]) and the [prev] evaluation is memoized, the
    shared prefix — every cycle before the first one where [removed] or
    [added] could select a candidate — is reused and only the suffix is
    replayed from the nearest checkpoint.  [eval.delta.hits] /
    [eval.delta.fallbacks] / [eval.delta.cycles_saved] count reuses,
    full-evaluation fallbacks, and the cycles not re-stepped; they are
    additive on top of the unchanged [eval.cache.*] accounting, so every
    published stream stays byte-identical whether a result came through
    the delta path or the full one.
    @raise Invalid_argument if [prev] is empty or [removed] is given but
    not a member of [prev].
    @raise Unschedulable as {!cycles} does. *)

val cycles_delta_ids :
  ?priority:pattern_priority ->
  ?removed:Mps_pattern.Pattern.Id.t ->
  t ->
  prev:Mps_pattern.Pattern.Id.t list ->
  added:Mps_pattern.Pattern.Id.t ->
  int
(** {!cycles_delta} on ids of the universe passed to {!make} — the
    zero-copy entry point for id-based move loops (annealing swaps, beam
    pool extensions).
    @raise Invalid_argument as {!cycles_delta}, or if the context was made
    without a universe. *)

val schedule :
  ?priority:pattern_priority ->
  ?trace:bool ->
  ?release:int array ->
  t ->
  patterns:Mps_pattern.Pattern.t list ->
  result
(** The full-fidelity scheduler on the shared context: everything
    {!Multi_pattern.schedule} documents (trace rows, [release] idling,
    declared-pattern table, hash-consing through the context's universe).
    Never consults the memo cache — a schedule is as order-sensitive as
    the paper's algorithm, and callers wanting speed use {!cycles}. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the memo cache so far — the same numbers the
    [eval.cache.*] counters report, exposed for tests and benches. *)

val delta_stats : t -> int * int * int
(** [(hits, fallbacks, cycles_saved)] of the delta path so far — the same
    numbers the [eval.delta.*] counters report, exposed for tests and
    benches.  A hit reused a memoized prefix (fully, or up to a
    checkpoint); a fallback ran a full evaluation because the prefix
    condition failed (divergence at cycle 0, unmemoized or unrecorded
    [prev], or a no-op swap of an unmemoized set); [cycles_saved] totals
    the cycles the hits did not re-step. *)
