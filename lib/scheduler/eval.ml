module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Obs = Mps_obs.Obs

exception Unschedulable of Color.t list

type pattern_priority = F1 | F2

type trace_row = {
  row_cycle : int;
  row_candidates : int list;
  row_selected : (Pattern.t * int list) list;
  row_chosen : int;
}

type result = { schedule : Schedule.t; trace : trace_row list }

(* Counter aggregates of one evaluation, memoized with its outcome so a
   cache hit can replay exactly the [schedule.*] counters the evaluation it
   skips would have recorded (partial ones for a failed evaluation: the
   ready-list size of the failing cycle was observed, nothing was placed). *)
type agg = { mutable n : int; mutable sum : int; mutable mn : int; mutable mx : int }

let fresh_agg () = { n = 0; sum = 0; mn = max_int; mx = min_int }
let copy_agg a = { n = a.n; sum = a.sum; mn = a.mn; mx = a.mx }

let agg_add a v =
  a.n <- a.n + 1;
  a.sum <- a.sum + v;
  if v < a.mn then a.mn <- v;
  if v > a.mx then a.mx <- v

type outcome = Cycles of int | Failed of Color.t list

(* A frozen evaluation state at the start of cycle [ck_cycle]: restoring it
   and stepping forward replays the evaluation from that cycle exactly.
   Snapshots are taken at a geometric stride (see [next_ck_cycle]) so the
   suffix replayed by a delta evaluation starts at most ~a third of the run
   above the first divergent cycle. *)
type checkpoint = {
  ck_cycle : int;
  ck_preds : int array;
  ck_cycle_of : int array;
  ck_cand : int array;  (* the live candidate prefix, rank-sorted *)
  ck_scheduled : int;
  ck_ready : agg;
  ck_placed : agg;
}

(* Replay data recorded by delta-enabled contexts: for each dense color
   index, the first attempted cycle (including a failing one) at which a
   candidate of that color existed ([-1] = never), the number of attempted
   cycles, and the checkpoint ladder, ascending by cycle.  A swapped/added
   pattern selects nothing at any cycle before the first occurrence of one
   of its colors, so the minimum of [rp_first] over the moved colors bounds
   the shared prefix — O(ncolors) memory and scan instead of a mask per
   cycle. *)
type replay_data = {
  rp_first : int array;
  rp_len : int;
  rp_cks : checkpoint list;
}

type entry = {
  outcome : outcome;
  ready : agg;
  placed : agg;
  rp : replay_data option;
}

type t = {
  graph : Dfg.t;
  universe : Universe.t option;
  reach : Reachability.t;
  lvls : Levels.t;
  prio : Node_priority.t;
  n : int;
  ncolors : int;
  cidx : int array;  (* color char -> dense index; graph colors only *)
  node_color : int array;
  rank : int array;  (* position in the global descending priority order *)
  value : int array;  (* f(n), the F2 summand *)
  in_deg : int array;
  src : int array;  (* sources, rank-sorted once *)
  delta : bool;  (* record replay data (requires ncolors <= 62) *)
  (* Scratch buffers of the fast path, reused across evaluations. *)
  preds : int array;
  cycle_of : int array;
  mutable cand : int array;
  mutable cand_next : int array;
  freed : int array;
  sel_a : int array;
  sel_b : int array;
  scratch : int array;
  (* Memo cache.  Keys are interned in a private arena so the fast path
     never mutates the caller's universe (which may be shared across
     domains for read-only lookups). *)
  keys : Universe.t;
  xlate : (int, Pattern.Id.t) Hashtbl.t;  (* caller-universe id -> key id *)
  tables : (int, int array * int * int) Hashtbl.t;
      (* key id -> (color table, |p̄|, color mask over dense indices) *)
  cache : (int list, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable d_hits : int;
  mutable d_fallbacks : int;
  mutable d_saved : int;
}

let make ?universe ?(delta = false) g =
  let n = Dfg.node_count g in
  let reach = Reachability.compute g in
  let lvls = Levels.compute g in
  let prio = Node_priority.compute g reach lvls in
  let cidx = Array.make 256 (-1) in
  let ncolors = ref 0 in
  List.iter
    (fun c ->
      let k = Char.code (Color.to_char c) in
      if cidx.(k) < 0 then begin
        cidx.(k) <- !ncolors;
        incr ncolors
      end)
    (Dfg.colors g);
  let node_color =
    Array.init n (fun i -> cidx.(Char.code (Color.to_char (Dfg.color g i))))
  in
  let rank = Array.init n (Node_priority.rank prio) in
  let value = Array.init n (Node_priority.value prio) in
  let src = Array.of_list (Dfg.sources g) in
  Array.sort (fun a b -> compare rank.(a) rank.(b)) src;
  {
    graph = g;
    universe;
    reach;
    lvls;
    prio;
    n;
    ncolors = !ncolors;
    cidx;
    node_color;
    rank;
    value;
    in_deg = Array.init n (Dfg.in_degree g);
    src;
    (* Color masks are single ints, so replay recording needs every dense
       color index to fit one bit; beyond that the delta path always falls
       back to full evaluation. *)
    delta = delta && !ncolors <= 62;
    preds = Array.make n 0;
    cycle_of = Array.make n (-1);
    cand = Array.make n 0;
    cand_next = Array.make n 0;
    freed = Array.make n 0;
    sel_a = Array.make n 0;
    sel_b = Array.make n 0;
    scratch = Array.make !ncolors 0;
    keys = Universe.create ~expected:32 ();
    xlate = Hashtbl.create 32;
    tables = Hashtbl.create 32;
    cache = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    d_hits = 0;
    d_fallbacks = 0;
    d_saved = 0;
  }

let graph t = t.graph
let reachability t = t.reach
let levels t = t.lvls
let node_priority t = t.prio
let cache_stats t = (t.hits, t.misses)
let delta_stats t = (t.d_hits, t.d_fallbacks, t.d_saved)

(* --- fast path --------------------------------------------------------- *)

(* A pattern as a count table over the graph's color indices plus its full
   |p̄| and the bitmask of graph color indices it can absorb.  Colors the
   graph never uses get no slot: they cannot match any candidate, and the
   slot counter still starts at the full size, so the selected-set walk is
   exactly the one over a table indexing them. *)
let table_for t id =
  let key = (Pattern.Id.to_int id : int) in
  match Hashtbl.find_opt t.tables key with
  | Some ts -> ts
  | None ->
      let p = Universe.pattern t.keys id in
      let table = Array.make t.ncolors 0 in
      let mask = ref 0 in
      List.iter
        (fun (c, k) ->
          let ci = t.cidx.(Char.code (Color.to_char c)) in
          if ci >= 0 then begin
            table.(ci) <- k;
            if k > 0 && ci < 62 then mask := !mask lor (1 lsl ci)
          end)
        (Pattern.to_counted_list p);
      let ts = (table, Pattern.size p, !mask) in
      Hashtbl.add t.tables key ts;
      ts

(* Insertion sort of [a.(0..len-1)] by ascending rank — the freed list of a
   cycle is a handful of nodes, far below any threshold where an O(n log n)
   sort would win. *)
let rank_sort rank a len =
  for i = 1 to len - 1 do
    let x = a.(i) in
    let rx = rank.(x) in
    let j = ref (i - 1) in
    while !j >= 0 && rank.(a.(!j)) > rx do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* --- the resumable engine ---------------------------------------------- *)

(* The evaluation state between cycles.  The heavy arrays (preds, cycle_of,
   cand) live in the context's scratch buffers — one evaluation runs at a
   time per context — so a cursor is only the scalar frontier plus the
   counter aggregates, and a checkpoint is the O(n) copy of the arrays. *)
type cursor = {
  mutable cu_ncand : int;
  mutable cu_scheduled : int;
  mutable cu_cycle : int;
  cu_ready : agg;
  cu_placed : agg;
}

let init_cursor t =
  Array.blit t.in_deg 0 t.preds 0 t.n;
  Array.fill t.cycle_of 0 t.n (-1);
  let nsrc = Array.length t.src in
  Array.blit t.src 0 t.cand 0 nsrc;
  {
    cu_ncand = nsrc;
    cu_scheduled = 0;
    cu_cycle = 0;
    cu_ready = fresh_agg ();
    cu_placed = fresh_agg ();
  }

let snapshot t cu =
  {
    ck_cycle = cu.cu_cycle;
    ck_preds = Array.copy t.preds;
    ck_cycle_of = Array.copy t.cycle_of;
    ck_cand = Array.sub t.cand 0 cu.cu_ncand;
    ck_scheduled = cu.cu_scheduled;
    ck_ready = copy_agg cu.cu_ready;
    ck_placed = copy_agg cu.cu_placed;
  }

let restore_cursor t ck =
  Array.blit ck.ck_preds 0 t.preds 0 t.n;
  Array.blit ck.ck_cycle_of 0 t.cycle_of 0 t.n;
  Array.blit ck.ck_cand 0 t.cand 0 (Array.length ck.ck_cand);
  {
    cu_ncand = Array.length ck.ck_cand;
    cu_scheduled = ck.ck_scheduled;
    cu_cycle = ck.ck_cycle;
    cu_ready = copy_agg ck.ck_ready;
    cu_placed = copy_agg ck.ck_placed;
  }

(* Geometric checkpoint stride: 0,1,2,3,4,6,9,13,19,28,42,63,…  Dense at
   the front (short runs and early divergences are the common case on small
   graphs), then 1.5x apart so the whole ladder is O(n log cycles) memory
   and a restore lands within ~a third of the run of the target cycle. *)
let next_ck_cycle c = if c < 4 then c + 1 else c + c / 2

let cand_color_mask t cu =
  let m = ref 0 in
  for k = 0 to cu.cu_ncand - 1 do
    m := !m lor (1 lsl t.node_color.(t.cand.(k)))
  done;
  !m

type step_result = Step_ok | Step_done | Step_stuck of Color.t list

(* One cycle of Fig. 3 on the dense arrays: score S(p̄, CL) for every
   pattern, commit the first best, free successors, merge the rank-sorted
   freed nodes into the surviving candidates.  Equivalent to one iteration
   of the trace/release-free branch of [schedule] below: the candidate
   array is kept rank-sorted, which equals the per-cycle
   [Node_priority.sort] of the list version because ranks are a total
   order and the candidate sets match. *)
let step t tabled ~f1 cu =
  let ncand = cu.cu_ncand in
  agg_add cu.cu_ready ncand;
  (* Keep the first best.  The two selection buffers swap roles so the
     winner so far is never overwritten by the next pattern's walk. *)
  let best_len = ref 0 and best_score = ref min_int in
  let cur = ref t.sel_a and best = ref t.sel_b in
  let rank = t.rank and value = t.value and node_color = t.node_color in
  List.iter
    (fun ((table : int array), size, _mask) ->
      Array.blit table 0 t.scratch 0 t.ncolors;
      let slots = ref size in
      let len = ref 0 in
      let score = ref 0 in
      let k = ref 0 in
      let sel = !cur in
      while !slots > 0 && !k < ncand do
        let i = t.cand.(!k) in
        let c = node_color.(i) in
        if t.scratch.(c) > 0 then begin
          t.scratch.(c) <- t.scratch.(c) - 1;
          decr slots;
          sel.(!len) <- i;
          incr len;
          if not f1 then score := !score + value.(i)
        end;
        incr k
      done;
      let sc = if f1 then !len else !score in
      if sc > !best_score then begin
        best_score := sc;
        best_len := !len;
        let tmp = !cur in
        cur := !best;
        best := tmp
      end)
    tabled;
  if !best_len = 0 then begin
    let cols = ref [] in
    for k = ncand - 1 downto 0 do
      cols := Dfg.color t.graph t.cand.(k) :: !cols
    done;
    Step_stuck (List.sort_uniq Color.compare !cols)
  end
  else begin
    let sel = !best in
    let blen = !best_len in
    agg_add cu.cu_placed blen;
    for k = 0 to blen - 1 do
      t.cycle_of.(sel.(k)) <- cu.cu_cycle
    done;
    let nfreed = ref 0 in
    for k = 0 to blen - 1 do
      List.iter
        (fun s ->
          let d = t.preds.(s) - 1 in
          t.preds.(s) <- d;
          if d = 0 then begin
            t.freed.(!nfreed) <- s;
            incr nfreed
          end)
        (Dfg.succs t.graph sel.(k))
    done;
    rank_sort rank t.freed !nfreed;
    (* Merge the surviving candidates (skipping the just-committed ones)
       with the freed nodes, both rank-sorted, into the spare array. *)
    let out = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < ncand && t.cycle_of.(t.cand.(!i)) >= 0 do
      incr i
    done;
    while !i < ncand && !j < !nfreed do
      let a = t.cand.(!i) and b = t.freed.(!j) in
      if rank.(a) < rank.(b) then begin
        t.cand_next.(!out) <- a;
        incr out;
        incr i;
        while !i < ncand && t.cycle_of.(t.cand.(!i)) >= 0 do
          incr i
        done
      end
      else begin
        t.cand_next.(!out) <- b;
        incr out;
        incr j
      end
    done;
    while !i < ncand do
      t.cand_next.(!out) <- t.cand.(!i);
      incr out;
      incr i;
      while !i < ncand && t.cycle_of.(t.cand.(!i)) >= 0 do
        incr i
      done
    done;
    while !j < !nfreed do
      t.cand_next.(!out) <- t.freed.(!j);
      incr out;
      incr j
    done;
    cu.cu_ncand <- !out;
    let tmp = t.cand in
    t.cand <- t.cand_next;
    t.cand_next <- tmp;
    cu.cu_scheduled <- cu.cu_scheduled + blen;
    cu.cu_cycle <- cu.cu_cycle + 1;
    if cu.cu_scheduled >= t.n then Step_done else Step_ok
  end

(* Run the cursor to completion.  [fs]/[seen]/[cks_rev] arrive holding the
   shared prefix's first-occurrence table (and its color mask) and reversed
   checkpoints when resuming from a checkpoint, and accumulate the rest iff
   the context records replay data; [first_ck] is the next cycle at which
   to snapshot. *)
let run t tabled ~f1 cu ~fs ~seen ~cks_rev ~first_ck =
  let ck_at = ref first_ck in
  let rec go () =
    if cu.cu_scheduled >= t.n then Cycles cu.cu_cycle
    else begin
      if t.delta then begin
        if cu.cu_cycle = !ck_at then begin
          cks_rev := snapshot t cu :: !cks_rev;
          ck_at := next_ck_cycle cu.cu_cycle
        end;
        let m = cand_color_mask t cu in
        let fresh = m land lnot !seen in
        if fresh <> 0 then begin
          for ci = 0 to t.ncolors - 1 do
            if fresh land (1 lsl ci) <> 0 then fs.(ci) <- cu.cu_cycle
          done;
          seen := !seen lor fresh
        end
      end;
      match step t tabled ~f1 cu with
      | Step_stuck colors -> Failed colors
      | Step_ok | Step_done -> go ()
    end
  in
  let outcome = go () in
  let rp =
    if t.delta then
      Some
        {
          rp_first = fs;
          (* A run records an occurrence table entry per attempted cycle:
             cycles 0..c-1 on success, 0..stuck inclusive on failure. *)
          rp_len =
            (match outcome with
            | Cycles c -> c
            | Failed _ -> cu.cu_cycle + 1);
          rp_cks = List.rev !cks_rev;
        }
    else None
  in
  { outcome; ready = cu.cu_ready; placed = cu.cu_placed; rp }

(* One full list-scheduling run from cycle 0. *)
let evaluate t tabled ~f1 =
  run t tabled ~f1 (init_cursor t)
    ~fs:(Array.make t.ncolors (-1))
    ~seen:(ref 0) ~cks_rev:(ref []) ~first_ck:0

let replay e =
  Obs.merge "schedule.ready" Obs.Dist ~samples:e.ready.n ~total:e.ready.sum
    ~vmin:e.ready.mn ~vmax:e.ready.mx;
  Obs.merge "schedule.placed" Obs.Dist ~samples:e.placed.n ~total:e.placed.sum
    ~vmin:e.placed.mn ~vmax:e.placed.mx;
  match e.outcome with
  | Cycles c -> Obs.merge "schedule.cycles" Obs.Sum ~samples:1 ~total:c ~vmin:c ~vmax:c
  | Failed _ -> ()

let finish e =
  match e.outcome with
  | Cycles c -> c
  | Failed colors -> raise (Unschedulable colors)

(* [ids] are key-arena ids, in the caller's pattern order.  The key MUST
   preserve that order: list position decides score ties in the scheduler,
   so two orderings of the same multiset can legitimately produce
   different schedules (harvest:greedy vs variant:raw-count on dct8 — 24
   vs 25 cycles — caught by the auto-selector's identity gate).  An
   earlier revision sorted here and made those orderings collide. *)
let key_of_ids priority ids =
  (match priority with F1 -> 0 | F2 -> 1)
  :: List.map Pattern.Id.to_int ids

let cache_hit t e =
  t.hits <- t.hits + 1;
  Obs.count "eval.cache.hits" 1;
  replay e;
  finish e

let store_and_finish t key e =
  Hashtbl.add t.cache key e;
  replay e;
  finish e

let cycles_keys ?(priority = F2) t ids =
  let key = key_of_ids priority ids in
  match Hashtbl.find_opt t.cache key with
  | Some e -> cache_hit t e
  | None ->
      t.misses <- t.misses + 1;
      Obs.count "eval.cache.misses" 1;
      let tabled = List.map (table_for t) ids in
      let e =
        Obs.span "schedule" (fun () -> evaluate t tabled ~f1:(priority = F1))
      in
      store_and_finish t key e

(* --- delta evaluation --------------------------------------------------- *)

type move = Swap of Pattern.Id.t * Pattern.Id.t | Grow of Pattern.Id.t

(* Cost the set obtained from [prev] by one move, reusing the prefix of the
   memoized [prev] evaluation.  Soundness: a pattern selects nothing at any
   cycle where no candidate carries one of its colors, and an empty
   selection scores the same (0 under F1 and F2) at the same list position
   — the new pattern replaces the removed one in place, a grown pattern
   appends — so up to the first cycle where the removed or added pattern
   could select a node, both runs commit identical sets in identical
   tie-breaking order.  From that cycle the suffix is replayed from the
   nearest earlier checkpoint.  Cache accounting is identical to a plain
   miss (a delta evaluation still evaluates); the [eval.delta.*] counters
   are additive on top. *)
let delta_keys ?(priority = F2) t ~prev move =
  let ids, moved =
    match move with
    | Grow added -> (prev @ [ added ], [ added ])
    | Swap (removed, added) ->
        if Pattern.Id.equal removed added then (prev, [])
        else begin
          let replaced = ref false in
          let ids =
            List.map
              (fun id ->
                if (not !replaced) && Pattern.Id.equal id removed then begin
                  replaced := true;
                  added
                end
                else id)
              prev
          in
          if not !replaced then
            invalid_arg "Eval.cycles_delta: removed pattern not in prev";
          (ids, [ removed; added ])
        end
  in
  let key = key_of_ids priority ids in
  match Hashtbl.find_opt t.cache key with
  | Some e -> cache_hit t e
  | None -> (
      t.misses <- t.misses + 1;
      Obs.count "eval.cache.misses" 1;
      let tabled = List.map (table_for t) ids in
      let f1 = priority = F1 in
      let fallback () =
        t.d_fallbacks <- t.d_fallbacks + 1;
        Obs.count "eval.delta.fallbacks" 1;
        let e = Obs.span "schedule" (fun () -> evaluate t tabled ~f1) in
        store_and_finish t key e
      in
      let prev_entry =
        if moved = [] then None
        else Hashtbl.find_opt t.cache (key_of_ids priority prev)
      in
      match prev_entry with
      | None | Some { rp = None; _ } -> fallback ()
      | Some ({ rp = Some rp; _ } as pe) -> (
          let move_mask =
            List.fold_left
              (fun acc id ->
                let _, _, m = table_for t id in
                acc lor m)
              0 moved
          in
          let len = rp.rp_len in
          (* First divergent cycle: the earliest first-occurrence of any
             moved color ([len] = none ever appeared). *)
          let c = ref len in
          for ci = 0 to t.ncolors - 1 do
            if move_mask land (1 lsl ci) <> 0 then begin
              let f = rp.rp_first.(ci) in
              if f >= 0 && f < !c then c := f
            end
          done;
          if !c >= len then begin
            (* The move is never selectable: the evaluations are identical
               cycle for cycle, so the new key shares the old entry. *)
            t.d_hits <- t.d_hits + 1;
            t.d_saved <- t.d_saved + len;
            Obs.count "eval.delta.hits" 1;
            Obs.count "eval.delta.cycles_saved" len;
            store_and_finish t key pe
          end
          else if !c = 0 then fallback ()
          else
            let ck =
              List.fold_left
                (fun best ck -> if ck.ck_cycle <= !c then Some ck else best)
                None rp.rp_cks
            in
            match ck with
            | None | Some { ck_cycle = 0; _ } ->
                (* Restoring at cycle 0 replays everything: plain fallback.
                   (Unreachable today — a cycle-1 checkpoint exists whenever
                   [!c >= 1 && !c < len] — kept as a safety net.) *)
                fallback ()
            | Some ck ->
                t.d_hits <- t.d_hits + 1;
                t.d_saved <- t.d_saved + ck.ck_cycle;
                Obs.count "eval.delta.hits" 1;
                Obs.count "eval.delta.cycles_saved" ck.ck_cycle;
                (* Shared prefix: first occurrences strictly below the
                   checkpoint cycle (later ones are re-observed during the
                   replay) and every checkpoint at or below it (snapshots
                   are immutable, so sharing them is free). *)
                let fs = Array.make t.ncolors (-1) in
                let seen = ref 0 in
                for ci = 0 to t.ncolors - 1 do
                  let f = rp.rp_first.(ci) in
                  if f >= 0 && f < ck.ck_cycle then begin
                    fs.(ci) <- f;
                    seen := !seen lor (1 lsl ci)
                  end
                done;
                let cks_rev = ref [] in
                List.iter
                  (fun c' ->
                    if c'.ck_cycle <= ck.ck_cycle then cks_rev := c' :: !cks_rev)
                  rp.rp_cks;
                let cu = restore_cursor t ck in
                let e =
                  Obs.span "schedule" (fun () ->
                      run t tabled ~f1 cu ~fs ~seen ~cks_rev
                        ~first_ck:(next_ck_cycle ck.ck_cycle))
                in
                store_and_finish t key e))

let cycles ?priority t patterns =
  if patterns = [] then invalid_arg "Eval.cycles: no patterns";
  cycles_keys ?priority t (List.map (Universe.intern t.keys) patterns)

let cycles_delta ?priority ?removed t ~prev ~added =
  if prev = [] then invalid_arg "Eval.cycles_delta: no patterns";
  let prev_ids = List.map (Universe.intern t.keys) prev in
  let added_id = Universe.intern t.keys added in
  let move =
    match removed with
    | None -> Grow added_id
    | Some r -> Swap (Universe.intern t.keys r, added_id)
  in
  delta_keys ?priority t ~prev:prev_ids move

let kid_of t u id =
  let k = (Pattern.Id.to_int id : int) in
  match Hashtbl.find_opt t.xlate k with
  | Some kid -> kid
  | None ->
      let kid = Universe.intern t.keys (Universe.pattern u id) in
      Hashtbl.add t.xlate k kid;
      kid

let cycles_ids ?priority t ids =
  match t.universe with
  | None -> invalid_arg "Eval.cycles_ids: context made without a universe"
  | Some u ->
      if ids = [] then invalid_arg "Eval.cycles_ids: no patterns";
      cycles_keys ?priority t (List.map (kid_of t u) ids)

let cycles_delta_ids ?priority ?removed t ~prev ~added =
  match t.universe with
  | None -> invalid_arg "Eval.cycles_delta_ids: context made without a universe"
  | Some u ->
      if prev = [] then invalid_arg "Eval.cycles_delta_ids: no patterns";
      let prev_ids = List.map (kid_of t u) prev in
      let added_id = kid_of t u added in
      let move =
        match removed with
        | None -> Grow added_id
        | Some r -> Swap (kid_of t u r, added_id)
      in
      delta_keys ?priority t ~prev:prev_ids move

(* --- full-fidelity path ------------------------------------------------ *)

(* The list scheduler of Fig. 3, verbatim from the original
   [Multi_pattern.schedule] (which now wraps it): list-based candidate
   handling, optional trace rows and release constraints, declared-pattern
   table.  Kept list-shaped on purpose — this path runs once per schedule
   the user actually looks at, and its output is the reference the fast
   path is tested against. *)
let schedule ?(priority = F2) ?(trace = false) ?release t ~patterns =
  if patterns = [] then invalid_arg "Multi_pattern.schedule: no patterns";
  Obs.span "schedule" @@ fun () ->
  (* Hash-cons Pdef through the caller's universe when given: the declared
     pattern of every cycle then shares the arena's canonical copy instead
     of a per-call duplicate. *)
  let patterns =
    match t.universe with
    | None -> patterns
    | Some u ->
        List.map (fun p -> Universe.pattern u (Universe.intern u p)) patterns
  in
  let g = t.graph in
  let n = t.n in
  (match release with
  | Some r when Array.length r <> n ->
      invalid_arg "Multi_pattern.schedule: release array length mismatch"
  | _ -> ());
  let released i c =
    match release with None -> true | Some r -> r.(i) <= c
  in
  let prio = t.prio in
  let node_color = t.node_color in
  let tabled =
    List.map
      (fun p ->
        let table = Array.make t.ncolors 0 in
        List.iter
          (fun (c, k) ->
            let ci = t.cidx.(Char.code (Color.to_char c)) in
            if ci >= 0 then table.(ci) <- k)
          (Pattern.to_counted_list p);
        (p, table, Pattern.size p))
      patterns
  in
  let scratch = t.scratch in
  let selected_set (_, table, size) sorted_cl =
    Array.blit table 0 scratch 0 (Array.length table);
    let slots = ref size in
    let rec go acc = function
      | [] -> List.rev acc
      | _ when !slots = 0 -> List.rev acc
      | i :: rest ->
          let k = node_color.(i) in
          if scratch.(k) > 0 then begin
            scratch.(k) <- scratch.(k) - 1;
            decr slots;
            go (i :: acc) rest
          end
          else go acc rest
    in
    go [] sorted_cl
  in
  let cycle_of = Array.make n (-1) in
  let unscheduled_preds = Array.init n (Dfg.in_degree g) in
  let cl = ref (Dfg.sources g) in
  let rows = ref [] in
  let chosen_patterns = ref [] in
  let cycle = ref 0 in
  let score selected =
    match priority with
    | F1 -> List.length selected
    | F2 -> Node_priority.sum_values prio selected
  in
  while !cl <> [] do
    (* Release-blocked candidates sit out this cycle; if nothing is ready
       the tile idles one cycle (values still in flight on the NoC). *)
    let ready = List.filter (fun i -> released i !cycle) !cl in
    Obs.observe "schedule.ready" (List.length ready);
    if ready = [] then begin
      Obs.count "schedule.idle_cycles" 1;
      chosen_patterns := List.hd patterns :: !chosen_patterns;
      incr cycle
    end
    else begin
      let sorted = Node_priority.sort prio ready in
      let per_pattern =
        List.map (fun ((p, _, _) as tp) -> (p, selected_set tp sorted)) tabled
      in
      (* Single pass keeps the first strictly-best pattern — same
         tie-breaking as before, without indexing back into the list. *)
      let _, best_idx, _, chosen_pattern, chosen_set =
        List.fold_left
          (fun (idx, best_idx, best_score, bp, bsel) (p, sel) ->
            let sc = score sel in
            if sc > best_score then (idx + 1, idx, sc, p, sel)
            else (idx + 1, best_idx, best_score, bp, bsel))
          (0, -1, min_int, Pattern.empty, [])
          per_pattern
      in
      if chosen_set = [] then begin
        let colors =
          List.sort_uniq Color.compare (List.map (Dfg.color g) sorted)
        in
        raise (Unschedulable colors)
      end;
      chosen_patterns := chosen_pattern :: !chosen_patterns;
      Obs.observe "schedule.placed" (List.length chosen_set);
      if trace then
        rows :=
          {
            row_cycle = !cycle + 1;
            row_candidates = sorted;
            row_selected = per_pattern;
            row_chosen = best_idx;
          }
          :: !rows;
      List.iter
        (fun i ->
          cycle_of.(i) <- !cycle;
          List.iter
            (fun s -> unscheduled_preds.(s) <- unscheduled_preds.(s) - 1)
            (Dfg.succs g i))
        chosen_set;
      (* Refill: drop the scheduled nodes, add the newly ready ones.  A node
         freed this cycle becomes a candidate for the next cycle only, which
         the strict per-cycle commit already guarantees. *)
      let remaining = List.filter (fun i -> cycle_of.(i) < 0) !cl in
      let freed =
        List.concat_map
          (fun i ->
            List.filter
              (fun s -> unscheduled_preds.(s) = 0 && cycle_of.(s) < 0)
              (Dfg.succs g i))
          chosen_set
        |> List.sort_uniq Int.compare
      in
      cl := remaining @ freed;
      incr cycle
    end
  done;
  (* Each cycle declares the pattern the algorithm committed, so the
     configuration table of the schedule is exactly the allowed patterns it
     used — what the Montium sequencer would be loaded with. *)
  let declared = Array.of_list (List.rev !chosen_patterns) in
  let schedule = Schedule.of_cycles ~patterns:declared g cycle_of in
  Obs.count "schedule.cycles" !cycle;
  { schedule; trace = List.rev !rows }
