module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Obs = Mps_obs.Obs

exception Unschedulable of Color.t list

type pattern_priority = F1 | F2

type trace_row = {
  row_cycle : int;
  row_candidates : int list;
  row_selected : (Pattern.t * int list) list;
  row_chosen : int;
}

type result = { schedule : Schedule.t; trace : trace_row list }

(* Counter aggregates of one evaluation, memoized with its outcome so a
   cache hit can replay exactly the [schedule.*] counters the evaluation it
   skips would have recorded (partial ones for a failed evaluation: the
   ready-list size of the failing cycle was observed, nothing was placed). *)
type agg = { mutable n : int; mutable sum : int; mutable mn : int; mutable mx : int }

let fresh_agg () = { n = 0; sum = 0; mn = max_int; mx = min_int }

let agg_add a v =
  a.n <- a.n + 1;
  a.sum <- a.sum + v;
  if v < a.mn then a.mn <- v;
  if v > a.mx then a.mx <- v

type outcome = Cycles of int | Failed of Color.t list

type entry = { outcome : outcome; ready : agg; placed : agg }

type t = {
  graph : Dfg.t;
  universe : Universe.t option;
  reach : Reachability.t;
  lvls : Levels.t;
  prio : Node_priority.t;
  n : int;
  ncolors : int;
  cidx : int array;  (* color char -> dense index; graph colors only *)
  node_color : int array;
  rank : int array;  (* position in the global descending priority order *)
  value : int array;  (* f(n), the F2 summand *)
  in_deg : int array;
  src : int array;  (* sources, rank-sorted once *)
  (* Scratch buffers of the fast path, reused across evaluations. *)
  preds : int array;
  cycle_of : int array;
  mutable cand : int array;
  mutable cand_next : int array;
  freed : int array;
  sel_a : int array;
  sel_b : int array;
  scratch : int array;
  (* Memo cache.  Keys are interned in a private arena so the fast path
     never mutates the caller's universe (which may be shared across
     domains for read-only lookups). *)
  keys : Universe.t;
  xlate : (int, Pattern.Id.t) Hashtbl.t;  (* caller-universe id -> key id *)
  tables : (int, int array * int) Hashtbl.t;  (* key id -> (color table, |p̄|) *)
  cache : (int list, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let make ?universe g =
  let n = Dfg.node_count g in
  let reach = Reachability.compute g in
  let lvls = Levels.compute g in
  let prio = Node_priority.compute g reach lvls in
  let cidx = Array.make 256 (-1) in
  let ncolors = ref 0 in
  List.iter
    (fun c ->
      let k = Char.code (Color.to_char c) in
      if cidx.(k) < 0 then begin
        cidx.(k) <- !ncolors;
        incr ncolors
      end)
    (Dfg.colors g);
  let node_color =
    Array.init n (fun i -> cidx.(Char.code (Color.to_char (Dfg.color g i))))
  in
  let rank = Array.init n (Node_priority.rank prio) in
  let value = Array.init n (Node_priority.value prio) in
  let src = Array.of_list (Dfg.sources g) in
  Array.sort (fun a b -> compare rank.(a) rank.(b)) src;
  {
    graph = g;
    universe;
    reach;
    lvls;
    prio;
    n;
    ncolors = !ncolors;
    cidx;
    node_color;
    rank;
    value;
    in_deg = Array.init n (Dfg.in_degree g);
    src;
    preds = Array.make n 0;
    cycle_of = Array.make n (-1);
    cand = Array.make n 0;
    cand_next = Array.make n 0;
    freed = Array.make n 0;
    sel_a = Array.make n 0;
    sel_b = Array.make n 0;
    scratch = Array.make !ncolors 0;
    keys = Universe.create ~expected:32 ();
    xlate = Hashtbl.create 32;
    tables = Hashtbl.create 32;
    cache = Hashtbl.create 64;
    hits = 0;
    misses = 0;
  }

let graph t = t.graph
let reachability t = t.reach
let levels t = t.lvls
let node_priority t = t.prio
let cache_stats t = (t.hits, t.misses)

(* --- fast path --------------------------------------------------------- *)

(* A pattern as a count table over the graph's color indices plus its full
   |p̄|.  Colors the graph never uses get no slot: they cannot match any
   candidate, and the slot counter still starts at the full size, so the
   selected-set walk is exactly the one over a table indexing them. *)
let table_for t id =
  let key = (Pattern.Id.to_int id : int) in
  match Hashtbl.find_opt t.tables key with
  | Some ts -> ts
  | None ->
      let p = Universe.pattern t.keys id in
      let table = Array.make t.ncolors 0 in
      List.iter
        (fun (c, k) ->
          let ci = t.cidx.(Char.code (Color.to_char c)) in
          if ci >= 0 then table.(ci) <- k)
        (Pattern.to_counted_list p);
      let ts = (table, Pattern.size p) in
      Hashtbl.add t.tables key ts;
      ts

(* Insertion sort of [a.(0..len-1)] by ascending rank — the freed list of a
   cycle is a handful of nodes, far below any threshold where an O(n log n)
   sort would win. *)
let rank_sort rank a len =
  for i = 1 to len - 1 do
    let x = a.(i) in
    let rx = rank.(x) in
    let j = ref (i - 1) in
    while !j >= 0 && rank.(a.(!j)) > rx do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* One full list-scheduling run on the dense arrays.  Equivalent to the
   trace/release-free branch of [schedule] below: the candidate array is
   kept rank-sorted (remove committed nodes, merge the rank-sorted freed
   nodes), which equals the per-cycle [Node_priority.sort] of the list
   version because ranks are a total order and the candidate sets match. *)
let evaluate t tabled ~f1 =
  let n = t.n in
  let ready = fresh_agg () and placed = fresh_agg () in
  Array.blit t.in_deg 0 t.preds 0 n;
  Array.fill t.cycle_of 0 n (-1);
  let nsrc = Array.length t.src in
  Array.blit t.src 0 t.cand 0 nsrc;
  let ncand = ref nsrc in
  let scheduled = ref 0 in
  let cycle = ref 0 in
  let rank = t.rank and value = t.value and node_color = t.node_color in
  let outcome = ref None in
  (try
     while !scheduled < n do
       agg_add ready !ncand;
       (* Score S(p̄, CL) for every pattern; keep the first best.  The two
          selection buffers swap roles so the winner so far is never
          overwritten by the next pattern's walk. *)
       let best_len = ref 0 and best_score = ref min_int in
       let cur = ref t.sel_a and best = ref t.sel_b in
       List.iter
         (fun ((table : int array), size) ->
           Array.blit table 0 t.scratch 0 t.ncolors;
           let slots = ref size in
           let len = ref 0 in
           let score = ref 0 in
           let k = ref 0 in
           let m = !ncand in
           let sel = !cur in
           while !slots > 0 && !k < m do
             let i = t.cand.(!k) in
             let c = node_color.(i) in
             if t.scratch.(c) > 0 then begin
               t.scratch.(c) <- t.scratch.(c) - 1;
               decr slots;
               sel.(!len) <- i;
               incr len;
               if not f1 then score := !score + value.(i)
             end;
             incr k
           done;
           let sc = if f1 then !len else !score in
           if sc > !best_score then begin
             best_score := sc;
             best_len := !len;
             let tmp = !cur in
             cur := !best;
             best := tmp
           end)
         tabled;
       if !best_len = 0 then begin
         let cols = ref [] in
         for k = !ncand - 1 downto 0 do
           cols := Dfg.color t.graph t.cand.(k) :: !cols
         done;
         outcome := Some (Failed (List.sort_uniq Color.compare !cols));
         raise Exit
       end;
       let sel = !best in
       let blen = !best_len in
       agg_add placed blen;
       for k = 0 to blen - 1 do
         t.cycle_of.(sel.(k)) <- !cycle
       done;
       let nfreed = ref 0 in
       for k = 0 to blen - 1 do
         List.iter
           (fun s ->
             let d = t.preds.(s) - 1 in
             t.preds.(s) <- d;
             if d = 0 then begin
               t.freed.(!nfreed) <- s;
               incr nfreed
             end)
           (Dfg.succs t.graph sel.(k))
       done;
       scheduled := !scheduled + blen;
       rank_sort rank t.freed !nfreed;
       (* Merge the surviving candidates (skipping the just-committed ones)
          with the freed nodes, both rank-sorted, into the spare array. *)
       let out = ref 0 in
       let i = ref 0 and j = ref 0 in
       let m = !ncand in
       while !i < m && t.cycle_of.(t.cand.(!i)) >= 0 do
         incr i
       done;
       while !i < m && !j < !nfreed do
         let a = t.cand.(!i) and b = t.freed.(!j) in
         if rank.(a) < rank.(b) then begin
           t.cand_next.(!out) <- a;
           incr out;
           incr i;
           while !i < m && t.cycle_of.(t.cand.(!i)) >= 0 do
             incr i
           done
         end
         else begin
           t.cand_next.(!out) <- b;
           incr out;
           incr j
         end
       done;
       while !i < m do
         t.cand_next.(!out) <- t.cand.(!i);
         incr out;
         incr i;
         while !i < m && t.cycle_of.(t.cand.(!i)) >= 0 do
           incr i
         done
       done;
       while !j < !nfreed do
         t.cand_next.(!out) <- t.freed.(!j);
         incr out;
         incr j
       done;
       ncand := !out;
       let tmp = t.cand in
       t.cand <- t.cand_next;
       t.cand_next <- tmp;
       incr cycle
     done;
     outcome := Some (Cycles !cycle)
   with Exit -> ());
  match !outcome with
  | Some o -> { outcome = o; ready; placed }
  | None -> assert false

let replay e =
  Obs.merge "schedule.ready" Obs.Dist ~samples:e.ready.n ~total:e.ready.sum
    ~vmin:e.ready.mn ~vmax:e.ready.mx;
  Obs.merge "schedule.placed" Obs.Dist ~samples:e.placed.n ~total:e.placed.sum
    ~vmin:e.placed.mn ~vmax:e.placed.mx;
  match e.outcome with
  | Cycles c -> Obs.merge "schedule.cycles" Obs.Sum ~samples:1 ~total:c ~vmin:c ~vmax:c
  | Failed _ -> ()

let finish e =
  match e.outcome with
  | Cycles c -> c
  | Failed colors -> raise (Unschedulable colors)

(* [ids] are key-arena ids, in the caller's pattern order (which decides
   score ties exactly as the list scheduler's pattern order does). *)
let cycles_keys ?(priority = F2) t ids =
  let key =
    (match priority with F1 -> 0 | F2 -> 1)
    :: List.sort Int.compare (List.map Pattern.Id.to_int ids)
  in
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      t.hits <- t.hits + 1;
      Obs.count "eval.cache.hits" 1;
      replay e;
      finish e
  | None ->
      t.misses <- t.misses + 1;
      Obs.count "eval.cache.misses" 1;
      let tabled = List.map (table_for t) ids in
      let e =
        Obs.span "schedule" (fun () -> evaluate t tabled ~f1:(priority = F1))
      in
      Hashtbl.add t.cache key e;
      replay e;
      finish e

let cycles ?priority t patterns =
  if patterns = [] then invalid_arg "Eval.cycles: no patterns";
  cycles_keys ?priority t (List.map (Universe.intern t.keys) patterns)

let cycles_ids ?priority t ids =
  match t.universe with
  | None -> invalid_arg "Eval.cycles_ids: context made without a universe"
  | Some u ->
      if ids = [] then invalid_arg "Eval.cycles_ids: no patterns";
      let key_of id =
        let k = (Pattern.Id.to_int id : int) in
        match Hashtbl.find_opt t.xlate k with
        | Some kid -> kid
        | None ->
            let kid = Universe.intern t.keys (Universe.pattern u id) in
            Hashtbl.add t.xlate k kid;
            kid
      in
      cycles_keys ?priority t (List.map key_of ids)

(* --- full-fidelity path ------------------------------------------------ *)

(* The list scheduler of Fig. 3, verbatim from the original
   [Multi_pattern.schedule] (which now wraps it): list-based candidate
   handling, optional trace rows and release constraints, declared-pattern
   table.  Kept list-shaped on purpose — this path runs once per schedule
   the user actually looks at, and its output is the reference the fast
   path is tested against. *)
let schedule ?(priority = F2) ?(trace = false) ?release t ~patterns =
  if patterns = [] then invalid_arg "Multi_pattern.schedule: no patterns";
  Obs.span "schedule" @@ fun () ->
  (* Hash-cons Pdef through the caller's universe when given: the declared
     pattern of every cycle then shares the arena's canonical copy instead
     of a per-call duplicate. *)
  let patterns =
    match t.universe with
    | None -> patterns
    | Some u ->
        List.map (fun p -> Universe.pattern u (Universe.intern u p)) patterns
  in
  let g = t.graph in
  let n = t.n in
  (match release with
  | Some r when Array.length r <> n ->
      invalid_arg "Multi_pattern.schedule: release array length mismatch"
  | _ -> ());
  let released i c =
    match release with None -> true | Some r -> r.(i) <= c
  in
  let prio = t.prio in
  let node_color = t.node_color in
  let tabled =
    List.map
      (fun p ->
        let table = Array.make t.ncolors 0 in
        List.iter
          (fun (c, k) ->
            let ci = t.cidx.(Char.code (Color.to_char c)) in
            if ci >= 0 then table.(ci) <- k)
          (Pattern.to_counted_list p);
        (p, table, Pattern.size p))
      patterns
  in
  let scratch = t.scratch in
  let selected_set (_, table, size) sorted_cl =
    Array.blit table 0 scratch 0 (Array.length table);
    let slots = ref size in
    let rec go acc = function
      | [] -> List.rev acc
      | _ when !slots = 0 -> List.rev acc
      | i :: rest ->
          let k = node_color.(i) in
          if scratch.(k) > 0 then begin
            scratch.(k) <- scratch.(k) - 1;
            decr slots;
            go (i :: acc) rest
          end
          else go acc rest
    in
    go [] sorted_cl
  in
  let cycle_of = Array.make n (-1) in
  let unscheduled_preds = Array.init n (Dfg.in_degree g) in
  let cl = ref (Dfg.sources g) in
  let rows = ref [] in
  let chosen_patterns = ref [] in
  let cycle = ref 0 in
  let score selected =
    match priority with
    | F1 -> List.length selected
    | F2 -> Node_priority.sum_values prio selected
  in
  while !cl <> [] do
    (* Release-blocked candidates sit out this cycle; if nothing is ready
       the tile idles one cycle (values still in flight on the NoC). *)
    let ready = List.filter (fun i -> released i !cycle) !cl in
    Obs.observe "schedule.ready" (List.length ready);
    if ready = [] then begin
      Obs.count "schedule.idle_cycles" 1;
      chosen_patterns := List.hd patterns :: !chosen_patterns;
      incr cycle
    end
    else begin
      let sorted = Node_priority.sort prio ready in
      let per_pattern =
        List.map (fun ((p, _, _) as tp) -> (p, selected_set tp sorted)) tabled
      in
      (* Single pass keeps the first strictly-best pattern — same
         tie-breaking as before, without indexing back into the list. *)
      let _, best_idx, _, chosen_pattern, chosen_set =
        List.fold_left
          (fun (idx, best_idx, best_score, bp, bsel) (p, sel) ->
            let sc = score sel in
            if sc > best_score then (idx + 1, idx, sc, p, sel)
            else (idx + 1, best_idx, best_score, bp, bsel))
          (0, -1, min_int, Pattern.empty, [])
          per_pattern
      in
      if chosen_set = [] then begin
        let colors =
          List.sort_uniq Color.compare (List.map (Dfg.color g) sorted)
        in
        raise (Unschedulable colors)
      end;
      chosen_patterns := chosen_pattern :: !chosen_patterns;
      Obs.observe "schedule.placed" (List.length chosen_set);
      if trace then
        rows :=
          {
            row_cycle = !cycle + 1;
            row_candidates = sorted;
            row_selected = per_pattern;
            row_chosen = best_idx;
          }
          :: !rows;
      List.iter
        (fun i ->
          cycle_of.(i) <- !cycle;
          List.iter
            (fun s -> unscheduled_preds.(s) <- unscheduled_preds.(s) - 1)
            (Dfg.succs g i))
        chosen_set;
      (* Refill: drop the scheduled nodes, add the newly ready ones.  A node
         freed this cycle becomes a candidate for the next cycle only, which
         the strict per-cycle commit already guarantees. *)
      let remaining = List.filter (fun i -> cycle_of.(i) < 0) !cl in
      let freed =
        List.concat_map
          (fun i ->
            List.filter
              (fun s -> unscheduled_preds.(s) = 0 && cycle_of.(s) < 0)
              (Dfg.succs g i))
          chosen_set
        |> List.sort_uniq Int.compare
      in
      cl := remaining @ freed;
      incr cycle
    end
  done;
  (* Each cycle declares the pattern the algorithm committed, so the
     configuration table of the schedule is exactly the allowed patterns it
     used — what the Montium sequencer would be loaded with. *)
  let declared = Array.of_list (List.rev !chosen_patterns) in
  let schedule = Schedule.of_cycles ~patterns:declared g cycle_of in
  Obs.count "schedule.cycles" !cycle;
  { schedule; trace = List.rev !rows }
