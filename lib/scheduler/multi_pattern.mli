(** Multi-pattern list scheduling (paper §4, Fig. 3).

    Given the allowed patterns p̄1…p̄Pdef, repeatedly: sort the candidate
    list by node priority, compute for each pattern the {e selected set}
    S(p̄,CL) it would schedule, score each pattern (F1 = |S|, Eq. 6, or
    F2 = Σ f(n) over S, Eq. 7), commit the best pattern's set to the current
    clock cycle, and refill the candidate list with newly-ready nodes.

    A node is a candidate once all its predecessors are scheduled in
    {e strictly earlier} cycles, so a value is never consumed in the cycle
    that produces it. *)

exception Unschedulable of Mps_dfg.Color.t list
(** Raised when candidates remain but no allowed pattern covers any of their
    colors (the offending colors are reported).  Cannot happen when the
    patterns jointly cover every color of the graph — which the §5
    selection algorithm guarantees by construction.  The same exception as
    {!Eval.Unschedulable} — this module is a full-fidelity wrapper over
    the {!Eval} context. *)

type pattern_priority = Eval.pattern_priority = F1 | F2

type trace_row = Eval.trace_row = {
  row_cycle : int;  (** 1-based, as in Table 2. *)
  row_candidates : int list;  (** CL sorted by decreasing node priority. *)
  row_selected : (Mps_pattern.Pattern.t * int list) list;
      (** S(p̄, CL) per allowed pattern, in the given pattern order. *)
  row_chosen : int;  (** Index into [row_selected] of the committed pattern. *)
}

type result = Eval.result = {
  schedule : Schedule.t;
  trace : trace_row list;  (** In cycle order; [] unless [trace] was set. *)
}

val schedule :
  ?priority:pattern_priority ->
  ?trace:bool ->
  ?release:int array ->
  ?universe:Mps_pattern.Universe.t ->
  patterns:Mps_pattern.Pattern.t list ->
  Mps_dfg.Dfg.t ->
  result
(** [priority] defaults to [F2] (the paper's refinement); [trace] defaults
    to [false].  Ties between patterns keep the earliest pattern in
    [patterns]; ties between equal-priority nodes keep the smaller node id.

    [universe], when given, hash-conses [patterns] through the arena: the
    patterns are interned and the schedule's per-cycle declared patterns
    all share the arena's canonical copies.  Purely a sharing/speed knob —
    the resulting schedule is identical with or without it.

    [release], when given, holds a per-node earliest start cycle (values
    ≤ 0 mean unconstrained) — the hook multi-tile mapping uses for values
    arriving over the network; with no positive entries the behaviour is
    exactly the paper's algorithm.  When every current candidate is
    release-blocked the scheduler idles to the next release (an empty
    cycle running the first pattern).
    @raise Invalid_argument if [patterns] is empty or [release] has the
    wrong length.
    @raise Unschedulable as documented above. *)

val cycles :
  ?priority:pattern_priority ->
  patterns:Mps_pattern.Pattern.t list ->
  Mps_dfg.Dfg.t ->
  int
(** Schedule length only — a one-shot {!Eval.cycles}: the dense fast path,
    no schedule construction.  A search costing many pattern sets on the
    same graph should hold an {!Eval.t} and amortize the analyses. *)

val pp_trace :
  Mps_dfg.Dfg.t -> Format.formatter -> trace_row list -> unit
(** Renders rows in the shape of the paper's Table 2: cycle, candidate
    list, per-pattern selected sets, chosen pattern. *)
