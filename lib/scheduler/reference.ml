module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability

let asap g =
  let lv = Levels.compute g in
  Schedule.of_cycles g (Array.init (Dfg.node_count g) (Levels.asap lv))

let alap g =
  let lv = Levels.compute g in
  Schedule.of_cycles g (Array.init (Dfg.node_count g) (Levels.alap lv))

let greedy_capacity ~capacity g =
  if capacity < 1 then invalid_arg "Reference.greedy_capacity: capacity < 1";
  let n = Dfg.node_count g in
  let reach = Reachability.compute g in
  let levels = Levels.compute g in
  let prio = Node_priority.compute g reach levels in
  let cycle_of = Array.make n (-1) in
  let unscheduled_preds = Array.init n (Dfg.in_degree g) in
  let cl = ref (Dfg.sources g) in
  let cycle = ref 0 in
  while !cl <> [] do
    let sorted = Node_priority.sort prio !cl in
    let chosen = Mps_util.Listx.take capacity sorted in
    List.iter
      (fun i ->
        cycle_of.(i) <- !cycle;
        List.iter
          (fun s -> unscheduled_preds.(s) <- unscheduled_preds.(s) - 1)
          (Dfg.succs g i))
      chosen;
    let remaining = List.filter (fun i -> cycle_of.(i) < 0) !cl in
    let freed =
      List.concat_map
        (fun i ->
          List.filter
            (fun s -> unscheduled_preds.(s) = 0 && cycle_of.(s) < 0)
            (Dfg.succs g i))
        chosen
      |> List.sort_uniq Int.compare
    in
    cl := remaining @ freed;
    incr cycle
  done;
  Schedule.of_cycles g cycle_of
