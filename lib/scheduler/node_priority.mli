(** Node priority function (paper §4.1, equations 4–5).

    f(n) = s·Height(n) + t·#direct_successors(n) + #all_successors(n)

    with s and t large enough (Eq. 5) that the three criteria nest
    lexicographically: largest height first; among equal heights, most
    direct successors; among those, most total successors.  We pick the
    smallest strict witnesses

    t = max #all_successors + 1,
    s = max (t·#direct + #all) + 1,

    which satisfy Eq. 5 and in addition make the comparison exactly the
    lexicographic one (the paper's ≥ allows ties across different height
    triples in degenerate graphs; strictness costs nothing). *)

type t

val compute : Mps_dfg.Dfg.t -> Mps_dfg.Reachability.t -> Mps_dfg.Levels.t -> t

val s_param : t -> int
val t_param : t -> int

val value : t -> int -> int
(** f(n). *)

val key : t -> int -> int * int * int
(** (height, #direct successors, #all successors) — the lexicographic
    reading of f(n). *)

val rank : t -> int -> int
(** The node's position (0-based) in the global descending priority order
    (f(n) desc, node id asc).  Ranks are distinct, so comparing ranks is
    exactly {!compare_desc}. *)

val compare_desc : t -> int -> int -> int
(** Higher priority first; ties broken by increasing node id, making every
    consumer deterministic. *)

val sort : t -> int list -> int list
(** Sorts a candidate list, highest priority first. *)

val sum_values : t -> int list -> int
(** Sum of f(n) over a candidate list — the F2 pattern-priority score. *)
