module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Obs = Mps_obs.Obs

exception Unschedulable of Color.t list

type pattern_priority = F1 | F2

type trace_row = {
  row_cycle : int;
  row_candidates : int list;
  row_selected : (Pattern.t * int list) list;
  row_chosen : int;
}

type result = { schedule : Schedule.t; trace : trace_row list }

let schedule ?(priority = F2) ?(trace = false) ?release ?universe ~patterns g =
  if patterns = [] then invalid_arg "Multi_pattern.schedule: no patterns";
  Obs.span "schedule" @@ fun () ->
  (* Hash-cons Pdef through the caller's universe when given: the declared
     pattern of every cycle then shares the arena's canonical copy instead
     of a per-call duplicate. *)
  let patterns =
    match universe with
    | None -> patterns
    | Some u -> List.map (fun p -> Universe.pattern u (Universe.intern u p)) patterns
  in
  let n = Dfg.node_count g in
  (match release with
  | Some r when Array.length r <> n ->
      invalid_arg "Multi_pattern.schedule: release array length mismatch"
  | _ -> ());
  let released i c =
    match release with None -> true | Some r -> r.(i) <= c
  in
  let reach = Reachability.compute g in
  let levels = Levels.compute g in
  let prio = Node_priority.compute g reach levels in
  (* Dense per-color slot tables.  Every color of the graph or of Pdef gets
     a small index; each pattern becomes a count table over those indices,
     so S(p̄, CL) is a scratch-array walk (with early exit once the
     pattern's slots are exhausted) instead of per-node multiset lookups.
     The walk takes exactly the nodes the multiset version took, in the
     same candidate order. *)
  let cidx = Array.make 256 (-1) in
  let ncolors = ref 0 in
  let index_color c =
    let k = Char.code (Color.to_char c) in
    if cidx.(k) < 0 then begin
      cidx.(k) <- !ncolors;
      incr ncolors
    end
  in
  List.iter index_color (Dfg.colors g);
  List.iter (fun p -> List.iter index_color (Pattern.colors p)) patterns;
  let node_color =
    Array.init n (fun i -> cidx.(Char.code (Color.to_char (Dfg.color g i))))
  in
  let tabled =
    List.map
      (fun p ->
        let table = Array.make !ncolors 0 in
        List.iter
          (fun (c, k) -> table.(cidx.(Char.code (Color.to_char c))) <- k)
          (Pattern.to_counted_list p);
        (p, table, Pattern.size p))
      patterns
  in
  let scratch = Array.make !ncolors 0 in
  let selected_set (_, table, size) sorted_cl =
    Array.blit table 0 scratch 0 (Array.length table);
    let slots = ref size in
    let rec go acc = function
      | [] -> List.rev acc
      | _ when !slots = 0 -> List.rev acc
      | i :: rest ->
          let k = node_color.(i) in
          if scratch.(k) > 0 then begin
            scratch.(k) <- scratch.(k) - 1;
            decr slots;
            go (i :: acc) rest
          end
          else go acc rest
    in
    go [] sorted_cl
  in
  let cycle_of = Array.make n (-1) in
  let unscheduled_preds = Array.init n (Dfg.in_degree g) in
  let cl = ref (Dfg.sources g) in
  let rows = ref [] in
  let chosen_patterns = ref [] in
  let cycle = ref 0 in
  let score selected =
    match priority with
    | F1 -> List.length selected
    | F2 -> Node_priority.sum_values prio selected
  in
  while !cl <> [] do
    (* Release-blocked candidates sit out this cycle; if nothing is ready
       the tile idles one cycle (values still in flight on the NoC). *)
    let ready = List.filter (fun i -> released i !cycle) !cl in
    Obs.observe "schedule.ready" (List.length ready);
    if ready = [] then begin
      Obs.count "schedule.idle_cycles" 1;
      chosen_patterns := List.hd patterns :: !chosen_patterns;
      incr cycle
    end
    else begin
    let sorted = Node_priority.sort prio ready in
    let per_pattern =
      List.map (fun ((p, _, _) as tp) -> (p, selected_set tp sorted)) tabled
    in
    let best_idx, _ =
      List.fold_left
        (fun (best, best_score) (idx, (_, sel)) ->
          let sc = score sel in
          if sc > best_score then (idx, sc) else (best, best_score))
        (-1, min_int)
        (List.mapi (fun i x -> (i, x)) per_pattern)
    in
    let chosen_pattern, chosen_set = List.nth per_pattern best_idx in
    if chosen_set = [] then begin
      let colors =
        List.sort_uniq Color.compare (List.map (Dfg.color g) sorted)
      in
      raise (Unschedulable colors)
    end;
    chosen_patterns := chosen_pattern :: !chosen_patterns;
    Obs.observe "schedule.placed" (List.length chosen_set);
    if trace then
      rows :=
        {
          row_cycle = !cycle + 1;
          row_candidates = sorted;
          row_selected = per_pattern;
          row_chosen = best_idx;
        }
        :: !rows;
    List.iter
      (fun i ->
        cycle_of.(i) <- !cycle;
        List.iter
          (fun s -> unscheduled_preds.(s) <- unscheduled_preds.(s) - 1)
          (Dfg.succs g i))
      chosen_set;
    (* Refill: drop the scheduled nodes, add the newly ready ones.  A node
       freed this cycle becomes a candidate for the next cycle only, which
       the strict per-cycle commit already guarantees. *)
    let remaining = List.filter (fun i -> cycle_of.(i) < 0) !cl in
    let freed =
      List.concat_map
        (fun i ->
          List.filter
            (fun s -> unscheduled_preds.(s) = 0 && cycle_of.(s) < 0)
            (Dfg.succs g i))
        chosen_set
      |> List.sort_uniq Int.compare
    in
    cl := remaining @ freed;
    incr cycle
    end
  done;
  (* Each cycle declares the pattern the algorithm committed, so the
     configuration table of the schedule is exactly the allowed patterns it
     used — what the Montium sequencer would be loaded with. *)
  let declared = Array.of_list (List.rev !chosen_patterns) in
  let schedule = Schedule.of_cycles ~patterns:declared g cycle_of in
  Obs.count "schedule.cycles" !cycle;
  { schedule; trace = List.rev !rows }

let cycles ?priority ~patterns g =
  Schedule.cycles (schedule ?priority ~patterns g).schedule

let pp_names g ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf i -> Format.pp_print_string ppf (Dfg.name g i))
    ppf l

let pp_trace g ppf rows =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "cycle %d@,  candidates: %a@," r.row_cycle (pp_names g)
        r.row_candidates;
      List.iteri
        (fun idx (p, sel) ->
          Format.fprintf ppf "  %s%a: %a@,"
            (if idx = r.row_chosen then "*" else " ")
            Pattern.pp p (pp_names g) sel)
        r.row_selected)
    rows;
  Format.fprintf ppf "@]"
