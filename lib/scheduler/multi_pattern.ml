module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

(* The implementation lives in {!Eval}: one per-graph context carries the
   graph analyses and both the full-fidelity scheduler (this module) and
   the fast memoized cycle counter (the search strategies).  Re-exported
   aliases keep this interface — the paper-facing one — unchanged. *)

exception Unschedulable = Eval.Unschedulable

type pattern_priority = Eval.pattern_priority = F1 | F2

type trace_row = Eval.trace_row = {
  row_cycle : int;
  row_candidates : int list;
  row_selected : (Pattern.t * int list) list;
  row_chosen : int;
}

type result = Eval.result = { schedule : Schedule.t; trace : trace_row list }

let schedule ?priority ?trace ?release ?universe ~patterns g =
  Eval.schedule ?priority ?trace ?release (Eval.make ?universe g) ~patterns

let cycles ?priority ~patterns g =
  if patterns = [] then invalid_arg "Multi_pattern.schedule: no patterns";
  Eval.cycles ?priority (Eval.make g) patterns

let pp_names g ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf i -> Format.pp_print_string ppf (Dfg.name g i))
    ppf l

let pp_trace g ppf rows =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "cycle %d@,  candidates: %a@," r.row_cycle (pp_names g)
        r.row_candidates;
      List.iteri
        (fun idx (p, sel) ->
          Format.fprintf ppf "  %s%a: %a@,"
            (if idx = r.row_chosen then "*" else " ")
            Pattern.pp p (pp_names g) sel)
        r.row_selected)
    rows;
  Format.fprintf ppf "@]"
