(** The service loop: line-delimited requests in, line-delimited
    responses out, warm {!Session} state in between.

    Every ok response is one line of the shape

    {v
    { "id"?: any, "ok": true, "cmd": string, ...command fields...,
      "warm": bool,
      "stats": { "eval_cache": { "hits": int, "misses": int,
                                 "session_hits": int, "session_misses": int } } }
    v}

    where [warm] says the request hit an already-cached classification,
    and [eval_cache] reports the scheduler memo cache {e for this
    request} (the delta) and {e for the session so far} (cumulative) —
    the per-request/per-session split ISSUE'd for [--stats].  Cycle
    counts that are [max_int] (unschedulable) render as [null].  A
    request that fails — unparseable line, unknown graph, invalid
    options, unschedulable pattern set — gets
    {!Protocol.error_response}'s shape, and the session survives to
    serve the next line.

    {2 Batching and determinism}

    {!run} reads up to [batch] lines, parses and resolves their graphs
    in parallel across the session's pool (a pure fan-out through
    {!Core.Pool.map}, results in submission order), then {e executes
    them sequentially in submission order} against the warm session and
    writes the responses in that same order.  Intra-request parallelism
    (classification, exact search, portfolio) uses the pool's
    jobs-deterministic phases, so the full response stream — and every
    counter — is byte-identical for any [--jobs] value.

    Observability: each batch runs under a ["serve.batch"] span
    (observing [serve.batch.size]), each request under a
    ["serve.request"] span, with [serve.requests], [serve.errors],
    [serve.warm] and [serve.cold] counters. *)

val builtins : (string * (unit -> Core.Dfg.t)) list
(** The built-in workload table — the full {!Core.Suite} corpus, in
    corpus order — shared with the CLI's GRAPH argument so the wire
    protocol, the command line and the benches all accept the same
    names. *)

val resolve_source : Protocol.source -> (Core.Dfg.t, string) result
(** A request's graph: built-in lookup, or DFG/DOT text through
    {!Core.Dfg_parse.of_string}.  Pure — safe to fan out. *)

val handle_line : Session.t -> string -> string
(** One request line to one response line (no trailing newline) — the
    whole protocol for callers that do their own transport (tests, the
    bench load generator). *)

val run : ?batch:int -> Session.t -> in_channel -> out_channel -> unit
(** The stdin/stdout service loop described above, until end of input.
    Blank lines are skipped.  [batch] (default 32, clamped to ≥ 1) caps
    how many requests are read ahead for parse fan-out; it never changes
    any response, only pipelining. *)
