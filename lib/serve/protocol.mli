(** The line-delimited JSON protocol of the scheduling service.

    One request is one ['\n']-terminated line holding a single JSON
    object; the response to it is likewise one line.  The grammar:

    {v
    request  = { "id"?: any, "cmd": string, GRAPH?, "edits"?: [EDIT],
                 "options"?: OPTIONS }
    GRAPH    = "graph": string      -- a built-in workload name
             | "dfg": string        -- DFG text ("node ..." / "edge ..." lines)
             | "dot": string        -- the Graphviz DOT subset Dfg_parse accepts
    EDIT     = { "op": "add_node", "node": string, "color": string }
             | { "op": "remove_node", "node": string }
             | { "op": "add_edge", "src": string, "dst": string }
             | { "op": "remove_edge", "src": string, "dst": string }
    OPTIONS  = { "capacity"?: int, "span"?: int, "pdef"?: int,
                 "priority"?: "f1"|"f2", "strategy"?: "eq8"|"auto",
                 "cluster"?: bool, "budget"?: int,
                 "max_nodes"?: int, "patterns"?: [string] }
    v}

    ["id"] is an arbitrary JSON value echoed verbatim in the response, so
    clients can correlate out-of-band.  ["span"] and ["budget"] accept a
    negative value meaning {e unlimited}; omitted options fall back to the
    same defaults the one-shot CLI uses.  [cmd] is one of [select],
    [schedule], [pipeline], [certify], [portfolio], [edit], [stats]; every
    command except [stats] requires exactly one graph field, and [stats]
    takes none.  ["edits"] names nodes by their graph names; it is
    required (non-empty) for [edit] and rejected for every other command,
    and each edit object is decoded as strictly as the request itself —
    unknown keys and unknown ops fail with the request's [id] echoed.

    Responses are built by {!Server}; this module only owns their error
    shape ({!error_response}) and the request codec.  The codec is strict:
    unknown fields are rejected, so a typo fails loudly instead of being
    silently ignored. *)

module Json = Mps_util.Json

type source =
  | Builtin of string  (** A built-in workload name, e.g. ["3dft"]. *)
  | Dfg_text of string  (** Inline DFG text. *)
  | Dot_text of string  (** Inline Graphviz DOT (the accepted subset). *)

type command = Select | Schedule | Pipeline | Certify | Portfolio | Edit | Stats

type edit =
  | Add_node of { node : string; color : string }
      (** Add a fresh node with the given (single-character) color. *)
  | Remove_node of string  (** Remove the node and every incident edge. *)
  | Add_edge of string * string  (** [src -> dst]; both must exist. *)
  | Remove_edge of string * string

val command_to_string : command -> string
val command_of_string : string -> command option

type request = {
  id : Json.t option;  (** Echoed verbatim in the response. *)
  command : command;
  source : source option;  (** [None] only for {!Stats}. *)
  capacity : int option;
  span : int option;  (** Raw wire value: negative means unlimited. *)
  pdef : int option;
  priority : string option;  (** Validated: ["f1"] or ["f2"]. *)
  strategy : string option;
      (** Validated: ["eq8"] (the paper heuristic, the default) or
          ["auto"] (per-graph backend dispatch, [select]/[pipeline]
          only — the session reuses its warm feature vector). *)
  cluster : bool;
  budget : int option;  (** Raw wire value: negative means unlimited. *)
  max_nodes : int option;
  patterns : string list;  (** [schedule] only; [[]] = run selection. *)
  edits : edit list;  (** [edit] only: non-empty iff [command] is {!Edit}. *)
}

val make :
  ?id:Json.t ->
  ?source:source ->
  ?capacity:int ->
  ?span:int ->
  ?pdef:int ->
  ?priority:string ->
  ?strategy:string ->
  ?cluster:bool ->
  ?budget:int ->
  ?max_nodes:int ->
  ?patterns:string list ->
  ?edits:edit list ->
  command ->
  request
(** A request with every unspecified option omitted from the wire. *)

type error = {
  err_id : Json.t option;
      (** The offending request's [id] when one could be recovered, so
          even a rejected request gets a correlatable response. *)
  message : string;
}

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, error) result

val request_to_line : request -> string
(** One line, no trailing newline: [Json.to_line (request_to_json r)]. *)

val request_of_line : string -> (request, error) result
(** Parses one line.  Round-trips with {!request_to_line}:
    [request_of_line (request_to_line r) = Ok r] for every [r] that
    {!request_of_json} accepts. *)

val error_response : id:Json.t option -> string -> Json.t
(** [{"id"?: id, "ok": false, "error": message}] — the response shape for
    a request that failed to parse, resolve or execute. *)
