(** The warm state of a scheduling service: everything worth keeping
    between requests, owned in one place.

    A session holds one {e entry} per distinct graph (keyed by a
    fingerprint of its canonical DFG text).  Each entry amortizes, per
    classification parameter set (capacity, span limit, enumeration
    budget), the expensive artifacts of the one-shot flow:

    - the {b classification} itself — antichain enumeration is the
      dominant cost on every non-trivial graph;
    - the {b pattern universe} it interned into — one universe {e per
      family}, never shared across parameter sets or graphs, so id
      assignment (first-visit enumeration order) is byte-identical to
      what a cold one-shot run produces;
    - a warm {b evaluation context} ({!Mps_scheduler.Eval.t}) over that
      universe, whose memo cache makes repeat set-costing a hash lookup;
    - the exact backend's {b ban list}, keyed by the search family
      (classification parameters + pdef + priority — the fingerprint
      under which {!Mps_select.Exact.search} documents its bans as
      reusable facts), so repeat certifications skip every
      already-costed set.

    Every operation reports whether it ran {e warm} (the classification
    was already cached) — the bit the service surfaces per response and
    counts in its telemetry.

    A session is single-writer mutable state: drive it from one domain.
    Parallelism happens {e inside} operations (classification fan-out,
    exact-search subtrees, portfolio strategies) through the session's
    pool, with the library's jobs-determinism guarantees, so results are
    identical for every pool size including none. *)

type t
type entry

(** Pluggable execution backends — how the expensive operations run, not
    what they compute.  Each hook, when present, replaces the in-process
    call and must return {e exactly} what it would have (the shard
    engine's determinism contract), so the session's caches, warm bits and
    goldens never see the difference.  [mpsched --procs N] plugs the
    process-sharding engine in here; the hooks are plain functions so this
    library does not depend on the shard library. *)
type backends = {
  bk_classify :
    (universe:Core.Universe.t ->
    span_limit:int option ->
    budget:int option ->
    capacity:int ->
    Core.Enumerate.ctx ->
    Core.Classify.t)
    option;  (** Replaces {!Core.Classify.compute}. *)
  bk_portfolio :
    (budget:int option ->
    pdef:int ->
    Core.Classify.t ->
    Core.Portfolio.outcome)
    option;
      (** Replaces {!Core.Portfolio.run}.  [budget] is the enumeration
          budget the classification was computed under (workers rebuild
          the same family from it). *)
  bk_exact :
    (priority:Core.Eval.pattern_priority ->
    pruning:Core.Exact.pruning option ->
    max_nodes:int option ->
    seeds:Core.Pattern.t list list ->
    bans:Core.Exact.ban_entry list ->
    budget:int option ->
    pdef:int ->
    Core.Classify.t ->
    Core.Exact.certificate)
    option;
      (** Replaces {!Core.Exact.search}; [None] sub-options mean the
          search's own defaults. *)
}

val no_backends : backends
(** Every hook absent: the plain in-process session. *)

val create : ?pool:Core.Pool.t -> ?backends:backends -> unit -> t
(** A fresh session.  [pool], when given, is used by every parallel
    phase; its lifetime belongs to the caller.  [backends] defaults to
    {!no_backends}. *)

val pool : t -> Core.Pool.t option
val graph_count : t -> int
val request_count : t -> int

val classification_count : t -> int
(** How many cold classifications the session has ever computed — the
    number {!edit} is designed to keep flat: a warm edit migrates the base
    family instead of classifying the edited graph. *)

val note_request : t -> unit
(** Counts one protocol request against {!request_count}; the server
    calls it once per line, the session never guesses. *)

val intern : t -> Core.Dfg.t -> entry * bool
(** The session's entry for this graph, creating it if new; [true] when
    the graph was already known.  Fingerprinting goes through the
    canonical {!Core.Dfg_parse.to_string} text, so structurally
    identical graphs from different sources share one entry. *)

val graph : entry -> Core.Dfg.t
val fingerprint : entry -> string

val cache_stats : entry -> int * int
(** [(hits, misses)] summed over every evaluation context the entry
    owns. *)

val session_cache_stats : t -> int * int
(** {!cache_stats} summed over all entries, in interning order — the
    session-cumulative numbers [--stats] and the [stats] command
    report. *)

val classification :
  t ->
  entry ->
  capacity:int ->
  span_limit:int option ->
  budget:int option ->
  Core.Classify.t * bool
(** The cached classification for these parameters, computing (and
    caching) it on first use; [true] = cache hit.  Identical to what
    {!Core.Classify.compute} on a fresh universe returns. *)

(** {2 Request-level operations}

    Each mirrors one CLI subcommand exactly — same defaulting, same
    classification parameters, same result — so the one-shot commands
    can be thin clients over a throwaway session.  All take the full
    {!Core.Pipeline.options}; the classification key is derived from its
    [capacity], [span_limit] and [enumeration_budget] fields.  The
    returned bool is the warm bit described above. *)

val select_report :
  t -> entry -> options:Core.Pipeline.options -> Core.Select.report * bool

val auto_select :
  t ->
  entry ->
  options:Core.Pipeline.options ->
  rules:Core.Auto.rules ->
  Core.Auto.outcome * bool
(** The auto-selector on the entry's warm family: the feature vector is
    extracted once per fingerprint (graphs share it across families —
    features depend only on the graph) from the family context's cached
    analyses, and the dispatched backend is costed on the same context.
    The outcome is identical to a cold {!Core.Auto.select} with the same
    rules. *)

val set_cycles :
  t -> entry -> options:Core.Pipeline.options -> Core.Pattern.t list -> int
(** Cycles of a pattern set on the entry's graph, through the family's
    memoizing context ([options.priority] applies).
    @raise Core.Eval.Unschedulable as {!Core.Eval.cycles} does. *)

val schedule :
  t ->
  entry ->
  options:Core.Pipeline.options ->
  ?trace:bool ->
  patterns:Core.Pattern.t list ->
  unit ->
  Core.Pattern.t list * Core.Eval.result * bool
(** With [patterns = []], runs selection first (classifying under the
    options; [options.strategy] decides between the paper heuristic and
    {!auto_select}) and schedules the selected set; otherwise schedules
    the given set on a plain per-entry context exactly as
    {!Core.Multi_pattern.schedule} would.  Returns the patterns actually
    scheduled. *)

val pipeline :
  t -> Core.Dfg.t -> options:Core.Pipeline.options -> Core.Pipeline.t * bool
(** {!Core.Pipeline.run} through the session: clustering (when asked)
    first, then the cached classification, then
    {!Core.Pipeline.run_classified} on the warm context.  Takes the bare
    graph because clustering changes which entry is interned. *)

val portfolio :
  t -> entry -> options:Core.Pipeline.options -> Core.Portfolio.outcome * bool

val exact :
  t ->
  entry ->
  options:Core.Pipeline.options ->
  ?pruning:Core.Exact.pruning ->
  ?max_nodes:int ->
  unit ->
  Core.Exact.certificate * bool
(** {!Core.Exact.search} warm: prior ban entries for this search family
    are passed in, and the newly discovered ones are appended to the
    persistent list afterwards.  The optimal set and cycles are
    identical to a cold search; only the accounting shows the reuse. *)

val certify :
  t ->
  Core.Dfg.t ->
  options:Core.Pipeline.options ->
  ?max_nodes:int ->
  unit ->
  Core.Pipeline.certification * bool
(** {!Core.Pipeline.certify} through the session, with the same ban-list
    reuse as {!exact}.  Takes the bare graph for the same reason as
    {!pipeline}. *)

val apply_edits : Core.Dfg.t -> Protocol.edit list -> Core.Dfg.t
(** The graph after the edits, applied in order by node name and rebuilt
    through {!Core.Dfg.of_alist} (ids reassigned in list order; surviving
    base nodes first, added nodes after, both in original order).
    @raise Failure on a precondition violation (duplicate node, unknown
    name, duplicate or missing edge, self-edge, multi-character color, or
    an empty result).
    @raise Core.Dfg.Cycle if an added edge closes a cycle. *)

val edit :
  t ->
  Core.Dfg.t ->
  options:Core.Pipeline.options ->
  edits:Protocol.edit list ->
  entry * Core.Pattern.t list * bool * Core.Eval.result * bool
(** Online rescheduling: applies the edits to the base graph, interns the
    edited graph under its own fingerprint, and schedules it {e without a
    cold re-classification} — the pattern set selected on the (cached)
    base classification migrates over, with fabricated patterns patching
    any colors the edit left uncovered (capacity colors at a time, the
    Fig. 7 fallback shape).  The migrated set is costed on a
    delta-recording context as a grow chain — each extension a suffix
    replay against the memoized prefix — then scheduled in full fidelity
    for the response rows.  Returns (edited entry, patterns actually
    scheduled, whether coverage was patched, the schedule, warm bit of
    the {e base} family).  Migrated artifacts are cached per (edited
    graph, search family): repeating an edit request is pure cache hits.
    @raise Failure / @raise Core.Dfg.Cycle as {!apply_edits}. *)
