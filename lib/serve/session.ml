module C = Core

(* One classification parameter set's warm artifacts.  The universe lives
   inside [classify]; the eval context shares it, so selection fallbacks
   interned later stay valid for id-based costing. *)
type family = { classify : C.Classify.t; f_eval : C.Eval.t }

type entry = {
  e_graph : C.Dfg.t;
  e_fingerprint : string;
  mutable e_plain : C.Eval.t option;
      (* Context for explicit-pattern scheduling, built without a
         universe exactly like [Multi_pattern.schedule]'s. *)
  e_families : (string, family) Hashtbl.t;
  e_bans : (string, C.Exact.ban_entry list) Hashtbl.t;
  mutable e_evals : C.Eval.t list;  (* Every context owned, newest first. *)
}

type t = {
  s_pool : C.Pool.t option;
  entries : (string, entry) Hashtbl.t;
  mutable entry_list : entry list;  (* Interning order, newest first. *)
  mutable requests : int;
}

let create ?pool () =
  { s_pool = pool; entries = Hashtbl.create 16; entry_list = []; requests = 0 }

let pool t = t.s_pool
let graph_count t = List.length t.entry_list
let request_count t = t.requests
let note_request t = t.requests <- t.requests + 1

let intern t g =
  let key = Digest.to_hex (Digest.string (C.Dfg_parse.to_string g)) in
  match Hashtbl.find_opt t.entries key with
  | Some e -> (e, true)
  | None ->
      let e =
        {
          e_graph = g;
          e_fingerprint = key;
          e_plain = None;
          e_families = Hashtbl.create 4;
          e_bans = Hashtbl.create 4;
          e_evals = [];
        }
      in
      Hashtbl.replace t.entries key e;
      t.entry_list <- e :: t.entry_list;
      (e, false)

let graph e = e.e_graph
let fingerprint e = e.e_fingerprint

let cache_stats e =
  List.fold_left
    (fun (h, m) ev ->
      let h', m' = C.Eval.cache_stats ev in
      (h + h', m + m'))
    (0, 0) e.e_evals

let session_cache_stats t =
  List.fold_left
    (fun (h, m) e ->
      let h', m' = cache_stats e in
      (h + h', m + m'))
    (0, 0) t.entry_list

(* Classification cache key: exactly the parameters Classify.compute sees.
   Selection parameters are deliberately not part of it — selection is
   cheap and runs per request on the cached classification. *)
let cls_key ~capacity ~span_limit ~budget =
  Printf.sprintf "%d/%s/%s" capacity
    (match span_limit with None -> "-" | Some s -> string_of_int s)
    (match budget with None -> "-" | Some b -> string_of_int b)

let family t e ~capacity ~span_limit ~budget =
  let key = cls_key ~capacity ~span_limit ~budget in
  match Hashtbl.find_opt e.e_families key with
  | Some f -> (f, true)
  | None ->
      let universe = C.Universe.create () in
      let classify =
        C.Classify.compute ?pool:t.s_pool ?span_limit ?budget ~capacity
          ~universe
          (C.Enumerate.make_ctx e.e_graph)
      in
      let f_eval = C.Eval.make ~universe e.e_graph in
      let f = { classify; f_eval } in
      Hashtbl.replace e.e_families key f;
      e.e_evals <- f_eval :: e.e_evals;
      (f, false)

let family_of_options t e ~(options : C.Pipeline.options) =
  family t e ~capacity:options.C.Pipeline.capacity
    ~span_limit:options.C.Pipeline.span_limit
    ~budget:options.C.Pipeline.enumeration_budget

let classification t e ~capacity ~span_limit ~budget =
  let f, warm = family t e ~capacity ~span_limit ~budget in
  (f.classify, warm)

let plain_eval e =
  match e.e_plain with
  | Some ev -> ev
  | None ->
      let ev = C.Eval.make e.e_graph in
      e.e_plain <- Some ev;
      e.e_evals <- ev :: e.e_evals;
      ev

(* The exact backend's ban entries are facts only relative to the
   canonical costing order, which the classification parameters, pdef and
   the pattern priority jointly induce — so that tuple is the persistence
   key (see Exact.search's contract). *)
let ban_key ~(options : C.Pipeline.options) =
  Printf.sprintf "%s/%d/%s"
    (cls_key ~capacity:options.C.Pipeline.capacity
       ~span_limit:options.C.Pipeline.span_limit
       ~budget:options.C.Pipeline.enumeration_budget)
    options.C.Pipeline.pdef
    (match options.C.Pipeline.priority with
    | C.Multi_pattern.F1 -> "f1"
    | C.Multi_pattern.F2 -> "f2")

let prior_bans e key =
  Option.value (Hashtbl.find_opt e.e_bans key) ~default:[]

let select_report t e ~options =
  let f, warm = family_of_options t e ~options in
  ( C.Select.select_report ~params:options.C.Pipeline.selection
      ~pdef:options.C.Pipeline.pdef f.classify,
    warm )

let set_cycles t e ~options patterns =
  let f, _ = family_of_options t e ~options in
  C.Eval.cycles ~priority:options.C.Pipeline.priority f.f_eval patterns

let schedule t e ~options ?(trace = false) ~patterns () =
  match patterns with
  | [] ->
      let f, warm = family_of_options t e ~options in
      let pats =
        C.Select.select ~params:options.C.Pipeline.selection
          ~pdef:options.C.Pipeline.pdef f.classify
      in
      let r =
        C.Eval.schedule ~priority:options.C.Pipeline.priority ~trace f.f_eval
          ~patterns:pats
      in
      (pats, r, warm)
  | pats ->
      let warm = e.e_plain <> None in
      let r =
        C.Eval.schedule ~priority:options.C.Pipeline.priority ~trace
          (plain_eval e) ~patterns:pats
      in
      (pats, r, warm)

let pipeline t dfg ~options =
  let clustering =
    if options.C.Pipeline.cluster then
      Some (C.Obs.span "cluster" (fun () -> C.Cluster.mac dfg))
    else None
  in
  let graph =
    match clustering with Some c -> c.C.Cluster.clustered | None -> dfg
  in
  let e, _ = intern t graph in
  let f, warm = family_of_options t e ~options in
  let r =
    C.Pipeline.run_classified ~options ?clustering ~eval:f.f_eval f.classify
  in
  (r, warm)

let portfolio t e ~options =
  let f, warm = family_of_options t e ~options in
  (C.Portfolio.run ?pool:t.s_pool ~pdef:options.C.Pipeline.pdef f.classify, warm)

let exact t e ~options ?pruning ?max_nodes () =
  let f, warm = family_of_options t e ~options in
  let key = ban_key ~options in
  let prior = prior_bans e key in
  let ct =
    C.Exact.search ?pool:t.s_pool ~priority:options.C.Pipeline.priority
      ?pruning ?max_nodes ~bans:prior ~pdef:options.C.Pipeline.pdef f.classify
  in
  Hashtbl.replace e.e_bans key (prior @ ct.C.Exact.bans);
  (ct, warm)

let certify t dfg ~options ?max_nodes () =
  let graph =
    if options.C.Pipeline.cluster then (C.Cluster.mac dfg).C.Cluster.clustered
    else dfg
  in
  let e, _ = intern t graph in
  let f, warm = family_of_options t e ~options in
  let key = ban_key ~options in
  let prior = prior_bans e key in
  let cert =
    C.Pipeline.certify_classified ?pool:t.s_pool ~options ?max_nodes
      ~bans:prior f.classify
  in
  Hashtbl.replace e.e_bans key (prior @ cert.C.Pipeline.exact.C.Exact.bans);
  (cert, warm)
