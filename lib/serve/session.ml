module C = Core

(* One classification parameter set's warm artifacts.  The universe lives
   inside [classify]; the eval context shares it, so selection fallbacks
   interned later stay valid for id-based costing. *)
type family = { classify : C.Classify.t; f_eval : C.Eval.t }

type entry = {
  e_graph : C.Dfg.t;
  e_fingerprint : string;
  mutable e_plain : C.Eval.t option;
      (* Context for explicit-pattern scheduling, built without a
         universe exactly like [Multi_pattern.schedule]'s. *)
  e_families : (string, family) Hashtbl.t;
  e_bans : (string, C.Exact.ban_entry list) Hashtbl.t;
  (* Families migrated onto this entry by [edit] instead of classified:
     the patched pattern set, whether coverage needed patching, and the
     delta-enabled costing context — keyed like ban lists (classification
     parameters + pdef + priority decide the selection being migrated). *)
  e_migrated : (string, C.Pattern.t list * bool * C.Eval.t) Hashtbl.t;
  mutable e_evals : C.Eval.t list;  (* Every context owned, newest first. *)
  (* The auto-selector's feature vector depends only on the graph, so it
     is cached once per fingerprint and shared by every family. *)
  mutable e_features : C.Features.t option;
}

(* Pluggable execution backends: how the expensive operations run, not
   what they compute.  Every hook must return exactly what the in-process
   call it replaces would (the shard engine's contract), so caching,
   goldens and the warm bits are oblivious to which backend ran. *)
type backends = {
  bk_classify :
    (universe:C.Universe.t ->
    span_limit:int option ->
    budget:int option ->
    capacity:int ->
    C.Enumerate.ctx ->
    C.Classify.t)
    option;
  bk_portfolio :
    (budget:int option -> pdef:int -> C.Classify.t -> C.Portfolio.outcome)
    option;
  bk_exact :
    (priority:C.Eval.pattern_priority ->
    pruning:C.Exact.pruning option ->
    max_nodes:int option ->
    seeds:C.Pattern.t list list ->
    bans:C.Exact.ban_entry list ->
    budget:int option ->
    pdef:int ->
    C.Classify.t ->
    C.Exact.certificate)
    option;
}

let no_backends = { bk_classify = None; bk_portfolio = None; bk_exact = None }

type t = {
  s_pool : C.Pool.t option;
  s_backends : backends;
  entries : (string, entry) Hashtbl.t;
  mutable entry_list : entry list;  (* Interning order, newest first. *)
  mutable requests : int;
  mutable s_classifications : int;  (* Cold classifications ever computed. *)
}

let create ?pool ?(backends = no_backends) () =
  {
    s_pool = pool;
    s_backends = backends;
    entries = Hashtbl.create 16;
    entry_list = [];
    requests = 0;
    s_classifications = 0;
  }

let pool t = t.s_pool
let graph_count t = List.length t.entry_list
let request_count t = t.requests
let note_request t = t.requests <- t.requests + 1
let classification_count t = t.s_classifications

let intern t g =
  let key = Digest.to_hex (Digest.string (C.Dfg_parse.to_string g)) in
  match Hashtbl.find_opt t.entries key with
  | Some e -> (e, true)
  | None ->
      let e =
        {
          e_graph = g;
          e_fingerprint = key;
          e_plain = None;
          e_families = Hashtbl.create 4;
          e_bans = Hashtbl.create 4;
          e_migrated = Hashtbl.create 4;
          e_evals = [];
          e_features = None;
        }
      in
      Hashtbl.replace t.entries key e;
      t.entry_list <- e :: t.entry_list;
      (e, false)

let graph e = e.e_graph
let fingerprint e = e.e_fingerprint

let cache_stats e =
  List.fold_left
    (fun (h, m) ev ->
      let h', m' = C.Eval.cache_stats ev in
      (h + h', m + m'))
    (0, 0) e.e_evals

let session_cache_stats t =
  List.fold_left
    (fun (h, m) e ->
      let h', m' = cache_stats e in
      (h + h', m + m'))
    (0, 0) t.entry_list

(* Classification cache key: exactly the parameters Classify.compute sees.
   Selection parameters are deliberately not part of it — selection is
   cheap and runs per request on the cached classification. *)
let cls_key ~capacity ~span_limit ~budget =
  Printf.sprintf "%d/%s/%s" capacity
    (match span_limit with None -> "-" | Some s -> string_of_int s)
    (match budget with None -> "-" | Some b -> string_of_int b)

let family t e ~capacity ~span_limit ~budget =
  let key = cls_key ~capacity ~span_limit ~budget in
  match Hashtbl.find_opt e.e_families key with
  | Some f -> (f, true)
  | None ->
      t.s_classifications <- t.s_classifications + 1;
      let universe = C.Universe.create () in
      let ctx = C.Enumerate.make_ctx e.e_graph in
      let classify =
        match t.s_backends.bk_classify with
        | Some f -> f ~universe ~span_limit ~budget ~capacity ctx
        | None ->
            C.Classify.compute ?pool:t.s_pool ?span_limit ?budget ~capacity
              ~universe ctx
      in
      let f_eval = C.Eval.make ~universe e.e_graph in
      let f = { classify; f_eval } in
      Hashtbl.replace e.e_families key f;
      e.e_evals <- f_eval :: e.e_evals;
      (f, false)

let family_of_options t e ~(options : C.Pipeline.options) =
  family t e ~capacity:options.C.Pipeline.capacity
    ~span_limit:options.C.Pipeline.span_limit
    ~budget:options.C.Pipeline.enumeration_budget

let classification t e ~capacity ~span_limit ~budget =
  let f, warm = family t e ~capacity ~span_limit ~budget in
  (f.classify, warm)

let plain_eval e =
  match e.e_plain with
  | Some ev -> ev
  | None ->
      let ev = C.Eval.make e.e_graph in
      e.e_plain <- Some ev;
      e.e_evals <- ev :: e.e_evals;
      ev

(* The exact backend's ban entries are facts only relative to the
   canonical costing order, which the classification parameters, pdef and
   the pattern priority jointly induce — so that tuple is the persistence
   key (see Exact.search's contract). *)
let ban_key ~(options : C.Pipeline.options) =
  Printf.sprintf "%s/%d/%s"
    (cls_key ~capacity:options.C.Pipeline.capacity
       ~span_limit:options.C.Pipeline.span_limit
       ~budget:options.C.Pipeline.enumeration_budget)
    options.C.Pipeline.pdef
    (match options.C.Pipeline.priority with
    | C.Multi_pattern.F1 -> "f1"
    | C.Multi_pattern.F2 -> "f2")

let prior_bans e key =
  Option.value (Hashtbl.find_opt e.e_bans key) ~default:[]

let select_report t e ~options =
  let f, warm = family_of_options t e ~options in
  ( C.Select.select_report ~params:options.C.Pipeline.selection
      ~pdef:options.C.Pipeline.pdef f.classify,
    warm )

(* Warm per-graph feature vector: extracted once per fingerprint,
   reusing a family context's analyses when a family already exists. *)
let features e ~eval =
  match e.e_features with
  | Some fv -> fv
  | None ->
      let fv =
        match eval with
        | Some ev ->
            C.Features.extract_with ~levels:(C.Eval.levels ev)
              ~reachability:(C.Eval.reachability ev) e.e_graph
        | None -> C.Features.extract e.e_graph
      in
      e.e_features <- Some fv;
      fv

let auto_select t e ~options ~rules =
  let f, warm = family_of_options t e ~options in
  let fv = features e ~eval:(Some f.f_eval) in
  ( C.Auto.select ~rules ~features:fv ~eval:f.f_eval
      ~pdef:options.C.Pipeline.pdef f.classify,
    warm )

let set_cycles t e ~options patterns =
  let f, _ = family_of_options t e ~options in
  C.Eval.cycles ~priority:options.C.Pipeline.priority f.f_eval patterns

let schedule t e ~options ?(trace = false) ~patterns () =
  match patterns with
  | [] ->
      let f, warm = family_of_options t e ~options in
      let pats =
        match options.C.Pipeline.strategy with
        | C.Auto.Paper ->
            C.Select.select ~params:options.C.Pipeline.selection
              ~pdef:options.C.Pipeline.pdef f.classify
        | C.Auto.Auto rules ->
            let outcome, _ = auto_select t e ~options ~rules in
            outcome.C.Auto.patterns
      in
      let r =
        C.Eval.schedule ~priority:options.C.Pipeline.priority ~trace f.f_eval
          ~patterns:pats
      in
      (pats, r, warm)
  | pats ->
      let warm = e.e_plain <> None in
      let r =
        C.Eval.schedule ~priority:options.C.Pipeline.priority ~trace
          (plain_eval e) ~patterns:pats
      in
      (pats, r, warm)

let pipeline t dfg ~options =
  let clustering =
    if options.C.Pipeline.cluster then
      Some (C.Obs.span "cluster" (fun () -> C.Cluster.mac dfg))
    else None
  in
  let graph =
    match clustering with Some c -> c.C.Cluster.clustered | None -> dfg
  in
  let e, _ = intern t graph in
  let f, warm = family_of_options t e ~options in
  let fv =
    match options.C.Pipeline.strategy with
    | C.Auto.Paper -> None
    | C.Auto.Auto _ -> Some (features e ~eval:(Some f.f_eval))
  in
  let r =
    C.Pipeline.run_classified ~options ?clustering ~eval:f.f_eval ?features:fv
      f.classify
  in
  (r, warm)

let portfolio t e ~options =
  let f, warm = family_of_options t e ~options in
  let outcome =
    match t.s_backends.bk_portfolio with
    | Some run ->
        run ~budget:options.C.Pipeline.enumeration_budget
          ~pdef:options.C.Pipeline.pdef f.classify
    | None ->
        C.Portfolio.run ?pool:t.s_pool ~pdef:options.C.Pipeline.pdef f.classify
  in
  (outcome, warm)

let exact t e ~options ?pruning ?max_nodes () =
  let f, warm = family_of_options t e ~options in
  let key = ban_key ~options in
  let prior = prior_bans e key in
  let ct =
    match t.s_backends.bk_exact with
    | Some search ->
        search ~priority:options.C.Pipeline.priority ~pruning ~max_nodes
          ~seeds:[] ~bans:prior
          ~budget:options.C.Pipeline.enumeration_budget
          ~pdef:options.C.Pipeline.pdef f.classify
    | None ->
        C.Exact.search ?pool:t.s_pool ~priority:options.C.Pipeline.priority
          ?pruning ?max_nodes ~bans:prior ~pdef:options.C.Pipeline.pdef
          f.classify
  in
  Hashtbl.replace e.e_bans key (prior @ ct.C.Exact.bans);
  (ct, warm)

let certify t dfg ~options ?max_nodes () =
  let graph =
    if options.C.Pipeline.cluster then (C.Cluster.mac dfg).C.Cluster.clustered
    else dfg
  in
  let e, _ = intern t graph in
  let f, warm = family_of_options t e ~options in
  let key = ban_key ~options in
  let prior = prior_bans e key in
  let search =
    match t.s_backends.bk_exact with
    | None -> None
    | Some run ->
        Some
          (fun ~seeds classify ->
            run ~priority:options.C.Pipeline.priority ~pruning:None ~max_nodes
              ~seeds ~bans:prior
              ~budget:options.C.Pipeline.enumeration_budget
              ~pdef:options.C.Pipeline.pdef classify)
  in
  let cert =
    C.Pipeline.certify_classified ?pool:t.s_pool ?search ~options ?max_nodes
      ~bans:prior f.classify
  in
  Hashtbl.replace e.e_bans key (prior @ cert.C.Pipeline.exact.C.Exact.bans);
  (cert, warm)

(* ---- online rescheduling ---- *)

(* Name-based graph surgery: rebuild through [Dfg.of_alist] so node ids are
   reassigned canonically (list order) and cycles are rejected at build
   time.  Every precondition failure is a [Failure] with the offending
   name, which the server reports as a normal request error. *)
let apply_edits g edits =
  let nodes0 =
    List.map (fun i -> (C.Dfg.name g i, C.Dfg.color g i)) (C.Dfg.nodes g)
  in
  let edges0 =
    List.map (fun (a, b) -> (C.Dfg.name g a, C.Dfg.name g b)) (C.Dfg.edges g)
  in
  let has_node nodes n = List.exists (fun (m, _) -> String.equal m n) nodes in
  let has_edge edges a b =
    List.exists (fun (x, y) -> String.equal x a && String.equal y b) edges
  in
  let apply (nodes, edges) = function
    | Protocol.Add_node { node; color } ->
        if has_node nodes node then
          failwith (Printf.sprintf "edit: node %S already exists" node);
        if String.length color <> 1 then
          failwith
            (Printf.sprintf "edit: color %S must be a single character" color);
        (nodes @ [ (node, C.Color.of_char color.[0]) ], edges)
    | Protocol.Remove_node n ->
        if not (has_node nodes n) then
          failwith (Printf.sprintf "edit: unknown node %S" n);
        ( List.filter (fun (m, _) -> not (String.equal m n)) nodes,
          List.filter
            (fun (a, b) -> not (String.equal a n || String.equal b n))
            edges )
    | Protocol.Add_edge (a, b) ->
        if not (has_node nodes a) then
          failwith (Printf.sprintf "edit: unknown node %S" a);
        if not (has_node nodes b) then
          failwith (Printf.sprintf "edit: unknown node %S" b);
        if String.equal a b then
          failwith (Printf.sprintf "edit: self-edge on %S" a);
        if has_edge edges a b then
          failwith (Printf.sprintf "edit: edge %s -> %s already exists" a b);
        (nodes, edges @ [ (a, b) ])
    | Protocol.Remove_edge (a, b) ->
        if not (has_edge edges a b) then
          failwith (Printf.sprintf "edit: no edge %s -> %s" a b);
        ( nodes,
          List.filter
            (fun (x, y) -> not (String.equal x a && String.equal y b))
            edges )
  in
  let nodes, edges = List.fold_left apply (nodes0, edges0) edits in
  if nodes = [] then failwith "edit: the edited graph has no nodes";
  C.Dfg.of_alist nodes edges

let edit t dfg ~options ~edits =
  let e_base, _ = intern t dfg in
  let f, warm = family_of_options t e_base ~options in
  let g' = apply_edits dfg edits in
  let e', _ = intern t g' in
  let key = ban_key ~options in
  let pats, patched, ev =
    match Hashtbl.find_opt e'.e_migrated key with
    | Some m -> m
    | None ->
        (* Migrate the base family instead of re-classifying the edited
           graph: the selection computed on the cached base classification
           carries over, and colors the edit introduced (or uncovered) are
           patched with fabricated patterns — the same shape as Fig. 7's
           coverage fallback, capacity colors at a time. *)
        let selected =
          C.Select.select ~params:options.C.Pipeline.selection
            ~pdef:options.C.Pipeline.pdef f.classify
        in
        let covered =
          List.fold_left
            (fun acc p -> C.Color.Set.union acc (C.Pattern.color_set p))
            C.Color.Set.empty selected
        in
        let missing =
          List.filter
            (fun c -> not (C.Color.Set.mem c covered))
            (C.Dfg.colors g')
        in
        let capacity = options.C.Pipeline.capacity in
        let rec chunk = function
          | [] -> []
          | cs ->
              let rec split k = function
                | x :: tl when k > 0 ->
                    let a, b = split (k - 1) tl in
                    (x :: a, b)
                | rest -> ([], rest)
              in
              let head, rest = split capacity cs in
              C.Pattern.of_colors head :: chunk rest
        in
        let fabricated = chunk missing in
        let pats = selected @ fabricated in
        let ev = C.Eval.make ~delta:true g' in
        e'.e_evals <- ev :: e'.e_evals;
        let m = (pats, fabricated <> [], ev) in
        Hashtbl.replace e'.e_migrated key m;
        m
  in
  (* Cost the migrated set as a grow chain so every extension is a delta
     move against the memoized prefix: the first costing of an edited
     graph exercises the suffix-replay machinery, a repeat request is all
     cache hits.  Intermediate prefixes may not cover every color yet —
     their Unschedulable is expected and ignored; the full set covers all
     colors by construction, so the final evaluation cannot fail. *)
  let priority = options.C.Pipeline.priority in
  (match pats with
  | [] -> failwith "edit: no patterns to migrate"
  | first :: rest ->
      (try ignore (C.Eval.cycles ~priority ev [ first ])
       with C.Eval.Unschedulable _ -> ());
      ignore
        (List.fold_left
           (fun prev p ->
             (try ignore (C.Eval.cycles_delta ~priority ev ~prev ~added:p)
              with C.Eval.Unschedulable _ -> ());
             prev @ [ p ])
           [ first ] rest));
  let result = C.Eval.schedule ~priority ev ~patterns:pats in
  (e', pats, patched, result, warm)
