module C = Core
module Json = Mps_util.Json
module P = Protocol
module Obs = C.Obs

(* Built-in graph names are the workload corpus ({!Core.Suite}): the same
   names the selector was fit on and the benches quote. *)
let builtins =
  List.map
    (fun (e : C.Suite.entry) -> (e.C.Suite.name, e.C.Suite.build))
    (C.Suite.corpus ~full:true ~huge:true ())

let resolve_source = function
  | P.Builtin name -> (
      match C.Suite.find name with
      | Some e -> Ok (e.C.Suite.build ())
      | None ->
          Error
            (Printf.sprintf "unknown built-in graph %S (have: %s)" name
               (String.concat ", "
                  (List.map
                     (fun (e : C.Suite.entry) -> e.C.Suite.name)
                     (C.Suite.corpus ~full:true ~huge:true ())))))
  | P.Dfg_text text | P.Dot_text text -> (
      match C.Dfg_parse.of_string text with
      | g -> Ok g
      | exception C.Dfg_parse.Parse_error { line; message } ->
          Error (Printf.sprintf "graph text line %d: %s" line message)
      | exception C.Dfg.Cycle names ->
          Error ("graph has a cycle: " ^ String.concat " -> " names))

(* ---- request options -> pipeline options ---- *)

(* Negative span/budget on the wire mean unlimited; omitted fields take
   the same defaults the one-shot subcommands use — which includes the
   per-command enumeration-budget convention: the phase commands
   (select/schedule/portfolio) classify unbudgeted, the end-to-end ones
   (pipeline/certify) under the default budget. *)
let options_of_request (r : P.request) =
  let d = C.Pipeline.default_options in
  let default_budget =
    match r.P.command with
    | P.Pipeline | P.Certify -> d.C.Pipeline.enumeration_budget
    | _ -> None
  in
  {
    d with
    C.Pipeline.capacity = Option.value r.P.capacity ~default:d.C.Pipeline.capacity;
    pdef = Option.value r.P.pdef ~default:d.C.Pipeline.pdef;
    span_limit =
      (match r.P.span with
      | Some s when s < 0 -> None
      | Some s -> Some s
      | None -> d.C.Pipeline.span_limit);
    enumeration_budget =
      (match r.P.budget with
      | Some b when b < 0 -> None
      | Some b -> Some b
      | None -> default_budget);
    priority =
      (match r.P.priority with
      | Some "f1" -> C.Multi_pattern.F1
      | Some "f2" -> C.Multi_pattern.F2
      | _ -> d.C.Pipeline.priority);
    strategy =
      (* The codec already rejected anything but "eq8"/"auto", so a parse
         failure here is unreachable; fall back to the default strategy. *)
      (match r.P.strategy with
      | None -> d.C.Pipeline.strategy
      | Some s -> (
          match C.Auto.strategy_of_string s with
          | Ok st -> st
          | Error _ -> d.C.Pipeline.strategy));
    cluster = r.P.cluster;
  }

(* ---- response building ---- *)

let num n = Json.Num (float_of_int n)
let cycles_json n = if n = max_int then Json.Null else num n
let pattern_json p = Json.Str (C.Pattern.to_string p)
let patterns_json ps = Json.Arr (List.map pattern_json ps)

let schedule_json g s =
  let n = C.Schedule.cycles s in
  let rows =
    List.init n (fun c ->
        Json.Arr
          (List.map
             (fun i -> Json.Str (C.Dfg.name g i))
             (C.Schedule.nodes_at s c)))
  in
  let row_patterns =
    List.init n (fun c -> pattern_json (C.Schedule.pattern_at s c))
  in
  [
    ("cycles", num n);
    ("rows", Json.Arr rows);
    ("row_patterns", Json.Arr row_patterns);
  ]

let steps_json (report : C.Select.report) =
  Json.Arr
    (List.map
       (fun (st : C.Select.step) ->
         Json.Obj
           [
             ("pattern", pattern_json st.C.Select.chosen);
             ("priority", Json.Num st.C.Select.priority);
             ("fallback", Json.Bool st.C.Select.fallback);
           ])
       report.C.Select.steps)

(* The auto-selector's decision evidence: which backend, which rule fired
   (index + its fit provenance), and the feature vector it read. *)
let auto_json (o : C.Auto.outcome) =
  ( "auto",
    Json.Obj
      [
        ("backend", Json.Str o.C.Auto.backend);
        ("rule", num o.C.Auto.rule_index);
        ("provenance", Json.Str o.C.Auto.rule.C.Auto.provenance);
        ("features", C.Features.to_json o.C.Auto.features);
      ] )

let certificate_json (ct : C.Exact.certificate) =
  let s = ct.C.Exact.stats in
  [
    ( "exact",
      Json.Obj
        [
          ("patterns", patterns_json ct.C.Exact.optimal);
          ("cycles", cycles_json ct.C.Exact.optimal_cycles);
          ("proven", Json.Bool ct.C.Exact.proven);
        ] );
    ( "search",
      Json.Obj
        [
          ("visited", num s.C.Exact.nodes_visited);
          ("evaluated", num s.C.Exact.evaluated);
          ( "pruned",
            Json.Obj
              [
                ("span", num s.C.Exact.pruned_span);
                ("color", num s.C.Exact.pruned_color);
                ("ban", num s.C.Exact.pruned_ban);
                ("dominance", num s.C.Exact.pruned_dominance);
              ] );
          ("new_bans", num (List.length ct.C.Exact.bans));
        ] );
  ]

(* ---- execution ---- *)

type prepared = (P.request * C.Dfg.t option, P.error) result

let prepare line : prepared =
  match P.request_of_line line with
  | Error _ as e -> e
  | Ok r -> (
      match r.P.source with
      | None -> Ok (r, None)
      | Some s -> (
          match resolve_source s with
          | Ok g -> Ok (r, Some g)
          | Error m -> Error { P.err_id = r.P.id; message = m }))

let describe_exn = function
  | C.Eval.Unschedulable colors ->
      "patterns cannot cover colors: "
      ^ String.concat ", " (List.map C.Color.to_string colors)
  | C.Dfg.Cycle names ->
      "edit closes a cycle: " ^ String.concat " -> " names
  | Invalid_argument m | Failure m -> m
  | exn -> Printexc.to_string exn

(* The command body: list of response fields plus the warm bit. *)
let run_command sess (r : P.request) g =
  let options = options_of_request r in
  let entry () =
    match g with
    | Some g -> fst (Session.intern sess g)
    | None -> assert false (* the protocol guarantees a graph *)
  in
  match r.P.command with
  | P.Stats -> assert false (* handled by [execute] *)
  | P.Select -> (
      let e = entry () in
      match options.C.Pipeline.strategy with
      | C.Auto.Paper ->
          let report, warm = Session.select_report sess e ~options in
          let cycles =
            match
              Session.set_cycles sess e ~options report.C.Select.patterns
            with
            | c -> c
            | exception C.Eval.Unschedulable _ -> max_int
          in
          ( [
              ("patterns", patterns_json report.C.Select.patterns);
              ("steps", steps_json report);
              ("cycles", cycles_json cycles);
            ],
            warm )
      | C.Auto.Auto rules ->
          let o, warm = Session.auto_select sess e ~options ~rules in
          ( [
              ("patterns", patterns_json o.C.Auto.patterns);
              ("cycles", cycles_json o.C.Auto.cycles);
              auto_json o;
            ],
            warm ))
  | P.Schedule ->
      let e = entry () in
      let pats =
        List.map (C.Pattern.of_string ~capacity:options.C.Pipeline.capacity)
          r.P.patterns
      in
      let pats, res, warm =
        Session.schedule sess e ~options ~patterns:pats ()
      in
      ( ("patterns", patterns_json pats)
        :: schedule_json (Session.graph e) res.C.Eval.schedule,
        warm )
  | P.Pipeline ->
      let t, warm = Session.pipeline sess (Option.get g) ~options in
      ( (match t.C.Pipeline.auto with
        | Some o -> [ auto_json o ]
        | None -> [])
        @ [
          ("patterns", patterns_json t.C.Pipeline.patterns);
          ("pattern_pool", num t.C.Pipeline.pattern_pool);
          ("antichains", num t.C.Pipeline.antichains);
          ("truncated", Json.Bool t.C.Pipeline.truncated);
          ( "config",
            Json.Obj
              [
                ( "table_size",
                  num t.C.Pipeline.config.C.Config_space.table_size );
                ("fits", Json.Bool t.C.Pipeline.config.C.Config_space.fits);
              ] );
        ]
        @ schedule_json t.C.Pipeline.graph t.C.Pipeline.schedule,
        warm )
  | P.Certify ->
      let max_nodes = r.P.max_nodes in
      let cert, warm =
        Session.certify sess (Option.get g) ~options ?max_nodes ()
      in
      ( [
          ( "heuristic",
            Json.Obj
              [
                ("patterns", patterns_json cert.C.Pipeline.heuristic);
                ("cycles", cycles_json cert.C.Pipeline.heuristic_cycles);
              ] );
          ("gap_percent", Json.Num cert.C.Pipeline.gap_percent);
        ]
        @ certificate_json cert.C.Pipeline.exact,
        warm )
  | P.Edit ->
      Obs.count "serve.edit" 1;
      let e', pats, patched, res, warm =
        Session.edit sess (Option.get g) ~options ~edits:r.P.edits
      in
      let g' = Session.graph e' in
      ( [
          ("fingerprint", Json.Str (Session.fingerprint e'));
          ("patterns", patterns_json pats);
          ("patched", Json.Bool patched);
          ("dfg", Json.Str (C.Dfg_parse.to_string g'));
        ]
        @ schedule_json g' res.C.Eval.schedule,
        warm )
  | P.Portfolio ->
      let e = entry () in
      let o, warm = Session.portfolio sess e ~options in
      ( [
          ("winner", Json.Str o.C.Portfolio.best.C.Portfolio.strategy);
          ("cycles", cycles_json o.C.Portfolio.best.C.Portfolio.cycles);
          ( "entries",
            Json.Arr
              (List.map
                 (fun (en : C.Portfolio.entry) ->
                   Json.Obj
                     [
                       ("strategy", Json.Str en.C.Portfolio.strategy);
                       ("patterns", patterns_json en.C.Portfolio.patterns);
                       ("cycles", cycles_json en.C.Portfolio.cycles);
                     ])
                 o.C.Portfolio.all) );
        ],
        warm )

let ok_response ~id ~cmd fields =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("ok", Json.Bool true); ("cmd", Json.Str cmd) ]
    @ fields)

let cache_stats_json ~request:(dh, dm) ~session:(sh, sm) =
  ( "stats",
    Json.Obj
      [
        ( "eval_cache",
          Json.Obj
            [
              ("hits", num dh);
              ("misses", num dm);
              ("session_hits", num sh);
              ("session_misses", num sm);
            ] );
      ] )

let execute sess (p : prepared) =
  Obs.span "serve.request" @@ fun () ->
  Session.note_request sess;
  Obs.count "serve.requests" 1;
  match p with
  | Error e ->
      Obs.count "serve.errors" 1;
      P.error_response ~id:e.P.err_id e.P.message
  | Ok (r, _) when r.P.command = P.Stats ->
      let sh, sm = Session.session_cache_stats sess in
      ok_response ~id:r.P.id ~cmd:"stats"
        [
          ("requests", num (Session.request_count sess));
          ("graphs", num (Session.graph_count sess));
          ( "eval_cache",
            Json.Obj [ ("hits", num sh); ("misses", num sm) ] );
        ]
  | Ok (r, g) -> (
      let before = Session.session_cache_stats sess in
      match run_command sess r g with
      | fields, warm ->
          Obs.count (if warm then "serve.warm" else "serve.cold") 1;
          let sh, sm = Session.session_cache_stats sess in
          let request = (sh - fst before, sm - snd before) in
          ok_response ~id:r.P.id ~cmd:(P.command_to_string r.P.command)
            (fields
            @ [
                ("warm", Json.Bool warm);
                cache_stats_json ~request ~session:(sh, sm);
              ])
      | exception exn ->
          Obs.count "serve.errors" 1;
          P.error_response ~id:r.P.id (describe_exn exn))

let handle_line sess line = Json.to_line (execute sess (prepare line))

let default_batch = 32

let run ?(batch = default_batch) sess ic oc =
  let batch = max 1 batch in
  (* Read up to [batch] non-blank lines; blank lines are transport noise
     (trailing newlines, manual testing), not requests. *)
  let rec read_batch acc n =
    if n = 0 then List.rev acc
    else
      match input_line ic with
      | line ->
          if String.trim line = "" then read_batch acc n
          else read_batch (line :: acc) (n - 1)
      | exception End_of_file -> List.rev acc
  in
  let process lines =
    Obs.span "serve.batch" @@ fun () ->
    Obs.observe "serve.batch.size" (List.length lines);
    (* Parsing and graph resolution are pure, so they fan out; execution
       mutates the warm session, so it runs sequentially in submission
       order — which is exactly what keeps the response stream and every
       counter byte-identical at any pool size. *)
    let prepared =
      match Session.pool sess with
      | Some pool when List.length lines > 1 ->
          C.Pool.map pool ~f:prepare lines
      | _ -> List.map prepare lines
    in
    List.iter
      (fun p ->
        output_string oc (Json.to_line (execute sess p));
        output_char oc '\n')
      prepared;
    flush oc
  in
  let rec loop () =
    match read_batch [] batch with
    | [] -> ()
    | lines ->
        process lines;
        loop ()
  in
  loop ()
