module Json = Mps_util.Json

type source = Builtin of string | Dfg_text of string | Dot_text of string
type command = Select | Schedule | Pipeline | Certify | Portfolio | Edit | Stats

type edit =
  | Add_node of { node : string; color : string }
  | Remove_node of string
  | Add_edge of string * string
  | Remove_edge of string * string

let command_to_string = function
  | Select -> "select"
  | Schedule -> "schedule"
  | Pipeline -> "pipeline"
  | Certify -> "certify"
  | Portfolio -> "portfolio"
  | Edit -> "edit"
  | Stats -> "stats"

let command_of_string = function
  | "select" -> Some Select
  | "schedule" -> Some Schedule
  | "pipeline" -> Some Pipeline
  | "certify" -> Some Certify
  | "portfolio" -> Some Portfolio
  | "edit" -> Some Edit
  | "stats" -> Some Stats
  | _ -> None

type request = {
  id : Json.t option;
  command : command;
  source : source option;
  capacity : int option;
  span : int option;
  pdef : int option;
  priority : string option;
  strategy : string option;
  cluster : bool;
  budget : int option;
  max_nodes : int option;
  patterns : string list;
  edits : edit list;
}

let make ?id ?source ?capacity ?span ?pdef ?priority ?strategy
    ?(cluster = false) ?budget ?max_nodes ?(patterns = []) ?(edits = [])
    command =
  {
    id;
    command;
    source;
    capacity;
    span;
    pdef;
    priority;
    strategy;
    cluster;
    budget;
    max_nodes;
    patterns;
    edits;
  }

type error = { err_id : Json.t option; message : string }

let num n = Json.Num (float_of_int n)

let request_to_json r =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  (match r.id with Some id -> add "id" id | None -> ());
  add "cmd" (Json.Str (command_to_string r.command));
  (match r.source with
  | Some (Builtin n) -> add "graph" (Json.Str n)
  | Some (Dfg_text t) -> add "dfg" (Json.Str t)
  | Some (Dot_text t) -> add "dot" (Json.Str t)
  | None -> ());
  if r.edits <> [] then
    add "edits"
      (Json.Arr
         (List.map
            (fun e ->
              Json.Obj
                (match e with
                | Add_node { node; color } ->
                    [
                      ("op", Json.Str "add_node");
                      ("node", Json.Str node);
                      ("color", Json.Str color);
                    ]
                | Remove_node n ->
                    [ ("op", Json.Str "remove_node"); ("node", Json.Str n) ]
                | Add_edge (s, d) ->
                    [
                      ("op", Json.Str "add_edge");
                      ("src", Json.Str s);
                      ("dst", Json.Str d);
                    ]
                | Remove_edge (s, d) ->
                    [
                      ("op", Json.Str "remove_edge");
                      ("src", Json.Str s);
                      ("dst", Json.Str d);
                    ]))
            r.edits));
  let opts = ref [] in
  let addo k v = opts := (k, v) :: !opts in
  (match r.capacity with Some c -> addo "capacity" (num c) | None -> ());
  (match r.span with Some s -> addo "span" (num s) | None -> ());
  (match r.pdef with Some p -> addo "pdef" (num p) | None -> ());
  (match r.priority with Some p -> addo "priority" (Json.Str p) | None -> ());
  (match r.strategy with Some s -> addo "strategy" (Json.Str s) | None -> ());
  if r.cluster then addo "cluster" (Json.Bool true);
  (match r.budget with Some b -> addo "budget" (num b) | None -> ());
  (match r.max_nodes with Some m -> addo "max_nodes" (num m) | None -> ());
  if r.patterns <> [] then
    addo "patterns" (Json.Arr (List.map (fun s -> Json.Str s) r.patterns));
  if !opts <> [] then add "options" (Json.Obj (List.rev !opts));
  Json.Obj (List.rev !fields)

(* Strict decoding: the wire shape is small enough that rejecting unknown
   keys costs nothing and turns every typo into a clear error instead of a
   silently-defaulted option. *)

let as_int what = function
  | Json.Num f when Float.is_integer f && Float.abs f <= 1e15 ->
      Ok (int_of_float f)
  | _ -> Error (what ^ " must be an integer")

let as_string what = function
  | Json.Str s -> Ok s
  | _ -> Error (what ^ " must be a string")

let ( let* ) = Result.bind

let opt_field what as_ty fields key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some v ->
      let* x = as_ty what v in
      Ok (Some x)

let request_of_json j =
  match j with
  | Json.Obj fields ->
      let id = List.assoc_opt "id" fields in
      let fail m = Error { err_id = id; message = m } in
      let lift = function Ok x -> Ok x | Error m -> fail m in
      let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
      let* () =
        match
          List.find_opt
            (fun (k, _) ->
              not
                (List.mem k
                   [ "id"; "cmd"; "graph"; "dfg"; "dot"; "options"; "edits" ]))
            fields
        with
        | Some (k, _) -> fail (Printf.sprintf "unknown request field %S" k)
        | None -> Ok ()
      in
      let* command =
        match List.assoc_opt "cmd" fields with
        | None -> fail "missing \"cmd\""
        | Some (Json.Str s) -> (
            match command_of_string s with
            | Some c -> Ok c
            | None -> fail (Printf.sprintf "unknown command %S" s))
        | Some _ -> fail "\"cmd\" must be a string"
      in
      let* source =
        let named =
          List.filter_map
            (fun (key, wrap) ->
              match List.assoc_opt key fields with
              | Some v -> Some (key, wrap, v)
              | None -> None)
            [
              ("graph", fun s -> Builtin s);
              ("dfg", fun s -> Dfg_text s);
              ("dot", fun s -> Dot_text s);
            ]
        in
        match (named, command) with
        | [], Stats -> Ok None
        | [], _ ->
            fail "request needs a graph (\"graph\", \"dfg\" or \"dot\")"
        | _ :: _, Stats -> fail "\"stats\" takes no graph"
        | [ (key, wrap, v) ], _ ->
            let* s = lift (as_string (Printf.sprintf "%S" key) v) in
            Ok (Some (wrap s))
        | _ :: _ :: _, _ ->
            fail "give exactly one of \"graph\", \"dfg\", \"dot\""
      in
      (* Edit operations: each is a strict little object — an "op" tag plus
         exactly the keys that op takes, same rejection discipline as the
         request itself. *)
      let edit_of_json j =
        match j with
        | Json.Obj o -> (
            let str key op =
              match List.assoc_opt key o with
              | Some (Json.Str s) -> Ok s
              | Some _ ->
                  fail (Printf.sprintf "edit %S: %S must be a string" op key)
              | None -> fail (Printf.sprintf "edit %S needs %S" op key)
            in
            let only op keys =
              match
                List.find_opt (fun (k, _) -> not (List.mem k keys)) o
              with
              | Some (k, _) ->
                  fail (Printf.sprintf "edit %S: unknown key %S" op k)
              | None -> Ok ()
            in
            let* op = str "op" "edit" in
            match op with
            | "add_node" ->
                let* () = only op [ "op"; "node"; "color" ] in
                let* node = str "node" op in
                let* color = str "color" op in
                Ok (Add_node { node; color })
            | "remove_node" ->
                let* () = only op [ "op"; "node" ] in
                let* node = str "node" op in
                Ok (Remove_node node)
            | "add_edge" | "remove_edge" ->
                let* () = only op [ "op"; "src"; "dst" ] in
                let* src = str "src" op in
                let* dst = str "dst" op in
                Ok
                  (if op = "add_edge" then Add_edge (src, dst)
                   else Remove_edge (src, dst))
            | other -> fail (Printf.sprintf "unknown edit op %S" other))
        | _ -> fail "each edit must be a JSON object"
      in
      let* edits =
        match List.assoc_opt "edits" fields with
        | None -> Ok []
        | Some (Json.Arr items) ->
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* e = edit_of_json v in
                Ok (e :: acc))
              (Ok []) items
            |> fun r -> ( let* ) r (fun l -> Ok (List.rev l))
        | Some _ -> fail "\"edits\" must be an array of edit objects"
      in
      let* () =
        match (command, edits) with
        | Edit, [] -> fail "\"edit\" needs a non-empty \"edits\" array"
        | Edit, _ :: _ -> Ok ()
        | _, _ :: _ -> fail "\"edits\" is only valid with cmd \"edit\""
        | _, [] -> Ok ()
      in
      let* opts =
        match List.assoc_opt "options" fields with
        | None -> Ok []
        | Some (Json.Obj o) -> Ok o
        | Some _ -> fail "\"options\" must be an object"
      in
      let known =
        [
          "capacity"; "span"; "pdef"; "priority"; "strategy"; "cluster";
          "budget"; "max_nodes"; "patterns";
        ]
      in
      let* () =
        match List.find_opt (fun (k, _) -> not (List.mem k known)) opts with
        | Some (k, _) -> fail (Printf.sprintf "unknown option %S" k)
        | None -> Ok ()
      in
      let int_opt key = lift (opt_field (Printf.sprintf "%S" key) as_int opts key) in
      let* capacity = int_opt "capacity" in
      let* span = int_opt "span" in
      let* pdef = int_opt "pdef" in
      let* budget = int_opt "budget" in
      let* max_nodes = int_opt "max_nodes" in
      let* priority =
        let* p =
          lift (opt_field "\"priority\"" as_string opts "priority")
        in
        match p with
        | None | Some "f1" | Some "f2" -> Ok p
        | Some other ->
            fail (Printf.sprintf "priority must be \"f1\" or \"f2\", not %S" other)
      in
      let* strategy =
        let* s = lift (opt_field "\"strategy\"" as_string opts "strategy") in
        match s with
        | None | Some "eq8" | Some "auto" -> Ok s
        | Some other ->
            fail
              (Printf.sprintf "strategy must be \"eq8\" or \"auto\", not %S"
                 other)
      in
      let* cluster =
        match List.assoc_opt "cluster" opts with
        | None -> Ok false
        | Some (Json.Bool b) -> Ok b
        | Some _ -> fail "\"cluster\" must be a boolean"
      in
      let* patterns =
        match List.assoc_opt "patterns" opts with
        | None -> Ok []
        | Some (Json.Arr items) ->
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* s = lift (as_string "\"patterns\" element" v) in
                Ok (s :: acc))
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> fail "\"patterns\" must be an array of strings"
      in
      Ok
        {
          id;
          command;
          source;
          capacity;
          span;
          pdef;
          priority;
          strategy;
          cluster;
          budget;
          max_nodes;
          patterns;
          edits;
        }
  | _ -> Error { err_id = None; message = "request must be a JSON object" }

let request_to_line r = Json.to_line (request_to_json r)

let request_of_line line =
  match Json.parse line with
  | Ok j -> request_of_json j
  | Error m -> Error { err_id = None; message = "bad JSON: " ^ m }

let error_response ~id message =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("ok", Json.Bool false); ("error", Json.Str message) ])
