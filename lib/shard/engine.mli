(** The sharding engine: library operations fanned out over a worker fleet.

    One engine owns one {!Fleet} and exposes the operations [mpsched
    --procs N] shards: antichain counting, classification, the portfolio,
    and the exact branch-and-bound.  Each op broadcasts the instance state
    (the {e family}: graph + classification parameters; for exact, also
    the {e plan}) once — fingerprinted on the wire line, so repeat calls
    on the same instance broadcast nothing — then distributes fixed-layout
    task chunks and merges results in submission order.

    {2 Determinism}

    The chunk layout depends only on the instance (node count, strategy
    registry, candidate pool) — never on the fleet size — and the fan-in
    is submission-ordered, so every result, counter and certificate is
    byte-identical for every [--procs] value, and identical to the
    in-process [--jobs] paths.  Counters emitted by workers replay into
    the coordinator's collector in submission order; the engine adds
    [shard.tasks], [shard.inits], [shard.classify.chunks] and
    [shard.exact.batches], all procs-invariant by construction.

    A crashed or misbehaving worker raises {!Fleet.Worker_failed} after
    the whole fleet is killed — never a hang. *)

type t

val create : procs:int -> argv:string array -> t
(** Spawns the fleet; [argv] is the worker command line (e.g.
    [[|exe; "worker"|]]).  @raise Invalid_argument when [procs < 1]. *)

val procs : t -> int
val shutdown : t -> unit

val with_engine : procs:int -> argv:string array -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], killing the fleet on exceptions. *)

val count :
  t -> ?span_limit:int -> max_size:int -> Core.Enumerate.ctx -> int
(** Sharded {!Core.Enumerate.count}: root ranges fan out, chunk counts
    sum.  Runs under an ["enumerate"] span. *)

val classify :
  t ->
  ?universe:Core.Universe.t ->
  ?span_limit:int ->
  ?budget:int ->
  capacity:int ->
  Core.Enumerate.ctx ->
  Core.Classify.t
(** Sharded {!Core.Classify.compute}: chunk buckets merge through
    {!Core.Classify.of_buckets} in root order, reproducing the sequential
    classification bit for bit (including universe id assignment).  With a
    [budget] the sharded walk is optimistic: when any chunk alone, or the
    chunks' sum, exceeds it, the canonical budgeted {e sequential} walk
    runs instead — truncated classifications are byte-identical too. *)

val portfolio :
  t ->
  ?beam_width:int ->
  ?budget:int ->
  pdef:int ->
  Core.Classify.t ->
  Core.Portfolio.outcome
(** Sharded {!Core.Portfolio.run}: one task per registry strategy, ranked
    by {!Core.Portfolio.of_produced}.  [budget] is the enumeration budget
    the classification was computed under, so workers rebuild the same
    (possibly truncated) classification.  @raise Invalid_argument if
    [pdef < 1]. *)

val exact :
  t ->
  ?priority:Core.Eval.pattern_priority ->
  ?pruning:Core.Exact.pruning ->
  ?max_nodes:int ->
  ?seeds:Core.Pattern.t list list ->
  ?bans:Core.Exact.ban_entry list ->
  ?budget:int ->
  pdef:int ->
  Core.Classify.t ->
  Core.Exact.certificate
(** Sharded {!Core.Exact.search}: the search's batches execute on the
    fleet via its runner hook, incumbent frozen per batch exactly as the
    in-process pool path does, so the certificate is identical for every
    [--procs]/[--jobs] combination. *)
