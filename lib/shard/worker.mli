(** The shard worker: serves {!Protocol} requests over a channel pair.

    A worker is a plain OS process (spawned as [mpsched worker] or the
    test/bench binaries' hidden worker mode) that loops reading one
    request per line and writing one response per line.  It holds the
    broadcast {!Protocol.family} (graph + classification parameters) and
    {!Protocol.plan} state; the classification and the exact-search plan
    are forced lazily and {e bare} — no ambient collector — so only the
    per-task counters travel back in responses, in the task's own frame.

    Determinism contract: a worker computes each task with the same
    sequential code paths the coordinator would use in-process
    ({!Core.Enumerate.count_roots}, {!Core.Classify.bucket_roots},
    {!Core.Portfolio.run_named}, {!Core.Exact.run_task}), so responses
    are bit-identical to local execution.

    Fault injection for tests: when [MPS_SHARD_CRASH=n] is set in the
    environment, the worker exits with status 3 instead of answering its
    [n]-th task request (family/plan broadcasts do not count). *)

val run : in_channel -> out_channel -> unit
(** Serves until end-of-stream on the input channel.  Per-request
    failures (malformed frames, invalid arguments) are answered with
    error responses; the loop keeps serving. *)
