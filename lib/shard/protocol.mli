(** Wire codecs for the shard worker protocol.

    One request or response per line, in the serve protocol's
    line-delimited JSON framing.  Everything crossing the boundary is
    pattern-level — canonical spellings, node ids, counts — never raw
    universe ids, so a worker rebuilds bit-identical state regardless of
    its own interning order.  Responses carry the task's counters as
    precomputed aggregates which the coordinator replays through
    {!Core.Obs.merge} in submission order, keeping counter tables
    byte-identical to the in-process run. *)

exception Malformed of string
(** A frame that does not decode.  Raised by every [_of_json] below; the
    fleet turns it into {!Fleet.Worker_failed}. *)

(** {2 JSON helpers} (shared with {!Fleet}/{!Engine} decode paths) *)

val num : int -> Mps_util.Json.t
val as_int : string -> Mps_util.Json.t -> int
val as_str : string -> Mps_util.Json.t -> string
val as_arr : string -> Mps_util.Json.t -> Mps_util.Json.t list

val field :
  string -> (string * Mps_util.Json.t) list -> string -> Mps_util.Json.t
(** [field what fields key] — the field or [Malformed "what: missing key"]. *)

(** {2 Requests} *)

type family = {
  f_graph : string;  (** {!Core.Dfg_parse} text. *)
  f_capacity : int;
  f_span : int option;
  f_budget : int option;
}
(** Instance state shared by every task family: graph plus classification
    parameters.  Broadcast once per instance; workers derive their own
    classification from it lazily. *)

type plan = {
  p_pdef : int;
  p_priority : Core.Eval.pattern_priority;
  p_pruning : Core.Exact.pruning;
  p_max_nodes : int;
  p_bans : Core.Exact.ban_entry list;
}
(** Exact-search plan parameters, broadcast separately from {!family} so a
    plan change (new ban list, different pdef) does not force workers to
    rebuild their classification. *)

type count_req = { c_lo : int; c_hi : int; c_size : int; c_span : int option }
type classify_req = { k_lo : int; k_hi : int }
type strategy_req = { s_name : string; s_pdef : int; s_beam_width : int }
type exact_req = { e_root : int; e_inc : int }

type request =
  | Family of family
  | Plan of plan
  | Count of count_req
  | Classify of classify_req
  | Strategy of strategy_req
  | Exact_task of exact_req

val request_to_json : request -> Mps_util.Json.t
val request_of_json : Mps_util.Json.t -> request

(** {2 Responses}

    Success: [{"ok": true, ...payload, "counters": [...]}].
    Failure: [{"ok": false, "error": msg}]. *)

val ok_response :
  ?fields:(string * Mps_util.Json.t) list ->
  counters:Core.Obs.counter list ->
  unit ->
  Mps_util.Json.t

val error_response : string -> Mps_util.Json.t

val replay_counters : Mps_util.Json.t -> unit
(** Folds a response's counter rows into the ambient collector via
    {!Core.Obs.merge}, in row order. *)

(** {2 Payload codecs} *)

val patterns_to_json : Core.Pattern.t list -> Mps_util.Json.t
val patterns_of_json : string -> Mps_util.Json.t -> Core.Pattern.t list

val bucket_to_json : Core.Classify.bucket -> Mps_util.Json.t

val bucket_of_fields :
  (string * Mps_util.Json.t) list -> Core.Classify.bucket

val task_result_to_json : Core.Exact.task_result -> Mps_util.Json.t

val task_result_of_fields :
  (string * Mps_util.Json.t) list -> Core.Exact.task_result
