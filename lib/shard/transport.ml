module Json = Mps_util.Json

type t = {
  t_pid : int option;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

(* A write to a dead worker must surface as an EPIPE [Sys_error] the
   fleet can catch, not a fatal SIGPIPE.  Idempotent, and a no-op on
   platforms without the signal. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let of_channels ic oc = { t_pid = None; ic; oc; closed = false }

let spawn argv =
  ignore_sigpipe ();
  (* cloexec: a later-spawned sibling must not inherit this worker's pipe
     ends, or closing our write end would never deliver EOF (and a
     graceful shutdown would deadlock in waitpid).  create_process dup2s
     the child's own ends onto its stdio, which clears the flag there. *)
  let req_read, req_write = Unix.pipe ~cloexec:true () in
  let resp_read, resp_write = Unix.pipe ~cloexec:true () in
  let pid = Unix.create_process argv.(0) argv req_read resp_write Unix.stderr in
  Unix.close req_read;
  Unix.close resp_write;
  {
    t_pid = Some pid;
    ic = Unix.in_channel_of_descr resp_read;
    oc = Unix.out_channel_of_descr req_write;
    closed = false;
  }

let pid t = t.t_pid
let channels t = (t.ic, t.oc)

let send t j =
  output_string t.oc (Json.to_line j);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | exception End_of_file -> Error "unexpected end of stream"
  | exception Sys_error e -> Error ("read failed: " ^ e)
  | line -> (
      match Json.parse line with
      | Ok j -> Ok j
      | Error e -> Error ("bad frame: " ^ e))

let reap = function
  | None -> ()
  | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try close_out t.oc with Sys_error _ -> ());
    reap t.t_pid;
    (* Sockets share one fd between both channels: the second close may
       report EBADF, which is exactly the already-closed case. *)
    try close_in t.ic with Sys_error _ -> ()
  end

let kill t =
  if not t.closed then begin
    t.closed <- true;
    (match t.t_pid with
    | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    reap t.t_pid;
    close_out_noerr t.oc;
    close_in_noerr t.ic
  end

(* Half-close for sockets: deliver EOF to the peer while keeping our read
   side open for its remaining responses.  (Pipes get the same effect from
   [close]'s close_out, because read and write are separate fds there.) *)
let shutdown_send t =
  flush t.oc;
  try Unix.shutdown (Unix.descr_of_out_channel t.oc) Unix.SHUTDOWN_SEND
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let listen_unix ~path =
  ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let wrap_socket fd =
  {
    t_pid = None;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let accept_unix fd =
  let conn, _ = Unix.accept fd in
  wrap_socket conn

let connect_unix ~path =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  wrap_socket fd
