module Json = Mps_util.Json
module Obs = Core.Obs
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Exact = Core.Exact
module Eval = Core.Eval
module Portfolio = Core.Portfolio
module Dfg_parse = Core.Dfg_parse

type t = {
  fleet : Fleet.t;
  mutable f_line : string option;  (* installed family, as its wire line *)
  mutable p_line : string option;  (* installed plan, ditto *)
}

let create ~procs ~argv = { fleet = Fleet.create ~procs ~argv; f_line = None; p_line = None }
let procs t = Fleet.procs t.fleet
let shutdown t = Fleet.shutdown t.fleet

let with_engine ~procs ~argv f =
  let t = create ~procs ~argv in
  match f t with
  | r ->
      shutdown t;
      r
  | exception e ->
      (try shutdown t with _ -> ());
      raise e

(* Fixed chunking: up to 32 contiguous root ranges, a layout that depends
   only on the node count — never on [procs] — so the task list (and with
   it every counter and result) is procs-invariant. *)
let chunk_count = 32

let ranges n =
  let k = min chunk_count (max 1 n) in
  List.filter
    (fun (lo, hi) -> lo < hi)
    (List.init k (fun i -> (i * n / k, (i + 1) * n / k)))

(* Family/plan installs are fingerprinted on their wire line: re-running
   on the same instance re-broadcasts nothing. *)
let ensure t ~get ~set req =
  let line = Json.to_line (Protocol.request_to_json req) in
  if get t <> Some line then begin
    Fleet.broadcast t.fleet req;
    Obs.count "shard.inits" 1;
    set t (Some line)
  end

let ensure_family t ~graph ~capacity ~span_limit ~budget =
  let req =
    Protocol.Family
      {
        Protocol.f_graph = Dfg_parse.to_string graph;
        f_capacity = capacity;
        f_span = span_limit;
        f_budget = budget;
      }
  in
  let before = t.f_line in
  ensure t
    ~get:(fun t -> t.f_line)
    ~set:(fun t v -> t.f_line <- v)
    req;
  (* A new family invalidates any installed plan. *)
  if t.f_line <> before then t.p_line <- None

let ensure_plan t ~pdef ~priority ~pruning ~max_nodes ~bans =
  let req =
    Protocol.Plan
      {
        Protocol.p_pdef = pdef;
        p_priority = priority;
        p_pruning = pruning;
        p_max_nodes = max_nodes;
        p_bans = bans;
      }
  in
  ensure t
    ~get:(fun t -> t.p_line)
    ~set:(fun t v -> t.p_line <- v)
    req

let count t ?span_limit ~max_size ctx =
  let graph = Enumerate.ctx_graph ctx in
  ensure_family t ~graph ~capacity:max_size ~span_limit ~budget:None;
  Obs.span "enumerate" @@ fun () ->
  let n = Core.Dfg.node_count graph in
  let chunks =
    Fleet.map t.fleet
      ~encode:(fun (lo, hi) ->
        Protocol.Count
          { Protocol.c_lo = lo; c_hi = hi; c_size = max_size; c_span = span_limit })
      ~decode:(fun fields ->
        Protocol.as_int "count value" (Protocol.field "count" fields "value"))
      (ranges n)
  in
  List.fold_left ( + ) 0 chunks

let classify t ?universe ?span_limit ?budget ~capacity ctx =
  let graph = Enumerate.ctx_graph ctx in
  ensure_family t ~graph ~capacity ~span_limit ~budget;
  let n = Core.Dfg.node_count graph in
  let chunks = ranges n in
  let buckets =
    Fleet.map t.fleet
      ~encode:(fun (lo, hi) -> Protocol.Classify { Protocol.k_lo = lo; k_hi = hi })
      ~decode:(fun fields ->
        match Protocol.field "classify" fields "bucket" with
        | Json.Null -> None
        | Json.Obj bfields -> Some (Protocol.bucket_of_fields bfields)
        | _ -> raise (Protocol.Malformed "bucket must be null or an object"))
      chunks
  in
  Obs.count "shard.classify.chunks" (List.length chunks);
  let over =
    List.exists Option.is_none buckets
    ||
    match budget with
    | None -> false
    | Some b ->
        List.fold_left
          (fun acc -> function
            | Some bk -> acc + bk.Classify.bk_total
            | None -> acc)
          0 buckets
        > b
  in
  if over then
    (* Over budget: the sharded walk is only optimistic.  Re-run the
       budgeted sequential walk, which is the canonical truncated result
       (same contract as Classify.compute's parallel path). *)
    Classify.compute ?universe ?span_limit ?budget ~capacity ctx
  else
    Classify.of_buckets ?universe ?span_limit ~capacity ctx
      (List.map Option.get buckets)

let portfolio t ?(beam_width = 4) ?budget ~pdef classify =
  if pdef < 1 then invalid_arg "Engine.portfolio: pdef must be >= 1";
  ensure_family t
    ~graph:(Classify.graph classify)
    ~capacity:(Classify.capacity classify)
    ~span_limit:(Classify.span_limit classify)
    ~budget;
  Obs.span "portfolio" @@ fun () ->
  let names = Portfolio.strategy_names in
  Obs.count "portfolio.strategies" (List.length names);
  let rows =
    Fleet.map t.fleet
      ~encode:(fun name ->
        Protocol.Strategy
          { Protocol.s_name = name; s_pdef = pdef; s_beam_width = beam_width })
      ~decode:(fun fields ->
        let patterns =
          Protocol.patterns_of_json "patterns"
            (Protocol.field "strategy" fields "patterns")
        in
        let known =
          match Protocol.field "strategy" fields "known" with
          | Json.Null -> None
          | j -> Some (Protocol.as_int "known" j)
        in
        (patterns, known))
      names
  in
  Portfolio.of_produced classify
    (List.map2 (fun name (patterns, known) -> (name, patterns, known)) names rows)

let exact t ?priority ?pruning ?max_nodes ?seeds ?bans ?budget ~pdef classify =
  ensure_family t
    ~graph:(Classify.graph classify)
    ~capacity:(Classify.capacity classify)
    ~span_limit:(Classify.span_limit classify)
    ~budget;
  ensure_plan t ~pdef
    ~priority:(Option.value priority ~default:Eval.F2)
    ~pruning:(Option.value pruning ~default:Exact.all_pruning)
    ~max_nodes:(Option.value max_nodes ~default:1_000_000)
    ~bans:(Option.value bans ~default:[]);
  let runner ~inc roots =
    Obs.count "shard.exact.batches" 1;
    Fleet.map t.fleet
      ~encode:(fun root ->
        Protocol.Exact_task { Protocol.e_root = root; e_inc = inc })
      ~decode:(fun fields ->
        match Protocol.field "exact" fields "task" with
        | Json.Obj tfields -> Protocol.task_result_of_fields tfields
        | _ -> raise (Protocol.Malformed "task must be an object"))
      roots
  in
  Exact.search ~runner ?priority ?pruning ?max_nodes ?seeds ?bans ~pdef classify
