(** Line-delimited JSON frames over a process boundary.

    One [t] is one peer: a worker process spawned over a pipe pair, an
    accepted socket connection, or a pair of already-open channels.  The
    framing is the serve protocol's — one {!Mps_util.Json} value per
    line — so the same helpers back the shard worker fleet and the
    [mpsched serve --listen] socket transport.

    SIGPIPE is set to ignore on the first spawn/listen/connect, so a
    write to a dead peer surfaces as a [Sys_error] (which {!Fleet} turns
    into {!Fleet.Worker_failed}) instead of killing the process. *)

type t

val spawn : string array -> t
(** Forks [argv] as a child process with a pipe pair: our sends arrive on
    its stdin, its stdout arrives on our {!recv}.  stderr is inherited.
    @raise Unix.Unix_error when the executable cannot be spawned. *)

val of_channels : in_channel -> out_channel -> t
(** Wraps existing channels (no owned process). *)

val pid : t -> int option
(** The child's pid for {!spawn} transports; [None] otherwise. *)

val channels : t -> in_channel * out_channel
(** The raw channel pair, for callers that speak a different line protocol
    over the same connection (the serve socket transport hands these to
    {!Mps_serve.Server.run}-style loops). *)

val send : t -> Mps_util.Json.t -> unit
(** One value, one line, flushed.  @raise Sys_error on a broken pipe. *)

val recv : t -> (Mps_util.Json.t, string) result
(** The next line parsed as JSON; [Error] on end-of-stream or a parse
    failure (a crashed or misbehaving peer, never a protocol state). *)

val close : t -> unit
(** Graceful shutdown: closes our write end (the peer sees EOF and
    exits), waits for a spawned child, closes the read end.  Idempotent. *)

val kill : t -> unit
(** Hard shutdown: SIGKILL + reap for a spawned child, then close both
    channels.  For failure paths where the peer may never answer again.
    Idempotent. *)

(** {2 Unix-domain sockets} — the [mpsched serve --listen] transport. *)

val shutdown_send : t -> unit
(** Half-close (sockets): flush and deliver EOF to the peer while keeping
    the read side open — how a pipelined client says "no more requests"
    and still collects every response. *)

val listen_unix : path:string -> Unix.file_descr
(** Binds and listens on a Unix-domain socket, unlinking a stale file at
    [path] first.  @raise Unix.Unix_error on bind failure. *)

val accept_unix : Unix.file_descr -> t
(** Blocks for one connection and wraps it. *)

val connect_unix : path:string -> t
(** Client side: connects to a listening socket. *)
