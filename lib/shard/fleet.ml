module Json = Mps_util.Json
module Obs = Core.Obs

exception Worker_failed of string

type t = { workers : Transport.t array; mutable alive : bool }

let create ~procs ~argv =
  if procs < 1 then invalid_arg "Fleet.create: procs must be >= 1";
  { workers = Array.init procs (fun _ -> Transport.spawn argv); alive = true }

let procs t = Array.length t.workers
let pids t = Array.to_list (Array.map (fun w -> Transport.pid w) t.workers)

(* A dead or misbehaving worker poisons the whole fleet: every sibling is
   SIGKILLed so nothing blocks on a half-gone pipeline, then the caller
   sees one exception. *)
let fail t msg =
  if t.alive then begin
    t.alive <- false;
    Array.iter Transport.kill t.workers
  end;
  raise (Worker_failed msg)

let send t w req =
  try Transport.send t.workers.(w) (Protocol.request_to_json req)
  with Sys_error e -> fail t (Printf.sprintf "worker %d: write failed: %s" w e)

(* The next response from worker [w], unwrapped to its payload fields.
   Workers answer strictly in request order, so FIFO reads per worker are
   the whole sequencing story. *)
let recv_fields t w =
  match Transport.recv t.workers.(w) with
  | Error e -> fail t (Printf.sprintf "worker %d: %s" w e)
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool true) -> fields
      | Some (Json.Bool false) ->
          let msg =
            match List.assoc_opt "error" fields with
            | Some (Json.Str m) -> m
            | _ -> "unknown error"
          in
          fail t (Printf.sprintf "worker %d: %s" w msg)
      | _ -> fail t (Printf.sprintf "worker %d: response missing \"ok\"" w))
  | Ok _ -> fail t (Printf.sprintf "worker %d: response must be an object" w)

let broadcast t req =
  let p = procs t in
  for w = 0 to p - 1 do
    send t w req
  done;
  for w = 0 to p - 1 do
    ignore (recv_fields t w)
  done

let map t ~encode ~decode tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let p = procs t in
  (* Task i belongs to worker (i mod p); the window keeps exactly one
     outstanding task per worker, and results are read back in submission
     order — worker (i mod p)'s next unread response IS task i.  Counters
     replay before decode so the merge order equals submission order. *)
  for i = 0 to min p n - 1 do
    send t (i mod p) (encode tasks.(i))
  done;
  let results = Array.make n None in
  for i = 0 to n - 1 do
    let w = i mod p in
    let fields = recv_fields t w in
    (match List.assoc_opt "counters" fields with
    | Some c -> (
        try Protocol.replay_counters c
        with Protocol.Malformed m ->
          fail t (Printf.sprintf "worker %d: %s" w m))
    | None -> ());
    (match decode fields with
    | r -> results.(i) <- Some r
    | exception Protocol.Malformed m ->
        fail t (Printf.sprintf "worker %d: %s" w m));
    if i + p < n then send t w (encode tasks.(i + p))
  done;
  Obs.count "shard.tasks" n;
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false (* all slots filled *))
       results)

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter Transport.close t.workers
  end

let with_fleet ~procs ~argv f =
  let t = create ~procs ~argv in
  match f t with
  | r ->
      shutdown t;
      r
  | exception e ->
      if t.alive then begin
        t.alive <- false;
        Array.iter Transport.kill t.workers
      end;
      raise e
