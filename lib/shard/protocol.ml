(* Wire codecs for the worker protocol: line-delimited JSON, one request
   or response per line, in the serve protocol's framing.

   Everything crossing the boundary is pattern-level — canonical pattern
   spellings, node ids, counts — never universe ids, so a worker can
   rebuild bit-identical state from a frame whatever interning order its
   own process used.  Responses carry the task's counters as precomputed
   aggregates; the coordinator replays them through [Obs.merge] in
   submission order, which keeps counter tables byte-identical to the
   in-process run. *)

module Json = Mps_util.Json
module Pattern = Core.Pattern
module Obs = Core.Obs
module Exact = Core.Exact
module Classify = Core.Classify
module Eval = Core.Eval

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt
let num n = Json.Num (float_of_int n)

let as_int what = function
  | Json.Num f when Float.is_integer f && Float.abs f <= 1e15 -> int_of_float f
  | _ -> fail "%s must be an integer" what

let as_str what = function Json.Str s -> s | _ -> fail "%s must be a string" what
let as_arr what = function Json.Arr l -> l | _ -> fail "%s must be an array" what

let field what fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> fail "%s: missing %S" what key

let int_field what fields key = as_int (what ^ "." ^ key) (field what fields key)

(* An optional int is wired as -1 (budgets and span limits are never
   negative). *)
let opt_to_num = function None -> num (-1) | Some v -> num v
let opt_of_num what j = match as_int what j with -1 -> None | v -> Some v

(* {2 Patterns, bans, priorities} *)

let patterns_to_json ps =
  Json.Arr (List.map (fun p -> Json.Str (Pattern.to_string p)) ps)

let patterns_of_json what j =
  List.map (fun s -> Pattern.of_string (as_str what s)) (as_arr what j)

let priority_to_string = function Eval.F1 -> "f1" | Eval.F2 -> "f2"

let priority_of_string = function
  | "f1" -> Eval.F1
  | "f2" -> Eval.F2
  | s -> fail "unknown priority %S" s

let bound_to_json = function
  | Exact.Infeasible -> Json.Null
  | Exact.Cost c -> num c

let bound_of_json = function
  | Json.Null -> Exact.Infeasible
  | j -> Exact.Cost (as_int "bound" j)

let bans_to_json bans =
  Json.Arr
    (List.map
       (fun (e : Exact.ban_entry) ->
         Json.Obj
           [
             ("set", patterns_to_json e.Exact.banned);
             ("cost", bound_to_json e.Exact.bound);
           ])
       bans)

let bans_of_json j =
  List.map
    (fun e ->
      match e with
      | Json.Obj fields ->
          {
            Exact.banned = patterns_of_json "ban set" (field "ban" fields "set");
            bound = bound_of_json (field "ban" fields "cost");
          }
      | _ -> fail "ban entry must be an object")
    (as_arr "bans" j)

(* {2 Counters} *)

let counters_to_json cs =
  Json.Arr
    (List.map
       (fun (c : Obs.counter) ->
         Json.Arr
           [
             Json.Str c.Obs.name;
             Json.Str (match c.Obs.kind with Obs.Sum -> "sum" | Obs.Dist -> "dist");
             num c.Obs.samples;
             num c.Obs.total;
             num c.Obs.vmin;
             num c.Obs.vmax;
           ])
       cs)

let replay_counters j =
  List.iter
    (fun row ->
      match as_arr "counter" row with
      | [ name; kind; samples; total; vmin; vmax ] ->
          let kind =
            match as_str "counter kind" kind with
            | "sum" -> Obs.Sum
            | "dist" -> Obs.Dist
            | k -> fail "unknown counter kind %S" k
          in
          Obs.merge (as_str "counter name" name) kind
            ~samples:(as_int "samples" samples)
            ~total:(as_int "total" total) ~vmin:(as_int "vmin" vmin)
            ~vmax:(as_int "vmax" vmax)
      | _ -> fail "counter row must have 6 members")
    (as_arr "counters" j)

(* {2 Requests} *)

type family = {
  f_graph : string;  (* Dfg_parse text *)
  f_capacity : int;
  f_span : int option;
  f_budget : int option;
}

type plan = {
  p_pdef : int;
  p_priority : Eval.pattern_priority;
  p_pruning : Exact.pruning;
  p_max_nodes : int;
  p_bans : Exact.ban_entry list;
}

type count_req = { c_lo : int; c_hi : int; c_size : int; c_span : int option }
type classify_req = { k_lo : int; k_hi : int }
type strategy_req = { s_name : string; s_pdef : int; s_beam_width : int }
type exact_req = { e_root : int; e_inc : int }

type request =
  | Family of family
  | Plan of plan
  | Count of count_req
  | Classify of classify_req
  | Strategy of strategy_req
  | Exact_task of exact_req

let request_to_json = function
  | Family f ->
      Json.Obj
        [
          ("op", Json.Str "family");
          ("graph", Json.Str f.f_graph);
          ("capacity", num f.f_capacity);
          ("span", opt_to_num f.f_span);
          ("budget", opt_to_num f.f_budget);
        ]
  | Plan p ->
      Json.Obj
        [
          ("op", Json.Str "plan");
          ("pdef", num p.p_pdef);
          ("priority", Json.Str (priority_to_string p.p_priority));
          ( "pruning",
            Json.Arr
              (List.map
                 (fun b -> Json.Bool b)
                 [
                   p.p_pruning.Exact.prune_span;
                   p.p_pruning.Exact.prune_color;
                   p.p_pruning.Exact.prune_ban;
                   p.p_pruning.Exact.prune_dominance;
                 ]) );
          ("max_nodes", num p.p_max_nodes);
          ("bans", bans_to_json p.p_bans);
        ]
  | Count c ->
      Json.Obj
        [
          ("op", Json.Str "count");
          ("lo", num c.c_lo);
          ("hi", num c.c_hi);
          ("size", num c.c_size);
          ("span", opt_to_num c.c_span);
        ]
  | Classify k ->
      Json.Obj
        [ ("op", Json.Str "classify"); ("lo", num k.k_lo); ("hi", num k.k_hi) ]
  | Strategy s ->
      Json.Obj
        [
          ("op", Json.Str "strategy");
          ("name", Json.Str s.s_name);
          ("pdef", num s.s_pdef);
          ("beam_width", num s.s_beam_width);
        ]
  | Exact_task e ->
      (* No incumbent yet is [max_int], which does not survive the float
         wire format — it travels as null. *)
      Json.Obj
        [
          ("op", Json.Str "exact");
          ("root", num e.e_root);
          ("inc", if e.e_inc = max_int then Json.Null else num e.e_inc);
        ]

let request_of_json j =
  match j with
  | Json.Obj fields -> (
      match as_str "op" (field "request" fields "op") with
      | "family" ->
          Family
            {
              f_graph = as_str "graph" (field "family" fields "graph");
              f_capacity = int_field "family" fields "capacity";
              f_span = opt_of_num "span" (field "family" fields "span");
              f_budget = opt_of_num "budget" (field "family" fields "budget");
            }
      | "plan" ->
          let pruning =
            match as_arr "pruning" (field "plan" fields "pruning") with
            | [ Json.Bool s; Json.Bool c; Json.Bool b; Json.Bool d ] ->
                {
                  Exact.prune_span = s;
                  prune_color = c;
                  prune_ban = b;
                  prune_dominance = d;
                }
            | _ -> fail "pruning must be 4 booleans"
          in
          Plan
            {
              p_pdef = int_field "plan" fields "pdef";
              p_priority =
                priority_of_string (as_str "priority" (field "plan" fields "priority"));
              p_pruning = pruning;
              p_max_nodes = int_field "plan" fields "max_nodes";
              p_bans = bans_of_json (field "plan" fields "bans");
            }
      | "count" ->
          Count
            {
              c_lo = int_field "count" fields "lo";
              c_hi = int_field "count" fields "hi";
              c_size = int_field "count" fields "size";
              c_span = opt_of_num "span" (field "count" fields "span");
            }
      | "classify" ->
          Classify
            {
              k_lo = int_field "classify" fields "lo";
              k_hi = int_field "classify" fields "hi";
            }
      | "strategy" ->
          Strategy
            {
              s_name = as_str "name" (field "strategy" fields "name");
              s_pdef = int_field "strategy" fields "pdef";
              s_beam_width = int_field "strategy" fields "beam_width";
            }
      | "exact" ->
          Exact_task
            {
              e_root = int_field "exact" fields "root";
              e_inc =
                (match field "exact" fields "inc" with
                | Json.Null -> max_int
                | j -> as_int "exact.inc" j);
            }
      | op -> fail "unknown op %S" op)
  | _ -> fail "request must be a JSON object"

(* {2 Responses} *)

let ok_response ?(fields = []) ~counters () =
  Json.Obj
    ((("ok", Json.Bool true) :: fields)
    @ [ ("counters", counters_to_json counters) ])

let error_response msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

(* Classification buckets: entries as [spelling, count, [[node, freq], ...]]
   in first-visit order. *)

let bucket_to_json (bk : Classify.bucket) =
  Json.Obj
    [
      ("total", num bk.Classify.bk_total);
      ( "entries",
        Json.Arr
          (List.map
             (fun (e : Classify.bucket_entry) ->
               Json.Arr
                 [
                   Json.Str (Pattern.to_string e.Classify.be_pattern);
                   num e.Classify.be_count;
                   Json.Arr
                     (List.map
                        (fun (n, c) -> Json.Arr [ num n; num c ])
                        e.Classify.be_freq);
                 ])
             bk.Classify.bk_entries) );
    ]

let bucket_of_fields fields =
  let entries =
    List.map
      (fun e ->
        match as_arr "bucket entry" e with
        | [ spelling; count; freq ] ->
            {
              Classify.be_pattern = Pattern.of_string (as_str "pattern" spelling);
              be_count = as_int "count" count;
              be_freq =
                List.map
                  (fun row ->
                    match as_arr "freq row" row with
                    | [ n; c ] -> (as_int "node" n, as_int "freq" c)
                    | _ -> fail "freq row must be [node, count]")
                  (as_arr "freq" freq);
            }
        | _ -> fail "bucket entry must be [pattern, count, freq]")
      (as_arr "entries" (field "bucket" fields "entries"))
  in
  { Classify.bk_entries = entries; bk_total = int_field "bucket" fields "total" }

(* Exact task results. *)

let stats_to_json (s : Exact.stats) =
  Json.Arr
    (List.map num
       [
         s.Exact.nodes_visited;
         s.Exact.pruned_span;
         s.Exact.pruned_color;
         s.Exact.pruned_ban;
         s.Exact.pruned_dominance;
         s.Exact.evaluated;
       ])

let stats_of_json j =
  match as_arr "stats" j with
  | [ v; ps; pc; pb; pd; ev ] ->
      {
        Exact.nodes_visited = as_int "visited" v;
        pruned_span = as_int "pruned_span" ps;
        pruned_color = as_int "pruned_color" pc;
        pruned_ban = as_int "pruned_ban" pb;
        pruned_dominance = as_int "pruned_dominance" pd;
        evaluated = as_int "evaluated" ev;
      }
  | _ -> fail "stats must have 6 members"

let task_result_to_json (r : Exact.task_result) =
  Json.Obj
    [
      ( "best",
        match r.Exact.t_best with
        | None -> Json.Null
        | Some (c, set) -> Json.Arr [ num c; patterns_to_json set ] );
      ("stats", stats_to_json r.Exact.t_stats);
      ("bans", bans_to_json r.Exact.t_bans);
      ("capped", Json.Bool r.Exact.t_capped);
    ]

let task_result_of_fields fields =
  let best =
    match field "task" fields "best" with
    | Json.Null -> None
    | Json.Arr [ c; set ] ->
        Some (as_int "best cycles" c, patterns_of_json "best set" set)
    | _ -> fail "best must be null or [cycles, patterns]"
  in
  match List.assoc_opt "capped" fields with
  | Some (Json.Bool capped) ->
      {
        Exact.t_best = best;
        t_stats = stats_of_json (field "task" fields "stats");
        t_bans = bans_of_json (field "task" fields "bans");
        t_capped = capped;
      }
  | _ -> fail "task: missing or non-boolean \"capped\""
