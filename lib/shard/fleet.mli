(** A fleet of worker processes with deterministic submission-order fan-in.

    [map] distributes tasks round-robin — task [i] to worker [i mod procs],
    a window of one outstanding task per worker — and reads results back
    strictly in submission order, replaying each response's counters into
    the ambient collector before decoding.  Workers answer their own
    requests in FIFO order, so the fan-in sequence (and therefore every
    counter merge and every result list) is a pure function of the task
    list, independent of worker timing: output is byte-identical for every
    [--procs] value.

    Any worker failure — crash, EOF, malformed frame, error response —
    SIGKILLs the whole fleet and raises {!Worker_failed}; nothing hangs on
    a half-dead pipeline. *)

type t

exception Worker_failed of string

val create : procs:int -> argv:string array -> t
(** Spawns [procs] workers running [argv] (e.g.
    [[|Sys.executable_name; "worker"|]]).
    @raise Invalid_argument when [procs < 1]. *)

val procs : t -> int

val pids : t -> int option list
(** Worker pids, for diagnostics. *)

val broadcast : t -> Protocol.request -> unit
(** Sends one request to every worker and waits for every acknowledgement
    (family/plan installs). *)

val map :
  t ->
  encode:('a -> Protocol.request) ->
  decode:((string * Mps_util.Json.t) list -> 'b) ->
  'a list ->
  'b list
(** Results in submission order; counts the batch under [shard.tasks].
    [decode] receives the payload fields of a success response and may
    raise {!Protocol.Malformed}. *)

val shutdown : t -> unit
(** Graceful: close every worker's stdin (they exit on EOF) and reap. *)

val with_fleet : procs:int -> argv:string array -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], killing the fleet if the body raises. *)
