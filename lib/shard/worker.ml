module Json = Mps_util.Json
module Obs = Core.Obs
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Exact = Core.Exact
module Portfolio = Core.Portfolio
module Dfg_parse = Core.Dfg_parse

(* Shared state across task ops.  The classification and the exact plan
   are forced lazily and BARE — with no ambient collector — because the
   coordinator already accounted for its own classify/plan work; only the
   per-task op bodies run under a collector, and those counters travel
   back in the response. *)
type family = {
  w_ctx : Enumerate.ctx;
  w_capacity : int;
  w_span : int option;
  w_budget : int option;
}

type state = {
  mutable fam : family option;
  mutable classification : Classify.t Lazy.t;
  mutable plan : Exact.plan Lazy.t;
}

let no_family () = failwith "no family installed (missing \"family\" request)"
let no_plan () = failwith "no plan installed (missing \"plan\" request)"

let the_family st =
  match st.fam with Some f -> f | None -> no_family ()

let install_family st (f : Protocol.family) =
  let graph = Dfg_parse.of_string f.Protocol.f_graph in
  let fam =
    {
      w_ctx = Enumerate.make_ctx graph;
      w_capacity = f.Protocol.f_capacity;
      w_span = f.Protocol.f_span;
      w_budget = f.Protocol.f_budget;
    }
  in
  st.fam <- Some fam;
  st.classification <-
    lazy
      (Classify.compute ?span_limit:fam.w_span ?budget:fam.w_budget
         ~capacity:fam.w_capacity fam.w_ctx);
  st.plan <- lazy (no_plan ())

let install_plan st (p : Protocol.plan) =
  let classification = st.classification in
  st.plan <-
    lazy
      (Exact.make_plan ~priority:p.Protocol.p_priority
         ~pruning:p.Protocol.p_pruning ~max_nodes:p.Protocol.p_max_nodes
         ~bans:p.Protocol.p_bans ~pdef:p.Protocol.p_pdef
         (Lazy.force classification))

(* Runs one task body under a fresh collector and exports its counters. *)
let with_counters f =
  let c = Obs.create () in
  let r = Obs.run c f in
  (r, Obs.counters c)

let handle st req =
  match req with
  | Protocol.Family f ->
      install_family st f;
      Protocol.ok_response ~counters:[] ()
  | Protocol.Plan p ->
      install_plan st p;
      Protocol.ok_response ~counters:[] ()
  | Protocol.Count c ->
      let fam = the_family st in
      let n, counters =
        with_counters (fun () ->
            Enumerate.count_roots ?span_limit:c.Protocol.c_span
              ~max_size:c.Protocol.c_size fam.w_ctx ~lo:c.Protocol.c_lo
              ~hi:c.Protocol.c_hi)
      in
      Protocol.ok_response
        ~fields:[ ("value", Protocol.num n) ]
        ~counters ()
  | Protocol.Classify k ->
      let fam = the_family st in
      let bucket, counters =
        with_counters (fun () ->
            Classify.bucket_roots ?span_limit:fam.w_span ?budget:fam.w_budget
              ~capacity:fam.w_capacity fam.w_ctx ~lo:k.Protocol.k_lo
              ~hi:k.Protocol.k_hi)
      in
      let bucket_json =
        match bucket with
        | None -> Json.Null
        | Some bk -> Protocol.bucket_to_json bk
      in
      Protocol.ok_response ~fields:[ ("bucket", bucket_json) ] ~counters ()
  | Protocol.Strategy s ->
      let classification = Lazy.force st.classification in
      let (patterns, known), counters =
        with_counters (fun () ->
            Portfolio.run_named ~beam_width:s.Protocol.s_beam_width
              ~pdef:s.Protocol.s_pdef classification s.Protocol.s_name)
      in
      Protocol.ok_response
        ~fields:
          [
            ("patterns", Protocol.patterns_to_json patterns);
            ( "known",
              match known with None -> Json.Null | Some c -> Protocol.num c );
          ]
        ~counters ()
  | Protocol.Exact_task e ->
      let plan = Lazy.force st.plan in
      let result, counters =
        with_counters (fun () ->
            Exact.run_task plan ~inc:e.Protocol.e_inc e.Protocol.e_root)
      in
      Protocol.ok_response
        ~fields:[ ("task", Protocol.task_result_to_json result) ]
        ~counters ()

let is_task_op = function
  | Protocol.Count _ | Protocol.Classify _ | Protocol.Strategy _
  | Protocol.Exact_task _ ->
      true
  | Protocol.Family _ | Protocol.Plan _ -> false

let run ic oc =
  let st =
    { fam = None; classification = lazy (no_family ()); plan = lazy (no_plan ()) }
  in
  let crash_at =
    match Sys.getenv_opt "MPS_SHARD_CRASH" with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  let tasks_done = ref 0 in
  let respond j =
    output_string oc (Json.to_line j);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let resp =
          match Json.parse line with
          | Error e -> Protocol.error_response ("bad frame: " ^ e)
          | Ok j -> (
              match Protocol.request_of_json j with
              | exception Protocol.Malformed m -> Protocol.error_response m
              | req -> (
                  (match crash_at with
                  | Some n when is_task_op req ->
                      incr tasks_done;
                      if !tasks_done = n then exit 3
                  | _ -> ());
                  match handle st req with
                  | resp -> resp
                  | exception Protocol.Malformed m -> Protocol.error_response m
                  | exception Invalid_argument m -> Protocol.error_response m
                  | exception Failure m -> Protocol.error_response m
                  | exception e ->
                      Protocol.error_response (Printexc.to_string e)))
        in
        respond resp;
        loop ()
  in
  loop ()
