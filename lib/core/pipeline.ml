module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Select = Mps_select.Select
module Exact = Mps_select.Exact
module Auto = Mps_select.Auto
module Features = Mps_select.Features
module Mp = Mps_scheduler.Multi_pattern
module Eval = Mps_scheduler.Eval
module Schedule = Mps_scheduler.Schedule
module Cluster = Mps_clustering.Cluster
module Tile = Mps_montium.Tile
module Allocation = Mps_montium.Allocation
module Config_space = Mps_montium.Config_space
module Energy = Mps_montium.Energy
module Simulator = Mps_montium.Simulator
module Program = Mps_frontend.Program
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type options = {
  capacity : int;
  pdef : int;
  span_limit : int option;
  enumeration_budget : int option;
  selection : Select.params;
  strategy : Auto.strategy;
  priority : Mp.pattern_priority;
  cluster : bool;
  tile : Tile.t;
  jobs : int;
}

let default_options =
  {
    capacity = Tile.default.Tile.alu_count;
    pdef = 4;
    span_limit = Some 1;
    enumeration_budget = Some 5_000_000;
    selection = Select.default_params;
    strategy = Auto.Paper;
    priority = Mp.F2;
    cluster = false;
    tile = Tile.default;
    jobs = 1;
  }

type t = {
  options : options;
  graph : Dfg.t;
  clustering : Cluster.t option;
  universe : Universe.t;
  pattern_pool : int;
  antichains : int;
  truncated : bool;
  patterns : Pattern.t list;
  selection_report : Select.report;
  auto : Auto.outcome option;
  schedule : Schedule.t;
  cycles : int;
  config : Config_space.t;
}

let validate_options ~who options =
  if options.capacity < 1 then invalid_arg (who ^ ": capacity < 1");
  if options.pdef < 1 then invalid_arg (who ^ ": pdef < 1");
  if options.jobs < 1 then invalid_arg (who ^ ": jobs < 1")

(* Selection + scheduling + configuration on an already-computed
   classification — the part of the flow every request after the first hits
   in a warm serve session.  [eval], when given, must be a context for the
   classified graph sharing the classification's universe; the schedule it
   produces is identical to a fresh context's (see {!Mps_scheduler.Eval}),
   only the per-graph analyses are amortized. *)
let classified_core ~options ~clustering ~eval ~features classify =
  let graph = Classify.graph classify in
  let universe = Classify.universe classify in
  (* The evaluation context is built before selection so the auto strategy
     can reuse its analyses for feature extraction and cost its backend's
     set on it; building it never emits observability events, so the Paper
     path is byte-identical to the old build-after-selection order. *)
  let ev = match eval with Some ev -> ev | None -> Eval.make ~universe graph in
  let selection_report, auto =
    match options.strategy with
    | Auto.Paper ->
        ( Select.select_report ~params:options.selection ~pdef:options.pdef
            classify,
          None )
    | Auto.Auto rules ->
        let outcome =
          Auto.select ~rules ?features ~eval:ev ~pdef:options.pdef classify
        in
        ({ Select.patterns = outcome.Auto.patterns; steps = [] }, Some outcome)
  in
  let patterns = selection_report.Select.patterns in
  (* Full-fidelity schedule through an evaluation context — the same
     engine every search strategy costs candidates on. *)
  let { Mp.schedule; _ } =
    Eval.schedule ~priority:options.priority ev ~patterns
  in
  {
    options;
    graph;
    clustering;
    universe;
    pattern_pool = Classify.pattern_count classify;
    antichains = Classify.total_antichains classify;
    truncated = Classify.truncated classify;
    patterns;
    selection_report;
    auto;
    schedule;
    cycles = Schedule.cycles schedule;
    config =
      Obs.span "config" (fun () ->
          Config_space.of_schedule ~tile:options.tile schedule);
  }

let run_classified ?(options = default_options) ?clustering ?eval ?features
    classify =
  validate_options ~who:"Pipeline.run_classified" options;
  Obs.span "pipeline" @@ fun () ->
  classified_core ~options ~clustering ~eval ~features classify

let run ?pool ?(options = default_options) dfg =
  validate_options ~who:"Pipeline.run" options;
  Obs.span "pipeline" @@ fun () ->
  let clustering =
    if options.cluster then Some (Obs.span "cluster" (fun () -> Cluster.mac dfg))
    else None
  in
  let graph =
    match clustering with Some c -> c.Cluster.clustered | None -> dfg
  in
  let ctx = Enumerate.make_ctx graph in
  (* The pipeline owns the pattern universe: classification interns every
     distinct pattern into it (per-domain scratch universes are merged
     deterministically under [jobs > 1]), selection reuses its dominance
     matrix, and the scheduler hash-conses Pdef through it. *)
  let universe = Universe.create () in
  let classify_with pool =
    Classify.compute ?pool ?span_limit:options.span_limit
      ?budget:options.enumeration_budget ~capacity:options.capacity ~universe ctx
  in
  let classify =
    match pool with
    | Some _ -> classify_with pool
    | None when options.jobs > 1 ->
        Pool.with_pool ~jobs:options.jobs (fun p -> classify_with (Some p))
    | None -> classify_with None
  in
  classified_core ~options ~clustering ~eval:None ~features:None classify

type certification = {
  heuristic : Pattern.t list;
  heuristic_cycles : int;
  exact : Exact.certificate;
  gap_percent : float;
}

let certified_core ?pool ?search ~options ?max_nodes ?bans classify =
  let graph = Classify.graph classify in
  let heuristic =
    Select.select ~params:options.selection ~pdef:options.pdef classify
  in
  (* The heuristic's set seeds the branch-and-bound as its warm-start
     incumbent, so the certified optimum can only tie or beat it and the
     gap is never negative.  Both sides are costed canonically (see
     Exact.canonical_order). *)
  let exact =
    match search with
    | Some f -> f ~seeds:[ heuristic ] classify
    | None ->
        Exact.search ?pool ~priority:options.priority ?max_nodes
          ~seeds:[ heuristic ] ?bans ~pdef:options.pdef classify
  in
  let heuristic_cycles =
    match
      Eval.cycles ~priority:options.priority (Eval.make graph)
        (Exact.canonical_order classify heuristic)
    with
    | c -> c
    | exception Eval.Unschedulable _ -> max_int
  in
  let gap_percent =
    if exact.Exact.optimal_cycles = max_int || exact.Exact.optimal_cycles = 0
    then 0.
    else
      float_of_int (heuristic_cycles - exact.Exact.optimal_cycles)
      /. float_of_int exact.Exact.optimal_cycles
      *. 100.
  in
  { heuristic; heuristic_cycles; exact; gap_percent }

let certify_classified ?pool ?search ?(options = default_options) ?max_nodes
    ?bans classify =
  validate_options ~who:"Pipeline.certify_classified" options;
  Obs.span "certify" @@ fun () ->
  certified_core ?pool ?search ~options ?max_nodes ?bans classify

let certify ?pool ?(options = default_options) ?max_nodes dfg =
  validate_options ~who:"Pipeline.certify" options;
  Obs.span "certify" @@ fun () ->
  let with_pool f =
    match pool with
    | Some _ -> f pool
    | None when options.jobs > 1 ->
        Pool.with_pool ~jobs:options.jobs (fun p -> f (Some p))
    | None -> f None
  in
  with_pool @@ fun pool ->
  let graph =
    if options.cluster then (Cluster.mac dfg).Cluster.clustered else dfg
  in
  let classify =
    Classify.compute ?pool ?span_limit:options.span_limit
      ?budget:options.enumeration_budget ~capacity:options.capacity
      (Enumerate.make_ctx graph)
  in
  certified_core ?pool ~options ?max_nodes classify

type mapped = {
  program : Program.t;
  pipeline : t;
  allocation : Allocation.t;
  energy : Energy.breakdown;
}

let map_program ?pool ?(options = default_options) program =
  (* Clustering on a program goes through the executable MAC fusion, so the
     instruction view stays in lockstep with the scheduled graph. *)
  let program =
    if options.cluster then Mps_clustering.Program_fuse.fuse program else program
  in
  let options = { options with cluster = false } in
  let pipeline = run ?pool ~options (Program.dfg program) in
  match
    Obs.span "allocate" (fun () ->
        Allocation.allocate ~tile:options.tile program pipeline.schedule)
  with
  | Error m -> Error m
  | Ok allocation ->
      let energy =
        Obs.span "energy" (fun () ->
            Energy.estimate ~tile:options.tile program pipeline.schedule
              allocation)
      in
      Ok { program; pipeline; allocation; energy }

let verify mapped ~env =
  Simulator.check_against_reference ~tile:mapped.pipeline.options.tile
    mapped.program mapped.pipeline.schedule mapped.allocation ~env

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>pipeline: %d nodes, %d antichains over %d patterns@,\
     selected (%d): %a@,\
     schedule: %d cycles, config table %d/%s@]"
    (Dfg.node_count t.graph) t.antichains t.pattern_pool (List.length t.patterns)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Pattern.pp)
    t.patterns t.cycles t.config.Config_space.table_size
    (if t.config.Config_space.fits then "ok" else "OVERFLOW")
