(** The end-to-end mapping flow: the four phases of the Montium compiler
    (paper §1) wired together — (optional) clustering, pattern generation +
    selection, multi-pattern scheduling, and (for programs) allocation onto
    the tile.

    This is the one-call entry point a user of the library wants:
    "here is my kernel, give me patterns, a schedule, and the mapping
    evidence". *)

type options = {
  capacity : int;  (** C; defaults to the tile's 5 ALUs. *)
  pdef : int;  (** Number of patterns to select. *)
  span_limit : int option;
      (** Antichain span limit for pattern generation; [Some 1] reproduces
          the paper's Table 7 operating point. *)
  enumeration_budget : int option;
      (** Cap on the antichain enumeration (it is exponential in graph
          width); when hit, {!t.truncated} is set and selection works on
          the visited prefix. *)
  selection : Mps_select.Select.params;
  strategy : Mps_select.Auto.strategy;
      (** Which selector runs: [Paper] (the default) is the faithful
          Eq. 8/9 heuristic; [Auto rules] dispatches one portfolio backend
          per graph from its feature vector ({!Mps_select.Auto}). *)
  priority : Mps_scheduler.Multi_pattern.pattern_priority;
  cluster : bool;  (** Fuse multiply-accumulate pairs first. *)
  tile : Mps_montium.Tile.t;
  jobs : int;
      (** Worker domains for the antichain enumeration/classification
          phase.  1 = sequential; the result is identical for any value
          (see {!Mps_antichain.Classify.compute}). *)
}

val default_options : options
(** capacity 5, pdef 4, span limit 1, a 5-million-antichain enumeration
    budget, paper selection params, [Paper] strategy, F2 priority, no
    clustering, default tile, jobs 1. *)

type t = {
  options : options;
  graph : Mps_dfg.Dfg.t;  (** The scheduled graph (clustered if enabled). *)
  clustering : Mps_clustering.Cluster.t option;
  universe : Mps_pattern.Universe.t;
      (** The pattern universe built during classification and shared by
          selection and scheduling.  Ids are internal: nothing printed by
          the flow depends on them. *)
  pattern_pool : int;  (** Distinct patterns found in the graph. *)
  antichains : int;  (** Antichains enumerated under the span limit. *)
  truncated : bool;  (** The enumeration budget cut pattern generation short. *)
  patterns : Mps_pattern.Pattern.t list;  (** The selected patterns. *)
  selection_report : Mps_select.Select.report;
      (** Eq. 8/9 step log when [strategy] is [Paper]; under [Auto] the
          report carries the dispatched backend's patterns with an empty
          step list (the decision evidence lives in {!t.auto}). *)
  auto : Mps_select.Auto.outcome option;
      (** The auto-selector's decision (matched rule, features, backend)
          when [strategy] is [Auto]; [None] under [Paper]. *)
  schedule : Mps_scheduler.Schedule.t;
  cycles : int;
  config : Mps_montium.Config_space.t;
}

val run : ?pool:Mps_exec.Pool.t -> ?options:options -> Mps_dfg.Dfg.t -> t
(** Full flow on a bare DFG.  An explicit [pool] overrides [options.jobs]
    (callers running many pipelines reuse one pool instead of respawning
    domains per graph); otherwise [options.jobs > 1] creates a pool for
    the duration of the call.
    @raise Invalid_argument on nonsensical options (pdef, capacity or
    jobs < 1). *)

val run_classified :
  ?options:options ->
  ?clustering:Mps_clustering.Cluster.t ->
  ?eval:Mps_scheduler.Eval.t ->
  ?features:Mps_select.Features.t ->
  Mps_antichain.Classify.t ->
  t
(** The flow from an already-computed classification on: selection,
    scheduling, configuration report.  This is {!run} minus pattern
    generation — what a warm serve session runs when the graph's
    classification is already cached — and produces exactly the [t] that
    {!run} with matching options would (the classification's capacity and
    span must be the ones [options] names).  [clustering] is threaded into
    {!t.clustering} verbatim for callers that clustered upstream; [eval]
    reuses a warm evaluation context for the classified graph (it must
    share the classification's universe) instead of building one — the
    schedule is identical either way.  [features], meaningful only under
    an [Auto] strategy, is a pre-extracted feature vector for the
    classified graph (the serve session passes its fingerprint-keyed
    cache); when absent the auto path derives it from [eval]'s analyses. *)

type certification = {
  heuristic : Mps_pattern.Pattern.t list;
      (** The Eq. 8/9 selection on the same classification. *)
  heuristic_cycles : int;
      (** Its canonical-order cycles ({!Mps_select.Exact.canonical_order}). *)
  exact : Mps_select.Exact.certificate;
      (** The branch-and-bound certificate, seeded with the heuristic. *)
  gap_percent : float;
      (** [(heuristic − exact) / exact × 100]; never negative because the
          heuristic seeds the incumbent.  0 when the exact search found
          nothing schedulable. *)
}

val certify :
  ?pool:Mps_exec.Pool.t ->
  ?options:options ->
  ?max_nodes:int ->
  Mps_dfg.Dfg.t ->
  certification
(** Runs the heuristic selection, then the exact branch-and-bound seeded
    with it, on one shared classification — the evidence behind
    [mpsched select --certify].  When [exact.proven] is set the gap is a
    true optimality gap over the exact search family; otherwise it is only
    an upper bound ([max_nodes] cut some subtree short).  Deterministic
    for every [jobs]/[pool] value, like {!run}. *)

val certify_classified :
  ?pool:Mps_exec.Pool.t ->
  ?search:
    (seeds:Mps_pattern.Pattern.t list list ->
    Mps_antichain.Classify.t ->
    Mps_select.Exact.certificate) ->
  ?options:options ->
  ?max_nodes:int ->
  ?bans:Mps_select.Exact.ban_entry list ->
  Mps_antichain.Classify.t ->
  certification
(** {!certify} from an already-computed classification, optionally warm:
    [bans] is a previous certificate's ban list over the same family
    ({!Mps_select.Exact.search}'s contract), so repeat certifications in a
    serve session skip every already-costed set.  The certification's
    optimal set and cycles are identical to a cold {!certify}; only the
    search accounting (ban hits, evaluations) reflects the reuse.

    [search] overrides how the exact search itself is executed — it
    receives the heuristic seed and must return the certificate
    {!Mps_select.Exact.search} with the same family parameters would (the
    process-sharding engine plugs in here); [pool]/[max_nodes]/[bans] are
    the caller's responsibility to thread into the override. *)

type mapped = {
  program : Mps_frontend.Program.t;
      (** What was actually mapped: the input program, MAC-fused first when
          [cluster] was set. *)
  pipeline : t;
  allocation : Mps_montium.Allocation.t;
  energy : Mps_montium.Energy.breakdown;
}

val map_program :
  ?pool:Mps_exec.Pool.t ->
  ?options:options ->
  Mps_frontend.Program.t ->
  (mapped, string) result
(** [run] plus allocation and the energy estimate.  With [cluster] set the
    program is first rewritten by {!Mps_clustering.Program_fuse} (multiply→
    add pairs become MAC instructions), so the clustered path stays fully
    executable.  [Error] reports an allocation failure. *)

val verify : mapped -> env:(string -> float) -> (unit, string) result
(** Simulates the mapped program on the tile and compares against the
    reference evaluator (fusion preserves the float semantics exactly, so
    this also validates a fused mapping against the original intent). *)

val pp_summary : Format.formatter -> t -> unit
