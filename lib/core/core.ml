(** Umbrella module: one [open]/alias point for the whole reproduction.

    The paper's contribution lives in {!Select}; everything else is the
    substrate it runs on.  See DESIGN.md for the system inventory and
    EXPERIMENTS.md for the paper-vs-measured record. *)

(* Utilities *)
module Pool = Mps_exec.Pool
module Backend = Mps_exec.Backend
module Obs = Mps_obs.Obs
module Json = Mps_util.Json
module Rng = Mps_util.Rng
module Multiset = Mps_util.Multiset
module Bitset = Mps_util.Bitset
module Heap = Mps_util.Heap
module Mstats = Mps_util.Mstats
module Csv = Mps_util.Csv
module Ascii_table = Mps_util.Ascii_table
module Listx = Mps_util.Listx

(* Data-flow graphs (§3) *)
module Color = Mps_dfg.Color
module Dfg = Mps_dfg.Dfg
module Topo = Mps_dfg.Topo
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Dot = Mps_dfg.Dot
module Dfg_parse = Mps_dfg.Parse

(* Patterns and antichains (§3, §5.1) *)
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Antichain = Mps_antichain.Antichain
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Posets = Mps_antichain.Posets

(* Schedulers (§4 and baselines) *)
module Node_priority = Mps_scheduler.Node_priority
module Schedule = Mps_scheduler.Schedule
module Multi_pattern = Mps_scheduler.Multi_pattern
module Eval = Mps_scheduler.Eval
module Reference_sched = Mps_scheduler.Reference
module Force_directed = Mps_scheduler.Force_directed
module Optimal = Mps_scheduler.Optimal
module Loop_graph = Mps_scheduler.Loop_graph
module Modulo = Mps_scheduler.Modulo
module Pipeline_code = Mps_scheduler.Pipeline_code
module Schedule_opt = Mps_scheduler.Schedule_opt

(* Pattern selection — the paper's contribution (§5.2) *)
module Select = Mps_select.Select
module Random_select = Mps_select.Random_select
module Greedy_cover = Mps_select.Greedy_cover
module Exhaustive = Mps_select.Exhaustive
module Exact = Mps_select.Exact
module Pattern_source = Mps_select.Pattern_source
module Annealing = Mps_select.Annealing
module Beam = Mps_select.Beam
module Shared = Mps_select.Shared
module Priority_variants = Mps_select.Priority_variants
module Portfolio = Mps_select.Portfolio
module Features = Mps_select.Features
module Auto = Mps_select.Auto

(* Expression frontend (Transformation phase, [3]) *)
module Opcode = Mps_frontend.Opcode
module Expr = Mps_frontend.Expr
module Program = Mps_frontend.Program
module Lower = Mps_frontend.Lower
module Rebalance = Mps_frontend.Rebalance
module Strength = Mps_frontend.Strength
module Program_text = Mps_frontend.Program_text

(* Clustering phase ([3]) *)
module Cluster = Mps_clustering.Cluster
module Program_fuse = Mps_clustering.Program_fuse

(* Workloads (§4.3, §6) *)
module Paper_graphs = Mps_workloads.Paper_graphs
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Image = Mps_workloads.Image
module Sorting = Mps_workloads.Sorting
module Cordic = Mps_workloads.Cordic
module Ofdm = Mps_workloads.Ofdm
module Loops = Mps_workloads.Loops
module Random_dag = Mps_workloads.Random_dag
module Suite = Mps_workloads.Suite

(* Montium tile model (§1, Fig. 1) *)
module Tile = Mps_montium.Tile
module Allocation = Mps_montium.Allocation
module Simulator = Mps_montium.Simulator
module Config_space = Mps_montium.Config_space
module Energy = Mps_montium.Energy
module Register_file = Mps_montium.Register_file
module Multi_tile = Mps_montium.Multi_tile
module Fixed_point = Mps_montium.Fixed_point
module Codegen = Mps_montium.Codegen
module Listing_vm = Mps_montium.Listing_vm

(* End-to-end flow *)
module Pipeline = Pipeline
