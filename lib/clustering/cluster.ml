module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color

type t = {
  clustered : Dfg.t;
  members : int list array;
  of_original : int array;
}

let mac_color = Color.of_char 'm'
let mul_color = Color.of_char 'c'
let add_color = Color.of_char 'a'
let sub_color = Color.of_char 'b'

let rebuild g groups =
  (* groups: list of member lists (original ids, dataflow order), covering
     every node exactly once.  Builds the contracted graph. *)
  let n = Dfg.node_count g in
  let of_original = Array.make n (-1) in
  let groups = Array.of_list groups in
  Array.iteri
    (fun new_id members -> List.iter (fun old_id -> of_original.(old_id) <- new_id) members)
    groups;
  assert (Array.for_all (fun x -> x >= 0) of_original);
  let builder = Dfg.Builder.create () in
  Array.iter
    (fun members ->
      let name = String.concat "+" (List.map (Dfg.name g) members) in
      let color =
        match members with
        | [ single ] -> Dfg.color g single
        | _ -> mac_color
      in
      ignore (Dfg.Builder.add_node builder ~name color))
    groups;
  Dfg.iter_edges
    (fun s d ->
      let cs = of_original.(s) and cd = of_original.(d) in
      if cs <> cd then Dfg.Builder.add_edge builder cs cd)
    g;
  {
    clustered = Dfg.Builder.build builder;
    members = Array.map (fun m -> m) groups;
    of_original;
  }

let identity g = rebuild g (List.map (fun i -> [ i ]) (Dfg.nodes g))

let mac g =
  let n = Dfg.node_count g in
  let partner = Array.make n (-1) in
  let absorbed = Array.make n false in
  let is c color = Color.equal c color in
  Dfg.iter_nodes
    (fun u ->
      if is (Dfg.color g u) mul_color && not absorbed.(u) then
        match Dfg.succs g u with
        | [ v ] when (is (Dfg.color g v) add_color || is (Dfg.color g v) sub_color)
                     && partner.(v) = -1 && not absorbed.(v) ->
            partner.(v) <- u;
            absorbed.(u) <- true
        | _ -> ())
    g;
  let groups =
    List.filter_map
      (fun i ->
        if absorbed.(i) then None
        else if partner.(i) >= 0 then Some [ partner.(i); i ]
        else Some [ i ])
      (Dfg.nodes g)
  in
  rebuild g groups

let cluster_count t = Dfg.node_count t.clustered

let fused_pairs t =
  Array.fold_left (fun acc m -> if List.length m > 1 then acc + 1 else acc) 0 t.members

let pp ppf t =
  Format.fprintf ppf "clustering: %d clusters, %d fused pairs" (cluster_count t)
    (fused_pairs t)
