module Clock = Mps_util.Clock
module Json = Mps_util.Json
module Csv = Mps_util.Csv
module Ascii_table = Mps_util.Ascii_table

(* Events are kept newest-first; every report walk reverses once.  [dom] is
   captured at open so a trace shows which domain a span actually ran on. *)
type ev =
  | Open of { name : string; t0 : int64; dom : int }
  | Close of { t1 : int64 }

type kind = Sum | Dist

type cstat = {
  ckind : kind;
  mutable samples : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

(* A sink is both a collector's root store and a per-task buffer. *)
type sink = {
  mutable events : ev list;
  ctable : (string, cstat) Hashtbl.t;
}

type t = { root : sink; created : int64 }

let fresh_sink () = { events = []; ctable = Hashtbl.create 16 }
let create () = { root = fresh_sink (); created = Clock.now_ns () }

(* The ambient sink of the calling domain.  One DLS slot per domain: the
   main domain carries the collector installed by [run]; pool worker
   domains carry the task buffer of whatever task they are executing, and
   nothing between tasks. *)
let ambient : sink option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install s f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f

let run t f = install (Some t.root) f
let active () = Domain.DLS.get ambient <> None

let span name f =
  match Domain.DLS.get ambient with
  | None -> f ()
  | Some s ->
      s.events <-
        Open { name; t0 = Clock.now_ns (); dom = (Domain.self () :> int) }
        :: s.events;
      Fun.protect
        ~finally:(fun () -> s.events <- Close { t1 = Clock.now_ns () } :: s.events)
        f

let record kind name v =
  match Domain.DLS.get ambient with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.ctable name with
      | Some c ->
          c.samples <- c.samples + 1;
          c.total <- c.total + v;
          if v < c.vmin then c.vmin <- v;
          if v > c.vmax then c.vmax <- v
      | None ->
          Hashtbl.replace s.ctable name
            { ckind = kind; samples = 1; total = v; vmin = v; vmax = v })

let count name v = record Sum name v
let observe name v = record Dist name v

let merge name kind ~samples ~total ~vmin ~vmax =
  if samples > 0 then
    match Domain.DLS.get ambient with
    | None -> ()
    | Some s -> (
        match Hashtbl.find_opt s.ctable name with
        | Some c ->
            c.samples <- c.samples + samples;
            c.total <- c.total + total;
            if vmin < c.vmin then c.vmin <- vmin;
            if vmax > c.vmax then c.vmax <- vmax
        | None ->
            Hashtbl.replace s.ctable name
              { ckind = kind; samples; total; vmin; vmax })

module Task = struct
  type buffer = sink

  let begin_batch ~n =
    match Domain.DLS.get ambient with
    | None -> None
    | Some _ -> Some (Array.init n (fun _ -> fresh_sink ()))

  let run_in buf f = install (Some buf) f

  let merge_counters ~into b =
    Hashtbl.iter
      (fun name c ->
        match Hashtbl.find_opt into name with
        | Some e ->
            e.samples <- e.samples + c.samples;
            e.total <- e.total + c.total;
            if c.vmin < e.vmin then e.vmin <- c.vmin;
            if c.vmax > e.vmax then e.vmax <- c.vmax
        | None -> Hashtbl.replace into name { c with ckind = c.ckind })
      b.ctable

  let commit bufs =
    match Domain.DLS.get ambient with
    | None -> ()
    | Some parent ->
        Array.iter
          (fun b ->
            (* Both lists are newest-first: prepending the buffer keeps the
               chronological order "parent so far, then this task". *)
            parent.events <- b.events @ parent.events;
            merge_counters ~into:parent.ctable b)
          bufs
end

(* --- reports ----------------------------------------------------------- *)

type phase = { path : string; calls : int; total_ns : int64; self_ns : int64 }

type counter = {
  name : string;
  kind : kind;
  samples : int;
  total : int;
  vmin : int;
  vmax : int;
}

let event_count t = List.length t.root.events

(* Generic well-nested walk: [on_close] sees the frame's name, path, open
   data and close time.  Spans left open (reporting from inside [run]) are
   closed at the last timestamp seen. *)
let walk_spans t ~on_close =
  let events = List.rev t.root.events in
  let last =
    List.fold_left
      (fun acc -> function
        | Open { t0; _ } -> if t0 > acc then t0 else acc
        | Close { t1 } -> if t1 > acc then t1 else acc)
      t.created events
  in
  let stack = ref [] in
  let depth_path name =
    match !stack with
    | [] -> name
    | (_, path, _, _, _) :: _ -> path ^ "/" ^ name
  in
  List.iter
    (function
      | Open { name; t0; dom } ->
          stack := (name, depth_path name, t0, dom, ref 0L) :: !stack
      | Close { t1 } -> (
          match !stack with
          | [] -> () (* stray close: drop rather than crash a report *)
          | (name, path, t0, dom, child) :: rest ->
              stack := rest;
              let dur = Int64.sub t1 t0 in
              (match rest with
              | (_, _, _, _, pchild) :: _ -> pchild := Int64.add !pchild dur
              | [] -> ());
              on_close ~name ~path ~t0 ~dom ~dur ~child_ns:!child))
    events;
  (* Close dangling opens, innermost first. *)
  List.iter
    (fun (name, path, t0, dom, child) ->
      on_close ~name ~path ~t0 ~dom ~dur:(Int64.sub last t0) ~child_ns:!child)
    !stack;
  stack := []

let phases t =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  walk_spans t ~on_close:(fun ~name:_ ~path ~t0:_ ~dom:_ ~dur ~child_ns ->
      let row =
        match Hashtbl.find_opt table path with
        | Some r -> r
        | None ->
            let r = ref (0, 0L, 0L) in
            Hashtbl.replace table path r;
            order := path :: !order;
            r
      in
      let calls, total, self = !row in
      row :=
        ( calls + 1,
          Int64.add total dur,
          Int64.add self (Int64.sub dur child_ns) ));
  (* [order] recorded paths at first *close*; spans close innermost-first,
     so re-sort into first-open order by walking once more is overkill —
     parent paths are prefixes of their children, and a stable sort on
     path restores the tree reading order. *)
  List.rev !order
  |> List.map (fun path ->
         let calls, total_ns, self_ns = !(Hashtbl.find table path) in
         { path; calls; total_ns; self_ns })
  |> List.stable_sort (fun a b -> compare a.path b.path)

let counters t =
  Hashtbl.fold
    (fun name (c : cstat) acc ->
      {
        name;
        kind = c.ckind;
        samples = c.samples;
        total = c.total;
        vmin = c.vmin;
        vmax = c.vmax;
      }
      :: acc)
    t.root.ctable []
  |> List.sort (fun a b -> String.compare a.name b.name)

let well_formed t =
  let events = List.rev t.root.events in
  let ok, depth =
    List.fold_left
      (fun (ok, depth) -> function
        | Open _ -> (ok, depth + 1)
        | Close _ -> ((ok && depth > 0), depth - 1))
      (true, 0) events
  in
  ok && depth = 0

let summary_table t =
  let buf = Buffer.create 1024 in
  let spans = phases t in
  if spans <> [] then begin
    Buffer.add_string buf "phases:\n";
    let tbl =
      Ascii_table.create ~header:[ "phase"; "calls"; "total ms"; "self ms" ] ()
    in
    List.iter
      (fun p ->
        Ascii_table.add_row tbl
          [
            p.path;
            string_of_int p.calls;
            Printf.sprintf "%.3f" (Clock.ns_to_ms p.total_ns);
            Printf.sprintf "%.3f" (Clock.ns_to_ms p.self_ns);
          ])
      spans;
    Buffer.add_string buf (Ascii_table.render tbl);
    Buffer.add_char buf '\n'
  end;
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    let tbl =
      Ascii_table.create
        ~header:[ "counter"; "kind"; "samples"; "total"; "min"; "max"; "mean" ]
        ()
    in
    List.iter
      (fun c ->
        Ascii_table.add_row tbl
          [
            c.name;
            (match c.kind with Sum -> "sum" | Dist -> "dist");
            string_of_int c.samples;
            string_of_int c.total;
            string_of_int c.vmin;
            string_of_int c.vmax;
            Printf.sprintf "%.2f" (float_of_int c.total /. float_of_int c.samples);
          ])
      cs;
    Buffer.add_string buf (Ascii_table.render tbl);
    Buffer.add_char buf '\n'
  end;
  if spans = [] && cs = [] then Buffer.add_string buf "no events recorded\n";
  Buffer.contents buf

let chrome_trace t =
  let events = ref [] in
  walk_spans t ~on_close:(fun ~name ~path:_ ~t0 ~dom ~dur ~child_ns:_ ->
      events :=
        Json.Obj
          [
            ("name", Json.Str name);
            ("ph", Json.Str "X");
            ("ts", Json.Num (Clock.ns_to_us (Int64.sub t0 t.created)));
            ("dur", Json.Num (Clock.ns_to_us dur));
            ("pid", Json.Num 1.0);
            ("tid", Json.Num (float_of_int dom));
          ]
        :: !events);
  let counter_obj =
    Json.Obj
      (List.map
         (fun c ->
           ( c.name,
             Json.Obj
               [
                 ("kind", Json.Str (match c.kind with Sum -> "sum" | Dist -> "dist"));
                 ("samples", Json.Num (float_of_int c.samples));
                 ("total", Json.Num (float_of_int c.total));
                 ("min", Json.Num (float_of_int c.vmin));
                 ("max", Json.Num (float_of_int c.vmax));
               ] ))
         (counters t))
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.rev !events));
         ("displayTimeUnit", Json.Str "ms");
         ("counters", counter_obj);
       ])

let validate_chrome_trace text =
  match Json.parse text with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok v -> (
      match Json.member "traceEvents" v with
      | None -> Error "missing traceEvents"
      | Some (Json.Arr evs) -> (
          let bad =
            List.find_opt
              (fun e ->
                List.exists
                  (fun k -> Json.member k e = None)
                  [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ])
              evs
          in
          match bad with
          | Some _ -> Error "trace event missing a required field"
          | None -> (
              match Json.member "counters" v with
              | Some (Json.Obj _) -> Ok (List.length evs)
              | _ -> Error "missing counters object"))
      | Some _ -> Error "traceEvents is not an array")

let counters_csv t =
  let csv =
    Csv.create ~header:[ "counter"; "kind"; "samples"; "total"; "min"; "max" ]
  in
  List.iter
    (fun c ->
      Csv.add_row csv
        [
          c.name;
          (match c.kind with Sum -> "sum" | Dist -> "dist");
          string_of_int c.samples;
          string_of_int c.total;
          string_of_int c.vmin;
          string_of_int c.vmax;
        ])
    (counters t);
  csv
