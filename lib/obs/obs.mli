(** Structured observability: phase spans, counters and histograms over the
    whole mapping flow, zero-cost when disabled.

    Every pipeline phase — antichain enumeration, classification, pattern
    selection, multi-pattern scheduling, allocation — is instrumented with
    calls into this module ({!span}, {!count}, {!observe}).  The calls are
    {e ambient}: they record into whatever collector is installed on the
    calling domain ({!run}), and when none is installed they reduce to one
    domain-local read and a branch, so the un-instrumented behaviour and
    output of the flow are untouched (the [check.sh] gate diffs a traced
    run against a plain run to enforce byte-identity of the primary
    output).

    {2 Determinism under [--jobs]}

    Tasks running on an {!Mps_exec.Pool} record into per-task buffers
    ({!Task}) that the pool merges into the submitting domain's collector
    in {e submission order}, the same order its results are merged in.
    Counter totals are therefore identical for every [--jobs] value, and
    the span tree is deterministic for a fixed jobs count (wall-clock
    numbers of course vary run to run; the tree {e shape} gains pool
    batches only when [jobs > 1]).  If any task of a batch fails, the whole
    batch's buffers are discarded, so an optimistic parallel attempt that
    aborts (e.g. classification over budget, see
    {!Mps_antichain.Classify.compute}) leaves no events behind and the
    sequential re-run reports exactly the [--jobs 1] story.

    {2 Span and counter names}

    Names are dotted, prefixed by their subsystem ([classify.antichains],
    [schedule.ready], [enumerate.pruned], …).  The full registry — every
    span and counter the pipeline emits, what it means and where it is
    measured — lives in [docs/architecture.md]; the per-phase summary table
    and the CSV export both key on these names. *)

type t
(** A collector: an event buffer plus a counter table, owned by the domain
    that {!run}s it.  Not thread-safe — parallel phases record through
    {!Task} buffers instead of sharing a collector. *)

val create : unit -> t
(** A fresh, empty, not-yet-installed collector. *)

val run : t -> (unit -> 'a) -> 'a
(** [run c f] installs [c] as the calling domain's ambient collector for
    the duration of [f] (restoring the previous one, if any, on the way
    out) and returns [f ()].  Everything [f] does — directly or through a
    pool — records into [c]. *)

val active : unit -> bool
(** Whether the calling domain currently has an ambient collector.
    Instrumentation sites may use this to skip building expensive
    arguments; {!span}/{!count}/{!observe} already no-op when inactive. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named monotonic-clock span
    ({!Mps_util.Clock}).  Spans nest; the close is recorded even when [f]
    raises, so a collector's event stream is always well-formed.  No-op
    when no collector is installed. *)

val count : string -> int -> unit
(** [count name v] adds [v] to the named counter (creating it at zero).
    No-op when no collector is installed. *)

val observe : string -> int -> unit
(** [observe name v] records [v] as one sample of the named distribution
    (ready-list sizes, nodes placed per cycle, …): sample count, sum, min
    and max are kept.  No-op when no collector is installed. *)

(** Per-task buffering for {!Mps_exec.Pool}.  The pool is the only
    intended caller: it opens one buffer per task, installs it on whatever
    domain executes the task, and commits all buffers in submission order
    after the batch — see the determinism note above. *)
module Task : sig
  type buffer

  val begin_batch : n:int -> buffer array option
  (** [n] fresh buffers when the calling domain has an ambient collector;
      [None] (record nothing) otherwise. *)

  val run_in : buffer -> (unit -> 'a) -> 'a
  (** Installs the buffer as the {e executing} domain's ambient collector
      for the duration of the call (restoring the previous sink after). *)

  val commit : buffer array -> unit
  (** Appends every buffer's events and merges every buffer's counters
      into the calling domain's ambient collector, in array (= submission)
      order.  Call only on success; dropping the array instead discards
      the batch's telemetry. *)
end

(** {2 Reports} *)

type phase = {
  path : string;  (** Slash-joined span names, e.g. ["pipeline/classify"]. *)
  calls : int;
  total_ns : int64;  (** Wall time including children. *)
  self_ns : int64;  (** Wall time excluding child spans. *)
}

val phases : t -> phase list
(** Aggregated span tree in first-open order.  A span still open at report
    time (possible only when reporting from inside {!run}) is closed at the
    last recorded timestamp. *)

type kind = Sum | Dist

val merge : string -> kind -> samples:int -> total:int -> vmin:int -> vmax:int -> unit
(** [merge name kind ~samples ~total ~vmin ~vmax] folds a precomputed
    aggregate into the named counter, exactly as if [samples] individual
    {!count}/{!observe} calls totalling [total] with extremes
    [vmin]/[vmax] had been recorded one by one.  This is the replay
    primitive behind memoization: a cache hit re-emits the counters of the
    evaluation it skips (the scheduler's [Eval] cache), so counter tables stay
    byte-identical whether or not a result came from the cache.  No-op
    when no collector is installed or [samples <= 0]. *)

type counter = {
  name : string;
  kind : kind;
  samples : int;  (** Number of {!count}/{!observe} calls merged in. *)
  total : int;  (** Sum of all recorded values. *)
  vmin : int;
  vmax : int;
}

val counters : t -> counter list
(** All counters sorted by name — a deterministic presentation whatever
    order merging inserted them in. *)

val event_count : t -> int
(** Raw number of recorded span events (opens + closes); 0 for a collector
    that was never installed.  Exposed for the test suite. *)

val well_formed : t -> bool
(** Every close matches an open and the stream ends at depth zero. *)

val summary_table : t -> string
(** The per-phase timing/counter tables as aligned ASCII — what
    [mpsched ... --stats] prints to stderr. *)

val chrome_trace : t -> string
(** The run as Chrome trace-event JSON (the ["traceEvents"] array of
    complete ["ph":"X"] events plus a ["counters"] object), loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Span
    timestamps are microseconds relative to the collector's creation;
    [tid] is the OCaml domain the span ran on, so a [--jobs N] trace shows
    one track per domain. *)

val validate_chrome_trace : string -> (int, string) result
(** Re-parses an emitted trace through {!Json} and checks the shape every
    consumer relies on: a ["traceEvents"] array whose members carry
    [name]/[ph]/[ts]/[dur]/[pid]/[tid], and a ["counters"] object.
    Returns the number of trace events — [mpsched tracecheck] is this
    function on a file. *)

val counters_csv : t -> Mps_util.Csv.t
(** Counters as CSV rows [name,kind,samples,total,min,max] (sorted by
    name) — the bench harness writes these next to its result tables. *)
