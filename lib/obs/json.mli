(** Minimal JSON tree: just enough to emit and re-read Chrome trace-event
    files.

    The emitter ({!to_string}) is what {!Obs.chrome_trace} renders through,
    so every trace the CLI writes is valid by construction; the parser
    ({!parse}) is the round-trip check — [mpsched tracecheck] and the test
    suite load emitted traces back through it.  It is a strict
    recursive-descent parser for the JSON subset the emitter produces
    (objects, arrays, strings with escapes, numbers, booleans, null); it is
    not a general standards-lawyer JSON implementation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace except after the
    top-level commas of objects and arrays, for greppability).  Strings are
    escaped per RFC 8259; numbers print through ["%.12g"] with integral
    values rendered without a fractional part. *)

val parse : string -> (t, string) result
(** Parses one JSON value followed only by whitespace.  [Error] carries a
    byte offset and a reason. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on any other
    constructor. *)
