exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let of_native_string text =
  let b = Dfg.Builder.create () in
  let ids = Hashtbl.create 64 in
  let resolve lineno name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> fail lineno "unknown node %S in edge" name
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      match tokens (strip_comment raw) with
      | [] -> ()
      | [ "node"; name; color ] ->
          if String.length color <> 1 then
            fail lineno "color must be a single character, got %S" color;
          let color =
            try Color.of_char color.[0]
            with Invalid_argument m -> fail lineno "%s" m
          in
          let id =
            try Dfg.Builder.add_node b ~name color
            with Invalid_argument m -> fail lineno "%s" m
          in
          Hashtbl.add ids name id
      | [ "edge"; src; dst ] -> (
          try Dfg.Builder.add_edge b (resolve lineno src) (resolve lineno dst)
          with Invalid_argument m -> fail lineno "%s" m)
      | cmd :: _ -> fail lineno "unknown directive %S" cmd)
    lines;
  Dfg.Builder.build b

(* --- Graphviz DOT subset ----------------------------------------------- *)

(* Just enough DOT to read back the files [Dot.render] writes (and hand-kept
   figures like fig2_3dft.dot): one statement per line, node statements
   ["name" [attrs];], edge chains ["a" -> "b" -> "c";].  Attributes are
   ignored; the node's color is the first character of its name, which is
   the repo-wide naming convention the DOT renderer itself relies on. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let strip_line_comment s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '/' && s.[i + 1] = '/' then Some i
    else find (i + 1)
  in
  match find 0 with None -> s | Some i -> String.sub s 0 i

let strip_semi s =
  let s = String.trim s in
  let n = String.length s in
  if n > 0 && s.[n - 1] = ';' then String.trim (String.sub s 0 (n - 1)) else s

(* [parse_name lineno s] reads a (possibly quoted) node name off the front
   of [s] and returns it with the trimmed remainder. *)
let parse_name lineno s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then fail lineno "expected a node name"
  else if s.[0] = '"' then
    match String.index_from_opt s 1 '"' with
    | None -> fail lineno "unterminated quoted name"
    | Some j ->
        (String.sub s 1 (j - 1), String.trim (String.sub s (j + 1) (n - j - 1)))
  else begin
    let j = ref 0 in
    while !j < n && is_ident_char s.[!j] do
      incr j
    done;
    if !j = 0 then fail lineno "expected a node name, got %S" s
    else (String.sub s 0 !j, String.trim (String.sub s !j (n - !j)))
  end

let split_arrows s =
  let n = String.length s in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '-' && s.[!i + 1] = '>' then begin
      parts := String.sub s !start (!i - !start) :: !parts;
      start := !i + 2;
      i := !i + 2
    end
    else incr i
  done;
  List.rev (String.sub s !start (n - !start) :: !parts)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let of_dot_string text =
  let b = Dfg.Builder.create () in
  let ids = Hashtbl.create 64 in
  (* Nodes get ids in first-appearance order, whether declared explicitly
     or implicitly by an edge — the standard DOT reading. *)
  let declare lineno name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        if name = "" then fail lineno "empty node name";
        let color =
          try Color.of_char name.[0]
          with Invalid_argument m -> fail lineno "%s" m
        in
        let id =
          try Dfg.Builder.add_node b ~name color
          with Invalid_argument m -> fail lineno "%s" m
        in
        Hashtbl.add ids name id;
        id
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = strip_semi (strip_comment (strip_line_comment raw)) in
      if line = "" || line = "{" || line = "}" then ()
      else if has_prefix ~prefix:"digraph" line || has_prefix ~prefix:"strict" line
      then ()
      else
        match split_arrows line with
        | [] -> ()
        | [ stmt ] -> (
            (* A lone statement: node declaration, attribute default
               ([node [...]], [edge [...]], [graph [...]]) or graph-level
               [key=value] — only the first declares anything. *)
            let name, rest = parse_name lineno stmt in
            match name with
            | "node" | "edge" | "graph" -> ()
            | _ when has_prefix ~prefix:"=" rest -> ()
            | _ -> ignore (declare lineno name))
        | _ :: _ :: _ as endpoints ->
            let names = List.map (fun p -> fst (parse_name lineno p)) endpoints in
            let rec chain = function
              | src :: (dst :: _ as rest) ->
                  (try
                     Dfg.Builder.add_edge b (declare lineno src)
                       (declare lineno dst)
                   with Invalid_argument m -> fail lineno "%s" m);
                  chain rest
              | _ -> ()
            in
            chain names)
    lines;
  Dfg.Builder.build b

(* Sniff the format: the first meaningful token of a DOT file is [digraph]
   (or [strict]); the native format starts with [node]/[edge]. *)
let is_dot text =
  let rec go = function
    | [] -> false
    | l :: rest -> (
        match tokens (strip_comment (strip_line_comment l)) with
        | [] -> go rest
        | t :: _ -> has_prefix ~prefix:"digraph" t || t = "strict")
  in
  go (String.split_on_char '\n' text)

let of_string text =
  if is_dot text then of_dot_string text else of_native_string text

let to_string g =
  let buf = Buffer.create 256 in
  Dfg.iter_nodes
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "node %s %s\n" (Dfg.name g i) (Color.to_string (Dfg.color g i))))
    g;
  Dfg.iter_edges
    (fun s d ->
      Buffer.add_string buf (Printf.sprintf "edge %s %s\n" (Dfg.name g s) (Dfg.name g d)))
    g;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path g = Dot.write_file ~path (to_string g)
