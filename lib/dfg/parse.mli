(** Textual DFG formats: load and save graphs as plain files.

    The native format is line-based:

    {v
    # comment (also after '#' on any line)
    node <name> <color-char>
    edge <src-name> <dst-name>
    v}

    Blank lines are ignored.  Nodes must be declared before edges mention
    them; node ids are assigned in declaration order, so a round-trip
    through {!to_string}/{!of_string} preserves ids.

    {!of_string} and {!load} also accept a {b Graphviz DOT subset} — just
    enough to read back what {!Dot.render} writes and the checked-in figure
    files (e.g. [fig2_3dft.dot]).  A file whose first meaningful token is
    [digraph] (or [strict]) is parsed as DOT: one statement per line, node
    statements [["name" [attrs];]] and edge chains [["a" -> "b" -> "c";]].
    Attributes, [rankdir=...] lines and [node]/[edge]/[graph] defaults are
    ignored; a node's color is the first character of its name (the
    repo-wide convention the DOT renderer itself uses), and nodes may be
    declared implicitly by an edge.  Ids follow first appearance order. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> Dfg.t
(** Parses the native format, or the DOT subset when the text starts with
    [digraph]/[strict].
    @raise Parse_error on malformed input.
    @raise Dfg.Cycle if the described graph is cyclic. *)

val to_string : Dfg.t -> string
(** Inverse of {!of_string} up to comments and whitespace. *)

val load : string -> Dfg.t
(** [load path] reads and parses a file.  @raise Sys_error on I/O failure,
    plus the [of_string] exceptions. *)

val save : string -> Dfg.t -> unit
