(** Patterns: bags of operation colors (paper §3).

    "In a system with a fixed number C of reconfigurable resources, C
    functions that can be run by the C reconfigurable resources in parallel
    are called a pattern.  A pattern is therefore a bag of C elements.  A
    pattern might have less than C colors; the undefined elements are
    represented by dummies."

    We represent a pattern by the multiset of its {e defined} colors only —
    dummies are implicit, so the pattern "aabcc" of a 5-ALU machine and the
    same bag on a 6-ALU machine are the same value; the capacity only
    matters when asking whether the pattern fits a machine
    ({!fits_capacity}).  [size] counts defined elements with multiplicity,
    matching the paper's |p̄| (e.g. |{aa}| = 2 in the §5.2 example). *)

type t

val empty : t

val of_colors : Mps_dfg.Color.t list -> t

val of_string : ?capacity:int -> string -> t
(** [of_string "aabcc"]: one color per character.  Dashes are skipped so
    dummy-padded spellings like "aab--" round-trip.  When [capacity] is
    given, a spelling with more defined colors than the machine has ALUs is
    rejected immediately — user-supplied patterns fail loudly at the parse
    boundary instead of silently surviving until a later [fits_capacity]
    check deep in selection.
    @raise Invalid_argument on characters [Color.of_char] rejects, or when
    the defined-color count exceeds [capacity]. *)

val to_string : t -> string
(** Canonical spelling: colors sorted, repeated per multiplicity,
    e.g. ["aabcc"]. *)

val to_padded_string : capacity:int -> t -> string
(** Canonical spelling padded with '-' dummies up to [capacity], e.g.
    ["aab--"].  @raise Invalid_argument if the pattern exceeds capacity. *)

val size : t -> int
(** |p̄|: number of defined elements, with multiplicity. *)

val count : t -> Mps_dfg.Color.t -> int
val mem : t -> Mps_dfg.Color.t -> bool

val colors : t -> Mps_dfg.Color.t list
(** Distinct colors, sorted. *)

val color_set : t -> Mps_dfg.Color.Set.t

val to_counted_list : t -> (Mps_dfg.Color.t * int) list

val add : t -> Mps_dfg.Color.t -> t
val remove : t -> Mps_dfg.Color.t -> t

val fits_capacity : capacity:int -> t -> bool
(** [size ≤ capacity]. *)

val subpattern : t -> of_:t -> bool
(** [subpattern p ~of_:q]: every color of [p] occurs in [q] at least as
    often.  "We can use the selected pattern at the place where a subpattern
    is needed" (§5.2) — reflexive, antisymmetric, transitive. *)

val proper_subpattern : t -> of_:t -> bool

val join : t -> t -> t
(** Pointwise max: the smallest pattern having both arguments as
    subpatterns. *)

val meet : t -> t -> t
(** Pointwise min. *)

val sum : t -> t -> t
(** Pointwise sum (concatenating resource requirements). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the canonical spelling in braces: [{aabcc}]. *)

val of_antichain_colors : Mps_dfg.Dfg.t -> int list -> t
(** The pattern of a node set: the bag of the nodes' colors (§5.1
    "the antichains are classified according to their patterns"). *)

val enumerate : colors:Mps_dfg.Color.t list -> max_size:int -> t list
(** Every pattern of size 1..[max_size] over the given colors (distinct
    colors assumed), in increasing (size, lexicographic) order.  There are
    C(k+s-1, s) patterns of size s over k colors — intended for small k. *)

val random : Mps_util.Rng.t -> colors:Mps_dfg.Color.t list -> size:int -> t
(** Uniformly random bag: each of the [size] slots draws a color uniformly
    and independently — the paper's "randomly generated patterns" baseline
    (§6).  @raise Invalid_argument if [colors] is empty or [size < 0]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Dense pattern identifiers handed out by {!Universe} interning arenas.
    Ids are internal bookkeeping: they never appear in any text format or
    CLI output, and are only meaningful relative to the universe that
    allocated them. *)
module Id : sig
  type t = private int

  val of_int : int -> t
  (** For arena implementations and tests.  @raise Invalid_argument on a
      negative id. *)

  val to_int : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end
