(** An interning arena for patterns: the pattern universe.

    Every hot phase of the flow — antichain classification (§5.1), pattern
    selection (§5.2), multi-pattern scheduling (§4) — keeps asking the same
    questions about the same small set of distinct patterns: what is its
    canonical spelling, its size, its color set, and above all whether one
    pattern is a subpattern of another.  A universe answers those questions
    once.  Each distinct pattern is mapped to a dense integer id
    ({!Pattern.Id.t}); per-id size, color set and spelling are memoized at
    interning time; and the subpattern partial order over the interned
    patterns is materialized as a packed bit dominance matrix, so a
    subpattern test is one array index plus one bit probe instead of a
    multiset walk.

    The matrix is built lazily and incrementally: interning never pays for
    it, the first dominance query after new ids appeared extends it.  A
    scratch universe that is only ever interned into (e.g. a per-domain
    partial during parallel classification) therefore never builds a matrix
    at all.

    Ids are allocated densely in first-interning order, which makes them
    deterministic for any deterministic visit order — and {!merge} folds a
    second universe in {e its} id order, so per-domain universes merged in
    submission order yield the same master ids as the sequential walk.

    A universe is a mutable arena, not a thread-safe object: interning and
    querying must happen from one domain at a time.  Parallel phases give
    each domain its own scratch universe and {!merge} them afterwards. *)

type t

val create : ?expected:int -> unit -> t
(** A fresh, empty universe.  [expected] pre-sizes the arena (default 64);
    it is a hint, not a bound. *)

val cardinal : t -> int
(** Number of distinct patterns interned so far.  Ids [0 .. cardinal-1] are
    live. *)

val intern : t -> Pattern.t -> Pattern.Id.t
(** The id of the pattern, allocating the next dense id on first sight.
    Injective: two patterns receive the same id iff they are [Pattern.equal]. *)

val find : t -> Pattern.t -> Pattern.Id.t option
(** The id of an already-interned pattern, without allocating. *)

val pattern : t -> Pattern.Id.t -> Pattern.t
(** The pattern of an id: the round-trip inverse of {!intern}. *)

val size : t -> Pattern.Id.t -> int
(** Memoized [Pattern.size]. *)

val color_set : t -> Pattern.Id.t -> Mps_dfg.Color.Set.t
(** Memoized [Pattern.color_set]. *)

val to_string : t -> Pattern.Id.t -> string
(** Memoized canonical spelling ([Pattern.to_string]). *)

val padded_string : t -> capacity:int -> Pattern.Id.t -> string
(** The memoized spelling padded with '-' dummies up to [capacity].
    @raise Invalid_argument if the pattern exceeds the capacity. *)

val subpattern : t -> Pattern.Id.t -> of_:Pattern.Id.t -> bool
(** [subpattern u q ~of_:p] iff [Pattern.subpattern (pattern u q)
    ~of_:(pattern u p)] — answered from the dominance matrix in O(1) after
    the (amortized) lazy matrix extension. *)

val proper_subpattern : t -> Pattern.Id.t -> of_:Pattern.Id.t -> bool
(** Strict version; because interning is injective this is the matrix test
    plus an id comparison. *)

val merge : into:t -> t -> Pattern.Id.t array
(** [merge ~into other] interns every pattern of [other] into [into], in
    [other]'s id order, and returns the translation table: slot [i] holds
    the id in [into] of [other]'s id [i].  [other] is not modified. *)

val iter : (Pattern.Id.t -> Pattern.t -> unit) -> t -> unit
(** Iterates live ids in increasing (= interning) order. *)

val fold : (Pattern.Id.t -> Pattern.t -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f u init] folds [f] over the live ids in increasing (= interning)
    order: the accumulator-threading counterpart of {!iter}. *)

val sorted_ids : t -> Pattern.Id.t array
(** All live ids ordered by [Pattern.compare] of their patterns — the
    canonical presentation order every text format uses.  Fresh array. *)

val pp : Format.formatter -> t -> unit
(** "id: spelling" lines in id order, for debugging. *)
