module Color = Mps_dfg.Color
module Cms = Mps_util.Multiset.Make (Color)

type t = Cms.t

let empty = Cms.empty
let of_colors l = Cms.of_list l

let of_string ?capacity s =
  let p =
    String.fold_left
      (fun acc ch -> if ch = '-' then acc else Cms.add (Color.of_char ch) acc)
      Cms.empty s
  in
  (match capacity with
  | Some c when Cms.cardinal p > c ->
      invalid_arg
        (Printf.sprintf
           "Pattern.of_string: %S has %d defined colors but the machine \
            capacity is %d"
           s (Cms.cardinal p) c)
  | _ -> ());
  p

let to_string p =
  let buf = Buffer.create 8 in
  Cms.iter (fun c k -> Buffer.add_string buf (String.make k (Color.to_char c))) p;
  Buffer.contents buf

let size = Cms.cardinal

let to_padded_string ~capacity p =
  let s = to_string p in
  if String.length s > capacity then
    invalid_arg
      (Printf.sprintf "Pattern.to_padded_string: %S exceeds capacity %d" s capacity);
  s ^ String.make (capacity - String.length s) '-'

let count p c = Cms.count c p
let mem p c = Cms.mem c p
let colors = Cms.support
let color_set p = Color.Set.of_list (colors p)
let to_counted_list = Cms.to_counted_list
let add p c = Cms.add c p
let remove p c = Cms.remove c p
let fits_capacity ~capacity p = size p <= capacity
let subpattern p ~of_ = Cms.subset p of_
let proper_subpattern p ~of_ = subpattern p ~of_ && not (Cms.equal p of_)
let join = Cms.union
let meet = Cms.inter
let sum = Cms.sum
let compare = Cms.compare
let equal = Cms.equal
let hash p =
  Cms.fold (fun c k acc -> (((acc * 31) + Color.hash c) * 31) + k) p 0x811c9
let pp ppf p = Format.fprintf ppf "{%s}" (to_string p)

let of_antichain_colors g nodes =
  of_colors (List.map (Mps_dfg.Dfg.color g) nodes)

let enumerate ~colors ~max_size =
  let colors = List.sort_uniq Color.compare colors in
  (* Multisets of exactly [s] from colors ≥ position i, colors non-decreasing. *)
  let rec of_size s cs =
    if s = 0 then [ empty ]
    else
      match cs with
      | [] -> []
      | c :: rest ->
          let with_c = List.map (fun p -> add p c) (of_size (s - 1) cs) in
          with_c @ of_size s rest
  in
  List.concat_map (fun s -> of_size s colors) (List.init max_size (fun i -> i + 1))

let random rng ~colors ~size =
  if size < 0 then invalid_arg "Pattern.random: negative size";
  let arr = Array.of_list colors in
  if Array.length arr = 0 then invalid_arg "Pattern.random: no colors";
  let rec fill acc k =
    if k = 0 then acc else fill (add acc (Mps_util.Rng.choice rng arr)) (k - 1)
  in
  fill empty size

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Id = struct
  type t = int

  let of_int i = if i < 0 then invalid_arg "Pattern.Id.of_int: negative id" else i
  let to_int i = i
  let compare = Int.compare
  let equal = Int.equal
  let hash i = i
  let pp ppf i = Format.fprintf ppf "#%d" i
end
