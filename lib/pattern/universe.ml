module Color = Mps_dfg.Color

module Index = Hashtbl.Make (struct
  type t = Pattern.t

  let equal = Pattern.equal
  let hash = Pattern.hash
end)

type t = {
  index : int Index.t;
  mutable pats : Pattern.t array; (* id -> pattern; live in [0, n) *)
  mutable strs : string array; (* id -> canonical spelling *)
  mutable sizes : int array; (* id -> |p| *)
  mutable csets : Color.Set.t array; (* id -> distinct-color set *)
  mutable n : int;
  (* Dominance matrix, built lazily as a flat bit matrix: row [i], bit [j]
     is set iff pattern [j] is a subpattern of pattern [i].  Bits are
     packed 32 per int ([stride] words per row) so the probe is a shift
     and a mask — a power-of-two word width keeps the index arithmetic
     free of division, which OCaml's 63-bit ints would otherwise force.
     Valid for ids < [matrix_n]. *)
  mutable matrix : int array;
  mutable matrix_n : int;
  mutable stride : int;
}

let create ?(expected = 64) () =
  let cap = max 1 expected in
  {
    index = Index.create cap;
    pats = Array.make cap Pattern.empty;
    strs = Array.make cap "";
    sizes = Array.make cap 0;
    csets = Array.make cap Color.Set.empty;
    n = 0;
    matrix = [||];
    matrix_n = 0;
    stride = 0;
  }

let cardinal u = u.n

let grow_to arr len fill =
  let a = Array.make len fill in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let ensure_capacity u need =
  let cap = Array.length u.pats in
  if need > cap then begin
    let cap' = max need (2 * cap) in
    u.pats <- grow_to u.pats cap' Pattern.empty;
    u.strs <- grow_to u.strs cap' "";
    u.sizes <- grow_to u.sizes cap' 0;
    u.csets <- grow_to u.csets cap' Color.Set.empty
  end

(* Interning with the derived facts supplied, so [merge] can copy the
   memoized fields of the source universe instead of recomputing them. *)
let intern_memoized u p ~str ~size ~cset =
  match Index.find_opt u.index p with
  | Some id -> id
  | None ->
      let id = u.n in
      ensure_capacity u (id + 1);
      u.pats.(id) <- p;
      u.strs.(id) <- Lazy.force str;
      u.sizes.(id) <- size;
      u.csets.(id) <- Lazy.force cset;
      Index.add u.index p id;
      u.n <- id + 1;
      id

let intern u p =
  Pattern.Id.of_int
    (intern_memoized u p
       ~str:(lazy (Pattern.to_string p))
       ~size:(Pattern.size p)
       ~cset:(lazy (Pattern.color_set p)))

let find u p = Option.map Pattern.Id.of_int (Index.find_opt u.index p)

let check u id name =
  let i = Pattern.Id.to_int id in
  if i >= u.n then
    invalid_arg (Printf.sprintf "Universe.%s: id %d not in universe (%d ids)" name i u.n);
  i

let pattern u id = u.pats.(check u id "pattern")
let size u id = u.sizes.(check u id "size")
let color_set u id = u.csets.(check u id "color_set")
let to_string u id = u.strs.(check u id "to_string")

let padded_string u ~capacity id =
  let s = u.strs.(check u id "padded_string") in
  let len = String.length s in
  if len > capacity then
    invalid_arg
      (Printf.sprintf "Universe.padded_string: %S exceeds capacity %d" s capacity)
  else s ^ String.make (capacity - len) '-'

(* Extend the dominance matrix to cover every live id.  New ids get full
   rows; existing rows get the new columns.  The flat array is regrown (by
   doubling both the per-row stride and the row count) when the id count
   outgrows it — only O(log n) repacks over a universe's lifetime.  Old
   words copy verbatim because widening the stride only appends words. *)
let extend_matrix u =
  let need_stride = (u.n + 31) lsr 5 in
  let have_rows = if u.stride = 0 then 0 else Array.length u.matrix / u.stride in
  if need_stride > u.stride || have_rows < u.n then begin
    let stride' = max need_stride (2 * u.stride) in
    let rows' = max u.n (2 * have_rows) in
    let m' = Array.make (rows' * stride') 0 in
    for i = 0 to u.matrix_n - 1 do
      Array.blit u.matrix (i * u.stride) m' (i * stride') u.stride
    done;
    u.matrix <- m';
    u.stride <- stride'
  end;
  let old_n = u.matrix_n in
  for i = 0 to u.n - 1 do
    let base = i * u.stride in
    let lo = if i < old_n then old_n else 0 in
    for j = lo to u.n - 1 do
      if Pattern.subpattern u.pats.(j) ~of_:u.pats.(i) then begin
        let w = base + (j lsr 5) in
        u.matrix.(w) <- u.matrix.(w) lor (1 lsl (j land 31))
      end
    done
  done;
  u.matrix_n <- u.n

(* Cold path of [subpattern]: raise, or build the matrix and answer. *)
let subpattern_slow u qi pi =
  ignore (check u (Pattern.Id.of_int qi) "subpattern");
  ignore (check u (Pattern.Id.of_int pi) "subpattern");
  extend_matrix u;
  Array.unsafe_get u.matrix ((pi * u.stride) + (qi lsr 5)) land (1 lsl (qi land 31))
  <> 0

let[@inline always] subpattern u q ~of_ =
  let qi = Pattern.Id.to_int q and pi = Pattern.Id.to_int of_ in
  (* Rows already in the matrix stay correct when new ids are interned
     (dominance between two old patterns cannot change), so the fast path
     only needs both ids under [matrix_n] — in bounds by construction. *)
  if qi < u.matrix_n && pi < u.matrix_n then
    Array.unsafe_get u.matrix ((pi * u.stride) + (qi lsr 5)) land (1 lsl (qi land 31))
    <> 0
  else subpattern_slow u qi pi

let proper_subpattern u q ~of_ = subpattern u q ~of_ && not (Pattern.Id.equal q of_)

let merge ~into other =
  Array.init other.n (fun i ->
      Pattern.Id.of_int
        (intern_memoized into other.pats.(i)
           ~str:(lazy other.strs.(i))
           ~size:other.sizes.(i)
           ~cset:(lazy other.csets.(i))))

let iter f u =
  for i = 0 to u.n - 1 do
    f (Pattern.Id.of_int i) u.pats.(i)
  done

let fold f u acc =
  let acc = ref acc in
  iter (fun id p -> acc := f id p !acc) u;
  !acc

let sorted_ids u =
  let ids = Array.init u.n Pattern.Id.of_int in
  Array.sort
    (fun a b ->
      Pattern.compare u.pats.(Pattern.Id.to_int a) u.pats.(Pattern.Id.to_int b))
    ids;
  ids

let pp ppf u =
  iter (fun id _ -> Format.fprintf ppf "%a: %s@." Pattern.Id.pp id (to_string u id)) u
