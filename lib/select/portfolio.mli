(** Portfolio selection: run every pattern-set strategy, keep the winner.

    The library ships half a dozen selectors with different cost/quality
    points; when one kernel's mapping matters more than selection time, the
    right move is simply to try them all and schedule-test each result.
    The portfolio does that deterministically and reports which strategy
    won — data the ablation aggregates into a win table.

    Strategies included: the paper's Eq. 8 heuristic, every
    {!Priority_variants} variant, greedy-by-count, both schedule-harvest
    methods, beam search, and (optionally, it needs a generator) simulated
    annealing. *)

type entry = {
  strategy : string;
  patterns : Mps_pattern.Pattern.t list;
  cycles : int;  (** [max_int] when the strategy produced an unschedulable set. *)
}

type outcome = {
  best : entry;
  all : entry list;  (** Every strategy's result, best first. *)
}

val strategies :
  ?beam_width:int ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  (string * (unit -> Mps_pattern.Pattern.t list * int option)) list
(** The portfolio's default strategy registry: name plus a thunk producing
    the pattern set and, for searches that already cost their own result
    (beam), the known cycle count.  List order is the portfolio tie-break
    order (cheaper strategies first).  Annealing is not in the registry —
    it needs a caller-owned generator and stays an option of {!run}.

    This is also the backend space of the auto-selector ({!Auto}): auto
    dispatches exactly one named thunk from here, so its answer is always
    some portfolio member's exact result.  [beam_width] defaults to 4. *)

val strategy_names : string list
(** The registry's names in registry order, without running anything —
    what rule files are validated against. *)

val run_named :
  ?beam_width:int ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  string ->
  Mps_pattern.Pattern.t list * int option
(** Runs one registry strategy by name — the unit of work a process shard
    hands a worker.  Returns the thunk's raw result (pattern set, known
    cycles).
    @raise Invalid_argument on a name outside {!strategy_names}. *)

val of_produced :
  Mps_antichain.Classify.t ->
  (string * Mps_pattern.Pattern.t list * int option) list ->
  outcome
(** Ranks raw (strategy, patterns, known-cycles) rows exactly as {!run}
    does after its fan-in: un-costed sets are evaluated on one fresh
    context in row order, ties break on row order.  Feeding the rows of
    {!run_named} over {!strategy_names} in registry order reproduces
    {!run}'s outcome whatever process produced each row.
    @raise Invalid_argument on an empty row list. *)

val run :
  ?pool:Mps_exec.Pool.t ->
  ?beam_width:int ->
  ?annealing:Mps_util.Rng.t * int ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  outcome
(** [beam_width] defaults to 4; [annealing] is (generator, iterations) and
    is skipped when absent.  Ties go to the earlier (cheaper) strategy.

    [pool] evaluates the strategies on the pool's domains, one task per
    strategy.  Every strategy is deterministic given its inputs (the
    annealing task owns its generator), and ranking ties break on
    submission order, so the outcome — winner, ranking, cycles — is
    identical to the sequential run for any worker count.
    @raise Invalid_argument if [pdef < 1]. *)
