module Listx = Mps_util.Listx
module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Schedule = Mps_scheduler.Schedule

type method_ = Greedy | Force_directed

let harvest ~method_ ~capacity ~pdef g =
  if pdef < 1 then invalid_arg "Pattern_source.harvest: pdef < 1";
  if capacity < 1 then invalid_arg "Pattern_source.harvest: capacity < 1";
  let sched =
    match method_ with
    | Greedy -> Mps_scheduler.Reference.greedy_capacity ~capacity g
    | Force_directed -> Mps_scheduler.Force_directed.schedule ~capacity g
  in
  (* Count how often each per-cycle bag occurs, interning the bags so the
     dedup and the subpattern drops below run on ids. *)
  let u = Universe.create () in
  let counts : (Pattern.Id.t, int) Hashtbl.t = Hashtbl.create 32 in
  for c = 0 to Schedule.cycles sched - 1 do
    let bag = Schedule.used_at g sched c in
    if Pattern.size bag > 0 then begin
      let id = Universe.intern u bag in
      Hashtbl.replace counts id
        (1 + Option.value (Hashtbl.find_opt counts id) ~default:0)
    end
  done;
  let ranked =
    Universe.sorted_ids u |> Array.to_list
    |> List.map (fun id -> (id, Hashtbl.find counts id))
    |> List.sort (fun (i1, c1) (i2, c2) ->
           match compare c2 c1 with
           | 0 -> Pattern.compare (Universe.pattern u i1) (Universe.pattern u i2)
           | c -> c)
    |> List.map fst
  in
  (* Keep the most frequent bags, dropping any that is a subpattern of an
     already kept one; reserve the last slot for coverage if needed. *)
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let rec pick kept covered n = function
    | [] -> (List.rev kept, covered)
    | id :: rest ->
        if n = 0 then (List.rev kept, covered)
        else if List.exists (fun q -> Universe.subpattern u id ~of_:q) kept then
          pick kept covered n rest
        else
          pick (id :: kept)
            (Color.Set.union covered (Universe.color_set u id))
            (n - 1) rest
  in
  let budget =
    (* Leave one slot free when the frequent bags cannot cover the colors. *)
    let covered_by k =
      List.fold_left
        (fun acc id -> Color.Set.union acc (Universe.color_set u id))
        Color.Set.empty
        (List.filteri (fun i _ -> i < k) ranked)
    in
    if Color.Set.subset all_colors (covered_by pdef) then pdef else max 1 (pdef - 1)
  in
  let kept, covered = pick [] Color.Set.empty budget ranked in
  let kept = List.map (Universe.pattern u) kept in
  let uncovered = Color.Set.elements (Color.Set.diff all_colors covered) in
  if uncovered = [] then kept
  else
    kept @ [ Pattern.of_colors (Listx.take capacity uncovered) ]
