module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Rng = Mps_util.Rng
module Obs = Mps_obs.Obs

type outcome = {
  patterns : Pattern.t list;
  cycles : int;
  evaluations : int;
  improved : bool;
}

let covers u all_colors ids =
  let covered =
    List.fold_left
      (fun acc id -> Color.Set.union acc (Universe.color_set u id))
      Color.Set.empty ids
  in
  Color.Set.subset all_colors covered

let search ?(iterations = 2000) ?(initial_temperature = 2.0) ?(cooling = 0.995)
    rng ~pdef classify =
  if pdef < 1 then invalid_arg "Annealing.search: pdef < 1";
  if iterations < 0 then invalid_arg "Annealing.search: negative iterations";
  if cooling <= 0.0 || cooling > 1.0 then
    invalid_arg "Annealing.search: cooling outside (0,1]";
  if initial_temperature <= 0.0 then
    invalid_arg "Annealing.search: non-positive temperature";
  Obs.span "anneal" @@ fun () ->
  let g = Classify.graph classify in
  let u = Classify.universe classify in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let pool = Array.of_list (Classify.ids classify) in
  let evaluations = ref 0 in
  (* One evaluation context for the whole search: graph analyses amortized,
     and the memo cache answers every revisited pattern set for free —
     annealing walks a small neighborhood, so revisits dominate quickly.
     Delta recording makes every swap move a suffix replay of the current
     state's memoized run when the swapped patterns only matter late. *)
  let ectx = Eval.make ~universe:u ~delta:true g in
  let cost ids =
    incr evaluations;
    match Eval.cycles_ids ectx ids with
    | c -> c
    | exception Eval.Unschedulable _ -> max_int
  in
  let cost_swap ~prev ~removed ~added =
    incr evaluations;
    match Eval.cycles_delta_ids ectx ~removed ~prev ~added with
    | c -> c
    | exception Eval.Unschedulable _ -> max_int
  in
  (* Start from the paper's heuristic so the search can only improve it. *)
  let start = List.map (Universe.intern u) (Select.select ~pdef classify) in
  let start_cost = cost start in
  let current = ref (Array.of_list start) in
  let current_cost = ref start_cost in
  let best = ref (Array.copy !current) in
  let best_cost = ref start_cost in
  let temperature = ref initial_temperature in
  if Array.length pool > 0 && Array.length !current > 0 then
    for _ = 1 to iterations do
      let candidate = Array.copy !current in
      let slot = Rng.int rng (Array.length candidate) in
      let replacement = Rng.choice rng pool in
      (* A move that re-draws the displaced id proposes the current state
         verbatim: delta would be 0 and it would be accepted back into
         itself.  Don't burn an evaluation or a temperature step on it. *)
      if not (Pattern.Id.equal replacement candidate.(slot)) then begin
        let displaced = candidate.(slot) in
        candidate.(slot) <- replacement;
        let cand_list = Array.to_list candidate in
        if covers u all_colors cand_list then begin
          (* A swap move costs through the delta path: [prev] is the
             current state, whose evaluation the context has memoized (it
             was costed when it was accepted), so only the suffix past the
             first cycle where either swapped pattern is selectable is
             re-stepped.  The result is identical to [cost cand_list]. *)
          let c =
            cost_swap ~prev:(Array.to_list !current) ~removed:displaced
              ~added:replacement
          in
          let delta = float_of_int (c - !current_cost) in
          let accept =
            c < max_int
            && (delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. !temperature))
          in
          if accept then begin
            current := candidate;
            current_cost := c;
            if c < !best_cost then begin
              best := Array.copy candidate;
              best_cost := c
            end
          end
        end;
        temperature := !temperature *. cooling
      end
    done;
  Obs.count "anneal.evaluations" !evaluations;
  {
    patterns = List.map (Universe.pattern u) (Array.to_list !best);
    cycles = !best_cost;
    evaluations = !evaluations;
    improved = !best_cost < start_cost;
  }
