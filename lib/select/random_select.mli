(** The paper's baseline: randomly generated pattern sets (§6, Table 7's
    "Random" columns — averages over ten draws).

    Each pattern fills all C slots with independently uniform colors from
    the graph's color set.  A set that misses some color entirely would make
    multi-pattern scheduling impossible (the paper's runs evidently never
    hit this), so by default a draw is rejected and retried until the set
    jointly covers every color; with the paper's three colors and C = 5 the
    expected number of retries is well under two. *)

val select :
  ?ensure_coverage:bool ->
  Mps_util.Rng.t ->
  colors:Mps_dfg.Color.t list ->
  capacity:int ->
  pdef:int ->
  Mps_pattern.Pattern.t list
(** [ensure_coverage] defaults to [true].
    @raise Invalid_argument if [colors] is empty, [capacity < 1],
    [pdef < 1], or coverage is requested but impossible
    ([capacity·pdef < number of distinct colors]). *)

val trials :
  ?ensure_coverage:bool ->
  Mps_util.Rng.t ->
  runs:int ->
  colors:Mps_dfg.Color.t list ->
  capacity:int ->
  pdef:int ->
  Mps_pattern.Pattern.t list list
(** [runs] independent draws — the "tested ten times" protocol. *)

val trial_cycles :
  ?ensure_coverage:bool ->
  Mps_util.Rng.t ->
  eval:Mps_scheduler.Eval.t ->
  runs:int ->
  capacity:int ->
  pdef:int ->
  int list
(** Cycle count of each of [runs] draws on [eval]'s graph — the costing
    every Table-7-style bench repeats.  Draws exactly as {!trials} over the
    graph's colors (same RNG stream), then schedules each set through the
    shared context, so repeated draws of the same set hit the memo cache.
    An unschedulable draw (possible only with [ensure_coverage:false])
    costs [max_int]. *)
