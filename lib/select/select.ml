module Listx = Mps_util.Listx
module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify
module Obs = Mps_obs.Obs

type params = { epsilon : float; alpha : float }

let default_params = { epsilon = 0.5; alpha = 20.0 }

type step = {
  chosen : Pattern.t;
  priority : float;
  fallback : bool;
  deleted : Pattern.t list;
  priorities : (Pattern.t * float) list;
}

type report = { patterns : Pattern.t list; steps : step list }

let covers_all_colors g patterns =
  let covered =
    List.fold_left
      (fun acc p -> Color.Set.union acc (Pattern.color_set p))
      Color.Set.empty patterns
  in
  List.for_all (fun c -> Color.Set.mem c covered) (Dfg.colors g)

let priority_of ~params ~cover ~freq ~size_ =
  let balance = ref 0.0 in
  Array.iteri
    (fun n h ->
      if h > 0 then
        balance := !balance +. (float_of_int h /. (float_of_int cover.(n) +. params.epsilon)))
    freq;
  !balance +. (params.alpha *. float_of_int (size_ * size_))

let select_report ?(params = default_params) ~pdef classify =
  if pdef < 1 then invalid_arg "Select.select: pdef must be >= 1";
  Obs.span "select" @@ fun () ->
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let u = Classify.universe classify in
  let n = Dfg.node_count g in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  (* Candidate pool: every pattern with at least one antichain, as a
     universe id with its (immutable) frequency vector. *)
  let pool =
    ref
      (Classify.fold_ids (fun id ~count:_ ~freq acc -> (id, freq) :: acc) classify []
      |> List.rev)
  in
  let cover = Array.make n 0 in
  let covered = ref Color.Set.empty in
  let steps = ref [] in
  let selected = ref [] in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < pdef do
    let remaining_picks = pdef - !i - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
    let color_condition id =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Universe.color_set u id) !covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let scored =
      List.map
        (fun (id, freq) ->
          let f =
            if color_condition id then
              priority_of ~params ~cover ~freq ~size_:(Universe.size u id)
            else 0.0
          in
          (id, freq, f))
        !pool
    in
    let best =
      List.fold_left
        (fun acc (id, freq, f) ->
          match acc with
          | Some (_, _, bf) when bf >= f -> acc
          | _ when f > 0.0 -> Some (id, freq, f)
          | _ -> acc)
        None scored
    in
    let priorities = List.map (fun (id, _, f) -> (Universe.pattern u id, f)) scored in
    let delete_covered_by pid =
      let deleted, kept =
        List.partition (fun (q, _) -> Universe.subpattern u q ~of_:pid) !pool
      in
      pool := kept;
      List.map (fun (q, _) -> Universe.pattern u q) deleted
    in
    (match best with
    | Some (pid, freq, f) ->
        let deleted = delete_covered_by pid in
        Array.iteri (fun k h -> cover.(k) <- cover.(k) + h) freq;
        covered := Color.Set.union !covered (Universe.color_set u pid);
        selected := Universe.pattern u pid :: !selected;
        steps :=
          {
            chosen = Universe.pattern u pid;
            priority = f;
            fallback = false;
            deleted;
            priorities;
          }
          :: !steps
    | None ->
        (* No candidate works: fabricate from uncovered colors (up to C).
           With nothing uncovered and an empty viable pool, more patterns
           cannot help; stop early. *)
        let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
        if uncovered = [] then stop := true
        else begin
          let pid =
            Universe.intern u (Pattern.of_colors (Listx.take capacity uncovered))
          in
          let deleted = delete_covered_by pid in
          covered := Color.Set.union !covered (Universe.color_set u pid);
          selected := Universe.pattern u pid :: !selected;
          steps :=
            {
              chosen = Universe.pattern u pid;
              priority = 0.0;
              fallback = true;
              deleted;
              priorities;
            }
            :: !steps
        end);
    incr i
  done;
  let steps = List.rev !steps in
  Obs.count "select.candidates" (Classify.pattern_count classify);
  Obs.count "select.steps" (List.length steps);
  Obs.count "select.fallbacks"
    (List.length (List.filter (fun s -> s.fallback) steps));
  Obs.count "select.deleted"
    (List.fold_left (fun acc s -> acc + List.length s.deleted) 0 steps);
  { patterns = List.rev !selected; steps }

let select ?params ~pdef classify = (select_report ?params ~pdef classify).patterns
