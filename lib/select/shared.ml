module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify
module Enumerate = Mps_antichain.Enumerate
module Eval = Mps_scheduler.Eval
module Listx = Mps_util.Listx

type kernel = {
  label : string;
  graph : Dfg.t;
  classify : Classify.t;
}

let kernel ?span_limit ?budget ?(capacity = 5) ~label graph =
  {
    label;
    graph;
    classify = Classify.compute ?span_limit ?budget ~capacity (Enumerate.make_ctx graph);
  }

type outcome = {
  patterns : Pattern.t list;
  per_kernel_cycles : (string * int) list;
  total_cycles : int;
}

let select ?(params = Select.default_params) ~pdef kernels =
  if kernels = [] then invalid_arg "Shared.select: no kernels";
  if pdef < 1 then invalid_arg "Shared.select: pdef must be >= 1";
  let capacity = Classify.capacity (List.hd kernels).classify in
  List.iter
    (fun k ->
      if Classify.capacity k.classify <> capacity then
        invalid_arg "Shared.select: kernels have differing capacities")
    kernels;
  let all_colors =
    List.fold_left
      (fun acc k -> Color.Set.union acc (Color.Set.of_list (Dfg.colors k.graph)))
      Color.Set.empty kernels
  in
  (* Pool: union of the kernels' pattern pools, interned into a universe
     shared across kernels.  Per pattern keep, for each kernel that
     realizes it, that kernel's frequency vector. *)
  let u = Universe.create () in
  let entries_of : (Pattern.Id.t, (int * int array) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun ki k ->
      Classify.fold
        (fun p ~count:_ ~freq () ->
          let id = Universe.intern u p in
          let prev = Option.value (Hashtbl.find_opt entries_of id) ~default:[] in
          Hashtbl.replace entries_of id ((ki, freq) :: prev))
        k.classify ())
    kernels;
  let pool =
    ref
      (Universe.sorted_ids u |> Array.to_list
      |> List.map (fun id -> (id, Hashtbl.find entries_of id)))
  in
  (* Per-kernel coverage vectors. *)
  let cover =
    List.map (fun k -> Array.make (Dfg.node_count k.graph) 0) kernels
    |> Array.of_list
  in
  let covered = ref Color.Set.empty in
  let selected = ref [] in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < pdef do
    let remaining_picks = pdef - !i - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
    let color_condition id =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Universe.color_set u id) !covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let score entries size_ =
      List.fold_left
        (fun acc (ki, freq) ->
          let cv = cover.(ki) in
          let balance = ref 0.0 in
          Array.iteri
            (fun n h ->
              if h > 0 then
                balance :=
                  !balance +. (float_of_int h /. (float_of_int cv.(n) +. params.Select.epsilon)))
            freq;
          acc +. !balance)
        (params.Select.alpha *. float_of_int (size_ * size_))
        entries
    in
    let best =
      List.fold_left
        (fun acc (id, entries) ->
          if not (color_condition id) then acc
          else begin
            let s = score entries (Universe.size u id) in
            match acc with
            | Some (_, _, bs) when bs >= s -> acc
            | _ when s > 0.0 -> Some (id, entries, s)
            | _ -> acc
          end)
        None !pool
    in
    let delete_covered_by pid =
      pool := List.filter (fun (q, _) -> not (Universe.subpattern u q ~of_:pid)) !pool
    in
    (match best with
    | Some (pid, entries, _) ->
        delete_covered_by pid;
        List.iter
          (fun (ki, freq) ->
            Array.iteri (fun n h -> cover.(ki).(n) <- cover.(ki).(n) + h) freq)
          entries;
        covered := Color.Set.union !covered (Universe.color_set u pid);
        selected := Universe.pattern u pid :: !selected
    | None ->
        let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
        if uncovered = [] then stop := true
        else begin
          let pid =
            Universe.intern u (Pattern.of_colors (Listx.take capacity uncovered))
          in
          delete_covered_by pid;
          covered := Color.Set.union !covered (Universe.color_set u pid);
          selected := Universe.pattern u pid :: !selected
        end);
    incr i
  done;
  let patterns = List.rev !selected in
  let per_kernel_cycles =
    List.map
      (fun k -> (k.label, Eval.cycles (Eval.make k.graph) patterns))
      kernels
  in
  {
    patterns;
    per_kernel_cycles;
    total_cycles = List.fold_left (fun acc (_, c) -> acc + c) 0 per_kernel_cycles;
  }
