module Listx = Mps_util.Listx
module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify

type context = {
  freq : int array;
  count : int;
  cover : int array;
  size : int;
  capacity : int;
}

type variant = { name : string; doc : string; score : context -> float }

let balance ~damp ctx =
  let acc = ref 0.0 in
  Array.iteri
    (fun n h -> if h > 0 then acc := !acc +. (float_of_int h /. damp ctx.cover.(n)))
    ctx.freq;
  !acc

let paper =
  {
    name = "paper";
    doc = "Eq. 8: sum h/(cover+0.5) + 20*|p|^2";
    score =
      (fun ctx ->
        balance ~damp:(fun c -> float_of_int c +. 0.5) ctx
        +. (20.0 *. float_of_int (ctx.size * ctx.size)));
  }

let linear_size =
  {
    name = "linear-size";
    doc = "Eq. 8 with a linear size bonus";
    score =
      (fun ctx ->
        balance ~damp:(fun c -> float_of_int c +. 0.5) ctx
        +. (20.0 *. float_of_int ctx.size));
  }

let raw_count =
  {
    name = "raw-count";
    doc = "antichain count + 20*|p|^2, no balancing";
    score =
      (fun ctx ->
        float_of_int ctx.count +. (20.0 *. float_of_int (ctx.size * ctx.size)));
  }

let coverage_gap =
  {
    name = "coverage-gap";
    doc = "only uncovered nodes score; set-cover flavor";
    score =
      (fun ctx ->
        let acc = ref 0.0 in
        Array.iteri
          (fun n h -> if h > 0 && ctx.cover.(n) = 0 then acc := !acc +. float_of_int h)
          ctx.freq;
        !acc +. (20.0 *. float_of_int (ctx.size * ctx.size)));
  }

let sqrt_damping =
  {
    name = "sqrt-damping";
    doc = "Eq. 8 with 1/sqrt(cover+0.5) damping";
    score =
      (fun ctx ->
        balance ~damp:(fun c -> sqrt (float_of_int c +. 0.5)) ctx
        +. (20.0 *. float_of_int (ctx.size * ctx.size)));
  }

let all = [ paper; linear_size; raw_count; coverage_gap; sqrt_damping ]

(* Fig. 7's loop, shared with Select but parameterized on the score.  The
   fallback and color-number condition are identical. *)
let select variant ~pdef classify =
  if pdef < 1 then invalid_arg "Priority_variants.select: pdef must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let u = Classify.universe classify in
  let n = Dfg.node_count g in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let pool =
    ref
      (Classify.fold_ids (fun id ~count ~freq acc -> (id, count, freq) :: acc)
         classify []
      |> List.rev)
  in
  let cover = Array.make n 0 in
  let covered = ref Color.Set.empty in
  let selected = ref [] in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < pdef do
    let remaining_picks = pdef - !i - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
    let color_condition id =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Universe.color_set u id) !covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let best =
      List.fold_left
        (fun acc (id, count, freq) ->
          if not (color_condition id) then acc
          else begin
            let s =
              variant.score
                { freq; count; cover; size = Universe.size u id; capacity }
            in
            match acc with
            | Some (_, _, bs) when bs >= s -> acc
            | _ when s > 0.0 -> Some (id, freq, s)
            | _ -> acc
          end)
        None !pool
    in
    let delete_covered_by pid =
      pool := List.filter (fun (q, _, _) -> not (Universe.subpattern u q ~of_:pid)) !pool
    in
    (match best with
    | Some (pid, freq, _) ->
        delete_covered_by pid;
        Array.iteri (fun k h -> cover.(k) <- cover.(k) + h) freq;
        covered := Color.Set.union !covered (Universe.color_set u pid);
        selected := Universe.pattern u pid :: !selected
    | None ->
        let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
        if uncovered = [] then stop := true
        else begin
          let pid =
            Universe.intern u (Pattern.of_colors (Listx.take capacity uncovered))
          in
          delete_covered_by pid;
          covered := Color.Set.union !covered (Universe.color_set u pid);
          selected := Universe.pattern u pid :: !selected
        end);
    incr i
  done;
  List.rev !selected
