module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Obs = Mps_obs.Obs
module Json = Mps_util.Json

type op = Le | Gt

type cond = { feature : string; op : op; threshold : float }

type rule = { conds : cond list; backend : string; provenance : string }

type rules = rule list

(* Fit on the bench corpus (huge tier included) by `bench --fit-selector`
   (results/selector_rules.json is the serialized mirror; `bench
   --selector` gates that the two agree).  Reading the table:
   harvest:greedy wins the small kernels (its exhaustive greedy harvest
   is near-exact there); beam takes the mid-size band where local search
   recovers what one greedy pass misses; above that, the sharded-regime
   graphs split on color balance — with no strongly dominant color
   (huge-grid, fft16, fir16) the greedy harvest stays competitive, while
   the dominant-color chain-like huge-deep falls through to eq8's
   frequency heuristic. *)
let builtin_rules =
  [
    {
      conds = [ { feature = "edges"; op = Le; threshold = 39.5 } ];
      backend = "harvest:greedy";
      provenance =
        "3dft adv-mono adv-rainbow adv-wide dft4 fig4 horner16 iir4 mm222 \
         mm232 w3dft";
    };
    {
      conds = [ { feature = "nodes"; op = Le; threshold = 150.5 } ];
      backend = "beam";
      provenance =
        "adv-big adv-deep adv-dense dct8 fft8 fir8 huge-wide w5dft";
    };
    {
      conds =
        [ { feature = "max_color_share"; op = Le; threshold = 0.608870395344 } ];
      backend = "harvest:greedy";
      provenance = "fft16 fir16 huge-grid";
    };
    { conds = []; backend = "eq8"; provenance = "default: huge-deep" };
  ]

let op_to_string = function Le -> "le" | Gt -> "gt"

let op_of_string = function
  | "le" -> Ok Le
  | "gt" -> Ok Gt
  | s -> Error (Printf.sprintf "unknown op %S (want \"le\" or \"gt\")" s)

let validate rules =
  let rec go i = function
    | [] -> Error "empty rule table"
    | [ { conds = []; _ } ] -> Ok rules
    | [ _ ] -> Error (Printf.sprintf "rule %d: last rule must be unconditional" i)
    | { conds = []; _ } :: _ :: _ ->
        Error
          (Printf.sprintf
             "rule %d: unconditional rule before the end is unreachable below" i)
    | _ :: rest -> go (i + 1) rest
  in
  let check_rule i r =
    if not (List.mem r.backend Portfolio.strategy_names) then
      Error (Printf.sprintf "rule %d: unknown backend %S" i r.backend)
    else
      List.fold_left
        (fun acc c ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if List.mem c.feature Features.names then Ok ()
              else Error (Printf.sprintf "rule %d: unknown feature %S" i c.feature))
        (Ok ()) r.conds
  in
  let rec check i = function
    | [] -> go 0 rules
    | r :: rest -> ( match check_rule i r with Ok () -> check (i + 1) rest | Error e -> Error e)
  in
  check 0 rules

let cond_to_json c =
  Json.Obj
    [
      ("feature", Json.Str c.feature);
      ("op", Json.Str (op_to_string c.op));
      ("threshold", Json.Num c.threshold);
    ]

let to_json rules =
  Json.Obj
    [
      ("version", Json.Num 1.0);
      ("features", Json.Arr (List.map (fun n -> Json.Str n) Features.names));
      ( "backends",
        Json.Arr (List.map (fun n -> Json.Str n) Portfolio.strategy_names) );
      ( "rules",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("if", Json.Arr (List.map cond_to_json r.conds));
                   ("backend", Json.Str r.backend);
                   ("provenance", Json.Str r.provenance);
                 ])
             rules) );
    ]

let ( let* ) = Result.bind

let cond_of_json j =
  match (Json.member "feature" j, Json.member "op" j, Json.member "threshold" j) with
  | Some (Json.Str feature), Some (Json.Str op), Some (Json.Num threshold) ->
      let* op = op_of_string op in
      Ok { feature; op; threshold }
  | _ -> Error "condition must be {\"feature\":str,\"op\":str,\"threshold\":num}"

let rule_of_json j =
  match (Json.member "if" j, Json.member "backend" j, Json.member "provenance" j) with
  | Some (Json.Arr conds), Some (Json.Str backend), Some (Json.Str provenance) ->
      let* conds =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* c = cond_of_json c in
            Ok (c :: acc))
          (Ok []) conds
      in
      Ok { conds = List.rev conds; backend; provenance }
  | _ ->
      Error "rule must be {\"if\":[cond,...],\"backend\":str,\"provenance\":str}"

let of_json j =
  match Json.member "rules" j with
  | Some (Json.Arr rules) ->
      let* rules =
        List.fold_left
          (fun acc r ->
            let* acc = acc in
            let* r = rule_of_json r in
            Ok (r :: acc))
          (Ok []) rules
      in
      validate (List.rev rules)
  | Some _ -> Error "\"rules\" must be an array"
  | None -> Error "missing \"rules\" member"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match of_json j with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok rules -> Ok rules))

(* {1 Selection} *)

type outcome = {
  backend : string;
  rule_index : int;
  rule : rule;
  features : Features.t;
  patterns : Pattern.t list;
  cycles : int;
}

let cond_holds features c =
  match Features.get features c.feature with
  | None -> false
  | Some v -> ( match c.op with Le -> v <= c.threshold | Gt -> v > c.threshold)

let match_rule rules features =
  let rec go i = function
    | [] -> assert false (* validate: terminal rule is unconditional *)
    | r :: rest ->
        if List.for_all (cond_holds features) r.conds then (i, r)
        else go (i + 1) rest
  in
  go 0 rules

let select ?(rules = builtin_rules) ?features ?eval ?beam_width ~pdef classify =
  if pdef < 1 then invalid_arg "Auto.select: pdef must be >= 1";
  (match validate rules with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Auto.select: invalid rule table: " ^ e));
  Obs.span "auto" @@ fun () ->
  let g = Classify.graph classify in
  let features =
    match (features, eval) with
    | Some f, _ -> f
    | None, Some e ->
        Features.extract_with ~levels:(Eval.levels e)
          ~reachability:(Eval.reachability e) g
    | None, None -> Features.extract g
  in
  let rule_index, rule = match_rule rules features in
  let thunk =
    match List.assoc_opt rule.backend (Portfolio.strategies ?beam_width ~pdef classify) with
    | Some t -> t
    | None -> assert false (* validate: backend is a strategy_names member *)
  in
  let patterns, known = thunk () in
  let cycles =
    match known with
    | Some c -> c
    | None ->
        if patterns = [] then max_int
        else
          let ectx = match eval with Some e -> e | None -> Eval.make g in
          (match Eval.cycles ectx patterns with
          | c -> c
          | exception Eval.Unschedulable _ -> max_int)
  in
  Obs.count "select.auto.requests" 1;
  Obs.observe "select.auto.rule" rule_index;
  if cycles <> max_int then Obs.observe "select.auto.cycles" cycles;
  Obs.count ("select.auto.backend." ^ rule.backend) 1;
  { backend = rule.backend; rule_index; rule; features; patterns; cycles }

(* {1 Strategy choice} *)

type strategy = Paper | Auto of rules

let strategy_of_string ?(rules = builtin_rules) = function
  | "paper" | "eq8" -> Ok Paper
  | "auto" -> Ok (Auto rules)
  | s -> Error (Printf.sprintf "unknown strategy %S (want \"eq8\" or \"auto\")" s)

(* {1 Offline fitting} *)

type example = {
  name : string;
  example_features : Features.t;
  costs : (string * int) list;
}

let acceptable_backends tolerance ex =
  let best =
    List.fold_left (fun acc (_, c) -> min acc c) max_int ex.costs
  in
  if best = max_int then List.map fst ex.costs
  else
    let limit = float_of_int best *. (1.0 +. tolerance) in
    List.filter_map
      (fun (b, c) ->
        if c <> max_int && float_of_int c <= limit then Some b else None)
      ex.costs

let fit ?(tolerance = 0.05) examples =
  if examples = [] then invalid_arg "Auto.fit: empty example list";
  let acc_tbl = Hashtbl.create 16 in
  List.iter
    (fun ex -> Hashtbl.replace acc_tbl ex.name (acceptable_backends tolerance ex))
    examples;
  let accepts ex backend = List.mem backend (Hashtbl.find acc_tbl ex.name) in
  let feature_of ex name =
    match Features.get ex.example_features name with
    | Some v -> v
    | None -> assert false
  in
  let provenance_of covered =
    String.concat " " (List.sort compare (List.map (fun ex -> ex.name) covered))
  in
  (* The best pure single-condition rule on [remaining], walking candidates
     in tie-break order (portfolio backend order, feature order, Le before
     Gt, ascending threshold) and keeping only strictly better coverage. *)
  let best_pure remaining =
    let best = ref None in
    let consider backend cond =
      let covered = List.filter (fun ex -> cond_holds ex.example_features cond) remaining in
      if covered <> [] && List.for_all (fun ex -> accepts ex backend) covered then
        let n = List.length covered in
        match !best with
        | Some (_, _, m) when m >= n -> ()
        | _ -> best := Some ({ conds = [ cond ]; backend; provenance = provenance_of covered }, covered, n)
    in
    List.iter
      (fun backend ->
        List.iter
          (fun feature ->
            let values =
              List.map (fun ex -> feature_of ex feature) remaining
              |> List.sort_uniq compare
            in
            let thresholds =
              let rec mids = function
                | a :: (b :: _ as rest) -> ((a +. b) /. 2.0) :: mids rest
                | _ -> []
              in
              mids values
            in
            List.iter
              (fun op ->
                List.iter
                  (fun threshold -> consider backend { feature; op; threshold })
                  thresholds)
              [ Le; Gt ])
          Features.names)
      Portfolio.strategy_names;
    !best
  in
  let default_rule remaining =
    let pool = if remaining = [] then examples else remaining in
    let backend =
      List.fold_left
        (fun acc backend ->
          let n = List.length (List.filter (fun ex -> accepts ex backend) pool) in
          match acc with
          | Some (_, m) when m >= n -> acc
          | _ -> Some (backend, n))
        None Portfolio.strategy_names
      |> Option.get |> fst
    in
    { conds = []; backend; provenance = "default: " ^ provenance_of pool }
  in
  let rec go remaining acc =
    match remaining with
    | [] -> List.rev (default_rule remaining :: acc)
    | _ -> (
        match best_pure remaining with
        | None -> List.rev (default_rule remaining :: acc)
        | Some (rule, covered, _) ->
            let rest =
              List.filter (fun ex -> not (List.memq ex covered)) remaining
            in
            go rest (rule :: acc))
  in
  go examples []
