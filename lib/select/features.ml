module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Json = Mps_util.Json

type t = {
  nodes : int;
  edges : int;
  colors : int;
  max_color_share : float;
  depth : int;
  max_width : int;
  mean_width : float;
  width_histogram : (int * int) list;
  parallelism : float;
  antichain_log2 : float;
}

(* log2 (2^w - 1), computed without overflow for any level width: for w
   beyond float precision the -1 is invisible and the answer is just w. *)
let log2_pow2m1 w =
  if w <= 0 then 0.0
  else if w >= 53 then float_of_int w
  else log ((2.0 ** float_of_int w) -. 1.0) /. log 2.0

(* log2 (2^a + 2^b) via the larger exponent, stable for far-apart terms. *)
let log2_add a b =
  let hi = Float.max a b and lo = Float.min a b in
  if hi -. lo > 60.0 then hi
  else hi +. (log (1.0 +. (2.0 ** (lo -. hi))) /. log 2.0)

let extract_with ~levels ~reachability g =
  let n = Dfg.node_count g in
  let counts = Dfg.color_counts g in
  let max_count = List.fold_left (fun acc (_, c) -> max acc c) 0 counts in
  let depth = Levels.asap_max levels + 1 in
  let widths = Array.make (max depth 1) 0 in
  Dfg.iter_nodes (fun id -> let l = Levels.asap levels id in
                            widths.(l) <- widths.(l) + 1) g;
  let hist = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      if w > 0 then
        Hashtbl.replace hist w (1 + Option.value ~default:0 (Hashtbl.find_opt hist w)))
    widths;
  let width_histogram =
    Hashtbl.fold (fun w c acc -> (w, c) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let levels_used = List.fold_left (fun acc (_, c) -> acc + c) 0 width_histogram in
  let max_width = List.fold_left (fun acc (w, _) -> max acc w) 0 width_histogram in
  let mean_width =
    if levels_used = 0 then 0.0 else float_of_int n /. float_of_int levels_used
  in
  let pairs = n * (n - 1) / 2 in
  let parallelism =
    if pairs = 0 then 0.0
    else
      float_of_int (pairs - Reachability.comparable_pairs reachability)
      /. float_of_int pairs
  in
  let antichain_log2 =
    Array.fold_left
      (fun acc w -> if w = 0 then acc else log2_add acc (log2_pow2m1 w))
      neg_infinity widths
    |> fun x -> if x = neg_infinity then 0.0 else x
  in
  {
    nodes = n;
    edges = Dfg.edge_count g;
    colors = List.length counts;
    max_color_share =
      (if n = 0 then 0.0 else float_of_int max_count /. float_of_int n);
    depth = (if n = 0 then 0 else depth);
    max_width;
    mean_width;
    width_histogram;
    parallelism;
    antichain_log2;
  }

let extract g =
  extract_with ~levels:(Levels.compute g)
    ~reachability:(Reachability.compute g) g

let names =
  [
    "nodes"; "edges"; "colors"; "max_color_share"; "depth"; "max_width";
    "mean_width"; "parallelism"; "antichain_log2";
  ]

let to_assoc t =
  [
    ("nodes", float_of_int t.nodes);
    ("edges", float_of_int t.edges);
    ("colors", float_of_int t.colors);
    ("max_color_share", t.max_color_share);
    ("depth", float_of_int t.depth);
    ("max_width", float_of_int t.max_width);
    ("mean_width", t.mean_width);
    ("parallelism", t.parallelism);
    ("antichain_log2", t.antichain_log2);
  ]

let get t name = List.assoc_opt name (to_assoc t)

let to_json t =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Num v)) (to_assoc t)
    @ [
        ( "width_histogram",
          Json.Arr
            (List.map
               (fun (w, c) ->
                 Json.Arr [ Json.Num (float_of_int w); Json.Num (float_of_int c) ])
               t.width_histogram) );
      ])

let pp ppf t =
  let pp_one i (k, v) =
    if i > 0 then Format.fprintf ppf " ";
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "%s=%d" k (int_of_float v)
    else Format.fprintf ppf "%s=%.4f" k v
  in
  List.iteri pp_one (to_assoc t)
