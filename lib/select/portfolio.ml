module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type entry = {
  strategy : string;
  patterns : Pattern.t list;
  cycles : int;
}

type outcome = { best : entry; all : entry list }

(* Each strategy is one thunk producing its pattern set: independent of
   the others, so the set runs unchanged on one domain or many.  List
   order is the tie-break order (cheaper strategies first), and the pool
   returns results in submission order, so ranking is identical however
   the work is spread.  The searches that already cost their own result
   (beam, annealing) return the known cycle count; every other set is
   costed after the fan-in.  This registry is also the auto-selector's
   backend space ({!Auto}): dispatching one named thunk from here is what
   guarantees auto returns some portfolio member's exact result. *)
let strategies ?(beam_width = 4) ~pdef classify :
    (string * (unit -> Pattern.t list * int option)) list =
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  [ ("eq8", fun () -> (Select.select ~pdef classify, None)) ]
  @ List.filter_map
      (fun v ->
        if v.Priority_variants.name = "paper" then None
        else
          Some
            ( "variant:" ^ v.Priority_variants.name,
              fun () -> (Priority_variants.select v ~pdef classify, None) ))
      Priority_variants.all
  @ [
      ("greedy-count", fun () -> (Greedy_cover.select ~pdef classify, None));
      ( "harvest:greedy",
        fun () ->
          ( Pattern_source.harvest ~method_:Pattern_source.Greedy ~capacity ~pdef
              g,
            None ) );
      ( "harvest:fds",
        fun () ->
          ( Pattern_source.harvest ~method_:Pattern_source.Force_directed
              ~capacity ~pdef g,
            None ) );
      ( "beam",
        fun () ->
          let b = Beam.search ~width:beam_width ~pdef classify in
          (b.Beam.patterns, Some b.Beam.cycles) );
    ]

let strategy_names =
  [
    "eq8"; "variant:linear-size"; "variant:raw-count"; "variant:coverage-gap";
    "variant:sqrt-damping"; "greedy-count"; "harvest:greedy"; "harvest:fds";
    "beam";
  ]

let cost_entry ectx (strategy, patterns, known) =
  let cycles =
    match known with
    | Some c -> c
    | None ->
        if patterns = [] then max_int
        else (
          match Eval.cycles ectx patterns with
          | c -> c
          | exception Eval.Unschedulable _ -> max_int)
  in
  { strategy; patterns; cycles }

let run_named ?beam_width ~pdef classify name =
  match List.assoc_opt name (strategies ?beam_width ~pdef classify) with
  | Some thunk -> thunk ()
  | None ->
      invalid_arg
        (Printf.sprintf "Portfolio.run_named: unknown strategy %S" name)

(* Fan-in: cost the un-costed sets on one shared evaluation context in
   submission order — strategies that agree on a pattern set share one
   schedule through the memo cache, and the cache stays single-domain.
   This is the half of [run] a process shard reuses: workers produce
   (strategy, patterns, known) rows, the coordinator ranks them here. *)
let of_produced classify produced =
  let ectx = Eval.make (Classify.graph classify) in
  let candidates = List.map (cost_entry ectx) produced in
  let ranked =
    List.stable_sort (fun a b -> compare a.cycles b.cycles) candidates
  in
  match ranked with
  | best :: _ -> { best; all = ranked }
  | [] -> invalid_arg "Portfolio.of_produced: no strategy results"

let run ?pool ?beam_width ?annealing ~pdef classify =
  if pdef < 1 then invalid_arg "Portfolio.run: pdef must be >= 1";
  Obs.span "portfolio" @@ fun () ->
  let tasks : (unit -> string * Pattern.t list * int option) list =
    List.map
      (fun (name, thunk) ->
        fun () ->
          let patterns, known = thunk () in
          (name, patterns, known))
      (strategies ?beam_width ~pdef classify)
    @
    match annealing with
    | None -> []
    | Some (rng, iterations) ->
        [
          (fun () ->
            let a = Annealing.search ~iterations rng ~pdef classify in
            ("annealing", a.Annealing.patterns, Some a.Annealing.cycles));
        ]
  in
  Obs.count "portfolio.strategies" (List.length tasks);
  let produced =
    match pool with
    | Some pool -> Pool.map pool ~f:(fun task -> task ()) tasks
    | None -> List.map (fun task -> task ()) tasks
  in
  of_produced classify produced
