module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type entry = {
  strategy : string;
  patterns : Pattern.t list;
  cycles : int;
}

type outcome = { best : entry; all : entry list }

let run ?pool ?(beam_width = 4) ?annealing ~pdef classify =
  if pdef < 1 then invalid_arg "Portfolio.run: pdef must be >= 1";
  Obs.span "portfolio" @@ fun () ->
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let cost patterns =
    if patterns = [] then max_int
    else
      match Mp.schedule ~patterns g with
      | { Mp.schedule; _ } -> Schedule.cycles schedule
      | exception Mp.Unschedulable _ -> max_int
  in
  let entry strategy patterns = { strategy; patterns; cycles = cost patterns } in
  (* Each strategy is one thunk: independent of the others, so the set runs
     unchanged on one domain or many.  Thunk order is the tie-break order
     (cheaper strategies first), and the pool returns results in submission
     order, so ranking is identical however the work is spread. *)
  let tasks : (unit -> entry) list =
    [ (fun () -> entry "eq8" (Select.select ~pdef classify)) ]
    @ List.filter_map
        (fun v ->
          if v.Priority_variants.name = "paper" then None
          else
            Some
              (fun () ->
                entry
                  ("variant:" ^ v.Priority_variants.name)
                  (Priority_variants.select v ~pdef classify)))
        Priority_variants.all
    @ [
        (fun () -> entry "greedy-count" (Greedy_cover.select ~pdef classify));
        (fun () ->
          entry "harvest:greedy"
            (Pattern_source.harvest ~method_:Pattern_source.Greedy ~capacity ~pdef g));
        (fun () ->
          entry "harvest:fds"
            (Pattern_source.harvest ~method_:Pattern_source.Force_directed ~capacity
               ~pdef g));
        (fun () ->
          let b = Beam.search ~width:beam_width ~pdef classify in
          { strategy = "beam"; patterns = b.Beam.patterns; cycles = b.Beam.cycles });
      ]
    @
    match annealing with
    | None -> []
    | Some (rng, iterations) ->
        [
          (fun () ->
            let a = Annealing.search ~iterations rng ~pdef classify in
            {
              strategy = "annealing";
              patterns = a.Annealing.patterns;
              cycles = a.Annealing.cycles;
            });
        ]
  in
  Obs.count "portfolio.strategies" (List.length tasks);
  let candidates =
    match pool with
    | Some pool -> Pool.map pool ~f:(fun task -> task ()) tasks
    | None -> List.map (fun task -> task ()) tasks
  in
  let ranked = List.stable_sort (fun a b -> compare a.cycles b.cycles) candidates in
  match ranked with
  | best :: _ -> { best; all = ranked }
  | [] -> assert false
