(** Cheap per-graph features for strategy auto-selection.

    The selector ({!Auto}) decides which selection backend to run on a
    graph from structural features alone — nothing here enumerates
    antichains or schedules anything.  Everything is derived in one pass
    over the analyses the pipeline computes anyway ({!Mps_dfg.Levels},
    {!Mps_dfg.Reachability}), so extraction costs a small fraction of even
    the cheapest backend and the vector can be cached per graph (the serve
    session keys it by content fingerprint).

    Features are exposed two ways: as a typed record for code, and as a
    named [(string * float)] vector ({!to_assoc}) that the rule table's
    conditions are written against — rule files name features by these
    strings, and {!get}/{!names} are the single source of truth for what
    exists. *)

type t = {
  nodes : int;  (** Node count. *)
  edges : int;  (** Edge count. *)
  colors : int;  (** Distinct colors (|L|, §5.2). *)
  max_color_share : float;
      (** Largest color population divided by the node count — 1.0 for a
          monochrome graph, 1/|L| for a perfectly balanced mix. *)
  depth : int;  (** Critical path length in cycles (ASAPmax + 1). *)
  max_width : int;  (** Widest ASAP level. *)
  mean_width : float;  (** Nodes per ASAP level on average. *)
  width_histogram : (int * int) list;
      (** [(width, number of ASAP levels of that width)], ascending width —
          the level-width histogram the scalar summaries are drawn from. *)
  parallelism : float;
      (** Fraction of unordered node pairs that are parallelizable under
          the transitive closure (§3): 0 for a chain, 1 for an antichain
          graph.  0 when the graph has fewer than two nodes. *)
  antichain_log2 : float;
      (** log2 of a cheap lower estimate of the antichain count: every
          non-empty subset of an ASAP level is an antichain (equal ASAP
          means incomparable), so Σ over levels of 2^width − 1 counts the
          span-0 antichains without enumerating anything. *)
}

val extract : Mps_dfg.Dfg.t -> t
(** Computes {!Mps_dfg.Levels} and {!Mps_dfg.Reachability} and derives the
    vector.  Deterministic: the same graph always yields the same vector. *)

val extract_with :
  levels:Mps_dfg.Levels.t ->
  reachability:Mps_dfg.Reachability.t ->
  Mps_dfg.Dfg.t ->
  t
(** {!extract} reusing analyses the caller already owns (an
    {!Mps_scheduler.Eval} context computed both) — same result. *)

val names : string list
(** The scalar feature names rule conditions may reference, in {!to_assoc}
    order: [nodes], [edges], [colors], [max_color_share], [depth],
    [max_width], [mean_width], [parallelism], [antichain_log2]. *)

val get : t -> string -> float option
(** The named scalar, [None] for an unknown name. *)

val to_assoc : t -> (string * float) list
(** The full named vector, in {!names} order. *)

val to_json : t -> Mps_util.Json.t
(** The vector as a JSON object (scalars by name plus the width histogram
    as an array of [[width, count]] pairs) — what the bench artifacts and
    verbose CLI output print. *)

val pp : Format.formatter -> t -> unit
(** One-line [name=value] rendering, {!names} order. *)
