(** Per-graph strategy auto-selection over a transparent decision-rule
    table (ROADMAP item 4, after the OpenMP scheduling-algorithm-selection
    comparative study in PAPERS.md).

    The portfolio ({!Portfolio}) pays for every backend on every graph;
    auto reads a cheap feature vector ({!Features}) and dispatches exactly
    {e one} named thunk from {!Portfolio.strategies} — so its answer is
    always some portfolio member's exact pattern set, never a novel one,
    at roughly the cost of the one backend it picked.

    The decision logic is an ordered rule table: the first rule whose
    conditions all hold names the backend, and the table must end with an
    unconditional default so every graph matches something.  Each rule
    carries provenance — which corpus workloads it was fit on — so a
    surprising decision can be traced to its evidence.  Tables are fit
    offline by {!fit} (driven by [bench --fit-selector] over the bench
    corpus), compiled in as {!builtin_rules}, and mirrored as the
    checked-in [results/selector_rules.json]; [--rules FILE] loads an
    alternative table through {!load}, which enforces the same invariants
    the codec does (known features, known backends, terminal default). *)

(** {1 Rule tables} *)

type op =
  | Le  (** feature <= threshold *)
  | Gt  (** feature > threshold *)

type cond = { feature : string; op : op; threshold : float }
(** [feature] must be one of {!Features.names}. *)

type rule = {
  conds : cond list;  (** All must hold; [[]] is the unconditional default. *)
  backend : string;  (** A {!Portfolio.strategy_names} member. *)
  provenance : string;
      (** Free text: the corpus workloads this rule covered when fit, or
          ["hand-written"] for manual edits. *)
}

type rules = rule list
(** Ordered: first match wins.  A valid table is non-empty, names only
    known features and backends, and ends with an unconditional rule. *)

val builtin_rules : rules
(** The table fit on the bench corpus by [bench --fit-selector] and
    pasted in, so auto needs no file at startup and behaves identically
    from any working directory.  [results/selector_rules.json] is its
    serialized mirror; [bench --selector] gates that the two agree. *)

val validate : rules -> (rules, string) result
(** The invariants above; [Error] names the offending rule. *)

val to_json : rules -> Mps_util.Json.t
val of_json : Mps_util.Json.t -> (rules, string) result
(** Inverses on valid tables; [of_json] runs {!validate}. *)

val load : string -> (rules, string) result
(** Reads and parses a rule file written by {!to_json} (via
    [bench --fit-selector]).  [Error] on IO, parse or validation
    failure — never raises. *)

(** {1 Selection} *)

type outcome = {
  backend : string;  (** The dispatched strategy. *)
  rule_index : int;  (** 0-based index of the matching rule. *)
  rule : rule;
  features : Features.t;
  patterns : Mps_pattern.Pattern.t list;
  cycles : int;
      (** The set's schedule length under the default priority — the same
          costing the portfolio ranks by — or [max_int] if unschedulable
          or empty. *)
}

val select :
  ?rules:rules ->
  ?features:Features.t ->
  ?eval:Mps_scheduler.Eval.t ->
  ?beam_width:int ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  outcome
(** Extracts features (reusing [eval]'s analyses when given, or a
    caller-cached vector via [features] — the serve session passes its
    fingerprint-keyed copy), walks [rules] (default {!builtin_rules}) to
    the first match, runs that one backend, and costs the result on
    [eval] (or a fresh context).  Runs inline on the calling domain and
    emits [select.auto.requests] (count), [select.auto.rule] /
    [select.auto.cycles] (distributions) and [select.auto.backend.<name>]
    (count) in submission order, so [--stats] stays byte-identical at any
    [--jobs].

    @raise Invalid_argument if [pdef < 1] or [rules] fails {!validate}
    (pre-validated tables from {!load}/{!of_json} never do). *)

(** {1 Strategy choice for the pipeline} *)

type strategy =
  | Paper  (** The faithful Eq. 8/9 heuristic — the default everywhere. *)
  | Auto of rules  (** Rule-table dispatch as above. *)

val strategy_of_string : ?rules:rules -> string -> (strategy, string) result
(** ["eq8"]/["paper"] or ["auto"] (using [rules], default
    {!builtin_rules}) — the CLI/serve option spelling. *)

(** {1 Offline fitting} *)

type example = {
  name : string;  (** Workload name, quoted in rule provenance. *)
  example_features : Features.t;
  costs : (string * int) list;
      (** Backend name to schedule cycles ([max_int] = unschedulable),
          every backend present. *)
}

val fit : ?tolerance:float -> example list -> rules
(** Greedy separate-and-conquer decision-list fitting (PRISM-style).  A
    backend is {e acceptable} for an example when its cycles are within
    [tolerance] (default 0.05) of that example's best backend.  Rounds
    pick the single-condition rule (feature, [Le]/[Gt], midpoint
    threshold between adjacent observed values) that is {e pure} — every
    remaining example it covers accepts its backend — and covers the most
    remaining examples; ties break toward the cheaper backend
    ({!Portfolio.strategy_names} order), then {!Features.names} order,
    [Le] before [Gt], smaller threshold.  Covered examples are removed
    and the search repeats; when no pure rule exists (or nothing
    remains), an unconditional default closes the table with the backend
    acceptable to most remaining (or all) examples.  Deterministic: no
    randomness, all ties ordered.
    @raise Invalid_argument on an empty example list. *)
