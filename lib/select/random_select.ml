module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Rng = Mps_util.Rng

let covers colors patterns =
  let covered =
    List.fold_left
      (fun acc p -> Color.Set.union acc (Pattern.color_set p))
      Color.Set.empty patterns
  in
  List.for_all (fun c -> Color.Set.mem c covered) colors

let select ?(ensure_coverage = true) rng ~colors ~capacity ~pdef =
  if capacity < 1 then invalid_arg "Random_select.select: capacity < 1";
  if pdef < 1 then invalid_arg "Random_select.select: pdef < 1";
  let distinct = List.sort_uniq Color.compare colors in
  if distinct = [] then invalid_arg "Random_select.select: no colors";
  if ensure_coverage && capacity * pdef < List.length distinct then
    invalid_arg "Random_select.select: coverage impossible for these sizes";
  let draw () =
    List.init pdef (fun _ -> Pattern.random rng ~colors:distinct ~size:capacity)
  in
  let rec attempt () =
    let ps = draw () in
    if (not ensure_coverage) || covers distinct ps then ps else attempt ()
  in
  attempt ()

let trials ?ensure_coverage rng ~runs ~colors ~capacity ~pdef =
  List.init runs (fun _ -> select ?ensure_coverage rng ~colors ~capacity ~pdef)

let trial_cycles ?ensure_coverage rng ~eval ~runs ~capacity ~pdef =
  let module Eval = Mps_scheduler.Eval in
  let colors = Mps_dfg.Dfg.colors (Eval.graph eval) in
  trials ?ensure_coverage rng ~runs ~colors ~capacity ~pdef
  |> List.map (fun patterns ->
         match Eval.cycles eval patterns with
         | c -> c
         | exception Eval.Unschedulable _ -> max_int)
