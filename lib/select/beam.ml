module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Id = Mps_pattern.Pattern.Id
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Obs = Mps_obs.Obs
module Listx = Mps_util.Listx

type outcome = {
  patterns : Pattern.t list;
  cycles : int;
  evaluated_sets : int;
}

(* One partial selection: chosen pattern ids (reversed), accumulated
   per-node coverage, covered colors, surviving pool, and the heuristic
   score that ranks beams (sum of the Eq. 8 priorities of its picks). *)
type state = {
  chosen : Id.t list;
  cover : int array;
  covered : Color.Set.t;
  pool : (Id.t * int array) list;
  heuristic : float;
}

let priority ~params ~cover ~freq ~size =
  let open Select in
  let acc = ref 0.0 in
  Array.iteri
    (fun n h ->
      if h > 0 then
        acc := !acc +. (float_of_int h /. (float_of_int cover.(n) +. params.epsilon)))
    freq;
  !acc +. (params.alpha *. float_of_int (size * size))

let search ?(width = 4) ?(params = Select.default_params) ~pdef classify =
  if pdef < 1 then invalid_arg "Beam.search: pdef must be >= 1";
  if width < 1 then invalid_arg "Beam.search: width must be >= 1";
  Obs.span "beam" @@ fun () ->
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let u = Classify.universe classify in
  let n = Dfg.node_count g in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let initial =
    {
      chosen = [];
      cover = Array.make n 0;
      covered = Color.Set.empty;
      pool =
        Classify.fold_ids (fun id ~count:_ ~freq acc -> (id, freq) :: acc) classify []
        |> List.rev;
      heuristic = 0.0;
    }
  in
  let extend step state =
    let remaining_picks = pdef - step - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors state.covered) in
    let color_condition id =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Universe.color_set u id) state.covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let apply pid freq score =
      let cover = Array.copy state.cover in
      Array.iteri (fun k h -> cover.(k) <- cover.(k) + h) freq;
      {
        chosen = pid :: state.chosen;
        cover;
        covered = Color.Set.union state.covered (Universe.color_set u pid);
        pool =
          List.filter (fun (q, _) -> not (Universe.subpattern u q ~of_:pid)) state.pool;
        heuristic = state.heuristic +. score;
      }
    in
    let scored =
      List.filter_map
        (fun (id, freq) ->
          if color_condition id then
            let s =
              priority ~params ~cover:state.cover ~freq ~size:(Universe.size u id)
            in
            Some (s, id, freq)
          else None)
        state.pool
    in
    match scored with
    | [] ->
        (* Fallback, exactly as Fig. 7: fabricate from uncovered colors. *)
        let uncovered = Color.Set.elements (Color.Set.diff all_colors state.covered) in
        if uncovered = [] then [ { state with chosen = state.chosen } ]
        else begin
          let pid =
            Universe.intern u (Pattern.of_colors (Listx.take capacity uncovered))
          in
          [ apply pid (Array.make n 0) 0.0 ]
        end
    | _ ->
        List.sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1) scored
        |> List.filteri (fun i _ -> i < width)
        |> List.map (fun (s, id, freq) -> apply id freq s)
  in
  let rec steps i beam =
    if i = pdef then beam
    else begin
      let expanded = List.concat_map (extend i) beam in
      Obs.count "beam.expansions" (List.length expanded);
      (* Keep the [width] most promising partial selections; dedupe on the
         chosen multiset so permutations don't crowd the beam.  The key
         stays the sorted pattern list (not ids): the dedupe order seeds
         the stable heuristic sort's tie-breaks, and ids are allocated in
         visit order, not pattern order. *)
      let key st = List.sort Pattern.compare (List.map (Universe.pattern u) st.chosen) in
      let deduped =
        List.sort_uniq (fun a b -> compare (key a) (key b)) expanded
      in
      let ranked =
        List.sort (fun a b -> compare b.heuristic a.heuristic) deduped
      in
      steps (i + 1) (List.filteri (fun k _ -> k < width) ranked)
    end
  in
  let finalists = steps 0 [ initial ] in
  (* Finalists are scored on one shared evaluation context: the graph
     analyses run once, and the memo cache absorbs any multiset the beam
     reaches twice.  Delta recording is on because consecutive finalists
     usually differ in a single pick. *)
  let ectx = Eval.make ~universe:u ~delta:true g in
  let evaluated = ref 0 in
  (* Multiset difference of two id lists as (only-in-prev, only-in-next),
     each ascending — the shape decides whether a finalist is one swap or
     one extension away from the previously costed one. *)
  let multiset_diff prev next =
    let s l = List.sort (fun a b -> compare (Id.to_int a) (Id.to_int b)) l in
    let rec walk rem add p n =
      match (p, n) with
      | [], [] -> (List.rev rem, List.rev add)
      | x :: p', [] -> walk (x :: rem) add p' []
      | [], y :: n' -> walk rem (y :: add) [] n'
      | x :: p', y :: n' ->
          let c = compare (Id.to_int x) (Id.to_int y) in
          if c = 0 then walk rem add p' n'
          else if c < 0 then walk (x :: rem) add p' n
          else walk rem (y :: add) p n'
    in
    walk [] [] (s prev) (s next)
  in
  let prev_ids = ref [] in
  (* Cost a finalist through the delta path when it is one move away from
     the previous finalist (single swap or single pool extension); wider
     diffs take the plain path.  Results and counters are identical either
     way — the delta path only changes how much of the run is re-stepped. *)
  let cost ids =
    let eval () =
      match (!prev_ids, multiset_diff !prev_ids ids) with
      | [], _ | _, ([], []) -> Eval.cycles_ids ectx ids
      | prev, ([ r ], [ a ]) ->
          Eval.cycles_delta_ids ectx ~removed:r ~prev ~added:a
      | prev, ([], [ a ]) -> Eval.cycles_delta_ids ectx ~prev ~added:a
      | _ -> Eval.cycles_ids ectx ids
    in
    match eval () with
    | c ->
        prev_ids := ids;
        c
    | exception e ->
        prev_ids := ids;
        raise e
  in
  let best =
    List.fold_left
      (fun acc state ->
        let ids = List.rev state.chosen in
        let patterns = List.map (Universe.pattern u) ids in
        if patterns = [] then acc
        else begin
          match cost ids with
          | exception Eval.Unschedulable _ -> acc
          | c -> (
              incr evaluated;
              match acc with
              | Some (_, bc) when bc <= c -> acc
              | _ -> Some (patterns, c))
        end)
      None finalists
  in
  match best with
  | Some (patterns, cycles) ->
      Obs.count "beam.evaluated" !evaluated;
      { patterns; cycles; evaluated_sets = !evaluated }
  | None ->
      (* Only possible when every finalist was empty/unschedulable; fall
         back to the paper's heuristic, which guarantees coverage. *)
      let patterns = Select.select ~params ~pdef classify in
      let cycles = Eval.cycles ectx patterns in
      Obs.count "beam.evaluated" (!evaluated + 1);
      { patterns; cycles; evaluated_sets = !evaluated + 1 }
