module Listx = Mps_util.Listx
module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify

let select ~pdef classify =
  if pdef < 1 then invalid_arg "Greedy_cover.select: pdef must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let u = Classify.universe classify in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let pool =
    ref
      (Classify.fold_ids (fun id ~count ~freq:_ acc -> (id, count) :: acc) classify []
      |> List.rev)
  in
  let covered = ref Color.Set.empty in
  let selected = ref [] in
  let stop = ref false in
  for i = 0 to pdef - 1 do
    if not !stop then begin
      let remaining_picks = pdef - i - 1 in
      let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
      let viable =
        List.filter
          (fun (id, _) ->
            let new_colors =
              Color.Set.cardinal (Color.Set.diff (Universe.color_set u id) !covered)
            in
            new_colors >= missing - (capacity * remaining_picks))
          !pool
      in
      let best =
        List.fold_left
          (fun acc (id, count) ->
            match acc with
            | Some (_, bc) when bc >= count -> acc
            | _ -> Some (id, count))
          None viable
      in
      let commit pid =
        pool := List.filter (fun (q, _) -> not (Universe.subpattern u q ~of_:pid)) !pool;
        covered := Color.Set.union !covered (Universe.color_set u pid);
        selected := Universe.pattern u pid :: !selected
      in
      match best with
      | Some (pid, _) -> commit pid
      | None ->
          let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
          if uncovered = [] then stop := true
          else begin
            commit (Universe.intern u (Pattern.of_colors (Listx.take capacity uncovered)))
          end
    end
  done;
  List.rev !selected
