(* Exact pattern selection by certifying branch-and-bound over the
   classified pool.  See exact.mli for the contract and DESIGN.md §11 for
   the soundness argument behind each prune.

   Cost canonicalization: a set is always costed in its canonical chosen
   order — pool patterns in canonical (index) order, the fabricated
   fallback last — and a fabricated completion that coincides with a pool
   pattern is skipped as a non-canonical duplicate of the pool-only set
   evaluated elsewhere in the tree.  The list scheduler breaks score ties
   by list position, so without this rule the same multiset could cost
   differently depending on which branch reached it first; with it, the
   cost of a set is well-defined and the minimum over the family is the
   same for every traversal order, worker count, and for the exhaustive
   oracle (which applies the same rule). *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type pruning = {
  prune_span : bool;
  prune_color : bool;
  prune_ban : bool;
  prune_dominance : bool;
}

let all_pruning =
  { prune_span = true; prune_color = true; prune_ban = true; prune_dominance = true }

let no_pruning =
  { prune_span = false; prune_color = false; prune_ban = false; prune_dominance = false }

type bound = Infeasible | Cost of int

type ban_entry = { banned : Pattern.t list; bound : bound }

type stats = {
  nodes_visited : int;
  pruned_span : int;
  pruned_color : int;
  pruned_ban : int;
  pruned_dominance : int;
  evaluated : int;
}

type certificate = {
  optimal : Pattern.t list;
  optimal_cycles : int;
  stats : stats;
  bans : ban_entry list;
  proven : bool;
}

(* Root subtrees are explored in fixed-size batches so the incumbent
   refreshes at deterministic points: the batch layout — and therefore
   every number in the certificate — is independent of the worker count. *)
let batch_size = 8

type session = {
  ev : Eval.t;
  tbl : (string, bound) Hashtbl.t;
  (* The last set actually costed through [ev] (never a ban-table skip):
     its evaluation is memoized with replay data, so a sibling set one
     positional move away is delta-costed against it. *)
  mutable last : Pattern.t list option;
  mutable ban_rev : ban_entry list;
  mutable visited : int;
  mutable p_span : int;
  mutable p_color : int;
  mutable p_ban : int;
  mutable p_dom : int;
  mutable eval_count : int;
  mutable inc : int;
  mutable best : Pattern.t list option;
  mutable capped : bool;
}

type task_result = {
  t_best : (int * Pattern.t list) option;
  t_stats : stats;
  t_bans : ban_entry list;
  t_capped : bool;
}

let make_session ev inc =
  {
    ev;
    tbl = Hashtbl.create 64;
    last = None;
    ban_rev = [];
    visited = 0;
    p_span = 0;
    p_color = 0;
    p_ban = 0;
    p_dom = 0;
    eval_count = 0;
    inc;
    best = None;
    capped = false;
  }

let stats_of_session s =
  {
    nodes_visited = s.visited;
    pruned_span = s.p_span;
    pruned_color = s.p_color;
    pruned_ban = s.p_ban;
    pruned_dominance = s.p_dom;
    evaluated = s.eval_count;
  }

let add_stats a b =
  {
    nodes_visited = a.nodes_visited + b.nodes_visited;
    pruned_span = a.pruned_span + b.pruned_span;
    pruned_color = a.pruned_color + b.pruned_color;
    pruned_ban = a.pruned_ban + b.pruned_ban;
    pruned_dominance = a.pruned_dominance + b.pruned_dominance;
    evaluated = a.evaluated + b.evaluated;
  }

let emit_counters s =
  Obs.count "exact.nodes.visited" s.visited;
  Obs.count "exact.pruned.span" s.p_span;
  Obs.count "exact.pruned.color" s.p_color;
  Obs.count "exact.pruned.ban" s.p_ban;
  Obs.count "exact.pruned.dominance" s.p_dom;
  Obs.count "exact.evaluated" s.eval_count

let key_of set =
  String.concat "|" (List.sort String.compare (List.map Pattern.to_string set))

(* Is [set] exactly one positional move away from [prev]: one in-place
   replacement at a single index (a swap), or [prev] with one pattern
   appended (a grow)?  Only such moves are delta-costed, because the delta
   path builds the moved set by in-place replacement / appending — for a
   positional single-diff that reconstruction IS the canonical chosen
   order (chosen sets never hold duplicate patterns), so the
   cost-canonicalization contract in the header note is preserved. *)
let positional_move prev set =
  let eq a b = Pattern.compare a b = 0 in
  let rec go swap p s =
    match (p, s) with
    | [], [] -> swap
    | [], [ a ] -> ( match swap with None -> Some (`Grow a) | Some _ -> None)
    | x :: p', y :: s' ->
        if eq x y then go swap p' s'
        else (
          match swap with
          | None -> go (Some (`Swap (x, y))) p' s'
          | Some _ -> None)
    | _ -> None
  in
  go None prev set

(* The canonical candidate order: descending size, spelling to break ties.
   A proper subpattern is strictly smaller, so this is a linear extension
   of the proper-subpattern lattice — every dominator precedes every
   pattern it dominates.  That is what makes the dominance prune complete:
   whenever a set contains a comparable pair, the dominator is chosen
   first and the subpattern is cut as a candidate. *)
let pool_order p q =
  let c = compare (Pattern.size q) (Pattern.size p) in
  if c <> 0 then c else Pattern.compare p q

(* The canonical costing order: pool members in canonical pool order,
   foreign patterns last by spelling.  [index] maps a pattern to its pool
   position, [None] for foreigners. *)
let order_by index set =
  List.map
    (fun p ->
      match index p with
      | Some i -> ((0, i, ""), p)
      | None -> ((1, 0, Pattern.to_string p), p))
    set
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let canonical_order classify set =
  let pool = Array.of_list (Classify.patterns classify) in
  Array.sort pool_order pool;
  let h = Hashtbl.create (2 * Array.length pool) in
  Array.iteri (fun i p -> Hashtbl.replace h (Pattern.to_string p) i) pool;
  order_by (fun p -> Hashtbl.find_opt h (Pattern.to_string p)) set

(* Everything the per-root tasks share, prepared once: the candidate
   order, prune tables, prior-ban table, and the closures running one
   root subtree or the sequential seed phase.  A [plan] is buildable in
   any process from the same classification + arguments and yields
   bit-identical [task_result]s — pool order, dominance, and the prior
   table are all pattern-level, never raw universe ids — which is what
   lets a shard worker re-derive the coordinator's plan locally. *)
type plan = {
  pl_np : int;
  pl_seed : Pattern.t list list -> session;
  pl_run_root : inc:int -> int -> task_result;
}

let make_plan ?priority ?(pruning = all_pruning) ?(max_nodes = 1_000_000)
    ?(bans = []) ~pdef classify =
  if pdef < 1 then invalid_arg "Exact.search: pdef must be >= 1";
  if max_nodes < 1 then invalid_arg "Exact.search: max_nodes must be >= 1";
  (* Warm start from a previous certificate's ban list: every prior entry
     is a proven fact about its set (cost in canonical order, or
     infeasibility), so a completion that hits the table is pruned without
     re-evaluation, and the cheapest prior [Cost] set opens as the
     incumbent.  The table is filled before the fan-out and only read
     afterwards, so sharing it across worker domains is safe. *)
  let prior = Hashtbl.create (2 * List.length bans + 1) in
  let prior_best =
    List.fold_left
      (fun acc e ->
        let k = key_of e.banned in
        if not (Hashtbl.mem prior k) then Hashtbl.replace prior k e.bound;
        match (e.bound, acc) with
        | Cost c, None -> Some (c, e.banned)
        | Cost c, Some (bc, _) when c < bc -> Some (c, e.banned)
        | _ -> acc)
      None bans
  in
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let u = Classify.universe classify in
  let ids = Array.of_list (Classify.ids classify) in
  Array.sort (fun i j -> pool_order (Universe.pattern u i) (Universe.pattern u j)) ids;
  let np = Array.length ids in
  let pats = Array.map (Universe.pattern u) ids in
  let csets = Array.map Pattern.color_set pats in
  let sizes = Array.map Pattern.size pats in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let colors_arr = Array.of_list (Color.Set.elements all_colors) in
  let ncolors = Array.length colors_arr in
  let n_nodes = Dfg.node_count g in
  let node_count_by_color =
    let a = Array.make (max 1 ncolors) 0 in
    List.iter
      (fun n ->
        let c = Dfg.color g n in
        Array.iteri
          (fun i ci -> if Color.compare c ci = 0 then a.(i) <- a.(i) + 1)
          colors_arr)
      (Dfg.nodes g);
    a
  in
  let pmult =
    Array.map (fun p -> Array.map (fun c -> Pattern.count p c) colors_arr) pats
  in
  let pool_index =
    let h = Hashtbl.create (2 * np) in
    Array.iteri (fun i p -> Hashtbl.replace h (Pattern.to_string p) i) pats;
    fun p -> Hashtbl.find_opt h (Pattern.to_string p)
  in
  (* Dominance, restricted to the pool and materialized before the fan-out
     so worker domains never touch the universe's lazily-extended matrix:
     [dom.(j).(i)] iff pool pattern [i] is a proper subpattern of [j]. *)
  let dom = Array.make_matrix (max 1 np) (max 1 np) false in
  for j = 0 to np - 1 do
    for i = 0 to np - 1 do
      if i <> j then dom.(j).(i) <- Universe.proper_subpattern u ids.(i) ~of_:ids.(j)
    done
  done;
  (* Suffix aggregates over the candidate order: what patterns i.. can
     still contribute in colors, size, and per-color multiplicity. *)
  let suffix_colors = Array.make (np + 1) Color.Set.empty in
  let suffix_maxsize = Array.make (np + 1) 0 in
  let suffix_maxmult = Array.init (np + 1) (fun _ -> Array.make (max 1 ncolors) 0) in
  for i = np - 1 downto 0 do
    suffix_colors.(i) <- Color.Set.union csets.(i) suffix_colors.(i + 1);
    suffix_maxsize.(i) <- max sizes.(i) suffix_maxsize.(i + 1);
    for c = 0 to ncolors - 1 do
      suffix_maxmult.(i).(c) <- max pmult.(i).(c) suffix_maxmult.(i + 1).(c)
    done
  done;
  let master = Eval.make ~delta:true g in
  let lb_cp = Levels.lower_bound_cycles (Eval.levels master) in
  let evaluate s set =
    if set <> [] then begin
      let key = key_of set in
      let known =
        match Hashtbl.find_opt s.tbl key with
        | Some _ as b -> b
        | None -> Hashtbl.find_opt prior key
      in
      match known with
      | Some _ when pruning.prune_ban -> s.p_ban <- s.p_ban + 1
      | _ ->
          s.eval_count <- s.eval_count + 1;
          let cost_set () =
            match s.last with
            | Some prev -> (
                match positional_move prev set with
                | Some (`Swap (r, a)) ->
                    Eval.cycles_delta ?priority s.ev ~removed:r ~prev ~added:a
                | Some (`Grow a) ->
                    Eval.cycles_delta ?priority s.ev ~prev ~added:a
                | None -> Eval.cycles ?priority s.ev set)
            | None -> Eval.cycles ?priority s.ev set
          in
          let bound =
            match cost_set () with
            | c ->
                if c < s.inc then begin
                  s.inc <- c;
                  s.best <- Some set
                end;
                Cost c
            | exception Eval.Unschedulable _ -> Infeasible
          in
          s.last <- Some set;
          if known = None then begin
            Hashtbl.replace s.tbl key bound;
            s.ban_rev <- { banned = set; bound } :: s.ban_rev
          end
    end
  in
  (* Completion, mirroring Exhaustive.search: fill the missing colors with
     one fabricated pattern when a slot is free and they fit — except when
     the fabrication coincides with a pool pattern (see the header note). *)
  let consider s pat_rev covered nchosen =
    let uncovered = Color.Set.diff all_colors covered in
    if Color.Set.is_empty uncovered then evaluate s (List.rev pat_rev)
    else if nchosen < pdef && Color.Set.cardinal uncovered <= capacity then begin
      let fab = Pattern.of_colors (Color.Set.elements uncovered) in
      if pool_index fab = None then evaluate s (List.rev (fab :: pat_rev))
    end
  in
  (* No completion below [chosen + i] can cover the graph: the colors out
     of reach of the suffix exceed one fabrication, or the remaining picks
     cannot bridge the missing colors (the Eq. 9 budget). *)
  let color_infeasible covered' k_rem next_start =
    let missing = Color.Set.diff all_colors covered' in
    if Color.Set.is_empty missing then false
    else if k_rem = 0 then true
    else
      Color.Set.cardinal (Color.Set.diff missing suffix_colors.(next_start))
      > capacity
      || Color.Set.cardinal missing > capacity * k_rem
  in
  (* A lower bound on any completion below [chosen + i]: critical path,
     slot pressure against the largest reachable pattern, and per-color
     load against the best reachable per-color multiplicity (a fabrication
     contributes at most one slot per still-uncovered color). *)
  let lower_bound idx_rev i covered' k_rem max_sz =
    let max_sz = max max_sz sizes.(i) in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors covered') in
    let avail =
      if k_rem >= 1 then
        max max_sz (max suffix_maxsize.(i + 1) (min capacity missing))
      else max_sz
    in
    let lb = ref lb_cp in
    if avail > 0 then lb := max !lb ((n_nodes + avail - 1) / avail);
    for c = 0 to ncolors - 1 do
      let cnt = node_count_by_color.(c) in
      if cnt > 0 then begin
        let m = ref pmult.(i).(c) in
        List.iter (fun j -> m := max !m pmult.(j).(c)) idx_rev;
        if k_rem >= 1 then begin
          m := max !m suffix_maxmult.(i + 1).(c);
          if not (Color.Set.mem colors_arr.(c) covered') then m := max !m 1
        end;
        lb := max !lb (if !m = 0 then max_int else (cnt + !m - 1) / !m)
      end
    done;
    !lb
  in
  let rec branch s start idx_rev pat_rev covered nchosen max_sz =
    if not s.capped then begin
      s.visited <- s.visited + 1;
      if s.visited > max_nodes then s.capped <- true
      else begin
        consider s pat_rev covered nchosen;
        if nchosen < pdef then
          for i = start to np - 1 do
            extend s i idx_rev pat_rev covered nchosen max_sz
          done
      end
    end
  and extend s i idx_rev pat_rev covered nchosen max_sz =
    if not s.capped then begin
      if pruning.prune_dominance && List.exists (fun j -> dom.(j).(i)) idx_rev
      then s.p_dom <- s.p_dom + 1
      else begin
        let covered' = Color.Set.union covered csets.(i) in
        let k_rem = pdef - nchosen - 1 in
        if pruning.prune_color && color_infeasible covered' k_rem (i + 1) then
          s.p_color <- s.p_color + 1
        else if
          pruning.prune_span
          && lower_bound idx_rev i covered' k_rem max_sz >= s.inc
        then s.p_span <- s.p_span + 1
        else
          branch s (i + 1) (i :: idx_rev)
            (pats.(i) :: pat_rev)
            covered' (nchosen + 1)
            (max max_sz sizes.(i))
      end
    end
  in
  (* Seeds are costed canonically — deterministic whatever order the
     caller's strategy emitted them in. *)
  let canonical_seed set = order_by pool_index set in
  let seed seeds =
    (* Sequential seed phase: the root node's own completion (the pure
       fabrication), then the warm-start incumbents. *)
    let seed_s = make_session master max_int in
    (* The prior incumbent is the earliest cheapest prior set — exactly
       the optimum the producing search reported (its ban list is in
       discovery order and the incumbent only ever improved strictly), so
       a warm re-search returns the same optimal set when nothing beats
       it. *)
    (match prior_best with
    | Some (c, set) ->
        seed_s.inc <- c;
        seed_s.best <- Some set
    | None -> ());
    seed_s.visited <- 1;
    consider seed_s [] Color.Set.empty 0;
    List.iter (fun set -> evaluate seed_s (canonical_seed set)) seeds;
    emit_counters seed_s;
    seed_s
  in
  let run_root ~inc i =
    let s = make_session (Eval.make ~delta:true g) inc in
    extend s i [] [] Color.Set.empty 0 0;
    emit_counters s;
    {
      t_best = (match s.best with Some set -> Some (s.inc, set) | None -> None);
      t_stats = stats_of_session s;
      t_bans = List.rev s.ban_rev;
      t_capped = s.capped;
    }
  in
  { pl_np = np; pl_seed = seed; pl_run_root = run_root }

let plan_roots plan = plan.pl_np

let run_task plan ~inc root =
  if root < 0 || root >= plan.pl_np then
    invalid_arg "Exact.run_task: root out of range";
  plan.pl_run_root ~inc root

let search ?pool ?runner ?priority ?pruning ?max_nodes ?(seeds = []) ?bans
    ~pdef classify =
  Obs.span "exact" @@ fun () ->
  let plan = make_plan ?priority ?pruning ?max_nodes ?bans ~pdef classify in
  let np = plan.pl_np in
  let seed_s = plan.pl_seed seeds in
  let g_inc = ref seed_s.inc in
  let g_best = ref (match seed_s.best with Some set -> set | None -> []) in
  let g_stats = ref (stats_of_session seed_s) in
  let g_capped = ref false in
  let run_batch inc batch =
    match runner with
    | Some r -> r ~inc batch
    | None -> (
        let f i = plan.pl_run_root ~inc i in
        match pool with Some p -> Pool.map p ~f batch | None -> List.map f batch)
  in
  let rec batches = function
    | [] -> []
    | xs ->
        let rec take k = function
          | x :: tl when k > 0 ->
              let a, b = take (k - 1) tl in
              (x :: a, b)
          | rest -> ([], rest)
        in
        let b, rest = take batch_size xs in
        b :: batches rest
  in
  let results_rev = ref [] in
  List.iter
    (fun batch ->
      let rs = run_batch !g_inc batch in
      List.iter
        (fun r ->
          g_stats := add_stats !g_stats r.t_stats;
          if r.t_capped then g_capped := true;
          results_rev := r :: !results_rev;
          match r.t_best with
          | Some (c, set) when c < !g_inc ->
              g_inc := c;
              g_best := set
          | _ -> ())
        rs)
    (batches (List.init np (fun i -> i)));
  (* Merge the per-subtree ban lists in submission order.  A completed set
     lives in exactly one subtree (the one of its smallest pool index), so
     the only duplicates are seed-phase sets re-met inside a subtree. *)
  let seen = Hashtbl.create 1024 in
  let dedup entries acc =
    List.fold_left
      (fun acc e ->
        let k = key_of e.banned in
        if Hashtbl.mem seen k then acc
        else begin
          Hashtbl.replace seen k ();
          e :: acc
        end)
      acc entries
  in
  let bans_rev =
    List.fold_left
      (fun acc r -> dedup r.t_bans acc)
      (dedup (List.rev seed_s.ban_rev) [])
      (List.rev !results_rev)
  in
  {
    optimal = !g_best;
    optimal_cycles = !g_inc;
    stats = !g_stats;
    bans = List.rev bans_rev;
    proven = not !g_capped;
  }
