(** Exact pattern selection by certifying branch-and-bound.

    {!Exhaustive.search} answers "what is the best pattern set?" by brute
    force, which caps it at toy instances.  This backend answers the same
    question — over exactly the same search family, so the two agree
    wherever both terminate — with a branch-and-bound over the candidate
    pool in canonical id order, pruned by four sound rules:

    - {b span}: a structural lower bound (critical path, slot pressure,
      per-color load given the largest pattern still reachable in the
      subtree) already meets the incumbent, so nothing below can improve;
    - {b color}: the Eq. 9-style feasibility test — the colors still
      reachable from the suffix plus one fabricated fallback cannot cover
      the graph, so the subtree holds no schedulable completion;
    - {b ban}: the completed set was already costed (or proven
      unschedulable) and sits in the ban list with its guide bound, so it
      is never evaluated twice;
    - {b dominance}: a candidate that is a proper subpattern of an
      already-chosen pattern is skipped.  Sound for the list scheduler
      because the selected-set of a subpattern is contained in its
      dominator's and both pattern priorities are monotone over it, so the
      subpattern never wins the strictly-greater argmax against its
      earlier-listed dominator: every completion using it has an
      equal-cycles twin without it, met later in the same subtree.

    Candidate sets are costed through a per-task {!Mps_scheduler.Eval}
    context (memo cache, counter replay), every evaluated or infeasible
    completion is memoized in the ban list with an [Infeasible] or
    [Cost c] guide bound, and the search returns a {e certificate}: the
    optimal set, its cycles, the visited/pruned node accounting, the ban
    list, and whether the search ran to completion ([proven]).

    {2 Determinism and [--jobs]}

    Root subtrees fan out over {!Mps_exec.Pool} in fixed-size batches.
    Each task explores with the incumbent frozen at batch start (plus its
    own local improvements); batch results fold back in submission order.
    The batch layout is independent of the worker count, so the
    certificate — optimal set, cycles, every counter, the full ban list —
    is byte-identical for every [--jobs] value, including the poolless
    sequential path. *)

type pruning = {
  prune_span : bool;  (** Structural lower-bound cut. *)
  prune_color : bool;  (** Eq. 9-style coverage feasibility cut. *)
  prune_ban : bool;  (** Skip completions already in the ban list. *)
  prune_dominance : bool;  (** Skip candidates dominated by a chosen pattern. *)
}

val all_pruning : pruning
(** Every rule on — the default. *)

val no_pruning : pruning
(** Pure enumeration, the baseline the pruning gates are measured against. *)

type bound =
  | Infeasible  (** The set cannot schedule the graph (misses colors). *)
  | Cost of int  (** The set was costed: exactly this many cycles. *)

type ban_entry = {
  banned : Mps_pattern.Pattern.t list;
      (** The completed set, in its canonical evaluation order — re-costing
          it in this exact order reproduces a [Cost] bound verbatim. *)
  bound : bound;  (** Its guide bound. *)
}

type stats = {
  nodes_visited : int;  (** Branch nodes entered (root included). *)
  pruned_span : int;
  pruned_color : int;
  pruned_ban : int;
  pruned_dominance : int;  (** Subtrees cut, by rule. *)
  evaluated : int;  (** Completed sets costed through [Eval]. *)
}

type certificate = {
  optimal : Mps_pattern.Pattern.t list;
      (** The best set found; [[]] if nothing schedulable exists. *)
  optimal_cycles : int;  (** Its cycles; [max_int] if none. *)
  stats : stats;
  bans : ban_entry list;
      (** The persistent ban list, in discovery order, deduplicated. *)
  proven : bool;
      (** No subtree hit [max_nodes]: [optimal] is certified optimal over
          the search family (pool subsets of size ≤ pdef, plus one
          fabricated fallback) and all [seeds]. *)
}

val pool_order : Mps_pattern.Pattern.t -> Mps_pattern.Pattern.t -> int
(** The canonical candidate order: descending size, spelling to break
    ties.  A proper subpattern is strictly smaller than its dominator, so
    this is a linear extension of the proper-subpattern lattice — every
    dominator precedes every pattern it dominates, which is what makes the
    dominance prune fire on {e every} chosen-dominator pair.
    {!Exhaustive.search} enumerates in the same order. *)

val canonical_order :
  Mps_antichain.Classify.t ->
  Mps_pattern.Pattern.t list ->
  Mps_pattern.Pattern.t list
(** The canonical costing order of a set: pool members by {!pool_order},
    foreign patterns last by spelling.  Costing a set in this order
    through {!Mps_scheduler.Eval.cycles} reproduces exactly the cycles the
    search ascribes to it (the list scheduler breaks score ties by list
    position, so cycles are only well-defined relative to an order). *)

type task_result = {
  t_best : (int * Mps_pattern.Pattern.t list) option;
  t_stats : stats;
  t_bans : ban_entry list;
  t_capped : bool;
}
(** One root subtree's exploration: the local best (cycles, set) if any
    completion beat the incumbent it started from, its node/prune
    accounting, its newly discovered ban entries in discovery order, and
    whether it hit [max_nodes]. *)

type plan
(** A prepared search: candidate order, prune tables, prior-ban table.
    Building the same plan (same classification parameters and arguments)
    in another OS process yields bit-identical {!run_task} results — the
    plan is derived from pattern-level data only, never raw universe
    ids — which is what the process-sharding runner relies on. *)

val make_plan :
  ?priority:Mps_scheduler.Eval.pattern_priority ->
  ?pruning:pruning ->
  ?max_nodes:int ->
  ?bans:ban_entry list ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  plan
(** Prepares the search {!search} runs — see there for the argument
    contracts.  Opens no span and runs no Eval work beyond the shared
    analyses. @raise Invalid_argument as {!search} does. *)

val plan_roots : plan -> int
(** Number of root subtrees (= candidate pool size); {!run_task} accepts
    roots [0 .. plan_roots - 1]. *)

val run_task : plan -> inc:int -> int -> task_result
(** [run_task plan ~inc root] explores root subtree [root] with the
    incumbent frozen at [inc] — the unit of work {!search} batches, and
    what a shard worker executes remotely.  Emits the [exact.*] counters
    for its own exploration.  @raise Invalid_argument on a root out of
    range. *)

val search :
  ?pool:Mps_exec.Pool.t ->
  ?runner:(inc:int -> int list -> task_result list) ->
  ?priority:Mps_scheduler.Eval.pattern_priority ->
  ?pruning:pruning ->
  ?max_nodes:int ->
  ?seeds:Mps_pattern.Pattern.t list list ->
  ?bans:ban_entry list ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  certificate
(** Branch-and-bound over the classification's pattern pool.

    [runner] overrides how one batch of root subtrees is executed: it
    receives the incumbent frozen at batch start and the batch's root
    indices, and must return one {!task_result} per root in submission
    order, each the exact result {!run_task} on an equivalent {!plan}
    would produce.  The process-sharding engine passes its fleet here;
    when absent the batch runs on [pool] (or sequentially).  Since tasks
    are deterministic given [(inc, root)], the certificate is identical
    for every runner/pool/jobs combination.

    [seeds] (default none) are warm-start incumbents — typically the
    heuristic's or the portfolio's sets.  They are costed first (and
    ban-listed), so the reported optimum is the minimum over the search
    family {e and} the seeds: with seeds, the exact answer can only tie or
    beat them, which is what certification reports as the gap.  Without
    seeds the search family is exactly {!Exhaustive.search}'s.

    [bans] (default none) is a {e warm-start ban list} from a previous
    [search] over the same family — same graph, classification parameters,
    [pdef] and [priority] (a bound is only a fact relative to the canonical
    costing order all of those induce; the serve session keys its persisted
    lists on exactly that fingerprint).  Prior entries are never
    re-evaluated (they count as [exact.pruned.ban] hits when the ban rule
    is on) and the cheapest prior [Cost] set opens as the incumbent, so a
    warm re-search of an unchanged family does no [Eval] work at all and
    still returns the identical optimum.  The returned {!certificate.bans}
    holds {e newly discovered} entries only — append it to the persistent
    list you passed in.

    [max_nodes] (default [1_000_000]) caps the visited nodes of {e each}
    root subtree — per-subtree, so the cap is [--jobs]-independent.  A
    capped subtree clears [proven].

    Observability: runs under an ["exact"] span and reports
    [exact.nodes.visited], [exact.pruned.span], [exact.pruned.color],
    [exact.pruned.ban], [exact.pruned.dominance] and [exact.evaluated]
    counters, identical for every [--jobs].

    @raise Invalid_argument if [pdef < 1] or [max_nodes < 1]. *)
