module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval

type outcome = {
  best : Pattern.t list;
  best_cycles : int;
  evaluated : int;
  truncated : bool;
}

let search ?priority ?(max_sets = 200_000) ~pdef classify =
  if pdef < 1 then invalid_arg "Exhaustive.search: pdef must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  (* Enumerate in the shared canonical pool order so every set is costed in
     exactly the order the exact backend costs it — the two searches then
     agree set-for-set, not just cycles-for-cycles. *)
  let pool = Array.of_list (Classify.patterns classify) in
  Array.sort Exact.pool_order pool;
  let pool_set =
    Array.fold_left (fun acc p -> Pattern.Set.add p acc) Pattern.Set.empty pool
  in
  let best = ref [] and best_cycles = ref max_int in
  let evaluated = ref 0 and truncated = ref false in
  (* One evaluation context across the whole enumeration; combinations that
     complete to the same coverage set collapse into one cached schedule. *)
  let ectx = Eval.make g in
  let consider patterns =
    if !evaluated >= max_sets then truncated := true
    else begin
      incr evaluated;
      match Eval.cycles ?priority ectx patterns with
      | c ->
          if c < !best_cycles then begin
            best_cycles := c;
            best := patterns
          end
      | exception Eval.Unschedulable _ -> ()
    end
  in
  let complete chosen =
    (* Fill missing colors with one fabricated pattern when possible. *)
    let covered =
      List.fold_left
        (fun acc p -> Color.Set.union acc (Pattern.color_set p))
        Color.Set.empty chosen
    in
    let uncovered = Color.Set.elements (Color.Set.diff all_colors covered) in
    if uncovered = [] then Some chosen
    else if List.length chosen < pdef && List.length uncovered <= capacity then begin
      (* A fabrication that coincides with a pool pattern is a
         non-canonical duplicate of a pool-only combination enumerated
         elsewhere: skip it, so every set is costed in exactly one pattern
         order and the reported optimum is traversal-independent (the list
         scheduler breaks score ties by list position).  The exact backend
         applies the same rule, which is what makes the two searches agree
         set-for-set wherever both terminate. *)
      let fab = Pattern.of_colors uncovered in
      if Pattern.Set.mem fab pool_set then None else Some (chosen @ [ fab ])
    end
    else None
  in
  (* Choose up to pdef patterns from the pool, combinations without
     repetition, in index order. *)
  let rec choose start chosen slots =
    if !truncated then ()
    else if slots = 0 then Option.iter consider (complete (List.rev chosen))
    else begin
      (* Also allow stopping early with fewer than pdef picks. *)
      Option.iter consider (complete (List.rev chosen));
      for i = start to Array.length pool - 1 do
        choose (i + 1) (pool.(i) :: chosen) (slots - 1)
      done
    end
  in
  choose 0 [] pdef;
  { best = !best; best_cycles = !best_cycles; evaluated = !evaluated; truncated = !truncated }
