module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Pool = Mps_exec.Pool

type entry = {
  mutable count : int;
  freq : int array;
  mutable kept : Antichain.t list; (* reversed *)
}

type t = {
  graph : Dfg.t;
  capacity : int;
  span_limit : int option;
  entries : entry Pattern.Map.t;
  total : int;
  truncated : bool;
}

(* One table accumulating one domain's share of the enumeration; the
   sequential path uses a single table for everything. *)
type partial = {
  mutable p_entries : entry Pattern.Map.t;
  mutable p_total : int;
}

let classify_into ~graph ~n ~keep_antichains part a =
  part.p_total <- part.p_total + 1;
  let p = Antichain.pattern graph a in
  let e =
    match Pattern.Map.find_opt p part.p_entries with
    | Some e -> e
    | None ->
        let e = { count = 0; freq = Array.make n 0; kept = [] } in
        part.p_entries <- Pattern.Map.add p e part.p_entries;
        e
  in
  e.count <- e.count + 1;
  List.iter (fun i -> e.freq.(i) <- e.freq.(i) + 1) (Antichain.nodes a);
  if keep_antichains then e.kept <- a :: e.kept

(* Merge [later] into [earlier].  [kept] lists are reversed, so the later
   root's antichains are prepended — re-reversal then yields exactly the
   sequential enumeration order. *)
let merge_partials earlier later =
  later.p_entries
  |> Pattern.Map.iter (fun p le ->
         match Pattern.Map.find_opt p earlier.p_entries with
         | None -> earlier.p_entries <- Pattern.Map.add p le earlier.p_entries
         | Some ee ->
             ee.count <- ee.count + le.count;
             Array.iteri (fun i c -> ee.freq.(i) <- ee.freq.(i) + c) le.freq;
             ee.kept <- le.kept @ ee.kept);
  earlier.p_total <- earlier.p_total + later.p_total;
  earlier

exception Over_budget
(* Internal to the parallel path; never escapes [compute]. *)

(* How many locally-classified antichains a parallel task accumulates
   before publishing them to the shared budget counter.  Bounds both the
   atomic traffic (one RMW per block) and the overshoot past the budget
   (at most one block per domain). *)
let budget_flush_block = 1024

let compute ?pool ?span_limit ?budget ?(keep_antichains = false) ~capacity ctx =
  let graph = Enumerate.ctx_graph ctx in
  let n = Dfg.node_count graph in
  let fresh () = { p_entries = Pattern.Map.empty; p_total = 0 } in
  let sequential () =
    let part = fresh () in
    let truncated =
      match
        Enumerate.iter ?span_limit ?budget ~max_size:capacity ctx
          ~f:(classify_into ~graph ~n ~keep_antichains part)
      with
      | () -> false
      | exception Enumerate.Budget_exhausted -> true
    in
    (part, truncated)
  in
  (* Fan the independent root subtrees out across the pool, each task
     classifying into its own table; merging the tables in root
     (= submission) order makes the result identical to the sequential
     walk.

     A budget is a property of the sequential visit order (keep the first
     [b] antichains), so it cannot be honored by a parallel schedule
     directly.  Instead the parallel walk is optimistic: tasks publish
     their progress to a shared counter in blocks, and the moment the
     published total can exceed the budget everything aborts and the
     budgeted sequential walk runs instead.  A graph within budget never
     aborts (the counter never passes [b]) and pays one atomic RMW per
     block; a graph beyond it does bounded extra work (at most
     budget + jobs·block antichains) before the sequential pass — which
     itself stops at the budget.  Either way the returned classification
     is bit-identical to the sequential one. *)
  let parallel pool =
    let shared_budget =
      match budget with
      | None -> None
      | Some b -> Some (b, Atomic.make 0, Atomic.make false)
    in
    let task root =
      let part = fresh () in
      let local = ref 0 in
      let publish () =
        match shared_budget with
        | None -> ()
        | Some (b, published, aborted) ->
            if Atomic.fetch_and_add published !local + !local > b then begin
              Atomic.set aborted true;
              raise Over_budget
            end;
            local := 0
      in
      Enumerate.iter_root ?span_limit ~max_size:capacity ctx root ~f:(fun a ->
          (match shared_budget with
          | Some (_, _, aborted) when Atomic.get aborted -> raise Over_budget
          | _ -> ());
          classify_into ~graph ~n ~keep_antichains part a;
          incr local;
          if !local >= budget_flush_block then publish ());
      if !local > 0 then publish ();
      part
    in
    match
      Pool.map_reduce pool ~map:task ~reduce:merge_partials ~init:(fresh ())
        (List.init n Fun.id)
    with
    | part -> (part, false)
    | exception Over_budget -> sequential ()
  in
  let merged, truncated =
    match pool with
    | Some pool when Pool.jobs pool > 1 && n > 0 -> parallel pool
    | _ -> sequential ()
  in
  {
    graph;
    capacity;
    span_limit;
    entries = merged.p_entries;
    total = merged.p_total;
    truncated;
  }

let truncated t = t.truncated

let graph t = t.graph
let capacity t = t.capacity
let span_limit t = t.span_limit
let patterns t = List.map fst (Pattern.Map.bindings t.entries)
let pattern_count t = Pattern.Map.cardinal t.entries
let find t p = Pattern.Map.find_opt p t.entries
let count t p = match find t p with Some e -> e.count | None -> 0

let node_frequency t p =
  match find t p with
  | Some e -> Array.copy e.freq
  | None -> Array.make (Dfg.node_count t.graph) 0

let frequency t p n = match find t p with Some e -> e.freq.(n) | None -> 0
let antichains t p = match find t p with Some e -> List.rev e.kept | None -> []
let total_antichains t = t.total

let fold f t acc =
  Pattern.Map.fold (fun p e acc -> f p ~count:e.count ~freq:e.freq acc) t.entries acc

let pp_table ppf t =
  Pattern.Map.iter
    (fun p e -> Format.fprintf ppf "%a: %d antichains@." Pattern.pp p e.count)
    t.entries
