module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Id = Mps_pattern.Pattern.Id
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type entry = {
  mutable count : int;
  freq : int array;
  mutable kept : Antichain.t list; (* reversed *)
}

type t = {
  graph : Dfg.t;
  capacity : int;
  span_limit : int option;
  universe : Universe.t;
  slots : entry option array; (* bucket per universe id; None = no antichain *)
  order : Id.t array; (* ids with buckets, sorted by pattern *)
  total : int;
  truncated : bool;
}

(* One id-keyed table accumulating one domain's share of the enumeration.
   The sequential path interns straight into the master universe; parallel
   tasks intern into scratch universes whose ids are remapped at merge. *)
type partial = {
  p_universe : Universe.t;
  mutable p_slots : entry option array;
  mutable p_total : int;
}

let fresh_partial universe =
  { p_universe = universe; p_slots = [||]; p_total = 0 }

let slot_of part id =
  let i = Id.to_int id in
  let len = Array.length part.p_slots in
  if i >= len then begin
    let slots = Array.make (max (i + 1) (max 16 (2 * len))) None in
    Array.blit part.p_slots 0 slots 0 len;
    part.p_slots <- slots
  end;
  i

let classify_into ~graph ~n ~keep_antichains part a =
  part.p_total <- part.p_total + 1;
  let p = Antichain.pattern graph a in
  let i = slot_of part (Universe.intern part.p_universe p) in
  let e =
    match part.p_slots.(i) with
    | Some e -> e
    | None ->
        let e = { count = 0; freq = Array.make n 0; kept = [] } in
        part.p_slots.(i) <- Some e;
        e
  in
  e.count <- e.count + 1;
  List.iter (fun i -> e.freq.(i) <- e.freq.(i) + 1) (Antichain.nodes a);
  if keep_antichains then e.kept <- a :: e.kept

(* Merge [later] into [earlier].  [later]'s universe is folded into
   [earlier]'s in id (= first-visit) order, so merging per-root partials in
   root submission order reproduces exactly the ids the sequential walk
   would have allocated.  [kept] lists are reversed, so the later root's
   antichains are prepended — re-reversal then yields exactly the
   sequential enumeration order. *)
let merge_partials earlier later =
  let remap = Universe.merge ~into:earlier.p_universe later.p_universe in
  Array.iteri
    (fun li le ->
      match le with
      | None -> ()
      | Some le -> (
          let i = slot_of earlier remap.(li) in
          match earlier.p_slots.(i) with
          | None -> earlier.p_slots.(i) <- Some le
          | Some ee ->
              ee.count <- ee.count + le.count;
              Array.iteri (fun i c -> ee.freq.(i) <- ee.freq.(i) + c) le.freq;
              ee.kept <- le.kept @ ee.kept))
    later.p_slots;
  earlier.p_total <- earlier.p_total + later.p_total;
  earlier

exception Over_budget
(* Internal to the parallel path; never escapes [compute]. *)

(* How many locally-classified antichains a parallel task accumulates
   before publishing them to the shared budget counter.  Bounds both the
   atomic traffic (one RMW per block) and the overshoot past the budget
   (at most one block per domain). *)
let budget_flush_block = 1024

(* The common landing of every accumulation path (sequential, domain
   pool, process buckets): a merged master-universe partial becomes the
   published record.  Counters fire here so every path reports
   identically. *)
let finish ~graph ~capacity ~span_limit ~universe ~truncated merged =
  let present =
    Universe.fold
      (fun id _ acc ->
        let i = Id.to_int id in
        if i < Array.length merged.p_slots && merged.p_slots.(i) <> None then
          id :: acc
        else acc)
      universe []
  in
  let order = Array.of_list present in
  Array.sort
    (fun a b ->
      Pattern.compare (Universe.pattern universe a) (Universe.pattern universe b))
    order;
  let slots =
    Array.init (Universe.cardinal universe) (fun i ->
        if i < Array.length merged.p_slots then merged.p_slots.(i) else None)
  in
  Obs.count "classify.antichains" merged.p_total;
  Obs.count "classify.patterns" (Array.length order);
  {
    graph;
    capacity;
    span_limit;
    universe;
    slots;
    order;
    total = merged.p_total;
    truncated;
  }

let compute ?pool ?universe ?span_limit ?budget ?(keep_antichains = false)
    ~capacity ctx =
  Obs.span "classify" @@ fun () ->
  let graph = Enumerate.ctx_graph ctx in
  let n = Dfg.node_count graph in
  let universe = match universe with Some u -> u | None -> Universe.create () in
  let sequential () =
    let part = fresh_partial universe in
    let truncated =
      match
        Enumerate.iter ?span_limit ?budget ~max_size:capacity ctx
          ~f:(classify_into ~graph ~n ~keep_antichains part)
      with
      | () -> false
      | exception Enumerate.Budget_exhausted -> true
    in
    (part, truncated)
  in
  (* Fan the independent root subtrees out across the pool, each task
     classifying into its own scratch universe and table; merging in root
     (= submission) order makes the result — buckets, frequency vectors,
     and the master universe's id assignment — identical to the sequential
     walk.  The scratch accumulator keeps the master universe untouched
     until the parallel walk has fully succeeded, so a budget abort cannot
     leave stray ids behind.

     A budget is a property of the sequential visit order (keep the first
     [b] antichains), so it cannot be honored by a parallel schedule
     directly.  Instead the parallel walk is optimistic: tasks publish
     their progress to a shared counter in blocks, and the moment the
     published total can exceed the budget everything aborts and the
     budgeted sequential walk runs instead.  A graph within budget never
     aborts (the counter never passes [b]) and pays one atomic RMW per
     block; a graph beyond it does bounded extra work (at most
     budget + jobs·block antichains) before the sequential pass — which
     itself stops at the budget.  Either way the returned classification
     is bit-identical to the sequential one. *)
  let parallel pool =
    let shared_budget =
      match budget with
      | None -> None
      | Some b -> Some (b, Atomic.make 0, Atomic.make false)
    in
    let task root =
      let part = fresh_partial (Universe.create ()) in
      let local = ref 0 in
      let publish () =
        match shared_budget with
        | None -> ()
        | Some (b, published, aborted) ->
            if Atomic.fetch_and_add published !local + !local > b then begin
              Atomic.set aborted true;
              raise Over_budget
            end;
            local := 0
      in
      Enumerate.iter_root ?span_limit ~max_size:capacity ctx root ~f:(fun a ->
          (match shared_budget with
          | Some (_, _, aborted) when Atomic.get aborted -> raise Over_budget
          | _ -> ());
          classify_into ~graph ~n ~keep_antichains part a;
          incr local;
          if !local >= budget_flush_block then publish ());
      if !local > 0 then publish ();
      part
    in
    match
      Pool.map_reduce pool ~map:task ~reduce:merge_partials
        ~init:(fresh_partial (Universe.create ()))
        (List.init n Fun.id)
    with
    | scratch -> (merge_partials (fresh_partial universe) scratch, false)
    | exception Over_budget -> sequential ()
  in
  let merged, truncated =
    match pool with
    | Some pool when Pool.jobs pool > 1 && n > 0 -> parallel pool
    | _ -> sequential ()
  in
  finish ~graph ~capacity ~span_limit ~universe ~truncated merged

(* --- process-sharding buckets ----------------------------------------

   A worker process cannot hand back a [t] (universes and id tables don't
   cross process boundaries), so it exports its root chunk as a [bucket]:
   pattern spellings in first-visit order with counts and sparse
   frequency vectors.  Importing the chunks of any ascending-root
   partition in submission order replays exactly the interning sequence
   of the sequential walk, so [of_buckets] yields a classification
   bit-identical to {!compute} — the same contract the domain-pool merge
   already keeps, one process boundary further out. *)

type bucket_entry = {
  be_pattern : Pattern.t;
  be_count : int;
  be_freq : (int * int) list; (* node id, frequency; ascending node id *)
}

type bucket = { bk_entries : bucket_entry list; bk_total : int }

let bucket_roots ?span_limit ?budget ~capacity ctx ~lo ~hi =
  let graph = Enumerate.ctx_graph ctx in
  let n = Dfg.node_count graph in
  if lo < 0 || hi > n || lo > hi then
    invalid_arg "Classify.bucket_roots: bad root range";
  let part = fresh_partial (Universe.create ()) in
  let cap = match budget with None -> max_int | Some b -> b in
  match
    for root = lo to hi - 1 do
      Enumerate.iter_root ?span_limit ~max_size:capacity ctx root ~f:(fun a ->
          if part.p_total >= cap then raise Over_budget;
          classify_into ~graph ~n ~keep_antichains:false part a)
    done
  with
  | exception Over_budget -> None
  | () ->
      let entries =
        Universe.fold
          (fun id p acc ->
            let i = Id.to_int id in
            match
              if i < Array.length part.p_slots then part.p_slots.(i) else None
            with
            | None -> acc
            | Some e ->
                let freq = ref [] in
                for nd = n - 1 downto 0 do
                  if e.freq.(nd) > 0 then freq := (nd, e.freq.(nd)) :: !freq
                done;
                { be_pattern = p; be_count = e.count; be_freq = !freq } :: acc)
          part.p_universe []
      in
      Some { bk_entries = List.rev entries; bk_total = part.p_total }

let of_buckets ?universe ?span_limit ~capacity ctx buckets =
  Obs.span "classify" @@ fun () ->
  let graph = Enumerate.ctx_graph ctx in
  let n = Dfg.node_count graph in
  let universe = match universe with Some u -> u | None -> Universe.create () in
  let part = fresh_partial universe in
  List.iter
    (fun bk ->
      List.iter
        (fun be ->
          let i = slot_of part (Universe.intern part.p_universe be.be_pattern) in
          let e =
            match part.p_slots.(i) with
            | Some e -> e
            | None ->
                let e = { count = 0; freq = Array.make n 0; kept = [] } in
                part.p_slots.(i) <- Some e;
                e
          in
          e.count <- e.count + be.be_count;
          List.iter (fun (nd, c) -> e.freq.(nd) <- e.freq.(nd) + c) be.be_freq)
        bk.bk_entries;
      part.p_total <- part.p_total + bk.bk_total)
    buckets;
  finish ~graph ~capacity ~span_limit ~universe ~truncated:false part

let truncated t = t.truncated
let graph t = t.graph
let capacity t = t.capacity
let span_limit t = t.span_limit
let universe t = t.universe
let ids t = Array.to_list t.order
let pattern_count t = Array.length t.order
let patterns t = List.map (Universe.pattern t.universe) (ids t)

let find_id t id =
  let i = Id.to_int id in
  if i < Array.length t.slots then t.slots.(i) else None

let find t p =
  match Universe.find t.universe p with
  | None -> None
  | Some id -> find_id t id

let count t p = match find t p with Some e -> e.count | None -> 0
let count_id t id = match find_id t id with Some e -> e.count | None -> 0

let node_frequency t p =
  match find t p with
  | Some e -> Array.copy e.freq
  | None -> Array.make (Dfg.node_count t.graph) 0

let frequency t p n = match find t p with Some e -> e.freq.(n) | None -> 0
let antichains t p = match find t p with Some e -> List.rev e.kept | None -> []
let total_antichains t = t.total

let fold_ids f t acc =
  Array.fold_left
    (fun acc id ->
      match find_id t id with
      | Some e -> f id ~count:e.count ~freq:e.freq acc
      | None -> acc)
    acc t.order

let fold f t acc =
  fold_ids
    (fun id ~count ~freq acc -> f (Universe.pattern t.universe id) ~count ~freq acc)
    t acc

let pp_table ppf t =
  Array.iter
    (fun id ->
      match find_id t id with
      | Some e ->
          Format.fprintf ppf "%a: %d antichains@." Pattern.pp
            (Universe.pattern t.universe id)
            e.count
      | None -> ())
    t.order
