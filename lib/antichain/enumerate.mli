(** Exhaustive antichain enumeration under size and span limits (§5.1).

    "The pattern generation method finds all antichains of size C first" —
    in fact all sizes 1..C are needed (patterns may contain dummies), and
    "the number of antichains decreases by setting a limitation to the span",
    which is also what makes enumeration tractable: span is monotone under
    adding nodes, so the search prunes whole subtrees.

    The walk visits node ids in increasing order; within one [iter] the
    antichains appear in lexicographic order of their id lists.

    The search tree partitions by its root: every antichain belongs to
    exactly one root subtree, the one of its minimum node id.  The
    [?pool] entry points fan those subtrees out across a
    {!Mps_exec.Pool} and merge per-root results in root order, so their
    output is identical — element for element — to the sequential walk,
    whatever the worker count.  Budgeted enumeration stays sequential (a
    budget cuts a prefix of the visit order, which is meaningless under
    reordering), hence [iter] takes no pool. *)

type ctx
(** Precomputed per-graph state (reachability bitsets + levels), reusable
    across enumerations with different limits.  Read-only after
    construction, so one [ctx] is safely shared by all domains of a
    pool. *)

val make_ctx : Mps_dfg.Dfg.t -> ctx

val ctx_graph : ctx -> Mps_dfg.Dfg.t
val ctx_levels : ctx -> Mps_dfg.Levels.t
val ctx_reachability : ctx -> Mps_dfg.Reachability.t

exception Budget_exhausted
(** Raised out of {!iter} when [budget] antichains have been emitted.
    Catch it only if partial results are meaningful; the high-level entry
    points ({!Classify.compute}) surface the truncation as a flag
    instead. *)

val iter :
  ?span_limit:int ->
  ?budget:int ->
  max_size:int ->
  ctx ->
  f:(Antichain.t -> unit) ->
  unit
(** Calls [f] on every non-empty antichain of size ≤ [max_size] whose span
    is ≤ [span_limit] (default: unlimited).  [budget] bounds the number of
    antichains visited: enumeration is exponential in graph width (a layer
    of k mutually parallel nodes alone contributes C(k,5) antichains), so
    wide graphs need either a tight span limit or a budget.
    @raise Budget_exhausted after emitting [budget] antichains.
    @raise Invalid_argument if [max_size < 1], [span_limit < 0], or
    [budget < 0]. *)

val iter_root :
  ?span_limit:int ->
  max_size:int ->
  ctx ->
  f:(Antichain.t -> unit) ->
  int ->
  unit
(** [iter_root ... root] visits only the antichains whose minimum node id
    is [root], in the same relative order [iter] would.  Running it for
    every node id in order is exactly [iter]; running the roots on
    different domains and merging in root order is the parallel
    enumeration — {!Classify.compute} builds its parallel path on this.
    @raise Invalid_argument on bad limits or if [root] is out of range. *)

val count_roots :
  ?span_limit:int -> max_size:int -> ctx -> lo:int -> hi:int -> int
(** Number of antichains whose minimum node id lies in [\[lo, hi)] — the
    chunked form of {!count} that process sharding fans out: summing the
    counts of any partition of [0, node_count) equals {!count}.  Opens no
    observability span (the coordinator owns the span; per-root
    [enumerate.pruned] counters still fire).
    @raise Invalid_argument on bad limits or a bad root range. *)

val all :
  ?pool:Mps_exec.Pool.t ->
  ?span_limit:int ->
  max_size:int ->
  ctx ->
  Antichain.t list
(** Materialized [iter] — only for graphs known to be small.  The result
    is in sequential enumeration order regardless of [pool]. *)

val count : ?pool:Mps_exec.Pool.t -> ?span_limit:int -> max_size:int -> ctx -> int

val count_by_size :
  ?pool:Mps_exec.Pool.t -> ?span_limit:int -> max_size:int -> ctx -> int array
(** Index s holds the number of antichains of size exactly s
    (index 0 unused, kept 0). *)

val count_matrix :
  ?pool:Mps_exec.Pool.t -> max_size:int -> max_span:int -> ctx -> int array array
(** [m.(span_limit).(size)] = number of antichains of that exact size with
    span ≤ that limit — Table 5 in one pass.  Antichains with span beyond
    [max_span] are not counted anywhere. *)
