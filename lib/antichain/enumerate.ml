module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Bitset = Mps_util.Bitset
module Pool = Mps_exec.Pool
module Obs = Mps_obs.Obs

type ctx = {
  graph : Dfg.t;
  levels : Levels.t;
  reach : Reachability.t;
}

let make_ctx graph =
  { graph; levels = Levels.compute graph; reach = Reachability.compute graph }

let ctx_graph ctx = ctx.graph
let ctx_levels ctx = ctx.levels
let ctx_reachability ctx = ctx.reach

exception Budget_exhausted

let check_args ?span_limit ?budget ~max_size () =
  if max_size < 1 then invalid_arg "Enumerate.iter: max_size must be >= 1";
  (match span_limit with
  | Some l when l < 0 -> invalid_arg "Enumerate.iter: negative span_limit"
  | _ -> ());
  match budget with
  | Some b when b < 0 -> invalid_arg "Enumerate.iter: negative budget"
  | _ -> ()

(* The span of a growing set is tracked incrementally: adding a node can only
   raise max(ASAP) and lower min(ALAP), so span never shrinks along a branch
   and a limit violation prunes the whole subtree.

   [walk_root] visits every antichain whose smallest node id is [root]: the
   root subtrees partition the enumeration, which is what both the
   sequential loop and the domain-parallel fan-out are built on. *)
let walk_root ?span_limit ~max_size ctx ~f root =
  let lv = ctx.levels in
  let within_limit span =
    match span_limit with None -> true | Some l -> span <= l
  in
  (* Span-limit subtree prunes, reported as one counter increment per root
     walk so the enumeration's pruning behaviour shows up in [--stats]
     without any per-antichain instrumentation cost.  Summed per root, the
     total is identical however the roots are spread over domains. *)
  let pruned = ref 0 in
  (* chosen is kept reversed; emitted antichains are re-reversed, hence
     increasing. *)
  let rec extend chosen size compat max_asap min_alap last ~span =
    match Bitset.first_from compat (last + 1) with
    | None -> ()
    | Some j ->
        let asap_j = Levels.asap lv j and alap_j = Levels.alap lv j in
        let max_asap' = max max_asap asap_j in
        let min_alap' = min min_alap alap_j in
        let span' = max 0 (max_asap' - min_alap') in
        if within_limit span' then begin
          let chosen' = j :: chosen in
          f ~span:span' (List.rev chosen');
          if size + 1 < max_size then begin
            let compat' = Bitset.copy compat in
            Bitset.inter_into ~dst:compat' (Reachability.parallel_set ctx.reach j);
            extend chosen' (size + 1) compat' max_asap' min_alap' j ~span:span'
          end
        end
        else incr pruned;
        (* Continue with the next candidate at this depth whether or not j
           survived the span check: a later node may have milder levels. *)
        extend chosen size compat max_asap min_alap j ~span
  in
  f ~span:0 [ root ];
  if max_size > 1 then
    extend [ root ] 1
      (Bitset.copy (Reachability.parallel_set ctx.reach root))
      (Levels.asap lv root) (Levels.alap lv root) root ~span:0;
  if !pruned > 0 then Obs.count "enumerate.pruned" !pruned

let iter_spanned ?span_limit ?budget ~max_size ctx ~f =
  check_args ?span_limit ?budget ~max_size ();
  let remaining = ref (Option.value budget ~default:max_int) in
  let f ~span nodes =
    if !remaining = 0 then raise Budget_exhausted;
    decr remaining;
    f ~span nodes
  in
  for root = 0 to Dfg.node_count ctx.graph - 1 do
    walk_root ?span_limit ~max_size ctx ~f root
  done

let iter ?span_limit ?budget ~max_size ctx ~f =
  iter_spanned ?span_limit ?budget ~max_size ctx ~f:(fun ~span:_ nodes ->
      f (Antichain.of_nodes_unchecked nodes))

let count_roots ?span_limit ~max_size ctx ~lo ~hi =
  check_args ?span_limit ~max_size ();
  let n = Dfg.node_count ctx.graph in
  if lo < 0 || hi > n || lo > hi then
    invalid_arg "Enumerate.count_roots: bad root range";
  let c = ref 0 in
  for root = lo to hi - 1 do
    walk_root ?span_limit ~max_size ctx root ~f:(fun ~span:_ _ -> incr c)
  done;
  !c

let iter_root ?span_limit ~max_size ctx ~f root =
  check_args ?span_limit ~max_size ();
  if root < 0 || root >= Dfg.node_count ctx.graph then
    invalid_arg "Enumerate.iter_root: root out of range";
  walk_root ?span_limit ~max_size ctx root ~f:(fun ~span:_ nodes ->
      f (Antichain.of_nodes_unchecked nodes))

(* --- domain-parallel fan-out ----------------------------------------- *)

(* Root subtrees are independent, so each becomes one pool task; per-root
   results are merged in root order, which reproduces the sequential visit
   order exactly.  Chunk 1 everywhere: subtree sizes are wildly skewed (a
   source above a wide layer owns most of the antichains), so dynamic
   scheduling is what buys the speedup.  A [budget] is inherently
   sequential — it cuts a prefix of the visit order — so the budgeted entry
   points ({!iter}) take no pool. *)

let use_pool = function
  | Some p when Pool.jobs p > 1 -> Some p
  | _ -> None

let map_roots pool ?span_limit ~max_size ctx task =
  Pool.map pool
    ~f:(fun root -> task ?span_limit ~max_size ctx root)
    (List.init (Dfg.node_count ctx.graph) Fun.id)

let all ?pool ?span_limit ~max_size ctx =
  check_args ?span_limit ~max_size ();
  Obs.span "enumerate" @@ fun () ->
  match use_pool pool with
  | Some pool ->
      let root_all ?span_limit ~max_size ctx root =
        let acc = ref [] in
        walk_root ?span_limit ~max_size ctx root ~f:(fun ~span:_ nodes ->
            acc := Antichain.of_nodes_unchecked nodes :: !acc);
        List.rev !acc
      in
      List.concat (map_roots pool ?span_limit ~max_size ctx root_all)
  | None ->
      let acc = ref [] in
      iter ?span_limit ~max_size ctx ~f:(fun a -> acc := a :: !acc);
      List.rev !acc

let count ?pool ?span_limit ~max_size ctx =
  check_args ?span_limit ~max_size ();
  Obs.span "enumerate" @@ fun () ->
  match use_pool pool with
  | Some pool ->
      let root_count ?span_limit ~max_size ctx root =
        let c = ref 0 in
        walk_root ?span_limit ~max_size ctx root ~f:(fun ~span:_ _ -> incr c);
        !c
      in
      List.fold_left ( + ) 0 (map_roots pool ?span_limit ~max_size ctx root_count)
  | None ->
      let c = ref 0 in
      iter_spanned ?span_limit ~max_size ctx ~f:(fun ~span:_ _ -> incr c);
      !c

let count_by_size ?pool ?span_limit ~max_size ctx =
  check_args ?span_limit ~max_size ();
  Obs.span "enumerate" @@ fun () ->
  let counts = Array.make (max_size + 1) 0 in
  (match use_pool pool with
  | Some pool ->
      let root_counts ?span_limit ~max_size ctx root =
        let counts = Array.make (max_size + 1) 0 in
        walk_root ?span_limit ~max_size ctx root ~f:(fun ~span:_ nodes ->
            let s = List.length nodes in
            counts.(s) <- counts.(s) + 1);
        counts
      in
      List.iter
        (Array.iteri (fun s c -> counts.(s) <- counts.(s) + c))
        (map_roots pool ?span_limit ~max_size ctx root_counts)
  | None ->
      iter_spanned ?span_limit ~max_size ctx ~f:(fun ~span:_ nodes ->
          let s = List.length nodes in
          counts.(s) <- counts.(s) + 1));
  counts

let count_matrix ?pool ~max_size ~max_span ctx =
  check_args ~span_limit:max_span ~max_size ();
  Obs.span "enumerate" @@ fun () ->
  let exact = Array.make_matrix (max_span + 1) (max_size + 1) 0 in
  (match use_pool pool with
  | Some pool ->
      let root_matrix ?span_limit ~max_size ctx root =
        let span_limit = Option.value span_limit ~default:max_span in
        let m = Array.make_matrix (span_limit + 1) (max_size + 1) 0 in
        walk_root ~span_limit ~max_size ctx root ~f:(fun ~span nodes ->
            let s = List.length nodes in
            m.(span).(s) <- m.(span).(s) + 1);
        m
      in
      List.iter
        (Array.iteri (fun l ->
             Array.iteri (fun s c -> exact.(l).(s) <- exact.(l).(s) + c)))
        (map_roots pool ~span_limit:max_span ~max_size ctx root_matrix)
  | None ->
      iter_spanned ~span_limit:max_span ~max_size ctx ~f:(fun ~span nodes ->
          let s = List.length nodes in
          exact.(span).(s) <- exact.(span).(s) + 1));
  (* Prefix-sum over span so row l counts span <= l. *)
  let m = Array.make_matrix (max_span + 1) (max_size + 1) 0 in
  for l = 0 to max_span do
    for s = 0 to max_size do
      m.(l).(s) <- exact.(l).(s) + if l > 0 then m.(l - 1).(s) else 0
    done
  done;
  m
