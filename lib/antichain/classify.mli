(** Classification of antichains by pattern, and node frequencies (§5.1–5.2).

    Enumerated antichains are grouped by their pattern (the bag of their
    nodes' colors).  For each pattern p̄ the classification keeps:

    - the number of its antichains;
    - the node-frequency vector h(p̄) where h(p̄,n) is the number of
      antichains of p̄ containing node n — "the flexibility to schedule the
      node n by the pattern p̄";
    - optionally the antichains themselves (Table 4 prints them; large
      graphs should not keep them).

    The classification is the input to the selection algorithm (§5.2).

    Patterns are interned into a {!Mps_pattern.Universe}: buckets are keyed
    by dense pattern id, and the universe's memoized facts (spelling, size,
    color set) and dominance matrix are shared with every later phase that
    consumes the classification. *)

type t

val compute :
  ?pool:Mps_exec.Pool.t ->
  ?universe:Mps_pattern.Universe.t ->
  ?span_limit:int ->
  ?budget:int ->
  ?keep_antichains:bool ->
  capacity:int ->
  Enumerate.ctx ->
  t
(** Enumerates antichains of size 1..[capacity] with span ≤ [span_limit]
    (default unlimited) and classifies them.  [keep_antichains] defaults to
    [false].  [budget] caps the enumeration (see {!Enumerate.iter}); when it
    triggers, the classification covers only the visited prefix and
    {!truncated} reports it — selection on a truncated pool is still sound
    (the color-condition fallback guarantees coverage) but no longer sees
    every pattern.

    [universe] is the interning arena the classification registers its
    patterns in (a fresh one is created when omitted).  The caller that
    supplies it — typically the pipeline — owns its lifetime and may keep
    interning into it afterwards (selection does, for fabricated fallback
    patterns); ids handed out here stay valid.  Ids are assigned in
    first-visit enumeration order, identically for every [pool] size.

    [pool] fans the enumeration's root subtrees out across domains
    ({!Enumerate.iter_root}); per-root tables intern into per-domain
    scratch universes, and both tables and universes are merged in root
    (= submission) order, so the classification — counts, frequency
    vectors, kept-antichain order, total, and universe id assignment — is
    identical to the sequential one.  With a [budget], the parallel walk is
    optimistic: if the enumeration stays within budget the parallel result
    is returned (and is what the sequential walk would have produced); the
    moment the budget is exceeded the parallel walk aborts and the budgeted
    {e sequential} walk runs instead, so truncated classifications are
    byte-identical too, at the price of bounded duplicated work on
    over-budget graphs. *)

type bucket_entry = {
  be_pattern : Mps_pattern.Pattern.t;
  be_count : int;
  be_freq : (int * int) list;
      (** Sparse frequency vector: (node id, h(p̄,n)) with positive counts
          only, ascending node id. *)
}

type bucket = { bk_entries : bucket_entry list; bk_total : int }
(** One root chunk's classification in a process-portable shape: entries
    in first-visit enumeration order (so importing chunks in submission
    order replays the sequential interning sequence), [bk_total] the
    number of antichains the chunk classified. *)

val bucket_roots :
  ?span_limit:int ->
  ?budget:int ->
  capacity:int ->
  Enumerate.ctx ->
  lo:int ->
  hi:int ->
  bucket option
(** Classifies the antichains rooted in [\[lo, hi)] into a fresh scratch
    bucket — what a shard worker computes for its chunk.  [None] when the
    chunk alone visits more than [budget] antichains (the whole run is
    then certainly over budget and the coordinator must fall back to the
    budgeted sequential {!compute}).  Opens no span: the coordinator's
    {!of_buckets} owns the "classify" span.
    @raise Invalid_argument on bad limits or a bad root range. *)

val of_buckets :
  ?universe:Mps_pattern.Universe.t ->
  ?span_limit:int ->
  capacity:int ->
  Enumerate.ctx ->
  bucket list ->
  t
(** Merges chunk buckets — which must partition root ids [0, node_count)
    in ascending order — into the classification {!compute} would have
    produced: same buckets, frequency vectors, totals, and universe id
    assignment.  [span_limit]/[capacity] are recorded metadata and must
    be the values the buckets were computed under.  [keep_antichains] has
    no bucket form; sharded classification never keeps antichains. *)

val truncated : t -> bool
(** Whether the enumeration budget cut the classification short. *)

val graph : t -> Mps_dfg.Dfg.t
val capacity : t -> int
val span_limit : t -> int option

val universe : t -> Mps_pattern.Universe.t
(** The interning arena the classification's patterns live in.  Consumers
    run their pattern tests (dominance, color sets, sizes) against it. *)

val ids : t -> Mps_pattern.Pattern.Id.t list
(** Ids of all patterns that have at least one antichain, in the canonical
    sorted-by-pattern order (the order {!patterns} and {!fold} use). *)

val patterns : t -> Mps_pattern.Pattern.t list
(** All patterns that have at least one antichain, sorted. *)

val pattern_count : t -> int

val count : t -> Mps_pattern.Pattern.t -> int
(** Number of antichains of the pattern (0 if the pattern never occurs). *)

val count_id : t -> Mps_pattern.Pattern.Id.t -> int
(** Same, keyed by universe id. *)

val node_frequency : t -> Mps_pattern.Pattern.t -> int array
(** The vector h(p̄), indexed by node id; an all-zero vector if the pattern
    never occurs.  Fresh copy: safe to mutate. *)

val frequency : t -> Mps_pattern.Pattern.t -> int -> int
(** h(p̄, n). *)

val antichains : t -> Mps_pattern.Pattern.t -> Antichain.t list
(** The pattern's antichains in enumeration order; [] unless
    [keep_antichains] was set. *)

val total_antichains : t -> int

val fold :
  (Mps_pattern.Pattern.t -> count:int -> freq:int array -> 'a -> 'a) ->
  t ->
  'a ->
  'a
(** Folds over patterns in sorted order.  [freq] is the internal vector:
    read-only. *)

val fold_ids :
  (Mps_pattern.Pattern.Id.t -> count:int -> freq:int array -> 'a -> 'a) ->
  t ->
  'a ->
  'a
(** Same fold, handing out universe ids instead of patterns — the selection
    phases build their candidate pools from this. *)

val pp_table : Format.formatter -> t -> unit
(** "pattern: antichain count" lines, the §5.1 classification shape. *)
