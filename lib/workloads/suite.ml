module Color = Mps_dfg.Color
module Program = Mps_frontend.Program

type entry = {
  name : string;
  build : unit -> Mps_dfg.Dfg.t;
  blurb : string;
}

let prog f () = Program.dfg (f ())

let rand ?(layers = 6) ?(width = 6) ?(edge_prob = 0.4) ?(locality = 2)
    ?palette ~seed () =
  let palette =
    match palette with
    | Some p -> p
    | None -> Random_dag.default_params.Random_dag.palette
  in
  Random_dag.generate
    ~params:{ Random_dag.layers; width; edge_prob; locality; palette }
    ~seed ()

let taps8 = [ 0.5; -0.25; 0.125; 0.75; -0.5; 0.25; -0.125; 1.0 ]

(* Base corpus: the paper's figures, the bench DFT family, contrasting
   DSP kernels, and adversarial random suites that each push one feature
   to an extreme (so the fit cannot lean on a single workload family).
   Kept small enough that a full portfolio replay over the list stays a
   smoke-budget operation. *)
let base =
  [
    { name = "3dft"; build = Paper_graphs.fig2_3dft; blurb = "paper Fig. 2 3-point DFT" };
    { name = "fig4"; build = Paper_graphs.fig4_small; blurb = "paper Fig. 4 example" };
    { name = "w3dft"; build = prog Dft.winograd3; blurb = "Winograd 3-point DFT" };
    { name = "w5dft"; build = prog Dft.winograd5; blurb = "Winograd 5-point DFT" };
    { name = "fft8"; build = (fun () -> Program.dfg (Dft.radix2_fft ~n:8)); blurb = "radix-2 FFT, 8 points" };
    { name = "dct8"; build = prog Kernels.dct8; blurb = "8-point DCT-II" };
    {
      name = "mm222";
      build = (fun () -> Program.dfg (Kernels.matmul ~m:2 ~k:2 ~n:2));
      blurb = "2x2 by 2x2 matmul";
    };
    {
      name = "fir8";
      build = (fun () -> Program.dfg (Kernels.fir ~taps:taps8 ~block:4));
      blurb = "8-tap FIR over a 4-sample block";
    };
    {
      name = "iir4";
      build =
        (fun () ->
          Program.dfg
            (Kernels.iir_biquad ~b:(0.2, 0.4, 0.2) ~a:(-0.5, 0.25) ~block:4));
      blurb = "biquad IIR, 4-sample block (serial recurrence)";
    };
    {
      name = "horner16";
      build = (fun () -> Program.dfg (Kernels.horner ~degree:16));
      blurb = "degree-16 Horner chain (maximally serial)";
    };
    {
      name = "adv-wide";
      build = rand ~layers:3 ~width:10 ~edge_prob:0.3 ~locality:1 ~seed:101;
      blurb = "random: 3 layers x width 10 (antichain-heavy)";
    };
    {
      name = "adv-deep";
      build = rand ~layers:24 ~width:2 ~edge_prob:0.6 ~locality:1 ~seed:102;
      blurb = "random: 24 layers x width 2 (chain-like)";
    };
    {
      name = "adv-dense";
      build = rand ~layers:6 ~width:6 ~edge_prob:0.9 ~locality:3 ~seed:103;
      blurb = "random: dense edges, locality 3";
    };
    {
      name = "adv-mono";
      build =
        rand ~layers:5 ~width:6 ~edge_prob:0.4 ~locality:2
          ~palette:[ (Color.of_char 'a', 1) ]
          ~seed:104;
      blurb = "random: single color (pattern-trivial)";
    };
    {
      name = "adv-rainbow";
      build =
        rand ~layers:5 ~width:6 ~edge_prob:0.4 ~locality:2
          ~palette:
            [
              (Color.of_char 'a', 1); (Color.of_char 'b', 1);
              (Color.of_char 'c', 1); (Color.of_char 'd', 1);
              (Color.of_char 'e', 1); (Color.of_char 'f', 1);
            ]
          ~seed:105;
      blurb = "random: six equal colors (pattern-hostile)";
    };
  ]

(* Full-only extras: the larger instances that make the offline fit
   honest but cost too much for a smoke gate. *)
let extras =
  [
    {
      name = "fft16";
      build = (fun () -> Program.dfg (Dft.radix2_fft ~n:16));
      blurb = "radix-2 FFT, 16 points";
    };
    {
      name = "dft4";
      build = (fun () -> Program.dfg (Dft.direct ~n:4));
      blurb = "direct 4-point DFT (sum-of-products)";
    };
    {
      name = "mm232";
      build = (fun () -> Program.dfg (Kernels.matmul ~m:2 ~k:3 ~n:2));
      blurb = "2x3 by 3x2 matmul";
    };
    {
      name = "fir16";
      build =
        (fun () -> Program.dfg (Kernels.fir ~taps:(taps8 @ taps8) ~block:8));
      blurb = "16-tap FIR over an 8-sample block";
    };
    {
      name = "adv-big";
      build = rand ~layers:10 ~width:8 ~edge_prob:0.5 ~locality:2 ~seed:106;
      blurb = "random: 10 layers x width 8";
    };
  ]

(* Huge tier: layered-random DAGs sized for the sharded regime
   ([mpsched --procs N], the bench --scaling multi-process rows).  Big
   enough that root-range classification dominates wall-clock and chunks
   amortise a fork+pipe round-trip; still seconds, not minutes, per
   graph so the full selector fit can afford them. *)
let huge_tier =
  [
    {
      name = "huge-grid";
      build = rand ~layers:36 ~width:13 ~edge_prob:0.35 ~locality:2 ~seed:201;
      blurb = "random: 36 layers x width 13 (sharded regime, balanced)";
    };
    {
      name = "huge-wide";
      build = rand ~layers:12 ~width:20 ~edge_prob:0.3 ~locality:1 ~seed:202;
      blurb = "random: 12 layers x width 20 (sharded regime, antichain-heavy)";
    };
    {
      name = "huge-deep";
      build = rand ~layers:64 ~width:6 ~edge_prob:0.5 ~locality:2 ~seed:203;
      blurb = "random: 64 layers x width 6 (sharded regime, chain-like)";
    };
  ]

let corpus ?(full = false) ?(huge = false) () =
  base @ (if full then extras else []) @ if huge then huge_tier else []

let find name =
  List.find_opt (fun e -> e.name = name) (base @ extras @ huge_tier)

let graphs ?full ?huge () =
  List.map (fun e -> (e.name, e.build ())) (corpus ?full ?huge ())
