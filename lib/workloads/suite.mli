(** The named workload corpus behind the selector fit and gates.

    The auto-selector ({!Mps_select.Auto}, ROADMAP item 4) is only as
    honest as the corpus it is fit on, so this module fixes one by name:
    the paper's figures, a DFT/FFT size sweep, DSP/linear-algebra kernels
    (DCT, matmul, FIR/IIR, Horner), and adversarial layered-random suites
    chosen to stress single features (width, depth, density, color mix).
    [bench --fit-selector] fits the rule table on these, [bench
    --selector] measures regret on the same names, and
    [results/selector_regret.csv] quotes them row by row — keeping the
    three in lockstep is the point of naming the corpus in one place.

    Every entry is deterministic: generators are seeded, so a name always
    denotes the same graph. *)

type entry = {
  name : string;  (** Unique corpus-wide; what every artifact quotes. *)
  build : unit -> Mps_dfg.Dfg.t;
      (** Fresh graph per call (entries share no state). *)
  blurb : string;  (** One line for tables and docs. *)
}

val corpus : ?full:bool -> ?huge:bool -> unit -> entry list
(** The corpus in fixed, documented order.  The base list (default) is
    sized for smoke gates; [full] appends the larger instances the
    offline fit also sees (bigger FFT/matmul, a direct DFT, wider random
    suites); [huge] appends the layered-random huge tier that the
    sharded backends ([mpsched --procs], the multi-process scaling
    bench) are measured on.  Names are unique across all three. *)

val find : string -> entry option
(** Lookup by name over the whole corpus, huge tier included. *)

val graphs : ?full:bool -> ?huge:bool -> unit -> (string * Mps_dfg.Dfg.t) list
(** [corpus] with every graph built — the convenient form for benches. *)
