(** Where a batch of independent tasks runs: inline on the submitting
    domain, or fanned out over a {!Pool} of worker domains.

    This is the seam the execution layer exposes downward: everything
    that fans work out ({!Pool.map} call sites) can be written against
    [Backend.map] and stay agnostic of the parallelism mechanism.  The
    third implementation — a fleet of worker OS processes — cannot live
    here (it needs the full library to run tasks remotely), so it plugs
    in one level up: [Mps_shard.Engine] drives the same submission-order
    contract through explicit [runner] hooks ({!Mps_select.Exact.search})
    and chunk fan-ins ({!Mps_antichain.Classify.of_buckets}).  All three
    return results in submission order, so callers are byte-identical
    whatever backend executes them. *)

type t =
  | Sequential  (** Run tasks inline, in submission order. *)
  | Domains of Pool.t  (** Fan out over the pool's worker domains. *)

val of_pool : Pool.t option -> t
(** [Domains p] when a pool with [jobs > 1] is given, else [Sequential]
    (a one-job pool gains nothing over inline execution). *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** Results in submission order; exceptions propagate as the earliest
    failing task's ({!Pool.map}'s contract, trivially true inline). *)
