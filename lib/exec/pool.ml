module Obs = Mps_obs.Obs

(* Deterministic fixed-size domain pool.

   One mutex/condvar pair coordinates batch hand-off; inside a batch the
   only shared state is two atomics (a cursor over chunk indices and a
   completion counter), so workers never contend on the lock while there is
   work left.  Determinism comes for free from the result layout: task [i]
   writes slot [i], and the merge reads slots 0..n-1. *)

type batch = {
  run_chunk : int -> unit;  (* runs every item of chunk [ci]; never raises *)
  chunks : int;
  cursor : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t list;
  lock : Mutex.t;
  have_work : Condition.t;  (* signalled on new batch and on shutdown *)
  work_done : Condition.t;  (* signalled when a batch's last chunk finishes *)
  mutable current : batch option;
  mutable generation : int;  (* bumped per batch; workers key off it *)
  mutable stopping : bool;
  mutable closed : bool;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

(* Pull chunks until the cursor runs off the end; wake the submitter when
   the last chunk of the batch completes. *)
let drain t b =
  let rec go () =
    let ci = Atomic.fetch_and_add b.cursor 1 in
    if ci < b.chunks then begin
      b.run_chunk ci;
      let finished = 1 + Atomic.fetch_and_add b.completed 1 in
      if finished = b.chunks then begin
        Mutex.lock t.lock;
        Condition.broadcast t.work_done;
        Mutex.unlock t.lock
      end;
      go ()
    end
  in
  go ()

let rec worker t seen_generation =
  Mutex.lock t.lock;
  while (not t.stopping) && t.generation = seen_generation do
    Condition.wait t.have_work t.lock
  done;
  if t.stopping then Mutex.unlock t.lock
  else begin
    let generation = t.generation in
    let b = t.current in
    Mutex.unlock t.lock;
    (* [current] can be [None] if the batch retired before we woke; just
       catch up to the new generation and wait again. *)
    Option.iter (drain t) b;
    worker t generation
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      workers = [];
      lock = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      closed = false;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.have_work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.closed <- true
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let check_open t = if t.closed then invalid_arg "Pool: used after shutdown"

(* Run [run_item] on 0..size-1 across the pool, blocking until all done. *)
let run_batch t ~chunk ~size run_item =
  let chunks = (size + chunk - 1) / chunk in
  let b =
    {
      run_chunk =
        (fun ci ->
          let lo = ci * chunk in
          let hi = min size (lo + chunk) in
          for i = lo to hi - 1 do
            run_item i
          done);
      chunks;
      cursor = Atomic.make 0;
      completed = Atomic.make 0;
    }
  in
  Mutex.lock t.lock;
  check_open t;
  t.current <- Some b;
  t.generation <- t.generation + 1;
  Condition.broadcast t.have_work;
  Mutex.unlock t.lock;
  (* The submitting domain is a worker too. *)
  drain t b;
  Mutex.lock t.lock;
  while Atomic.get b.completed < b.chunks do
    Condition.wait t.work_done t.lock
  done;
  t.current <- None;
  Mutex.unlock t.lock

(* Left-to-right by construction — the jobs=1 path must be exactly the
   sequential loop, and Array.map's evaluation order is unspecified. *)
let seq_map_array f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f tasks.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- f tasks.(i)
    done;
    out
  end

let map_array ?(chunk = 1) t ~f tasks =
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  check_open t;
  let n = Array.length tasks in
  if t.jobs = 1 || n <= 1 then seq_map_array f tasks
  else begin
    let results = Array.make n None in
    (* When the submitting domain is collecting observability data, each
       task records into its own buffer (installed on whatever domain runs
       it) and the buffers are committed in submission order after the
       batch — so counter totals and span order are independent of the
       worker count, like every other result of the pool.  A failed batch
       discards its buffers: the telemetry of a run is the telemetry of
       the work that produced its result, not of abandoned attempts. *)
    let obs = Obs.Task.begin_batch ~n in
    let run_task i =
      match obs with
      | None -> f tasks.(i)
      | Some bufs -> Obs.Task.run_in bufs.(i) (fun () -> f tasks.(i))
    in
    Obs.span "pool" (fun () ->
        run_batch t ~chunk ~size:n (fun i ->
            let r = match run_task i with v -> Ok v | exception e -> Error e in
            results.(i) <- Some r);
        let failed =
          Array.exists (function Some (Error _) -> true | _ -> false) results
        in
        match obs with
        | Some bufs when not failed -> Obs.Task.commit bufs
        | _ -> ());
    (* Every slot is filled — run_batch returns only after all chunks
       completed.  Raise the earliest failure in submission order, if any,
       so even the raised exception is independent of timing. *)
    seq_map_array
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map ?chunk t ~f xs =
  Array.to_list (map_array ?chunk t ~f (Array.of_list xs))

let map_reduce ?chunk t ~map:m ~reduce ~init xs =
  List.fold_left reduce init (map ?chunk t ~f:m xs)
