type t = Sequential | Domains of Pool.t

let of_pool = function
  | Some p when Pool.jobs p > 1 -> Domains p
  | _ -> Sequential

let map t ~f tasks =
  match t with
  | Sequential -> List.map f tasks
  | Domains p -> Pool.map p ~f tasks
