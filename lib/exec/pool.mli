(** Deterministic domain-based work pool.

    The selection pipeline is embarrassingly parallel at two levels —
    independent candidate pattern sets in the portfolio, and independent
    root branches of the antichain enumeration — and OCaml 5 Domains let us
    exploit that without touching the algorithms.  This pool is the one
    primitive everything parallel in the repo goes through, built around a
    single contract:

    {b determinism} — for a pure [f], [map pool ~f xs] returns exactly
    [List.map f xs], bit for bit, whatever the worker count or chunk size.
    Tasks are handed out dynamically (an atomic cursor over the index
    space, so an unbalanced task set still load-balances), but every
    result is written to its submission-order slot and the merged output
    never depends on completion order.  A pool with [jobs = 1] does not
    even spawn domains: it runs the plain sequential loop, so the legacy
    code path {e is} the jobs=1 code path.

    Workers are spawned once at {!create} and parked on a condition
    variable between batches, so a pool can be reused across many [map]
    calls (the benchmarks run thousands) without per-call spawn cost. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the submitting domain
    is the remaining worker).  [jobs = 1] spawns nothing and makes every
    operation purely sequential.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The worker count the pool was created with (including the submitting
    domain), i.e. the [jobs] argument of {!create} — callers use it to
    decide whether parallel set-up (scratch universes, per-root tables) is
    worth building at all. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to. *)

val shutdown : t -> unit
(** Stops and joins the workers.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on the
    way out, exception or not. *)

val map : ?chunk:int -> t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map pool ~f xs] is [List.map f xs], computed on the pool's domains,
    results in submission order.

    [chunk] (default 1) groups that many consecutive indices per grab of
    the shared cursor: raise it when items are tiny and uniform (cursor
    contention dominates), keep 1 when item costs vary wildly (antichain
    subtrees, portfolio strategies) so the dynamic schedule can balance.

    If one or more tasks raise, the exception of the {e earliest} task in
    submission order is re-raised — again independent of timing.  Unlike
    the sequential path, later tasks may still have run; tasks should
    therefore be pure or at least safe to run speculatively.

    Not re-entrant: [f] must not call [map] on the same pool.

    {b Observability.}  When the submitting domain has an active
    {!Mps_obs.Obs} collector, each task records spans/counters into a
    per-task buffer and the buffers are committed in submission order
    after the batch, inside a ["pool"] span — so telemetry, like results,
    is independent of worker count and timing.  If any task raised, the
    whole batch's buffers are discarded before the exception is re-raised.
    @raise Invalid_argument if [chunk < 1]. *)

val map_array : ?chunk:int -> t -> f:('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val map_reduce :
  ?chunk:int -> t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c ->
  'a list -> 'c
(** [map_reduce pool ~map ~reduce ~init xs] folds the mapped results in
    submission order: [List.fold_left reduce init (List.map map xs)].
    The fold itself runs on the submitting domain, so [reduce] needs no
    associativity or commutativity for the result to be deterministic. *)
