#!/bin/sh
# Repo gate: build, full test suite, odoc, CLI determinism across --jobs,
# the observability no-perturbation gate, the serve smoke gate (golden
# stream, error recovery, --jobs invariance, warm >= 3x cold), the delta
# smoke gate (suffix replay leaves counters and the serve edit stream
# byte-identical at any --jobs), the selector gate (auto smoke, counter
# jobs-invariance, rules-file round-trip, regret/speedup in release), the
# exact-search smoke gate, the shard gate (--procs fleet byte-identical to
# single-process on the huge suite, worker-crash recovery, socket serve
# matching the stdin golden), and the scaling benchmark in smoke mode at
# --jobs 1 and --jobs 4 plus once in release (multi-process rows included).
#
#   ./check.sh          # the whole gate
#   ./check.sh --fast   # build + tests only
#
# Exits non-zero on the first failure and names the stage that failed (a
# failing mid-pipeline gate used to report only dune's exit status).  The
# scaling benchmark hard-fails on any sequential/parallel divergence; the
# speedup figure it prints is informational (it needs as many cores as
# domains to show >1).
set -e

STAGE="startup"
tmp1="" tmp4="" trace=""
on_exit() {
  status=$?
  rm -f "$tmp1" "$tmp4" "$trace"
  if [ "$status" -ne 0 ]; then
    printf '\nFAILED at stage: %s\n' "$STAGE" >&2
  fi
}
trap on_exit EXIT

say() { STAGE="$*"; printf '\n== %s ==\n' "$*"; }

say "dune build"
dune build

say "dune runtest"
dune runtest

[ "$1" = "--fast" ] && exit 0

say "dune build @doc (odoc must stay warning-clean enough to build)"
dune build @doc

say "CLI determinism: mpsched output must be byte-identical for any --jobs"
tmp1=$(mktemp) tmp4=$(mktemp)
for spec in "pipeline 3dft" "pipeline fig4" "pipeline w3dft" "pipeline w5dft" \
            "pipeline fft8" "antichains 3dft" \
            "select w5dft" "patterns fft8" "portfolio 3dft" \
            "exact 3dft" "select 3dft --certify"; do
  # shellcheck disable=SC2086
  dune exec --no-build bin/mpsched.exe -- $spec --jobs 1 > "$tmp1"
  # shellcheck disable=SC2086
  dune exec --no-build bin/mpsched.exe -- $spec --jobs 4 > "$tmp4"
  if ! cmp -s "$tmp1" "$tmp4"; then
    echo "FAIL: mpsched $spec differs between --jobs 1 and --jobs 4" >&2
    diff "$tmp1" "$tmp4" | head -20 >&2
    exit 1
  fi
  echo "  ok: mpsched $spec"
done

say "observability: --stats/--trace must not perturb the primary output"
trace=$(mktemp)
dune exec --no-build bin/mpsched.exe -- schedule fig2_3dft.dot > "$tmp1"
dune exec --no-build bin/mpsched.exe -- schedule fig2_3dft.dot \
  --stats --trace "$trace" > "$tmp4" 2>/dev/null
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: --stats/--trace changed the stdout of mpsched schedule" >&2
  diff "$tmp1" "$tmp4" | head -20 >&2
  exit 1
fi
echo "  ok: stdout byte-identical with and without --stats/--trace"
dune exec --no-build bin/mpsched.exe -- tracecheck "$trace"
if ! dune exec --no-build bin/mpsched.exe -- schedule fig2_3dft.dot --stats \
    2>&1 >/dev/null | grep -q "classify"; then
  echo "FAIL: --stats summary is missing the classify phase" >&2
  exit 1
fi
echo "  ok: --stats reports the classify phase"

say "serve smoke: request stream must match golden and be --jobs invariant"
# Three well-formed requests plus one malformed line: the malformed line
# must produce an "ok":false response without killing the session, and the
# whole response stream must be byte-identical at --jobs 1 and --jobs 4 and
# match the committed golden.
cat > "$trace" <<'EOF'
{"id":1,"cmd":"select","graph":"3dft"}
{"id":2,"cmd":"certify","graph":"3dft","options":{"pdef":4}}
not a request
{"id":3,"cmd":"stats"}
EOF
dune exec --no-build bin/mpsched.exe -- serve --stdin --jobs 1 \
  < "$trace" > "$tmp1"
dune exec --no-build bin/mpsched.exe -- serve --stdin --jobs 4 \
  < "$trace" > "$tmp4"
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: serve response stream differs between --jobs 1 and --jobs 4" >&2
  diff "$tmp1" "$tmp4" | head -20 >&2
  exit 1
fi
echo "  ok: serve stream byte-identical across --jobs 1 and --jobs 4"
if [ "$(grep -c '"ok":true' "$tmp1")" -ne 3 ] || \
   [ "$(grep -c '"ok":false' "$tmp1")" -ne 1 ]; then
  echo "FAIL: serve smoke expected 3 ok responses and 1 error, got:" >&2
  cat "$tmp1" >&2
  exit 1
fi
echo "  ok: malformed request answered with an error, session survived"
dune exec --no-build bin/mpsched.exe -- serve --stdin \
  < test/cli/serve_requests.txt > "$tmp1"
if ! cmp -s test/cli/serve_smoke.expected "$tmp1"; then
  echo "FAIL: serve output diverged from test/cli/serve_smoke.expected" >&2
  diff test/cli/serve_smoke.expected "$tmp1" | head -20 >&2
  exit 1
fi
echo "  ok: serve stream matches the committed golden"

say "delta smoke: suffix replay must not perturb any observable stream"
# The delta-evaluation path (annealing swap moves, beam one-move finalists,
# exact incumbent re-costing, serve edits) commits its counters in
# submission order, so the eval.* counter rows of --stats must be
# byte-identical at --jobs 1 and --jobs 4, with the delta path actually
# taken (eval.delta.hits present).  The serve golden stream above already
# carries warm "edit" requests; replay it at --jobs 4 to prove the edit
# path is jobs-invariant too.
dune exec --no-build bin/mpsched.exe -- exact 3dft --stats --jobs 1 \
  2>&1 >/dev/null | grep '| eval\.' > "$tmp1"
dune exec --no-build bin/mpsched.exe -- exact 3dft --stats --jobs 4 \
  2>&1 >/dev/null | grep '| eval\.' > "$tmp4"
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: eval.* counters differ between --jobs 1 and --jobs 4" >&2
  diff "$tmp1" "$tmp4" >&2
  exit 1
fi
if ! grep -q 'eval\.delta\.hits' "$tmp1"; then
  echo "FAIL: exact search never took the delta path (no eval.delta.hits)" >&2
  cat "$tmp1" >&2
  exit 1
fi
echo "  ok: eval.* counters identical across --jobs, delta path taken"
dune exec --no-build bin/mpsched.exe -- serve --stdin --jobs 4 \
  < test/cli/serve_requests.txt > "$tmp1"
if ! cmp -s test/cli/serve_smoke.expected "$tmp1"; then
  echo "FAIL: serve edit stream at --jobs 4 diverged from the golden" >&2
  diff test/cli/serve_smoke.expected "$tmp1" | head -20 >&2
  exit 1
fi
echo "  ok: serve edit stream at --jobs 4 matches the committed golden"

say "selector: auto smoke, --stats jobs invariance, rules-file round-trip"
# --strategy auto must dispatch a backend on the paper graphs, its
# select.auto.* counter rows must be byte-identical at --jobs 1 and
# --jobs 4, and loading the checked-in rule file must reproduce the
# compiled-in table's decision exactly.
dune exec --no-build bin/mpsched.exe -- select 3dft --strategy auto > "$tmp1"
if ! grep -q '^backend:' "$tmp1"; then
  echo "FAIL: select --strategy auto printed no backend decision" >&2
  cat "$tmp1" >&2
  exit 1
fi
if ! dune exec --no-build bin/mpsched.exe -- pipeline fig4 --strategy auto \
    | grep -q '^auto: dispatched'; then
  echo "FAIL: pipeline --strategy auto printed no auto dispatch line" >&2
  exit 1
fi
echo "  ok: auto dispatches on 3dft and fig4"
dune exec --no-build bin/mpsched.exe -- select 3dft --strategy auto \
  --stats --jobs 1 2>&1 >/dev/null | grep '| select\.auto' > "$tmp1"
dune exec --no-build bin/mpsched.exe -- select 3dft --strategy auto \
  --stats --jobs 4 2>&1 >/dev/null | grep '| select\.auto' > "$tmp4"
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: select.auto.* counters differ between --jobs 1 and --jobs 4" >&2
  diff "$tmp1" "$tmp4" >&2
  exit 1
fi
if ! grep -q 'select\.auto\.requests' "$tmp1"; then
  echo "FAIL: --stats shows no select.auto.requests counter" >&2
  cat "$tmp1" >&2
  exit 1
fi
echo "  ok: select.auto.* counters identical across --jobs"
dune exec --no-build bin/mpsched.exe -- select 3dft --strategy auto > "$tmp1"
dune exec --no-build bin/mpsched.exe -- select 3dft --strategy auto \
  --rules results/selector_rules.json > "$tmp4"
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: --rules results/selector_rules.json diverges from builtin" >&2
  diff "$tmp1" "$tmp4" >&2
  exit 1
fi
echo "  ok: checked-in rule file loads and matches the compiled-in table"

say "serve throughput benchmark (smoke: warm >= 3x cold at --jobs 4)"
# Exits 1 if any generated request fails, the response stream differs
# between --jobs 1 and --jobs 4, or the warm repeat-graph mix falls under
# 3x the cold distinct-graph throughput at --jobs 4.
dune exec --no-build bench/main.exe -- --serve --smoke

say "exact search gate (smoke: oracle parity, gap >= 0, pruning power)"
# Exits 1 if any pruning configuration disagrees on the optimum, a
# certificate comes back unproven, the certified gap is negative, or
# ban+dominance pruning falls under the 50% node-elimination gate.
dune exec --no-build bench/main.exe -- --exact --smoke

say "pattern-ops microbenchmark (smoke, release profile)"
# Release profile: the dev profile's -opaque flag blocks cross-module
# inlining, which is precisely what the matrix probe is measuring.  The
# benchmark exits 1 if the matrix answers diverge from the direct multiset
# walk or the speedup falls under 5x.
dune build --profile release bench/main.exe
dune exec --no-build --profile release bench/main.exe -- --pattern-ops --smoke

say "eval-ops microbenchmark (smoke, release profile)"
# Exits 1 if cold/warm/hit cycle counts disagree, the memo cache miscounts,
# the warm context falls under 5x faster than the cold schedule path, or
# the delta move stream falls under 3x faster than warm full re-evaluation
# (with any hit/fallback/cache miscount on the stream also fatal).
dune exec --no-build --profile release bench/main.exe -- --eval-ops --smoke

say "selector regret gate (smoke, release profile)"
# Exits 1 if the checked-in rule file diverges from the compiled-in table,
# an auto decision is not its portfolio entry verbatim (same pattern list,
# same cycles), median regret over the base corpus exceeds 5%, or auto
# saves less than 3x the full portfolio's selection wall-clock.
dune exec --no-build --profile release bench/main.exe -- --selector --smoke

say "shard: mpsched output must be byte-identical for any --procs"
# The worker fleet's fan-in is submission-ordered, so every command must
# produce the same bytes on a 1-worker and a 4-worker fleet — including a
# huge-suite graph and a procs x jobs cross.
for spec in "select huge-grid" "pipeline huge-deep" "portfolio huge-grid" \
            "exact 3dft" "select huge-deep --certify"; do
  # shellcheck disable=SC2086
  dune exec --no-build bin/mpsched.exe -- $spec --procs 1 > "$tmp1"
  # shellcheck disable=SC2086
  dune exec --no-build bin/mpsched.exe -- $spec --procs 4 > "$tmp4"
  if ! cmp -s "$tmp1" "$tmp4"; then
    echo "FAIL: mpsched $spec differs between --procs 1 and --procs 4" >&2
    diff "$tmp1" "$tmp4" | head -20 >&2
    exit 1
  fi
  echo "  ok: mpsched $spec"
done
dune exec --no-build bin/mpsched.exe -- select huge-grid --jobs 1 > "$tmp1"
dune exec --no-build bin/mpsched.exe -- select huge-grid --jobs 4 --procs 4 \
  > "$tmp4"
if ! cmp -s "$tmp1" "$tmp4"; then
  echo "FAIL: select huge-grid differs between --jobs 1 and --jobs 4 --procs 4" >&2
  diff "$tmp1" "$tmp4" | head -20 >&2
  exit 1
fi
echo "  ok: --procs x --jobs cross byte-identical"
# A worker killed mid-batch must surface as a clean error, never a hang.
if MPS_SHARD_CRASH=2 timeout 60 dune exec --no-build bin/mpsched.exe -- \
    select huge-grid --procs 2 > /dev/null 2> "$tmp1"; then
  echo "FAIL: mpsched succeeded despite a crashed shard worker" >&2
  exit 1
fi
if ! grep -q "shard:" "$tmp1"; then
  echo "FAIL: crashed worker did not produce a shard error message" >&2
  cat "$tmp1" >&2
  exit 1
fi
echo "  ok: worker crash surfaces as a clean error"

say "serve socket: --listen/--connect must match the --stdin golden"
sock="${TMPDIR:-/tmp}/mps-check-$$.sock"
dune exec --no-build bin/mpsched.exe -- serve --listen "$sock" &
serve_pid=$!
i=0
while [ ! -S "$sock" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
if [ ! -S "$sock" ]; then
  echo "FAIL: serve --listen never created $sock" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
dune exec --no-build bin/mpsched.exe -- serve --connect "$sock" \
  < test/cli/serve_requests.txt > "$tmp1"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -f "$sock"
if ! cmp -s test/cli/serve_smoke.expected "$tmp1"; then
  echo "FAIL: socket serve diverged from test/cli/serve_smoke.expected" >&2
  diff test/cli/serve_smoke.expected "$tmp1" | head -20 >&2
  exit 1
fi
echo "  ok: socket stream matches the committed golden"

say "scaling benchmark (smoke, --jobs 1)"
dune exec --no-build bench/main.exe -- --scaling --smoke --jobs 1

say "scaling benchmark (smoke, --jobs 4)"
dune exec --no-build bench/main.exe -- --scaling --smoke --jobs 4

say "scaling benchmark (smoke, release profile, multi-process rows)"
dune exec --no-build --profile release bench/main.exe -- --scaling --smoke

say "all checks passed"
STAGE="done"
