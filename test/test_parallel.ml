(* Determinism of the domain-parallel execution paths (ISSUE 1).

   The contract of Mps_exec is not "fast" but "identical": for any random
   DFG and any jobs in {1,2,4,8}, parallel antichain enumeration,
   classification, portfolio selection, and the full pipeline must return
   results indistinguishable from the sequential path — element for
   element, order included.  Speed is a property of the host; determinism
   is a property of the code, so it is what the test suite pins down. *)

module Pool = Mps_exec.Pool
module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Antichain = Mps_antichain.Antichain
module Classify = Mps_antichain.Classify
module Portfolio = Mps_select.Portfolio
module Random_dag = Mps_workloads.Random_dag

let jobs_values = [ 1; 2; 4; 8 ]
let capacity = 5

let random_graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 4 + (seed mod 3);
      width = 3 + (seed mod 3);
    }
  in
  Random_dag.generate ~params ~seed ()

(* One comparable snapshot of a classification. *)
let classification_fingerprint cls =
  ( Classify.total_antichains cls,
    Classify.truncated cls,
    List.map
      (fun p ->
        ( Pattern.to_string p,
          Classify.count cls p,
          Array.to_list (Classify.node_frequency cls p),
          List.map Antichain.nodes (Classify.antichains cls p) ))
      (Classify.patterns cls) )

let portfolio_fingerprint o =
  List.map
    (fun e ->
      ( e.Portfolio.strategy,
        List.map Pattern.to_string e.Portfolio.patterns,
        e.Portfolio.cycles ))
    o.Portfolio.all

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)

let enumeration_deterministic seed =
  let g = random_graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let seq_all = Enumerate.all ~span_limit:2 ~max_size:capacity ctx in
  let seq_count = Enumerate.count ~max_size:capacity ctx in
  let seq_by_size = Enumerate.count_by_size ~span_limit:1 ~max_size:capacity ctx in
  let seq_matrix = Enumerate.count_matrix ~max_size:capacity ~max_span:3 ctx in
  List.for_all
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Enumerate.all ~pool ~span_limit:2 ~max_size:capacity ctx = seq_all
          && Enumerate.count ~pool ~max_size:capacity ctx = seq_count
          && Enumerate.count_by_size ~pool ~span_limit:1 ~max_size:capacity ctx
             = seq_by_size
          && Enumerate.count_matrix ~pool ~max_size:capacity ~max_span:3 ctx
             = seq_matrix))
    jobs_values

let classification_deterministic seed =
  let g = random_graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let seq =
    classification_fingerprint
      (Classify.compute ~keep_antichains:true ~capacity ctx)
  in
  List.for_all
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          classification_fingerprint
            (Classify.compute ~pool ~keep_antichains:true ~capacity ctx)
          = seq))
    jobs_values

let budgeted_classification_deterministic (seed, budget) =
  (* The budget path must agree with sequential truncation exactly, both
     when the budget bites (parallel walk aborts and re-runs sequentially)
     and when it does not (parallel result is returned as-is). *)
  let g = random_graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let seq =
    classification_fingerprint
      (Classify.compute ~budget ~keep_antichains:true ~capacity ctx)
  in
  List.for_all
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          classification_fingerprint
            (Classify.compute ~pool ~budget ~keep_antichains:true ~capacity ctx)
          = seq))
    jobs_values

let portfolio_deterministic seed =
  let g = random_graph ~seed in
  let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
  let seq = portfolio_fingerprint (Portfolio.run ~pdef:3 cls) in
  List.for_all
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          portfolio_fingerprint (Portfolio.run ~pool ~pdef:3 cls) = seq))
    jobs_values

let pipeline_deterministic seed =
  let g = random_graph ~seed in
  let seq = Core.Pipeline.run g in
  List.for_all
    (fun jobs ->
      let options = { Core.Pipeline.default_options with Core.Pipeline.jobs } in
      let par = Core.Pipeline.run ~options g in
      let schedule_cycles t =
        List.init (Dfg.node_count g) (fun i ->
            Mps_scheduler.Schedule.cycle_of t.Core.Pipeline.schedule i)
      in
      par.Core.Pipeline.patterns = seq.Core.Pipeline.patterns
      && par.Core.Pipeline.cycles = seq.Core.Pipeline.cycles
      && schedule_cycles par = schedule_cycles seq)
    jobs_values

let () =
  Alcotest.run "parallel determinism"
    [
      ( "vs sequential",
        [
          qtest "enumerate: all/count/by-size/matrix identical for jobs 1,2,4,8"
            seed_gen enumeration_deterministic;
          qtest "classify: identical tables for jobs 1,2,4,8" seed_gen
            classification_deterministic;
          qtest ~count:10 "classify: budget truncation identical for jobs 1,2,4,8"
            QCheck2.Gen.(pair seed_gen (oneofl [ 1; 7; 50; 500; 100_000 ]))
            budgeted_classification_deterministic;
          qtest "portfolio: ranking identical for jobs 1,2,4,8" seed_gen
            portfolio_deterministic;
          qtest ~count:8 "pipeline: schedule identical for jobs 1,2,4,8" seed_gen
            pipeline_deterministic;
        ] );
    ]
