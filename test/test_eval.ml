(* Eval: the shared evaluation context must be a perfect stand-in for the
   full scheduler.

   The contract under test: for any random DAG and any coverage-complete
   pattern set, [Eval.cycles] (dense fast path, memo-cached) returns
   exactly [Schedule.cycles] of [Multi_pattern.schedule] — under both
   pattern priorities, through the id-based entry point, on cache misses
   and on cache hits alike — and fails identically (same [Unschedulable]
   colors) on sets that do not cover the graph.  [Eval.cycles_delta] must
   return exactly what [Eval.cycles] returns on the moved set for any
   walk of swap and grow moves, with exact hit/fallback accounting, on
   recording and non-recording contexts alike.  On top of that, the
   portfolio built on a shared context must stay byte-identical between
   --jobs 1 and --jobs 4. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Eval = Mps_scheduler.Eval
module Select = Mps_select.Select
module Random_select = Mps_select.Random_select
module Portfolio = Mps_select.Portfolio
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Pool = Mps_exec.Pool
module Random_dag = Mps_workloads.Random_dag
module Rng = Mps_util.Rng

let capacity = 5

let random_graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 4 + (seed mod 3);
      width = 3 + (seed mod 3);
    }
  in
  Random_dag.generate ~params ~seed ()

(* A handful of independent coverage-complete sets for one graph. *)
let random_sets ~seed g =
  let rng = Rng.create ~seed in
  let colors = Dfg.colors g in
  List.init 6 (fun _ -> Random_select.select rng ~colors ~capacity ~pdef:3)

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)

(* The fast path equals the full scheduler, under both priorities, both
   through a held context and through the one-shot wrapper. *)
let cycles_match_schedule seed =
  let g = random_graph ~seed in
  let sets = random_sets ~seed g in
  let ev = Eval.make g in
  List.for_all
    (fun patterns ->
      Select.covers_all_colors g patterns
      && List.for_all
           (fun priority ->
             let full =
               Schedule.cycles
                 (Mp.schedule ~priority ~patterns g).Mp.schedule
             in
             Eval.cycles ~priority ev patterns = full
             && Mp.cycles ~priority ~patterns g = full)
           [ Mp.F1; Mp.F2 ])
    sets

(* Re-asking a context answers from the memo cache — same counts, hits
   advancing by exactly one per lookup, misses frozen.  Order is part of
   the key (list position decides score ties in the scheduler), so a
   permuted set is its own entry: it must agree with the full-fidelity
   path on the permuted order, not necessarily with the original. *)
let cache_hits_are_identical seed =
  let g = random_graph ~seed in
  let sets = random_sets ~seed g in
  let n = List.length sets in
  let ev = Eval.make g in
  let first = List.map (Eval.cycles ev) sets in
  let h0, m0 = Eval.cache_stats ev in
  let second = List.map (Eval.cycles ev) sets in
  let h1, m1 = Eval.cache_stats ev in
  let reversed_ok =
    List.for_all
      (fun ps ->
        let rev = List.rev ps in
        Eval.cycles ev rev = Mp.cycles ~patterns:rev g)
      sets
  in
  first = second && reversed_ok && m1 = m0 && h1 = h0 + n

(* The id-based entry point (what the searches use) agrees with the
   pattern-based one on a context sharing the caller's universe. *)
let cycles_ids_match seed =
  let g = random_graph ~seed in
  let u = Universe.create () in
  let ev = Eval.make ~universe:u g in
  List.for_all
    (fun patterns ->
      let ids = List.map (Universe.intern u) patterns in
      Eval.cycles_ids ev ids = Mp.cycles ~patterns g)
    (random_sets ~seed g)

(* A set that misses a color entirely must fail identically on both
   paths: same exception, same offending colors. *)
let unschedulable_match seed =
  let g = random_graph ~seed in
  match List.sort_uniq Color.compare (Dfg.colors g) with
  | [] | [ _ ] -> true (* cannot build a non-covering set *)
  | _ :: rest ->
      let rng = Rng.create ~seed in
      let patterns =
        List.init 3 (fun _ -> Pattern.random rng ~colors:rest ~size:capacity)
      in
      let full =
        match Mp.schedule ~patterns g with
        | _ -> None
        | exception Mp.Unschedulable cs -> Some cs
      in
      let fast =
        match Eval.cycles (Eval.make g) patterns with
        | _ -> None
        | exception Eval.Unschedulable cs -> Some cs
      in
      (not (Select.covers_all_colors g patterns))
      && full <> None && fast = full

(* --- delta evaluation -------------------------------------------------

   [Eval.cycles_delta] must be a perfect stand-in for [Eval.cycles] on the
   moved set: same cycle counts, same [Unschedulable] colors, for any walk
   of random swap and grow moves, under both priorities, whether or not
   the context records replay data.  The walk mixes covering and
   non-covering replacement patterns so both outcomes are exercised; a
   failed move keeps the previous set so the walk always continues from a
   memoized state, like a rejected annealing move. *)

let outcome f = match f () with c -> Ok c | exception Eval.Unschedulable cs -> Error cs

(* One random move walk driven through [Eval.cycles_delta] on [evd] and
   re-costed as a plain [Eval.cycles] of the moved list on [evf]; returns
   false on the first disagreement. *)
let walk_matches ~seed ~priority evd evf g =
  let rng = Rng.create ~seed in
  let colors = Dfg.colors g in
  let pool =
    Array.init 8 (fun _ ->
        Pattern.random rng ~colors ~size:(1 + Rng.int rng capacity))
  in
  let prev = ref (Random_select.select rng ~colors ~capacity ~pdef:3) in
  let ok = ref true in
  for _ = 1 to 12 do
    let added = Rng.choice rng pool in
    let removed, next =
      if Rng.bool rng || List.length !prev >= 6 then begin
        (* Mirror [cycles_delta]'s semantics exactly: the replacement
           lands at the FIRST occurrence of the removed pattern.  Order
           is part of the memo key and of the schedule (list position
           decides ties), so mutating a later duplicate slot would be a
           genuinely different set. *)
        let slot = Rng.int rng (List.length !prev) in
        let p = List.nth !prev slot in
        let replaced = ref false in
        ( Some p,
          List.map
            (fun q ->
              if (not !replaced) && Pattern.equal q p then begin
                replaced := true;
                added
              end
              else q)
            !prev )
      end
      else (None, !prev @ [ added ])
    in
    let d =
      outcome (fun () ->
          Eval.cycles_delta ~priority ?removed evd ~prev:!prev ~added)
    in
    let f = outcome (fun () -> Eval.cycles ~priority evf next) in
    if d <> f then ok := false;
    match d with Ok _ -> prev := next | Error _ -> ()
  done;
  !ok

(* Replaying a suffix returns exactly what a full evaluation returns, for
   every move of every walk, under both priorities. *)
let delta_matches_full seed =
  let g = random_graph ~seed in
  List.for_all
    (fun priority ->
      walk_matches ~seed ~priority (Eval.make ~delta:true g) (Eval.make g) g)
    [ Mp.F1; Mp.F2 ]

(* A context made without [~delta] must give the same answers through
   [cycles_delta] — every miss a counted fallback, nothing recorded —
   while the recording context splits its misses exactly into hits and
   fallbacks and saves at least one cycle per hit.  Both contexts see the
   same move stream, so their cache accounting must agree too. *)
let delta_accounting seed =
  let g = random_graph ~seed in
  let evd = Eval.make ~delta:true g in
  let evoff = Eval.make g in
  walk_matches ~seed ~priority:Mp.F2 evd evoff g
  &&
  let dh, df, ds = Eval.delta_stats evd in
  let oh, of_, os = Eval.delta_stats evoff in
  let dhits, dmisses = Eval.cache_stats evd in
  let ohits, omisses = Eval.cache_stats evoff in
  (* The off context went through plain [cycles]: no delta traffic. *)
  oh = 0 && of_ = 0 && os = 0
  (* Same stream, same list-keyed caches: identical hit/miss splits. *)
  && (dhits, dmisses) = (ohits, omisses)
  (* Every delta-path miss resolved as a hit or a fallback, never both. *)
  && dh + df = dmisses
  && ds >= dh

(* The same walk driven entirely through [cycles_delta] on a context made
   without [~delta]: no replay data exists, so every miss is a counted
   full-evaluation fallback, and nothing is ever saved. *)
let delta_off_is_all_fallbacks seed =
  let g = random_graph ~seed in
  let ev = Eval.make g in
  walk_matches ~seed ~priority:Mp.F2 ev (Eval.make g) g
  &&
  let h, f, s = Eval.delta_stats ev in
  let _, misses = Eval.cache_stats ev in
  h = 0 && s = 0 && f = misses && f > 0

(* The portfolio costs every strategy on one shared context after the
   fan-in; spreading the strategy work over domains must not move a
   single byte of the ranking. *)
let portfolio_jobs_identical seed =
  let g = random_graph ~seed in
  let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
  let fingerprint o =
    List.map
      (fun e ->
        ( e.Portfolio.strategy,
          List.map Pattern.to_string e.Portfolio.patterns,
          e.Portfolio.cycles ))
      o.Portfolio.all
  in
  let seq = fingerprint (Portfolio.run ~pdef:3 cls) in
  Pool.with_pool ~jobs:4 (fun pool ->
      fingerprint (Portfolio.run ~pool ~pdef:3 cls) = seq)

let () =
  Alcotest.run "eval context"
    [
      ( "fidelity",
        [
          qtest "Eval.cycles = Schedule.cycles (Mp.schedule), F1 and F2"
            seed_gen cycles_match_schedule;
          qtest "cycles_ids via shared universe = Mp.cycles" seed_gen
            cycles_ids_match;
          qtest "non-covering sets fail identically on both paths" seed_gen
            unschedulable_match;
        ] );
      ( "memo cache",
        [
          qtest "hits return identical counts; stats advance exactly"
            seed_gen cache_hits_are_identical;
        ] );
      ( "delta evaluation",
        [
          qtest "cycles_delta = cycles over random move walks, F1 and F2"
            seed_gen delta_matches_full;
          qtest "hit/fallback accounting is exact and additive" seed_gen
            delta_accounting;
          qtest "a non-recording context answers identically, all fallbacks"
            seed_gen delta_off_is_all_fallbacks;
        ] );
      ( "determinism",
        [
          qtest ~count:10 "portfolio ranking identical at --jobs 1 and 4"
            seed_gen portfolio_jobs_identical;
        ] );
    ]
