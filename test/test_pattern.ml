(* Pattern algebra: canonical spellings, the subpattern partial order,
   enumeration, random draws. *)

module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Rng = Mps_util.Rng

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pat = Pattern.of_string

let pattern_gen =
  QCheck2.Gen.(
    map
      (fun chars -> Pattern.of_colors (List.map Color.of_char chars))
      (list_size (0 -- 6) (char_range 'a' 'd')))

let test_string_round_trip () =
  Alcotest.(check string) "canonical" "aabcc" (Pattern.to_string (pat "cabca"));
  Alcotest.(check string) "dummies skipped" "ab" (Pattern.to_string (pat "a-b--"));
  Alcotest.(check string) "padded" "aab--" (Pattern.to_padded_string ~capacity:5 (pat "aba"));
  Alcotest.check_raises "overflow"
    (Invalid_argument "Pattern.to_padded_string: \"aabcc\" exceeds capacity 3")
    (fun () -> ignore (Pattern.to_padded_string ~capacity:3 (pat "aabcc")))

let test_of_string_capacity () =
  Alcotest.(check string) "within capacity" "aabcc"
    (Pattern.to_string (Pattern.of_string ~capacity:5 "cabca"));
  Alcotest.(check string) "dummies don't count against capacity" "ab"
    (Pattern.to_string (Pattern.of_string ~capacity:2 "a-b--"));
  Alcotest.check_raises "oversized spelling rejected"
    (Invalid_argument
       "Pattern.of_string: \"aabbcc\" has 6 defined colors but the machine \
        capacity is 5") (fun () ->
      ignore (Pattern.of_string ~capacity:5 "aabbcc"))

let test_counts () =
  let p = pat "aabcc" in
  Alcotest.(check int) "size" 5 (Pattern.size p);
  Alcotest.(check int) "count a" 2 (Pattern.count p Color.add);
  Alcotest.(check int) "count b" 1 (Pattern.count p Color.sub);
  Alcotest.(check bool) "mem" true (Pattern.mem p Color.mul);
  Alcotest.(check int) "distinct colors" 3 (List.length (Pattern.colors p));
  Alcotest.(check bool) "fits 5" true (Pattern.fits_capacity ~capacity:5 p);
  Alcotest.(check bool) "not 4" false (Pattern.fits_capacity ~capacity:4 p)

let test_subpattern () =
  Alcotest.(check bool) "aa sub aabcc" true (Pattern.subpattern (pat "aa") ~of_:(pat "aabcc"));
  Alcotest.(check bool) "aaa not sub aabcc" false
    (Pattern.subpattern (pat "aaa") ~of_:(pat "aabcc"));
  Alcotest.(check bool) "reflexive" true (Pattern.subpattern (pat "ab") ~of_:(pat "ab"));
  Alcotest.(check bool) "proper excludes equal" false
    (Pattern.proper_subpattern (pat "ab") ~of_:(pat "ab"));
  Alcotest.(check bool) "empty sub anything" true
    (Pattern.subpattern Pattern.empty ~of_:(pat "a"))

let test_lattice_ops () =
  Alcotest.(check string) "join" "aabbc"
    (Pattern.to_string (Pattern.join (pat "aab") (pat "abbc")));
  Alcotest.(check string) "meet" "ab"
    (Pattern.to_string (Pattern.meet (pat "aab") (pat "abbc")));
  Alcotest.(check string) "sum" "aaabbbc"
    (Pattern.to_string (Pattern.sum (pat "aab") (pat "abbc")))

let test_enumerate () =
  let colors = List.map Color.of_char [ 'a'; 'b'; 'c' ] in
  let ps = Pattern.enumerate ~colors ~max_size:2 in
  Alcotest.(check (list string)) "all size<=2 patterns over 3 colors"
    [ "a"; "b"; "c"; "aa"; "ab"; "ac"; "bb"; "bc"; "cc" ]
    (List.map Pattern.to_string ps);
  (* Count formula: sum over s of C(k+s-1, s). *)
  let ps5 = Pattern.enumerate ~colors ~max_size:5 in
  Alcotest.(check int) "3+6+10+15+21" 55 (List.length ps5)

let test_random_pattern () =
  let rng = Rng.create ~seed:17 in
  let colors = List.map Color.of_char [ 'a'; 'b'; 'c' ] in
  for _ = 1 to 50 do
    let p = Pattern.random rng ~colors ~size:5 in
    Alcotest.(check int) "full size" 5 (Pattern.size p);
    List.iter
      (fun c -> Alcotest.(check bool) "color from palette" true (List.mem c colors))
      (Pattern.colors p)
  done;
  Alcotest.check_raises "empty colors" (Invalid_argument "Pattern.random: no colors")
    (fun () -> ignore (Pattern.random rng ~colors:[] ~size:3))

let props =
  [
    qtest "pattern: of_string . to_string = id" pattern_gen (fun p ->
        Pattern.equal p (Pattern.of_string (Pattern.to_string p)));
    qtest "pattern: padded spelling round-trips" pattern_gen (fun p ->
        Pattern.equal p (Pattern.of_string (Pattern.to_padded_string ~capacity:6 p)));
    qtest "pattern: to_string canonical (sorted, multiplicity-faithful)"
      pattern_gen
      (fun p ->
        let s = Pattern.to_string p in
        let chars = List.init (String.length s) (String.get s) in
        chars = List.sort compare chars && String.length s = Pattern.size p);
    qtest "pattern: subpattern reflexive" pattern_gen (fun p ->
        Pattern.subpattern p ~of_:p && not (Pattern.proper_subpattern p ~of_:p));
    qtest "pattern: subpattern partial order (antisym)"
      QCheck2.Gen.(pair pattern_gen pattern_gen)
      (fun (p, q) ->
        (not (Pattern.subpattern p ~of_:q && Pattern.subpattern q ~of_:p))
        || Pattern.equal p q);
    qtest "pattern: subpattern transitive"
      QCheck2.Gen.(triple pattern_gen pattern_gen pattern_gen)
      (fun (p, q, r) ->
        (not (Pattern.subpattern p ~of_:q && Pattern.subpattern q ~of_:r))
        || Pattern.subpattern p ~of_:r);
    qtest "pattern: join is least upper bound"
      QCheck2.Gen.(pair pattern_gen pattern_gen)
      (fun (p, q) ->
        let j = Pattern.join p q in
        Pattern.subpattern p ~of_:j && Pattern.subpattern q ~of_:j
        && Pattern.size j <= Pattern.size p + Pattern.size q);
    qtest "pattern: meet below both"
      QCheck2.Gen.(pair pattern_gen pattern_gen)
      (fun (p, q) ->
        let m = Pattern.meet p q in
        Pattern.subpattern m ~of_:p && Pattern.subpattern m ~of_:q);
    qtest "pattern: compare consistent with equal"
      QCheck2.Gen.(pair pattern_gen pattern_gen)
      (fun (p, q) -> Pattern.equal p q = (Pattern.compare p q = 0));
    qtest "pattern: subpattern agrees with canonical strings"
      QCheck2.Gen.(pair pattern_gen pattern_gen)
      (fun (p, q) ->
        (* An independent model of the relation: every color's count in p
           is <= its count in q, read off the canonical spellings. *)
        let counts s =
          List.init 26 (fun i ->
              let c = Char.chr (Char.code 'a' + i) in
              String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 s)
        in
        let model =
          List.for_all2 ( <= ) (counts (Pattern.to_string p))
            (counts (Pattern.to_string q))
        in
        Pattern.subpattern p ~of_:q = model);
  ]

let () =
  Alcotest.run "pattern"
    [
      ( "basics",
        [
          Alcotest.test_case "string round trip" `Quick test_string_round_trip;
          Alcotest.test_case "of_string capacity" `Quick test_of_string_capacity;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "subpattern" `Quick test_subpattern;
          Alcotest.test_case "lattice ops" `Quick test_lattice_ops;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "random" `Quick test_random_pattern;
        ] );
      ("properties", props);
    ]
