(* Tests for the deterministic domain pool (Mps_exec.Pool): submission-order
   results, chunking, exception plumbing, pool reuse, and the qcheck
   contract map pool f = List.map f for every jobs/chunk combination. *)

module Pool = Mps_exec.Pool

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_create_bounds () =
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  let p = Pool.create ~jobs:3 in
  Alcotest.(check int) "jobs recorded" 3 (Pool.jobs p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_after_shutdown () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.map p ~f:succ [ 1; 2; 3 ]))

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "squares in order"
        (List.map (fun x -> x * x) xs)
        (Pool.map p ~f:(fun x -> x * x) xs))

let test_map_unbalanced () =
  (* Skewed task costs force out-of-order completion; results must still
     come back in submission order. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let work x =
        let n = if x mod 7 = 0 then 20_000 else 10 in
        let acc = ref 0 in
        for i = 1 to n do
          acc := (!acc + (x * i)) mod 1_000_003
        done;
        (x, !acc)
      in
      let xs = List.init 60 Fun.id in
      Alcotest.(check bool)
        "matches sequential" true
        (Pool.map p ~f:work xs = List.map work xs))

let test_chunking () =
  Pool.with_pool ~jobs:3 (fun p ->
      let xs = List.init 101 Fun.id in
      List.iter
        (fun chunk ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk %d" chunk)
            (List.map succ xs)
            (Pool.map ~chunk p ~f:succ xs))
        [ 1; 2; 7; 101; 1000 ];
      Alcotest.check_raises "chunk 0 rejected"
        (Invalid_argument "Pool.map: chunk must be >= 1") (fun () ->
          ignore (Pool.map ~chunk:0 p ~f:succ xs)))

let test_reuse_many_batches () =
  Pool.with_pool ~jobs:4 (fun p ->
      for round = 1 to 200 do
        let xs = List.init (1 + (round mod 17)) (fun i -> (round * 31) + i) in
        if Pool.map p ~f:(fun x -> x * 2) xs <> List.map (fun x -> x * 2) xs
        then Alcotest.failf "round %d diverged" round
      done)

exception Boom of int

let test_exception_earliest () =
  (* Tasks 13 and 27 both raise; the pool must re-raise the earliest in
     submission order no matter which domain hits which first. *)
  Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 20 do
        match
          Pool.map p
            ~f:(fun x -> if x = 13 || x = 27 then raise (Boom x) else x)
            (List.init 50 Fun.id)
        with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom n -> Alcotest.(check int) "earliest task's exn" 13 n
      done)

let test_sequential_pool_runs_inline () =
  (* jobs=1 must be the plain sequential loop: same order, same effects,
     and an exception stops later tasks from running at all. *)
  let p = Pool.create ~jobs:1 in
  let log = ref [] in
  (match
     Pool.map p
       ~f:(fun x ->
         log := x :: !log;
         if x = 2 then failwith "stop";
         x)
       [ 0; 1; 2; 3 ]
   with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check (list int)) "tasks after the raise never ran" [ 2; 1; 0 ] !log;
  Pool.shutdown p

let test_map_reduce () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 500 (fun i -> i + 1) in
      (* A non-commutative reduce: order sensitivity is the point. *)
      let got =
        Pool.map_reduce p
          ~map:(fun x -> string_of_int (x mod 10))
          ~reduce:( ^ ) ~init:"" xs
      in
      let want = String.concat "" (List.map (fun x -> string_of_int (x mod 10)) xs) in
      Alcotest.(check string) "ordered fold" want got)

let test_with_pool_cleans_up () =
  match Pool.with_pool ~jobs:2 (fun _ -> failwith "body") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m -> Alcotest.(check string) "body exn surfaced" "body" m

let pool_props =
  let gen =
    QCheck2.Gen.(
      triple
        (oneofl [ 1; 2; 4; 8 ])
        (1 -- 16)
        (list_size (0 -- 80) (int_bound 10_000)))
  in
  [
    qtest "pool: map = List.map for any jobs/chunk" gen (fun (jobs, chunk, xs) ->
        let f x = (x * 17) + (x mod 5) in
        Pool.with_pool ~jobs (fun p -> Pool.map ~chunk p ~f xs) = List.map f xs);
  ]

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "create bounds" `Quick test_create_bounds;
          Alcotest.test_case "use after shutdown" `Quick test_after_shutdown;
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "unbalanced tasks" `Quick test_map_unbalanced;
          Alcotest.test_case "chunking" `Quick test_chunking;
          Alcotest.test_case "reuse across batches" `Quick test_reuse_many_batches;
          Alcotest.test_case "earliest exception wins" `Quick test_exception_earliest;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_sequential_pool_runs_inline;
          Alcotest.test_case "map_reduce ordered" `Quick test_map_reduce;
          Alcotest.test_case "with_pool cleanup" `Quick test_with_pool_cleans_up;
        ]
        @ pool_props );
    ]
