(* Unit and property tests for the utility kernel: PRNG, multisets, bitsets,
   heaps, statistics, table rendering. *)

module Rng = Mps_util.Rng
module Bitset = Mps_util.Bitset
module Mstats = Mps_util.Mstats
module Ascii_table = Mps_util.Ascii_table
module Cms = Mps_util.Multiset.Make (Char)
module Int_heap = Mps_util.Heap.Make (Int)

module Astring_like = struct
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
end

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- rng --- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create ~seed:124 in
  let diff = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 c)) then diff := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !diff

let test_rng_copy_split () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b);
  let child = Rng.split a in
  let x = Rng.bits64 child and y = Rng.bits64 a in
  Alcotest.(check bool) "split decorrelates" true (not (Int64.equal x y))

let test_rng_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "int in bound" true (x >= 0 && x < 7);
    let y = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "int_in inclusive" true (y >= -3 && y <= 3);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in bound" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniformity () =
  (* Coarse chi-square-free check: each of 8 buckets within 30% of mean. *)
  let rng = Rng.create ~seed:77 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Rng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (abs (c - (n / 8)) < n / 8 * 3 / 10))
    buckets

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:3 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle_list rng l in
  Alcotest.(check (list int)) "same elements" l (List.sort compare s)

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:4 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 10 arr in
  Alcotest.(check int) "ten drawn" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length sorted)

(* --- multiset --- *)

let test_multiset_basics () =
  let m = Cms.of_list [ 'a'; 'b'; 'a'; 'c'; 'a' ] in
  Alcotest.(check int) "cardinal" 5 (Cms.cardinal m);
  Alcotest.(check int) "support" 3 (Cms.support_size m);
  Alcotest.(check int) "count a" 3 (Cms.count 'a' m);
  Alcotest.(check int) "count z" 0 (Cms.count 'z' m);
  Alcotest.(check (list char)) "to_list sorted" [ 'a'; 'a'; 'a'; 'b'; 'c' ] (Cms.to_list m);
  let m' = Cms.remove ~times:2 'a' m in
  Alcotest.(check int) "remove twice" 1 (Cms.count 'a' m');
  let m'' = Cms.remove ~times:5 'a' m in
  Alcotest.(check bool) "clamped removal" false (Cms.mem 'a' m'')

let test_multiset_algebra () =
  let a = Cms.of_list [ 'x'; 'x'; 'y' ] and b = Cms.of_list [ 'x'; 'y'; 'y'; 'z' ] in
  Alcotest.(check (list (pair char int))) "union max"
    [ ('x', 2); ('y', 2); ('z', 1) ]
    (Cms.to_counted_list (Cms.union a b));
  Alcotest.(check (list (pair char int))) "sum"
    [ ('x', 3); ('y', 3); ('z', 1) ]
    (Cms.to_counted_list (Cms.sum a b));
  Alcotest.(check (list (pair char int))) "inter"
    [ ('x', 1); ('y', 1) ]
    (Cms.to_counted_list (Cms.inter a b));
  Alcotest.(check (list (pair char int))) "diff" [ ('x', 1) ]
    (Cms.to_counted_list (Cms.diff a b));
  Alcotest.(check bool) "subset yes" true (Cms.subset (Cms.of_list [ 'x'; 'y' ]) a);
  Alcotest.(check bool) "subset no" false (Cms.subset b a)

let char_list_gen = QCheck2.Gen.(list_size (0 -- 12) (char_range 'a' 'e'))

let multiset_props =
  [
    qtest "multiset: cardinal = list length" char_list_gen (fun l ->
        Cms.cardinal (Cms.of_list l) = List.length l);
    qtest "multiset: to_list round-trips" char_list_gen (fun l ->
        Cms.equal (Cms.of_list (Cms.to_list (Cms.of_list l))) (Cms.of_list l));
    qtest "multiset: inter subset both"
      QCheck2.Gen.(pair char_list_gen char_list_gen)
      (fun (l1, l2) ->
        let a = Cms.of_list l1 and b = Cms.of_list l2 in
        let i = Cms.inter a b in
        Cms.subset i a && Cms.subset i b);
    qtest "multiset: diff + inter = original"
      QCheck2.Gen.(pair char_list_gen char_list_gen)
      (fun (l1, l2) ->
        let a = Cms.of_list l1 and b = Cms.of_list l2 in
        Cms.equal (Cms.sum (Cms.diff a b) (Cms.inter a b)) a);
    (* subset is the pattern algebra's subpattern relation; pin down that
       it is a partial order. *)
    qtest "multiset: subset reflexive" char_list_gen (fun l ->
        let a = Cms.of_list l in
        Cms.subset a a);
    qtest "multiset: subset antisymmetric"
      QCheck2.Gen.(pair char_list_gen char_list_gen)
      (fun (l1, l2) ->
        let a = Cms.of_list l1 and b = Cms.of_list l2 in
        (not (Cms.subset a b && Cms.subset b a)) || Cms.equal a b);
    qtest "multiset: subset transitive"
      QCheck2.Gen.(triple char_list_gen char_list_gen char_list_gen)
      (fun (l1, l2, l3) ->
        let a = Cms.of_list l1 and b = Cms.of_list l2 and c = Cms.of_list l3 in
        (not (Cms.subset a b && Cms.subset b c)) || Cms.subset a c);
    qtest "multiset: union/inter lattice absorption"
      QCheck2.Gen.(pair char_list_gen char_list_gen)
      (fun (l1, l2) ->
        let a = Cms.of_list l1 and b = Cms.of_list l2 in
        Cms.equal (Cms.union a (Cms.inter a b)) a
        && Cms.equal (Cms.inter a (Cms.union a b)) a);
  ]

(* --- bitset --- *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 99 ] (Bitset.elements s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: element 100 out of universe [0,100)") (fun () ->
      Bitset.add s 100)

let test_bitset_full_and_ops () =
  let f = Bitset.full 70 in
  Alcotest.(check int) "full cardinal" 70 (Bitset.cardinal f);
  let a = Bitset.of_list 70 [ 1; 5; 64; 69 ] in
  let b = Bitset.of_list 70 [ 5; 6; 69 ] in
  Alcotest.(check (list int)) "inter" [ 5; 69 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 5; 6; 64; 69 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "diff" [ 1; 64 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "subset" true (Bitset.subset (Bitset.inter a b) a)

let test_bitset_first_from () =
  let s = Bitset.of_list 200 [ 3; 70; 199 ] in
  Alcotest.(check (option int)) "from 0" (Some 3) (Bitset.first_from s 0);
  Alcotest.(check (option int)) "from 4" (Some 70) (Bitset.first_from s 4);
  Alcotest.(check (option int)) "from 71" (Some 199) (Bitset.first_from s 71);
  Alcotest.(check (option int)) "past end" None (Bitset.first_from s 200)

let int_list_gen = QCheck2.Gen.(list_size (0 -- 30) (0 -- 99))

let bitset_props =
  [
    qtest "bitset: elements = sorted dedup" int_list_gen (fun l ->
        Bitset.elements (Bitset.of_list 100 l) = List.sort_uniq compare l);
    qtest "bitset: de morgan" QCheck2.Gen.(pair int_list_gen int_list_gen)
      (fun (l1, l2) ->
        let a = Bitset.of_list 100 l1 and b = Bitset.of_list 100 l2 in
        let lhs = Bitset.diff (Bitset.full 100) (Bitset.union a b) in
        let rhs =
          Bitset.inter
            (Bitset.diff (Bitset.full 100) a)
            (Bitset.diff (Bitset.full 100) b)
        in
        Bitset.equal lhs rhs);
    qtest "bitset: iter ascending" int_list_gen (fun l ->
        let s = Bitset.of_list 100 l in
        let prev = ref (-1) in
        let ok = ref true in
        Bitset.iter
          (fun i ->
            if i <= !prev then ok := false;
            prev := i)
          s;
        !ok);
  ]

(* Model-based check against the stdlib's Set over int: same answers for
   union/inter/diff/cardinal/mem/iter/first_from, at the word-boundary
   universes 63/64/65 where the packed representation's last-word masking
   can go wrong (plus one comfortably multi-word size). *)
module Int_set = Set.Make (Int)

let bitset_model_props =
  let gen =
    QCheck2.Gen.(
      bind (oneofl [ 63; 64; 65; 130 ]) (fun u ->
          let elems = list_size (0 -- 40) (int_bound (u - 1)) in
          map (fun (l1, l2) -> (u, l1, l2)) (pair elems elems)))
  in
  let check_same name op_bitset op_model =
    qtest ("bitset vs model: " ^ name) gen (fun (u, l1, l2) ->
        let b1 = Bitset.of_list u l1 and b2 = Bitset.of_list u l2 in
        let m1 = Int_set.of_list l1 and m2 = Int_set.of_list l2 in
        op_bitset u b1 b2 = op_model u m1 m2)
  in
  [
    check_same "union elements"
      (fun _ a b -> Bitset.elements (Bitset.union a b))
      (fun _ a b -> Int_set.elements (Int_set.union a b));
    check_same "inter elements"
      (fun _ a b -> Bitset.elements (Bitset.inter a b))
      (fun _ a b -> Int_set.elements (Int_set.inter a b));
    check_same "diff elements"
      (fun _ a b -> Bitset.elements (Bitset.diff a b))
      (fun _ a b -> Int_set.elements (Int_set.diff a b));
    check_same "cardinal of union"
      (fun _ a b -> Bitset.cardinal (Bitset.union a b))
      (fun _ a b -> Int_set.cardinal (Int_set.union a b));
    check_same "iter visits the model's elements"
      (fun _ a b ->
        let acc = ref [] in
        Bitset.iter (fun i -> acc := i :: !acc) (Bitset.inter a b);
        List.rev !acc)
      (fun _ a b -> Int_set.elements (Int_set.inter a b));
    check_same "subset"
      (fun _ a b -> Bitset.subset a b)
      (fun _ a b -> Int_set.subset a b);
    check_same "mem across the whole universe"
      (fun u a b -> List.init u (fun i -> Bitset.mem (Bitset.union a b) i))
      (fun u a b -> List.init u (fun i -> Int_set.mem i (Int_set.union a b)));
    check_same "first_from across the whole universe"
      (fun u a _ -> List.init (u + 1) (fun i -> Bitset.first_from a i))
      (fun u a _ ->
        List.init (u + 1) (fun i -> Int_set.find_first_opt (fun x -> x >= i) a));
    check_same "full minus set = complement"
      (fun u a _ -> Bitset.elements (Bitset.diff (Bitset.full u) a))
      (fun u a _ ->
        List.filter (fun i -> not (Int_set.mem i a)) (List.init u Fun.id));
  ]

(* --- heap --- *)

let test_heap_sorts () =
  let h = Int_heap.of_list [ 5; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 2; 4; 5; 5; 6; 9 ]
    (Int_heap.drain h);
  Alcotest.(check bool) "empty after drain" true (Int_heap.is_empty h)

let test_heap_nondestructive_view () =
  let h = Int_heap.of_list [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ] (Int_heap.to_sorted_list h);
  Alcotest.(check int) "untouched" 3 (Int_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Int_heap.min_elt h)

let heap_props =
  [
    qtest "heap: drain = sort" QCheck2.Gen.(list_size (0 -- 50) (0 -- 1000))
      (fun l -> Int_heap.drain (Int_heap.of_list l) = List.sort compare l);
  ]

(* --- stats --- *)

let test_stats () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Mstats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev (sample)" (sqrt (32.0 /. 7.0)) (Mstats.stddev xs);
  Alcotest.(check (float 1e-9)) "median" 4.5 (Mstats.median xs);
  Alcotest.(check (float 1e-9)) "p0 = min" 2.0 (Mstats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 9.0 (Mstats.percentile xs 100.0);
  let lo, hi = Mstats.min_max xs in
  Alcotest.(check (pair (float 0.) (float 0.))) "min_max" (2.0, 9.0) (lo, hi);
  Alcotest.check_raises "empty mean" (Invalid_argument "Mstats.mean: empty input")
    (fun () -> ignore (Mstats.mean [||]))

let test_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = Mstats.histogram ~bins:2 xs in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check (pair int int)) "counts" (2, 2) (c0, c1)

(* --- ascii table --- *)

let test_table_render () =
  let t = Ascii_table.create ~header:[ "name"; "value" ] () in
  Ascii_table.add_row t [ "x"; "1" ];
  Ascii_table.add_separator t;
  Ascii_table.add_row t [ "longer"; "234" ];
  let s = Ascii_table.render t in
  Alcotest.(check bool) "contains header" true
    (Astring_like.contains s "name" && Astring_like.contains s "value");
  Alcotest.(check bool) "contains rows" true
    (Astring_like.contains s "longer" && Astring_like.contains s "234");
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Ascii_table.add_row: row width mismatch") (fun () ->
      Ascii_table.add_row t [ "only-one" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_split;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
          Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "basics" `Quick test_multiset_basics;
          Alcotest.test_case "algebra" `Quick test_multiset_algebra;
        ]
        @ multiset_props );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "full and ops" `Quick test_bitset_full_and_ops;
          Alcotest.test_case "first_from" `Quick test_bitset_first_from;
        ]
        @ bitset_props @ bitset_model_props );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "non-destructive view" `Quick test_heap_nondestructive_view;
        ]
        @ heap_props );
      ( "stats",
        [
          Alcotest.test_case "moments and percentiles" `Quick test_stats;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ("ascii-table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
