(* Tests for the scheduling service: the protocol codec round-trips, serve
   responses agree with the direct library calls they wrap, warm requests
   return the same results as cold ones (with the exact backend doing zero
   re-evaluation), the response stream is identical for any pool size, and
   a malformed request never takes the session down. *)

module Json = Mps_util.Json
module Protocol = Mps_serve.Protocol
module Session = Mps_serve.Session
module Server = Mps_serve.Server
module Pool = Mps_exec.Pool
module Pipeline = Core.Pipeline
module Select = Core.Select
module Pattern = Core.Pattern
module Schedule = Core.Schedule
module Random_dag = Core.Random_dag

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)

let random_graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 4 + (seed mod 3);
      width = 3 + (seed mod 3);
    }
  in
  Random_dag.generate ~params ~seed ()

let random_dfg_text ~seed = Core.Dfg_parse.to_string (random_graph ~seed)

(* --- protocol round-trip ------------------------------------------------ *)

let edit_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "a1"; "b2"; "x9" ] in
  oneof
    [
      map2
        (fun node color -> Protocol.Add_node { node; color })
        name
        (oneofl [ "a"; "b"; "c" ]);
      map (fun n -> Protocol.Remove_node n) name;
      map2 (fun s d -> Protocol.Add_edge (s, d)) name name;
      map2 (fun s d -> Protocol.Remove_edge (s, d)) name name;
    ]

let request_gen =
  let open QCheck2.Gen in
  let command =
    oneofl
      Protocol.[ Select; Schedule; Pipeline; Certify; Portfolio; Edit; Stats ]
  in
  let source cmd =
    match cmd with
    | Protocol.Stats -> return None
    | _ ->
        oneof
          [
            map (fun n -> Some (Protocol.Builtin n)) (oneofl [ "3dft"; "fig4" ]);
            map
              (fun s -> Some (Protocol.Dfg_text (random_dfg_text ~seed:s)))
              (1 -- 50);
            map (fun s -> Some (Protocol.Dot_text ("digraph " ^ s))) (oneofl [ "g{}"; "x{a->b}" ]);
          ]
  in
  let opt g = oneof [ return None; map Option.some g ] in
  command >>= fun command ->
  source command >>= fun source ->
  opt (1 -- 6) >>= fun capacity ->
  opt (-1 -- 3) >>= fun span ->
  opt (1 -- 5) >>= fun pdef ->
  opt (oneofl [ "f1"; "f2" ]) >>= fun priority ->
  bool >>= fun cluster ->
  opt (oneofl [ -1; 1000; 5_000_000 ]) >>= fun budget ->
  opt (oneofl [ 100; 1_000_000 ]) >>= fun max_nodes ->
  list_size (0 -- 3) (oneofl [ "aabcc"; "abc"; "aa" ]) >>= fun patterns ->
  (* The codec requires a non-empty edits array exactly for [edit]. *)
  (match command with
  | Protocol.Edit -> list_size (1 -- 3) edit_gen
  | _ -> return [])
  >>= fun edits ->
  opt (map (fun n -> Json.Num (float_of_int n)) (0 -- 99)) >>= fun id ->
  return
    (Protocol.make ?id ?source ?capacity ?span ?pdef ?priority ~cluster
       ?budget ?max_nodes ~patterns ~edits command)

let request_roundtrip r =
  match Protocol.request_of_line (Protocol.request_to_line r) with
  | Ok r' -> r' = r
  | Error e -> QCheck2.Test.fail_reportf "rejected own encoding: %s" e.Protocol.message

(* Every response the server produces must be one line that parses back to
   the same JSON tree — to_line/parse as inverses on real traffic. *)
let response_line_roundtrip seed =
  let sess = Session.create () in
  let lines =
    [
      Printf.sprintf "{\"id\":%d,\"cmd\":\"select\",\"graph\":\"fig4\"}" seed;
      Printf.sprintf "{\"cmd\":\"schedule\",\"dfg\":%s}"
        (Json.to_line (Json.Str (random_dfg_text ~seed)));
      "{\"cmd\":\"stats\"}";
      "not json at all";
    ]
  in
  List.for_all
    (fun line ->
      let resp = Server.handle_line sess line in
      String.index_opt resp '\n' = None
      &&
      match Json.parse resp with
      | Ok j -> Json.to_line j = resp
      | Error m -> QCheck2.Test.fail_reportf "unparseable response %s: %s" resp m)
    lines

(* --- serve = direct library calls --------------------------------------- *)

let member_exn what k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s: response lacks %S" what k

let as_int = function
  | Json.Num f -> int_of_float f
  | Json.Null -> max_int
  | _ -> Alcotest.fail "expected a number"

let string_list = function
  | Json.Arr items ->
      List.map (function Json.Str s -> s | _ -> Alcotest.fail "expected string") items
  | _ -> Alcotest.fail "expected an array"

let parse_ok what resp =
  match Json.parse resp with
  | Ok j ->
      (match Json.member "ok" j with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.failf "%s: not ok: %s" what resp);
      j
  | Error m -> Alcotest.failf "%s: bad response JSON: %s" what m

let serve_matches_pipeline seed =
  let text = random_dfg_text ~seed in
  let g = Core.Dfg_parse.of_string text in
  let sess = Session.create () in
  let line =
    Json.to_line
      (Json.Obj [ ("cmd", Json.Str "pipeline"); ("dfg", Json.Str text) ])
  in
  let resp = parse_ok "pipeline" (Server.handle_line sess line) in
  let direct = Pipeline.run g in
  string_list (member_exn "pipeline" "patterns" resp)
  = List.map Pattern.to_string direct.Pipeline.patterns
  && as_int (member_exn "pipeline" "cycles" resp) = direct.Pipeline.cycles
  && as_int (member_exn "pipeline" "antichains" resp)
     = direct.Pipeline.antichains

let serve_matches_select seed =
  let text = random_dfg_text ~seed in
  let g = Core.Dfg_parse.of_string text in
  let sess = Session.create () in
  let line =
    Json.to_line
      (Json.Obj [ ("cmd", Json.Str "select"); ("dfg", Json.Str text) ])
  in
  let resp = parse_ok "select" (Server.handle_line sess line) in
  let direct =
    Select.select ~pdef:4
      (Core.Classify.compute ~span_limit:1 ~capacity:5
         (Core.Enumerate.make_ctx g))
  in
  string_list (member_exn "select" "patterns" resp)
  = List.map Pattern.to_string direct

(* Everything that legitimately differs between a cold and a warm answer:
   the warm bit, the cache stats, and (for certify) the search accounting
   the ban reuse changes.  The scheduling *results* must be identical. *)
let strip_volatile = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter
           (fun (k, _) -> not (List.mem k [ "warm"; "stats"; "search" ]))
           fields)
  | j -> j

(* --- online edits -------------------------------------------------------- *)

let as_bool what = function
  | Json.Bool b -> b
  | _ -> Alcotest.failf "%s: expected a boolean" what

(* An [edit] answer must describe exactly the graph [Session.apply_edits]
   builds, schedule it completely, and never re-classify: the session's
   cold-classification count stays where the base request left it, and
   repeating the edit is pure cache traffic with an identical answer. *)
let serve_edit_matches seed =
  let g = random_graph ~seed in
  let text = Core.Dfg_parse.to_string g in
  let sess = Session.create () in
  let select_line =
    Json.to_line
      (Json.Obj [ ("cmd", Json.Str "select"); ("dfg", Json.Str text) ])
  in
  ignore (parse_ok "edit warm-up" (Server.handle_line sess select_line));
  let n0 = Session.classification_count sess in
  let nodes = Core.Dfg.nodes g in
  let anchor = Core.Dfg.name g (List.hd nodes) in
  let color =
    String.make 1 (Core.Color.to_char (Core.Dfg.color g (List.hd nodes)))
  in
  let edits =
    [
      Protocol.Add_node { node = "zz9"; color };
      Protocol.Add_edge (anchor, "zz9");
    ]
  in
  let line =
    Protocol.request_to_line
      (Protocol.make ~source:(Protocol.Dfg_text text) ~edits Protocol.Edit)
  in
  let resp = parse_ok "edit" (Server.handle_line sess line) in
  let g' = Session.apply_edits g edits in
  let expected_text = Core.Dfg_parse.to_string g' in
  (match member_exn "edit" "dfg" resp with
  | Json.Str s ->
      if s <> expected_text then
        QCheck2.Test.fail_reportf "edited dfg mismatch:\n%s\nvs\n%s" s
          expected_text
  | _ -> Alcotest.fail "edit: \"dfg\" must be a string");
  let scheduled =
    match member_exn "edit" "rows" resp with
    | Json.Arr rows ->
        List.fold_left
          (fun acc row ->
            match row with
            | Json.Arr ns -> acc + List.length ns
            | _ -> Alcotest.fail "edit: schedule row must be an array")
          0 rows
    | _ -> Alcotest.fail "edit: \"rows\" must be an array"
  in
  let repeat = parse_ok "edit repeat" (Server.handle_line sess line) in
  scheduled = Core.Dfg.node_count g'
  && as_bool "warm" (member_exn "edit" "warm" resp)
  && Session.classification_count sess = n0
  && strip_volatile repeat = strip_volatile resp

(* --- warm = cold --------------------------------------------------------- *)

let warm_equals_cold seed =
  let text = random_dfg_text ~seed in
  List.for_all
    (fun cmd ->
      (* Fresh session per command: pipeline and certify share a
         classification family, so on one session the second command's
         first request would already be warm. *)
      let sess = Session.create () in
      let line =
        Json.to_line (Json.Obj [ ("cmd", Json.Str cmd); ("dfg", Json.Str text) ])
      in
      let cold = parse_ok (cmd ^ " cold") (Server.handle_line sess line) in
      let warm = parse_ok (cmd ^ " warm") (Server.handle_line sess line) in
      strip_volatile cold = strip_volatile warm
      && Json.member "warm" cold = Some (Json.Bool false)
      && Json.member "warm" warm = Some (Json.Bool true))
    [ "select"; "pipeline"; "certify" ]

(* A warm re-certification of an unchanged family must re-evaluate nothing:
   every completion is already in the persisted ban list, and the reported
   optimum is identical. *)
let warm_certify_evaluates_nothing seed =
  let text = random_dfg_text ~seed in
  let sess = Session.create () in
  let line =
    Json.to_line
      (Json.Obj [ ("cmd", Json.Str "certify"); ("dfg", Json.Str text) ])
  in
  let cold = parse_ok "certify cold" (Server.handle_line sess line) in
  let warm = parse_ok "certify warm" (Server.handle_line sess line) in
  let search j = member_exn "certify" "search" j in
  let exact j = member_exn "certify" "exact" j in
  exact cold = exact warm
  && as_int (member_exn "certify" "evaluated" (search warm)) = 0
  && as_int (member_exn "certify" "new_bans" (search warm)) = 0

(* The same reuse at the session API level, against a cold Pipeline.certify. *)
let session_certify_matches_cold seed =
  let g = random_graph ~seed in
  let sess = Session.create () in
  let options = Pipeline.default_options in
  let cold = Pipeline.certify g in
  let first, _ = Session.certify sess g ~options () in
  let second, _ = Session.certify sess g ~options () in
  first.Pipeline.exact.Core.Exact.optimal
  = cold.Pipeline.exact.Core.Exact.optimal
  && first.Pipeline.exact.Core.Exact.optimal_cycles
     = cold.Pipeline.exact.Core.Exact.optimal_cycles
  && second.Pipeline.exact.Core.Exact.optimal
     = cold.Pipeline.exact.Core.Exact.optimal
  && second.Pipeline.exact.Core.Exact.optimal_cycles
     = cold.Pipeline.exact.Core.Exact.optimal_cycles
  && second.Pipeline.exact.Core.Exact.stats.Core.Exact.evaluated = 0

(* --- determinism --------------------------------------------------------- *)

(* The full response stream — including error responses and every stats
   field — must be byte-identical whatever the pool size. *)
let jobs_identical seed =
  let text = random_dfg_text ~seed in
  let lines =
    [
      "{\"id\":1,\"cmd\":\"select\",\"graph\":\"3dft\"}";
      Json.to_line
        (Json.Obj
           [ ("id", Json.Num 2.); ("cmd", Json.Str "certify"); ("dfg", Json.Str text) ]);
      Json.to_line
        (Json.Obj
           [ ("id", Json.Num 3.); ("cmd", Json.Str "certify"); ("dfg", Json.Str text) ]);
      "{\"cmd\":\"portfolio\",\"graph\":\"fig4\"}";
      "definitely not json";
      "{\"id\":4,\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"add_node\",\"node\":\"z1\",\"color\":\"c\"},{\"op\":\"add_edge\",\"src\":\"b1\",\"dst\":\"z1\"}]}";
      "{\"id\":5,\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"add_node\",\"node\":\"z1\",\"color\":\"c\"},{\"op\":\"add_edge\",\"src\":\"b1\",\"dst\":\"z1\"}]}";
      "{\"cmd\":\"stats\"}";
    ]
  in
  let stream pool =
    let sess = Session.create ?pool () in
    String.concat "\n" (List.map (Server.handle_line sess) lines)
  in
  let seq = stream None in
  let par = Pool.with_pool ~jobs:4 (fun p -> stream (Some p)) in
  if seq <> par then
    QCheck2.Test.fail_reportf "serve responses differ between jobs 1 and 4";
  true

(* --- failure handling ----------------------------------------------------- *)

let test_malformed_keeps_session_alive () =
  let sess = Session.create () in
  let expect_error what line =
    let resp = Server.handle_line sess line in
    match Json.parse resp with
    | Ok j -> (
        match (Json.member "ok" j, Json.member "error" j) with
        | Some (Json.Bool false), Some (Json.Str _) -> ()
        | _ -> Alcotest.failf "%s: expected an error response, got %s" what resp)
    | Error m -> Alcotest.failf "%s: bad response JSON: %s" what m
  in
  expect_error "bad JSON" "{{{";
  expect_error "not an object" "[1,2]";
  expect_error "missing cmd" "{\"graph\":\"3dft\"}";
  expect_error "unknown cmd" "{\"cmd\":\"explode\",\"graph\":\"3dft\"}";
  expect_error "unknown graph" "{\"cmd\":\"select\",\"graph\":\"nope\"}";
  expect_error "missing graph" "{\"cmd\":\"select\"}";
  expect_error "two graphs" "{\"cmd\":\"select\",\"graph\":\"3dft\",\"dfg\":\"x\"}";
  expect_error "unknown option"
    "{\"cmd\":\"select\",\"graph\":\"3dft\",\"options\":{\"capaciti\":4}}";
  expect_error "bad priority"
    "{\"cmd\":\"select\",\"graph\":\"3dft\",\"options\":{\"priority\":\"f3\"}}";
  expect_error "bad graph text" "{\"cmd\":\"select\",\"dfg\":\"node a qq\"}";
  expect_error "uncoverable patterns"
    "{\"cmd\":\"schedule\",\"graph\":\"3dft\",\"options\":{\"patterns\":[\"aa\"]}}";
  expect_error "oversized pattern"
    "{\"cmd\":\"schedule\",\"graph\":\"3dft\",\"options\":{\"patterns\":[\"aaaaaaaa\"]}}";
  expect_error "edit without edits" "{\"cmd\":\"edit\",\"graph\":\"3dft\"}";
  expect_error "edit with empty edits"
    "{\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[]}";
  expect_error "edits on a non-edit cmd"
    "{\"cmd\":\"select\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"remove_node\",\"node\":\"a2\"}]}";
  expect_error "unknown edit op"
    "{\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"rename\",\"node\":\"a2\"}]}";
  expect_error "unknown edit key"
    "{\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"remove_node\",\"name\":\"a2\"}]}";
  expect_error "edit names an unknown node"
    "{\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"remove_node\",\"node\":\"zzz\"}]}";
  (* After all of that, the session still answers. *)
  let resp =
    parse_ok "post-error select"
      (Server.handle_line sess "{\"cmd\":\"select\",\"graph\":\"3dft\"}")
  in
  Alcotest.(check (list string))
    "session survives and serves"
    [ "aabcc"; "aaaaa"; "aaacc"; "aabbc" ]
    (string_list (member_exn "select" "patterns" resp))

(* The id is echoed even when the request is rejected after parsing —
   including rejections inside the edits array. *)
let test_error_echoes_id () =
  let sess = Session.create () in
  let check_id what line expected =
    let resp = Server.handle_line sess line in
    match Json.parse resp with
    | Ok j ->
        Alcotest.(check bool) (what ^ ": id echoed") true
          (Json.member "id" j = Some expected)
    | Error m -> Alcotest.failf "%s: bad response JSON: %s" what m
  in
  check_id "missing graph" "{\"id\":\"q7\",\"cmd\":\"select\"}" (Json.Str "q7");
  check_id "bad edit op"
    "{\"id\":8,\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"nope\"}]}"
    (Json.Num 8.);
  check_id "bad edit key"
    "{\"id\":9,\"cmd\":\"edit\",\"graph\":\"3dft\",\"edits\":[{\"op\":\"add_edge\",\"src\":\"b1\",\"to\":\"a2\"}]}"
    (Json.Num 9.)

(* Per-request cache stats are deltas; session stats are cumulative. *)
let test_cache_stats_accumulate () =
  let sess = Session.create () in
  let line = "{\"cmd\":\"select\",\"graph\":\"3dft\"}" in
  let stats j =
    let s =
      member_exn "select" "eval_cache" (member_exn "select" "stats" j)
    in
    ( as_int (member_exn "select" "hits" s),
      as_int (member_exn "select" "misses" s),
      as_int (member_exn "select" "session_hits" s),
      as_int (member_exn "select" "session_misses" s) )
  in
  let h1, m1, sh1, sm1 = stats (parse_ok "first" (Server.handle_line sess line)) in
  let h2, m2, sh2, sm2 = stats (parse_ok "second" (Server.handle_line sess line)) in
  (* First request costs the selected set once: a miss.  The repeat is a
     pure memo hit, and the session totals accumulate both. *)
  Alcotest.(check (pair int int)) "cold request delta" (0, 1) (h1, m1);
  Alcotest.(check (pair int int)) "cold session totals" (0, 1) (sh1, sm1);
  Alcotest.(check (pair int int)) "warm request delta" (1, 0) (h2, m2);
  Alcotest.(check (pair int int)) "warm session totals" (1, 1) (sh2, sm2);
  let h, m = Session.session_cache_stats sess in
  Alcotest.(check (pair int int)) "session_cache_stats agrees" (sh2, sm2) (h, m)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          qtest ~count:100 "request_of_line inverts request_to_line"
            request_gen request_roundtrip;
          qtest ~count:10 "responses are single parseable lines" seed_gen
            response_line_roundtrip;
        ] );
      ( "fidelity",
        [
          qtest ~count:10 "serve pipeline = Pipeline.run" seed_gen
            serve_matches_pipeline;
          qtest ~count:10 "serve select = Select.select" seed_gen
            serve_matches_select;
        ] );
      ( "online edits",
        [
          qtest ~count:8
            "edit answers apply_edits' graph without re-classifying" seed_gen
            serve_edit_matches;
        ] );
      ( "warm state",
        [
          qtest ~count:8 "warm responses = cold responses" seed_gen
            warm_equals_cold;
          qtest ~count:8 "warm certify re-evaluates nothing" seed_gen
            warm_certify_evaluates_nothing;
          qtest ~count:8 "session certify = cold Pipeline.certify" seed_gen
            session_certify_matches_cold;
        ] );
      ( "determinism",
        [ qtest ~count:5 "response stream identical at jobs 1 and 4" seed_gen jobs_identical ] );
      ( "failure handling",
        [
          Alcotest.test_case "malformed requests leave the session serving"
            `Quick test_malformed_keeps_session_alive;
          Alcotest.test_case "errors echo the request id" `Quick
            test_error_echoes_id;
          Alcotest.test_case "cache stats: per-request deltas, session totals"
            `Quick test_cache_stats_accumulate;
        ] );
    ]
