(* DFG substrate: builder, cycle detection, topological order, levels,
   reachability, text format, DOT export — unit tests plus properties over
   random layered DAGs. *)

module Color = Mps_dfg.Color
module Dfg = Mps_dfg.Dfg
module Topo = Mps_dfg.Topo
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Parse = Mps_dfg.Parse
module Dot = Mps_dfg.Dot
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let dag_gen =
  QCheck2.Gen.(
    map
      (fun seed -> Random_dag.generate ~seed ())
      (0 -- 10_000))

(* --- colors --- *)

let test_color () =
  Alcotest.(check char) "round trip" 'q' (Color.to_char (Color.of_char 'q'));
  Alcotest.(check int) "index of a" 0 (Color.to_index Color.add);
  Alcotest.(check char) "of_int 27" 'B' (Color.to_char (Color.of_int 27));
  Alcotest.check_raises "dummy rejected"
    (Invalid_argument "Color.of_char: invalid color '-'") (fun () ->
      ignore (Color.of_char '-'));
  Alcotest.check_raises "space rejected"
    (Invalid_argument "Color.of_char: invalid color ' '") (fun () ->
      ignore (Color.of_char ' '))

(* --- builder --- *)

let test_builder_basics () =
  let b = Dfg.Builder.create () in
  let x = Dfg.Builder.add_node b ~name:"x" Color.add in
  let y = Dfg.Builder.add_node b Color.mul in
  Dfg.Builder.add_edge b x y;
  Dfg.Builder.add_edge b x y;
  (* duplicate collapses *)
  let g = Dfg.Builder.build b in
  Alcotest.(check int) "two nodes" 2 (Dfg.node_count g);
  Alcotest.(check int) "one edge" 1 (Dfg.edge_count g);
  Alcotest.(check string) "default name" "c1" (Dfg.name g y);
  Alcotest.(check (list int)) "succs" [ y ] (Dfg.succs g x);
  Alcotest.(check (list int)) "preds" [ x ] (Dfg.preds g y);
  Alcotest.(check (list int)) "sources" [ x ] (Dfg.sources g);
  Alcotest.(check (list int)) "sinks" [ y ] (Dfg.sinks g)

let test_builder_rejects () =
  let b = Dfg.Builder.create () in
  let x = Dfg.Builder.add_node b ~name:"x" Color.add in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Dfg.Builder.add_node: duplicate name \"x\"") (fun () ->
      ignore (Dfg.Builder.add_node b ~name:"x" Color.add));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Dfg.Builder.add_edge: self-loop on node 0") (fun () ->
      Dfg.Builder.add_edge b x x);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Dfg.Builder: unknown node id 5") (fun () ->
      Dfg.Builder.add_edge b x 5)

let test_cycle_detection () =
  let b = Dfg.Builder.create () in
  let x = Dfg.Builder.add_node b ~name:"x" Color.add in
  let y = Dfg.Builder.add_node b ~name:"y" Color.add in
  let z = Dfg.Builder.add_node b ~name:"z" Color.add in
  Dfg.Builder.add_edge b x y;
  Dfg.Builder.add_edge b y z;
  Dfg.Builder.add_edge b z x;
  (match Dfg.Builder.build b with
  | exception Dfg.Cycle names ->
      Alcotest.(check (list string)) "cycle names" [ "x"; "y"; "z" ]
        (List.sort String.compare names)
  | _ -> Alcotest.fail "cycle not detected")

let test_builder_snapshot () =
  let b = Dfg.Builder.create () in
  let x = Dfg.Builder.add_node b ~name:"x" Color.add in
  let g1 = Dfg.Builder.build b in
  let y = Dfg.Builder.add_node b ~name:"y" Color.sub in
  Dfg.Builder.add_edge b x y;
  let g2 = Dfg.Builder.build b in
  Alcotest.(check int) "snapshot unchanged" 1 (Dfg.node_count g1);
  Alcotest.(check int) "extended" 2 (Dfg.node_count g2)

let test_of_alist_errors () =
  Alcotest.check_raises "unknown edge endpoint"
    (Invalid_argument "Dfg.of_alist: unknown node \"nope\" in edge") (fun () ->
      ignore (Dfg.of_alist [ ("x", Color.add) ] [ ("x", "nope") ]))

let test_induced_and_reverse () =
  let g = Pg.fig4_small () in
  let sub, mapping = Dfg.induced g [ Dfg.find g "a1"; Dfg.find g "a2"; Dfg.find g "b4" ] in
  Alcotest.(check int) "3 nodes" 3 (Dfg.node_count sub);
  Alcotest.(check int) "2 edges (a1->a2->b4)" 2 (Dfg.edge_count sub);
  Alcotest.(check string) "mapping back" "a1" (Dfg.name g mapping.(0));
  let r = Dfg.reverse g in
  Alcotest.(check int) "reverse preserves edges" (Dfg.edge_count g) (Dfg.edge_count r);
  Alcotest.(check (list string)) "reverse sources = sinks"
    (List.sort String.compare (List.map (Dfg.name g) (Dfg.sinks g)))
    (List.sort String.compare (List.map (Dfg.name r) (Dfg.sources r)))

(* --- topo --- *)

let test_topo_order () =
  let g = Pg.fig2_3dft () in
  Alcotest.(check bool) "valid order" true (Topo.is_order g (Topo.order g));
  Alcotest.(check bool) "reject wrong perm" false
    (Topo.is_order g (List.rev (Topo.order g)));
  Alcotest.(check bool) "reject short list" false (Topo.is_order g [ 0; 1 ])

let test_longest_path () =
  let g = Pg.fig2_3dft () in
  Alcotest.(check int) "5 nodes on the critical path" 5 (Topo.longest_path_length g);
  let p = Topo.longest_path g in
  Alcotest.(check int) "path length matches" 5 (List.length p);
  (* consecutive nodes are edges *)
  let rec consecutive = function
    | a :: (b :: _ as rest) -> List.mem b (Dfg.succs g a) && consecutive rest
    | _ -> true
  in
  Alcotest.(check bool) "is a path" true (consecutive p)

(* --- levels (generic properties; Table 1 exactness lives in
   test_paper_tables) --- *)

let check_levels_invariants g =
  let lv = Levels.compute g in
  List.for_all
    (fun i ->
      Levels.asap lv i <= Levels.alap lv i
      && Levels.asap lv i >= 0
      && Levels.alap lv i <= Levels.asap_max lv
      && Levels.height lv i >= 1
      && List.for_all (fun s -> Levels.asap lv s > Levels.asap lv i) (Dfg.succs g i)
      && List.for_all (fun s -> Levels.height lv i > Levels.height lv s) (Dfg.succs g i))
    (Dfg.nodes g)

let test_levels_small () =
  let g = Pg.fig4_small () in
  let lv = Levels.compute g in
  let at name = Dfg.find g name in
  Alcotest.(check int) "asap a2" 1 (Levels.asap lv (at "a2"));
  Alcotest.(check int) "alap a3" 1 (Levels.alap lv (at "a3"));
  Alcotest.(check int) "height a1" 3 (Levels.height lv (at "a1"));
  Alcotest.(check int) "mobility a3" 1 (Levels.mobility lv (at "a3"));
  Alcotest.(check bool) "a1 critical" true (Levels.critical lv (at "a1"));
  Alcotest.(check int) "lower bound" 3 (Levels.lower_bound_cycles lv)

let test_span_and_bound () =
  let g = Pg.fig2_3dft () in
  let lv = Levels.compute g in
  let at name = Dfg.find g name in
  (* The paper's §5.1 example: Span({a24, b3}) = 1. *)
  Alcotest.(check int) "span {a24,b3}" 1 (Levels.span lv [ at "a24"; at "b3" ]);
  Alcotest.(check int) "bound {a24,b3}" 6 (Levels.span_bound lv [ at "a24"; at "b3" ]);
  (* Zero span for co-leveled nodes. *)
  Alcotest.(check int) "span {b3,b6}" 0 (Levels.span lv [ at "b3"; at "b6" ])

let levels_props =
  [
    qtest "levels: invariants on random DAGs" dag_gen check_levels_invariants;
    qtest "levels: asap_max+1 = longest path" dag_gen (fun g ->
        Levels.lower_bound_cycles (Levels.compute g) = Topo.longest_path_length g);
  ]

(* --- reachability --- *)

let test_reachability_fig2 () =
  let g = Pg.fig2_3dft () in
  let r = Reachability.compute g in
  let at name = Dfg.find g name in
  Alcotest.(check bool) "a17 follows b6" true
    (Reachability.is_follower r ~of_:(at "b6") (at "a17"));
  Alcotest.(check bool) "b6 does not follow a17" false
    (Reachability.is_follower r ~of_:(at "a17") (at "b6"));
  (* The §3 example: A1 is an antichain, A2 is not. *)
  let ids = List.map at in
  Alcotest.(check bool) "A1 antichain" true
    (Reachability.is_antichain r (ids [ "b1"; "a4"; "b3"; "b6"; "a16"; "c10" ]));
  Alcotest.(check bool) "A2 not antichain" false
    (Reachability.is_antichain r (ids [ "b1"; "a4"; "b3"; "b6"; "a16"; "a17" ]));
  Alcotest.(check int) "52 comparable pairs" 52 (Reachability.comparable_pairs r)

let reachability_props =
  [
    qtest "reachability: matches per-edge closure" dag_gen (fun g ->
        let r = Reachability.compute g in
        (* Every edge implies descendant; descendants are transitively
           closed. *)
        List.for_all
          (fun (s, d) -> Reachability.is_follower r ~of_:s d)
          (Dfg.edges g)
        && List.for_all
             (fun i ->
               Mps_util.Bitset.fold
                 (fun j acc ->
                   acc
                   && Mps_util.Bitset.subset
                        (Reachability.descendants r j)
                        (Reachability.descendants r i))
                 (Reachability.descendants r i)
                 true)
             (Dfg.nodes g));
    qtest "reachability: parallel_set symmetric" dag_gen (fun g ->
        let r = Reachability.compute g in
        List.for_all
          (fun i ->
            List.for_all
              (fun j -> Reachability.parallelizable r i j = Reachability.parallelizable r j i)
              (Dfg.nodes g))
          (Dfg.nodes g));
  ]

(* --- text format --- *)

let test_parse_roundtrip () =
  let g = Pg.fig2_3dft () in
  let g' = Parse.of_string (Parse.to_string g) in
  Alcotest.(check bool) "round trip" true (Dfg.equal g g')

let test_parse_comments_and_errors () =
  let g = Parse.of_string "# header\nnode x a  # trailing\n\nnode y b\nedge x y\n" in
  Alcotest.(check int) "two nodes" 2 (Dfg.node_count g);
  (match Parse.of_string "node x a\nedge x zz\n" with
  | exception Parse.Parse_error { line; _ } -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "unknown edge accepted");
  match Parse.of_string "nonsense here\n" with
  | exception Parse.Parse_error { line; _ } -> Alcotest.(check int) "line" 1 line
  | _ -> Alcotest.fail "bad directive accepted"

let parse_props =
  [
    qtest "parse: to_string/of_string identity" dag_gen (fun g ->
        Dfg.equal g (Parse.of_string (Parse.to_string g)));
  ]

(* --- dot --- *)

let test_dot_output () =
  let g = Pg.fig4_small () in
  let lv = Levels.compute g in
  let dot = Dot.to_dot ~graph_name:"fig4" ~levels:lv ~highlight:[ 0 ] g in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" fragment)
        true
        (let n = String.length dot and m = String.length fragment in
         let rec go i = i + m <= n && (String.sub dot i m = fragment || go (i + 1)) in
         go 0))
    [ "digraph fig4"; "\"a1\" -> \"a2\""; "shape=box"; "fillcolor=lightgrey"; "0/0/h3" ]

(* The DOT subset of [Parse] exists to read back what [Dot.to_dot] writes:
   node statements come out in id order and names carry the color in their
   first character, so emit → re-parse must reproduce the graph exactly. *)
let dot_props =
  [
    qtest "dot: to_dot re-parses to an equal graph" dag_gen (fun g ->
        Dfg.equal g (Parse.of_string (Dot.to_dot g)));
    qtest "dot: level/highlight attributes don't disturb the round trip"
      dag_gen
      (fun g ->
        let lv = Levels.compute g in
        let dot =
          Dot.to_dot ~graph_name:"rt" ~levels:lv ~highlight:(Dfg.sources g) g
        in
        let g' = Parse.of_string dot in
        Dfg.equal g g' && Parse.to_string g = Parse.to_string g');
  ]

let () =
  Alcotest.run "dfg"
    [
      ("color", [ Alcotest.test_case "basics" `Quick test_color ]);
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "rejections" `Quick test_builder_rejects;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "snapshot semantics" `Quick test_builder_snapshot;
          Alcotest.test_case "of_alist errors" `Quick test_of_alist_errors;
          Alcotest.test_case "induced and reverse" `Quick test_induced_and_reverse;
        ] );
      ( "topo",
        [
          Alcotest.test_case "order" `Quick test_topo_order;
          Alcotest.test_case "longest path" `Quick test_longest_path;
        ] );
      ( "levels",
        [
          Alcotest.test_case "small example" `Quick test_levels_small;
          Alcotest.test_case "span and theorem 1 bound" `Quick test_span_and_bound;
        ]
        @ levels_props );
      ( "reachability",
        [ Alcotest.test_case "fig2 relations" `Quick test_reachability_fig2 ]
        @ reachability_props );
      ( "parse",
        [
          Alcotest.test_case "roundtrip fig2" `Quick test_parse_roundtrip;
          Alcotest.test_case "comments and errors" `Quick test_parse_comments_and_errors;
        ]
        @ parse_props );
      ("dot", Alcotest.test_case "fragments" `Quick test_dot_output :: dot_props);
    ]
