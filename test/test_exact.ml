(* Exact backend: the certifying branch-and-bound must agree with the
   exhaustive oracle wherever both terminate, never lose to the portfolio
   it is seeded from, be byte-identical at any --jobs (result, counters
   and ban list alike), publish a sound ban list, and find the same
   optimum with and without pruning.

   Costing note: a set's cycles are well-defined only relative to a
   pattern order (the list scheduler breaks score ties by position), so
   both searches cost every set in its canonical order — pool patterns in
   canonical pool order, a fabricated fallback last — and the properties
   below compare against independently recomputed canonical costs. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Eval = Mps_scheduler.Eval
module Portfolio = Mps_select.Portfolio
module Exact = Mps_select.Exact
module Exhaustive = Mps_select.Exhaustive
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Pool = Mps_exec.Pool
module Random_dag = Mps_workloads.Random_dag

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)
let capacity = 3

(* Tiny graphs the exhaustive oracle closes comfortably: ≤ 8 nodes. *)
let tiny_graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 2 + (seed mod 2);
      width = 2;
    }
  in
  let g = Random_dag.generate ~params ~seed () in
  assert (Dfg.node_count g <= 8);
  g

let classify g = Classify.compute ~capacity (Enumerate.make_ctx g)

(* The canonical costing order the searches use, recomputed independently:
   pool members by descending size then spelling (the lattice-respecting
   pool order), foreign patterns last by spelling. *)
let canonical cls set =
  let pool =
    List.sort
      (fun p q ->
        let c = compare (Pattern.size q) (Pattern.size p) in
        if c <> 0 then c else Pattern.compare p q)
      (Classify.patterns cls)
  in
  let index_of p =
    let rec go i = function
      | [] -> None
      | q :: tl -> if Pattern.equal p q then Some i else go (i + 1) tl
    in
    go 0 pool
  in
  List.map
    (fun p ->
      match index_of p with
      | Some i -> ((0, i, ""), p)
      | None -> ((1, 0, Pattern.to_string p), p))
    set
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* Exact = exhaustive: same optimal cycles on every tiny graph, under both
   priorities, and the certificate's set reproduces its claimed cycles. *)
let exact_equals_exhaustive seed =
  let g = tiny_graph ~seed in
  let cls = classify g in
  let pdef = 2 + (seed mod 2) in
  List.for_all
    (fun priority ->
      let ex = Exhaustive.search ~priority ~pdef cls in
      let ct = Exact.search ~priority ~pdef cls in
      (not ex.Exhaustive.truncated)
      && ct.Exact.proven
      && ct.Exact.optimal_cycles = ex.Exhaustive.best_cycles
      && (ct.Exact.optimal_cycles = max_int
         || Eval.cycles ~priority (Eval.make g) ct.Exact.optimal
            = ct.Exact.optimal_cycles))
    [ Eval.F1; Eval.F2 ]

(* Seeded with every portfolio set, exact can only tie or beat each of
   them (canonical costing). *)
let portfolio_never_beats_exact seed =
  let g = tiny_graph ~seed in
  let cls = classify g in
  let pdef = 3 in
  let o = Portfolio.run ~pdef cls in
  let sets =
    List.filter_map
      (fun e ->
        if e.Portfolio.cycles = max_int then None else Some e.Portfolio.patterns)
      o.Portfolio.all
  in
  let ct = Exact.search ~seeds:sets ~pdef cls in
  let ev = Eval.make g in
  List.for_all
    (fun set ->
      match Eval.cycles ev (canonical cls set) with
      | c -> ct.Exact.optimal_cycles <= c
      | exception Eval.Unschedulable _ -> true)
    sets

let fingerprint ct =
  let pats ps = String.concat "," (List.map Pattern.to_string ps) in
  let entry e =
    Printf.sprintf "%s=%s"
      (pats e.Exact.banned)
      (match e.Exact.bound with
      | Exact.Infeasible -> "inf"
      | Exact.Cost c -> string_of_int c)
  in
  let s = ct.Exact.stats in
  Printf.sprintf "%s/%d/%d/%d/%d/%d/%d/%d/%b/%s" (pats ct.Exact.optimal)
    ct.Exact.optimal_cycles s.Exact.nodes_visited s.Exact.pruned_span
    s.Exact.pruned_color s.Exact.pruned_ban s.Exact.pruned_dominance
    s.Exact.evaluated ct.Exact.proven
    (String.concat ";" (List.map entry ct.Exact.bans))

(* The whole certificate — optimal set, counters, ban list — is
   byte-identical between the sequential path and a 4-worker pool. *)
let jobs_identical seed =
  let g = tiny_graph ~seed in
  let cls = classify g in
  let seq = fingerprint (Exact.search ~pdef:3 cls) in
  Pool.with_pool ~jobs:4 (fun pool ->
      fingerprint (Exact.search ~pool ~pdef:3 cls) = seq)

(* Ban-list soundness: an Infeasible entry really cannot schedule the
   graph; a Cost entry reproduces its bound verbatim and never beats the
   certified optimum — no banned set is feasible-and-better. *)
let ban_list_sound seed =
  let g = tiny_graph ~seed in
  let cls = classify g in
  let ct = Exact.search ~pdef:3 cls in
  let ev = Eval.make g in
  ct.Exact.bans <> []
  && List.for_all
       (fun e ->
         match e.Exact.bound with
         | Exact.Infeasible -> (
             match Eval.cycles ev e.Exact.banned with
             | _ -> false
             | exception Eval.Unschedulable _ -> true)
         | Exact.Cost c ->
             Eval.cycles ev e.Exact.banned = c
             && c >= ct.Exact.optimal_cycles)
       ct.Exact.bans

(* Pruning is sound: every rule on finds the same optimum as pure
   enumeration, while visiting no more nodes. *)
let pruning_preserves_optimum seed =
  let g = tiny_graph ~seed in
  let cls = classify g in
  let a = Exact.search ~pdef:3 cls in
  let b = Exact.search ~pruning:Exact.no_pruning ~pdef:3 cls in
  a.Exact.optimal_cycles = b.Exact.optimal_cycles
  && a.Exact.stats.Exact.nodes_visited <= b.Exact.stats.Exact.nodes_visited

let () =
  Alcotest.run "exact backend"
    [
      ( "oracle",
        [
          qtest "exact = exhaustive on tiny graphs, F1 and F2" seed_gen
            exact_equals_exhaustive;
          qtest "pruning preserves the optimum" seed_gen
            pruning_preserves_optimum;
        ] );
      ( "portfolio",
        [
          qtest "no portfolio strategy beats seeded exact" seed_gen
            portfolio_never_beats_exact;
        ] );
      ( "determinism",
        [
          qtest ~count:10 "certificate identical at --jobs 1 and 4" seed_gen
            jobs_identical;
        ] );
      ( "ban list",
        [ qtest "no banned set is feasible-and-better" seed_gen ban_list_sound ] );
    ]
