(* The pattern universe: interning injectivity, memoized facts, the lazy
   dominance matrix against the direct multiset order, merge translation,
   and id determinism of parallel classification. *)

module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Universe = Mps_pattern.Universe
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Pool = Mps_exec.Pool
module Random_dag = Mps_workloads.Random_dag

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pat = Pattern.of_string

let pattern_gen =
  QCheck2.Gen.(
    map
      (fun chars -> Pattern.of_colors (List.map Color.of_char chars))
      (list_size (0 -- 6) (char_range 'a' 'd')))

let pool_gen = QCheck2.Gen.(list_size (1 -- 20) pattern_gen)

let test_intern_basics () =
  let u = Universe.create () in
  let a = Universe.intern u (pat "aab") in
  let b = Universe.intern u (pat "c") in
  let a' = Universe.intern u (pat "aba") in
  Alcotest.(check bool) "same pattern, same id" true (Pattern.Id.equal a a');
  Alcotest.(check bool) "distinct patterns, distinct ids" false
    (Pattern.Id.equal a b);
  Alcotest.(check int) "cardinal" 2 (Universe.cardinal u);
  Alcotest.(check int) "ids are dense from 0" 0 (Pattern.Id.to_int a);
  Alcotest.(check int) "allocation order" 1 (Pattern.Id.to_int b);
  Alcotest.(check bool) "pattern round-trips" true
    (Pattern.equal (pat "aab") (Universe.pattern u a));
  Alcotest.(check bool) "find hits" true
    (match Universe.find u (pat "aab") with
    | Some id -> Pattern.Id.equal id a
    | None -> false);
  Alcotest.(check bool) "find misses without allocating" true
    (Universe.find u (pat "abc") = None && Universe.cardinal u = 2)

let test_memoized_facts () =
  let u = Universe.create () in
  let id = Universe.intern u (pat "cabca") in
  Alcotest.(check int) "size" 5 (Universe.size u id);
  Alcotest.(check string) "canonical spelling" "aabcc" (Universe.to_string u id);
  Alcotest.(check string) "padded spelling" "aabcc--"
    (Universe.padded_string u ~capacity:7 id);
  Alcotest.(check int) "color set" 3
    (Color.Set.cardinal (Universe.color_set u id));
  let bogus = Pattern.Id.of_int 7 in
  Alcotest.check_raises "dead id rejected"
    (Invalid_argument "Universe.size: id 7 not in universe (1 ids)") (fun () ->
      ignore (Universe.size u bogus))

let test_sorted_ids () =
  let u = Universe.create () in
  List.iter
    (fun s -> ignore (Universe.intern u (pat s)))
    [ "cc"; "a"; "aab"; "b"; "a" ];
  let sorted =
    Universe.sorted_ids u |> Array.to_list
    |> List.map (Universe.to_string u)
  in
  Alcotest.(check (list string)) "sorted by Pattern.compare"
    (List.sort compare [ "cc"; "a"; "aab"; "b" ])
    (List.sort compare sorted);
  Alcotest.(check (list string)) "order itself is Pattern.compare order"
    (List.map Pattern.to_string (List.sort Pattern.compare (List.map pat [ "cc"; "a"; "aab"; "b" ])))
    sorted

let test_merge () =
  let master = Universe.create () in
  let m0 = Universe.intern master (pat "ab") in
  let scratch = Universe.create () in
  List.iter
    (fun s -> ignore (Universe.intern scratch (pat s)))
    [ "cc"; "ab"; "a" ];
  let remap = Universe.merge ~into:master scratch in
  Alcotest.(check int) "remap covers the scratch" 3 (Array.length remap);
  Array.iteri
    (fun i id ->
      Alcotest.(check bool) "remapped id holds the same pattern" true
        (Pattern.equal
           (Universe.pattern scratch (Pattern.Id.of_int i))
           (Universe.pattern master id)))
    remap;
  Alcotest.(check bool) "shared pattern reuses the master id" true
    (Pattern.Id.equal remap.(1) m0);
  Alcotest.(check int) "master grew by the new patterns only" 3
    (Universe.cardinal master);
  Alcotest.(check int) "scratch untouched" 3 (Universe.cardinal scratch)

(* Reference implementation for the matrix. *)
let direct u q ~of_ =
  Pattern.subpattern (Universe.pattern u q) ~of_:(Universe.pattern u of_)

let all_pairs_agree u ids =
  List.for_all
    (fun q ->
      List.for_all
        (fun p ->
          Universe.subpattern u q ~of_:p = direct u q ~of_:p
          && Universe.proper_subpattern u q ~of_:p
             = (direct u q ~of_:p && not (Pattern.Id.equal q p)))
        ids)
    ids

let props =
  [
    qtest "universe: interning is injective (id <-> pattern)" pool_gen
      (fun pats ->
        let u = Universe.create () in
        let ids = List.map (Universe.intern u) pats in
        List.for_all2
          (fun p id -> Pattern.equal p (Universe.pattern u id))
          pats ids
        && Universe.cardinal u
           = List.length (List.sort_uniq Pattern.compare pats));
    qtest "universe: matrix agrees with Pattern.subpattern" pool_gen
      (fun pats ->
        let u = Universe.create () in
        let ids = List.map (Universe.intern u) pats in
        all_pairs_agree u ids);
    qtest "universe: matrix stays correct across incremental interning"
      QCheck2.Gen.(pair pool_gen pool_gen)
      (fun (batch1, batch2) ->
        let u = Universe.create () in
        let ids1 = List.map (Universe.intern u) batch1 in
        (* Force the matrix on the first batch, then extend the universe. *)
        let ok1 = all_pairs_agree u ids1 in
        let ids2 = List.map (Universe.intern u) batch2 in
        ok1 && all_pairs_agree u (ids1 @ ids2));
    qtest "universe: merge translation table preserves patterns"
      QCheck2.Gen.(pair pool_gen pool_gen)
      (fun (master_pats, scratch_pats) ->
        let master = Universe.create () in
        List.iter (fun p -> ignore (Universe.intern master p)) master_pats;
        let scratch = Universe.create () in
        List.iter (fun p -> ignore (Universe.intern scratch p)) scratch_pats;
        let remap = Universe.merge ~into:master scratch in
        Array.length remap = Universe.cardinal scratch
        && Array.for_all
             (fun id -> Pattern.Id.to_int id < Universe.cardinal master)
             remap
        && Array.to_list remap
           |> List.mapi (fun i id ->
                  Pattern.equal
                    (Universe.pattern scratch (Pattern.Id.of_int i))
                    (Universe.pattern master id))
           |> List.for_all Fun.id);
  ]

(* Parallel classification must assign the same ids, counts and frequency
   vectors as the sequential walk — the determinism the whole refactor
   leans on.  One pool for all seeds; domain spawning is the slow part. *)
let test_parallel_classify_determinism () =
  let dump c =
    let u = Classify.universe c in
    Classify.fold_ids
      (fun id ~count ~freq acc ->
        Printf.sprintf "%d:%s:%d:%s" (Pattern.Id.to_int id)
          (Universe.to_string u id) count
          (String.concat "," (List.map string_of_int (Array.to_list freq)))
        :: acc)
      c []
    |> List.rev
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun seed ->
          let params =
            { Random_dag.default_params with Random_dag.layers = 5; width = 4 }
          in
          let g = Random_dag.generate ~params ~seed () in
          let seq =
            Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g)
          in
          let par =
            Classify.compute ~pool ~span_limit:1 ~capacity:5
              (Enumerate.make_ctx g)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d: ids/counts/frequencies identical" seed)
            (dump seq) (dump par))
        [ 1; 2; 3; 4; 5 ])

let test_classify_external_universe () =
  let g = Random_dag.generate ~seed:7 () in
  let u = Universe.create () in
  let c = Classify.compute ~span_limit:1 ~capacity:5 ~universe:u (Enumerate.make_ctx g) in
  Alcotest.(check bool) "classification interned into the caller's arena" true
    (Classify.universe c == u);
  List.iter
    (fun p ->
      Alcotest.(check bool) "every classified pattern is interned" true
        (Universe.find u p <> None))
    (Classify.patterns c)

let () =
  Alcotest.run "universe"
    [
      ( "basics",
        [
          Alcotest.test_case "intern" `Quick test_intern_basics;
          Alcotest.test_case "memoized facts" `Quick test_memoized_facts;
          Alcotest.test_case "sorted ids" `Quick test_sorted_ids;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ("properties", props);
      ( "classification",
        [
          Alcotest.test_case "jobs 1 vs 4 ids identical" `Quick
            test_parallel_classify_determinism;
          Alcotest.test_case "external universe" `Quick
            test_classify_external_universe;
        ] );
    ]
