(* Tests for Mps_obs: disabled collectors record nothing, span trees are
   well-formed (even across exceptions), counter totals are identical for
   any --jobs, and the Chrome trace JSON round-trips through the bundled
   parser. *)

module Obs = Mps_obs.Obs
module Json = Mps_util.Json
module Pipeline = Core.Pipeline
module Pg = Mps_workloads.Paper_graphs

let test_disabled_is_noop () =
  (* No collector installed: span/count/observe must be inert. *)
  Alcotest.(check bool) "inactive outside run" false (Obs.active ());
  let r =
    Obs.span "ghost" (fun () ->
        Obs.count "ghost.counter" 7;
        Obs.observe "ghost.dist" 3;
        42)
  in
  Alcotest.(check int) "span is transparent" 42 r;
  (* And a fresh collector that never ran anything holds nothing. *)
  let obs = Obs.create () in
  Alcotest.(check int) "no events" 0 (Obs.event_count obs);
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters obs));
  Alcotest.(check string) "empty summary" "no events recorded\n"
    (Obs.summary_table obs)

let test_nesting_well_formed () =
  let obs = Obs.create () in
  Obs.run obs (fun () ->
      Alcotest.(check bool) "active inside run" true (Obs.active ());
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> Obs.count "c" 1);
          (* A span body that raises must still close its span. *)
          (try Obs.span "boom" (fun () -> failwith "boom")
           with Failure _ -> ());
          Obs.span "inner" (fun () -> Obs.count "c" 2)));
  Alcotest.(check bool) "well formed" true (Obs.well_formed obs);
  let paths = List.map (fun p -> p.Obs.path) (Obs.phases obs) in
  Alcotest.(check (list string))
    "phase paths"
    [ "outer"; "outer/boom"; "outer/inner" ]
    paths;
  let inner = List.find (fun p -> p.Obs.path = "outer/inner") (Obs.phases obs) in
  Alcotest.(check int) "inner called twice" 2 inner.Obs.calls;
  match Obs.counters obs with
  | [ c ] ->
      Alcotest.(check string) "counter name" "c" c.Obs.name;
      Alcotest.(check int) "counter total" 3 c.Obs.total;
      Alcotest.(check int) "counter samples" 2 c.Obs.samples
  | cs -> Alcotest.failf "expected one counter, got %d" (List.length cs)

let pipeline_counters jobs =
  let obs = Obs.create () in
  let options = { Pipeline.default_options with Pipeline.jobs } in
  let (_ : Pipeline.t) =
    Obs.run obs (fun () -> Pipeline.run ~options (Pg.fig2_3dft ()))
  in
  List.map
    (fun c ->
      Printf.sprintf "%s/%s/%d/%d/%d/%d" c.Obs.name
        (match c.Obs.kind with Obs.Sum -> "sum" | Obs.Dist -> "dist")
        c.Obs.samples c.Obs.total c.Obs.vmin c.Obs.vmax)
    (Obs.counters obs)

let test_counters_jobs_invariant () =
  let seq = pipeline_counters 1 in
  Alcotest.(check bool) "some counters recorded" true (seq <> []);
  Alcotest.(check (list string)) "jobs 4 = jobs 1" seq (pipeline_counters 4)

let test_chrome_trace_roundtrip () =
  let obs = Obs.create () in
  let (_ : Pipeline.t) =
    Obs.run obs (fun () -> Pipeline.run (Pg.fig2_3dft ()))
  in
  let text = Obs.chrome_trace obs in
  (match Json.parse text with
  | Error m -> Alcotest.failf "trace does not parse: %s" m
  | Ok v -> (
      match Json.member "traceEvents" v with
      | Some (Json.Arr evs) ->
          Alcotest.(check bool) "has events" true (evs <> [])
      | _ -> Alcotest.fail "traceEvents missing or not an array"));
  match Obs.validate_chrome_trace text with
  | Ok n -> Alcotest.(check bool) "validated events" true (n > 0)
  | Error m -> Alcotest.failf "trace fails validation: %s" m

(* --- merge properties ----------------------------------------------------
   [Obs.merge] is the replay primitive: folding a precomputed aggregate must
   be indistinguishable from having recorded the individual samples, and
   merging must be grouping-invariant (pre-merging any prefix then the rest
   gives the same counter table).  These are the invariants the Eval memo
   cache and the pool's per-task buffers lean on. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* An op stream over two Sum counters (via [count]) and two Dist counters
   (via [observe]). *)
let ops_gen = QCheck2.Gen.(list_size (1 -- 40) (pair (0 -- 3) (1 -- 100)))

let record_op (idx, v) =
  if idx < 2 then Obs.count (Printf.sprintf "s%d" idx) v
  else Obs.observe (Printf.sprintf "d%d" (idx - 2)) v

(* Per-name aggregates of an op stream, in first-appearance order. *)
let aggregates ops =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (idx, v) ->
      let name, kind =
        if idx < 2 then (Printf.sprintf "s%d" idx, Obs.Sum)
        else (Printf.sprintf "d%d" (idx - 2), Obs.Dist)
      in
      match Hashtbl.find_opt tbl name with
      | None ->
          order := name :: !order;
          Hashtbl.replace tbl name (kind, 1, v, v, v)
      | Some (k, s, t, mn, mx) ->
          Hashtbl.replace tbl name (k, s + 1, t + v, min mn v, max mx v))
    ops;
  List.rev_map
    (fun n ->
      let k, s, t, mn, mx = Hashtbl.find tbl n in
      (n, k, s, t, mn, mx))
    !order

let fingerprint obs =
  List.map
    (fun c ->
      Printf.sprintf "%s/%s/%d/%d/%d/%d" c.Obs.name
        (match c.Obs.kind with Obs.Sum -> "sum" | Obs.Dist -> "dist")
        c.Obs.samples c.Obs.total c.Obs.vmin c.Obs.vmax)
    (Obs.counters obs)

let record_inline ops =
  let obs = Obs.create () in
  Obs.run obs (fun () -> List.iter record_op ops);
  fingerprint obs

let record_merged chunks =
  let obs = Obs.create () in
  Obs.run obs (fun () ->
      List.iter
        (fun chunk ->
          List.iter
            (fun (n, k, s, t, mn, mx) ->
              Obs.merge n k ~samples:s ~total:t ~vmin:mn ~vmax:mx)
            (aggregates chunk))
        chunks);
  fingerprint obs

let record_tasked n ops =
  let obs = Obs.create () in
  Obs.run obs (fun () ->
      match Obs.Task.begin_batch ~n with
      | None -> Alcotest.fail "collector installed but no task buffers"
      | Some bufs ->
          List.iteri
            (fun i op -> Obs.Task.run_in bufs.(i mod n) (fun () -> record_op op))
            ops;
          Obs.Task.commit bufs);
  fingerprint obs

let rec split_at k = function
  | rest when k = 0 -> ([], rest)
  | [] -> ([], [])
  | x :: rest ->
      let a, b = split_at (k - 1) rest in
      (x :: a, b)

let merge_props =
  [
    qtest "merge: replaying the aggregate = recording each sample" ops_gen
      (fun ops -> record_merged [ ops ] = record_inline ops);
    qtest "merge: grouping-invariant (any split point)"
      QCheck2.Gen.(pair ops_gen (0 -- 40))
      (fun (ops, k) ->
        let a, b = split_at (min k (List.length ops)) ops in
        record_merged [ a; b ] = record_inline ops);
    qtest "merge: task-buffer commit = inline recording, any batch width"
      QCheck2.Gen.(pair ops_gen (1 -- 4))
      (fun (ops, n) -> record_tasked n ops = record_inline ops);
  ]

(* The end-to-end version of the same invariant: the --stats totals an
   exact search reports are the sum of its per-task counters, so they match
   the certificate's own accounting and are identical for any --jobs. *)
let test_exact_counters_match_stats () =
  let module Exact = Mps_select.Exact in
  let module Classify = Mps_antichain.Classify in
  let module Enumerate = Mps_antichain.Enumerate in
  let module Pool = Mps_exec.Pool in
  let g = Pg.fig2_3dft () in
  let run jobs =
    let obs = Obs.create () in
    let ct =
      Obs.run obs (fun () ->
          let search pool =
            Exact.search ?pool ~pdef:3
              (Classify.compute ?pool ~span_limit:1 ~capacity:5
                 (Enumerate.make_ctx g))
          in
          if jobs = 1 then search None
          else Pool.with_pool ~jobs (fun p -> search (Some p)))
    in
    (fingerprint obs, ct)
  in
  let fp1, ct1 = run 1 in
  let fp4, _ = run 4 in
  Alcotest.(check (list string)) "counter tables jobs 4 = jobs 1" fp1 fp4;
  let obs_total name =
    match
      List.find_opt
        (fun line ->
          String.length line > String.length name
          && String.sub line 0 (String.length name) = name)
        fp1
    with
    | Some line -> Scanf.sscanf line "%s@/sum/%d/%d/%d/%d" (fun _ _ t _ _ -> t)
    | None -> Alcotest.failf "counter %s not recorded" name
  in
  let s = ct1.Exact.stats in
  List.iter
    (fun (name, expect) ->
      Alcotest.(check int) (name ^ " total = certificate") expect (obs_total name))
    [
      ("exact.nodes.visited", s.Exact.nodes_visited);
      ("exact.pruned.span", s.Exact.pruned_span);
      ("exact.pruned.color", s.Exact.pruned_color);
      ("exact.pruned.ban", s.Exact.pruned_ban);
      ("exact.pruned.dominance", s.Exact.pruned_dominance);
      ("exact.evaluated", s.Exact.evaluated);
    ]

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\n\ttab \\ slash");
        ("n", Json.Num 3.25);
        ("i", Json.Num 17.0);
        ("neg", Json.Num (-4.0));
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trips" true (v = v')
  | Error m -> Alcotest.failf "emitted JSON does not parse: %s" m

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{}trailing" ]

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "nesting well-formed" `Quick
            test_nesting_well_formed;
          Alcotest.test_case "counters independent of jobs" `Quick
            test_counters_jobs_invariant;
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_trace_roundtrip;
        ] );
      ( "merge",
        merge_props
        @ [
            Alcotest.test_case "exact --stats totals = certificate stats"
              `Quick test_exact_counters_match_stats;
          ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
