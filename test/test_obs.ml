(* Tests for Mps_obs: disabled collectors record nothing, span trees are
   well-formed (even across exceptions), counter totals are identical for
   any --jobs, and the Chrome trace JSON round-trips through the bundled
   parser. *)

module Obs = Mps_obs.Obs
module Json = Mps_obs.Json
module Pipeline = Core.Pipeline
module Pg = Mps_workloads.Paper_graphs

let test_disabled_is_noop () =
  (* No collector installed: span/count/observe must be inert. *)
  Alcotest.(check bool) "inactive outside run" false (Obs.active ());
  let r =
    Obs.span "ghost" (fun () ->
        Obs.count "ghost.counter" 7;
        Obs.observe "ghost.dist" 3;
        42)
  in
  Alcotest.(check int) "span is transparent" 42 r;
  (* And a fresh collector that never ran anything holds nothing. *)
  let obs = Obs.create () in
  Alcotest.(check int) "no events" 0 (Obs.event_count obs);
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters obs));
  Alcotest.(check string) "empty summary" "no events recorded\n"
    (Obs.summary_table obs)

let test_nesting_well_formed () =
  let obs = Obs.create () in
  Obs.run obs (fun () ->
      Alcotest.(check bool) "active inside run" true (Obs.active ());
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> Obs.count "c" 1);
          (* A span body that raises must still close its span. *)
          (try Obs.span "boom" (fun () -> failwith "boom")
           with Failure _ -> ());
          Obs.span "inner" (fun () -> Obs.count "c" 2)));
  Alcotest.(check bool) "well formed" true (Obs.well_formed obs);
  let paths = List.map (fun p -> p.Obs.path) (Obs.phases obs) in
  Alcotest.(check (list string))
    "phase paths"
    [ "outer"; "outer/boom"; "outer/inner" ]
    paths;
  let inner = List.find (fun p -> p.Obs.path = "outer/inner") (Obs.phases obs) in
  Alcotest.(check int) "inner called twice" 2 inner.Obs.calls;
  match Obs.counters obs with
  | [ c ] ->
      Alcotest.(check string) "counter name" "c" c.Obs.name;
      Alcotest.(check int) "counter total" 3 c.Obs.total;
      Alcotest.(check int) "counter samples" 2 c.Obs.samples
  | cs -> Alcotest.failf "expected one counter, got %d" (List.length cs)

let pipeline_counters jobs =
  let obs = Obs.create () in
  let options = { Pipeline.default_options with Pipeline.jobs } in
  let (_ : Pipeline.t) =
    Obs.run obs (fun () -> Pipeline.run ~options (Pg.fig2_3dft ()))
  in
  List.map
    (fun c ->
      Printf.sprintf "%s/%s/%d/%d/%d/%d" c.Obs.name
        (match c.Obs.kind with Obs.Sum -> "sum" | Obs.Dist -> "dist")
        c.Obs.samples c.Obs.total c.Obs.vmin c.Obs.vmax)
    (Obs.counters obs)

let test_counters_jobs_invariant () =
  let seq = pipeline_counters 1 in
  Alcotest.(check bool) "some counters recorded" true (seq <> []);
  Alcotest.(check (list string)) "jobs 4 = jobs 1" seq (pipeline_counters 4)

let test_chrome_trace_roundtrip () =
  let obs = Obs.create () in
  let (_ : Pipeline.t) =
    Obs.run obs (fun () -> Pipeline.run (Pg.fig2_3dft ()))
  in
  let text = Obs.chrome_trace obs in
  (match Json.parse text with
  | Error m -> Alcotest.failf "trace does not parse: %s" m
  | Ok v -> (
      match Json.member "traceEvents" v with
      | Some (Json.Arr evs) ->
          Alcotest.(check bool) "has events" true (evs <> [])
      | _ -> Alcotest.fail "traceEvents missing or not an array"));
  match Obs.validate_chrome_trace text with
  | Ok n -> Alcotest.(check bool) "validated events" true (n > 0)
  | Error m -> Alcotest.failf "trace fails validation: %s" m

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\n\ttab \\ slash");
        ("n", Json.Num 3.25);
        ("i", Json.Num 17.0);
        ("neg", Json.Num (-4.0));
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trips" true (v = v')
  | Error m -> Alcotest.failf "emitted JSON does not parse: %s" m

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{}trailing" ]

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "nesting well-formed" `Quick
            test_nesting_well_formed;
          Alcotest.test_case "counters independent of jobs" `Quick
            test_counters_jobs_invariant;
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_trace_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
