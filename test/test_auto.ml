(* Auto: per-graph strategy auto-selection must be transparent and honest.

   Contracts under test: feature extraction is deterministic and identical
   whether the analyses are recomputed or reused from an Eval context; an
   auto decision is always some portfolio backend's {e exact} result (same
   pattern list, same cycles) with non-negative regret against the full
   portfolio, and its reported cycles replay exactly on a fresh evaluation
   context; rule tables round-trip through their JSON codec while the
   validator rejects every malformed shape; fitting is deterministic and
   produces valid tables whose training examples all match some rule; and
   a serve session answering auto requests is byte-identical between
   --jobs 1 and 4. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Eval = Mps_scheduler.Eval
module Features = Mps_select.Features
module Auto = Mps_select.Auto
module Portfolio = Mps_select.Portfolio
module Suite = Mps_workloads.Suite
module Random_dag = Mps_workloads.Random_dag
module Pool = Mps_exec.Pool
module Json = Mps_util.Json
module Session = Mps_serve.Session
module Server = Mps_serve.Server

let capacity = 5

let random_graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 3 + (seed mod 4);
      width = 2 + (seed mod 3);
    }
  in
  Random_dag.generate ~params ~seed ()

let classify ?pool g =
  Classify.compute ?pool ~span_limit:1 ~capacity (Enumerate.make_ctx g)

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)

(* --- features ---------------------------------------------------------- *)

(* Extraction is a pure function of the graph: repeated extraction, and
   extraction through an Eval context's cached analyses, give structurally
   identical vectors; the named view agrees with the record. *)
let features_deterministic seed =
  let g = random_graph ~seed in
  let f1 = Features.extract g in
  let f2 = Features.extract g in
  let ev = Eval.make g in
  let f3 =
    Features.extract_with ~levels:(Eval.levels ev)
      ~reachability:(Eval.reachability ev) g
  in
  let assoc = Features.to_assoc f1 in
  f1 = f2 && f1 = f3
  && List.map fst assoc = Features.names
  && List.for_all (fun (n, v) -> Features.get f1 n = Some v) assoc
  && Features.get f1 "no_such_feature" = None
  && f1.Features.nodes = Dfg.node_count g
  && f1.Features.edges = Dfg.edge_count g
  && f1.Features.parallelism >= 0.
  && f1.Features.parallelism <= 1.
  && f1.Features.antichain_log2 >= 0.

(* --- the decision ------------------------------------------------------ *)

(* Whatever rule fires, the outcome is one portfolio entry verbatim: the
   same backend name, the same pattern list, the same cycles — never a
   novel set. *)
let auto_is_a_portfolio_member seed =
  let g = random_graph ~seed in
  let cls = classify g in
  let o = Auto.select ~pdef:3 cls in
  let p = Portfolio.run ~pdef:3 cls in
  match
    List.find_opt
      (fun (e : Portfolio.entry) ->
        String.equal e.Portfolio.strategy o.Auto.backend)
      p.Portfolio.all
  with
  | None -> false
  | Some e ->
      List.equal Pattern.equal e.Portfolio.patterns o.Auto.patterns
      && e.Portfolio.cycles = o.Auto.cycles

(* Regret accounting: the portfolio's best is a lower bound on the auto
   cycles, and the reported cycles are not just trusted — they replay
   exactly on a fresh context (the brute-force re-evaluation). *)
let regret_is_honest seed =
  let g = random_graph ~seed in
  let cls = classify g in
  let o = Auto.select ~pdef:3 cls in
  let p = Portfolio.run ~pdef:3 cls in
  let best =
    List.fold_left
      (fun acc (e : Portfolio.entry) -> min acc e.Portfolio.cycles)
      max_int p.Portfolio.all
  in
  o.Auto.cycles >= best
  && (o.Auto.cycles = max_int
     || Eval.cycles (Eval.make g) o.Auto.patterns = o.Auto.cycles)
  && o.Auto.rule_index >= 0
  && o.Auto.rule_index < List.length Auto.builtin_rules

(* The decision itself only reads the feature vector, so handing in a
   pre-extracted copy (the serve session's cache) changes nothing. *)
let cached_features_identical seed =
  let g = random_graph ~seed in
  let cls = classify g in
  let fv = Features.extract g in
  let o1 = Auto.select ~pdef:3 cls in
  let o2 = Auto.select ~features:fv ~pdef:3 cls in
  o1.Auto.backend = o2.Auto.backend
  && o1.Auto.rule_index = o2.Auto.rule_index
  && List.equal Pattern.equal o1.Auto.patterns o2.Auto.patterns
  && o1.Auto.cycles = o2.Auto.cycles

(* A classification computed in parallel feeds the same decision: auto
   inherits the classify determinism contract. *)
let jobs_identical_decision seed =
  let g = random_graph ~seed in
  let o1 = Auto.select ~pdef:3 (classify g) in
  let o4 =
    Pool.with_pool ~jobs:4 (fun pool -> Auto.select ~pdef:3 (classify ~pool g))
  in
  o1.Auto.backend = o4.Auto.backend
  && List.equal Pattern.equal o1.Auto.patterns o4.Auto.patterns
  && o1.Auto.cycles = o4.Auto.cycles

(* --- rule-table codec --------------------------------------------------- *)

let sample_rules =
  [
    {
      Auto.conds =
        [ { Auto.feature = "edges"; op = Auto.Le; threshold = 10.5 } ];
      backend = "eq8";
      provenance = "hand-written";
    };
    {
      Auto.conds =
        [
          { Auto.feature = "colors"; op = Auto.Gt; threshold = 2. };
          { Auto.feature = "parallelism"; op = Auto.Le; threshold = 0.5 };
        ];
      backend = "beam";
      provenance = "hand-written";
    };
    { Auto.conds = []; backend = "harvest:greedy"; provenance = "default" };
  ]

let roundtrip () =
  let through rules =
    match Json.parse (Json.to_string (Auto.to_json rules)) with
    | Error e -> Alcotest.failf "reparse failed: %s" e
    | Ok j -> (
        match Auto.of_json j with
        | Error e -> Alcotest.failf "of_json failed: %s" e
        | Ok r -> r)
  in
  Alcotest.(check bool) "builtin round-trips" true
    (through Auto.builtin_rules = Auto.builtin_rules);
  Alcotest.(check bool) "sample round-trips" true
    (through sample_rules = sample_rules);
  Alcotest.(check bool) "builtin validates" true
    (Auto.validate Auto.builtin_rules = Ok Auto.builtin_rules)

let rejects () =
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected rejection" what
  in
  expect_error "empty table" (Auto.validate []);
  expect_error "conditional last rule"
    (Auto.validate
       [
         {
           Auto.conds =
             [ { Auto.feature = "nodes"; op = Auto.Le; threshold = 5. } ];
           backend = "eq8";
           provenance = "";
         };
       ]);
  expect_error "non-terminal unconditional rule"
    (Auto.validate
       [
         { Auto.conds = []; backend = "eq8"; provenance = "" };
         { Auto.conds = []; backend = "beam"; provenance = "" };
       ]);
  expect_error "unknown feature"
    (Auto.validate
       [
         {
           Auto.conds =
             [ { Auto.feature = "zorp"; op = Auto.Le; threshold = 1. } ];
           backend = "eq8";
           provenance = "";
         };
         { Auto.conds = []; backend = "eq8"; provenance = "" };
       ]);
  expect_error "unknown backend"
    (Auto.validate
       [ { Auto.conds = []; backend = "oracle"; provenance = "" } ]);
  expect_error "missing rules member" (Auto.of_json (Json.Obj []));
  expect_error "rules not an array"
    (Auto.of_json (Json.Obj [ ("rules", Json.Str "nope") ]));
  expect_error "bad op"
    (Auto.of_json
       (Json.Obj
          [
            ( "rules",
              Json.Arr
                [
                  Json.Obj
                    [
                      ( "if",
                        Json.Arr
                          [
                            Json.Obj
                              [
                                ("feature", Json.Str "nodes");
                                ("op", Json.Str "eq");
                                ("threshold", Json.Num 1.);
                              ];
                          ] );
                      ("backend", Json.Str "eq8");
                      ("provenance", Json.Str "");
                    ];
                ] );
          ]));
  expect_error "unreadable file" (Auto.load "/nonexistent/rules.json")

let strategy_spelling () =
  let is_paper = function Ok Auto.Paper -> true | _ -> false in
  Alcotest.(check bool) "eq8 is Paper" true
    (is_paper (Auto.strategy_of_string "eq8"));
  Alcotest.(check bool) "paper is Paper" true
    (is_paper (Auto.strategy_of_string "paper"));
  (match Auto.strategy_of_string "auto" with
  | Ok (Auto.Auto r) ->
      Alcotest.(check bool) "auto uses builtin" true (r = Auto.builtin_rules)
  | _ -> Alcotest.fail "auto should parse to Auto builtin_rules");
  (match Auto.strategy_of_string ~rules:sample_rules "auto" with
  | Ok (Auto.Auto r) ->
      Alcotest.(check bool) "auto uses given rules" true (r = sample_rules)
  | _ -> Alcotest.fail "auto should parse to Auto sample_rules");
  match Auto.strategy_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus strategy should be rejected"

(* --- fitting ------------------------------------------------------------ *)

(* Examples from a slice of the real corpus, exactly the way the bench
   builds them: every backend costed by the portfolio. *)
let corpus_examples () =
  List.filter_map
    (fun name ->
      Option.map
        (fun (e : Suite.entry) ->
          let g = e.Suite.build () in
          let p = Portfolio.run ~pdef:4 (classify g) in
          {
            Auto.name;
            example_features = Features.extract g;
            costs =
              List.map
                (fun (en : Portfolio.entry) ->
                  (en.Portfolio.strategy, en.Portfolio.cycles))
                p.Portfolio.all;
          })
        (Suite.find name))
    [ "fig4"; "mm222"; "adv-mono"; "adv-rainbow"; "horner16"; "iir4" ]

let fit_is_valid_and_deterministic () =
  let examples = corpus_examples () in
  let r1 = Auto.fit examples in
  let r2 = Auto.fit examples in
  Alcotest.(check bool) "deterministic" true (r1 = r2);
  Alcotest.(check bool) "validates" true (Auto.validate r1 = Ok r1);
  (* The terminal default guarantees every example — trained on or not —
     matches some rule; spot-check by dispatching each training example. *)
  List.iter
    (fun (ex : Auto.example) ->
      let matched =
        List.exists
          (fun (r : Auto.rule) -> List.mem r.Auto.backend (List.map fst ex.Auto.costs))
          r1
      in
      Alcotest.(check bool)
        (ex.Auto.name ^ " dispatches to a known backend")
        true matched)
    examples

let fit_rejects_empty () =
  match Auto.fit [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fit [] should raise Invalid_argument"

(* --- serve ------------------------------------------------------------- *)

(* The full response stream for auto requests — select and pipeline, cold
   and warm — must be byte-identical whatever the pool size. *)
let serve_auto_jobs_identical seed =
  let name =
    let corpus = Suite.corpus () in
    (List.nth corpus (seed mod List.length corpus)).Suite.name
  in
  let line cmd =
    Printf.sprintf
      "{\"id\":1,\"cmd\":\"%s\",\"graph\":%S,\"options\":{\"strategy\":\"auto\"}}"
      cmd name
  in
  let lines = [ line "select"; line "pipeline"; line "select" ] in
  let stream pool =
    let sess = Session.create ?pool () in
    String.concat "\n" (List.map (Server.handle_line sess) lines)
  in
  let seq = stream None in
  let par = Pool.with_pool ~jobs:4 (fun p -> stream (Some p)) in
  if seq <> par then
    QCheck2.Test.fail_reportf "auto serve responses differ between jobs 1 and 4";
  (* The auto evidence is on the wire: backend and rule fields present. *)
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  has seq "\"auto\":" && has seq "\"backend\":"

let () =
  Alcotest.run "auto selection"
    [
      ( "features",
        [
          qtest "extraction is deterministic; named view agrees" seed_gen
            features_deterministic;
        ] );
      ( "decision",
        [
          qtest "auto returns a portfolio entry verbatim" seed_gen
            auto_is_a_portfolio_member;
          qtest "regret is non-negative and cycles replay exactly" seed_gen
            regret_is_honest;
          qtest "a cached feature vector changes nothing" seed_gen
            cached_features_identical;
          qtest ~count:8 "decision identical from a jobs-4 classification"
            seed_gen jobs_identical_decision;
        ] );
      ( "rule tables",
        [
          Alcotest.test_case "JSON round-trip" `Quick roundtrip;
          Alcotest.test_case "validator rejects malformed tables" `Quick
            rejects;
          Alcotest.test_case "strategy spelling" `Quick strategy_spelling;
        ] );
      ( "fitting",
        [
          Alcotest.test_case "fit is deterministic and valid" `Quick
            fit_is_valid_and_deterministic;
          Alcotest.test_case "fit rejects an empty corpus" `Quick
            fit_rejects_empty;
        ] );
      ( "serve",
        [
          qtest ~count:6 "auto responses identical at jobs 1 and 4" seed_gen
            serve_auto_jobs_identical;
        ] );
    ]
