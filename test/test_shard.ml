(* Shard fleet: forked worker processes must be invisible.  Sharded
   counting, classification, portfolio and exact search are byte-identical
   to the in-process library at every fleet size; a crashed worker
   surfaces as [Worker_failed] with the whole fleet killed (never a
   hang); and the counter stream — shard.* rows included — is a pure
   function of the instance, not of --procs. *)

module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Portfolio = Mps_select.Portfolio
module Exact = Mps_select.Exact
module Random_dag = Mps_workloads.Random_dag
module Obs = Mps_obs.Obs
module Engine = Mps_shard.Engine
module Fleet = Mps_shard.Fleet

(* The test binary doubles as its own shard worker: the engine re-runs
   [Sys.executable_name --shard-worker], which must be intercepted here,
   before alcotest ever parses argv. *)
let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "--shard-worker" then (
    Mps_shard.Worker.run stdin stdout;
    exit 0)

let worker_argv = [| Sys.executable_name; "--shard-worker" |]

(* One long-lived engine per fleet size, shared by every property: reuse
   also exercises the family re-broadcast path (a new graph per qcheck
   iteration), and spawning a fleet per iteration would dominate the
   suite's runtime.  Properties must drive every fleet size through the
   same op sequence, so the engines' broadcast histories stay in sync
   (the counter-invariance property depends on that). *)
let engines : (int, Engine.t) Hashtbl.t = Hashtbl.create 4

let engine procs =
  match Hashtbl.find_opt engines procs with
  | Some e -> e
  | None ->
      let e = Engine.create ~procs ~argv:worker_argv in
      Hashtbl.replace engines procs e;
      e

let () = at_exit (fun () -> Hashtbl.iter (fun _ e -> Engine.shutdown e) engines)

let fleet_sizes = [ 1; 3 ]

let qtest ?(count = 6) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(1 -- 1000)
let capacity = 3

let graph ~seed =
  let params =
    {
      Random_dag.default_params with
      Random_dag.layers = 2 + (seed mod 3);
      width = 2 + (seed mod 2);
    }
  in
  Random_dag.generate ~params ~seed ()

let classify_seq g = Classify.compute ~capacity (Enumerate.make_ctx g)

(* Fingerprints: structural content only — pattern spellings, counts and
   frequency vectors — never universe ids or physical identity. *)
let classification_fp cls =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "total=%d;trunc=%b;"
       (Classify.total_antichains cls)
       (Classify.truncated cls));
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:[%s];" (Pattern.to_string p)
           (Classify.count cls p)
           (String.concat ","
              (List.map string_of_int
                 (Array.to_list (Classify.node_frequency cls p))))))
    (Classify.patterns cls);
  Buffer.contents b

let outcome_fp (o : Portfolio.outcome) =
  String.concat ";"
    (List.map
       (fun (e : Portfolio.entry) ->
         Printf.sprintf "%s=%d:%s" e.Portfolio.strategy e.Portfolio.cycles
           (String.concat "," (List.map Pattern.to_string e.Portfolio.patterns)))
       (o.Portfolio.best :: o.Portfolio.all))

let certificate_fp (ct : Exact.certificate) =
  let pats ps = String.concat "," (List.map Pattern.to_string ps) in
  let entry e =
    Printf.sprintf "%s=%s" (pats e.Exact.banned)
      (match e.Exact.bound with
      | Exact.Infeasible -> "inf"
      | Exact.Cost c -> string_of_int c)
  in
  let s = ct.Exact.stats in
  Printf.sprintf "%s/%d/%d/%d/%d/%d/%d/%d/%b/%s" (pats ct.Exact.optimal)
    ct.Exact.optimal_cycles s.Exact.nodes_visited s.Exact.pruned_span
    s.Exact.pruned_color s.Exact.pruned_ban s.Exact.pruned_dominance
    s.Exact.evaluated ct.Exact.proven
    (String.concat ";" (List.map entry ct.Exact.bans))

let counters_fp c =
  String.concat ";"
    (List.map
       (fun (ct : Obs.counter) ->
         Printf.sprintf "%s/%d/%d/%d/%d" ct.Obs.name ct.Obs.samples
           ct.Obs.total ct.Obs.vmin ct.Obs.vmax)
       (Obs.counters c))

(* Sharded antichain count = sequential count, at every fleet size. *)
let count_matches_sequential seed =
  let g = graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let expect = Enumerate.count ~max_size:capacity ctx in
  List.for_all
    (fun procs -> Engine.count (engine procs) ~max_size:capacity ctx = expect)
    fleet_sizes

(* Sharded classification reproduces the sequential one structurally:
   same patterns, counts, frequency vectors, total. *)
let classification_identical seed =
  let g = graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let expect = classification_fp (classify_seq g) in
  List.for_all
    (fun procs ->
      classification_fp (Engine.classify (engine procs) ~capacity ctx)
      = expect)
    fleet_sizes

(* An over-budget instance falls back to the canonical budgeted
   sequential walk: truncated classifications are identical too. *)
let budget_fallback_identical seed =
  let g = graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let budget = 3 + (seed mod 8) in
  let expect =
    classification_fp
      (Classify.compute ~budget ~capacity (Enumerate.make_ctx g))
  in
  List.for_all
    (fun procs ->
      classification_fp (Engine.classify (engine procs) ~budget ~capacity ctx)
      = expect)
    fleet_sizes

(* Sharded portfolio: same ranking, same pattern sets, same cycles as the
   in-process registry run. *)
let portfolio_identical seed =
  let g = graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let pdef = 2 + (seed mod 2) in
  let expect = outcome_fp (Portfolio.run ~pdef (classify_seq g)) in
  List.for_all
    (fun procs ->
      let eng = engine procs in
      let cls = Engine.classify eng ~capacity ctx in
      outcome_fp (Engine.portfolio eng ~pdef cls) = expect)
    fleet_sizes

(* Sharded exact search: the whole certificate — optimal set, node
   counters, ban list, proven flag — matches the in-process search. *)
let exact_identical seed =
  let g = graph ~seed in
  let ctx = Enumerate.make_ctx g in
  let pdef = 2 + (seed mod 2) in
  let expect = certificate_fp (Exact.search ~pdef (classify_seq g)) in
  List.for_all
    (fun procs ->
      let eng = engine procs in
      let cls = Engine.classify eng ~capacity ctx in
      certificate_fp (Engine.exact eng ~pdef cls) = expect)
    fleet_sizes

(* The full counter stream (shard.* rows and replayed worker counters
   alike) is procs-invariant: fixed chunk layout + submission-order
   replay make the merge sequence a pure function of the instance. *)
let counters_invariant seed =
  let g = graph ~seed in
  let run procs =
    let c = Obs.create () in
    Obs.run c (fun () ->
        let ctx = Enumerate.make_ctx g in
        let eng = engine procs in
        let cls = Engine.classify eng ~capacity ctx in
        ignore (Engine.portfolio eng ~pdef:3 cls);
        ignore (Engine.exact eng ~pdef:2 cls));
    counters_fp c
  in
  let fps = List.map run fleet_sizes in
  let has_shard fp =
    let rec find i =
      i + 6 <= String.length fp
      && (String.sub fp i 6 = "shard." || find (i + 1))
    in
    find 0
  in
  List.for_all (fun fp -> fp = List.hd fps && has_shard fp) fps

(* A worker that dies mid-batch must kill the fleet and raise — a clean
   error, never a hang on a half-dead pipeline. *)
let crash_recovers () =
  Unix.putenv "MPS_SHARD_CRASH" "2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MPS_SHARD_CRASH" "")
    (fun () ->
      let g = graph ~seed:42 in
      let ctx = Enumerate.make_ctx g in
      match
        Engine.with_engine ~procs:2 ~argv:worker_argv (fun eng ->
            Engine.classify eng ~capacity ctx)
      with
      | _ -> Alcotest.fail "crashed worker raised nothing"
      | exception Fleet.Worker_failed _ -> ())

(* After the crash above, a fresh fleet must still work (nothing leaked
   into the environment or the process table). *)
let crash_then_fresh_fleet () =
  let g = graph ~seed:42 in
  let ctx = Enumerate.make_ctx g in
  let expect = classification_fp (classify_seq g) in
  let got =
    Engine.with_engine ~procs:2 ~argv:worker_argv (fun eng ->
        classification_fp (Engine.classify eng ~capacity ctx))
  in
  Alcotest.(check string) "classification after crash" expect got

let bad_procs () =
  match Engine.create ~procs:0 ~argv:worker_argv with
  | _ -> Alcotest.fail "procs:0 accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "shard"
    [
      ( "engine",
        [
          qtest "sharded count = sequential" seed_gen count_matches_sequential;
          qtest "sharded classification = sequential" seed_gen
            classification_identical;
          qtest "budgeted classification falls back identically" seed_gen
            budget_fallback_identical;
          qtest "sharded portfolio = in-process" seed_gen portfolio_identical;
          qtest "sharded exact certificate = in-process" seed_gen
            exact_identical;
          qtest "counter stream procs-invariant" seed_gen counters_invariant;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "worker crash raises Worker_failed" `Quick
            crash_recovers;
          Alcotest.test_case "fresh fleet after a crash" `Quick
            crash_then_fresh_fleet;
          Alcotest.test_case "procs < 1 rejected" `Quick bad_procs;
        ] );
    ]
