(* mpsched: command-line front door to the multi-pattern scheduling flow.

   Subcommands mirror the compiler phases:

     mpsched levels     GRAPH            -- ASAP/ALAP/Height table
     mpsched antichains GRAPH            -- antichain counts per size/span
     mpsched patterns   GRAPH            -- classified pattern pool
     mpsched select     GRAPH            -- run the selection algorithm
     mpsched schedule   GRAPH -p aabcc -p aaacc   -- multi-pattern scheduling
     mpsched pipeline   GRAPH            -- select + schedule + config report
     mpsched dot        GRAPH            -- DOT export
     mpsched workload   NAME             -- dump a built-in workload as a graph file

   GRAPH is a DFG text file ("node <name> <color>" / "edge <src> <dst>"
   lines), a Graphviz .dot file in the subset Dfg_parse accepts, or any
   name from the built-in workload corpus (3dft, fig4, fft8, dct8, ... —
   `mpsched workload` with no valid name lists all of them).

   Most phase subcommands take --stats (per-phase timing/counter summary on
   stderr) and --trace FILE (Chrome trace-event JSON); neither changes the
   primary output on stdout. *)

module C = Core
module Session = Mps_serve.Session
module Server = Mps_serve.Server
module Engine = Mps_shard.Engine
module Transport = Mps_shard.Transport
open Cmdliner

(* One table for the wire protocol and the command line: GRAPH accepts
   exactly the names a {"graph": ...} request does. *)
let builtin_graphs = Server.builtins

let load_graph spec =
  match List.assoc_opt spec builtin_graphs with
  | Some f -> Ok (f ())
  | None -> (
      match C.Dfg_parse.load spec with
      | g -> Ok g
      | exception Sys_error m -> Error m
      | exception C.Dfg_parse.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" spec line message)
      | exception C.Dfg.Cycle names ->
          Error (Printf.sprintf "%s: graph has a cycle: %s" spec (String.concat " -> " names)))

let graph_arg =
  let doc =
    "Input graph: a DFG file, or a built-in name ("
    ^ String.concat ", " (List.map fst builtin_graphs)
    ^ ")."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let capacity_arg =
  Arg.(
    value
    & opt int C.Paper_graphs.montium_capacity
    & info [ "C"; "capacity" ] ~docv:"C" ~doc:"Number of parallel ALUs (pattern size).")

let span_arg =
  Arg.(
    value
    & opt (some int) (Some 1)
    & info [ "s"; "span" ] ~docv:"SPAN"
        ~doc:"Antichain span limit; negative means unlimited.")

let span_of = function Some s when s < 0 -> None | other -> other

let pdef_arg =
  Arg.(
    value & opt int 4
    & info [ "n"; "pdef" ] ~docv:"PDEF" ~doc:"Number of patterns to select.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the parallel phases (enumeration, \
           classification, portfolio).  1 (default) runs the exact \
           sequential path; 0 means one per core.  Results are identical \
           for every value.")

let or_fail = function
  | Ok x -> x
  | Error m ->
      prerr_endline ("mpsched: " ^ m);
      exit 1

(* --strategy / --rules: the selector choice shared by select and
   pipeline.  The rule table defaults to the compiled-in one; --rules
   loads an alternative through the validating loader. *)

let strategy_arg =
  Arg.(
    value & opt string "eq8"
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Selection strategy: $(b,eq8) (the paper's Eq. 8/9 heuristic, \
           the default) or $(b,auto) (per-graph dispatch of one portfolio \
           backend from the graph's feature vector).")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"FILE"
        ~doc:
          "Rule-table JSON for $(b,--strategy auto), as written by \
           $(b,bench --fit-selector); omitted, the compiled-in table is \
           used.")

let strategy_of strategy rules =
  let loaded =
    match rules with
    | None -> None
    | Some path -> (
        match C.Auto.load path with
        | Ok r -> Some r
        | Error m -> or_fail (Error (Printf.sprintf "--rules %s: %s" path m)))
  in
  match C.Auto.strategy_of_string ?rules:loaded strategy with
  | Ok st -> st
  | Error m -> or_fail (Error m)

(* -p PATTERN operands, validated against the machine capacity so an
   oversized spelling fails with a clear message instead of scheduling
   for a machine that doesn't exist. *)
let parse_patterns ~capacity specs =
  try List.map (C.Pattern.of_string ~capacity) specs
  with Invalid_argument m -> or_fail (Error m)

(* A pool sized by --jobs, or none for the sequential default.  Every
   subcommand funnels through here, so 'byte-identical output for any
   --jobs' is checked by diffing the CLI itself (check.sh does). *)
let with_jobs jobs f =
  if jobs < 0 then or_fail (Error "--jobs must be >= 0");
  let jobs = if jobs = 0 then C.Pool.default_jobs () else jobs in
  if jobs = 1 then f None
  else C.Pool.with_pool ~jobs (fun pool -> f (Some pool))

(* The phase subcommands are thin clients of the serve session layer: a
   one-shot run is a session serving a single request.  The session owns
   classification/eval/ban caches, so the same code path is exercised cold
   here and warm by `mpsched serve` — and stays byte-identical (check.sh
   goldens pin it). *)
let with_session jobs f =
  with_jobs jobs (fun pool -> f (Session.create ?pool ()))

(* --procs N: the sharded phases fan out over N worker OS processes (the
   hidden `mpsched worker` entrypoint) through the shard engine, plugged
   into the session as execution backends.  The engine's fan-in is
   submission-ordered and its task layout procs-invariant, so output stays
   byte-identical to --procs 1 — check.sh diffs exactly that. *)

let procs_arg =
  Arg.(
    value & opt int 1
    & info [ "procs" ] ~docv:"PROCS"
        ~doc:
          "Worker OS processes for the sharded phases (classification, \
           portfolio, exact search).  1 (default) runs in-process; results \
           are byte-identical for every value.  Composes with --jobs \
           (domains inside each process are independent of the process \
           fan-out).")

let worker_argv = [| Sys.executable_name; "worker" |]

let backends_of_engine eng =
  {
    Session.bk_classify =
      Some
        (fun ~universe ~span_limit ~budget ~capacity ctx ->
          Engine.classify eng ~universe ?span_limit ?budget ~capacity ctx);
    bk_portfolio =
      Some
        (fun ~budget ~pdef classify ->
          Engine.portfolio eng ?budget ~pdef classify);
    bk_exact =
      Some
        (fun ~priority ~pruning ~max_nodes ~seeds ~bans ~budget ~pdef classify ->
          Engine.exact eng ~priority ?pruning ?max_nodes ~seeds ~bans ?budget
            ~pdef classify);
  }

let with_session_procs jobs procs f =
  if procs < 1 then or_fail (Error "--procs must be >= 1");
  if procs = 1 then with_session jobs f
  else
    with_jobs jobs (fun pool ->
        Engine.with_engine ~procs ~argv:worker_argv (fun eng ->
            match f (Session.create ?pool ~backends:(backends_of_engine eng) ()) with
            | r -> r
            | exception Mps_shard.Fleet.Worker_failed m ->
                or_fail (Error ("shard: " ^ m))))

(* --stats / --trace: observability flags shared by the phase subcommands.
   The summary goes to stderr and the trace to a file, so the primary
   output on stdout stays byte-identical whether or not they are given
   (check.sh diffs exactly that). *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print a per-phase timing and counter summary to stderr after \
           the run.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file (open in Perfetto or \
           chrome://tracing; validate with $(b,mpsched tracecheck)).")

let with_obs stats trace_out f =
  if (not stats) && trace_out = None then f ()
  else begin
    let obs = C.Obs.create () in
    let r = C.Obs.run obs f in
    if stats then prerr_string (C.Obs.summary_table obs);
    (match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (C.Obs.chrome_trace obs)));
    r
  end

(* --- levels --- *)

let levels_cmd =
  let run spec =
    let g = or_fail (load_graph spec) in
    let lv = C.Levels.compute g in
    let t = C.Ascii_table.create ~header:[ "node"; "asap"; "alap"; "height"; "mobility" ] () in
    List.iter
      (fun i ->
        C.Ascii_table.add_row t
          [
            C.Dfg.name g i;
            string_of_int (C.Levels.asap lv i);
            string_of_int (C.Levels.alap lv i);
            string_of_int (C.Levels.height lv i);
            string_of_int (C.Levels.mobility lv i);
          ])
      (C.Dfg.nodes g);
    C.Ascii_table.print t;
    Printf.printf "critical path: %d cycles\n" (C.Levels.lower_bound_cycles lv)
  in
  Cmd.v (Cmd.info "levels" ~doc:"ASAP/ALAP/Height analysis (paper Table 1)")
    Term.(const run $ graph_arg)

(* --- antichains --- *)

let antichains_cmd =
  let run spec capacity jobs stats trace_out =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    let ctx = C.Enumerate.make_ctx g in
    let lv = C.Enumerate.ctx_levels ctx in
    let max_span = max 0 (C.Levels.asap_max lv) in
    let m =
      with_jobs jobs (fun pool ->
          C.Enumerate.count_matrix ?pool ~max_size:capacity ~max_span ctx)
    in
    let header =
      "span limit" :: List.init capacity (fun s -> Printf.sprintf "size%d" (s + 1))
    in
    let t = C.Ascii_table.create ~header () in
    for l = 0 to max_span do
      C.Ascii_table.add_row t
        (Printf.sprintf "<=%d" l
        :: List.init capacity (fun s -> string_of_int m.(l).(s + 1)))
    done;
    C.Ascii_table.print t
  in
  Cmd.v
    (Cmd.info "antichains" ~doc:"Antichain counts per size and span limit (Table 5)")
    Term.(const run $ graph_arg $ capacity_arg $ jobs_arg $ stats_arg $ trace_out_arg)

(* --- patterns --- *)

let patterns_cmd =
  let run spec capacity span jobs stats trace_out =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    let cls =
      with_jobs jobs (fun pool ->
          C.Classify.compute ?pool ?span_limit:(span_of span) ~capacity
            (C.Enumerate.make_ctx g))
    in
    let t = C.Ascii_table.create ~header:[ "pattern"; "antichains" ] () in
    C.Classify.fold
      (fun p ~count ~freq:_ () ->
        C.Ascii_table.add_row t [ C.Pattern.to_string p; string_of_int count ])
      cls ();
    C.Ascii_table.print t;
    Printf.printf "%d patterns, %d antichains\n" (C.Classify.pattern_count cls)
      (C.Classify.total_antichains cls)
  in
  Cmd.v
    (Cmd.info "patterns" ~doc:"The classified pattern pool (§5.1)")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ jobs_arg $ stats_arg
      $ trace_out_arg)

(* --- select --- *)

let pattern_list ps = String.concat " " (List.map C.Pattern.to_string ps)

let print_exact_stats (ct : C.Exact.certificate) =
  let s = ct.C.Exact.stats in
  Printf.printf
    "search: %d nodes visited, %d sets evaluated, pruned %d span / %d color \
     / %d ban / %d dominance, %d ban entries\n"
    s.C.Exact.nodes_visited s.C.Exact.evaluated s.C.Exact.pruned_span
    s.C.Exact.pruned_color s.C.Exact.pruned_ban s.C.Exact.pruned_dominance
    (List.length ct.C.Exact.bans)

let select_cmd =
  let run spec capacity span pdef strategy rules verbose certify jobs procs
      stats trace_out =
    let g = or_fail (load_graph spec) in
    let strategy = strategy_of strategy rules in
    with_obs stats trace_out @@ fun () ->
    with_session_procs jobs procs @@ fun sess ->
    let entry, _ = Session.intern sess g in
    (* The phase commands classify unbudgeted, as they always did;
       certification below uses the pipeline default budget — two distinct
       cached families, mirroring the historical double classification. *)
    let sel_options =
      {
        C.Pipeline.default_options with
        C.Pipeline.capacity;
        span_limit = span_of span;
        pdef;
        enumeration_budget = None;
        strategy;
      }
    in
    (match strategy with
    | C.Auto.Paper ->
        let report, _ =
          Session.select_report sess entry ~options:sel_options
        in
        List.iteri
          (fun i step ->
            Printf.printf "%d: %s%s  (priority %.2f)\n" (i + 1)
              (C.Pattern.to_string step.C.Select.chosen)
              (if step.C.Select.fallback then " [fallback]" else "")
              step.C.Select.priority;
            if verbose then
              List.iter
                (fun (p, f) ->
                  Printf.printf "     %-8s %.2f\n" (C.Pattern.to_string p) f)
                step.C.Select.priorities)
          report.C.Select.steps
    | C.Auto.Auto table ->
        let o, _ =
          Session.auto_select sess entry ~options:sel_options ~rules:table
        in
        Printf.printf "backend: %s  (rule %d: %s)\n" o.C.Auto.backend
          o.C.Auto.rule_index o.C.Auto.rule.C.Auto.provenance;
        Printf.printf "patterns: %s\n" (pattern_list o.C.Auto.patterns);
        if o.C.Auto.cycles = max_int then print_endline "unschedulable"
        else Printf.printf "%d cycles\n" o.C.Auto.cycles;
        if verbose then Format.printf "%a@." C.Features.pp o.C.Auto.features);
    if certify then begin
      let options =
        {
          C.Pipeline.default_options with
          C.Pipeline.capacity;
          span_limit = span_of span;
          pdef;
        }
      in
      let cert, _ = Session.certify sess g ~options () in
      let ct = cert.C.Pipeline.exact in
      Printf.printf "heuristic: %s  %d cycles\n"
        (pattern_list cert.C.Pipeline.heuristic)
        cert.C.Pipeline.heuristic_cycles;
      if ct.C.Exact.optimal_cycles = max_int then
        print_endline "exact:     no schedulable pattern set in the family"
      else
        Printf.printf "exact:     %s  %d cycles  (%s)\n"
          (pattern_list ct.C.Exact.optimal)
          ct.C.Exact.optimal_cycles
          (if ct.C.Exact.proven then "proven optimal"
           else "upper bound: node cap hit");
      Printf.printf "gap: %.1f%%\n" cert.C.Pipeline.gap_percent;
      print_exact_stats ct
    end
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every candidate's priority.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "After the heuristic selection, run the exact branch-and-bound \
             seeded with it and report the optimality gap and the search \
             certificate.")
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Run the pattern selection algorithm (§5.2)")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg
      $ strategy_arg $ rules_arg $ verbose $ certify $ jobs_arg $ procs_arg
      $ stats_arg $ trace_out_arg)

(* --- exact --- *)

let exact_cmd =
  let run spec capacity span pdef max_nodes no_prune jobs procs stats trace_out
      =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    with_session_procs jobs procs @@ fun sess ->
    let entry, _ = Session.intern sess g in
    let options =
      {
        C.Pipeline.default_options with
        C.Pipeline.capacity;
        span_limit = span_of span;
        pdef;
        enumeration_budget = None;
      }
    in
    let pruning =
      if no_prune then C.Exact.no_pruning else C.Exact.all_pruning
    in
    let ct, _ = Session.exact sess entry ~options ~pruning ~max_nodes () in
    if ct.C.Exact.optimal_cycles = max_int then
      print_endline "no schedulable pattern set in the family"
    else begin
      Printf.printf "optimal: %s\n" (pattern_list ct.C.Exact.optimal);
      Printf.printf "%d cycles  (%s)\n" ct.C.Exact.optimal_cycles
        (if ct.C.Exact.proven then "proven optimal"
         else "upper bound: node cap hit")
    end;
    print_exact_stats ct
  in
  let max_nodes =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Node budget per root subtree; when hit the result degrades to \
             an upper bound and the certificate is marked unproven.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable every pruning rule (pure enumeration) — the baseline \
             the pruning counters are measured against.")
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "Certified-optimal pattern selection by branch-and-bound over the \
          classified pool")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg $ max_nodes
      $ no_prune $ jobs_arg $ procs_arg $ stats_arg $ trace_out_arg)

(* --- schedule --- *)

let schedule_cmd =
  let run spec capacity span pdef jobs patterns trace stats trace_out =
    let g = or_fail (load_graph spec) in
    let explicit = parse_patterns ~capacity patterns in
    with_obs stats trace_out @@ fun () ->
    with_session jobs @@ fun sess ->
    let entry, _ = Session.intern sess g in
    let options =
      {
        C.Pipeline.default_options with
        C.Pipeline.capacity;
        span_limit = span_of span;
        pdef;
        enumeration_budget = None;
      }
    in
    (* With no -p the selection algorithm picks Pdef first, so a bare
       "mpsched schedule GRAPH" runs the paper's whole flow. *)
    match Session.schedule sess entry ~options ~trace ~patterns:explicit () with
    | exception C.Multi_pattern.Unschedulable colors ->
        or_fail
          (Error
             (Printf.sprintf "patterns cannot cover colors: %s"
                (String.concat ", " (List.map C.Color.to_string colors))))
    | pats, r, _ ->
        if patterns = [] then
          Printf.printf "patterns: %s\n"
            (String.concat " " (List.map C.Pattern.to_string pats));
        if trace then
          Format.printf "%a@." (C.Multi_pattern.pp_trace g) r.C.Eval.trace;
        Format.printf "%a@." (C.Schedule.pp g) r.C.Eval.schedule;
        Printf.printf "%d cycles\n" (C.Schedule.cycles r.C.Eval.schedule)
  in
  let patterns =
    Arg.(
      value & opt_all string []
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:
            "Allowed pattern, e.g. aabcc (repeatable).  Omitted: run the \
             selection algorithm first.")
  in
  (* -t only: --trace is the Chrome-trace output shared with the other
     subcommands. *)
  let trace =
    Arg.(value & flag & info [ "t" ] ~doc:"Print the per-cycle trace (Table 2).")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Multi-pattern list scheduling (§4)")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg $ jobs_arg
      $ patterns $ trace $ stats_arg $ trace_out_arg)

(* --- pipeline --- *)

let pipeline_cmd =
  let run spec capacity span pdef strategy rules cluster jobs procs stats
      trace_out =
    let g = or_fail (load_graph spec) in
    let strategy = strategy_of strategy rules in
    with_obs stats trace_out @@ fun () ->
    let options =
      {
        C.Pipeline.default_options with
        C.Pipeline.capacity;
        span_limit = span_of span;
        pdef;
        cluster;
        strategy;
      }
    in
    let t =
      with_session_procs jobs procs (fun sess ->
          fst (Session.pipeline sess g ~options))
    in
    (match t.C.Pipeline.auto with
    | Some o ->
        Printf.printf "auto: dispatched %s  (rule %d: %s)\n" o.C.Auto.backend
          o.C.Auto.rule_index o.C.Auto.rule.C.Auto.provenance
    | None -> ());
    Format.printf "%a@." C.Pipeline.pp_summary t;
    Format.printf "%a@." (C.Schedule.pp t.C.Pipeline.graph) t.C.Pipeline.schedule
  in
  let cluster =
    Arg.(value & flag & info [ "cluster" ] ~doc:"Fuse multiply-accumulate pairs first.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Full flow: select, schedule, configuration report")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg
      $ strategy_arg $ rules_arg $ cluster $ jobs_arg $ procs_arg $ stats_arg
      $ trace_out_arg)

(* --- portfolio --- *)

let portfolio_cmd =
  let run spec capacity span pdef jobs procs stats trace_out =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    with_session_procs jobs procs (fun sess ->
        let entry, _ = Session.intern sess g in
        let options =
          {
            C.Pipeline.default_options with
            C.Pipeline.capacity;
            span_limit = span_of span;
            pdef;
            enumeration_budget = None;
          }
        in
        let o, _ = Session.portfolio sess entry ~options in
        let t = C.Ascii_table.create ~header:[ "strategy"; "patterns"; "cycles" ] () in
        List.iter
          (fun e ->
            C.Ascii_table.add_row t
              [
                e.C.Portfolio.strategy;
                String.concat " " (List.map C.Pattern.to_string e.C.Portfolio.patterns);
                (if e.C.Portfolio.cycles = max_int then "unschedulable"
                 else string_of_int e.C.Portfolio.cycles);
              ])
          o.C.Portfolio.all;
        C.Ascii_table.print t;
        Printf.printf "winner: %s (%d cycles)\n" o.C.Portfolio.best.C.Portfolio.strategy
          o.C.Portfolio.best.C.Portfolio.cycles)
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:"Try every selection strategy and keep the winner (parallel with --jobs)")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg $ jobs_arg
      $ procs_arg $ stats_arg $ trace_out_arg)

(* --- optimal --- *)

let optimal_cmd =
  let run spec capacity patterns max_states stats trace_out =
    let g = or_fail (load_graph spec) in
    if patterns = [] then or_fail (Error "need at least one -p PATTERN");
    let pats = parse_patterns ~capacity patterns in
    with_obs stats trace_out @@ fun () ->
    match C.Optimal.schedule ~max_states ~patterns:pats g with
    | exception C.Multi_pattern.Unschedulable colors ->
        or_fail
          (Error
             (Printf.sprintf "patterns cannot cover colors: %s"
                (String.concat ", " (List.map C.Color.to_string colors))))
    | o ->
        Format.printf "%a@." (C.Schedule.pp g) o.C.Optimal.schedule;
        Printf.printf "%d cycles (%s, %d states explored); list heuristic: %d\n"
          o.C.Optimal.cycles
          (if o.C.Optimal.proven_optimal then "proven optimal" else "state cap hit")
          o.C.Optimal.explored_states
          (C.Multi_pattern.cycles ~patterns:pats g)
  in
  let patterns =
    Arg.(
      value & opt_all string []
      & info [ "p"; "pattern" ] ~docv:"PATTERN" ~doc:"Allowed pattern (repeatable).")
  in
  let max_states =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-states" ] ~docv:"N" ~doc:"Branch-and-bound state cap.")
  in
  Cmd.v
    (Cmd.info "optimal" ~doc:"Exact minimum-cycle schedule by branch and bound")
    Term.(
      const run $ graph_arg $ capacity_arg $ patterns $ max_states $ stats_arg
      $ trace_out_arg)

(* --- anneal --- *)

let anneal_cmd =
  let run spec capacity span pdef iterations seed stats trace_out =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    let cls =
      C.Classify.compute ?span_limit:(span_of span) ~capacity (C.Enumerate.make_ctx g)
    in
    let rng = C.Rng.create ~seed in
    let o = C.Annealing.search ~iterations rng ~pdef cls in
    Printf.printf "patterns: %s\n"
      (String.concat " " (List.map C.Pattern.to_string o.C.Annealing.patterns));
    Printf.printf "%d cycles after %d schedule evaluations (%s the heuristic)\n"
      o.C.Annealing.cycles o.C.Annealing.evaluations
      (if o.C.Annealing.improved then "improved on" else "matched")
  in
  let iterations =
    Arg.(value & opt int 2000 & info [ "i"; "iterations" ] ~docv:"N" ~doc:"Annealing steps.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "anneal" ~doc:"Simulated-annealing pattern-set search")
    Term.(
      const run $ graph_arg $ capacity_arg $ span_arg $ pdef_arg $ iterations
      $ seed $ stats_arg $ trace_out_arg)

(* --- analyze --- *)

let analyze_cmd =
  let run spec capacity =
    let g = or_fail (load_graph spec) in
    let lv = C.Levels.compute g in
    let p = C.Posets.analyze g in
    Printf.printf "%d nodes, %d edges, colors: %s\n" (C.Dfg.node_count g)
      (C.Dfg.edge_count g)
      (String.concat " "
         (List.map
            (fun (c, k) -> Printf.sprintf "%s=%d" (C.Color.to_string c) k)
            (C.Dfg.color_counts g)));
    Printf.printf "critical path: %d cycles\n" (C.Levels.lower_bound_cycles lv);
    Format.printf "%a@." (C.Posets.pp g) p;
    Printf.printf "capacity-%d lower bound: %d cycles\n" capacity
      (C.Posets.lower_bound_cycles p ~capacity);
    if C.Posets.width p <= capacity then
      Printf.printf
        "width <= %d: the ALU count never binds; only the color mix matters\n"
        capacity
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Structural analysis: width (Dilworth), covers (Mirsky), bounds")
    Term.(const run $ graph_arg $ capacity_arg)

(* --- stream --- *)

let stream_cmd =
  let run spec patterns pdef span capacity stats trace_out =
    let g = or_fail (load_graph spec) in
    with_obs stats trace_out @@ fun () ->
    let patterns =
      if patterns <> [] then parse_patterns ~capacity patterns
      else begin
        let cls =
          C.Classify.compute ?span_limit:(span_of span) ~capacity
            (C.Enumerate.make_ctx g)
        in
        C.Select.select ~pdef cls
      end
    in
    let loop = C.Loop_graph.make g [] in
    Printf.printf "patterns: %s\n"
      (String.concat " " (List.map C.Pattern.to_string patterns));
    Printf.printf "single-shot: %d cycles; MII: %d\n"
      (C.Multi_pattern.cycles ~patterns g)
      (C.Loop_graph.mii loop ~patterns);
    match C.Modulo.schedule ~patterns loop with
    | m ->
        Printf.printf "pipelined: II = %d (one result every %d cycles), latency %d\n"
          m.C.Modulo.ii m.C.Modulo.ii m.C.Modulo.makespan;
        Array.iteri
          (fun s p -> Printf.printf "  slot %d: %s\n" s (C.Pattern.to_string p))
          m.C.Modulo.slot_patterns
    | exception C.Modulo.No_schedule { tried_up_to } ->
        or_fail (Error (Printf.sprintf "no modulo schedule up to II=%d" tried_up_to))
  in
  let patterns =
    Arg.(
      value & opt_all string []
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:"Allowed pattern (repeatable); defaults to running selection.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Software-pipeline the graph as a streaming loop (modulo scheduling)")
    Term.(
      const run $ graph_arg $ patterns $ pdef_arg $ span_arg $ capacity_arg
      $ stats_arg $ trace_out_arg)

(* --- codegen --- *)

let builtin_programs =
  [
    ("w3dft", fun () -> C.Dft.winograd3 ());
    ("w5dft", fun () -> C.Dft.winograd5 ());
    ("fft8", fun () -> C.Dft.radix2_fft ~n:8);
    ("dct8", fun () -> C.Kernels.dct8 ());
    ("ofdm4", fun () -> C.Ofdm.receiver ~n:4);
    ("bitonic8", fun () -> C.Sorting.bitonic ~n:8);
  ]

let load_program spec =
  match List.assoc_opt spec builtin_programs with
  | Some f -> Ok (f ())
  | None -> (
      match C.Program_text.load spec with
      | p -> Ok p
      | exception Sys_error m -> Error m
      | exception C.Program_text.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" spec line message))

let codegen_cmd =
  let run name pdef out stats trace_out =
    match load_program name with
    | Error m ->
        or_fail
          (Error
             (Printf.sprintf
                "%s (PROGRAM is a .prog file or one of: %s)"
                m
                (String.concat ", " (List.map fst builtin_programs))))
    | Ok _ as loaded -> (
        let f () = Result.get_ok loaded in
        let prog = f () in
        with_obs stats trace_out @@ fun () ->
        let options = { C.Pipeline.default_options with C.Pipeline.pdef } in
        match C.Pipeline.map_program ~options prog with
        | Error m -> or_fail (Error m)
        | Ok mapped -> (
            match
              C.Obs.span "codegen" (fun () ->
                  C.Codegen.generate prog
                    mapped.C.Pipeline.pipeline.C.Pipeline.schedule
                    mapped.C.Pipeline.allocation)
            with
            | Error m -> or_fail (Error m)
            | Ok listing -> (
                match out with
                | None -> print_string listing
                | Some path ->
                    C.Dot.write_file ~path listing;
                    Printf.printf "wrote %s\n" path)))
  in
  let prog_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc:"A .prog file or built-in program.")
  in
  let out =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Emit the Montium configuration listing for a mapped program")
    Term.(const run $ prog_arg $ pdef_arg $ out $ stats_arg $ trace_out_arg)

(* --- program dump --- *)

let program_cmd =
  let run name =
    match load_program name with
    | Ok p -> print_string (C.Program_text.to_string p)
    | Error m -> or_fail (Error m)
  in
  let prog_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc:"A .prog file or built-in program.")
  in
  Cmd.v
    (Cmd.info "program" ~doc:"Dump a program in the textual .prog format")
    Term.(const run $ prog_arg)

(* --- dot --- *)

let dot_cmd =
  let run spec out =
    let g = or_fail (load_graph spec) in
    let dot = C.Dot.to_dot ~levels:(C.Levels.compute g) g in
    match out with
    | None -> print_string dot
    | Some path ->
        C.Dot.write_file ~path dot;
        Printf.printf "wrote %s\n" path
  in
  let out =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Graphviz export (Figures 2 and 4)") Term.(const run $ graph_arg $ out)

(* --- tracecheck --- *)

let tracecheck_cmd =
  let run path =
    let text =
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | t -> t
      | exception Sys_error m -> or_fail (Error m)
    in
    match C.Obs.validate_chrome_trace text with
    | Ok n -> Printf.printf "%s: ok, %d trace events\n" path n
    | Error m -> or_fail (Error (Printf.sprintf "%s: %s" path m))
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A JSON file written by --trace.")
  in
  Cmd.v
    (Cmd.info "tracecheck"
       ~doc:"Validate a Chrome trace-event JSON file written by --trace")
    Term.(const run $ path_arg)

(* --- serve --- *)

let serve_cmd =
  let print_session_stats sess =
    let hits, misses = Session.session_cache_stats sess in
    Printf.eprintf
      "serve: %d requests over %d graphs, eval cache %d hits / %d misses\n"
      (Session.request_count sess)
      (Session.graph_count sess)
      hits misses
  in
  let run use_stdin listen connect jobs batch stats trace_out =
    match (use_stdin, listen, connect) with
    | _, _, Some path ->
        (* Client mode: forward stdin's request lines to a listening
           server and print its response lines — the socket counterpart
           of piping into --stdin. *)
        let t =
          match Transport.connect_unix ~path with
          | t -> t
          | exception Unix.Unix_error (e, _, _) ->
              or_fail
                (Error
                   (Printf.sprintf "serve --connect %s: %s" path
                      (Unix.error_message e)))
        in
        (* The server reads ahead in batches, so pipeline: send every
           request first, half-close to mark the end, then drain the
           responses (one line per request, in order). *)
        let _, oc = Transport.channels t in
        let rec send_all n =
          match input_line stdin with
          | line ->
              output_string oc line;
              output_char oc '\n';
              send_all (if String.trim line = "" then n else n + 1)
          | exception End_of_file -> n
        in
        let sent = send_all 0 in
        Transport.shutdown_send t;
        for _ = 1 to sent do
          match Transport.recv t with
          | Ok j -> print_endline (C.Json.to_line j)
          | Error m -> or_fail (Error ("serve --connect: " ^ m))
        done;
        Transport.close t
    | _, Some path, None ->
        (* Socket transport: one warm session shared by every connection,
           served one connection at a time (the session is single-writer
           state).  Runs until killed; the socket file is unlinked on
           bind, not on exit. *)
        with_obs stats trace_out @@ fun () ->
        with_session jobs @@ fun sess ->
        let fd =
          match Transport.listen_unix ~path with
          | fd -> fd
          | exception Unix.Unix_error (e, _, _) ->
              or_fail
                (Error
                   (Printf.sprintf "serve --listen %s: %s" path
                      (Unix.error_message e)))
        in
        let rec accept_loop () =
          let conn = Transport.accept_unix fd in
          let ic, oc = Transport.channels conn in
          Server.run ~batch sess ic oc;
          Transport.close conn;
          if stats then print_session_stats sess;
          accept_loop ()
        in
        accept_loop ()
    | true, None, None ->
        with_obs stats trace_out @@ fun () ->
        with_session jobs @@ fun sess ->
        Server.run ~batch sess stdin stdout;
        if stats then print_session_stats sess
    | false, None, None ->
        or_fail (Error "serve: pass --stdin, --listen PATH or --connect PATH")
  in
  let use_stdin =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Serve line-delimited JSON requests from standard input, one \
             response line per request on standard output.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"PATH"
          ~doc:
            "Serve the same protocol on a Unix-domain socket at $(docv): \
             one warm session shared by every connection, connections \
             served in arrival order until the process is killed.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:
            "Client mode: forward request lines from standard input to the \
             server listening at $(docv) and print its responses.")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "How many requests are read ahead per batch (parse fan-out \
             across --jobs); never changes any response.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent scheduling service: line-delimited JSON requests on \
          stdin (--stdin) or a Unix-domain socket (--listen), warm \
          classification/eval/ban caches across requests, byte-identical \
          responses for every --jobs value")
    Term.(
      const run $ use_stdin $ listen $ connect $ jobs_arg $ batch $ stats_arg
      $ trace_out_arg)

(* --- workload --- *)

let workload_cmd =
  let run name =
    match List.assoc_opt name builtin_graphs with
    | Some f -> print_string (C.Dfg_parse.to_string (f ()))
    | None ->
        or_fail
          (Error
             (Printf.sprintf "unknown workload %s (have: %s)" name
                (String.concat ", " (List.map fst builtin_graphs))))
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Built-in workload.")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Dump a built-in workload in the DFG text format")
    Term.(const run $ name_arg)

let () =
  (* Hidden worker entrypoint: `mpsched worker` is what --procs spawns
     (requests on stdin, responses on stdout).  Dispatched before cmdliner
     so it never shows up in help or completions. *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "worker" then begin
    Mps_shard.Worker.run stdin stdout;
    exit 0
  end;
  let info =
    Cmd.info "mpsched" ~version:"1.0.0"
      ~doc:"Multi-pattern scheduling and pattern selection for the Montium (IPDPS 2006)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            levels_cmd; antichains_cmd; patterns_cmd; select_cmd; exact_cmd;
            schedule_cmd;
            optimal_cmd; anneal_cmd; codegen_cmd; stream_cmd; analyze_cmd;
            pipeline_cmd; portfolio_cmd; serve_cmd; dot_cmd; workload_cmd;
            program_cmd; tracecheck_cmd;
          ]))
