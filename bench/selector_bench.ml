(* Selector bench: fit and gate the per-graph strategy auto-selection
   (ROADMAP item 4) against the brute portfolio on the named corpus.

     dune exec bench/main.exe -- --fit-selector   (full corpus + huge
               tier: fit the rule table, print it, rewrite
               results/selector_rules.json)
     dune exec bench/main.exe -- --selector [--smoke]

   The --selector pass replays the full portfolio once per corpus
   workload (the oracle: best cycles over every backend) and the auto
   path once (features + one dispatched backend), both on the same
   pre-computed classification — classification is shared by either
   route, so the wall-clock comparison isolates what auto actually
   saves.  Hard gates (exit 1):

     - results/selector_rules.json parses through Auto.load and equals
       the compiled-in Auto.builtin_rules (the two ship in lockstep;
       refit with --fit-selector when the corpus or features change);
     - on every workload auto's answer is some portfolio backend's exact
       pattern set and cycle count (never a novel schedule);
     - median regret over the corpus is <= 5% (regret: auto cycles vs
       the portfolio's best, in percent);
     - the summed portfolio wall time is >= 3x the summed auto wall
       time (best of 3 trials each; the corpus graphs are small, so
       single-shot timing is too noisy to gate on even in smoke mode).

   The line starting with '{' is machine-readable JSON; BENCH_selector.json
   at the repo root is one committed full-mode capture.  Full mode also
   rewrites results/selector_regret.csv. *)

module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Portfolio = Core.Portfolio
module Features = Core.Features
module Auto = Core.Auto
module Suite = Core.Suite
module Pattern = Core.Pattern
module Csv = Mps_util.Csv

let capacity = Core.Paper_graphs.montium_capacity
let pdef = 4

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let wall_min trials f =
  let best = ref infinity in
  for _ = 1 to trials do
    let _, t = wall f in
    if t < !best then best := t
  done;
  !best

let classify g =
  Classify.compute ~span_limit:1 ~budget:5_000_000 ~capacity
    (Enumerate.make_ctx g)

(* One corpus workload replayed both ways on one classification. *)
type row = {
  name : string;
  backend : string;
  rule_index : int;
  auto_cycles : int;
  best_backend : string;
  best_cycles : int;
  regret_percent : float;
  portfolio_s : float;
  auto_s : float;
}

let examples ~full () =
  let huge = full in
  List.map
    (fun (e : Suite.entry) ->
      let g = e.Suite.build () in
      let cls = classify g in
      let outcome = Portfolio.run ~pdef cls in
      {
        Auto.name = e.Suite.name;
        example_features = Features.extract g;
        costs =
          List.map
            (fun (en : Portfolio.entry) -> (en.Portfolio.strategy, en.Portfolio.cycles))
            outcome.Portfolio.all;
      })
    (Suite.corpus ~full ~huge ())

let fit () =
  Printf.printf "\n=== Selector fit (full corpus + huge tier) ===\n%!";
  let rules = Auto.fit (examples ~full:true ()) in
  List.iteri
    (fun i (r : Auto.rule) ->
      let conds =
        match r.Auto.conds with
        | [] -> "otherwise"
        | conds ->
            String.concat " && "
              (List.map
                 (fun (c : Auto.cond) ->
                   Printf.sprintf "%s %s %g" c.Auto.feature
                     (match c.Auto.op with Auto.Le -> "<=" | Auto.Gt -> ">")
                     c.Auto.threshold)
                 conds)
      in
      Printf.printf "  %d. %-40s -> %-16s (%s)\n" i conds r.Auto.backend
        r.Auto.provenance)
    rules;
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = "results/selector_rules.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Mps_util.Json.to_string (Auto.to_json rules));
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" path;
  if rules <> Auto.builtin_rules then
    Printf.printf
      "NOTE: fitted table differs from the compiled-in Auto.builtin_rules —\n\
      \      paste the new table into lib/select/auto.ml to keep the two in\n\
      \      lockstep (bench --selector gates on it).\n"

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let run ?(smoke = false) () =
  let full = not smoke in
  let trials = 3 in
  Printf.printf "\n=== Selector: auto vs full portfolio (%s corpus) ===\n"
    (if full then "full" else "smoke");
  let failed = ref false in
  (match Auto.load "results/selector_rules.json" with
  | Error e ->
      Printf.printf "REGRESSION: results/selector_rules.json unusable: %s\n" e;
      failed := true
  | Ok rules ->
      if rules <> Auto.builtin_rules then begin
        Printf.printf
          "REGRESSION: results/selector_rules.json out of sync with \
           Auto.builtin_rules (rerun bench --fit-selector and update auto.ml)\n";
        failed := true
      end);
  Printf.printf "  %-12s %-16s %4s %5s %5s %7s %10s %10s\n" "graph" "backend"
    "rule" "auto" "best" "regret%" "portfolio_s" "auto_s";
  let rows =
    List.map
      (fun (e : Suite.entry) ->
        let g = e.Suite.build () in
        let cls = classify g in
        let outcome = Portfolio.run ~pdef cls in
        let auto = Auto.select ~pdef cls in
        let portfolio_s =
          wall_min trials (fun () -> ignore (Portfolio.run ~pdef cls))
        in
        let auto_s = wall_min trials (fun () -> ignore (Auto.select ~pdef cls)) in
        let best = outcome.Portfolio.best in
        (* Identity gate: auto's answer must be the dispatched backend's
           exact portfolio result, pattern for pattern. *)
        (match
           List.find_opt
             (fun (en : Portfolio.entry) ->
               en.Portfolio.strategy = auto.Auto.backend)
             outcome.Portfolio.all
         with
        | None ->
            Printf.printf "MISMATCH: %s auto picked %S, not a portfolio backend\n"
              e.Suite.name auto.Auto.backend;
            failed := true
        | Some en ->
            if
              (not (List.equal Pattern.equal en.Portfolio.patterns auto.Auto.patterns))
              || en.Portfolio.cycles <> auto.Auto.cycles
            then begin
              Printf.printf
                "MISMATCH: %s auto's %s result diverges from the portfolio's \
                 (%d vs %d cycles)\n"
                e.Suite.name auto.Auto.backend auto.Auto.cycles en.Portfolio.cycles;
              failed := true
            end);
        let regret_percent =
          if best.Portfolio.cycles = 0 || best.Portfolio.cycles = max_int then 0.
          else
            float_of_int (auto.Auto.cycles - best.Portfolio.cycles)
            /. float_of_int best.Portfolio.cycles
            *. 100.
        in
        let row =
          {
            name = e.Suite.name;
            backend = auto.Auto.backend;
            rule_index = auto.Auto.rule_index;
            auto_cycles = auto.Auto.cycles;
            best_backend = best.Portfolio.strategy;
            best_cycles = best.Portfolio.cycles;
            regret_percent;
            portfolio_s;
            auto_s;
          }
        in
        Printf.printf "  %-12s %-16s %4d %5d %5d %7.1f %10.4f %10.4f\n" row.name
          row.backend row.rule_index row.auto_cycles row.best_cycles
          row.regret_percent row.portfolio_s row.auto_s;
        row)
      (Suite.corpus ~full ~huge:full ())
  in
  let med = median (List.map (fun r -> r.regret_percent) rows) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let total_portfolio = sum (fun r -> r.portfolio_s) in
  let total_auto = sum (fun r -> r.auto_s) in
  let speedup = total_portfolio /. total_auto in
  Printf.printf
    "  median regret %.1f%%, portfolio %.4fs vs auto %.4fs (%.1fx saved)\n" med
    total_portfolio total_auto speedup;
  if med > 5.0 then begin
    Printf.printf "REGRESSION: median regret %.1f%% over the 5%% gate\n" med;
    failed := true
  end;
  if speedup < 3.0 then begin
    Printf.printf
      "REGRESSION: auto saves only %.1fx wall-clock, under the 3x gate\n" speedup;
    failed := true
  end;
  if !failed then exit 1;
  let json_rows =
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"graph\":\"%s\",\"backend\":\"%s\",\"rule\":%d,\
              \"auto_cycles\":%d,\"best_backend\":\"%s\",\"best_cycles\":%d,\
              \"regret_percent\":%.1f,\"portfolio_s\":%.4f,\"auto_s\":%.4f}"
             r.name r.backend r.rule_index r.auto_cycles r.best_backend
             r.best_cycles r.regret_percent r.portfolio_s r.auto_s)
         rows)
  in
  Printf.printf
    "{\"bench\":\"selector\",\"smoke\":%b,\"median_regret_percent\":%.1f,\
     \"portfolio_wall_s\":%.4f,\"auto_wall_s\":%.4f,\"speedup\":%.1f,\
     \"workloads\":[%s]}\n"
    smoke med total_portfolio total_auto speedup json_rows;
  if full then begin
    (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let csv =
      Csv.create
        ~header:
          [ "workload"; "backend"; "rule"; "auto_cycles"; "best_backend";
            "best_cycles"; "regret_percent"; "portfolio_s"; "auto_s" ]
    in
    List.iter
      (fun r ->
        Csv.add_row csv
          [
            r.name; r.backend; string_of_int r.rule_index;
            string_of_int r.auto_cycles; r.best_backend;
            string_of_int r.best_cycles;
            Printf.sprintf "%.1f" r.regret_percent;
            Printf.sprintf "%.4f" r.portfolio_s;
            Printf.sprintf "%.4f" r.auto_s;
          ])
      rows;
    Csv.save ~path:"results/selector_regret.csv" csv;
    Printf.printf "wrote results/selector_regret.csv\n"
  end
