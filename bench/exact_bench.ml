(* Exact branch-and-bound bench: the heuristic's optimality gap and the
   pruning power of the exact backend's rules on the bench suite.

     dune exec bench/main.exe -- --exact [--smoke]

   Three searches run per workload on one shared classification:

     full      every pruning rule on, seeded with the Eq. 8/9 heuristic
               (what [mpsched select --certify] runs);
     ban+dom   only the ban list and dominance rules — the pair whose
               node-elimination power is gated below;
     baseline  pure enumeration ([Exact.no_pruning], no seeds).

   Hard gates (exit 1):
     - all three configs agree on the optimal cycle count and prove it;
     - the certified gap is never negative (the heuristic seeds the
       incumbent, so exact can only tie or beat it);
     - ban+dominance alone eliminate at least 50% of the baseline's
       visited nodes across the suite.

   The line starting with '{' is machine-readable JSON; BENCH_exact.json
   at the repo root is one committed capture of it. *)

module Pg = Core.Paper_graphs
module Program = Core.Program
module Dft = Core.Dft
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Exact = Core.Exact
module Eval = Core.Eval

let capacity = Pg.montium_capacity

let workloads ~smoke =
  let base =
    [
      ("fig4", Pg.fig4_small (), 2);
      ("3dft", Pg.fig2_3dft (), 4);
    ]
  in
  if smoke then base else base @ [ ("w5dft", Program.dfg (Dft.winograd5 ()), 4) ]

let ban_dom_only =
  {
    Exact.prune_span = false;
    prune_color = false;
    prune_ban = true;
    prune_dominance = true;
  }

let run ?(smoke = false) () =
  Printf.printf "\n=== Exact search: heuristic gap and pruning power ===\n";
  Printf.printf "  %-6s %5s %9s %5s %6s %9s %9s %9s %6s\n" "graph" "pool"
    "heuristic" "exact" "gap%" "full" "ban+dom" "baseline" "cut%";
  let agg_bd = ref 0 and agg_base = ref 0 in
  let failed = ref false in
  let rows =
    List.map
      (fun (name, g, pdef) ->
        let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
        let heuristic = Select.select ~pdef cls in
        let full = Exact.search ~seeds:[ heuristic ] ~pdef cls in
        let bd = Exact.search ~pruning:ban_dom_only ~pdef cls in
        let baseline = Exact.search ~pruning:Exact.no_pruning ~pdef cls in
        let h_cycles =
          match Eval.cycles (Eval.make g) (Exact.canonical_order cls heuristic) with
          | c -> c
          | exception Eval.Unschedulable _ -> max_int
        in
        let e = full.Exact.optimal_cycles in
        let gap =
          if e = 0 || e = max_int then 0.
          else float_of_int (h_cycles - e) /. float_of_int e *. 100.
        in
        if
          (not full.Exact.proven)
          || (not bd.Exact.proven)
          || not baseline.Exact.proven
        then begin
          Printf.printf "MISMATCH: %s search hit the node cap (unproven)\n" name;
          failed := true
        end;
        if bd.Exact.optimal_cycles <> e || baseline.Exact.optimal_cycles <> e
        then begin
          Printf.printf
            "MISMATCH: %s pruning changed the optimum (full %d, ban+dom %d, \
             baseline %d)\n"
            name e bd.Exact.optimal_cycles baseline.Exact.optimal_cycles;
          failed := true
        end;
        if gap < 0. then begin
          Printf.printf "MISMATCH: %s negative gap %.1f%%\n" name gap;
          failed := true
        end;
        let v_full = full.Exact.stats.Exact.nodes_visited in
        let v_bd = bd.Exact.stats.Exact.nodes_visited in
        let v_base = baseline.Exact.stats.Exact.nodes_visited in
        agg_bd := !agg_bd + v_bd;
        agg_base := !agg_base + v_base;
        let cut = 100. *. (1. -. (float_of_int v_bd /. float_of_int v_base)) in
        Printf.printf "  %-6s %5d %9d %5d %6.1f %9d %9d %9d %6.1f\n" name
          (Classify.pattern_count cls)
          h_cycles e gap v_full v_bd v_base cut;
        (name, h_cycles, e, gap, v_full, v_bd, v_base))
      (workloads ~smoke)
  in
  let reduction =
    100. *. (1. -. (float_of_int !agg_bd /. float_of_int !agg_base))
  in
  Printf.printf
    "  ban+dominance eliminate %.1f%% of baseline nodes across the suite\n"
    reduction;
  if reduction < 50. then begin
    Printf.printf
      "REGRESSION: ban+dominance pruning under the 50%% node-elimination gate\n";
    failed := true
  end;
  if !failed then exit 1;
  let json_rows =
    String.concat ","
      (List.map
         (fun (name, h, e, gap, v_full, v_bd, v_base) ->
           Printf.sprintf
             "{\"graph\":\"%s\",\"heuristic_cycles\":%d,\"exact_cycles\":%d,\
              \"gap_percent\":%.1f,\"visited_full\":%d,\"visited_ban_dom\":%d,\
              \"visited_baseline\":%d}"
             name h e gap v_full v_bd v_base)
         rows)
  in
  Printf.printf
    "{\"bench\":\"exact\",\"smoke\":%b,\"ban_dom_reduction_percent\":%.1f,\
     \"workloads\":[%s]}\n"
    smoke reduction json_rows
