(* Ablation studies over the design choices the paper calls out: the F2
   refinement of the pattern priority (§4.2), the span limit (§5.1), the
   alpha size bonus and balancing denominator (§5.2), and the selection
   algorithm against cheaper pattern sources and the exhaustive oracle. *)

module T = Mps_util.Ascii_table
module Rng = Mps_util.Rng
module Mstats = Mps_util.Mstats
module Dfg = Core.Dfg
module Pattern = Core.Pattern
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Random_select = Core.Random_select
module Greedy_cover = Core.Greedy_cover
module Exhaustive = Core.Exhaustive
module Pattern_source = Core.Pattern_source
module Mp = Core.Multi_pattern
module Schedule = Core.Schedule
module Cluster = Core.Cluster
module Config_space = Core.Config_space
module Pg = Core.Paper_graphs
module Dft = Core.Dft
module Kernels = Core.Kernels
module Program = Core.Program

let capacity = Pg.montium_capacity

let section title = Printf.printf "\n=== %s ===\n" title

let workloads () =
  [
    ("3dft(paper)", Pg.fig2_3dft ());
    ("w5dft", Program.dfg (Dft.winograd5 ()));
    ("fft8", Program.dfg (Dft.radix2_fft ~n:8));
    ("dct8", Program.dfg (Kernels.dct8 ()));
    (* Width is the enemy of enumeration (a layer of k parallel ops alone
       holds C(k,5) antichains), so the wide kernels stay modest. *)
    ( "fir8x4",
      Program.dfg
        (Kernels.fir ~taps:(List.init 8 (fun i -> 1.0 /. float_of_int (i + 1))) ~block:4) );
    ("matmul3", Program.dfg (Kernels.matmul ~m:3 ~k:3 ~n:3));
  ]

let cycles_of ?priority patterns g =
  Schedule.cycles (Mp.schedule ?priority ~patterns g).Mp.schedule

let select_cycles ?params ?priority ~span_limit ~pdef g =
  let cls = Classify.compute ?span_limit ~budget:3_000_000 ~capacity (Enumerate.make_ctx g) in
  let pats = Select.select ?params ~pdef cls in
  cycles_of ?priority pats g

(* F1 vs F2 pattern priority, same selected patterns. *)
let f1_vs_f2 () =
  section "Ablation: pattern priority F1 (count) vs F2 (priority sum)";
  let t = T.create ~header:[ "workload"; "nodes"; "F1 cycles"; "F2 cycles" ] () in
  List.iter
    (fun (name, g) ->
      let cls = Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity (Enumerate.make_ctx g) in
      let pats = Select.select ~pdef:4 cls in
      T.add_row t
        [
          name;
          string_of_int (Dfg.node_count g);
          string_of_int (cycles_of ~priority:Mp.F1 pats g);
          string_of_int (cycles_of ~priority:Mp.F2 pats g);
        ])
    (workloads ());
  T.print t

(* Span limit sweep: enumeration size vs selection quality. *)
let span_sweep () =
  section "Ablation: span limit vs antichain count and schedule quality (Pdef=4)";
  let t =
    T.create
      ~header:[ "workload"; "span"; "antichains"; "pool"; "cycles"; "enum ms" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun span_limit ->
          let t0 = Sys.time () in
          let cls =
            Classify.compute ?span_limit ~budget:3_000_000 ~capacity (Enumerate.make_ctx g)
          in
          let ms = (Sys.time () -. t0) *. 1000.0 in
          let pats = Select.select ~pdef:4 cls in
          T.add_row t
            [
              name;
              (match span_limit with None -> "inf" | Some l -> string_of_int l);
              string_of_int (Classify.total_antichains cls);
              string_of_int (Classify.pattern_count cls);
              string_of_int (cycles_of pats g);
              Printf.sprintf "%.1f" ms;
            ])
        [ Some 0; Some 1; Some 2; Some 3; None ])
    [ List.nth (workloads ()) 0; List.nth (workloads ()) 1; List.nth (workloads ()) 2 ];
  T.print t

(* Alpha and the balancing denominator. *)
let selection_terms () =
  section "Ablation: selection priority terms (Pdef=4, span 1)";
  let t =
    T.create
      ~header:[ "workload"; "full eq.8"; "alpha=0"; "no balancing (eps=1e9)" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      let full = select_cycles ~span_limit:(Some 1) ~pdef:4 g in
      let no_alpha =
        select_cycles
          ~params:{ Select.default_params with Select.alpha = 0.0 }
          ~span_limit:(Some 1) ~pdef:4 g
      in
      let no_balance =
        (* A huge epsilon drowns the per-node damping so the first addend
           degenerates to (total antichains)/eps: ranking by raw counts. *)
        select_cycles
          ~params:{ Select.default_params with Select.epsilon = 1e9 }
          ~span_limit:(Some 1) ~pdef:4 g
      in
      T.add_row t
        [ name; string_of_int full; string_of_int no_alpha; string_of_int no_balance ])
    (workloads ());
  T.print t

(* Selection algorithm vs other pattern sources. *)
let selector_battle () =
  section "Ablation: pattern sources (Pdef=4, span 1, random = avg of 10)";
  let t =
    T.create
      ~header:
        [ "workload"; "eq.8 selected"; "greedy count"; "fds harvest"; "greedy harvest"; "random" ]
      ()
  in
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun (name, g) ->
      let cls = Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity (Enumerate.make_ctx g) in
      let ev = Core.Eval.make g in
      let eq8 = Core.Eval.cycles ev (Select.select ~pdef:4 cls) in
      let greedy = Core.Eval.cycles ev (Greedy_cover.select ~pdef:4 cls) in
      let fds =
        Core.Eval.cycles ev
          (Pattern_source.harvest ~method_:Pattern_source.Force_directed ~capacity
             ~pdef:4 g)
      in
      let gh =
        Core.Eval.cycles ev
          (Pattern_source.harvest ~method_:Pattern_source.Greedy ~capacity ~pdef:4 g)
      in
      let rand =
        Mstats.mean
          (Array.of_list
             (List.map float_of_int
                (Random_select.trial_cycles rng ~eval:ev ~runs:10 ~capacity ~pdef:4)))
      in
      T.add_row t
        [
          name; string_of_int eq8; string_of_int greedy; string_of_int fds;
          string_of_int gh; Printf.sprintf "%.1f" rand;
        ])
    (workloads ());
  T.print t

(* Heuristic vs exhaustive oracle on the small instances. *)
let oracle_gap () =
  section "Ablation: heuristic vs exhaustive oracle (small graphs)";
  let t =
    T.create ~header:[ "workload"; "pdef"; "heuristic"; "oracle"; "sets tried" ] ()
  in
  List.iter
    (fun (name, g, pdef, span_limit) ->
      let cls = Classify.compute ?span_limit ~budget:3_000_000 ~capacity (Enumerate.make_ctx g) in
      let h = cycles_of (Select.select ~pdef cls) g in
      let o = Exhaustive.search ~pdef cls in
      T.add_row t
        [
          name;
          string_of_int pdef;
          string_of_int h;
          string_of_int o.Exhaustive.best_cycles
          ^ (if o.Exhaustive.truncated then "(truncated)" else "");
          string_of_int o.Exhaustive.evaluated;
        ])
    [
      ("fig4", Pg.fig4_small (), 2, None);
      ("3dft(paper)", Pg.fig2_3dft (), 2, Some 0);
      ("3dft(paper)", Pg.fig2_3dft (), 3, Some 0);
    ];
  T.print t

(* List heuristic vs exact optimum vs annealed pattern search. *)
let scheduler_and_search_gap () =
  section "Extension: list heuristic vs optimal schedule vs annealed patterns";
  let t =
    T.create
      ~header:
        [ "workload"; "pdef"; "heuristic sel+list"; "same pats optimal"; "annealed pats"; "sa evals" ]
      ()
  in
  let rng = Rng.create ~seed:99 in
  List.iter
    (fun (name, g, pdef) ->
      let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
      let pats = Select.select ~pdef cls in
      let heuristic = cycles_of pats g in
      let opt = Core.Optimal.schedule ~max_states:400_000 ~patterns:pats g in
      let sa = Core.Annealing.search ~iterations:1500 rng ~pdef cls in
      T.add_row t
        [
          name;
          string_of_int pdef;
          string_of_int heuristic;
          Printf.sprintf "%d%s" opt.Core.Optimal.cycles
            (if opt.Core.Optimal.proven_optimal then "" else "?");
          string_of_int sa.Core.Annealing.cycles;
          string_of_int sa.Core.Annealing.evaluations;
        ])
    [
      ("3dft(paper)", Pg.fig2_3dft (), 2);
      ("3dft(paper)", Pg.fig2_3dft (), 4);
      ("w5dft", Program.dfg (Dft.winograd5 ()), 4);
    ];
  T.print t

(* Tree-height reduction before lowering. *)
let rebalance_ablation () =
  section "Extension: tree-height reduction (left-deep sums vs rebalanced)";
  let t =
    T.create
      ~header:[ "kernel"; "plain depth"; "balanced depth"; "plain cycles"; "balanced cycles" ]
      ()
  in
  let bindings_fir taps block =
    let x i = Mps_frontend.Expr.var (Printf.sprintf "x%d" i) in
    List.init block (fun out ->
        let terms =
          List.mapi
            (fun k c ->
              let idx = out + List.length taps - 1 - k in
              Mps_frontend.Expr.(const c * x idx))
            taps
        in
        let sum =
          match terms with
          | first :: rest -> List.fold_left Mps_frontend.Expr.( + ) first rest
          | [] -> assert false
        in
        (Printf.sprintf "y%d" out, sum))
  in
  let dot_product k =
    let terms =
      List.init k (fun i ->
          Mps_frontend.Expr.(
            var (Printf.sprintf "a%d" i) * var (Printf.sprintf "b%d" i)))
    in
    let sum =
      match terms with
      | first :: rest -> List.fold_left Mps_frontend.Expr.( + ) first rest
      | [] -> assert false
    in
    [ ("y", sum) ]
  in
  List.iter
    (fun (name, bindings) ->
      let plain = Mps_frontend.Lower.lower bindings in
      let balanced = Core.Rebalance.program bindings in
      let info p =
        let g = Program.dfg p in
        ( Mps_dfg.Levels.lower_bound_cycles (Mps_dfg.Levels.compute g),
          select_cycles ~span_limit:(Some 1) ~pdef:4 g )
      in
      let pd, pc = info plain in
      let bd, bc = info balanced in
      T.add_row t
        [ name; string_of_int pd; string_of_int bd; string_of_int pc; string_of_int bc ])
    [
      ("fir12x2", bindings_fir (List.init 12 (fun i -> 1.0 /. float_of_int (i + 1))) 2);
      ("dot16", dot_product 16);
      ("dot32", dot_product 32);
    ];
  T.print t

(* Clustering on/off. *)
let clustering () =
  section "Ablation: MAC clustering before scheduling (Pdef=4, span 1)";
  let t =
    T.create
      ~header:[ "workload"; "nodes"; "plain cycles"; "clustered nodes"; "clustered cycles" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      let plain = select_cycles ~span_limit:(Some 1) ~pdef:4 g in
      let c = Cluster.mac g in
      let clustered = select_cycles ~span_limit:(Some 1) ~pdef:4 c.Cluster.clustered in
      T.add_row t
        [
          name;
          string_of_int (Dfg.node_count g);
          string_of_int plain;
          string_of_int (Dfg.node_count c.Cluster.clustered);
          string_of_int clustered;
        ])
    (workloads ());
  T.print t

(* Priority-function variants (the paper's stated future work). *)
let priority_variants () =
  section "Extension: selection priority variants (Pdef=4, span 1)";
  let variants = Core.Priority_variants.all in
  let t =
    T.create
      ~header:("workload" :: List.map (fun v -> v.Core.Priority_variants.name) variants)
      ()
  in
  List.iter
    (fun (name, g) ->
      let cls =
        Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity
          (Enumerate.make_ctx g)
      in
      T.add_row t
        (name
        :: List.map
             (fun v ->
               let pats = Core.Priority_variants.select v ~pdef:4 cls in
               string_of_int (cycles_of pats g))
             variants))
    (workloads ());
  T.print t

(* Beam width sweep: how much does lookahead buy over the greedy pick? *)
let beam_sweep () =
  section "Extension: beam-search selection width sweep (Pdef=4, span 1)";
  let t =
    T.create ~header:[ "workload"; "greedy(w=1)"; "w=2"; "w=4"; "w=8"; "sets scheduled(w=8)" ] ()
  in
  List.iter
    (fun (name, g) ->
      let cls =
        Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity
          (Enumerate.make_ctx g)
      in
      let at width = Core.Beam.search ~width ~pdef:4 cls in
      let w1 = at 1 and w2 = at 2 and w4 = at 4 and w8 = at 8 in
      T.add_row t
        [
          name;
          string_of_int w1.Core.Beam.cycles;
          string_of_int w2.Core.Beam.cycles;
          string_of_int w4.Core.Beam.cycles;
          string_of_int w8.Core.Beam.cycles;
          string_of_int w8.Core.Beam.evaluated_sets;
        ])
    (workloads ());
  T.print t

(* The paper's Table 7 protocol at scale: many random layered DAGs instead
   of two hand workloads; reports how often and by how much selection wins. *)
let random_workload_sweep () =
  section
    "Extension: Table-7 protocol over 20 random DAGs (Pdef=4, span 1, random = avg of 10)";
  let t =
    T.create
      ~header:[ "graphs"; "selected wins"; "ties"; "losses"; "mean gain (cycles)"; "mean gain (%)" ]
      ()
  in
  let rng = Rng.create ~seed:2026 in
  let gains = ref [] in
  let wins = ref 0 and ties = ref 0 and losses = ref 0 in
  let graphs = 20 in
  for seed = 1 to graphs do
    let params =
      { Core.Random_dag.default_params with Core.Random_dag.layers = 8; width = 5 }
    in
    let g = Core.Random_dag.generate ~params ~seed () in
    let cls =
      Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity (Enumerate.make_ctx g)
    in
    let ev = Core.Eval.make g in
    let sel = Core.Eval.cycles ev (Select.select ~pdef:4 cls) in
    let rand_avg =
      Mstats.mean
        (Array.of_list
           (List.map float_of_int
              (Random_select.trial_cycles rng ~eval:ev ~runs:10 ~capacity ~pdef:4)))
    in
    let gain = rand_avg -. float_of_int sel in
    gains := (gain, gain /. rand_avg *. 100.0) :: !gains;
    if gain > 0.05 then incr wins
    else if gain < -0.05 then incr losses
    else incr ties
  done;
  let abs_gains = Array.of_list (List.map fst !gains) in
  let rel_gains = Array.of_list (List.map snd !gains) in
  T.add_row t
    [
      string_of_int graphs;
      string_of_int !wins;
      string_of_int !ties;
      string_of_int !losses;
      Printf.sprintf "%.2f +/- %.2f" (Mstats.mean abs_gains) (Mstats.stddev abs_gains);
      Printf.sprintf "%.1f%%" (Mstats.mean rel_gains);
    ];
  T.print t

(* Software pipelining: streaming II vs single-shot schedule length. *)
let pipelining () =
  section "Extension: modulo scheduling (streaming II vs single-shot cycles)";
  let t =
    T.create
      ~header:[ "workload"; "single-shot"; "MII"; "achieved II"; "speedup"; "prologue" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      let cls =
        Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity
          (Enumerate.make_ctx g)
      in
      let patterns = Select.select ~pdef:4 cls in
      let single = cycles_of patterns g in
      let loop = Core.Loop_graph.make g [] in
      match Core.Modulo.schedule ~budget_factor:64 ~patterns loop with
      | m ->
          T.add_row t
            [
              name;
              string_of_int single;
              string_of_int (Core.Loop_graph.mii loop ~patterns);
              string_of_int m.Core.Modulo.ii;
              Printf.sprintf "%.2fx"
                (float_of_int single /. float_of_int m.Core.Modulo.ii);
              string_of_int (m.Core.Modulo.makespan - m.Core.Modulo.ii);
            ]
      | exception Core.Modulo.No_schedule _ ->
          T.add_row t [ name; string_of_int single; "-"; "none"; "-"; "-" ])
    (workloads ());
  T.print t

(* Shared pattern tables across a kernel suite. *)
let shared_tables () =
  section "Extension: one pattern table for a kernel suite (Pdef=4, span 1)";
  let kernels =
    [
      Core.Shared.kernel ~span_limit:1 ~label:"3dft" (Pg.fig2_3dft ());
      Core.Shared.kernel ~span_limit:1 ~label:"w5dft" (Program.dfg (Dft.winograd5 ()));
      Core.Shared.kernel ~span_limit:1 ~label:"dct8" (Program.dfg (Kernels.dct8 ()));
    ]
  in
  let total patterns =
    List.fold_left
      (fun acc k ->
        match Mp.schedule ~patterns k.Core.Shared.graph with
        | r -> acc + Schedule.cycles r.Mp.schedule
        | exception Mp.Unschedulable _ -> acc + 999)
      0 kernels
  in
  let shared = Core.Shared.select ~pdef:4 kernels in
  let t = T.create ~header:[ "pattern source"; "total cycles (3 kernels)" ] () in
  T.add_row t [ "jointly selected"; string_of_int shared.Core.Shared.total_cycles ];
  List.iter
    (fun donor ->
      let borrowed = Select.select ~pdef:4 donor.Core.Shared.classify in
      T.add_row t
        [
          Printf.sprintf "borrowed from %s" donor.Core.Shared.label;
          string_of_int (total borrowed);
        ])
    kernels;
  T.print t

(* Multi-tile mapping: tiles x hop-latency sweep. *)
let multi_tile_sweep () =
  section "Extension: multi-tile mapping (level-sliced pipeline over the NoC)";
  let t =
    T.create
      ~header:[ "workload"; "tiles"; "hop"; "makespan"; "single tile"; "cut edges" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (tiles, hop_latency) ->
          let options =
            { Core.Multi_tile.default_options with Core.Multi_tile.tiles; hop_latency }
          in
          let m = Core.Multi_tile.map ~options g in
          T.add_row t
            [
              name;
              string_of_int tiles;
              string_of_int hop_latency;
              string_of_int m.Core.Multi_tile.makespan;
              string_of_int m.Core.Multi_tile.single_tile_cycles;
              string_of_int m.Core.Multi_tile.cut_edges;
            ])
        [ (2, 0); (2, 2); (2, 8); (3, 2) ])
    [
      ("fft8", Program.dfg (Dft.radix2_fft ~n:8));
      ("dct8", Program.dfg (Kernels.dct8 ()));
    ];
  T.print t

(* Fixed-point precision sweep on the DSP kernels. *)
let precision_sweep () =
  section "Extension: 16-bit fixed-point precision (max abs error vs float)";
  let t =
    T.create ~header:[ "kernel"; "Q.8"; "Q.10"; "Q.12"; "Q.14" ] ()
  in
  let kernels =
    [
      ( "w3dft",
        Dft.winograd3 (),
        Dft.input_env [| (0.5, -0.25); (0.3, 0.8); (-0.6, 0.1) |] );
      ( "fir4",
        Kernels.fir ~taps:[ 0.25; 0.5; -0.125; 0.25 ] ~block:4,
        fun name ->
          sin (float_of_int (1 + int_of_string (String.sub name 1 (String.length name - 1)))) );
      ( "dct8",
        Kernels.dct8 (),
        fun name -> 0.2 *. cos (float_of_int (int_of_string (String.sub name 1 1))) );
    ]
  in
  List.iter
    (fun (name, prog, env) ->
      T.add_row t
        (name
        :: List.map
             (fun f ->
               let r = Core.Fixed_point.compare_against_float (Core.Fixed_point.q f) prog ~env in
               Printf.sprintf "%.2e%s" r.Core.Fixed_point.max_abs
                 (if r.Core.Fixed_point.saturated then "!" else ""))
             [ 8; 10; 12; 14 ]))
    kernels;
  T.print t;
  print_endline "('!' marks runs where an intermediate saturated)"

(* Strength reduction: moving work off the multiplier column. *)
let strength_reduction () =
  section "Extension: strength reduction (mul-by-2^k -> shift) before selection";
  let t =
    T.create
      ~header:[ "kernel"; "muls before"; "muls after"; "cycles before"; "cycles after" ]
      ()
  in
  let count prog ch =
    let g = Program.dfg prog in
    List.length
      (List.filter
         (fun i -> Core.Color.to_char (Dfg.color g i) = ch)
         (Dfg.nodes g))
  in
  (* Integer kernels with power-of-two coefficients: dyadic FIR and a
     wavelet-style lifting step. *)
  let dyadic_fir =
    let x i = Mps_frontend.Expr.var (Printf.sprintf "x%d" i) in
    List.init 4 (fun out ->
        let terms =
          List.mapi
            (fun k c ->
              let idx = out + 3 - k in
              Mps_frontend.Expr.(const c * x idx))
            [ 8.0; 4.0; 4.0; 8.0 ]
        in
        ( Printf.sprintf "y%d" out,
          match terms with
          | first :: rest -> List.fold_left Mps_frontend.Expr.( + ) first rest
          | [] -> assert false ))
  in
  let lifting =
    let x i = Mps_frontend.Expr.var (Printf.sprintf "s%d" i) in
    List.init 4 (fun i ->
        let a = x (2 * i) and b = x ((2 * i) + 1) in
        ( Printf.sprintf "d%d" i,
          Mps_frontend.Expr.(b - (const 2.0 * a) + (const 16.0 * b)) ))
  in
  List.iter
    (fun (name, bindings) ->
      let plain = Mps_frontend.Lower.lower bindings in
      let reduced = Core.Strength.program bindings in
      let cycles prog = select_cycles ~span_limit:(Some 1) ~pdef:4 (Program.dfg prog) in
      T.add_row t
        [
          name;
          string_of_int (count plain 'c');
          string_of_int (count reduced 'c');
          string_of_int (cycles plain);
          string_of_int (cycles reduced);
        ])
    [ ("dyadic-fir", dyadic_fir); ("lifting", lifting) ];
  T.print t

(* Portfolio: which strategy wins where? *)
let portfolio_wins () =
  section "Extension: selector portfolio (winner per workload, Pdef=4, span 1)";
  let t = T.create ~header:[ "workload"; "winner"; "cycles"; "eq8 cycles"; "strategies" ] () in
  List.iter
    (fun (name, g) ->
      let cls =
        Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity
          (Enumerate.make_ctx g)
      in
      let rng = Rng.create ~seed:31 in
      let o = Core.Portfolio.run ~annealing:(rng, 600) ~pdef:4 cls in
      let eq8 =
        List.find (fun e -> e.Core.Portfolio.strategy = "eq8") o.Core.Portfolio.all
      in
      T.add_row t
        [
          name;
          o.Core.Portfolio.best.Core.Portfolio.strategy;
          string_of_int o.Core.Portfolio.best.Core.Portfolio.cycles;
          string_of_int eq8.Core.Portfolio.cycles;
          string_of_int (List.length o.Core.Portfolio.all);
        ])
    (workloads ());
  T.print t

(* Pdef sweep against the 32-configuration budget. *)
let pdef_sweep () =
  section "Extension: Pdef sweep, cycles and config-table pressure (3DFT & fft8)";
  let t =
    T.create ~header:[ "workload"; "pdef"; "cycles"; "distinct configs"; "reconfigs" ] ()
  in
  List.iter
    (fun (name, g) ->
      let cls = Classify.compute ~span_limit:1 ~budget:3_000_000 ~capacity (Enumerate.make_ctx g) in
      List.iter
        (fun pdef ->
          let pats = Select.select ~pdef cls in
          let sched = (Mp.schedule ~patterns:pats g).Mp.schedule in
          let cfg = Config_space.of_schedule sched in
          T.add_row t
            [
              name;
              string_of_int pdef;
              string_of_int (Schedule.cycles sched);
              string_of_int cfg.Config_space.table_size;
              string_of_int cfg.Config_space.reconfigurations;
            ])
        [ 1; 2; 3; 4; 5; 8; 12 ])
    [ ("3dft(paper)", Pg.fig2_3dft ()); ("fft8", Program.dfg (Dft.radix2_fft ~n:8)) ];
  T.print t

let run_all () =
  f1_vs_f2 ();
  span_sweep ();
  selection_terms ();
  selector_battle ();
  oracle_gap ();
  scheduler_and_search_gap ();
  rebalance_ablation ();
  priority_variants ();
  beam_sweep ();
  random_workload_sweep ();
  pipelining ();
  shared_tables ();
  multi_tile_sweep ();
  precision_sweep ();
  strength_reduction ();
  portfolio_wins ();
  clustering ();
  pdef_sweep ()
