(* Reproduction of every table and figure in the paper, printed side by side
   with the published values.  Each [tableN] function regenerates one
   artifact; [run_all] prints the lot and writes the DOT figures. *)

module T = Mps_util.Ascii_table
module Rng = Mps_util.Rng
module Mstats = Mps_util.Mstats
module Color = Core.Color
module Dfg = Core.Dfg
module Levels = Core.Levels
module Dot = Core.Dot
module Pattern = Core.Pattern
module Antichain = Core.Antichain
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Random_select = Core.Random_select
module Mp = Core.Multi_pattern
module Schedule = Core.Schedule
module Pg = Core.Paper_graphs
module Dft = Core.Dft
module Program = Core.Program

let pat = Pattern.of_string
let capacity = Pg.montium_capacity

let section title =
  Printf.printf "\n=== %s ===\n" title

(* Shared artifacts, computed lazily once. *)
let dft3 = lazy (Pg.fig2_3dft ())
let dft3_ctx = lazy (Enumerate.make_ctx (Lazy.force dft3))
let fig4 = lazy (Pg.fig4_small ())

let w5dft = lazy (Program.dfg (Dft.winograd5 ()))

let classify_3dft span_limit =
  Classify.compute ?span_limit ~capacity (Lazy.force dft3_ctx)

(* --- Table 1 --- *)

let table1 () =
  section "Table 1: ASAP level, ALAP level and Height (3DFT)";
  let g = Lazy.force dft3 in
  let lv = Levels.compute g in
  let t =
    T.create
      ~header:[ "node"; "asap"; "alap"; "height"; "paper"; "match" ]
      ()
  in
  let mismatches = ref 0 in
  List.iter
    (fun (name, (pa, pl, ph)) ->
      let i = Dfg.find g name in
      let a, l, h = (Levels.asap lv i, Levels.alap lv i, Levels.height lv i) in
      let ok = (a, l, h) = (pa, pl, ph) in
      if not ok then incr mismatches;
      T.add_row t
        [
          name; string_of_int a; string_of_int l; string_of_int h;
          Printf.sprintf "%d/%d/%d" pa pl ph; (if ok then "yes" else "NO");
        ])
    Pg.table1;
  T.print t;
  Printf.printf "mismatches: %d of %d rows\n" !mismatches (List.length Pg.table1)

(* --- Table 2 --- *)

let table2 () =
  section "Table 2: scheduling procedure, patterns {aabcc, aaacc} (3DFT)";
  let g = Lazy.force dft3 in
  let p1, p2 = Pg.section4_patterns in
  let r = Mp.schedule ~trace:true ~patterns:[ pat p1; pat p2 ] g in
  let t =
    T.create ~header:[ "cycle"; "candidate list"; "pattern1"; "pattern2"; "selected" ] ()
  in
  let names l = String.concat "," (List.map (Dfg.name g) l) in
  List.iter
    (fun row ->
      let sel idx = names (snd (List.nth row.Mp.row_selected idx)) in
      T.add_row t
        [
          string_of_int row.Mp.row_cycle;
          names row.Mp.row_candidates;
          sel 0;
          sel 1;
          string_of_int (row.Mp.row_chosen + 1);
        ])
    r.Mp.trace;
  T.print t;
  Printf.printf "cycles: measured %d, paper %d\n"
    (Schedule.cycles r.Mp.schedule)
    Pg.section4_cycles

(* --- Table 3 --- *)

let table3 () =
  section "Table 3: cycle count per hand-picked pattern set (3DFT)";
  let g = Lazy.force dft3 in
  let t = T.create ~header:[ "patterns"; "paper"; "measured" ] () in
  List.iter
    (fun (pats, paper) ->
      let allowed = List.map pat pats in
      let cycles = Schedule.cycles (Mp.schedule ~patterns:allowed g).Mp.schedule in
      T.add_row t
        [ String.concat " " pats; string_of_int paper; string_of_int cycles ])
    Pg.table3_pattern_sets;
  T.print t

(* --- Table 4 --- *)

let table4 () =
  section "Table 4: patterns and antichains (Fig. 4 example)";
  let g = Lazy.force fig4 in
  let cls =
    Classify.compute ~keep_antichains:true ~capacity (Enumerate.make_ctx g)
  in
  let t = T.create ~header:[ "pattern"; "antichains" ] () in
  List.iter
    (fun p ->
      let chains =
        Classify.antichains cls p
        |> List.map (fun a ->
               "{"
               ^ String.concat "," (List.map (Dfg.name g) (Antichain.nodes a))
               ^ "}")
        |> String.concat " "
      in
      T.add_row t [ Pattern.to_string p; chains ])
    (List.sort
       (fun p q ->
         match compare (Pattern.size p) (Pattern.size q) with
         | 0 -> Pattern.compare p q
         | c -> c)
       (Classify.patterns cls));
  T.print t

(* --- Table 5 --- *)

let table5 () =
  section "Table 5: antichains per size under span limits (3DFT)";
  let m = Enumerate.count_matrix ~max_size:capacity ~max_span:4 (Lazy.force dft3_ctx) in
  let t =
    T.create
      ~header:[ "span limit"; "size1"; "size2"; "size3"; "size4"; "size5"; "paper"; "match" ]
      ()
  in
  List.iter
    (fun (limit, expected) ->
      let row = Array.init capacity (fun s -> m.(limit).(s + 1)) in
      let ok = row = expected in
      T.add_row t
        ([ Printf.sprintf "<=%d" limit ]
        @ Array.to_list (Array.map string_of_int row)
        @ [
            String.concat "," (Array.to_list (Array.map string_of_int expected));
            (if ok then "yes" else "NO");
          ]))
    Pg.table5;
  T.print t

(* --- Table 6 --- *)

let table6 () =
  section "Table 6: node frequencies h(p,n) (Fig. 4 example)";
  let g = Lazy.force fig4 in
  let cls = Classify.compute ~capacity (Enumerate.make_ctx g) in
  let nodes = [ "a1"; "a2"; "a3"; "b4"; "b5" ] in
  let t = T.create ~header:("pattern" :: nodes) () in
  List.iter
    (fun p ->
      let freq = Classify.node_frequency cls p in
      T.add_row t
        (Pattern.to_string p
        :: List.map (fun n -> string_of_int freq.(Dfg.find g n)) nodes))
    (List.sort
       (fun p q ->
         match compare (Pattern.size p) (Pattern.size q) with
         | 0 -> Pattern.compare p q
         | c -> c)
       (Classify.patterns cls));
  T.print t

(* --- Table 7 --- *)

let measure_table7 g paper_rows ~span_limit ~seed =
  let classify =
    Classify.compute ?span_limit ~capacity (Enumerate.make_ctx g)
  in
  let rng = Rng.create ~seed in
  let ev = Core.Eval.make g in
  List.map
    (fun (pdef, paper_random, paper_selected) ->
      let sel = Select.select ~pdef classify in
      let sel_cycles = Core.Eval.cycles ev sel in
      let cycles =
        Random_select.trial_cycles rng ~eval:ev ~runs:10 ~capacity ~pdef
        |> List.map float_of_int
      in
      let avg = Mstats.mean (Array.of_list cycles) in
      let sd = Mstats.stddev (Array.of_list cycles) in
      (pdef, paper_random, paper_selected, avg, sd, sel_cycles))
    paper_rows

let table7_rows t rows =
  List.iter
    (fun (pdef, paper_random, paper_selected, avg, sd, sel) ->
      T.add_row t
        [
          string_of_int pdef;
          Printf.sprintf "%.1f" paper_random;
          Printf.sprintf "%.1f +/- %.1f" avg sd;
          string_of_int paper_selected;
          string_of_int sel;
        ])
    rows

let table7 () =
  section "Table 7: random vs selected patterns (span limit 1, 10 random runs)";
  let header =
    [ "Pdef"; "random paper"; "random measured"; "selected paper"; "selected measured" ]
  in
  Printf.printf "3DFT (the paper's exact Fig. 2 graph):\n";
  let t3 = T.create ~header () in
  table7_rows t3
    (measure_table7 (Lazy.force dft3) Pg.table7_3dft ~span_limit:(Some 1) ~seed:42);
  T.print t3;
  Printf.printf
    "5DFT (Winograd 5-point, 45 ops; the paper's exact 5DFT graph is unpublished\n\
     so absolute cycle counts differ -- the shape is the claim):\n";
  let t5 = T.create ~header () in
  table7_rows t5
    (measure_table7 (Lazy.force w5dft) Pg.table7_5dft ~span_limit:(Some 1) ~seed:43);
  T.print t5

(* --- Figures --- *)

let figures () =
  section "Figures 2 and 4: DOT exports";
  let g3 = Lazy.force dft3 in
  Dot.write_file ~path:"fig2_3dft.dot"
    (Dot.to_dot ~graph_name:"fig2_3dft" ~levels:(Levels.compute g3) g3);
  let g4 = Lazy.force fig4 in
  Dot.write_file ~path:"fig4_small.dot"
    (Dot.to_dot ~graph_name:"fig4_small" ~levels:(Levels.compute g4) g4);
  Printf.printf "wrote fig2_3dft.dot and fig4_small.dot (render with: dot -Tpng)\n";
  (* Figure 5 is the span illustration; its content is Theorem 1, which we
     exercise numerically. *)
  let lv = Levels.compute g3 in
  let a = [ Dfg.find g3 "a24"; Dfg.find g3 "b3" ] in
  Printf.printf
    "Theorem 1 check (Fig. 5): Span({a24,b3}) = %d, bound = ASAPmax + span + 1 = %d\n"
    (Levels.span lv a) (Levels.span_bound lv a)

let run_all () =
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  table7 ();
  figures ()
