(* Multi-process scaling: the shard worker fleet against the best
   single-process configuration on the huge workload tier.

     dune exec bench/main.exe -- --scaling [--smoke] [--jobs N]

   For every huge workload the harness runs the classify+portfolio sweep
   four ways — sequentially, on an in-process --jobs pool, and on worker
   fleets of growing size — and requires every result bit-identical to
   the sequential one (hard gate, exit 1).  In full mode the exact
   branch-and-bound joins on the chain-like workload, certificate
   compared field by field.

   The speedup gate (best fleet >= 2x the best single-process config) is
   enforced only when the host actually has as many cores as the largest
   fleet; on smaller hosts the ratio prints with a core-count note, like
   the domain-scaling bench.  The line starting with '{' is
   machine-readable JSON; BENCH_shard.json holds a full (non-smoke) run,
   and results/shard_scaling.csv the per-workload rows. *)

module Suite = Core.Suite
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Portfolio = Core.Portfolio
module Pattern = Core.Pattern
module Pool = Core.Pool
module Exact = Core.Exact
module Engine = Mps_shard.Engine
module Csv = Mps_util.Csv

let capacity = Core.Paper_graphs.montium_capacity
let worker_argv = [| Sys.executable_name; "--shard-worker" |]
let procs_list = [ 1; 2; 4 ]

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Everything the determinism gate compares, in a shape polymorphic [=]
   compares structurally (same idiom as the domain-scaling bench). *)
type sweep_result = {
  sw_name : string;
  sw_antichains : int;
  sw_entries : (string * string list * int) list;
}

let sweep ?pool ?engine (name, graph) =
  let ctx = Enumerate.make_ctx graph in
  let cls, outcome =
    match engine with
    | Some eng ->
        let cls = Engine.classify eng ~span_limit:1 ~capacity ctx in
        (cls, Engine.portfolio eng ~pdef:4 cls)
    | None ->
        let cls = Classify.compute ?pool ~span_limit:1 ~capacity ctx in
        (cls, Portfolio.run ?pool ~pdef:4 cls)
  in
  {
    sw_name = name;
    sw_antichains = Classify.total_antichains cls;
    sw_entries =
      List.map
        (fun e ->
          ( e.Portfolio.strategy,
            List.map Pattern.to_string e.Portfolio.patterns,
            e.Portfolio.cycles ))
        outcome.Portfolio.all;
  }

type row = {
  r_name : string;
  r_seq_s : float;
  r_jobs_s : float;
  r_procs_s : (int * float) list;
  r_ok : bool;
}

let certificate_digest (ct : Exact.certificate) =
  ( List.map Pattern.to_string ct.Exact.optimal,
    ct.Exact.optimal_cycles,
    ct.Exact.stats.Exact.nodes_visited,
    List.length ct.Exact.bans,
    ct.Exact.proven )

let run ?(smoke = false) ?(jobs = 4) () =
  let cores = Domain.recommended_domain_count () in
  let max_procs = List.fold_left max 1 procs_list in
  Printf.printf
    "\n\
     === Multi-process scaling: worker fleet vs in-process --jobs %d (host \
     cores: %d) ===\n"
    jobs cores;
  let workloads =
    let names =
      if smoke then [ "huge-grid"; "huge-deep" ]
      else [ "huge-grid"; "huge-wide"; "huge-deep" ]
    in
    List.map
      (fun n ->
        match Suite.find n with
        | Some e -> (n, e.Suite.build ())
        | None -> failwith ("missing huge workload " ^ n))
      names
  in
  let engines = List.map (fun p -> (p, Engine.create ~procs:p ~argv:worker_argv)) procs_list in
  let rows =
    Fun.protect
      ~finally:(fun () -> List.iter (fun (_, e) -> Engine.shutdown e) engines)
      (fun () ->
        List.map
          (fun w ->
            let r_seq, t_seq = wall (fun () -> sweep w) in
            let r_jobs, t_jobs =
              Pool.with_pool ~jobs (fun pool ->
                  wall (fun () -> sweep ~pool w))
            in
            let procs_runs =
              List.map
                (fun (p, eng) ->
                  let r, t = wall (fun () -> sweep ~engine:eng w) in
                  (p, r, t))
                engines
            in
            let ok =
              r_jobs = r_seq
              && List.for_all (fun (_, r, _) -> r = r_seq) procs_runs
            in
            Printf.printf "  %-10s seq %7.3f s   jobs%d %7.3f s  " (fst w)
              t_seq jobs t_jobs;
            List.iter
              (fun (p, _, t) -> Printf.printf " procs%d %7.3f s " p t)
              procs_runs;
            Printf.printf " %s\n" (if ok then "ok" else "MISMATCH");
            {
              r_name = fst w;
              r_seq_s = t_seq;
              r_jobs_s = t_jobs;
              r_procs_s = List.map (fun (p, _, t) -> (p, t)) procs_runs;
              r_ok = ok;
            })
          workloads)
  in
  if List.exists (fun r -> not r.r_ok) rows then begin
    Printf.printf
      "DETERMINISM MISMATCH: a fleet result differs from the sequential sweep\n";
    exit 1
  end;
  Printf.printf
    "  determinism: every fleet size identical to sequential (%d workloads)\n"
    (List.length rows);
  (* Exact branch-and-bound over the fleet: certificate parity on the
     chain-like workload (full runs only; the search is seconds, not
     milliseconds). *)
  let exact_ok =
    if smoke then true
    else begin
      let name = "huge-deep" in
      let g =
        match Suite.find name with
        | Some e -> e.Suite.build ()
        | None -> assert false
      in
      let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
      let seq_ct, t_seq = wall (fun () -> Exact.search ~pdef:4 cls) in
      let shard_ct, t_shard =
        Engine.with_engine ~procs:max_procs ~argv:worker_argv (fun eng ->
            let scls =
              Engine.classify eng ~span_limit:1 ~capacity (Enumerate.make_ctx g)
            in
            wall (fun () -> Engine.exact eng ~pdef:4 scls))
      in
      let ok = certificate_digest seq_ct = certificate_digest shard_ct in
      Printf.printf "  exact %-6s seq %7.3f s   procs%d %7.3f s  %s\n" name
        t_seq max_procs t_shard
        (if ok then "certificate identical" else "CERTIFICATE MISMATCH");
      ok
    end
  in
  if not exact_ok then exit 1;
  (* Speedup: best fleet against best single-process configuration. *)
  let best_single r = Float.min r.r_seq_s r.r_jobs_s in
  let best_fleet r =
    List.fold_left
      (fun acc (p, t) -> if p > 1 then Float.min acc t else acc)
      Float.infinity r.r_procs_s
  in
  let agg_single = List.fold_left (fun a r -> a +. best_single r) 0. rows in
  let agg_fleet = List.fold_left (fun a r -> a +. best_fleet r) 0. rows in
  let speedup = if agg_fleet > 0. then agg_single /. agg_fleet else Float.nan in
  Printf.printf "  fleet speedup over best single-process: %.2fx\n" speedup;
  if cores >= max_procs && speedup < 2.0 then begin
    Printf.printf
      "REGRESSION: fleet under the 2x speedup gate with %d cores available\n"
      cores;
    exit 1
  end;
  if cores < max_procs then
    Printf.printf
      "  note: host has %d core(s) for %d workers; the 2x gate needs >= %d \
       cores and is informational here\n"
      cores max_procs max_procs;
  if not smoke then begin
    let csv =
      Csv.create
        ~header:[ "workload"; "mode"; "wall_s"; "speedup_vs_best_single" ]
    in
    List.iter
      (fun r ->
        let single = best_single r in
        let add mode t =
          Csv.add_row csv
            [
              r.r_name; mode;
              Printf.sprintf "%.4f" t;
              Printf.sprintf "%.2f" (if t > 0. then single /. t else Float.nan);
            ]
        in
        add "seq" r.r_seq_s;
        add (Printf.sprintf "jobs%d" jobs) r.r_jobs_s;
        List.iter (fun (p, t) -> add (Printf.sprintf "procs%d" p) t) r.r_procs_s)
      rows;
    Csv.save ~path:"results/shard_scaling.csv" csv;
    Printf.printf "wrote results/shard_scaling.csv\n"
  end;
  let json_rows =
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"graph\":\"%s\",\"seq_s\":%.4f,\"jobs%d_s\":%.4f,%s}" r.r_name
             r.r_seq_s jobs r.r_jobs_s
             (String.concat ","
                (List.map
                   (fun (p, t) -> Printf.sprintf "\"procs%d_s\":%.4f" p t)
                   r.r_procs_s)))
         rows)
  in
  Printf.printf
    "{\"bench\":\"shard\",\"smoke\":%b,\"cores\":%d,\"jobs\":%d,\
     \"fleet_speedup\":%.2f,\"workloads\":[%s]}\n"
    smoke cores jobs speedup json_rows
