(* Bechamel micro-benchmarks: one Test.make per paper table (timing the code
   that regenerates it) plus scaling benches for the expensive kernels
   (antichain enumeration, classification, selection, scheduling). *)

module Pg = Core.Paper_graphs
module Dfg = Core.Dfg
module Levels = Core.Levels
module Pattern = Core.Pattern
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Mp = Core.Multi_pattern
module Random_dag = Core.Random_dag
module Dft = Core.Dft
module Program = Core.Program
open Bechamel
open Toolkit

let capacity = Pg.montium_capacity
let dft3 = Pg.fig2_3dft ()
let fig4 = Pg.fig4_small ()
let w5dft = Program.dfg (Dft.winograd5 ())
let dft3_classify = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx dft3)

let section4_patterns =
  let p1, p2 = Pg.section4_patterns in
  [ Pattern.of_string p1; Pattern.of_string p2 ]

(* One staged test per paper table: the work that regenerates it. *)
let table_tests =
  [
    Test.make ~name:"table1:levels-3dft" (Staged.stage (fun () ->
        ignore (Levels.compute dft3)));
    Test.make ~name:"table2:trace-schedule-3dft" (Staged.stage (fun () ->
        ignore (Mp.schedule ~trace:true ~patterns:section4_patterns dft3)));
    Test.make ~name:"table3:schedule-3-pattern-sets" (Staged.stage (fun () ->
        List.iter
          (fun (pats, _) ->
            ignore (Mp.schedule ~patterns:(List.map Pattern.of_string pats) dft3))
          Pg.table3_pattern_sets));
    Test.make ~name:"table4:classify-fig4" (Staged.stage (fun () ->
        ignore
          (Classify.compute ~keep_antichains:true ~capacity (Enumerate.make_ctx fig4))));
    Test.make ~name:"table5:count-matrix-3dft" (Staged.stage (fun () ->
        ignore
          (Enumerate.count_matrix ~max_size:capacity ~max_span:4
             (Enumerate.make_ctx dft3))));
    Test.make ~name:"table6:frequencies-fig4" (Staged.stage (fun () ->
        ignore (Classify.compute ~capacity (Enumerate.make_ctx fig4))));
    Test.make ~name:"table7:select+schedule-3dft" (Staged.stage (fun () ->
        let pats = Select.select ~pdef:4 dft3_classify in
        ignore (Mp.schedule ~patterns:pats dft3)));
  ]

(* Scaling: the heavy kernels on growing random DAGs. *)
let scaling_tests =
  let graphs =
    List.map
      (fun (layers, width) ->
        let params = { Random_dag.default_params with Random_dag.layers; width } in
        let g = Random_dag.generate ~params ~seed:1 () in
        (Printf.sprintf "%dn" (Dfg.node_count g), g))
      [ (6, 6); (10, 10); (16, 12) ]
  in
  List.concat_map
    (fun (tag, g) ->
      [
        Test.make
          ~name:(Printf.sprintf "enumerate-span1-%s" tag)
          (Staged.stage (fun () ->
               ignore
                 (Enumerate.count ~span_limit:1 ~max_size:capacity
                    (Enumerate.make_ctx g))));
        Test.make
          ~name:(Printf.sprintf "pipeline-%s" tag)
          (Staged.stage (fun () -> ignore (Core.Pipeline.run g)));
      ])
    graphs
  @ [
      Test.make ~name:"pipeline-w5dft"
        (Staged.stage (fun () -> ignore (Core.Pipeline.run w5dft)));
    ]

let run_group name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _clock tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
        (List.sort compare rows))
    merged

let run_all () =
  Printf.printf "\n=== Performance: per-table regeneration cost ===\n";
  run_group "tables" table_tests;
  Printf.printf "\n=== Performance: scaling on random DAGs ===\n";
  run_group "scaling" scaling_tests

(* --- domain scaling: sequential vs parallel, determinism-checked -------

   Measures the execution engine (Mps_exec.Pool) on the two wired hot
   paths: the portfolio workload sweep (classification + every selection
   strategy per graph) and raw antichain enumeration.  The parallel pass
   must produce results identical to the sequential pass — that assertion
   is the hard gate; the speedup number is the report.  On a host with
   fewer cores than [jobs] no speedup is physically possible (OCaml
   domains are OS threads and the minor GC is stop-the-world), so the
   harness prints the core count next to the ratio rather than failing. *)

module Pool = Core.Pool
module Portfolio = Core.Portfolio
module Ofdm = Core.Ofdm
module Kernels = Core.Kernels

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Everything that must be bit-identical between the two passes, in a
   shape polymorphic [=] compares structurally. *)
type sweep_result = {
  sw_name : string;
  sw_antichains : int;
  sw_pattern_pool : int;
  sw_entries : (string * string list * int) list;  (* strategy, patterns, cycles *)
}

let sweep_graph ?pool (name, graph) =
  let cls =
    Classify.compute ?pool ~span_limit:1 ~capacity (Enumerate.make_ctx graph)
  in
  let o = Portfolio.run ?pool ~pdef:4 cls in
  {
    sw_name = name;
    sw_antichains = Classify.total_antichains cls;
    sw_pattern_pool = Classify.pattern_count cls;
    sw_entries =
      List.map
        (fun e ->
          ( e.Portfolio.strategy,
            List.map Pattern.to_string e.Portfolio.patterns,
            e.Portfolio.cycles ))
        o.Portfolio.all;
  }

let scaling_workloads ~smoke =
  let base =
    [
      ("3dft", lazy (Pg.fig2_3dft ()));
      ("fig4", lazy (Pg.fig4_small ()));
      ("w5dft", lazy w5dft);
    ]
  in
  let heavy =
    [
      ("fft8", lazy (Program.dfg (Dft.radix2_fft ~n:8)));
      ("ofdm4", lazy (Program.dfg (Ofdm.receiver ~n:4)));
      ("dct8", lazy (Program.dfg (Kernels.dct8 ())));
      ( "rand-16x12",
        lazy
          (Random_dag.generate
             ~params:{ Random_dag.default_params with Random_dag.layers = 16; width = 12 }
             ~seed:1 ()) );
    ]
  in
  List.map
    (fun (n, g) -> (n, Lazy.force g))
    (if smoke then base else base @ heavy)

let pp_speedup label tseq tpar =
  Printf.printf "  %-24s seq %8.3f s   par %8.3f s   speedup %.2fx\n" label tseq
    tpar
    (if tpar > 0. then tseq /. tpar else Float.nan)

let run_scaling ?(smoke = false) ?(jobs = 4) () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf "\n=== Domain scaling: sequential vs --jobs %d (host cores: %d) ===\n"
    jobs cores;
  let workloads = scaling_workloads ~smoke in
  (* Portfolio sweep: classification dominated, parallel inside each graph
     (root fan-out + one task per strategy). *)
  let seq, t_seq = wall (fun () -> List.map (fun w -> sweep_graph w) workloads) in
  let par, t_par =
    Pool.with_pool ~jobs (fun pool ->
        wall (fun () -> List.map (fun w -> sweep_graph ~pool w) workloads))
  in
  let sweep_ok = seq = par in
  pp_speedup "portfolio-sweep" t_seq t_par;
  (* Raw enumeration on the widest workload of the set. *)
  let _, last_graph = List.nth workloads (List.length workloads - 1) in
  let ctx = Enumerate.make_ctx last_graph in
  let span = if smoke then 1 else 2 in
  let c_seq, te_seq =
    wall (fun () -> Enumerate.count ~span_limit:span ~max_size:capacity ctx)
  in
  let c_par, te_par =
    Pool.with_pool ~jobs (fun pool ->
        wall (fun () ->
            Enumerate.count ~pool ~span_limit:span ~max_size:capacity ctx))
  in
  let enum_ok = c_seq = c_par in
  pp_speedup "enumerate-count" te_seq te_par;
  if not (sweep_ok && enum_ok) then begin
    Printf.printf
      "DETERMINISM MISMATCH: parallel results differ from sequential (sweep %b, \
       enumerate %b)\n"
      sweep_ok enum_ok;
    exit 1
  end;
  Printf.printf "  determinism: parallel results identical to sequential (%d workloads)\n"
    (List.length workloads);
  if cores < jobs then
    Printf.printf
      "  note: host has %d core(s) for %d domains; speedup requires >= %d cores\n"
      cores jobs jobs

(* --- pattern ops: interning + matrix vs direct subpattern --------------

   Times the three primitives the universe exists for: interning a pool of
   patterns, and all-pairs subpattern tests answered directly (multiset
   walk) vs from the warmed dominance matrix.  The two all-pairs passes
   must agree exactly, and the matrix must beat the walk by at least 5x —
   both are hard gates (check.sh runs the smoke variant). *)

module Universe = Core.Universe

let run_pattern_ops ?(smoke = false) () =
  let colors = List.map Core.Color.of_char [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ] in
  let pats = Array.of_list (Pattern.enumerate ~colors ~max_size:capacity) in
  let n = Array.length pats in
  let reps = if smoke then 50 else 400 in
  let (), t_intern =
    wall (fun () ->
        for _ = 1 to reps do
          let u = Universe.create ~expected:n () in
          Array.iter (fun p -> ignore (Universe.intern u p)) pats
        done)
  in
  let hits_direct = ref 0 in
  let (), t_direct =
    wall (fun () ->
        for _ = 1 to reps do
          for i = 0 to n - 1 do
            let p = pats.(i) in
            for j = 0 to n - 1 do
              if Pattern.subpattern pats.(j) ~of_:p then incr hits_direct
            done
          done
        done)
  in
  let u = Universe.create ~expected:n () in
  let ids = Array.map (Universe.intern u) pats in
  (* First query pays the lazy matrix build; warm it outside the clock. *)
  ignore (Universe.subpattern u ids.(0) ~of_:ids.(0));
  let hits_matrix = ref 0 in
  let (), t_matrix =
    wall (fun () ->
        for _ = 1 to reps do
          for i = 0 to n - 1 do
            let pid = ids.(i) in
            for j = 0 to n - 1 do
              if Universe.subpattern u ids.(j) ~of_:pid then incr hits_matrix
            done
          done
        done)
  in
  let queries = float_of_int (reps * n * n) in
  let per_query t = t *. 1e9 /. queries in
  Printf.printf "\n=== Pattern ops: %d patterns, %d reps ===\n" n reps;
  Printf.printf "  intern             %10.1f ns/pattern\n"
    (t_intern *. 1e9 /. float_of_int (reps * n));
  Printf.printf "  subpattern/direct  %10.1f ns/query (%d positive)\n"
    (per_query t_direct) !hits_direct;
  Printf.printf "  subpattern/matrix  %10.1f ns/query (%d positive)\n"
    (per_query t_matrix) !hits_matrix;
  if !hits_direct <> !hits_matrix then begin
    Printf.printf "MISMATCH: matrix answers differ from the direct multiset walk\n";
    exit 1
  end;
  let speedup = if t_matrix > 0. then t_direct /. t_matrix else Float.infinity in
  Printf.printf "  matrix speedup     %10.2fx\n" speedup;
  if speedup < 5.0 then begin
    Printf.printf
      "REGRESSION: matrix subpattern under 5x faster than the multiset walk\n";
    exit 1
  end

(* --- eval ops: cold schedule vs warm context vs memo cache -------------

   Times the three ways a search can cost a pattern set on one graph: the
   full [Multi_pattern.schedule] path (fresh analyses and a [Schedule.t]
   per call), one shared [Eval] context evaluating distinct sets (analyses
   amortized, dense inner loop, nothing cached yet), and the same context
   re-answering sets it has already scheduled (pure memo-cache hits).  All
   three must agree on every cycle count, the cache must report exactly
   the expected hit/miss split, and the warm context must beat the cold
   path by at least 5x — hard gates (check.sh runs the smoke variant).
   The line starting with '{' is machine-readable JSON; BENCH_eval.json
   at the repo root is one committed full-mode capture of it. *)

module Rng = Core.Rng
module Schedule = Core.Schedule
module Eval = Core.Eval
module Random_select = Core.Random_select

(* Best-of-N wall time: the timed regions are a few milliseconds, so a
   single sample is at the mercy of scheduler noise; the minimum of a few
   trials is the stable figure (first trial also absorbs warm-up). *)
let wall_min trials f =
  let best = ref infinity in
  for _ = 1 to trials do
    let (), t = wall f in
    if t < !best then best := t
  done;
  !best

let run_eval_ops ?(smoke = false) () =
  let g = dft3 in
  let target = if smoke then 32 else 64 in
  let reps = if smoke then 50 else 100 in
  let trials = 3 in
  let rng = Rng.create ~seed:7 in
  let colors = Dfg.colors g in
  (* Distinct coverage-complete sets; the canonical key ignores order so
     the warm pass never accidentally hits the (order-insensitive) cache. *)
  let seen = Hashtbl.create 97 in
  let sets = ref [] in
  let guard = ref 0 in
  while List.length !sets < target && !guard < target * 50 do
    incr guard;
    let ps = Random_select.select rng ~colors ~capacity ~pdef:4 in
    let key =
      String.concat "|" (List.sort compare (List.map Pattern.to_string ps))
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      sets := ps :: !sets
    end
  done;
  let sets = Array.of_list (List.rev !sets) in
  let nsets = Array.length sets in
  let cold = Array.make nsets 0 in
  let t_cold =
    wall_min trials (fun () ->
        for _ = 1 to reps do
          for i = 0 to nsets - 1 do
            let r = Mp.schedule ~patterns:sets.(i) g in
            cold.(i) <- Schedule.cycles r.Mp.schedule
          done
        done)
  in
  let warm = Array.make nsets 0 in
  let t_warm =
    wall_min trials (fun () ->
        for _ = 1 to reps do
          (* Fresh context per rep: every set is a miss, so this times the
             dense evaluation loop with analyses amortized over [nsets]. *)
          let ev = Eval.make g in
          for i = 0 to nsets - 1 do
            warm.(i) <- Eval.cycles ev sets.(i)
          done
        done)
  in
  let ev = Eval.make g in
  let hot = Array.make nsets 0 in
  for i = 0 to nsets - 1 do
    hot.(i) <- Eval.cycles ev sets.(i)
  done;
  let t_hit =
    wall_min trials (fun () ->
        for _ = 1 to reps do
          for i = 0 to nsets - 1 do
            hot.(i) <- Eval.cycles ev sets.(i)
          done
        done)
  in
  let hits, misses = Eval.cache_stats ev in
  let evals = float_of_int (reps * nsets) in
  let per t = t *. 1e9 /. evals in
  let warm_speedup = if t_warm > 0. then t_cold /. t_warm else Float.infinity in
  let hit_speedup = if t_hit > 0. then t_cold /. t_hit else Float.infinity in
  Printf.printf "\n=== Eval ops: %d pattern sets on 3dft, %d reps ===\n" nsets
    reps;
  Printf.printf "  cold Multi_pattern.schedule %10.1f ns/eval\n" (per t_cold);
  Printf.printf "  warm Eval.cycles (miss)     %10.1f ns/eval\n" (per t_warm);
  Printf.printf "  hot  Eval.cycles (hit)      %10.1f ns/eval\n" (per t_hit);
  Printf.printf "  warm speedup %10.2fx   hit speedup %10.2fx\n" warm_speedup
    hit_speedup;
  if cold <> warm || cold <> hot then begin
    Printf.printf
      "MISMATCH: cold/warm/hit cycle counts disagree on some pattern set\n";
    exit 1
  end;
  if misses <> nsets || hits <> trials * reps * nsets then begin
    Printf.printf
      "MISMATCH: cache reports %d hits / %d misses, expected %d / %d\n" hits
      misses
      (trials * reps * nsets)
      nsets;
    exit 1
  end;
  (* --- delta row: suffix replay vs full re-evaluation ---------------

     A move stream where delta shines: a deep two-wide pipeline whose
     first [layers - 9] layers are all one color and only the nine tail
     layers cycle through the colors the moves touch (c, d, e).  A set is
     the constant "aa" plus one single-color pattern per tail color;
     every move swaps one of those three slots for a different size, so
     the first divergent cycle is the first tail cycle — placed one past
     the checkpoint ladder's 211 so [Eval.cycles_delta] restores there
     and replays only the tail, while the full path re-steps the whole
     pipeline.  Walking the 5x5x5 size grid in snake order gives 124
     single-swap moves over 125 distinct sets per context, so the one
     recorded full evaluation opening each stream is amortized exactly as
     it is in an annealing or beam move loop.  Each rep walks the stream
     on a fresh context (every set a miss), but the contexts are built
     outside the clock, with a major collection between: graph analyses
     cost the same on both sides and their garbage would otherwise be
     collected inside the timed region. *)
  let dlayers = 221 in
  let dtail = 9 in
  let dreps = if smoke then 4 else 10 in
  let dg =
    let name l k = Printf.sprintf "n%d_%d" l k in
    let color l =
      if l < dlayers - dtail then 'a'
      else [| 'c'; 'd'; 'e' |].((l - (dlayers - dtail)) mod 3)
    in
    let nodes = ref [] and edges = ref [] in
    for l = dlayers - 1 downto 0 do
      for k = 1 downto 0 do
        nodes := (name l k, Core.Color.of_char (color l)) :: !nodes;
        if l > 0 then
          for p = 0 to 1 do
            edges := (name (l - 1) p, name l k) :: !edges
          done
      done
    done;
    Dfg.of_alist !nodes !edges
  in
  let base = Pattern.of_string "aa" in
  let slot c k = Pattern.of_string (String.make (k + 1) c) in
  let set (i, j, k) = [ base; slot 'c' i; slot 'd' j; slot 'e' k ] in
  (* Boustrophedon walk of the size grid: consecutive triples differ in
     exactly one coordinate, by one size step. *)
  let stream =
    let acc = ref [] in
    for i = 0 to 4 do
      let js = if i mod 2 = 0 then [ 0; 1; 2; 3; 4 ] else [ 4; 3; 2; 1; 0 ] in
      List.iteri
        (fun jx j ->
          let ks =
            if (i * 5 + jx) mod 2 = 0 then [ 0; 1; 2; 3; 4 ]
            else [ 4; 3; 2; 1; 0 ]
          in
          List.iter (fun k -> acc := (i, j, k) :: !acc) ks)
        js
    done;
    Array.of_list (List.rev !acc)
  in
  let nv = Array.length stream in
  let moved prev next =
    (* The one slot the snake walk changed. *)
    let (pi, pj, pk), (ni, nj, nk) = (prev, next) in
    if pi <> ni then (slot 'c' pi, slot 'c' ni)
    else if pj <> nj then (slot 'd' pj, slot 'd' nj)
    else (slot 'e' pk, slot 'e' nk)
  in
  let wall_min_fresh ~delta f =
    let best = ref infinity in
    for _ = 1 to trials do
      let evs = Array.init dreps (fun _ -> Eval.make ~delta dg) in
      Gc.full_major ();
      let (), t = wall (fun () -> Array.iter f evs) in
      if t < !best then best := t
    done;
    !best
  in
  let dfull = Array.make nv 0 in
  let t_dfull =
    wall_min_fresh ~delta:false (fun ev ->
        for i = 0 to nv - 1 do
          dfull.(i) <- Eval.cycles ev (set stream.(i))
        done)
  in
  let walk_delta out ev =
    out.(0) <- Eval.cycles ev (set stream.(0));
    for i = 1 to nv - 1 do
      let removed, added = moved stream.(i - 1) stream.(i) in
      out.(i) <-
        Eval.cycles_delta ev ~removed ~prev:(set stream.(i - 1)) ~added
    done
  in
  let ddelta = Array.make nv 0 in
  let t_ddelta = wall_min_fresh ~delta:true (walk_delta ddelta) in
  (* One untimed pass to pin the accounting: every move a delta hit, no
     fallbacks, every set exactly one cache miss. *)
  let ev = Eval.make ~delta:true dg in
  walk_delta ddelta ev;
  let d_hits, d_fallbacks, d_saved = Eval.delta_stats ev in
  let dch, dcm = Eval.cache_stats ev in
  let devals = float_of_int (dreps * nv) in
  let dper t = t *. 1e9 /. devals in
  let delta_speedup =
    if t_ddelta > 0. then t_dfull /. t_ddelta else Float.infinity
  in
  Printf.printf "\n=== Eval delta: %d-swap stream on deep%dx2, %d reps ===\n"
    (nv - 1) dlayers dreps;
  Printf.printf "  full Eval.cycles (miss)     %10.1f ns/eval\n" (dper t_dfull);
  Printf.printf "  delta suffix replay         %10.1f ns/eval\n" (dper t_ddelta);
  Printf.printf "  delta speedup %9.2fx   (%d hits, %d fallbacks, %d cycles saved)\n"
    delta_speedup d_hits d_fallbacks d_saved;
  if dfull <> ddelta then begin
    Printf.printf
      "MISMATCH: delta and full cycle counts disagree on some move\n";
    exit 1
  end;
  if d_hits <> nv - 1 || d_fallbacks <> 0 || d_saved <= 0 then begin
    Printf.printf
      "MISMATCH: delta stats report %d hits / %d fallbacks / %d saved, \
       expected %d / 0 / >0\n"
      d_hits d_fallbacks d_saved (nv - 1);
    exit 1
  end;
  if dch <> 0 || dcm <> nv then begin
    Printf.printf
      "MISMATCH: delta pass cache reports %d hits / %d misses, expected 0 / %d\n"
      dch dcm nv;
    exit 1
  end;
  Printf.printf
    "{\"bench\":\"eval-ops\",\"graph\":\"3dft\",\"smoke\":%b,\"sets\":%d,\
     \"reps\":%d,\"cold_ns_per_eval\":%.1f,\"warm_ns_per_eval\":%.1f,\
     \"hit_ns_per_eval\":%.1f,\"warm_speedup\":%.2f,\"hit_speedup\":%.2f,\
     \"cache_hits\":%d,\"cache_misses\":%d,\"delta_graph\":\"deep%dx2\",\
     \"delta_moves\":%d,\"delta_reps\":%d,\"delta_full_ns_per_eval\":%.1f,\
     \"delta_ns_per_eval\":%.1f,\"delta_speedup\":%.2f,\"delta_hits\":%d,\
     \"delta_fallbacks\":%d,\"delta_cycles_saved\":%d}\n"
    smoke nsets reps (per t_cold) (per t_warm) (per t_hit) warm_speedup
    hit_speedup hits misses dlayers (nv - 1) dreps (dper t_dfull)
    (dper t_ddelta) delta_speedup d_hits d_fallbacks d_saved;
  if warm_speedup < 5.0 then begin
    Printf.printf
      "REGRESSION: warm Eval.cycles under 5x faster than cold \
       Multi_pattern.schedule\n";
    exit 1
  end;
  if delta_speedup < 3.0 then begin
    Printf.printf
      "REGRESSION: Eval.cycles_delta under 3x faster than full \
       re-evaluation on the move stream\n";
    exit 1
  end
