(* Serve throughput: the warm-state payoff, measured end to end.

   A load generator drives [Server.handle_line] — the whole protocol
   minus the file descriptors — with pipeline and certify requests over a
   corpus of built-in workloads and random DAGs shipped as inline DFG
   text, in two mixes:

     cold: every request names a graph the session has never seen, so
           each one pays classification, context construction and (for
           certify) the full branch-and-bound;
     warm: requests cycle over four graphs, so after the first lap every
           classification is a cache hit and every certification opens
           with the full prior ban list.

   Both mixes run at --jobs 1 and 4 (intra-request fan-out through the
   session pool).  Hard gates (exit 1):

     - every response is "ok":true (N.B. the generator sends no bad
       requests);
     - the jobs-1 and jobs-4 response streams are byte-identical per mix
       (the serve determinism contract, checked at bench scale);
     - at --jobs 4 the warm mix clears 3x the cold mix's requests/s —
       the ISSUE's acceptance bar for the session layer actually earning
       its keep.

   The lines starting with '{' are machine-readable JSON; BENCH_serve.json
   at the repo root is one committed full-mode capture.  Full mode also
   rewrites results/serve_throughput.csv. *)

module Session = Mps_serve.Session
module Server = Mps_serve.Server
module Protocol = Mps_serve.Protocol
module Pool = Core.Pool
module Random_dag = Core.Random_dag
module Csv = Mps_util.Csv

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let wall_min trials f =
  let best = ref infinity in
  for _ = 1 to trials do
    let (), t = wall f in
    if t < !best then best := t
  done;
  !best

(* Random graphs go over the wire as inline DFG text, like a real client
   that schedules kernels the server has never heard of. *)
let random_dfg_text ~seed =
  Core.Dfg_parse.to_string (Random_dag.generate ~seed ())

let request ~cmd ~source =
  let id, src =
    match source with
    | `Builtin name -> (Protocol.Json.Str (cmd ^ ":" ^ name), Protocol.Builtin name)
    | `Dfg (tag, text) ->
        (Protocol.Json.Str (cmd ^ ":" ^ tag), Protocol.Dfg_text text)
  in
  let command =
    match Protocol.command_of_string cmd with
    | Some c -> c
    | None -> invalid_arg ("serve bench: bad command " ^ cmd)
  in
  Protocol.request_to_line (Protocol.make ~id ~source:src command)

(* Each graph is asked for the full pipeline and then a certification —
   the two heaviest request kinds, and the two the warm state helps most
   (classification + eval context for the first, ban list for the
   second). *)
let requests_over graphs =
  List.concat_map
    (fun source ->
      [ request ~cmd:"pipeline" ~source; request ~cmd:"certify" ~source ])
    graphs

let builtin_sources = [ `Builtin "3dft"; `Builtin "fig4"; `Builtin "w3dft" ]

let random_sources ~count ~first_seed =
  List.init count (fun i ->
      let seed = first_seed + i in
      `Dfg (Printf.sprintf "rand%d" seed, random_dfg_text ~seed))

let serve_all sess lines = List.map (Server.handle_line sess) lines

let check_all_ok ~what responses =
  List.iteri
    (fun i r ->
      let ok_marker = "\"ok\":true" in
      let has_ok =
        let rec find from =
          if from + String.length ok_marker > String.length r then false
          else if String.sub r from (String.length ok_marker) = ok_marker then
            true
          else find (from + 1)
        in
        find 0
      in
      if not has_ok then begin
        Printf.printf "MISMATCH: %s response %d not ok: %s\n" what i r;
        exit 1
      end)
    responses

(* One (jobs, mix) measurement: requests/s over [lines], best of
   [trials].  The cold mix rebuilds the session inside the timed region
   (a fresh session per trial is the workload being measured); the warm
   mix times a session that already served one full lap. *)
let measure ~trials ~pool ~mix lines =
  let nreq = List.length lines in
  let responses = ref [] in
  let t =
    match mix with
    | `Cold ->
        wall_min trials (fun () ->
            let sess = Session.create ?pool () in
            responses := serve_all sess lines)
    | `Warm ->
        let sess = Session.create ?pool () in
        ignore (serve_all sess lines);
        wall_min trials (fun () -> responses := serve_all sess lines)
  in
  check_all_ok
    ~what:(match mix with `Cold -> "cold" | `Warm -> "warm")
    !responses;
  (nreq, t, float_of_int nreq /. t, !responses)

let run ?(smoke = false) () =
  let trials = 3 in
  let distinct = if smoke then 6 else 18 in
  let laps = if smoke then 3 else 8 in
  (* Cold corpus: every graph distinct.  Warm corpus: the same number of
     requests cycling over four graphs. *)
  let cold_sources =
    builtin_sources @ random_sources ~count:(distinct - 3) ~first_seed:100
  in
  let warm_base = [ `Builtin "3dft"; `Builtin "fig4" ] @ random_sources ~count:2 ~first_seed:100 in
  let warm_sources = List.concat (List.init laps (fun _ -> warm_base)) in
  let cold_lines = requests_over cold_sources in
  let warm_lines = requests_over warm_sources in
  Printf.printf
    "\n=== Serve throughput: %d cold / %d warm requests, pipeline+certify ===\n"
    (List.length cold_lines) (List.length warm_lines);
  let at_jobs jobs f =
    if jobs = 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))
  in
  let results =
    List.map
      (fun jobs ->
        at_jobs jobs @@ fun pool ->
        let _, cold_t, cold_rps, cold_resp =
          measure ~trials ~pool ~mix:`Cold cold_lines
        in
        let _, warm_t, warm_rps, warm_resp =
          measure ~trials ~pool ~mix:`Warm warm_lines
        in
        Printf.printf
          "  jobs %d: cold %6.1f req/s (%.3fs)   warm %7.1f req/s (%.3fs)   \
           warm/cold %.2fx\n"
          jobs cold_rps cold_t warm_rps warm_t (warm_rps /. cold_rps);
        (jobs, cold_t, cold_rps, warm_t, warm_rps, cold_resp, warm_resp))
      [ 1; 4 ]
  in
  (* Determinism at bench scale: the response streams of both mixes must
     not depend on the worker count. *)
  (match results with
  | [ (_, _, _, _, _, c1, w1); (_, _, _, _, _, c4, w4) ] ->
      if c1 <> c4 || w1 <> w4 then begin
        Printf.printf
          "MISMATCH: serve responses differ between --jobs 1 and --jobs 4\n";
        exit 1
      end
  | _ -> assert false);
  let ratio4 =
    match results with
    | [ _; (_, _, cold_rps, _, warm_rps, _, _) ] -> warm_rps /. cold_rps
    | _ -> assert false
  in
  List.iter
    (fun (jobs, cold_t, cold_rps, warm_t, warm_rps, _, _) ->
      Printf.printf
        "{\"bench\":\"serve\",\"smoke\":%b,\"jobs\":%d,\
         \"cold_requests\":%d,\"cold_wall_s\":%.4f,\"cold_rps\":%.1f,\
         \"warm_requests\":%d,\"warm_wall_s\":%.4f,\"warm_rps\":%.1f,\
         \"warm_over_cold\":%.2f}\n"
        smoke jobs (List.length cold_lines) cold_t cold_rps
        (List.length warm_lines) warm_t warm_rps (warm_rps /. cold_rps))
    results;
  if not smoke then begin
    let csv =
      Csv.create ~header:[ "jobs"; "mix"; "requests"; "wall_s"; "requests_per_s" ]
    in
    List.iter
      (fun (jobs, cold_t, cold_rps, warm_t, warm_rps, _, _) ->
        Csv.add_row csv
          [
            string_of_int jobs; "cold";
            string_of_int (List.length cold_lines);
            Printf.sprintf "%.4f" cold_t;
            Printf.sprintf "%.1f" cold_rps;
          ];
        Csv.add_row csv
          [
            string_of_int jobs; "warm";
            string_of_int (List.length warm_lines);
            Printf.sprintf "%.4f" warm_t;
            Printf.sprintf "%.1f" warm_rps;
          ])
      results;
    Csv.save ~path:"results/serve_throughput.csv" csv;
    Printf.printf "wrote results/serve_throughput.csv\n"
  end;
  if ratio4 < 3.0 then begin
    Printf.printf
      "REGRESSION: warm serve mix under 3x the cold throughput at --jobs 4\n";
    exit 1
  end
