(* CSV export of the headline experiment data, for external plotting:

     dune exec bench/main.exe -- --csv     (writes results/*.csv)

   Only the sweeps one would actually plot are exported: Table 7 for both
   workloads, the span-limit sweep, and the Pdef sweep. *)

module Csv = Mps_util.Csv
module Dfg = Core.Dfg
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Random_select = Core.Random_select
module Mp = Core.Multi_pattern
module Schedule = Core.Schedule
module Pg = Core.Paper_graphs
module Dft = Core.Dft
module Program = Core.Program
module Obs = Core.Obs
module Pipeline = Core.Pipeline

let capacity = Pg.montium_capacity

let table7_csv path g paper ~seed =
  let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
  let rng = Core.Rng.create ~seed in
  let csv =
    Csv.create
      ~header:
        [ "pdef"; "random_paper"; "random_measured_mean"; "random_measured_sd";
          "selected_paper"; "selected_measured" ]
  in
  let ev = Core.Eval.make g in
  List.iter
    (fun (pdef, rp, sp) ->
      let sel = Select.select ~pdef cls in
      let sel_cycles = Core.Eval.cycles ev sel in
      let samples =
        Array.of_list
          (List.map float_of_int
             (Random_select.trial_cycles rng ~eval:ev ~runs:10 ~capacity ~pdef))
      in
      Csv.add_row csv
        [
          string_of_int pdef;
          Printf.sprintf "%.1f" rp;
          Printf.sprintf "%.2f" (Core.Mstats.mean samples);
          Printf.sprintf "%.2f" (Core.Mstats.stddev samples);
          string_of_int sp;
          string_of_int sel_cycles;
        ])
    paper;
  Csv.save ~path csv

let span_sweep_csv path =
  let csv =
    Csv.create ~header:[ "workload"; "span_limit"; "antichains"; "patterns"; "cycles" ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun span_limit ->
          let cls =
            Classify.compute ?span_limit ~budget:3_000_000 ~capacity
              (Enumerate.make_ctx g)
          in
          let pats = Select.select ~pdef:4 cls in
          Csv.add_row csv
            [
              name;
              (match span_limit with None -> "inf" | Some l -> string_of_int l);
              string_of_int (Classify.total_antichains cls);
              string_of_int (Classify.pattern_count cls);
              string_of_int (Schedule.cycles (Mp.schedule ~patterns:pats g).Mp.schedule);
            ])
        [ Some 0; Some 1; Some 2; Some 3; None ])
    [
      ("3dft", Pg.fig2_3dft ());
      ("w5dft", Program.dfg (Dft.winograd5 ()));
      ("fft8", Program.dfg (Dft.radix2_fft ~n:8));
    ];
  Csv.save ~path csv

let pdef_sweep_csv path =
  let csv = Csv.create ~header:[ "workload"; "pdef"; "cycles"; "configs" ] in
  List.iter
    (fun (name, g) ->
      let cls = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx g) in
      List.iter
        (fun pdef ->
          let pats = Select.select ~pdef cls in
          let sched = (Mp.schedule ~patterns:pats g).Mp.schedule in
          Csv.add_row csv
            [
              name;
              string_of_int pdef;
              string_of_int (Schedule.cycles sched);
              string_of_int (List.length (Schedule.distinct_patterns sched));
            ])
        [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ])
    [ ("3dft", Pg.fig2_3dft ()); ("w5dft", Program.dfg (Dft.winograd5 ())) ];
  Csv.save ~path csv

(* Certified optimality gap of the heuristic per workload: one
   [Pipeline.certify] run each, with the exact backend's visited/pruned
   accounting alongside — the plot behind the --exact bench table. *)
let exact_gap_csv path =
  let csv =
    Csv.create
      ~header:
        [ "workload"; "pdef"; "heuristic_cycles"; "exact_cycles"; "gap_percent";
          "proven"; "visited"; "evaluated"; "pruned_span"; "pruned_color";
          "pruned_ban"; "pruned_dominance" ]
  in
  let module Exact = Core.Exact in
  List.iter
    (fun (name, g, pdef) ->
      let options = { Pipeline.default_options with Pipeline.pdef } in
      let cert = Pipeline.certify ~options g in
      let s = cert.Pipeline.exact.Exact.stats in
      Csv.add_row csv
        [
          name;
          string_of_int pdef;
          string_of_int cert.Pipeline.heuristic_cycles;
          string_of_int cert.Pipeline.exact.Exact.optimal_cycles;
          Printf.sprintf "%.1f" cert.Pipeline.gap_percent;
          string_of_bool cert.Pipeline.exact.Exact.proven;
          string_of_int s.Exact.nodes_visited;
          string_of_int s.Exact.evaluated;
          string_of_int s.Exact.pruned_span;
          string_of_int s.Exact.pruned_color;
          string_of_int s.Exact.pruned_ban;
          string_of_int s.Exact.pruned_dominance;
        ])
    [
      ("fig4", Pg.fig4_small (), 2);
      ("3dft", Pg.fig2_3dft (), 4);
      ("w5dft", Program.dfg (Dft.winograd5 ()), 4);
    ];
  Csv.save ~path csv

(* One full pipeline run per (workload, strategy) under an Obs collector,
   every counter as one CSV row — work-size metrics (antichains enumerated,
   candidates scored, schedule cycles) to plot against the timing
   benchmarks.  Workloads are the base Suite corpus; the auto runs add the
   select.auto.* decision counters next to the eq8 baseline. *)
let obs_counters_csv path =
  let csv =
    Csv.create
      ~header:
        [ "workload"; "strategy"; "counter"; "kind"; "samples"; "total";
          "min"; "max" ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (sname, strategy) ->
          let obs = Obs.create () in
          let options = { Pipeline.default_options with Pipeline.strategy } in
          let (_ : Pipeline.t) =
            Obs.run obs (fun () -> Pipeline.run ~options g)
          in
          List.iter
            (fun (c : Obs.counter) ->
              Csv.add_row csv
                [
                  name;
                  sname;
                  c.Obs.name;
                  (match c.Obs.kind with Obs.Sum -> "sum" | Obs.Dist -> "dist");
                  string_of_int c.Obs.samples;
                  string_of_int c.Obs.total;
                  string_of_int c.Obs.vmin;
                  string_of_int c.Obs.vmax;
                ])
            (Obs.counters obs))
        [
          ("eq8", Core.Auto.Paper);
          ("auto", Core.Auto.Auto Core.Auto.builtin_rules);
        ])
    (Core.Suite.graphs ());
  Csv.save ~path csv

let run_all () =
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  table7_csv "results/table7_3dft.csv" (Pg.fig2_3dft ()) Pg.table7_3dft ~seed:42;
  table7_csv "results/table7_5dft.csv"
    (Program.dfg (Dft.winograd5 ()))
    Pg.table7_5dft ~seed:43;
  span_sweep_csv "results/span_sweep.csv";
  pdef_sweep_csv "results/pdef_sweep.csv";
  obs_counters_csv "results/obs_counters.csv";
  exact_gap_csv "results/exact_gap.csv";
  print_endline
    "wrote results/table7_3dft.csv results/table7_5dft.csv results/span_sweep.csv \
     results/pdef_sweep.csv results/obs_counters.csv results/exact_gap.csv"
