(* repro_check: the reproduction gate.

     dune exec bin/repro_check.exe

   Re-derives every number the paper prints from scratch and exits 0 only
   if all of them hold: Table 1 (levels), Table 4 (antichains), Table 5
   (span-limited counts), Table 6 (frequencies), the §5.2 selection
   arithmetic, the §4.3 7-cycle schedule, and Table 7's 3DFT "Selected"
   column.  Intended as a single-command CI gate; the alcotest suites cover
   far more, but this binary is the one-screen summary of "does the
   repository still reproduce the paper". *)

module C = Core

let failures = ref 0

let check name ok =
  Printf.printf "%-58s %s\n" name (if ok then "ok" else "FAIL");
  if not ok then incr failures

let () =
  let g = C.Paper_graphs.fig2_3dft () in
  let lv = C.Levels.compute g in

  check "Table 1: all 22 published level triples"
    (List.for_all
       (fun (name, (a, l, h)) ->
         let i = C.Dfg.find g name in
         (C.Levels.asap lv i, C.Levels.alap lv i, C.Levels.height lv i) = (a, l, h))
       C.Paper_graphs.table1);

  let ctx = C.Enumerate.make_ctx g in
  let m = C.Enumerate.count_matrix ~max_size:5 ~max_span:4 ctx in
  check "Table 5: all 25 span-limited antichain counts"
    (List.for_all
       (fun (limit, expected) ->
         Array.to_list (Array.init 5 (fun s -> m.(limit).(s + 1)))
         = Array.to_list expected)
       C.Paper_graphs.table5);

  let fig4 = C.Paper_graphs.fig4_small () in
  let cls4 =
    C.Classify.compute ~keep_antichains:true ~capacity:5 (C.Enumerate.make_ctx fig4)
  in
  check "Table 4: the four patterns with eight antichains"
    (List.sort compare (List.map C.Pattern.to_string (C.Classify.patterns cls4))
     = [ "a"; "aa"; "b"; "bb" ]
    && C.Classify.total_antichains cls4 = 8);

  check "Table 6: node frequencies of the Fig. 4 example"
    (let freq p n =
       (C.Classify.node_frequency cls4 (C.Pattern.of_string p)).(C.Dfg.find fig4 n)
     in
     freq "aa" "a3" = 2 && freq "aa" "a1" = 1 && freq "a" "a2" = 1
     && freq "bb" "b4" = 1 && freq "b" "b5" = 1 && freq "aa" "b4" = 0);

  let report = C.Select.select_report ~pdef:2 cls4 in
  check "Section 5.2: first-step priorities 26/24/88/84"
    (match report.C.Select.steps with
    | step :: _ ->
        let f p = List.assoc (C.Pattern.of_string p) step.C.Select.priorities in
        f "a" = 26.0 && f "b" = 24.0 && f "aa" = 88.0 && f "bb" = 84.0
    | [] -> false);
  check "Section 5.2: selects {aa} then {bb}"
    (List.map C.Pattern.to_string report.C.Select.patterns = [ "aa"; "bb" ]);
  check "Section 5.2: Pdef=1 falls back to {ab}"
    (match (C.Select.select_report ~pdef:1 cls4).C.Select.steps with
    | [ step ] -> step.C.Select.fallback && C.Pattern.to_string step.C.Select.chosen = "ab"
    | _ -> false);

  let p1, p2 = C.Paper_graphs.section4_patterns in
  check "Section 4.3: {aabcc, aaacc} schedules in 7 cycles"
    (C.Multi_pattern.cycles
       ~patterns:[ C.Pattern.of_string p1; C.Pattern.of_string p2 ]
       g
    = C.Paper_graphs.section4_cycles);
  check "Table 2: per-cycle color bags and pattern choices"
    (let r =
       C.Multi_pattern.schedule ~trace:true
         ~patterns:[ C.Pattern.of_string p1; C.Pattern.of_string p2 ]
         g
     in
     let sched = r.C.Multi_pattern.schedule in
     List.length C.Paper_graphs.table2 = C.Schedule.cycles sched
     && List.for_all2
          (fun (bag, chosen) (c, row) ->
            C.Pattern.to_string (C.Schedule.used_at g sched c) = bag
            && row.C.Multi_pattern.row_chosen + 1 = chosen)
          C.Paper_graphs.table2
          (List.mapi (fun c row -> (c, row)) r.C.Multi_pattern.trace));

  let cls = C.Classify.compute ~span_limit:1 ~capacity:5 ctx in
  check "Table 7: 3DFT selected column 8/7/7/7/6 at span limit 1"
    (List.for_all
       (fun (pdef, _, expected) ->
         let pats = C.Select.select ~pdef cls in
         C.Multi_pattern.cycles ~patterns:pats g = expected)
       C.Paper_graphs.table7_3dft);

  Printf.printf "\n%s\n"
    (if !failures = 0 then "reproduction intact: every published number re-derived"
     else Printf.sprintf "REPRODUCTION BROKEN: %d check(s) failed" !failures);
  exit (if !failures = 0 then 0 else 1)
