(* Strength reduction (mul-by-2^k -> shift) and the CSV writer. *)

module Expr = Mps_frontend.Expr
module Opcode = Mps_frontend.Opcode
module Strength = Mps_frontend.Strength
module Lower = Mps_frontend.Lower
module Program = Mps_frontend.Program
module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Fp = Mps_montium.Fixed_point
module Csv = Mps_util.Csv

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- strength reduction --- *)

let test_power_of_two () =
  Alcotest.(check (option int)) "8" (Some 3) (Strength.power_of_two 8.0);
  Alcotest.(check (option int)) "1" (Some 0) (Strength.power_of_two 1.0);
  Alcotest.(check (option int)) "16384" (Some 14) (Strength.power_of_two 16384.0);
  Alcotest.(check (option int)) "32768 out of range" None (Strength.power_of_two 32768.0);
  Alcotest.(check (option int)) "6" None (Strength.power_of_two 6.0);
  Alcotest.(check (option int)) "0.5" None (Strength.power_of_two 0.5);
  Alcotest.(check (option int)) "-4" None (Strength.power_of_two (-4.0))

let count_color prog ch =
  let g = Program.dfg prog in
  List.length (List.filter (fun i -> Color.to_char (Dfg.color g i) = ch) (Dfg.nodes g))

let test_rewrites_muls_to_shifts () =
  let bindings =
    [
      ("y", Expr.((const 8.0 * var "x") + (const 3.0 * var "z")));
      ("w", Expr.(var "x" * const (-4.0)));
    ]
  in
  let plain = Lower.lower bindings in
  let reduced = Strength.program bindings in
  Alcotest.(check int) "three muls before" 3 (count_color plain 'c');
  Alcotest.(check int) "one mul left (the x3)" 1 (count_color reduced 'c');
  Alcotest.(check int) "shifts introduced" 2 (count_color reduced 'g');
  Alcotest.(check int) "negation for -4" 1 (count_color reduced 'b')

let test_integer_semantics_preserved () =
  let bindings = [ ("y", Expr.((const 8.0 * var "x") - (var "z" * const 2.0))) ] in
  let plain = Lower.lower bindings in
  let reduced = Strength.program bindings in
  let env = function "x" -> 37.0 | "z" -> -12.0 | _ -> raise Not_found in
  Alcotest.(check (float 0.)) "same on integers"
    (List.assoc "y" (Program.eval ~env plain))
    (List.assoc "y" (Program.eval ~env reduced))

let test_fixed_point_equivalence () =
  (* In Q0 fixed point, shift-left k == multiply by 2^k exactly. *)
  let bindings = [ ("y", Expr.((const 4.0 * var "x") + var "z")) ] in
  let plain = Lower.lower bindings in
  let reduced = Strength.program bindings in
  let env = function "x" -> 123.0 | "z" -> -77.0 | _ -> raise Not_found in
  let fmt = Fp.q 0 in
  Alcotest.(check (float 0.)) "fixed-point equal"
    (List.assoc "y" (Fp.eval fmt plain ~env))
    (List.assoc "y" (Fp.eval fmt reduced ~env))

let strength_props =
  [
    qtest "integer semantics preserved on random programs"
      QCheck2.Gen.(
        triple (int_range (-50) 50) (int_range (-50) 50)
          (list_size (1 -- 4) (int_range 0 5)))
      (fun (xv, zv, ks) ->
        let terms =
          List.mapi
            (fun i k ->
              let v = if i mod 2 = 0 then Expr.var "x" else Expr.var "z" in
              Expr.(const (Float.pow 2.0 (float_of_int k)) * v))
            ks
        in
        let sum =
          match terms with
          | first :: rest -> List.fold_left Expr.( + ) first rest
          | [] -> assert false
        in
        let bindings = [ ("y", sum) ] in
        let env = function
          | "x" -> float_of_int xv
          | "z" -> float_of_int zv
          | _ -> raise Not_found
        in
        Float.equal
          (List.assoc "y" (Program.eval ~env (Lower.lower bindings)))
          (List.assoc "y" (Program.eval ~env (Strength.program bindings))));
    qtest "never increases multiplier count"
      QCheck2.Gen.(list_size (1 -- 5) (float_range (-9.) 9.))
      (fun coeffs ->
        let terms = List.mapi (fun i c -> Expr.(const c * var (Printf.sprintf "x%d" i))) coeffs in
        let sum =
          match terms with
          | first :: rest -> List.fold_left Expr.( + ) first rest
          | [] -> assert false
        in
        let bindings = [ ("y", sum) ] in
        count_color (Strength.program bindings) 'c'
        <= count_color (Lower.lower bindings) 'c');
  ]

(* --- csv --- *)

let test_csv_basic () =
  let t = Csv.create ~header:[ "name"; "value" ] in
  Csv.add_row t [ "plain"; "1" ];
  Csv.add_row t [ "with,comma"; "2" ];
  Csv.add_row t [ "with\"quote"; "3" ];
  Alcotest.(check string) "rendering"
    "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
    (Csv.render t);
  Alcotest.check_raises "width check" (Invalid_argument "Csv.add_row: row width mismatch")
    (fun () -> Csv.add_row t [ "too"; "many"; "fields" ])

let test_csv_save () =
  let t = Csv.of_table_rows ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  let path = Filename.temp_file "mpsched" ".csv" in
  Csv.save ~path t;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file content" "a,b\n1,2\n3,4\n" content

let () =
  Alcotest.run "strength_csv"
    [
      ( "strength",
        [
          Alcotest.test_case "power_of_two" `Quick test_power_of_two;
          Alcotest.test_case "rewrites" `Quick test_rewrites_muls_to_shifts;
          Alcotest.test_case "integer semantics" `Quick test_integer_semantics_preserved;
          Alcotest.test_case "fixed-point equivalence" `Quick test_fixed_point_equivalence;
        ]
        @ strength_props );
      ( "csv",
        [
          Alcotest.test_case "quoting" `Quick test_csv_basic;
          Alcotest.test_case "save" `Quick test_csv_save;
        ] );
    ]
