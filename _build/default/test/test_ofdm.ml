(* The OFDM receiver chain: reference equivalence, structure, and the full
   mapping path on the five-color composite workload. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Program = Mps_frontend.Program
module Ofdm = Mps_workloads.Ofdm
module Pipeline = Core.Pipeline

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)

let sample_inputs n seed =
  let rng = Mps_util.Rng.create ~seed in
  let draw () =
    ( Mps_util.Rng.float rng 2.0 -. 1.0,
      Mps_util.Rng.float rng 2.0 -. 1.0 )
  in
  (Array.init n (fun _ -> draw ()), Array.init n (fun _ -> draw ()))

let check_receiver n seed =
  let samples, channel = sample_inputs n seed in
  let prog = Ofdm.receiver ~n in
  let out = Program.eval ~env:(Ofdm.env ~samples ~channel) prog in
  let got = Ofdm.output_symbols ~n out in
  let want = Ofdm.reference ~n ~samples ~channel in
  Array.for_all2
    (fun (gr, gi) (wr, wi) -> close gr wr && close gi wi)
    got want

let test_reference_equivalence () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (check_receiver n (n + 17)))
    [ 2; 4; 8 ]

let test_five_colors () =
  let g = Program.dfg (Ofdm.receiver ~n:4) in
  let colors = List.map Color.to_char (Dfg.colors g) in
  Alcotest.(check (list char)) "a b c h i" [ 'a'; 'b'; 'c'; 'h'; 'i' ] colors

let test_clamping_really_clamps () =
  (* A loud channel saturates the slicer. *)
  let n = 4 in
  let samples = Array.make n (10.0, -10.0) in
  let channel = Array.make n (5.0, 3.0) in
  let prog = Ofdm.receiver ~n in
  let out = Program.eval ~env:(Ofdm.env ~samples ~channel) prog in
  let syms = Ofdm.output_symbols ~n out in
  Array.iter
    (fun (re, im) ->
      Alcotest.(check bool) "within [-1,1]" true
        (re >= -1.0 && re <= 1.0 && im >= -1.0 && im <= 1.0))
    syms

let test_maps_to_tile () =
  let prog = Ofdm.receiver ~n:4 in
  let options =
    { Pipeline.default_options with Pipeline.pdef = 6; enumeration_budget = Some 2_000_000 }
  in
  match Pipeline.map_program ~options prog with
  | Error m -> Alcotest.failf "mapping: %s" m
  | Ok mapped -> (
      let samples, channel = sample_inputs 4 99 in
      match Pipeline.verify mapped ~env:(Ofdm.env ~samples ~channel) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "simulation: %s" m)

let test_reference_validates_lengths () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Ofdm.reference: length mismatch") (fun () ->
      ignore (Ofdm.reference ~n:4 ~samples:[| (0., 0.) |] ~channel:[| (0., 0.) |]))

let props =
  [
    qtest "receiver = reference for random symbols" QCheck2.Gen.(0 -- 5_000)
      (fun seed -> check_receiver 4 seed);
    qtest ~count:15 "n=8 receiver = reference" QCheck2.Gen.(0 -- 1_000)
      (fun seed -> check_receiver 8 seed);
  ]

let () =
  Alcotest.run "ofdm"
    [
      ( "receiver",
        [
          Alcotest.test_case "reference equivalence" `Quick test_reference_equivalence;
          Alcotest.test_case "five colors" `Quick test_five_colors;
          Alcotest.test_case "slicer clamps" `Quick test_clamping_really_clamps;
          Alcotest.test_case "maps and simulates" `Quick test_maps_to_tile;
          Alcotest.test_case "argument validation" `Quick test_reference_validates_lengths;
        ]
        @ props );
    ]
