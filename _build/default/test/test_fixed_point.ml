(* 16-bit fixed-point semantics: quantization, saturation, and end-to-end
   precision on the DSP kernels. *)

module Fp = Mps_montium.Fixed_point
module Program = Mps_frontend.Program
module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Cordic = Mps_workloads.Cordic

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_quantize_roundtrip () =
  let fmt = Fp.q 12 in
  Alcotest.(check int) "1.0 in Q3.12" 4096 (Fp.quantize fmt 1.0);
  Alcotest.(check (float 1e-9)) "dequantize inverts" 1.0
    (Fp.dequantize fmt (Fp.quantize fmt 1.0));
  Alcotest.(check int) "rounds to nearest" 2048 (Fp.quantize fmt 0.5);
  Alcotest.(check int) "saturates high" 32767 (Fp.quantize fmt 100.0);
  Alcotest.(check int) "saturates low" (-32768) (Fp.quantize fmt (-100.0));
  Alcotest.check_raises "format range" (Invalid_argument "Fixed_point.q: frac_bits outside [0,15]")
    (fun () -> ignore (Fp.q 16))

let test_saturating_ops () =
  Alcotest.(check int) "add saturates" 32767 (Fp.saturating_add 30000 10000);
  Alcotest.(check int) "sub saturates" (-32768) (Fp.saturating_sub (-30000) 10000);
  Alcotest.(check int) "plain add" 5 (Fp.saturating_add 2 3);
  let fmt = Fp.q 12 in
  (* 1.0 * 1.0 = 1.0 in Q3.12 *)
  Alcotest.(check int) "unit product" 4096 (Fp.saturating_mul fmt 4096 4096);
  (* 4.0 * 4.0 = 16 > 7.999... saturates *)
  Alcotest.(check int) "product saturates" 32767
    (Fp.saturating_mul fmt (4 * 4096) (4 * 4096))

let test_program_eval_basic () =
  let prog = Lower.lower [ ("y", Expr.((var "a" * var "b") + var "c")) ] in
  let env = function "a" -> 0.5 | "b" -> 0.25 | "c" -> 1.0 | _ -> raise Not_found in
  let fmt = Fp.q 12 in
  let got = List.assoc "y" (Fp.eval fmt prog ~env) in
  Alcotest.(check bool) "near 1.125" true (Float.abs (got -. 1.125) < 0.001)

let test_dft_precision_ladder () =
  (* More fractional bits -> smaller error, down to ~1e-3 at Q12 for
     unit-scale inputs. *)
  let prog = Dft.winograd3 () in
  let env = Dft.input_env [| (0.5, -0.25); (0.3, 0.8); (-0.6, 0.1) |] in
  let err f = (Fp.compare_against_float (Fp.q f) prog ~env).Fp.max_abs in
  let e8 = err 8 and e10 = err 10 and e12 = err 12 in
  Alcotest.(check bool) "monotone improvement" true (e12 <= e10 && e10 <= e8);
  Alcotest.(check bool) (Printf.sprintf "Q12 error %.5f small" e12) true (e12 < 5e-3);
  Alcotest.(check bool) (Printf.sprintf "Q8 error %.5f still sane" e8) true (e8 < 5e-2)

let test_saturation_reported () =
  let prog = Lower.lower [ ("y", Expr.(var "a" * var "b")) ] in
  let env = function "a" -> 6.0 | "b" -> 6.0 | _ -> raise Not_found in
  let report = Fp.compare_against_float (Fp.q 12) prog ~env in
  (* 36 doesn't fit Q3.12 (max ~8): must clip and flag. *)
  Alcotest.(check bool) "saturated" true report.Fp.saturated;
  Alcotest.(check bool) "large error" true (report.Fp.max_abs > 1.0)

let test_cordic_exact_at_q0 () =
  (* Integer CORDIC in Q15.0 is bit-exact against the integer reference. *)
  let directions = [ true; false; true; false ] in
  let prog = Cordic.rotate ~iterations:4 ~directions in
  let x0 = 1200 and y0 = -345 in
  let env = function
    | "x" -> float_of_int x0
    | "y" -> float_of_int y0
    | _ -> raise Not_found
  in
  let out = Fp.eval (Fp.q 0) prog ~env in
  let xr, yr = Cordic.reference ~iterations:4 ~directions ~x:x0 ~y:y0 in
  Alcotest.(check (float 0.)) "x exact" (float_of_int xr) (List.assoc "xr" out);
  Alcotest.(check (float 0.)) "y exact" (float_of_int yr) (List.assoc "yr" out)

let props =
  [
    qtest "quantize error bounded by half an lsb"
      QCheck2.Gen.(pair (int_range 6 14) (float_range (-1.5) 1.5))
      (fun (f, v) ->
        let fmt = Fp.q f in
        let back = Fp.dequantize fmt (Fp.quantize fmt v) in
        Float.abs (back -. v) <= 0.5 /. float_of_int (1 lsl f) +. 1e-12);
    qtest "fixed fir tracks float within lsb-scaled bound"
      QCheck2.Gen.(array_size (pure 6) (float_range (-0.9) 0.9))
      (fun window ->
        let prog = Kernels.fir ~taps:[ 0.25; 0.5; 0.25 ] ~block:4 in
        let env name =
          window.(int_of_string (String.sub name 1 (String.length name - 1)))
        in
        let report = Fp.compare_against_float (Fp.q 12) prog ~env in
        (not report.Fp.saturated) && report.Fp.max_abs < 0.01);
    qtest "saturating ops stay in range"
      QCheck2.Gen.(pair (int_range (-40000) 40000) (int_range (-40000) 40000))
      (fun (a, b) ->
        let within x = x >= -32768 && x <= 32767 in
        within (Fp.saturating_add a b) && within (Fp.saturating_sub a b));
  ]

let () =
  Alcotest.run "fixed_point"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "quantize" `Quick test_quantize_roundtrip;
          Alcotest.test_case "saturation" `Quick test_saturating_ops;
        ] );
      ( "programs",
        [
          Alcotest.test_case "basic eval" `Quick test_program_eval_basic;
          Alcotest.test_case "dft precision ladder" `Quick test_dft_precision_ladder;
          Alcotest.test_case "saturation reported" `Quick test_saturation_reported;
          Alcotest.test_case "cordic exact at Q0" `Quick test_cordic_exact_at_q0;
        ]
        @ props );
    ]
