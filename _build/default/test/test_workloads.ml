(* Workload generators: every kernel checked against an independent
   reference implementation, plus structural properties of the random DAGs. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Program = Mps_frontend.Program
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Random_dag = Mps_workloads.Random_dag

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)

let complex_vec_gen n =
  QCheck2.Gen.(
    array_size (pure n)
      (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))

let check_dft name prog n xs =
  let out = Program.eval ~env:(Dft.input_env xs) prog in
  let got = Dft.output_spectrum ~n out in
  let want = Dft.reference ~n xs in
  Array.for_all2
    (fun (gr, gi) (wr, wi) -> close gr wr && close gi wi)
    got want
  || (Printf.printf "%s mismatch\n" name;
      false)

let dft_props =
  [
    qtest "direct3 = reference" (complex_vec_gen 3) (fun xs ->
        check_dft "direct3" (Dft.direct ~n:3) 3 xs);
    qtest "direct5 = reference" ~count:20 (complex_vec_gen 5) (fun xs ->
        check_dft "direct5" (Dft.direct ~n:5) 5 xs);
    qtest "winograd3 = reference" (complex_vec_gen 3) (fun xs ->
        check_dft "winograd3" (Dft.winograd3 ()) 3 xs);
    qtest "winograd5 = reference" (complex_vec_gen 5) (fun xs ->
        check_dft "winograd5" (Dft.winograd5 ()) 5 xs);
    qtest "fft8 = reference" ~count:20 (complex_vec_gen 8) (fun xs ->
        check_dft "fft8" (Dft.radix2_fft ~n:8) 8 xs);
  ]

let test_dft_shapes () =
  let shape p = Dfg.node_count (Program.dfg p) in
  Alcotest.(check int) "winograd3 is 16 ops" 16 (shape (Dft.winograd3 ()));
  Alcotest.(check int) "winograd5 is 45 ops" 45 (shape (Dft.winograd5 ()));
  Alcotest.(check bool) "direct5 much larger" true (shape (Dft.direct ~n:5) > 100);
  Alcotest.check_raises "fft needs power of two"
    (Invalid_argument "Dft.radix2_fft: n must be a power of two >= 2") (fun () ->
      ignore (Dft.radix2_fft ~n:6));
  Alcotest.check_raises "direct needs n>=2"
    (Invalid_argument "Dft.direct: n must be >= 2") (fun () ->
      ignore (Dft.direct ~n:1))

let test_paperlike_color_mix () =
  (* winograd3's op mix resembles Fig. 2's 14a/4b/6c (exact equality is not
     expected: the paper's graph folds the X0 outputs differently). *)
  let g = Program.dfg (Dft.winograd3 ()) in
  let count ch =
    match List.assoc_opt (Color.of_char ch) (Dfg.color_counts g) with
    | Some k -> k
    | None -> 0
  in
  Alcotest.(check bool) "adds dominate" true (count 'a' > count 'b');
  Alcotest.(check int) "4 real multiplies" 4 (count 'c')

(* --- FIR --- *)

let fir_window_gen =
  QCheck2.Gen.(array_size (pure 8) (float_range (-5.) 5.))

let fir_props =
  [
    qtest "fir = reference" fir_window_gen (fun window ->
        let taps = [ 0.25; 0.5; -0.125; 1.0 ] in
        let block = Array.length window - List.length taps + 1 in
        let prog = Kernels.fir ~taps ~block in
        let env name =
          match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
          | Some i when name.[0] = 'x' -> window.(i)
          | _ -> raise Not_found
        in
        let got = Program.eval ~env prog in
        let want = Kernels.fir_reference ~taps window in
        List.for_all
          (fun (name, v) ->
            let i = int_of_string (String.sub name 1 (String.length name - 1)) in
            close v want.(i))
          got);
  ]

let test_fir_args () =
  Alcotest.check_raises "empty taps" (Invalid_argument "Kernels.fir: empty taps")
    (fun () -> ignore (Kernels.fir ~taps:[] ~block:2));
  Alcotest.check_raises "bad block" (Invalid_argument "Kernels.fir: block < 1")
    (fun () -> ignore (Kernels.fir ~taps:[ 1.0 ] ~block:0))

(* --- IIR --- *)

let test_iir_matches_direct_recurrence () =
  let b = (0.2, 0.3, 0.1) and a = (-0.5, 0.25) in
  let block = 6 in
  let prog = Kernels.iir_biquad ~b ~a ~block in
  let xs = [| 1.0; -2.0; 0.5; 3.0; 0.0; -1.0 |] in
  let x_1 = 0.7 and x_2 = -0.3 and y_1 = 0.1 and y_2 = 0.4 in
  let env name =
    match name with
    | "x_1" -> x_1
    | "x_2" -> x_2
    | "y_1" -> y_1
    | "y_2" -> y_2
    | _ -> xs.(int_of_string (String.sub name 1 (String.length name - 1)))
  in
  let got = Program.eval ~env prog in
  (* independent recurrence *)
  let b0, b1, b2 = b and a1, a2 = a in
  let ys = Array.make block 0.0 in
  let x i = if i >= 0 then xs.(i) else if i = -1 then x_1 else x_2 in
  let y i = if i >= 0 then ys.(i) else if i = -1 then y_1 else y_2 in
  for n = 0 to block - 1 do
    ys.(n) <-
      (b0 *. x n) +. (b1 *. x (n - 1)) +. (b2 *. x (n - 2)) -. (a1 *. y (n - 1))
      -. (a2 *. y (n - 2))
  done;
  List.iter
    (fun (name, v) ->
      let i = int_of_string (String.sub name 1 (String.length name - 1)) in
      Alcotest.(check bool) (Printf.sprintf "%s close" name) true (close v ys.(i)))
    got

let test_iir_serial_structure () =
  (* The recurrence forces depth ~ block. *)
  let prog = Kernels.iir_biquad ~b:(0.2, 0.3, 0.1) ~a:(-0.5, 0.25) ~block:8 in
  let g = Program.dfg prog in
  let lv = Mps_dfg.Levels.compute g in
  Alcotest.(check bool) "critical path at least block long" true
    (Mps_dfg.Levels.lower_bound_cycles lv >= 8)

(* --- DCT --- *)

let dct_props =
  [
    qtest "dct8 = reference" (QCheck2.Gen.array_size (QCheck2.Gen.pure 8)
                                (QCheck2.Gen.float_range (-4.) 4.)) (fun xs ->
        let prog = Kernels.dct8 () in
        let env name = xs.(int_of_string (String.sub name 1 1)) in
        let got = Program.eval ~env prog in
        let want = Kernels.dct8_reference xs in
        List.for_all
          (fun (name, v) ->
            close v want.(int_of_string (String.sub name 1 1)))
          got);
  ]

(* --- matmul --- *)

let test_matmul () =
  let prog = Kernels.matmul ~m:2 ~k:3 ~n:2 in
  let a = [| [| 1.0; 2.0; 3.0 |]; [| -1.0; 0.5; 2.0 |] |] in
  let b = [| [| 2.0; 0.0 |]; [| 1.0; -1.0 |]; [| 0.5; 3.0 |] |] in
  let coords name =
    match String.split_on_char '_' name with
    | [ m; i; j ] -> (m, int_of_string i, int_of_string j)
    | _ -> raise Not_found
  in
  let env name =
    let m, i, j = coords name in
    match m with "a" -> a.(i).(j) | "b" -> b.(i).(j) | _ -> raise Not_found
  in
  let got = Program.eval ~env prog in
  List.iter
    (fun (name, v) ->
      let _, i, j = coords name in
      let want =
        (a.(i).(0) *. b.(0).(j)) +. (a.(i).(1) *. b.(1).(j)) +. (a.(i).(2) *. b.(2).(j))
      in
      Alcotest.(check bool) name true (close v want))
    got;
  Alcotest.(check int) "12 muls + 8 adds" 20 (Dfg.node_count (Program.dfg prog))

let test_horner () =
  let prog = Kernels.horner ~degree:4 in
  let coeffs = [| 2.0; -1.0; 0.5; 3.0; 1.0 |] in
  let xv = 1.5 in
  let env = function
    | "x" -> xv
    | name -> coeffs.(int_of_string (String.sub name 1 (String.length name - 1)))
  in
  let got = List.assoc "y" (Program.eval ~env prog) in
  let want =
    Array.to_list coeffs
    |> List.rev
    |> List.fold_left (fun acc c -> (acc *. xv) +. c) 0.0
  in
  Alcotest.(check bool) "horner value" true (close got want);
  (* Fully serial: depth = node count. *)
  let g = Program.dfg prog in
  Alcotest.(check int) "depth equals ops"
    (Dfg.node_count g)
    (Mps_dfg.Levels.lower_bound_cycles (Mps_dfg.Levels.compute g))

(* --- random DAGs --- *)

let test_random_dag_determinism () =
  let g1 = Random_dag.generate ~seed:99 () and g2 = Random_dag.generate ~seed:99 () in
  Alcotest.(check bool) "same seed same graph" true (Dfg.equal g1 g2);
  let g3 = Random_dag.generate ~seed:100 () in
  Alcotest.(check bool) "different seed differs" false (Dfg.equal g1 g3)

let test_random_dag_validation () =
  Alcotest.check_raises "bad edge_prob"
    (Invalid_argument "Random_dag.generate: edge_prob outside [0,1]") (fun () ->
      ignore
        (Random_dag.generate
           ~params:{ Random_dag.default_params with edge_prob = 1.5 }
           ~seed:0 ()))

let random_dag_props =
  [
    qtest "random dags: layered sources only in layer 0"
      QCheck2.Gen.(0 -- 2_000)
      (fun seed ->
        let g = Random_dag.generate ~seed () in
        (* invariant promised by the docs: every non-source node has a
           parent; acyclicity is enforced by the builder *)
        Dfg.node_count g >= Random_dag.default_params.Random_dag.layers
        && List.for_all
             (fun i -> Dfg.in_degree g i = 0 || Dfg.preds g i <> [])
             (Dfg.nodes g));
    qtest "random dags: colors from palette" QCheck2.Gen.(0 -- 2_000) (fun seed ->
        let g = Random_dag.generate ~seed () in
        let palette =
          List.map fst Random_dag.default_params.Random_dag.palette
        in
        List.for_all (fun i -> List.mem (Dfg.color g i) palette) (Dfg.nodes g));
  ]

let () =
  Alcotest.run "workloads"
    [
      ( "dft",
        [
          Alcotest.test_case "shapes and argument checks" `Quick test_dft_shapes;
          Alcotest.test_case "winograd3 color mix" `Quick test_paperlike_color_mix;
        ]
        @ dft_props );
      ( "fir",
        [ Alcotest.test_case "argument checks" `Quick test_fir_args ] @ fir_props );
      ( "iir",
        [
          Alcotest.test_case "matches recurrence" `Quick test_iir_matches_direct_recurrence;
          Alcotest.test_case "serial structure" `Quick test_iir_serial_structure;
        ] );
      ("dct", dct_props);
      ( "linear-algebra",
        [
          Alcotest.test_case "matmul 2x3x2" `Quick test_matmul;
          Alcotest.test_case "horner" `Quick test_horner;
        ] );
      ( "random-dag",
        [
          Alcotest.test_case "determinism" `Quick test_random_dag_determinism;
          Alcotest.test_case "validation" `Quick test_random_dag_validation;
        ]
        @ random_dag_props );
    ]
