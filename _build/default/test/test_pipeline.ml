(* Clustering phase and the end-to-end pipeline (the umbrella library). *)

module Dfg = Core.Dfg
module Color = Core.Color
module Pattern = Core.Pattern
module Schedule = Core.Schedule
module Cluster = Core.Cluster
module Pipeline = Core.Pipeline
module Program = Core.Program
module Dft = Core.Dft
module Kernels = Core.Kernels
module Pg = Core.Paper_graphs

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- clustering --- *)

let test_identity_clustering () =
  let g = Pg.fig2_3dft () in
  let c = Cluster.identity g in
  Alcotest.(check int) "same node count" (Dfg.node_count g) (Cluster.cluster_count c);
  Alcotest.(check int) "no fusions" 0 (Cluster.fused_pairs c);
  Alcotest.(check bool) "graph unchanged" true (Dfg.equal g c.Cluster.clustered)

let test_mac_clustering_fig2 () =
  (* In Fig. 2 four multiplications (c9, c12, c13, c14) feed exactly one
     add each and fuse; c10 and c11 feed two consumers and must stay. *)
  let g = Pg.fig2_3dft () in
  let c = Cluster.mac g in
  Alcotest.(check int) "4 fused pairs" 4 (Cluster.fused_pairs c);
  Alcotest.(check int) "24 - 4 clusters" 20 (Cluster.cluster_count c);
  let colors = List.map Color.to_char (Dfg.colors c.Cluster.clustered) in
  Alcotest.(check bool) "c10/c11 keep their color" true (List.mem 'c' colors);
  Alcotest.(check bool) "mac present" true (List.mem 'm' colors);
  let count ch =
    List.length
      (List.filter
         (fun i -> Color.to_char (Dfg.color c.Cluster.clustered i) = ch)
         (Dfg.nodes c.Cluster.clustered))
  in
  Alcotest.(check int) "two bare muls left" 2 (count 'c');
  Alcotest.(check int) "four macs" 4 (count 'm');
  (* Mapping is a partition. *)
  let total =
    Array.fold_left (fun acc m -> acc + List.length m) 0 c.Cluster.members
  in
  Alcotest.(check int) "members partition" 24 total;
  Array.iteri
    (fun new_id members ->
      List.iter
        (fun old_id ->
          Alcotest.(check int) "of_original consistent" new_id
            c.Cluster.of_original.(old_id))
        members)
    c.Cluster.members

let test_mac_respects_multi_consumer () =
  (* A mul with two consumers must not fuse. *)
  let g =
    Dfg.of_alist
      [ ("c0", Color.mul); ("a1", Color.add); ("a2", Color.add) ]
      [ ("c0", "a1"); ("c0", "a2") ]
  in
  let c = Cluster.mac g in
  Alcotest.(check int) "no fusion" 0 (Cluster.fused_pairs c)

let test_mac_shortens_schedules () =
  let g = Pg.fig2_3dft () in
  let c = Cluster.mac g in
  let lb g = Mps_dfg.Levels.lower_bound_cycles (Mps_dfg.Levels.compute g) in
  Alcotest.(check bool) "critical path shrinks" true (lb c.Cluster.clustered < lb g)

let dag_gen =
  QCheck2.Gen.(
    map (fun seed -> Mps_workloads.Random_dag.generate ~seed ()) (0 -- 3_000))

let clustering_props =
  [
    qtest "mac clustering yields a DAG partition" dag_gen (fun g ->
        let c = Cluster.mac g in
        let total =
          Array.fold_left (fun acc m -> acc + List.length m) 0 c.Cluster.members
        in
        total = Dfg.node_count g
        && Cluster.cluster_count c = Dfg.node_count g - Cluster.fused_pairs c);
    qtest "mac preserves reachability between unfused nodes" dag_gen (fun g ->
        let c = Cluster.mac g in
        let r = Mps_dfg.Reachability.compute g in
        let r' = Mps_dfg.Reachability.compute c.Cluster.clustered in
        List.for_all
          (fun i ->
            List.for_all
              (fun j ->
                let ci = c.Cluster.of_original.(i) and cj = c.Cluster.of_original.(j) in
                ci = cj
                || (not (Mps_dfg.Reachability.is_follower r ~of_:i j))
                || Mps_dfg.Reachability.is_follower r' ~of_:ci cj)
              (Dfg.nodes g))
          (Dfg.nodes g));
  ]

(* --- pipeline --- *)

let test_pipeline_3dft_defaults () =
  let g = Pg.fig2_3dft () in
  let t = Pipeline.run g in
  Alcotest.(check int) "paper's Pdef=4 cycles" 7 t.Pipeline.cycles;
  Alcotest.(check bool) "config fits" true t.Pipeline.config.Core.Config_space.fits;
  (match
     Schedule.validate ~allowed:t.Pipeline.patterns ~capacity:5 g t.Pipeline.schedule
   with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "invalid schedule: %a" (Schedule.pp_violation g) v);
  Alcotest.(check bool) "selection covers colors" true
    (Core.Select.covers_all_colors g t.Pipeline.patterns)

let test_pipeline_clustered () =
  let g = Pg.fig2_3dft () in
  let options = { Pipeline.default_options with Pipeline.cluster = true } in
  let t = Pipeline.run ~options g in
  (match t.Pipeline.clustering with
  | Some c -> Alcotest.(check int) "fused" 4 (Cluster.fused_pairs c)
  | None -> Alcotest.fail "clustering requested but absent");
  Alcotest.(check bool) "clustered schedule no longer" true (t.Pipeline.cycles <= 7)

let test_pipeline_bad_options () =
  let g = Pg.fig4_small () in
  Alcotest.check_raises "pdef 0" (Invalid_argument "Pipeline.run: pdef < 1") (fun () ->
      ignore
        (Pipeline.run ~options:{ Pipeline.default_options with Pipeline.pdef = 0 } g))

let test_map_program_and_verify () =
  let prog = Dft.winograd3 () in
  match Pipeline.map_program prog with
  | Error m -> Alcotest.failf "mapping failed: %s" m
  | Ok mapped ->
      let env = Dft.input_env [| (0.5, 1.0); (2.0, -1.0); (-0.25, 0.75) |] in
      (match Pipeline.verify mapped ~env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "verification failed: %s" m);
      Alcotest.(check bool) "energy positive" true
        (mapped.Pipeline.energy.Core.Energy.total > 0.0)

let test_map_program_kernels () =
  List.iter
    (fun (name, prog) ->
      match Pipeline.map_program prog with
      | Error m -> Alcotest.failf "%s failed: %s" name m
      | Ok mapped ->
          let env =
            let inputs = Program.inputs prog in
            let tbl = Hashtbl.create 16 in
            List.iteri
              (fun i n -> Hashtbl.replace tbl n (cos (float_of_int i) *. 2.0))
              inputs;
            fun n -> Hashtbl.find tbl n
          in
          (match Pipeline.verify mapped ~env with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s verification: %s" name m))
    [
      ("fft8", Dft.radix2_fft ~n:8);
      ("dct8", Kernels.dct8 ());
      ("fir", Kernels.fir ~taps:[ 1.0; -0.5; 0.25 ] ~block:5);
      ("winograd5", Dft.winograd5 ());
    ]

let pipeline_props =
  [
    qtest ~count:25 "pipeline on random DAGs: valid and within bounds" dag_gen
      (fun g ->
        let t = Pipeline.run g in
        let lower =
          Mps_dfg.Levels.lower_bound_cycles (Mps_dfg.Levels.compute g)
        in
        Schedule.validate ~allowed:t.Pipeline.patterns ~capacity:5 g
          t.Pipeline.schedule
        = []
        && t.Pipeline.cycles >= lower
        && t.Pipeline.cycles <= Dfg.node_count g);
  ]

let () =
  Alcotest.run "pipeline"
    [
      ( "clustering",
        [
          Alcotest.test_case "identity" `Quick test_identity_clustering;
          Alcotest.test_case "mac on fig2" `Quick test_mac_clustering_fig2;
          Alcotest.test_case "multi-consumer blocked" `Quick
            test_mac_respects_multi_consumer;
          Alcotest.test_case "shortens critical path" `Quick test_mac_shortens_schedules;
        ]
        @ clustering_props );
      ( "pipeline",
        [
          Alcotest.test_case "3dft defaults" `Quick test_pipeline_3dft_defaults;
          Alcotest.test_case "clustered" `Quick test_pipeline_clustered;
          Alcotest.test_case "bad options" `Quick test_pipeline_bad_options;
          Alcotest.test_case "map and verify winograd3" `Quick test_map_program_and_verify;
          Alcotest.test_case "map and verify kernels" `Quick test_map_program_kernels;
        ]
        @ pipeline_props );
    ]
