(* Shared pattern selection across kernel suites. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Select = Mps_select.Select
module Shared = Mps_select.Shared
module Classify = Mps_antichain.Classify
module Enumerate = Mps_antichain.Enumerate
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule
module Program = Mps_frontend.Program
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Pg = Mps_workloads.Paper_graphs

let suite () =
  [
    Shared.kernel ~span_limit:1 ~label:"3dft" (Pg.fig2_3dft ());
    Shared.kernel ~span_limit:1 ~label:"w5dft" (Program.dfg (Dft.winograd5 ()));
    Shared.kernel ~span_limit:1 ~label:"fir"
      (Program.dfg (Kernels.fir ~taps:[ 0.5; 0.25; -0.75; 0.125 ] ~block:4));
  ]

let test_shared_basics () =
  let kernels = suite () in
  let o = Shared.select ~pdef:4 kernels in
  Alcotest.(check bool) "at most pdef patterns" true (List.length o.Shared.patterns <= 4);
  (* Union coverage: every kernel schedulable under the shared set. *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "covers %s" k.Shared.label)
        true
        (Select.covers_all_colors k.Shared.graph o.Shared.patterns))
    kernels;
  Alcotest.(check int) "one entry per kernel" 3 (List.length o.Shared.per_kernel_cycles);
  Alcotest.(check int) "total is the sum" o.Shared.total_cycles
    (List.fold_left (fun acc (_, c) -> acc + c) 0 o.Shared.per_kernel_cycles);
  (* Reported cycles are real. *)
  List.iter2
    (fun k (label, cycles) ->
      Alcotest.(check string) "order preserved" k.Shared.label label;
      Alcotest.(check int)
        (Printf.sprintf "cycles of %s" label)
        cycles
        (Schedule.cycles (Mp.schedule ~patterns:o.Shared.patterns k.Shared.graph).Mp.schedule))
    kernels o.Shared.per_kernel_cycles

let test_shared_single_kernel_consistent () =
  (* With one kernel, shared selection degenerates to the paper's. *)
  let g = Pg.fig2_3dft () in
  let k = Shared.kernel ~span_limit:1 ~label:"3dft" g in
  let o = Shared.select ~pdef:3 [ k ] in
  let solo = Select.select ~pdef:3 k.Shared.classify in
  Alcotest.(check (list string)) "same patterns"
    (List.map Pattern.to_string solo)
    (List.map Pattern.to_string o.Shared.patterns)

let test_shared_beats_borrowed_patterns () =
  (* A set tuned for one kernel, used on a foreign kernel suite, should not
     beat the jointly selected set in total cycles (on this suite). *)
  let kernels = suite () in
  let shared = Shared.select ~pdef:4 kernels in
  let first = List.hd kernels in
  let borrowed = Select.select ~pdef:4 first.Shared.classify in
  let total_with patterns =
    List.fold_left
      (fun acc k ->
        match Mp.schedule ~patterns k.Shared.graph with
        | { Mp.schedule = s; _ } -> acc + Schedule.cycles s
        | exception Mp.Unschedulable _ -> acc + 1000)
      0 kernels
  in
  Alcotest.(check bool)
    (Printf.sprintf "shared %d <= borrowed %d" shared.Shared.total_cycles
       (total_with borrowed))
    true
    (shared.Shared.total_cycles <= total_with borrowed)

let test_shared_rejects () =
  Alcotest.check_raises "no kernels" (Invalid_argument "Shared.select: no kernels")
    (fun () -> ignore (Shared.select ~pdef:2 []));
  let k3 = Shared.kernel ~label:"a" ~capacity:3 (Pg.fig4_small ()) in
  let k5 = Shared.kernel ~label:"b" ~capacity:5 (Pg.fig4_small ()) in
  Alcotest.check_raises "capacity clash"
    (Invalid_argument "Shared.select: kernels have differing capacities") (fun () ->
      ignore (Shared.select ~pdef:2 [ k3; k5 ]))

let test_shared_config_table () =
  (* The point of sharing: the whole suite fits one table of pdef entries. *)
  let kernels = suite () in
  let o = Shared.select ~pdef:4 kernels in
  let table =
    List.fold_left
      (fun acc k ->
        let s = (Mp.schedule ~patterns:o.Shared.patterns k.Shared.graph).Mp.schedule in
        List.fold_left
          (fun acc p -> if List.exists (Pattern.equal p) acc then acc else p :: acc)
          acc (Schedule.distinct_patterns s))
      [] kernels
  in
  Alcotest.(check bool) "suite-wide table within pdef" true (List.length table <= 4)

let () =
  Alcotest.run "shared"
    [
      ( "shared-selection",
        [
          Alcotest.test_case "basics" `Quick test_shared_basics;
          Alcotest.test_case "single kernel = paper" `Quick
            test_shared_single_kernel_consistent;
          Alcotest.test_case "beats borrowed patterns" `Quick
            test_shared_beats_borrowed_patterns;
          Alcotest.test_case "rejections" `Quick test_shared_rejects;
          Alcotest.test_case "suite-wide config table" `Quick test_shared_config_table;
        ] );
    ]
