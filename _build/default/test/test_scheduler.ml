(* Scheduler behaviour pinned to the paper's §4 worked example (Table 2) and
   Table 3, plus structural validity checks on every produced schedule. *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern
module Np = Mps_scheduler.Node_priority
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Reference = Mps_scheduler.Reference
module Fd = Mps_scheduler.Force_directed
module Pg = Mps_workloads.Paper_graphs

let dft () = Pg.fig2_3dft ()
let pat = Pattern.of_string

let check_valid ?allowed g ~capacity sched =
  match Schedule.validate ?allowed ~capacity g sched with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "invalid schedule: %a" (Schedule.pp_violation g) v

(* --- node priority --- *)

let test_priority_order () =
  let g = dft () in
  let reach = Reachability.compute g in
  let levels = Levels.compute g in
  let p = Np.compute g reach levels in
  (* b3 (height 5) outranks every height-4 node; a4 (2 successors... direct 2)
     outranks b1 (1 direct) at equal height. *)
  let v name = Np.value p (Dfg.find g name) in
  Alcotest.(check bool) "b3 > b1" true (v "b3" > v "b1");
  Alcotest.(check bool) "b3 > a4" true (v "b3" > v "a4");
  Alcotest.(check bool) "a4 > b1" true (v "a4" > v "b1");
  (* Symmetric twins tie exactly. *)
  Alcotest.(check int) "b3 = b6" (v "b6") (v "b3");
  Alcotest.(check int) "a4 = a2" (v "a2") (v "a4")

let test_priority_eq5 () =
  (* The chosen s and t satisfy the paper's inequality (5). *)
  let g = dft () in
  let reach = Reachability.compute g in
  let levels = Levels.compute g in
  let p = Np.compute g reach levels in
  let max_all = ref 0 and max_mix = ref 0 in
  Dfg.iter_nodes
    (fun i ->
      let _, direct, all = Np.key p i in
      max_all := max !max_all all;
      max_mix := max !max_mix ((Np.t_param p * direct) + all))
    g;
  Alcotest.(check bool) "t >= max #all" true (Np.t_param p >= !max_all);
  Alcotest.(check bool) "s >= max (t*direct + all)" true (Np.s_param p >= !max_mix)

(* --- the §4.3 example --- *)

let section4_pats () =
  let p1, p2 = Pg.section4_patterns in
  [ pat p1; pat p2 ]

let test_section4_cycles () =
  let g = dft () in
  let r = Mp.schedule ~trace:true ~patterns:(section4_pats ()) g in
  Alcotest.(check int) "7 cycles as in Table 2" Pg.section4_cycles
    (Schedule.cycles r.schedule);
  check_valid g ~capacity:5 ~allowed:(section4_pats ()) r.schedule

let test_section4_trace_shape () =
  let g = dft () in
  let r = Mp.schedule ~trace:true ~patterns:(section4_pats ()) g in
  Alcotest.(check int) "one trace row per cycle" (Schedule.cycles r.schedule)
    (List.length r.trace);
  (* Cycle 1: six initial candidates, as in Table 2's first row. *)
  (match r.trace with
  | first :: _ ->
      let names = List.sort String.compare (List.map (Dfg.name g) first.row_candidates) in
      Alcotest.(check (list string)) "initial candidate list"
        [ "a2"; "a4"; "b1"; "b3"; "b5"; "b6" ]
        names;
      (* pattern1 = aabcc schedules 2 adds and 1 sub in cycle 1. *)
      let _, sel = List.nth first.row_selected 0 in
      Alcotest.(check int) "pattern1 covers 3 nodes in cycle 1" 3 (List.length sel);
      Alcotest.(check int) "pattern1 is chosen" 0 first.row_chosen
  | [] -> Alcotest.fail "empty trace");
  (* The last cycle schedules the lone leftover addition (a19 or its twin). *)
  match List.rev r.trace with
  | last :: _ ->
      Alcotest.(check int) "single candidate in final cycle" 1
        (List.length last.row_candidates)
  | [] -> Alcotest.fail "empty trace"

let test_f1_vs_f2_both_valid () =
  let g = dft () in
  let pats = section4_pats () in
  List.iter
    (fun priority ->
      let r = Mp.schedule ~priority ~patterns:pats g in
      check_valid g ~capacity:5 ~allowed:pats r.schedule)
    [ Mp.F1; Mp.F2 ]

(* --- Table 3: sensitivity to the pattern set --- *)

let test_table3_row3 () =
  (* The paper's best hand set reaches 7 cycles; our deterministic
     tie-breaks actually do one better (6), so pin "at least as good". *)
  let g = dft () in
  let pats, expected = List.nth Pg.table3_pattern_sets 2 in
  let r = Mp.schedule ~patterns:(List.map pat pats) g in
  check_valid g ~capacity:5 ~allowed:(List.map pat pats) r.schedule;
  let cycles = Schedule.cycles r.schedule in
  Alcotest.(check bool)
    (Printf.sprintf "measured %d <= paper %d" cycles expected)
    true (cycles <= expected);
  Alcotest.(check bool) "not below the 5-cycle floor" true (cycles >= 5)

let test_table3_all_rows_valid_and_ranked () =
  let g = dft () in
  let measured =
    List.map
      (fun (pats, _) ->
        let allowed = List.map pat pats in
        let r = Mp.schedule ~patterns:allowed g in
        check_valid g ~capacity:5 ~allowed r.schedule;
        Schedule.cycles r.schedule)
      Pg.table3_pattern_sets
  in
  (* The paper's observation, not its exact numbers: the third set is
     strictly the best of the three. *)
  match measured with
  | [ r1; r2; r3 ] ->
      Alcotest.(check bool) "set 3 beats set 1" true (r3 < r1);
      Alcotest.(check bool) "set 3 beats set 2" true (r3 < r2)
  | _ -> Alcotest.fail "expected three rows"

(* --- unschedulable detection --- *)

let test_unschedulable () =
  let g = dft () in
  (* No 'c' slot anywhere: multiplications can never be scheduled. *)
  let pats = [ pat "aabb" ] in
  Alcotest.check_raises "missing color detected"
    (Mp.Unschedulable [ Mps_dfg.Color.mul ])
    (fun () -> ignore (Mp.schedule ~patterns:pats g))

(* --- reference schedulers --- *)

let test_asap_alap () =
  let g = dft () in
  let lv = Levels.compute g in
  let asap = Reference.asap g and alap = Reference.alap g in
  Alcotest.(check int) "asap length = critical path"
    (Levels.lower_bound_cycles lv) (Schedule.cycles asap);
  Alcotest.(check int) "alap length = critical path"
    (Levels.lower_bound_cycles lv) (Schedule.cycles alap);
  List.iter
    (fun s ->
      match Schedule.validate ~capacity:max_int g s with
      | [] -> ()
      | v :: _ -> Alcotest.failf "invalid: %a" (Schedule.pp_violation g) v)
    [ asap; alap ]

let test_greedy_capacity () =
  let g = dft () in
  let s = Reference.greedy_capacity ~capacity:5 g in
  check_valid g ~capacity:5 s;
  (* 24 nodes / 5 per cycle rounds up to 5, and the critical path also says
     >= 5; the greedy scheduler achieves the critical path here. *)
  Alcotest.(check int) "greedy achieves 5 cycles" 5 (Schedule.cycles s);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Reference.greedy_capacity: capacity < 1") (fun () ->
      ignore (Reference.greedy_capacity ~capacity:0 g))

let test_force_directed () =
  let g = dft () in
  let s = Fd.schedule ~capacity:5 g in
  check_valid g ~capacity:5 s;
  Alcotest.(check bool) "within 2x critical path" true (Schedule.cycles s <= 10);
  let s3 = Fd.schedule ~capacity:3 g in
  check_valid g ~capacity:3 s3;
  Alcotest.(check bool) "capacity 3 needs >= ceil(24/3) cycles" true
    (Schedule.cycles s3 >= 8)

(* --- schedule data structure --- *)

let test_schedule_accessors () =
  let g = Pg.fig4_small () in
  let s = Reference.asap g in
  Alcotest.(check int) "3 cycles" 3 (Schedule.cycles s);
  Alcotest.(check (list string)) "cycle 0 nodes"
    [ "a1"; "a3" ]
    (List.map (Dfg.name g) (Schedule.nodes_at s 0));
  Alcotest.(check string) "cycle 2 used bag" "bb"
    (Pattern.to_string (Schedule.used_at g s 2));
  Alcotest.check_raises "cycle out of range"
    (Invalid_argument "Schedule: cycle 3 out of range") (fun () ->
      ignore (Schedule.nodes_at s 3))

let test_schedule_validation_catches () =
  let g = Pg.fig4_small () in
  (* a2 in the same cycle as its predecessor a1. *)
  let bad = Schedule.of_cycles g [| 0; 0; 0; 1; 1 |] in
  let violations = Schedule.validate ~capacity:5 g bad in
  Alcotest.(check bool) "dependency violation reported" true
    (List.exists
       (function Schedule.Dependency _ -> true | _ -> false)
       violations);
  (* Declared patterns too small for the load. *)
  let tight =
    Schedule.of_cycles
      ~patterns:[| pat "a"; pat "a"; pat "bb" |]
      g [| 0; 1; 0; 2; 2 |]
  in
  let violations = Schedule.validate ~capacity:5 g tight in
  Alcotest.(check bool) "overcommit reported" true
    (List.exists (function Schedule.Overcommit _ -> true | _ -> false) violations)

let () =
  Alcotest.run "scheduler"
    [
      ( "node-priority",
        [
          Alcotest.test_case "ordering" `Quick test_priority_order;
          Alcotest.test_case "equation 5" `Quick test_priority_eq5;
        ] );
      ( "multi-pattern",
        [
          Alcotest.test_case "section 4.3: 7 cycles" `Quick test_section4_cycles;
          Alcotest.test_case "section 4.3: trace shape" `Quick test_section4_trace_shape;
          Alcotest.test_case "F1 and F2 valid" `Quick test_f1_vs_f2_both_valid;
          Alcotest.test_case "table 3 row 3 exact" `Quick test_table3_row3;
          Alcotest.test_case "table 3 ranking" `Quick test_table3_all_rows_valid_and_ranked;
          Alcotest.test_case "unschedulable colors" `Quick test_unschedulable;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "asap/alap" `Quick test_asap_alap;
          Alcotest.test_case "greedy capacity" `Quick test_greedy_capacity;
          Alcotest.test_case "force-directed" `Quick test_force_directed;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "validation" `Quick test_schedule_validation_catches;
        ] );
    ]
