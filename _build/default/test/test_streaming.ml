(* Streaming loop kernels and the prologue/kernel/epilogue expansion. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Loop_graph = Mps_scheduler.Loop_graph
module Modulo = Mps_scheduler.Modulo
module Pipeline_code = Mps_scheduler.Pipeline_code
module Loops = Mps_workloads.Loops

let pats ss = List.map Pattern.of_string ss
let default_pats = pats [ "aabcc"; "abbcc"; "aaacc" ]

let scheduled kernel =
  (kernel, Modulo.schedule ~patterns:default_pats kernel.Loops.loop)

(* --- loop kernels --- *)

let test_loop_shapes () =
  let fir = Loops.fir_stream ~taps:8 in
  Alcotest.(check int) "fir8: 8 muls + 7 adds" 15
    (Dfg.node_count (Loop_graph.body fir.Loops.loop));
  Alcotest.(check int) "fir has no recurrence" 1 (Loop_graph.rec_mii fir.Loops.loop);
  let acc = Loops.accumulator ~width:4 in
  Alcotest.(check int) "acc RecMII" 1 (Loop_graph.rec_mii acc.Loops.loop);
  let iir = Loops.iir_stream () in
  (* y -> m_a1 -> s_fb -> y is a 3-op cycle at distance 1: RecMII = 3. *)
  Alcotest.(check int) "iir RecMII" 3 (Loop_graph.rec_mii iir.Loops.loop);
  let mavg = Loops.moving_average ~window:8 in
  (* add_new -> sub_old -> (carried) -> add_new: latency 2, distance 1. *)
  Alcotest.(check int) "mavg RecMII" 2 (Loop_graph.rec_mii mavg.Loops.loop)

let test_all_loops_pipeline () =
  List.iter
    (fun kernel ->
      let k, m = scheduled kernel in
      (match Modulo.validate ~patterns:default_pats k.Loops.loop m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" k.Loops.label msg);
      let flat, sched = Modulo.to_unrolled ~iterations:3 k.Loops.loop m in
      match Schedule.validate ~allowed:default_pats ~capacity:5 flat sched with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s unrolled: %a" k.Loops.label (Schedule.pp_violation flat) v)
    (Loops.all ())

let test_iir_ii_is_recurrence_bound () =
  let k, m = scheduled (Loops.iir_stream ()) in
  Alcotest.(check int) "II = RecMII" (Loop_graph.rec_mii k.Loops.loop) m.Modulo.ii

(* --- pipeline expansion --- *)

let test_expansion_conservation () =
  (* Every (node, relative iteration) appears exactly once per kernel
     instance; prologue and epilogue mirror each other in size. *)
  List.iter
    (fun kernel ->
      let k, m = scheduled kernel in
      let g = Loop_graph.body k.Loops.loop in
      let p = Pipeline_code.expand k.Loops.loop m in
      Alcotest.(check int)
        (Printf.sprintf "%s kernel length = II" k.Loops.label)
        m.Modulo.ii
        (List.length p.Pipeline_code.kernel);
      let kernel_ops =
        List.concat_map (fun c -> c.Pipeline_code.operations) p.Pipeline_code.kernel
      in
      Alcotest.(check int)
        (Printf.sprintf "%s kernel covers the body once" k.Loops.label)
        (Dfg.node_count g)
        (List.length kernel_ops);
      let sorted = List.sort compare (List.map fst kernel_ops) in
      Alcotest.(check (list int)) "each node exactly once" (Dfg.nodes g) sorted;
      Alcotest.(check int) "prologue length = L - II"
        (max 0 (m.Modulo.makespan - m.Modulo.ii))
        (List.length p.Pipeline_code.prologue);
      Alcotest.(check int) "epilogue mirrors prologue"
        (List.length p.Pipeline_code.prologue)
        (List.length p.Pipeline_code.epilogue);
      (* Prologue + one kernel instance = one full iteration 0 plus the
         heads of later iterations; check iteration 0 appears completely
         across prologue+kernel with relative indexing respected. *)
      let pro_ops =
        List.concat_map (fun c -> c.Pipeline_code.operations) p.Pipeline_code.prologue
      in
      List.iter
        (fun (_, r) ->
          Alcotest.(check bool) "prologue iterations are in-flight ones" true
            (r >= 0 && r < p.Pipeline_code.overlap))
        pro_ops)
    (Loops.all ())

let test_expansion_pattern_covers_load () =
  List.iter
    (fun kernel ->
      let k, m = scheduled kernel in
      let g = Loop_graph.body k.Loops.loop in
      let p = Pipeline_code.expand k.Loops.loop m in
      List.iter
        (fun phase ->
          List.iter
            (fun { Pipeline_code.operations; pattern } ->
              let bag =
                Pattern.of_colors (List.map (fun (i, _) -> Dfg.color g i) operations)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s phase cycle load fits" k.Loops.label)
                true
                (Pattern.subpattern bag ~of_:pattern))
            phase)
        [ p.Pipeline_code.prologue; p.Pipeline_code.kernel; p.Pipeline_code.epilogue ])
    (Loops.all ())

let test_total_cycles () =
  let k, m = scheduled (Loops.accumulator ~width:4) in
  ignore k;
  Alcotest.(check int) "one iteration = latency" m.Modulo.makespan
    (Pipeline_code.total_cycles m ~iterations:1);
  Alcotest.(check int) "100 iterations"
    ((99 * m.Modulo.ii) + m.Modulo.makespan)
    (Pipeline_code.total_cycles m ~iterations:100);
  Alcotest.check_raises "iterations < 1"
    (Invalid_argument "Pipeline_code.total_cycles: iterations < 1") (fun () ->
      ignore (Pipeline_code.total_cycles m ~iterations:0))

let test_throughput_beats_single_shot () =
  (* Amortized cost per iteration (II) is at most the single-shot length;
     over many iterations the pipeline wins or ties for every kernel. *)
  List.iter
    (fun kernel ->
      let k, m = scheduled kernel in
      let g = Loop_graph.body k.Loops.loop in
      let single =
        Schedule.cycles
          (Mps_scheduler.Multi_pattern.schedule ~patterns:default_pats g)
            .Mps_scheduler.Multi_pattern.schedule
      in
      let n = 1000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: pipelined %d <= %d sequential" k.Loops.label
           (Pipeline_code.total_cycles m ~iterations:n)
           (n * single))
        true
        (Pipeline_code.total_cycles m ~iterations:n <= n * single))
    (Loops.all ())

let () =
  Alcotest.run "streaming"
    [
      ( "loop-kernels",
        [
          Alcotest.test_case "shapes and bounds" `Quick test_loop_shapes;
          Alcotest.test_case "all pipeline and unroll" `Quick test_all_loops_pipeline;
          Alcotest.test_case "iir hits recurrence bound" `Quick
            test_iir_ii_is_recurrence_bound;
        ] );
      ( "expansion",
        [
          Alcotest.test_case "conservation" `Quick test_expansion_conservation;
          Alcotest.test_case "pattern coverage" `Quick test_expansion_pattern_covers_load;
          Alcotest.test_case "total cycles" `Quick test_total_cycles;
          Alcotest.test_case "throughput wins" `Quick test_throughput_beats_single_shot;
        ] );
    ]
