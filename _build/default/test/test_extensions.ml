(* Extensions beyond the paper: simulated-annealing selection, tree-height
   reduction, concrete register/memory assignment, code generation. *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Select = Mps_select.Select
module Annealing = Mps_select.Annealing
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule
module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower
module Rebalance = Mps_frontend.Rebalance
module Program = Mps_frontend.Program
module Tile = Mps_montium.Tile
module Allocation = Mps_montium.Allocation
module Register_file = Mps_montium.Register_file
module Codegen = Mps_montium.Codegen
module Simulator = Mps_montium.Simulator
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- annealing --- *)

let test_annealing_improves_or_matches () =
  let g = Pg.fig2_3dft () in
  let cls = Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g) in
  let rng = Mps_util.Rng.create ~seed:3 in
  List.iter
    (fun pdef ->
      let heuristic = Select.select ~pdef cls in
      let hc = Schedule.cycles (Mp.schedule ~patterns:heuristic g).Mp.schedule in
      let o = Annealing.search ~iterations:500 rng ~pdef cls in
      Alcotest.(check bool)
        (Printf.sprintf "pdef=%d: annealed %d <= heuristic %d" pdef o.Annealing.cycles hc)
        true
        (o.Annealing.cycles <= hc);
      Alcotest.(check int) "pattern count" pdef (List.length o.Annealing.patterns);
      (* The result actually schedules to the reported cost. *)
      Alcotest.(check int) "reported cost is real" o.Annealing.cycles
        (Schedule.cycles (Mp.schedule ~patterns:o.Annealing.patterns g).Mp.schedule))
    [ 2; 3; 4 ]

let test_annealing_deterministic () =
  let g = Pg.fig2_3dft () in
  let cls = Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g) in
  let run seed =
    let rng = Mps_util.Rng.create ~seed in
    let o = Annealing.search ~iterations:300 rng ~pdef:3 cls in
    (o.Annealing.cycles, List.map Pattern.to_string o.Annealing.patterns)
  in
  Alcotest.(check (pair int (list string))) "same seed same result" (run 11) (run 11)

let test_annealing_args () =
  let cls =
    Classify.compute ~capacity:5 (Enumerate.make_ctx (Pg.fig4_small ()))
  in
  let rng = Mps_util.Rng.create ~seed:0 in
  Alcotest.check_raises "cooling range"
    (Invalid_argument "Annealing.search: cooling outside (0,1]") (fun () ->
      ignore (Annealing.search ~cooling:1.5 rng ~pdef:2 cls))

(* --- rebalance --- *)

let env = function
  | "u" -> 2.0
  | "v" -> -1.5
  | "w" -> 0.25
  | name -> float_of_int (String.length name)

let left_deep_sum k =
  List.init k (fun i -> Expr.var (Printf.sprintf "t%d" i))
  |> function
  | first :: rest -> List.fold_left Expr.( + ) first rest
  | [] -> assert false

let test_rebalance_depth () =
  let e = left_deep_sum 16 in
  Alcotest.(check int) "left-deep depth" 15 (Rebalance.depth e);
  Alcotest.(check int) "balanced depth" 4 (Rebalance.depth (Rebalance.expression e))

let test_rebalance_sub_chains () =
  (* a - b - c - d: mixed signs rebuild as (a) - (b+c+d)-ish shapes. *)
  let a = Expr.var "a" and b = Expr.var "b" and c = Expr.var "c" and d = Expr.var "d" in
  let e = Expr.(a - b - c - d) in
  let r = Rebalance.expression e in
  Alcotest.(check bool) "depth shrinks" true (Rebalance.depth r <= Rebalance.depth e);
  let ev e = Expr.eval ~env:(fun _ -> 3.25) e in
  Alcotest.(check (float 1e-9)) "value preserved" (ev e) (ev r)

let test_rebalance_fir_schedule () =
  (* The left-deep FIR sum serializes the schedule; rebalancing recovers
     the logarithmic depth and a shorter schedule. *)
  let taps = List.init 12 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let bindings =
    let x i = Expr.var (Printf.sprintf "x%d" i) in
    let terms = List.mapi (fun k c -> Expr.(const c * x k)) taps in
    let sum =
      match terms with
      | first :: rest -> List.fold_left Expr.( + ) first rest
      | [] -> assert false
    in
    [ ("y", sum) ]
  in
  let plain = Lower.lower bindings in
  let balanced = Rebalance.program bindings in
  let depth p = Levels.lower_bound_cycles (Levels.compute (Program.dfg p)) in
  Alcotest.(check bool) "critical path shrinks" true (depth balanced < depth plain);
  (* Same output up to floating-point reassociation. *)
  let value p = List.assoc "y" (Program.eval ~env p) in
  let v1 = value plain and v2 = value balanced in
  Alcotest.(check bool) "values close" true
    (Float.abs (v1 -. v2) <= 1e-9 *. (1.0 +. Float.abs v1))

let expr_gen =
  let open QCheck2.Gen in
  sized @@ QCheck2.Gen.fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map Expr.var (oneofl [ "u"; "v"; "w" ]);
            map (fun k -> Expr.const (float_of_int k)) (-3 -- 3);
          ]
      else
        oneof
          [
            map2 Expr.( + ) (self (n / 2)) (self (n / 2));
            map2 Expr.( - ) (self (n / 2)) (self (n / 2));
            map2 Expr.( * ) (self (n / 2)) (self (n / 2));
            map Expr.neg (self (n - 1));
          ])

let rebalance_props =
  [
    qtest "rebalance: value preserved (tolerance)" expr_gen (fun e ->
        let v1 = Expr.eval ~env e and v2 = Expr.eval ~env (Rebalance.expression e) in
        (Float.is_nan v1 && Float.is_nan v2)
        || Float.abs (v1 -. v2) <= 1e-6 *. (1.0 +. Float.abs v1));
    qtest "rebalance: depth never increases" expr_gen (fun e ->
        Rebalance.depth (Rebalance.expression e) <= Rebalance.depth e);
    qtest "rebalance: free variables preserved" expr_gen (fun e ->
        Expr.free_vars (Rebalance.expression e) = Expr.free_vars e);
    qtest "rebalance: idempotent on depth" expr_gen (fun e ->
        let once = Rebalance.expression e in
        Rebalance.depth (Rebalance.expression once) = Rebalance.depth once);
  ]

(* --- register file + codegen --- *)

let mapped_winograd3 () =
  let prog = Dft.winograd3 () in
  let sched =
    (Mp.schedule
       ~patterns:[ Pattern.of_string "aabcc"; Pattern.of_string "aabbb" ]
       (Program.dfg prog))
      .Mp.schedule
  in
  let alloc =
    match Allocation.allocate prog sched with
    | Ok a -> a
    | Error m -> Alcotest.failf "allocation: %s" m
  in
  (prog, sched, alloc)

let test_register_assignment () =
  let prog, sched, alloc = mapped_winograd3 () in
  match Register_file.assign prog sched alloc with
  | Error m -> Alcotest.failf "assignment failed: %s" m
  | Ok slots ->
      let g = Program.dfg prog in
      (* Every register-routed operand has a concrete index within the
         file; overlapping lifetimes on one ALU never share an index. *)
      let by_alu_index = Hashtbl.create 16 in
      for j = 0 to Dfg.node_count g - 1 do
        Array.iter
          (function
            | Allocation.From_node { producer; route = Allocation.Register _ } -> (
                let alu = Allocation.alu_of alloc j in
                match Register_file.register_of slots ~producer ~consumer_alu:alu with
                | None -> Alcotest.failf "missing register for %s" (Dfg.name g producer)
                | Some index ->
                    Alcotest.(check bool) "index in range" true
                      (index >= 0 && index < Tile.default.Tile.registers_per_alu);
                    let start = Schedule.cycle_of sched producer + 1 in
                    let stop = Schedule.cycle_of sched j in
                    Hashtbl.add by_alu_index (alu, index) (producer, start, stop))
            | _ -> ())
          (Allocation.sources alloc j)
      done;
      Hashtbl.iter
        (fun key (p1, s1, e1) ->
          Hashtbl.iter
            (fun key' (p2, s2, e2) ->
              if key = key' && p1 <> p2 then
                Alcotest.(check bool) "no lifetime overlap on shared register" false
                  (s1 <= e2 && s2 <= e1))
            by_alu_index)
        by_alu_index;
      Array.iter
        (fun used ->
          Alcotest.(check bool) "file size respected" true
            (used <= Tile.default.Tile.registers_per_alu))
        (Register_file.registers_used slots)

let test_memory_addresses () =
  let prog, sched, alloc = mapped_winograd3 () in
  match Register_file.assign prog sched alloc with
  | Error m -> Alcotest.failf "assignment failed: %s" m
  | Ok slots ->
      Array.iteri
        (fun m words ->
          Alcotest.(check bool)
            (Printf.sprintf "memory %d within size" m)
            true
            (words <= Tile.default.Tile.memory_words))
        (Register_file.memory_words_used slots);
      (* Inputs all have addresses. *)
      let g = Program.dfg prog in
      for j = 0 to Dfg.node_count g - 1 do
        let { Program.operands; _ } = Program.instruction prog j in
        Array.iteri
          (fun k src ->
            match (src, operands.(k)) with
            | Allocation.From_input { memory }, Program.Input name ->
                Alcotest.(check bool)
                  (Printf.sprintf "address for %s" name)
                  true
                  (Register_file.input_address_of slots ~input:name ~memory <> None)
            | _ -> ())
          (Allocation.sources alloc j)
      done

let test_memory_overflow_detected () =
  let tile = { Tile.default with Tile.memory_words = 1 } in
  let prog = Kernels.dct8 () in
  let sched =
    (Mp.schedule ~patterns:[ Pattern.of_string "aaccc" ] (Program.dfg prog)).Mp.schedule
  in
  match Allocation.allocate ~tile prog sched with
  | Error _ -> () (* already failed at routing: acceptable *)
  | Ok alloc -> (
      match Register_file.assign ~tile prog sched alloc with
      | Error m ->
          Alcotest.(check bool) "mentions overflow" true
            (String.length m > 0)
      | Ok slots ->
          (* dct8 has 8 inputs per consumer bank; 1 word cannot hold them
             unless reads are spread across memories, which 2/ALU cannot. *)
          Alcotest.failf "expected overflow, got %d words max"
            (Array.fold_left max 0 (Register_file.memory_words_used slots)))

let test_codegen_roundtrip () =
  let prog, sched, alloc = mapped_winograd3 () in
  match Codegen.generate prog sched alloc with
  | Error m -> Alcotest.failf "codegen: %s" m
  | Ok listing -> (
      match Codegen.parse_summary listing with
      | Error m -> Alcotest.failf "parse: %s" m
      | Ok s ->
          Alcotest.(check int) "cycles" (Schedule.cycles sched) s.Codegen.cycles;
          Alcotest.(check int) "instructions = ops"
            (Dfg.node_count (Program.dfg prog))
            s.Codegen.instructions;
          Alcotest.(check bool) "patterns in table" true (s.Codegen.patterns >= 1);
          Alcotest.(check bool) "inputs listed" true (s.Codegen.inputs >= 6))

let test_codegen_mentions_every_op () =
  let prog, sched, alloc = mapped_winograd3 () in
  match Codegen.generate prog sched alloc with
  | Error m -> Alcotest.failf "codegen: %s" m
  | Ok listing ->
      let g = Program.dfg prog in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Dfg.iter_nodes
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions %s" (Dfg.name g i))
            true
            (contains listing ("; " ^ Dfg.name g i)))
        g

(* Rebalanced programs still map and simulate correctly end-to-end. *)
let test_rebalanced_end_to_end () =
  let bindings =
    let x i = Expr.var (Printf.sprintf "x%d" i) in
    let sum =
      List.init 10 (fun i ->
          let coeff = float_of_int (i + 1) in
          Expr.(const coeff * x i))
      |> function
      | first :: rest -> List.fold_left Expr.( + ) first rest
      | [] -> assert false
    in
    [ ("y", sum) ]
  in
  let prog = Rebalance.program bindings in
  match Core.Pipeline.map_program prog with
  | Error m -> Alcotest.failf "mapping: %s" m
  | Ok mapped -> (
      let env name = float_of_int (1 + Char.code name.[1] - Char.code '0') in
      match Core.Pipeline.verify mapped ~env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "simulation: %s" m)

let () =
  Alcotest.run "extensions"
    [
      ( "annealing",
        [
          Alcotest.test_case "improves or matches heuristic" `Quick
            test_annealing_improves_or_matches;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic;
          Alcotest.test_case "argument checks" `Quick test_annealing_args;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "depth reduction" `Quick test_rebalance_depth;
          Alcotest.test_case "subtraction chains" `Quick test_rebalance_sub_chains;
          Alcotest.test_case "fir schedule improves" `Quick test_rebalance_fir_schedule;
          Alcotest.test_case "end-to-end on the tile" `Quick test_rebalanced_end_to_end;
        ]
        @ rebalance_props );
      ( "register-file",
        [
          Alcotest.test_case "register assignment" `Quick test_register_assignment;
          Alcotest.test_case "memory addresses" `Quick test_memory_addresses;
          Alcotest.test_case "overflow detected" `Quick test_memory_overflow_detected;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "summary roundtrip" `Quick test_codegen_roundtrip;
          Alcotest.test_case "every op emitted" `Quick test_codegen_mentions_every_op;
        ] );
    ]
