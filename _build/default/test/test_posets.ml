(* Dilworth / Mirsky poset analyses: verified against brute force on small
   graphs and against each other's structure theorems everywhere. *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Topo = Mps_dfg.Topo
module Posets = Mps_antichain.Posets
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let small_dag_gen =
  let params = { Random_dag.default_params with Random_dag.layers = 4; width = 3 } in
  QCheck2.Gen.(map (fun seed -> Random_dag.generate ~params ~seed ()) (0 -- 5_000))

let dag_gen =
  QCheck2.Gen.(map (fun seed -> Random_dag.generate ~seed ()) (0 -- 5_000))

(* Exponential reference: the largest subset that is an antichain. *)
let brute_force_width g =
  let reach = Reachability.compute g in
  let n = Dfg.node_count g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (Dfg.nodes g) in
    if List.length members > !best && Reachability.is_antichain reach members then
      best := List.length members
  done;
  !best

let test_fig2_width () =
  let g = Pg.fig2_3dft () in
  let p = Posets.analyze g in
  (* Size-6 antichains exist (the §3 example A1); Table 5's size-5 counts
     are non-zero, and the width caps how much of the 5-ALU tile a single
     cycle can ever use. *)
  Alcotest.(check bool) "width >= 6" true (Posets.width p >= 6);
  let reach = Reachability.compute g in
  Alcotest.(check bool) "max antichain valid" true
    (Reachability.is_antichain reach (Posets.max_antichain p));
  Alcotest.(check int) "dilworth equality"
    (Posets.width p)
    (List.length (Posets.min_chain_cover p));
  Alcotest.(check int) "mirsky = longest chain" 5
    (List.length (Posets.mirsky_cover p))

let test_fig4 () =
  let p = Posets.analyze (Pg.fig4_small ()) in
  Alcotest.(check int) "width 2" 2 (Posets.width p);
  Alcotest.(check int) "two chains" 2 (List.length (Posets.min_chain_cover p));
  Alcotest.(check int) "three levels" 3 (List.length (Posets.mirsky_cover p))

let test_chain_structure () =
  let g = Pg.fig2_3dft () in
  let p = Posets.analyze g in
  let reach = Reachability.compute g in
  (* Chains partition the nodes and each really is a chain. *)
  let all = List.concat (Posets.min_chain_cover p) in
  Alcotest.(check (list int)) "partition" (Dfg.nodes g) (List.sort compare all);
  List.iter
    (fun chain ->
      let rec ordered = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "consecutive comparable" true
              (Reachability.is_follower reach ~of_:a b);
            ordered rest
        | _ -> ()
      in
      ordered chain)
    (Posets.min_chain_cover p)

let test_lower_bound () =
  let g = Pg.fig2_3dft () in
  let p = Posets.analyze g in
  (* 24 nodes, capacity 5: at least ceil(24/5) = 5 = critical path too. *)
  Alcotest.(check int) "capacity-5 bound" 5 (Posets.lower_bound_cycles p ~capacity:5);
  (* capacity 2: ceil(24/2) = 12. *)
  Alcotest.(check int) "capacity-2 bound" 12 (Posets.lower_bound_cycles p ~capacity:2)

let props =
  [
    qtest ~count:40 "width = brute force on small graphs" small_dag_gen (fun g ->
        Dfg.node_count g > 14
        || Posets.width (Posets.analyze g) = brute_force_width g);
    qtest "dilworth and mirsky equalities" dag_gen (fun g ->
        let p = Posets.analyze g in
        Posets.width p = List.length (Posets.min_chain_cover p)
        && List.length (Posets.mirsky_cover p) = Topo.longest_path_length g);
    qtest "max antichain is an antichain" dag_gen (fun g ->
        let p = Posets.analyze g in
        Reachability.is_antichain (Reachability.compute g) (Posets.max_antichain p));
    qtest "mirsky cover cells are antichains" dag_gen (fun g ->
        let p = Posets.analyze g in
        let reach = Reachability.compute g in
        List.for_all (Reachability.is_antichain reach) (Posets.mirsky_cover p));
    qtest "poset bound never exceeds real schedules" dag_gen (fun g ->
        let p = Posets.analyze g in
        let s = Mps_scheduler.Reference.greedy_capacity ~capacity:5 g in
        Posets.lower_bound_cycles p ~capacity:5
        <= Mps_scheduler.Schedule.cycles s);
  ]

let () =
  Alcotest.run "posets"
    [
      ( "analysis",
        [
          Alcotest.test_case "fig2 width and covers" `Quick test_fig2_width;
          Alcotest.test_case "fig4" `Quick test_fig4;
          Alcotest.test_case "chain structure" `Quick test_chain_structure;
          Alcotest.test_case "lower bound" `Quick test_lower_bound;
        ]
        @ props );
    ]
