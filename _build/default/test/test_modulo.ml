(* Modulo scheduling (software pipelining) under pattern restrictions. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Loop_graph = Mps_scheduler.Loop_graph
module Modulo = Mps_scheduler.Modulo
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pats ss = List.map Pattern.of_string ss

(* A multiply-accumulate loop: acc[i] = acc[i-1] + x[i]*c (one mul, one add,
   accumulator carried with distance 1). *)
let mac_loop () =
  let g =
    Dfg.of_alist
      [ ("mul", Color.mul); ("acc", Color.add) ]
      [ ("mul", "acc") ]
  in
  Loop_graph.make g [ { Loop_graph.src = 1; dst = 1; distance = 1 } ]

(* A two-stage recurrence with slack: y[i] depends on y[i-2]. *)
let slack_loop () =
  let g =
    Dfg.of_alist
      [ ("a0", Color.add); ("a1", Color.add); ("a2", Color.add) ]
      [ ("a0", "a1"); ("a1", "a2") ]
  in
  Loop_graph.make g [ { Loop_graph.src = 2; dst = 0; distance = 2 } ]

let test_bounds () =
  let l = mac_loop () in
  Alcotest.(check int) "mac RecMII" 1 (Loop_graph.rec_mii l);
  Alcotest.(check int) "mac ResMII with ac pattern" 1
    (Loop_graph.res_mii l ~patterns:(pats [ "ac" ]));
  Alcotest.(check int) "mac ResMII with 1-slot patterns" 1
    (Loop_graph.res_mii l ~patterns:(pats [ "a"; "c" ]));
  let s = slack_loop () in
  (* Cycle a0->a1->a2->(carried)->a0: latency 3, distance 2 -> II >= 2. *)
  Alcotest.(check int) "slack RecMII" 2 (Loop_graph.rec_mii s);
  Alcotest.check_raises "bad distance"
    (Invalid_argument "Loop_graph.make: carried distance must be >= 1") (fun () ->
      ignore
        (Loop_graph.make (Pg.fig4_small ())
           [ { Loop_graph.src = 0; dst = 1; distance = 0 } ]))

let check_modulo ~patterns loop m =
  (match Modulo.validate ~patterns loop m with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid modulo schedule: %s" msg);
  (* The decisive check: unroll 4 iterations and validate the flat
     schedule against the same allowed patterns. *)
  let flat, sched = Modulo.to_unrolled ~iterations:4 loop m in
  match Schedule.validate ~allowed:patterns ~capacity:5 flat sched with
  | [] -> ()
  | v :: _ -> Alcotest.failf "unrolled: %a" (Schedule.pp_violation flat) v

let test_mac_pipelines_to_ii1 () =
  let loop = mac_loop () in
  let patterns = pats [ "ac" ] in
  let m = Modulo.schedule ~patterns loop in
  Alcotest.(check int) "II = 1" 1 m.Modulo.ii;
  check_modulo ~patterns loop m

let test_slack_loop () =
  let loop = slack_loop () in
  let patterns = pats [ "aa" ] in
  let m = Modulo.schedule ~patterns loop in
  Alcotest.(check int) "II = RecMII = 2" 2 m.Modulo.ii;
  check_modulo ~patterns loop m

let test_resource_bound_bites () =
  (* Six independent adds with a single-add pattern: II >= 6. *)
  let g =
    Dfg.of_alist (List.init 6 (fun i -> (Printf.sprintf "a%d" i, Color.add))) []
  in
  let loop = Loop_graph.make g [] in
  let patterns = pats [ "a" ] in
  let m = Modulo.schedule ~patterns loop in
  Alcotest.(check int) "II = 6" 6 m.Modulo.ii;
  check_modulo ~patterns loop m;
  (* With a 3-add pattern the same body pipelines at II = 2. *)
  let patterns = pats [ "aaa" ] in
  let m = Modulo.schedule ~patterns loop in
  Alcotest.(check int) "II = 2" 2 m.Modulo.ii;
  check_modulo ~patterns loop m

let test_3dft_as_loop_body () =
  (* Stream the paper's 3DFT: one transform per block, no carried deps —
     modulo scheduling then overlaps consecutive transforms and the II
     beats the 7-cycle single-shot schedule. *)
  let g = Pg.fig2_3dft () in
  let loop = Loop_graph.make g [] in
  let patterns = pats [ "aabcc"; "aaacc" ] in
  let single_shot = Mp.cycles ~patterns g in
  let m = Modulo.schedule ~patterns loop in
  check_modulo ~patterns loop m;
  Alcotest.(check bool)
    (Printf.sprintf "II %d < single-shot %d" m.Modulo.ii single_shot)
    true
    (m.Modulo.ii < single_shot);
  (* 24 nodes over capacity-5 patterns: II can never beat 5; the bound
     here is the 14 adds over at most 3 add slots per cycle. *)
  Alcotest.(check bool) "II >= 5" true (m.Modulo.ii >= 5)

let test_uncovered_color () =
  let loop = mac_loop () in
  Alcotest.check_raises "mul color uncovered"
    (Mp.Unschedulable [ Color.mul ])
    (fun () -> ignore (Modulo.schedule ~patterns:(pats [ "aa" ]) loop))

let test_max_ii_exhausted () =
  let loop = slack_loop () in
  match Modulo.schedule ~max_ii:1 ~patterns:(pats [ "aaa" ]) loop with
  | exception Modulo.No_schedule { tried_up_to } ->
      Alcotest.(check int) "tried up to 1" 1 tried_up_to
  | _ -> Alcotest.fail "II=1 should be infeasible for the recurrence"

(* Random loops: random DAG bodies plus random backward carried edges. *)
let loop_gen =
  QCheck2.Gen.(
    map
      (fun (seed, extra) ->
        let params =
          { Random_dag.default_params with Random_dag.layers = 4; width = 3 }
        in
        let g = Random_dag.generate ~params ~seed () in
        let n = Dfg.node_count g in
        let rng = Mps_util.Rng.create ~seed:(seed + 7919) in
        let carried =
          List.init (min extra (max 1 (n / 3))) (fun _ ->
              let src = Mps_util.Rng.int rng n in
              let dst = Mps_util.Rng.int rng n in
              { Loop_graph.src; dst; distance = 1 + Mps_util.Rng.int rng 2 })
        in
        Loop_graph.make g carried)
      (pair (0 -- 3_000) (0 -- 3)))

let modulo_props =
  [
    qtest "modulo schedules validate and unroll cleanly" loop_gen (fun loop ->
        let patterns = pats [ "aabcc"; "abbcc"; "aaabb" ] in
        match Modulo.schedule ~patterns loop with
        | m -> (
            Modulo.validate ~patterns loop m = Ok ()
            &&
            let flat, sched = Modulo.to_unrolled ~iterations:3 loop m in
            Schedule.validate ~allowed:patterns ~capacity:5 flat sched = [])
        | exception Modulo.No_schedule _ -> true (* budget ran out: allowed *));
    qtest "achieved II never beats the MII bound" loop_gen (fun loop ->
        let patterns = pats [ "aabcc"; "abbcc"; "aaabb" ] in
        match Modulo.schedule ~patterns loop with
        | m -> m.Modulo.ii >= Loop_graph.mii loop ~patterns
        | exception Modulo.No_schedule _ -> true);
  ]

let () =
  Alcotest.run "modulo"
    [
      ( "bounds",
        [ Alcotest.test_case "rec/res MII" `Quick test_bounds ] );
      ( "scheduling",
        [
          Alcotest.test_case "mac loop at II=1" `Quick test_mac_pipelines_to_ii1;
          Alcotest.test_case "slack recurrence at II=2" `Quick test_slack_loop;
          Alcotest.test_case "resource bound" `Quick test_resource_bound_bites;
          Alcotest.test_case "3dft streamed" `Quick test_3dft_as_loop_body;
          Alcotest.test_case "uncovered color" `Quick test_uncovered_color;
          Alcotest.test_case "max_ii exhausted" `Quick test_max_ii_exhausted;
        ]
        @ modulo_props );
    ]
