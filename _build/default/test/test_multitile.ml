(* Multi-tile mapping: level-slice partitioning, cross-tile release timing,
   and the release-time extension of the core scheduler it relies on. *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Multi_tile = Mps_montium.Multi_tile
module Program = Mps_frontend.Program
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- release-time scheduling (the hook multi-tile uses) --- *)

let test_release_defaults_to_paper () =
  let g = Pg.fig2_3dft () in
  let pats = [ Pattern.of_string "aabcc"; Pattern.of_string "aaacc" ] in
  let plain = (Mp.schedule ~patterns:pats g).Mp.schedule in
  let zero = Array.make (Dfg.node_count g) 0 in
  let released = (Mp.schedule ~release:zero ~patterns:pats g).Mp.schedule in
  Alcotest.(check int) "same cycles" (Schedule.cycles plain) (Schedule.cycles released);
  Dfg.iter_nodes
    (fun i ->
      Alcotest.(check int) "same placement" (Schedule.cycle_of plain i)
        (Schedule.cycle_of released i))
    g

let test_release_delays_and_idles () =
  (* Delay every source by 3: the whole schedule shifts, with idle lead-in
     cycles, and every release is respected. *)
  let g = Pg.fig4_small () in
  let pats = [ Pattern.of_string "aabb" ] in
  let release = Array.make (Dfg.node_count g) 0 in
  List.iter (fun i -> release.(i) <- 3) (Dfg.sources g);
  let s = (Mp.schedule ~release ~patterns:pats g).Mp.schedule in
  Dfg.iter_nodes
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "release respected at %s" (Dfg.name g i))
        true
        (Schedule.cycle_of s i >= release.(i)))
    g;
  Alcotest.(check int) "length = 3 idle + 3 busy" 6 (Schedule.cycles s);
  (match Schedule.validate ~capacity:5 g s with
  | [] -> ()
  | v :: _ -> Alcotest.failf "invalid: %a" (Schedule.pp_violation g) v);
  Alcotest.check_raises "length check"
    (Invalid_argument "Multi_pattern.schedule: release array length mismatch")
    (fun () -> ignore (Mp.schedule ~release:[| 0 |] ~patterns:pats g))

(* --- multi-tile mapping --- *)

let workloads =
  [
    ("3dft", Pg.fig2_3dft ());
    ("fft8", Program.dfg (Dft.radix2_fft ~n:8));
    ("dct8", Program.dfg (Kernels.dct8 ()));
  ]

let test_mapping_valid () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun tiles ->
          let options = { Multi_tile.default_options with Multi_tile.tiles } in
          let m = Multi_tile.map ~options g in
          match Multi_tile.validate g options m with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s x%d: %s" name tiles msg)
        [ 1; 2; 3 ])
    workloads

let test_single_tile_degenerates () =
  let g = Pg.fig2_3dft () in
  let options = { Multi_tile.default_options with Multi_tile.tiles = 1 } in
  let m = Multi_tile.map ~options g in
  Alcotest.(check int) "no cut" 0 m.Multi_tile.cut_edges;
  Alcotest.(check int) "matches single-tile flow" m.Multi_tile.single_tile_cycles
    m.Multi_tile.makespan

let test_partition_is_level_sliced () =
  let g = Program.dfg (Dft.radix2_fft ~n:8) in
  let options = { Multi_tile.default_options with Multi_tile.tiles = 2 } in
  let m = Multi_tile.map ~options g in
  let lv = Levels.compute g in
  (* Every tile-0 node sits at a level <= every tile-1 node's level. *)
  match m.Multi_tile.mappings with
  | [ t0; t1 ] ->
      let max0 =
        List.fold_left (fun acc i -> max acc (Levels.asap lv i)) 0 t0.Multi_tile.tile_nodes
      in
      let min1 =
        List.fold_left
          (fun acc i -> min acc (Levels.asap lv i))
          max_int t1.Multi_tile.tile_nodes
      in
      Alcotest.(check bool) "forward slicing" true (max0 <= min1)
  | _ -> Alcotest.fail "expected two mappings"

let test_free_communication_matches_pipeline_split () =
  (* With zero hop latency, splitting can still cost cycles (smaller
     per-tile parallelism pools) but must never break validity; and the
     makespan cannot beat the critical path. *)
  let g = Program.dfg (Kernels.dct8 ()) in
  let lv = Levels.compute g in
  let options =
    { Multi_tile.default_options with Multi_tile.tiles = 2; hop_latency = 0 }
  in
  let m = Multi_tile.map ~options g in
  Alcotest.(check bool) "above critical path" true
    (m.Multi_tile.makespan >= Levels.lower_bound_cycles lv)

let test_rejects () =
  let g = Pg.fig4_small () in
  Alcotest.check_raises "too many tiles"
    (Invalid_argument "Multi_tile.map: more tiles than nodes") (fun () ->
      ignore
        (Multi_tile.map
           ~options:{ Multi_tile.default_options with Multi_tile.tiles = 99 }
           g))

let multi_tile_props =
  [
    qtest ~count:12 "random DAGs map validly on 2 and 3 tiles"
      QCheck2.Gen.(pair (0 -- 2_000) (2 -- 3))
      (fun (seed, tiles) ->
        let g = Random_dag.generate ~seed () in
        if tiles > Dfg.node_count g then true
        else begin
          let options = { Multi_tile.default_options with Multi_tile.tiles } in
          let m = Multi_tile.map ~options g in
          Multi_tile.validate g options m = Ok ()
        end);
    qtest ~count:10 "higher hop latency never helps" QCheck2.Gen.(0 -- 1_000) (fun seed ->
        let g = Random_dag.generate ~seed () in
        let at hop =
          (Multi_tile.map
             ~options:
               { Multi_tile.default_options with Multi_tile.tiles = 2; hop_latency = hop }
             g)
            .Multi_tile.makespan
        in
        at 0 <= at 4);
  ]

let () =
  Alcotest.run "multitile"
    [
      ( "release-times",
        [
          Alcotest.test_case "zero release = paper" `Quick test_release_defaults_to_paper;
          Alcotest.test_case "delays and idles" `Quick test_release_delays_and_idles;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "validity" `Quick test_mapping_valid;
          Alcotest.test_case "single tile degenerate" `Quick test_single_tile_degenerates;
          Alcotest.test_case "level slicing" `Quick test_partition_is_level_sliced;
          Alcotest.test_case "free communication" `Quick
            test_free_communication_matches_pipeline_split;
          Alcotest.test_case "rejections" `Quick test_rejects;
        ]
        @ multi_tile_props );
    ]
