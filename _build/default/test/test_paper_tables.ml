(* Exact reproduction of the numbers printed in the paper: Table 1 (levels of
   the 3DFT graph) and Table 5 (antichain counts under span limits).  These
   two tables over-constrain the reconstructed Fig. 2 graph, so passing them
   is the evidence that the reconstruction is faithful (DESIGN.md §2). *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Pg = Mps_workloads.Paper_graphs
module Enumerate = Mps_antichain.Enumerate

let test_graph_shape () =
  let g = Pg.fig2_3dft () in
  Alcotest.(check int) "node count" 24 (Dfg.node_count g);
  Alcotest.(check int) "edge count" 22 (Dfg.edge_count g);
  let counts =
    List.map (fun (c, k) -> (Mps_dfg.Color.to_char c, k)) (Dfg.color_counts g)
  in
  Alcotest.(check (list (pair char int)))
    "color histogram: 14 adds, 4 subs, 6 muls"
    [ ('a', 14); ('b', 4); ('c', 6) ]
    counts;
  Alcotest.(check int) "6 external inputs" 6 (List.length (Dfg.sources g));
  Alcotest.(check int) "6 outputs" 6 (List.length (Dfg.sinks g))

let test_table1 () =
  let g = Pg.fig2_3dft () in
  let lv = Levels.compute g in
  Alcotest.(check int) "ASAPmax" 4 (Levels.asap_max lv);
  List.iter
    (fun (name, (asap, alap, height)) ->
      let i = Dfg.find g name in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "levels of %s" name)
        (asap, alap, height)
        (Levels.asap lv i, Levels.alap lv i, Levels.height lv i))
    Pg.table1

let test_table1_covers_all_but_c12_c14 () =
  let g = Pg.fig2_3dft () in
  let listed = List.map fst Pg.table1 in
  let missing =
    List.filter (fun i -> not (List.mem (Dfg.name g i) listed)) (Dfg.nodes g)
    |> List.map (Dfg.name g)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "paper omits exactly c12 and c14" [ "c12"; "c14" ] missing

let test_c12_c14_levels () =
  (* Not printed by the paper, but implied by Table 2's candidate lists:
     both are inner multiplications at (2,2) with height 3. *)
  let g = Pg.fig2_3dft () in
  let lv = Levels.compute g in
  List.iter
    (fun name ->
      let i = Dfg.find g name in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "levels of %s" name)
        (2, 2, 3)
        (Levels.asap lv i, Levels.alap lv i, Levels.height lv i))
    [ "c12"; "c14" ]

let test_table5 () =
  let g = Pg.fig2_3dft () in
  let ctx = Enumerate.make_ctx g in
  let m = Enumerate.count_matrix ~max_size:5 ~max_span:4 ctx in
  List.iter
    (fun (limit, expected) ->
      Array.iteri
        (fun idx want ->
          let size = idx + 1 in
          Alcotest.(check int)
            (Printf.sprintf "antichains of size %d with span<=%d" size limit)
            want
            m.(limit).(size))
        expected)
    Pg.table5

let test_table5_unlimited_equals_span4 () =
  (* The graph's levels span 0..4, so limit 4 is no limit at all. *)
  let g = Pg.fig2_3dft () in
  let ctx = Enumerate.make_ctx g in
  let unlimited = Enumerate.count_by_size ~max_size:5 ctx in
  let m = Enumerate.count_matrix ~max_size:5 ~max_span:4 ctx in
  for s = 1 to 5 do
    Alcotest.(check int) (Printf.sprintf "size %d" s) m.(4).(s) unlimited.(s)
  done

let test_fig4_shape () =
  let g = Pg.fig4_small () in
  Alcotest.(check int) "nodes" 5 (Dfg.node_count g);
  let lv = Levels.compute g in
  Alcotest.(check int) "ASAPmax" 2 (Levels.asap_max lv);
  (* No {a,b}-colored antichain exists: §5.2's Pdef=1 discussion. *)
  let ctx = Enumerate.make_ctx g in
  let mixed = ref 0 in
  Enumerate.iter ~max_size:5 ctx ~f:(fun ac ->
      let p = Mps_antichain.Antichain.pattern g ac in
      let has c = Mps_pattern.Pattern.mem p c in
      if has Mps_dfg.Color.add && has Mps_dfg.Color.sub then incr mixed);
  Alcotest.(check int) "no mixed-color antichain" 0 !mixed

let test_table2_invariant_content () =
  (* Table 2's per-cycle color bags and pattern choices are invariant under
     the graph's mirror symmetry (the only ambiguity the unspecified
     tie-breaks leave) and must reproduce exactly. *)
  let g = Pg.fig2_3dft () in
  let p1, p2 = Pg.section4_patterns in
  let r =
    Mps_scheduler.Multi_pattern.schedule ~trace:true
      ~patterns:[ Mps_pattern.Pattern.of_string p1; Mps_pattern.Pattern.of_string p2 ]
      g
  in
  let sched = r.Mps_scheduler.Multi_pattern.schedule in
  Alcotest.(check int) "row count" (List.length Pg.table2)
    (Mps_scheduler.Schedule.cycles sched);
  List.iteri
    (fun c (bag, chosen) ->
      Alcotest.(check string)
        (Printf.sprintf "cycle %d color bag" (c + 1))
        bag
        (Mps_pattern.Pattern.to_string (Mps_scheduler.Schedule.used_at g sched c));
      let row = List.nth r.Mps_scheduler.Multi_pattern.trace c in
      Alcotest.(check int)
        (Printf.sprintf "cycle %d chosen pattern" (c + 1))
        chosen
        (row.Mps_scheduler.Multi_pattern.row_chosen + 1))
    Pg.table2

let () =
  Alcotest.run "paper_tables"
    [
      ( "fig2-3dft",
        [
          Alcotest.test_case "graph shape" `Quick test_graph_shape;
          Alcotest.test_case "table 1 exact" `Quick test_table1;
          Alcotest.test_case "table 1 omissions" `Quick test_table1_covers_all_but_c12_c14;
          Alcotest.test_case "c12/c14 implied levels" `Quick test_c12_c14_levels;
          Alcotest.test_case "table 5 exact" `Quick test_table5;
          Alcotest.test_case "table 5 limit-4 = unlimited" `Quick
            test_table5_unlimited_equals_span4;
          Alcotest.test_case "table 2 invariant content exact" `Quick
            test_table2_invariant_content;
        ] );
      ( "fig4-small",
        [ Alcotest.test_case "shape and mixed antichains" `Quick test_fig4_shape ] );
    ]
