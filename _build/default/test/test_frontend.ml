(* Expression frontend: smart-constructor algebra, lowering with CSE,
   program validation, reference evaluation. *)

module Color = Mps_dfg.Color
module Dfg = Mps_dfg.Dfg
module Opcode = Mps_frontend.Opcode
module Expr = Mps_frontend.Expr
module Program = Mps_frontend.Program
module Lower = Mps_frontend.Lower

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random expressions over inputs u,v,w with small constants. *)
let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map Expr.var (oneofl [ "u"; "v"; "w" ]);
            map (fun k -> Expr.const (float_of_int k)) (-3 -- 3);
          ]
      else
        oneof
          [
            map2 Expr.( + ) (self (n / 2)) (self (n / 2));
            map2 Expr.( - ) (self (n / 2)) (self (n / 2));
            map2 Expr.( * ) (self (n / 2)) (self (n / 2));
            map Expr.neg (self (n - 1));
          ])

let env = function
  | "u" -> 2.0
  | "v" -> -1.5
  | "w" -> 0.25
  | _ -> raise Not_found

(* --- opcodes --- *)

let test_opcode () =
  Alcotest.(check char) "add color" 'a' (Color.to_char (Opcode.color Opcode.Add));
  Alcotest.(check char) "neg on subtractor" 'b' (Color.to_char (Opcode.color Opcode.Neg));
  Alcotest.(check int) "neg unary" 1 (Opcode.arity Opcode.Neg);
  Alcotest.(check (float 0.)) "eval sub" (-1.0) (Opcode.eval Opcode.Sub [| 2.0; 3.0 |]);
  Alcotest.(check (float 0.)) "eval and truncates" 4.0
    (Opcode.eval Opcode.And [| 6.7; 12.9 |]);
  Alcotest.(check (option string)) "of_string" (Some "xor")
    (Option.map Opcode.to_string (Opcode.of_string "xor"));
  Alcotest.(check (option string)) "unknown" None
    (Option.map Opcode.to_string (Opcode.of_string "frob"));
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Opcode.eval: operand count mismatch") (fun () ->
      ignore (Opcode.eval Opcode.Add [| 1.0 |]))

(* --- smart constructors --- *)

let test_constant_folding () =
  Alcotest.(check bool) "consts fold" true
    (Expr.equal (Expr.const 5.0) Expr.(const 2.0 + const 3.0));
  Alcotest.(check bool) "x+0 = x" true (Expr.equal (Expr.var "x") Expr.(var "x" + const 0.0));
  Alcotest.(check bool) "1*x = x" true (Expr.equal (Expr.var "x") Expr.(const 1.0 * var "x"));
  Alcotest.(check bool) "0*x = 0" true (Expr.equal (Expr.const 0.0) Expr.(const 0.0 * var "x"));
  Alcotest.(check bool) "neg neg x = x" true
    (Expr.equal (Expr.var "x") (Expr.neg (Expr.neg (Expr.var "x"))));
  Alcotest.(check int) "folded size" 0 (Expr.size Expr.(const 2.0 * const 3.0));
  Alcotest.check_raises "binop arity"
    (Invalid_argument "Expr.binop: neg is not binary") (fun () ->
      ignore (Expr.binop Opcode.Neg (Expr.var "x") (Expr.var "y")))

let test_free_vars () =
  let e = Expr.((var "b" * var "a") + (var "a" - const 1.0)) in
  Alcotest.(check (list string)) "sorted dedup" [ "a"; "b" ] (Expr.free_vars e)

(* --- lowering --- *)

let test_lower_cse () =
  let shared = Expr.(var "u" * var "v") in
  let p = Lower.lower [ ("s", Expr.(shared + shared)); ("t", Expr.(shared - const 2.0)) ] in
  let g = Program.dfg p in
  (* one mul (shared), one add, one sub *)
  Alcotest.(check int) "three nodes with CSE" 3 (Dfg.node_count g);
  let p' =
    Lower.lower ~cse:false
      [ ("s", Expr.(shared + shared)); ("t", Expr.(shared - const 2.0)) ]
  in
  Alcotest.(check int) "five nodes without CSE" 5 (Dfg.node_count (Program.dfg p'))

let test_lower_commutative_cse () =
  let p = Lower.lower [ ("s", Expr.((var "u" + var "v") * (var "v" + var "u"))) ] in
  (* u+v and v+u are one node. *)
  Alcotest.(check int) "two nodes" 2 (Dfg.node_count (Program.dfg p));
  let q = Lower.lower [ ("s", Expr.((var "u" - var "v") * (var "v" - var "u"))) ] in
  (* subtraction is not commutative: three nodes. *)
  Alcotest.(check int) "three nodes" 3 (Dfg.node_count (Program.dfg q))

let test_lower_trivial_output () =
  let p = Lower.lower [ ("y", Expr.var "u") ] in
  Alcotest.(check int) "materialized" 1 (Dfg.node_count (Program.dfg p));
  Alcotest.(check (list (pair string (float 0.)))) "evaluates to input"
    [ ("y", 2.0) ]
    (Program.eval ~env p);
  Alcotest.check_raises "duplicate outputs"
    (Invalid_argument "Lower.lower: duplicate output names") (fun () ->
      ignore (Lower.lower [ ("y", Expr.var "u"); ("y", Expr.var "v") ]))

let test_program_inputs_outputs () =
  let p = Lower.lower [ ("y", Expr.((var "u" + var "w") * var "u")) ] in
  Alcotest.(check (list string)) "inputs" [ "u"; "w" ] (Program.inputs p);
  Alcotest.(check int) "one output" 1 (List.length (Program.outputs p))

let test_program_make_validation () =
  let g = Dfg.of_alist [ ("a0", Color.add) ] [] in
  Alcotest.check_raises "color mismatch"
    (Invalid_argument "Program.make: node 0 color mismatch") (fun () ->
      ignore
        (Program.make ~dfg:g
           ~instructions:
             [| { Program.opcode = Opcode.Mul; operands = [| Program.Literal 1.0; Program.Literal 2.0 |] } |]
           ~outputs:[]));
  Alcotest.check_raises "operand edges mismatch"
    (Invalid_argument "Program.make: node 0 operands disagree with DFG edges")
    (fun () ->
      ignore
        (Program.make ~dfg:g
           ~instructions:
             [| { Program.opcode = Opcode.Add; operands = [| Program.Node 0; Program.Literal 2.0 |] } |]
           ~outputs:[]))

let props =
  [
    qtest "lowering preserves semantics" expr_gen (fun e ->
        let p = Lower.lower [ ("y", e) ] in
        let got = List.assoc "y" (Program.eval ~env p) in
        let want = Expr.eval ~env e in
        Float.equal got want || (Float.is_nan got && Float.is_nan want));
    qtest "CSE never changes semantics" expr_gen (fun e ->
        let with_cse = Lower.lower [ ("y", e) ] in
        let without = Lower.lower ~cse:false [ ("y", e) ] in
        Float.equal
          (List.assoc "y" (Program.eval ~env with_cse))
          (List.assoc "y" (Program.eval ~env without)));
    qtest "CSE never grows the graph" expr_gen (fun e ->
        Dfg.node_count (Program.dfg (Lower.lower [ ("y", e) ]))
        <= Dfg.node_count (Program.dfg (Lower.lower ~cse:false [ ("y", e) ])));
    qtest "lowered node count = expr size (no CSE)" expr_gen (fun e ->
        let p = Lower.lower ~cse:false [ ("y", e) ] in
        let expected = max (Expr.size e) 1 (* trivial outputs materialize *) in
        Dfg.node_count (Program.dfg p) = expected);
  ]

let () =
  Alcotest.run "frontend"
    [
      ("opcode", [ Alcotest.test_case "basics" `Quick test_opcode ]);
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "free vars" `Quick test_free_vars;
        ] );
      ( "lower",
        [
          Alcotest.test_case "CSE shares" `Quick test_lower_cse;
          Alcotest.test_case "commutative normalization" `Quick
            test_lower_commutative_cse;
          Alcotest.test_case "trivial outputs" `Quick test_lower_trivial_output;
          Alcotest.test_case "inputs/outputs" `Quick test_program_inputs_outputs;
          Alcotest.test_case "program validation" `Quick test_program_make_validation;
        ]
        @ props );
    ]
