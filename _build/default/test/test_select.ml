(* The selection algorithm against the paper's §5.2 worked example (Fig. 4
   graph: priorities 26/24/88/84, picks {aa} then {bb}, falls back to {ab}
   when Pdef = 1) and the full Table 7 "Selected" column for 3DFT. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Select = Mps_select.Select
module Random_select = Mps_select.Random_select
module Greedy_cover = Mps_select.Greedy_cover
module Exhaustive = Mps_select.Exhaustive
module Pattern_source = Mps_select.Pattern_source
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule
module Pg = Mps_workloads.Paper_graphs

let pat = Pattern.of_string

let fig4_classify () =
  Classify.compute ~capacity:Pg.montium_capacity (Enumerate.make_ctx (Pg.fig4_small ()))

let priority_of report step_idx p =
  let step = List.nth report.Select.steps step_idx in
  match List.assoc_opt p step.Select.priorities with
  | Some f -> f
  | None -> Alcotest.failf "pattern %s not scored at step %d" (Pattern.to_string p) step_idx

(* --- §5.2 worked example --- *)

let test_first_step_priorities () =
  let report = Select.select_report ~pdef:2 (fig4_classify ()) in
  let f = priority_of report 0 in
  Alcotest.(check (float 1e-9)) "f(p1={a}) = 26" 26.0 (f (pat "a"));
  Alcotest.(check (float 1e-9)) "f(p2={b}) = 24" 24.0 (f (pat "b"));
  Alcotest.(check (float 1e-9)) "f(p3={aa}) = 88" 88.0 (f (pat "aa"));
  Alcotest.(check (float 1e-9)) "f(p4={bb}) = 84" 84.0 (f (pat "bb"))

let test_selection_order () =
  let report = Select.select_report ~pdef:2 (fig4_classify ()) in
  let chosen = List.map (fun s -> Pattern.to_string s.Select.chosen) report.steps in
  Alcotest.(check (list string)) "picks {aa} then {bb}" [ "aa"; "bb" ] chosen

let test_subpattern_deletion () =
  let report = Select.select_report ~pdef:2 (fig4_classify ()) in
  let first = List.hd report.steps in
  let deleted = List.map Pattern.to_string first.Select.deleted |> List.sort String.compare in
  (* Selecting {aa} deletes its subpatterns {a} and {aa} itself. *)
  Alcotest.(check (list string)) "deleted after {aa}" [ "a"; "aa" ] deleted;
  (* Consequence the paper highlights: p2 and p4 keep their old priorities
     at the second step because {aa}'s antichains share no node with them. *)
  let f = priority_of report 1 in
  Alcotest.(check (float 1e-9)) "f(p2) unchanged" 24.0 (f (pat "b"));
  Alcotest.(check (float 1e-9)) "f(p4) unchanged" 84.0 (f (pat "bb"))

let test_pdef1_fallback_ab () =
  (* No antichain mixes colors, so no candidate satisfies Eq. 9 and the
     algorithm must fabricate {ab}. *)
  let report = Select.select_report ~pdef:1 (fig4_classify ()) in
  match report.steps with
  | [ step ] ->
      Alcotest.(check bool) "fallback" true step.Select.fallback;
      Alcotest.(check string) "pattern {ab}" "ab" (Pattern.to_string step.chosen);
      (* Every candidate was scored 0 at that step. *)
      List.iter
        (fun (_, f) -> Alcotest.(check (float 1e-9)) "zero priority" 0.0 f)
        step.priorities
  | steps -> Alcotest.failf "expected 1 step, got %d" (List.length steps)

let test_alpha_zero_ties () =
  (* Without the α·|p|² term, {b} and {bb} tie at 4 in the second step (the
     paper's motivation for α). *)
  let params = { Select.default_params with alpha = 0.0 } in
  let report = Select.select_report ~params ~pdef:2 (fig4_classify ()) in
  let f = priority_of report 1 in
  Alcotest.(check (float 1e-9)) "f(p2) = 4" 4.0 (f (pat "b"));
  Alcotest.(check (float 1e-9)) "f(p4) = 4" 4.0 (f (pat "bb"))

let test_coverage_guarantee () =
  let g = Pg.fig4_small () in
  let classify = fig4_classify () in
  for pdef = 1 to 4 do
    let pats = Select.select ~pdef classify in
    Alcotest.(check bool)
      (Printf.sprintf "pdef=%d covers all colors" pdef)
      true
      (Select.covers_all_colors g pats)
  done

(* --- Table 7, 3DFT "Selected" column --- *)

let table7_selected_3dft span_limit =
  let g = Pg.fig2_3dft () in
  let classify =
    Classify.compute ?span_limit ~capacity:Pg.montium_capacity (Enumerate.make_ctx g)
  in
  List.map
    (fun (pdef, _, _) ->
      let pats = Select.select ~pdef classify in
      (pdef, Schedule.cycles (Mp.schedule ~patterns:pats g).schedule))
    Pg.table7_3dft

let test_table7_3dft_exact () =
  (* With span limit 1 the pipeline reproduces the paper's column verbatim:
     8, 7, 7, 7, 6 — see EXPERIMENTS.md on why limit 1 is the operating
     point. *)
  let measured = table7_selected_3dft (Some 1) in
  List.iter2
    (fun (pdef, _, expected) (pdef', got) ->
      Alcotest.(check int) (Printf.sprintf "pdef=%d" pdef) pdef pdef';
      Alcotest.(check int) (Printf.sprintf "cycles at pdef=%d" pdef) expected got)
    Pg.table7_3dft measured

let test_table7_monotone () =
  (* Paper's observation 1: more patterns never hurt (weakly decreasing). *)
  List.iter
    (fun limit ->
      let measured = table7_selected_3dft limit in
      let rec check = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            Alcotest.(check bool) "monotone non-increasing" true (b <= a);
            check rest
        | _ -> ()
      in
      check measured)
    [ None; Some 1; Some 2 ]

let test_selected_beats_random_on_average () =
  (* Paper's observation 2, at every Pdef, for the 3DFT. *)
  let g = Pg.fig2_3dft () in
  let classify =
    Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g)
  in
  let rng = Mps_util.Rng.create ~seed:7 in
  let colors = Dfg.colors g in
  List.iter
    (fun pdef ->
      let sel = Select.select ~pdef classify in
      let sel_cycles = Schedule.cycles (Mp.schedule ~patterns:sel g).schedule in
      let draws = Random_select.trials rng ~runs:10 ~colors ~capacity:5 ~pdef in
      let avg =
        Mps_util.Mstats.mean
          (Array.of_list
             (List.map
                (fun ps ->
                  float_of_int (Schedule.cycles (Mp.schedule ~patterns:ps g).schedule))
                draws))
      in
      Alcotest.(check bool)
        (Printf.sprintf "pdef=%d: selected %d <= random avg %.1f" pdef sel_cycles avg)
        true
        (float_of_int sel_cycles <= avg))
    [ 1; 2; 3; 4; 5 ]

(* --- baselines and oracle --- *)

let test_random_coverage () =
  let rng = Mps_util.Rng.create ~seed:1 in
  let colors = List.map Color.of_char [ 'a'; 'b'; 'c' ] in
  List.iter
    (fun pdef ->
      let sets = Random_select.trials rng ~runs:20 ~colors ~capacity:5 ~pdef in
      List.iter
        (fun ps ->
          let covered =
            List.fold_left
              (fun acc p -> Color.Set.union acc (Pattern.color_set p))
              Color.Set.empty ps
          in
          Alcotest.(check int) "all colors covered" 3 (Color.Set.cardinal covered);
          Alcotest.(check int) "pdef patterns" pdef (List.length ps);
          List.iter
            (fun p -> Alcotest.(check int) "full size" 5 (Pattern.size p))
            ps)
        sets)
    [ 1; 2; 3 ]

let test_random_coverage_impossible () =
  let rng = Mps_util.Rng.create ~seed:1 in
  let colors = List.map Color.of_int [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.check_raises "6 colors cannot fit 1 pattern of 5"
    (Invalid_argument "Random_select.select: coverage impossible for these sizes")
    (fun () -> ignore (Random_select.select rng ~colors ~capacity:5 ~pdef:1))

let test_greedy_cover_valid () =
  let g = Pg.fig2_3dft () in
  let classify = Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g) in
  List.iter
    (fun pdef ->
      let pats = Greedy_cover.select ~pdef classify in
      Alcotest.(check bool) "covers colors" true (Select.covers_all_colors g pats);
      let r = Mp.schedule ~patterns:pats g in
      Alcotest.(check bool) "schedulable" true (Schedule.cycles r.schedule >= 5))
    [ 1; 2; 3; 4; 5 ]

let test_exhaustive_fig4 () =
  let g = Pg.fig4_small () in
  let classify = fig4_classify () in
  let oracle = Exhaustive.search ~pdef:2 classify in
  Alcotest.(check bool) "not truncated" false oracle.truncated;
  (* The heuristic's choice {aa},{bb} is optimal here: 3 cycles (the
     critical path). *)
  Alcotest.(check int) "oracle reaches critical path" 3 oracle.best_cycles;
  let heuristic = Select.select ~pdef:2 classify in
  let hc = Schedule.cycles (Mp.schedule ~patterns:heuristic g).schedule in
  Alcotest.(check int) "heuristic matches oracle" oracle.best_cycles hc

let test_exhaustive_3dft_pdef2 () =
  let g = Pg.fig2_3dft () in
  let classify = Classify.compute ~span_limit:0 ~capacity:5 (Enumerate.make_ctx g) in
  let oracle = Exhaustive.search ~pdef:2 classify in
  Alcotest.(check bool) "not truncated" false oracle.truncated;
  let heuristic = Select.select ~pdef:2 classify in
  let hc = Schedule.cycles (Mp.schedule ~patterns:heuristic g).schedule in
  Alcotest.(check bool)
    (Printf.sprintf "heuristic %d within 2 of oracle %d" hc oracle.best_cycles)
    true
    (hc - oracle.best_cycles <= 2)

let test_pattern_source () =
  let g = Pg.fig2_3dft () in
  List.iter
    (fun method_ ->
      let pats = Pattern_source.harvest ~method_ ~capacity:5 ~pdef:3 g in
      Alcotest.(check bool) "covers colors" true (Select.covers_all_colors g pats);
      Alcotest.(check bool) "at most pdef+coverage patterns" true (List.length pats <= 4);
      let r = Mp.schedule ~patterns:pats g in
      Alcotest.(check bool) "schedulable" true (Schedule.cycles r.schedule >= 5))
    [ Pattern_source.Greedy; Pattern_source.Force_directed ]

let () =
  Alcotest.run "select"
    [
      ( "section-5.2",
        [
          Alcotest.test_case "first-step priorities 26/24/88/84" `Quick
            test_first_step_priorities;
          Alcotest.test_case "selection order" `Quick test_selection_order;
          Alcotest.test_case "subpattern deletion" `Quick test_subpattern_deletion;
          Alcotest.test_case "Pdef=1 fallback {ab}" `Quick test_pdef1_fallback_ab;
          Alcotest.test_case "alpha=0 ties {b} and {bb}" `Quick test_alpha_zero_ties;
          Alcotest.test_case "coverage guarantee" `Quick test_coverage_guarantee;
        ] );
      ( "table-7",
        [
          Alcotest.test_case "3DFT selected column exact" `Quick test_table7_3dft_exact;
          Alcotest.test_case "monotone in Pdef" `Quick test_table7_monotone;
          Alcotest.test_case "selected <= random average" `Quick
            test_selected_beats_random_on_average;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "random coverage" `Quick test_random_coverage;
          Alcotest.test_case "random impossible coverage" `Quick
            test_random_coverage_impossible;
          Alcotest.test_case "greedy cover" `Quick test_greedy_cover_valid;
          Alcotest.test_case "exhaustive oracle fig4" `Quick test_exhaustive_fig4;
          Alcotest.test_case "exhaustive oracle 3dft pdef2" `Slow
            test_exhaustive_3dft_pdef2;
          Alcotest.test_case "schedule-derived patterns" `Quick test_pattern_source;
        ] );
    ]
