(* The configuration-listing interpreter: executing the emitted text alone
   must reproduce the reference evaluator's value for every node. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Mp = Mps_scheduler.Multi_pattern
module Program = Mps_frontend.Program
module Allocation = Mps_montium.Allocation
module Codegen = Mps_montium.Codegen
module Listing_vm = Mps_montium.Listing_vm
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Sorting = Mps_workloads.Sorting

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let listing_of ?patterns prog =
  let patterns =
    Option.value patterns
      ~default:[ Pattern.of_string "aabcc"; Pattern.of_string "abbcc" ]
  in
  let sched = (Mp.schedule ~patterns (Program.dfg prog)).Mp.schedule in
  match Allocation.allocate prog sched with
  | Error m -> Alcotest.failf "allocation: %s" m
  | Ok alloc -> (
      match Codegen.generate prog sched alloc with
      | Error m -> Alcotest.failf "codegen: %s" m
      | Ok listing -> listing)

let run_and_compare ?patterns prog env =
  let listing = listing_of ?patterns prog in
  match Listing_vm.load listing with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok vm -> (
      match Listing_vm.run vm ~env with
      | Error m -> Alcotest.failf "run: %s" m
      | Ok per_node ->
          let g = Program.dfg prog in
          let reference = Program.eval_nodes ~env prog in
          Dfg.iter_nodes
            (fun i ->
              match List.assoc_opt (Dfg.name g i) per_node with
              | None -> Alcotest.failf "node %s missing from VM results" (Dfg.name g i)
              | Some v ->
                  if not (Float.equal v reference.(i)) then
                    Alcotest.failf "node %s: vm %.17g, reference %.17g" (Dfg.name g i) v
                      reference.(i))
            g)

let dft_env = Dft.input_env [| (0.75, -1.5); (2.0, 0.25); (-0.5, 1.0) |]

let test_vm_winograd3 () = run_and_compare (Dft.winograd3 ()) dft_env

let test_vm_fft4 () =
  run_and_compare (Dft.radix2_fft ~n:4)
    (Dft.input_env [| (1.0, 0.0); (0.0, 1.0); (-1.0, 0.5); (0.25, -0.75) |])

let test_vm_bitonic () =
  let prog = Sorting.bitonic ~n:4 in
  let patterns = [ Pattern.of_string "hhii"; Pattern.of_string "hhhii" ] in
  run_and_compare ~patterns prog (fun name ->
      [| 3.0; -1.0; 2.5; 0.0 |].(int_of_string (String.sub name 1 1)))

let test_vm_structure () =
  let prog = Dft.winograd3 () in
  let listing = listing_of prog in
  match Listing_vm.load listing with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok vm ->
      Alcotest.(check int) "instruction count"
        (Dfg.node_count (Program.dfg prog))
        (Listing_vm.instruction_count vm);
      Alcotest.(check bool) "patterns parsed" true (Listing_vm.pattern_table vm <> []);
      Alcotest.(check bool) "cycles parsed" true (Listing_vm.cycle_count vm > 0)

let test_vm_rejects_garbage () =
  (match Listing_vm.load "garbage before sections\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage preamble");
  (match Listing_vm.load ".code\n  alu0: frob x ; n\n" with
  | Error m ->
      Alcotest.(check bool) "mentions opcode" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "accepted unknown opcode");
  match Listing_vm.load ".code\n  alu0: add r0, r1 ; n\n" with
  | Error _ -> ()
  | Ok vm -> (
      (* Parses, but running must fail: code before any cycle header was
         rejected at load, so this path needs a cycle header. *)
      match Listing_vm.run vm ~env:(fun _ -> 0.0) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ran an instruction with empty registers")

let test_vm_detects_missing_value () =
  let listing =
    ".patterns\n  P0 aa---\n.inputs\n.code\ncycle 1 pattern P0\n  alu0: add r7, #1 ; ghost\n"
  in
  match Listing_vm.load listing with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok vm -> (
      match Listing_vm.run vm ~env:(fun _ -> 0.0) with
      | Error m ->
          Alcotest.(check bool) "names the empty register" true
            (String.length m > 0)
      | Ok _ -> Alcotest.fail "read from an empty register file")

let vm_props =
  [
    qtest "VM = reference on random FIR windows"
      QCheck2.Gen.(array_size (QCheck2.Gen.pure 6) (float_range (-3.) 3.))
      (fun window ->
        let prog = Kernels.fir ~taps:[ 0.5; -0.25; 0.75 ] ~block:4 in
        let env name =
          window.(int_of_string (String.sub name 1 (String.length name - 1)))
        in
        let listing = listing_of ~patterns:[ Pattern.of_string "aaccc" ] prog in
        match Listing_vm.load listing with
        | Error _ -> false
        | Ok vm -> (
            match Listing_vm.run vm ~env with
            | Error _ -> false
            | Ok per_node ->
                let g = Program.dfg prog in
                let reference = Program.eval_nodes ~env prog in
                List.for_all
                  (fun i ->
                    match List.assoc_opt (Dfg.name g i) per_node with
                    | Some v -> Float.equal v reference.(i)
                    | None -> false)
                  (Dfg.nodes g)));
  ]

let () =
  Alcotest.run "listing_vm"
    [
      ( "execution",
        [
          Alcotest.test_case "winograd3" `Quick test_vm_winograd3;
          Alcotest.test_case "fft4" `Quick test_vm_fft4;
          Alcotest.test_case "bitonic (min/max)" `Quick test_vm_bitonic;
        ]
        @ vm_props );
      ( "loader",
        [
          Alcotest.test_case "structure" `Quick test_vm_structure;
          Alcotest.test_case "rejects garbage" `Quick test_vm_rejects_garbage;
          Alcotest.test_case "missing value" `Quick test_vm_detects_missing_value;
        ] );
    ]
