(* Program-level MAC fusion: the fused program still evaluates, maps onto
   the tile, simulates, and generates executable listings. *)

module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Mp = Mps_scheduler.Multi_pattern
module Opcode = Mps_frontend.Opcode
module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower
module Program = Mps_frontend.Program
module Program_fuse = Mps_clustering.Program_fuse
module Allocation = Mps_montium.Allocation
module Codegen = Mps_montium.Codegen
module Listing_vm = Mps_montium.Listing_vm
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let env_for prog =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i name -> Hashtbl.replace tbl name (sin (float_of_int (i + 2)) *. 2.0))
    (Program.inputs prog);
  fun name -> Hashtbl.find tbl name

let count_opcode prog op =
  let g = Program.dfg prog in
  List.length
    (List.filter
       (fun i -> (Program.instruction prog i).Program.opcode = op)
       (Dfg.nodes g))

let test_fuses_fir () =
  (* FIR: every multiply feeds exactly one add except the one consumed by
     the first add of each output chain... after left-deep lowering each
     output is mul + fold of adds, so most muls fuse. *)
  let prog = Kernels.fir ~taps:[ 0.5; 0.25; -0.75; 0.125 ] ~block:2 in
  let fused = Program_fuse.fuse prog in
  Alcotest.(check bool) "some fusion happened" true
    (Program_fuse.fused_count ~before:prog ~after:fused > 0);
  Alcotest.(check bool) "macs present" true (count_opcode fused Opcode.Mac > 0);
  (* Exact float semantics preserved. *)
  let env = env_for prog in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "output order" n1 n2;
      Alcotest.(check (float 0.)) n1 v1 v2)
    (Program.eval ~env prog)
    (Program.eval ~env fused)

let test_output_mul_not_fused () =
  (* A multiply that IS an output must survive (its value is observable). *)
  let bindings =
    [ ("m", Expr.(var "x" * var "y")); ("s", Expr.((var "x" * var "y") + var "z")) ]
  in
  let prog = Lower.lower bindings in
  (* CSE shares the mul; it has one consumer (the add) but is also an
     output: fusion must leave it alone. *)
  let fused = Program_fuse.fuse prog in
  Alcotest.(check int) "mul kept" 1 (count_opcode fused Opcode.Mul);
  Alcotest.(check int) "no mac" 0 (count_opcode fused Opcode.Mac);
  let env = function "x" -> 2.0 | "y" -> 3.0 | "z" -> 1.0 | _ -> raise Not_found in
  Alcotest.(check (float 0.)) "m" 6.0 (List.assoc "m" (Program.eval ~env fused));
  Alcotest.(check (float 0.)) "s" 7.0 (List.assoc "s" (Program.eval ~env fused))

let test_multi_consumer_mul_not_fused () =
  let bindings =
    [ ("a", Expr.((var "x" * var "y") + var "z"));
      ("b", Expr.((var "x" * var "y") + var "w")) ]
  in
  let prog = Lower.lower bindings in
  let fused = Program_fuse.fuse prog in
  (* The shared mul has two consumers: no fusion. *)
  Alcotest.(check int) "mul kept" 1 (count_opcode fused Opcode.Mul);
  Alcotest.(check int) "no mac" 0 (count_opcode fused Opcode.Mac)

let test_fused_maps_and_simulates () =
  let prog = Program_fuse.fuse (Dft.winograd3 ()) in
  Alcotest.(check bool) "macs present" true (count_opcode prog Opcode.Mac > 0);
  let patterns = [ Pattern.of_string "aamm"; Pattern.of_string "abbcc" ] in
  let sched = (Mp.schedule ~patterns (Program.dfg prog)).Mp.schedule in
  match Allocation.allocate prog sched with
  | Error m -> Alcotest.failf "allocation: %s" m
  | Ok alloc -> (
      let env =
        Dft.input_env [| (0.25, -1.0); (1.5, 0.75); (-0.5, 2.0) |]
      in
      (match
         Mps_montium.Simulator.check_against_reference prog sched alloc ~env
       with
      | Ok () -> ()
      | Error m -> Alcotest.failf "simulation: %s" m);
      (* And through the listing VM. *)
      match Codegen.generate prog sched alloc with
      | Error m -> Alcotest.failf "codegen: %s" m
      | Ok listing -> (
          match Listing_vm.load listing with
          | Error m -> Alcotest.failf "load: %s" m
          | Ok vm -> (
              match Listing_vm.run vm ~env with
              | Error m -> Alcotest.failf "vm: %s" m
              | Ok per_node ->
                  let g = Program.dfg prog in
                  let reference = Program.eval_nodes ~env prog in
                  Dfg.iter_nodes
                    (fun i ->
                      match List.assoc_opt (Dfg.name g i) per_node with
                      | Some v ->
                          Alcotest.(check (float 0.)) (Dfg.name g i) reference.(i) v
                      | None -> Alcotest.failf "missing %s" (Dfg.name g i))
                    g)))

let test_fusion_shortens_schedules () =
  let prog = Kernels.fir ~taps:[ 0.5; 0.25; -0.75; 0.125; 0.9 ] ~block:4 in
  let fused = Program_fuse.fuse prog in
  let cycles p pats =
    Mp.cycles ~patterns:(List.map Pattern.of_string pats) (Program.dfg p)
  in
  (* Same ALU budget, MAC-capable patterns for the fused program. *)
  let plain = cycles prog [ "aaccc"; "aaacc" ] in
  let with_mac = cycles fused [ "mmmcc"; "mmmmc" ] in
  Alcotest.(check bool)
    (Printf.sprintf "fused %d <= plain %d" with_mac plain)
    true (with_mac <= plain)

let fuse_props =
  [
    qtest "fusion preserves float semantics exactly"
      QCheck2.Gen.(0 -- 1_000)
      (fun seed ->
        (* Random MAC-heavy kernels: sums of products. *)
        let rng = Mps_util.Rng.create ~seed in
        let terms = 1 + Mps_util.Rng.int rng 5 in
        let bindings =
          [
            ( "y",
              List.init terms (fun i ->
                  Expr.(
                    var (Printf.sprintf "a%d" i) * var (Printf.sprintf "b%d" i)))
              |> function
              | first :: rest -> List.fold_left Expr.( + ) first rest
              | [] -> assert false );
          ]
        in
        let prog = Lower.lower bindings in
        let fused = Program_fuse.fuse prog in
        let env = env_for prog in
        Float.equal
          (List.assoc "y" (Program.eval ~env prog))
          (List.assoc "y" (Program.eval ~env fused)));
  ]

let test_pipeline_clustered_mapping () =
  (* The full clustered path: map_program with cluster on fuses first, and
     verify simulates the fused program against the float reference. *)
  let prog = Kernels.fir ~taps:[ 0.5; 0.25; -0.75 ] ~block:4 in
  let options = { Core.Pipeline.default_options with Core.Pipeline.cluster = true } in
  match Core.Pipeline.map_program ~options prog with
  | Error m -> Alcotest.failf "mapping: %s" m
  | Ok mapped ->
      Alcotest.(check bool) "mapped program is fused" true
        (count_opcode mapped.Core.Pipeline.program Opcode.Mac > 0);
      (match Core.Pipeline.verify mapped ~env:(env_for prog) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "verify: %s" m)

let () =
  Alcotest.run "program_fuse"
    [
      ( "fusion",
        [
          Alcotest.test_case "fir fuses" `Quick test_fuses_fir;
          Alcotest.test_case "output mul survives" `Quick test_output_mul_not_fused;
          Alcotest.test_case "multi-consumer survives" `Quick
            test_multi_consumer_mul_not_fused;
          Alcotest.test_case "maps, simulates, executes as listing" `Quick
            test_fused_maps_and_simulates;
          Alcotest.test_case "shortens schedules" `Quick test_fusion_shortens_schedules;
          Alcotest.test_case "clustered pipeline mapping" `Quick
            test_pipeline_clustered_mapping;
        ]
        @ fuse_props );
    ]
