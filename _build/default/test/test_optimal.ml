(* The exact branch-and-bound scheduler: sanity against the list heuristic,
   the paper's pattern sets, and brute-force-verifiable small graphs. *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Optimal = Mps_scheduler.Optimal
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pats = List.map Pattern.of_string

let check_valid g allowed sched =
  match Schedule.validate ~allowed ~capacity:5 g sched with
  | [] -> ()
  | v :: _ -> Alcotest.failf "invalid: %a" (Schedule.pp_violation g) v

let test_section4_optimal () =
  let g = Pg.fig2_3dft () in
  let allowed = pats [ "aabcc"; "aaacc" ] in
  let o = Optimal.schedule ~patterns:allowed g in
  Alcotest.(check bool) "proven" true o.Optimal.proven_optimal;
  check_valid g allowed o.Optimal.schedule;
  (* The proven optimum under the §4.3 patterns is 7 — the paper's list
     heuristic is exactly optimal on its own worked example. *)
  Alcotest.(check int) "optimum" 7 o.Optimal.cycles;
  Alcotest.(check int) "list heuristic matches the optimum" o.Optimal.cycles
    (Mp.cycles ~patterns:allowed g)

let test_table3_optima () =
  let g = Pg.fig2_3dft () in
  List.iter
    (fun (set, _) ->
      let allowed = pats set in
      let o = Optimal.schedule ~patterns:allowed g in
      Alcotest.(check bool) "proven" true o.Optimal.proven_optimal;
      check_valid g allowed o.Optimal.schedule;
      let lst = Mp.cycles ~patterns:allowed g in
      Alcotest.(check bool)
        (Printf.sprintf "optimal %d <= list %d" o.Optimal.cycles lst)
        true
        (o.Optimal.cycles <= lst);
      Alcotest.(check bool) "above critical path" true (o.Optimal.cycles >= 5))
    Pg.table3_pattern_sets

let test_single_full_pattern_is_greedy_bound () =
  (* With one pattern of one color and k slots, the optimum is exactly the
     per-level packing: a chain of adds of length L with width 1 needs L. *)
  let b = Dfg.Builder.create () in
  let prev = ref None in
  for _ = 1 to 6 do
    let id = Dfg.Builder.add_node b Mps_dfg.Color.add in
    (match !prev with Some p -> Dfg.Builder.add_edge b p id | None -> ());
    prev := Some id
  done;
  let g = Dfg.Builder.build b in
  let o = Optimal.schedule ~patterns:(pats [ "aaaaa" ]) g in
  Alcotest.(check int) "chain length" 6 o.Optimal.cycles;
  Alcotest.(check bool) "proven" true o.Optimal.proven_optimal

let test_rejects () =
  let g = Pg.fig4_small () in
  Alcotest.check_raises "no patterns"
    (Invalid_argument "Optimal.schedule: no patterns") (fun () ->
      ignore (Optimal.schedule ~patterns:[] g));
  Alcotest.check_raises "uncovered colors"
    (Mp.Unschedulable [ Mps_dfg.Color.sub ])
    (fun () -> ignore (Optimal.schedule ~patterns:(pats [ "aa" ]) g))

let test_state_cap_anytime () =
  let g = Pg.fig2_3dft () in
  let allowed = pats [ "aabcc"; "aaacc" ] in
  let o = Optimal.schedule ~max_states:5 ~patterns:allowed g in
  Alcotest.(check bool) "not proven under tiny cap" false o.Optimal.proven_optimal;
  (* Anytime: still a valid schedule no worse than the list heuristic. *)
  check_valid g allowed o.Optimal.schedule;
  Alcotest.(check bool) "within list bound" true
    (o.Optimal.cycles <= Mp.cycles ~patterns:allowed g)

let small_dag_gen =
  let params =
    { Random_dag.default_params with Random_dag.layers = 4; width = 3 }
  in
  QCheck2.Gen.(map (fun seed -> Random_dag.generate ~params ~seed ()) (0 -- 3_000))

let props =
  [
    qtest "optimal <= list scheduler, valid, proven" small_dag_gen (fun g ->
        let allowed = pats [ "aabcc"; "abbcc"; "aaabb" ] in
        let o = Optimal.schedule ~patterns:allowed g in
        let lst = Mp.cycles ~patterns:allowed g in
        o.Optimal.proven_optimal
        && o.Optimal.cycles <= lst
        && Schedule.validate ~allowed ~capacity:5 g o.Optimal.schedule = []
        && o.Optimal.cycles
           >= Levels.lower_bound_cycles (Levels.compute g));
    qtest "optimal is monotone in the pattern set" small_dag_gen (fun g ->
        (* Adding a pattern can only help. *)
        let small = pats [ "aabcc" ] in
        let large = pats [ "aabcc"; "abbbc" ] in
        let o_small = Optimal.schedule ~patterns:small g in
        let o_large = Optimal.schedule ~patterns:large g in
        o_large.Optimal.cycles <= o_small.Optimal.cycles);
  ]

let () =
  Alcotest.run "optimal"
    [
      ( "exact",
        [
          Alcotest.test_case "section 4.3 optimum is 6" `Quick test_section4_optimal;
          Alcotest.test_case "table 3 optima" `Quick test_table3_optima;
          Alcotest.test_case "chain bound" `Quick test_single_full_pattern_is_greedy_bound;
          Alcotest.test_case "rejections" `Quick test_rejects;
          Alcotest.test_case "anytime under state cap" `Quick test_state_cap_anytime;
        ]
        @ props );
    ]
