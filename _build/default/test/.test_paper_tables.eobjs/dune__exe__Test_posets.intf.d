test/test_posets.mli:
