test/test_program_text.mli:
