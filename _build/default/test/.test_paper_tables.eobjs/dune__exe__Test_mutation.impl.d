test/test_mutation.ml: Alcotest Array List Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_util Mps_workloads QCheck2 QCheck_alcotest
