test/test_pattern.ml: Alcotest List Mps_dfg Mps_pattern Mps_util QCheck2 QCheck_alcotest
