test/test_program_fuse.mli:
