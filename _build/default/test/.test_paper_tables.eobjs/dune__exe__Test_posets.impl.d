test/test_posets.ml: Alcotest List Mps_antichain Mps_dfg Mps_scheduler Mps_workloads QCheck2 QCheck_alcotest
