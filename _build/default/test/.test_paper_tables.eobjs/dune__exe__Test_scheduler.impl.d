test/test_scheduler.ml: Alcotest List Mps_dfg Mps_pattern Mps_scheduler Mps_workloads Printf String
