test/test_ofdm.ml: Alcotest Array Core Float List Mps_dfg Mps_frontend Mps_util Mps_workloads Printf QCheck2 QCheck_alcotest
