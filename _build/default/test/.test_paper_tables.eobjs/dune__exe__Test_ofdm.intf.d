test/test_ofdm.mli:
