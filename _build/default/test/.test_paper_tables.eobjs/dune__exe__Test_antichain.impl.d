test/test_antichain.ml: Alcotest Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Mps_workloads QCheck2 QCheck_alcotest
