test/test_frontend.ml: Alcotest Float List Mps_dfg Mps_frontend Option QCheck2 QCheck_alcotest
