test/test_listing_vm.ml: Alcotest Array Float List Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_workloads Option QCheck2 QCheck_alcotest String
