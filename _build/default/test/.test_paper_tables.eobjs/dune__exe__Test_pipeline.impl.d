test/test_pipeline.ml: Alcotest Array Core Hashtbl List Mps_dfg Mps_workloads QCheck2 QCheck_alcotest
