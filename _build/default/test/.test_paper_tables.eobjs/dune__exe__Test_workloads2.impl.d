test/test_workloads2.ml: Alcotest Array Core Float List Mps_antichain Mps_dfg Mps_frontend Mps_pattern Mps_scheduler Mps_select Mps_util Mps_workloads Printf QCheck2 QCheck_alcotest String
