test/test_strength_csv.mli:
