test/test_util.ml: Alcotest Array Char Fun Int Int64 List Mps_util QCheck2 QCheck_alcotest String
