test/test_schedule_opt.mli:
