test/test_schedule_opt.ml: Alcotest Fun List Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_workloads Printf QCheck2 QCheck_alcotest
