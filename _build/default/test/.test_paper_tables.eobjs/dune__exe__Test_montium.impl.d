test/test_montium.ml: Alcotest Array Float Hashtbl List Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_select Mps_util Mps_workloads QCheck2 QCheck_alcotest String
