test/test_program_text.ml: Alcotest Float Hashtbl List Mps_clustering Mps_dfg Mps_frontend Mps_workloads Printf QCheck2 QCheck_alcotest String
