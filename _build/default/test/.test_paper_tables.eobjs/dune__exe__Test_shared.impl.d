test/test_shared.ml: Alcotest List Mps_antichain Mps_dfg Mps_frontend Mps_pattern Mps_scheduler Mps_select Mps_workloads Printf
