test/test_optimal.mli:
