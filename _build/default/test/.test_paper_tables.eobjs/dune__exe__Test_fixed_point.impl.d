test/test_fixed_point.ml: Alcotest Array Float List Mps_frontend Mps_montium Mps_workloads Printf QCheck2 QCheck_alcotest String
