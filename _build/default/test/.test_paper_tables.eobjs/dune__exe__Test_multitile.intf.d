test/test_multitile.mli:
