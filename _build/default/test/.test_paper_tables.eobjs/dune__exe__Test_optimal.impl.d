test/test_optimal.ml: Alcotest List Mps_dfg Mps_pattern Mps_scheduler Mps_workloads Printf QCheck2 QCheck_alcotest
