test/test_fixed_point.mli:
