test/test_paper_tables.ml: Alcotest Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Mps_workloads Printf String
