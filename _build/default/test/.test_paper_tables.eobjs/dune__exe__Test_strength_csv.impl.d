test/test_strength_csv.ml: Alcotest Filename Float List Mps_dfg Mps_frontend Mps_montium Mps_util Printf QCheck2 QCheck_alcotest Sys
