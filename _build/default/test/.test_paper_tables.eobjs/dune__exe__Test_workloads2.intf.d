test/test_workloads2.mli:
