test/test_modulo.mli:
