test/test_antichain.mli:
