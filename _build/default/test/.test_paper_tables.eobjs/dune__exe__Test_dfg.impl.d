test/test_dfg.ml: Alcotest Array List Mps_dfg Mps_util Mps_workloads Printf QCheck2 QCheck_alcotest String
