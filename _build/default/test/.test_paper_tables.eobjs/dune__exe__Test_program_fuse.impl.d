test/test_program_fuse.ml: Alcotest Array Core Float Hashtbl List Mps_clustering Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_util Mps_workloads Printf QCheck2 QCheck_alcotest
