test/test_listing_vm.mli:
