test/test_workloads.ml: Alcotest Array Float List Mps_dfg Mps_frontend Mps_workloads Printf QCheck2 QCheck_alcotest String
