test/test_streaming.ml: Alcotest List Mps_dfg Mps_pattern Mps_scheduler Mps_workloads Printf
