test/test_select.ml: Alcotest Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Mps_select Mps_util Mps_workloads Printf String
