test/test_montium.mli:
