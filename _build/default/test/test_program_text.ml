(* The textual program format: lossless round-trips and parse errors. *)

module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Program_text = Mps_frontend.Program_text
module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels
module Program_fuse = Mps_clustering.Program_fuse

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let programs =
  [
    ("winograd3", Dft.winograd3 ());
    ("fft4", Dft.radix2_fft ~n:4);
    ("fir", Kernels.fir ~taps:[ 0.5; -0.25; 0.125 ] ~block:3);
    ("fused-fir", Program_fuse.fuse (Kernels.fir ~taps:[ 0.5; -0.25 ] ~block:2));
    ("bitonic4", Mps_workloads.Sorting.bitonic ~n:4);
    ("horner", Kernels.horner ~degree:4);
  ]

let env_for prog =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i name -> Hashtbl.replace tbl name (cos (float_of_int (3 * i)) *. 1.5))
    (Program.inputs prog);
  fun name -> Hashtbl.find tbl name

let test_round_trips () =
  List.iter
    (fun (name, prog) ->
      let text = Program_text.to_string prog in
      let back = Program_text.of_string text in
      Alcotest.(check bool)
        (Printf.sprintf "%s: graphs equal" name)
        true
        (Dfg.equal (Program.dfg prog) (Program.dfg back));
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%s: outputs equal" name)
        (Program.outputs prog) (Program.outputs back);
      (* Bit-exact evaluation after the round trip. *)
      let env = env_for prog in
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          Alcotest.(check string) "name" n1 n2;
          Alcotest.(check (float 0.)) n1 v1 v2)
        (Program.eval ~env prog)
        (Program.eval ~env back))
    programs

let test_hand_written () =
  let text =
    "# a tiny mac kernel\n%t0 = mul x0, #0.5\n%t1 = mac x1, #0.25, %t0\nout y = %t1\n"
  in
  let prog = Program_text.of_string text in
  Alcotest.(check int) "two instructions" 2 (Dfg.node_count (Program.dfg prog));
  let env = function "x0" -> 4.0 | "x1" -> 8.0 | _ -> raise Not_found in
  Alcotest.(check (float 1e-12)) "value" 4.0 (List.assoc "y" (Program.eval ~env prog))

let expect_error text fragment =
  match Program_text.of_string text with
  | exception Program_text.Parse_error { message; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s" fragment)
        true
        (let n = String.length message and m = String.length fragment in
         let rec go i = i + m <= n && (String.sub message i m = fragment || go (i + 1)) in
         m = 0 || go 0)
  | _ -> Alcotest.failf "accepted %S" text

let test_parse_errors () =
  expect_error "%a = frob x, y\n" "unknown opcode";
  expect_error "%a = add x, %later\n%later = add x, y\n" "unknown (or forward)";
  expect_error "%a = add x\n" "takes 2 operands";
  expect_error "%a = add x, y\n%a = add x, y\n" "duplicate";
  expect_error "out y = %nope\n" "unknown value";
  expect_error "nonsense\n" "expected"

let roundtrip_prop =
  qtest "random expression programs round-trip bit-exactly"
    (let open QCheck2.Gen in
     sized @@ QCheck2.Gen.fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map Expr.var (oneofl [ "u"; "v"; "w" ]);
               map (fun k -> Expr.const (float_of_int k /. 3.0)) (-9 -- 9);
             ]
         else
           oneof
             [
               map2 Expr.( + ) (self (n / 2)) (self (n / 2));
               map2 Expr.( - ) (self (n / 2)) (self (n / 2));
               map2 Expr.( * ) (self (n / 2)) (self (n / 2));
             ]))
    (fun e ->
      let prog = Lower.lower [ ("y", e) ] in
      let back = Program_text.of_string (Program_text.to_string prog) in
      let env = function "u" -> 1.25 | "v" -> -0.5 | "w" -> 3.0 | _ -> raise Not_found in
      Float.equal
        (List.assoc "y" (Program.eval ~env prog))
        (List.assoc "y" (Program.eval ~env back)))

let () =
  Alcotest.run "program_text"
    [
      ( "format",
        [
          Alcotest.test_case "round trips" `Quick test_round_trips;
          Alcotest.test_case "hand written" `Quick test_hand_written;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          roundtrip_prop;
        ] );
    ]
