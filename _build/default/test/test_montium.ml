(* Montium tile model: allocation of real schedules, simulator equivalence
   with the reference evaluator, configuration space, energy model. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Reference = Mps_scheduler.Reference
module Program = Mps_frontend.Program
module Tile = Mps_montium.Tile
module Allocation = Mps_montium.Allocation
module Simulator = Mps_montium.Simulator
module Config_space = Mps_montium.Config_space
module Energy = Mps_montium.Energy
module Dft = Mps_workloads.Dft
module Kernels = Mps_workloads.Kernels

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let schedule_with patterns program =
  (Mp.schedule ~patterns (Program.dfg program)).Mp.schedule

let pats ss = List.map Pattern.of_string ss

let alloc_ok ?tile program schedule =
  match Allocation.allocate ?tile program schedule with
  | Ok a -> a
  | Error m -> Alcotest.failf "allocation failed: %s" m

(* --- tile --- *)

let test_tile () =
  Alcotest.(check int) "10 memories" 10 (Tile.memory_count Tile.default);
  Alcotest.(check int) "memory index" 7 (Tile.memory_of Tile.default ~alu:3 ~port:1);
  (match Tile.validate Tile.default with
  | Ok () -> ()
  | Error m -> Alcotest.failf "default tile invalid: %s" m);
  (match Tile.validate { Tile.default with Tile.alu_count = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero ALUs accepted")

(* --- allocation --- *)

let test_allocate_winograd3 () =
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let alloc = alloc_ok prog sched in
  (match Allocation.validate prog sched alloc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "validate rejected allocate's output: %s" m);
  let s = Allocation.stats alloc in
  Alcotest.(check bool) "buses within tile" true
    (s.Allocation.peak_bus_use <= Tile.default.Tile.bus_count);
  Alcotest.(check bool) "registers within tile" true
    (s.Allocation.peak_registers <= Tile.default.Tile.registers_per_alu)

let test_allocate_capacity_error () =
  let prog = Dft.winograd3 () in
  (* An illegal schedule: everything in one cycle. *)
  let g = Program.dfg prog in
  let flat = Schedule.of_cycles g (Array.make (Dfg.node_count g) 0) in
  match Allocation.allocate prog flat with
  | Error m ->
      Alcotest.(check bool) "mentions ALUs" true
        (String.length m > 0 && String.contains m 'A')
  | Ok _ -> Alcotest.fail "17 nodes in one cycle allocated on 5 ALUs"

let test_allocation_tiny_tile_spills () =
  (* A 2-register tile forces spills on the FIR block; allocation must
     still succeed and stay within the (many) memory ports. *)
  let tile = { Tile.default with Tile.registers_per_alu = 2 } in
  let prog = Kernels.fir ~taps:[ 0.5; 0.25; -0.75 ] ~block:4 in
  let sched = schedule_with (pats [ "aaacc"; "acccc" ]) prog in
  match Allocation.allocate ~tile prog sched with
  | Ok alloc ->
      (match Allocation.validate ~tile prog sched alloc with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid: %s" m)
  | Error m ->
      (* Acceptable only if genuinely out of ports; fail loudly otherwise. *)
      Alcotest.failf "tiny tile allocation failed: %s" m

(* --- simulator --- *)

let dft_env = Dft.input_env [| (1.0, -2.0); (0.5, 3.0); (-1.5, 0.25) |]

let test_simulator_winograd3 () =
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let alloc = alloc_ok prog sched in
  match Simulator.check_against_reference prog sched alloc ~env:dft_env with
  | Ok () -> ()
  | Error m -> Alcotest.failf "simulation diverged: %s" m

let test_simulator_stats () =
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let alloc = alloc_ok prog sched in
  let _, stats = Simulator.run prog sched alloc ~env:dft_env in
  let ops = Dfg.node_count (Program.dfg prog) in
  Alcotest.(check int) "all ops executed" ops stats.Simulator.executed;
  Alcotest.(check int) "cycle count agrees" (Schedule.cycles sched) stats.Simulator.cycles;
  Alcotest.(check int) "busy cycles sum to ops" ops
    (Array.fold_left ( + ) 0 stats.Simulator.alu_busy)

let test_simulator_detects_corruption () =
  (* Handcraft an allocation lying about a route: the simulator must raise. *)
  let prog = Mps_frontend.Lower.lower
      [ ("y", Mps_frontend.Expr.(var "u" + (var "u" * var "v"))) ]
  in
  let g = Program.dfg prog in
  let sched = Reference.asap g in
  let alloc = alloc_ok prog sched in
  (* Perturb: claim the add reads its mul operand via feedback on the wrong
     ALU by rebuilding an allocation through validate's blind spot is hard —
     instead check the documented error on a wrong schedule/alloc pair. *)
  let other_sched =
    Schedule.of_cycles g (Array.init (Dfg.node_count g) (fun i -> i))
  in
  match Simulator.run prog other_sched alloc ~env:(function
      | "u" -> 1.0
      | "v" -> 2.0
      | _ -> raise Not_found)
  with
  | exception Simulator.Machine_error _ -> ()
  | _ ->
      (* The pair may happen to validate; then outputs must still be right. *)
      ()

(* --- config space --- *)

let test_config_space () =
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let cfg = Config_space.of_schedule sched in
  Alcotest.(check bool) "fits 32" true cfg.Config_space.fits;
  Alcotest.(check bool) "table bounded by cycles" true
    (cfg.Config_space.table_size <= Schedule.cycles sched);
  Alcotest.(check int) "cycle index total" (Schedule.cycles sched)
    (Array.length cfg.Config_space.cycle_index);
  (* Reconfigurations = switches, at most cycles-1. *)
  Alcotest.(check bool) "reconfig bound" true
    (cfg.Config_space.reconfigurations <= Schedule.cycles sched - 1)

let test_config_overflow_detected () =
  let tile = { Tile.default with Tile.max_configs = 1 } in
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let cfg = Config_space.of_schedule ~tile sched in
  Alcotest.(check bool) "overflow flagged" true
    (cfg.Config_space.table_size <= 1 || not cfg.Config_space.fits)

(* --- energy --- *)

let test_energy_breakdown () =
  let prog = Dft.winograd3 () in
  let sched = schedule_with (pats [ "aabcc"; "aabbb" ]) prog in
  let alloc = alloc_ok prog sched in
  let e = Energy.estimate prog sched alloc in
  Alcotest.(check bool) "total is the sum" true
    (Float.abs
       (e.Energy.total
       -. (e.Energy.operations +. e.Energy.transfers +. e.Energy.memory
          +. e.Energy.reconfig +. e.Energy.idle))
    < 1e-9);
  Alcotest.(check bool) "operations positive" true (e.Energy.operations > 0.0);
  (* Fewer reconfigurations cannot cost more reconfig energy. *)
  let single = schedule_with (pats [ "aabbc" ]) prog in
  let alloc1 = alloc_ok prog single in
  let e1 = Energy.estimate prog single alloc1 in
  Alcotest.(check (float 1e-9)) "single pattern never reconfigures" 0.0
    e1.Energy.reconfig

(* --- property: allocate+simulate across kernels and pattern sets --- *)

let kernel_gen =
  QCheck2.Gen.(
    oneofl
      [
        ("winograd3", Dft.winograd3 ());
        ("fft4", Dft.radix2_fft ~n:4);
        ("fir", Kernels.fir ~taps:[ 0.5; 0.25; -1.0; 0.125 ] ~block:3);
        ("dct8", Kernels.dct8 ());
        ("matmul", Kernels.matmul ~m:2 ~k:2 ~n:2);
        ("iir", Kernels.iir_biquad ~b:(0.2, 0.3, 0.1) ~a:(-0.5, 0.25) ~block:4);
        ("horner", Kernels.horner ~degree:5);
      ])

let env_for prog =
  (* Deterministic pseudo-random values per input name. *)
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i name -> Hashtbl.replace tbl name (sin (float_of_int (i + 1)) *. 3.0))
    (Program.inputs prog);
  fun name -> match Hashtbl.find_opt tbl name with Some v -> v | None -> raise Not_found

let end_to_end_props =
  [
    qtest ~count:40 "allocate+simulate = reference on kernels"
      QCheck2.Gen.(pair kernel_gen (0 -- 1000))
      (fun ((_, prog), seed) ->
        let g = Program.dfg prog in
        let rng = Mps_util.Rng.create ~seed in
        let colors = Dfg.colors g in
        let patterns =
          Mps_select.Random_select.select rng ~colors ~capacity:5 ~pdef:3
        in
        let sched = (Mp.schedule ~patterns g).Mp.schedule in
        match Allocation.allocate prog sched with
        | Error _ -> false
        | Ok alloc -> (
            match
              Simulator.check_against_reference prog sched alloc ~env:(env_for prog)
            with
            | Ok () -> true
            | Error _ -> false));
  ]

let () =
  Alcotest.run "montium"
    [
      ("tile", [ Alcotest.test_case "parameters" `Quick test_tile ]);
      ( "allocation",
        [
          Alcotest.test_case "winograd3" `Quick test_allocate_winograd3;
          Alcotest.test_case "over-capacity rejected" `Quick test_allocate_capacity_error;
          Alcotest.test_case "tiny tile spills" `Quick test_allocation_tiny_tile_spills;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "winograd3 exact" `Quick test_simulator_winograd3;
          Alcotest.test_case "run stats" `Quick test_simulator_stats;
          Alcotest.test_case "corruption detected" `Quick test_simulator_detects_corruption;
        ]
        @ end_to_end_props );
      ( "config-space",
        [
          Alcotest.test_case "fits and counts" `Quick test_config_space;
          Alcotest.test_case "overflow" `Quick test_config_overflow_detected;
        ] );
      ("energy", [ Alcotest.test_case "breakdown" `Quick test_energy_breakdown ]);
    ]
