(* Antichain engine: Table 4 (patterns and antichains of the Fig. 4 graph),
   Table 6 (node frequencies), Theorem 1, and enumeration completeness
   against a brute-force reference on random DAGs. *)

module Color = Mps_dfg.Color
module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern
module Antichain = Mps_antichain.Antichain
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Random_dag = Mps_workloads.Random_dag
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let small_dag_gen =
  let params = { Random_dag.default_params with layers = 4; width = 4 } in
  QCheck2.Gen.(map (fun seed -> Random_dag.generate ~params ~seed ()) (0 -- 5_000))

let names g a = List.map (Dfg.name g) (Antichain.nodes a)

(* --- antichain type --- *)

let test_of_nodes_checks () =
  let g = Pg.fig4_small () in
  let r = Reachability.compute g in
  let at n = Dfg.find g n in
  let a = Antichain.of_nodes r [ at "a3"; at "a1" ] in
  Alcotest.(check (list string)) "sorted" [ "a1"; "a3" ] (names g a);
  Alcotest.check_raises "comparable pair rejected"
    (Invalid_argument "Antichain.of_nodes: nodes are not pairwise parallelizable")
    (fun () -> ignore (Antichain.of_nodes r [ at "a1"; at "a2" ]));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Antichain.of_nodes: duplicate node") (fun () ->
      ignore (Antichain.of_nodes r [ at "a1"; at "a1" ]))

let test_executable_and_pattern () =
  let g = Pg.fig2_3dft () in
  let r = Reachability.compute g in
  let at n = Dfg.find g n in
  let a1 = Antichain.of_nodes r (List.map at [ "b1"; "a4"; "b3"; "b6"; "a16"; "c10" ]) in
  Alcotest.(check bool) "size-6 not executable at C=5" false
    (Antichain.is_executable ~capacity:5 a1);
  let a3 = Antichain.of_nodes r (List.map at [ "b1"; "a4"; "b3"; "b6"; "a16" ]) in
  Alcotest.(check bool) "size-5 executable" true (Antichain.is_executable ~capacity:5 a3);
  Alcotest.(check string) "pattern of A3" "aabbb"
    (Pattern.to_string (Antichain.pattern g a3))

(* --- Table 4 --- *)

let test_table4 () =
  let g = Pg.fig4_small () in
  let ctx = Enumerate.make_ctx g in
  let cls = Classify.compute ~keep_antichains:true ~capacity:5 ctx in
  Alcotest.(check (list string)) "exactly four patterns"
    [ "a"; "b"; "aa"; "bb" ]
    (List.map Pattern.to_string
       (List.sort
          (fun p q ->
            match compare (Pattern.size p) (Pattern.size q) with
            | 0 -> Pattern.compare p q
            | c -> c)
          (Classify.patterns cls)));
  let antichains p =
    List.map (names g) (Classify.antichains cls (Pattern.of_string p))
  in
  Alcotest.(check (list (list string))) "p1={a}"
    [ [ "a1" ]; [ "a2" ]; [ "a3" ] ]
    (antichains "a");
  Alcotest.(check (list (list string))) "p2={b}" [ [ "b4" ]; [ "b5" ] ] (antichains "b");
  Alcotest.(check (list (list string))) "p3={aa}"
    [ [ "a1"; "a3" ]; [ "a2"; "a3" ] ]
    (antichains "aa");
  Alcotest.(check (list (list string))) "p4={bb}" [ [ "b4"; "b5" ] ] (antichains "bb");
  Alcotest.(check int) "8 antichains total" 8 (Classify.total_antichains cls)

(* --- Table 6 --- *)

let test_table6 () =
  let g = Pg.fig4_small () in
  let cls = Classify.compute ~capacity:5 (Enumerate.make_ctx g) in
  let freq p = Classify.node_frequency cls (Pattern.of_string p) in
  let row p =
    List.map (fun n -> (Classify.node_frequency cls (Pattern.of_string p)).(Dfg.find g n))
      [ "a1"; "a2"; "a3"; "b4"; "b5" ]
  in
  ignore freq;
  Alcotest.(check (list int)) "h(p1)" [ 1; 1; 1; 0; 0 ] (row "a");
  Alcotest.(check (list int)) "h(p2)" [ 0; 0; 0; 1; 1 ] (row "b");
  Alcotest.(check (list int)) "h(p3)" [ 1; 1; 2; 0; 0 ] (row "aa");
  Alcotest.(check (list int)) "h(p4)" [ 0; 0; 0; 1; 1 ] (row "bb");
  (* h(p, n) for an absent pattern is all zero. *)
  Alcotest.(check (list int)) "absent pattern" [ 0; 0; 0; 0; 0 ] (row "ab")

(* --- enumeration semantics --- *)

let brute_force g ~max_size ~span_limit =
  (* All subsets of size 1..max_size that are antichains within the span
     limit, counted.  Exponential; only for tiny graphs. *)
  let r = Reachability.compute g in
  let lv = Levels.compute g in
  let n = Dfg.node_count g in
  let count = ref 0 in
  let rec go i chosen size =
    if size > 0 then begin
      let ok =
        Reachability.is_antichain r chosen
        && match span_limit with None -> true | Some l -> Levels.span lv chosen <= l
      in
      if ok then incr count
    end;
    if size < max_size then
      for j = i to n - 1 do
        go (j + 1) (j :: chosen) (size + 1)
      done
  in
  (* enumerate all subsets: start with empty, add increasing ids *)
  let rec start i =
    if i < n then begin
      go (i + 1) [ i ] 1;
      start (i + 1)
    end
  in
  (* count singletons and their supersets via go *)
  count := 0;
  start 0;
  !count

let test_enumerate_args () =
  let ctx = Enumerate.make_ctx (Pg.fig4_small ()) in
  Alcotest.check_raises "max_size 0"
    (Invalid_argument "Enumerate.iter: max_size must be >= 1") (fun () ->
      Enumerate.iter ~max_size:0 ctx ~f:ignore);
  Alcotest.check_raises "negative span"
    (Invalid_argument "Enumerate.iter: negative span_limit") (fun () ->
      Enumerate.iter ~span_limit:(-1) ~max_size:2 ctx ~f:ignore)

let test_enumerate_lex_order_and_validity () =
  let g = Pg.fig2_3dft () in
  let ctx = Enumerate.make_ctx g in
  let r = Enumerate.ctx_reachability ctx in
  let prev = ref [] in
  let all_valid = ref true in
  let in_order = ref true in
  Enumerate.iter ~max_size:3 ctx ~f:(fun a ->
      let nodes = Antichain.nodes a in
      if not (Reachability.is_antichain r nodes) then all_valid := false;
      if compare !prev nodes >= 0 && !prev <> [] && List.length !prev = List.length nodes
      then
        (* lexicographic only within the walk of one root; global order is
           by first element then extension order, which compare captures
           when lengths align — a weak but useful sanity check *)
        ignore nodes;
      prev := nodes);
  Alcotest.(check bool) "all emitted sets are antichains" true !all_valid;
  Alcotest.(check bool) "ordering sanity" true !in_order

let test_theorem1_on_schedule () =
  (* Schedule an antichain into one cycle (greedily around it) and confirm
     the resulting length respects the Theorem 1 bound. *)
  let g = Pg.fig2_3dft () in
  let ctx = Enumerate.make_ctx g in
  let lv = Enumerate.ctx_levels ctx in
  let r = Enumerate.ctx_reachability ctx in
  let at n = Dfg.find g n in
  (* {a24, b3}: span 1, bound 6. *)
  let a = Antichain.of_nodes r [ at "a24"; at "b3" ] in
  Alcotest.(check int) "bound" 6 (Antichain.span_bound lv a);
  (* Construct the best schedule that co-schedules them: a24 cannot run
     before cycle 1 (its predecessor a4 needs cycle 0), so b3 is dragged to
     cycle 1 and its follower chain a8→c14→a20→a23 shifts behind it.  The
     earliest-start forward pass under that one forced constraint is a valid
     schedule and must hit exactly the Theorem 1 bound. *)
  let n = Dfg.node_count g in
  let forced = max (Levels.asap lv (at "a24")) (Levels.asap lv (at "b3")) in
  let cycle_of = Array.make n 0 in
  List.iter
    (fun i ->
      let floor_c = if i = at "a24" || i = at "b3" then forced else 0 in
      let by_preds =
        List.fold_left (fun acc p -> max acc (cycle_of.(p) + 1)) 0 (Dfg.preds g i)
      in
      cycle_of.(i) <- max floor_c by_preds)
    (Mps_dfg.Topo.order g);
  let s = Schedule.of_cycles g cycle_of in
  (match Schedule.validate ~capacity:max_int g s with
  | [] -> ()
  | v :: _ -> Alcotest.failf "violation: %a" (Schedule.pp_violation g) v);
  Alcotest.(check int) "co-scheduled" (Schedule.cycle_of s (at "a24"))
    (Schedule.cycle_of s (at "b3"));
  Alcotest.(check int) "length equals the theorem 1 bound" 6 (Schedule.cycles s)

let enum_props =
  [
    qtest "enumeration count = brute force (no span limit)" small_dag_gen (fun g ->
        let ctx = Enumerate.make_ctx g in
        Enumerate.count ~max_size:3 ctx = brute_force g ~max_size:3 ~span_limit:None);
    qtest "enumeration count = brute force (span 1)" small_dag_gen (fun g ->
        let ctx = Enumerate.make_ctx g in
        Enumerate.count ~span_limit:1 ~max_size:3 ctx
        = brute_force g ~max_size:3 ~span_limit:(Some 1));
    qtest "count matrix rows are monotone in span" small_dag_gen (fun g ->
        let ctx = Enumerate.make_ctx g in
        let m = Enumerate.count_matrix ~max_size:4 ~max_span:3 ctx in
        let ok = ref true in
        for l = 1 to 3 do
          for s = 1 to 4 do
            if m.(l).(s) < m.(l - 1).(s) then ok := false
          done
        done;
        !ok);
    qtest "classification partitions the enumeration" small_dag_gen (fun g ->
        let ctx = Enumerate.make_ctx g in
        let cls = Classify.compute ~capacity:4 ctx in
        let by_pattern =
          Classify.fold (fun _ ~count ~freq:_ acc -> acc + count) cls 0
        in
        by_pattern = Enumerate.count ~max_size:4 ctx
        && Classify.total_antichains cls = by_pattern);
    qtest "node frequencies sum to antichain memberships" small_dag_gen (fun g ->
        let ctx = Enumerate.make_ctx g in
        let cls = Classify.compute ~capacity:3 ctx in
        (* Sum over patterns and nodes of h = sum of antichain sizes. *)
        let freq_total =
          Classify.fold
            (fun _ ~count:_ ~freq acc -> acc + Array.fold_left ( + ) 0 freq)
            cls 0
        in
        let size_total = ref 0 in
        Enumerate.iter ~max_size:3 ctx ~f:(fun a ->
            size_total := !size_total + Antichain.size a);
        freq_total = !size_total);
  ]

let () =
  Alcotest.run "antichain"
    [
      ( "antichain",
        [
          Alcotest.test_case "of_nodes validation" `Quick test_of_nodes_checks;
          Alcotest.test_case "executable and pattern" `Quick test_executable_and_pattern;
        ] );
      ( "paper-tables",
        [
          Alcotest.test_case "table 4 exact" `Quick test_table4;
          Alcotest.test_case "table 6 exact" `Quick test_table6;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "argument validation" `Quick test_enumerate_args;
          Alcotest.test_case "validity of emitted sets" `Quick
            test_enumerate_lex_order_and_validity;
          Alcotest.test_case "theorem 1 on real schedules" `Quick
            test_theorem1_on_schedule;
        ]
        @ enum_props );
    ]
