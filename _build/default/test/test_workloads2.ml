(* Second workload wave (image convolution, bitonic sorting, CORDIC) and
   the extended selectors (beam search, priority variants). *)

module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Enumerate = Mps_antichain.Enumerate
module Classify = Mps_antichain.Classify
module Select = Mps_select.Select
module Beam = Mps_select.Beam
module Pv = Mps_select.Priority_variants
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule
module Program = Mps_frontend.Program
module Image = Mps_workloads.Image
module Sorting = Mps_workloads.Sorting
module Cordic = Mps_workloads.Cordic
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)

(* --- convolution --- *)

let window_env window name =
  match String.split_on_char '_' name with
  | [ "p"; r; c ] -> window.(int_of_string r).(int_of_string c)
  | _ -> raise Not_found

let test_convolution_values () =
  let kernel = [| [| 1.; 2.; 1. |]; [| 0.; 3.; 0. |]; [| -1.; -2.; -1. |] |] in
  let prog = Image.convolve3x3 ~kernel ~rows:2 ~cols:3 in
  let window =
    Array.init 4 (fun r -> Array.init 5 (fun c -> float_of_int ((r * 5) + c)))
  in
  let want = Image.convolve3x3_reference ~kernel window in
  let got = Program.eval ~env:(window_env window) prog in
  List.iter
    (fun (name, v) ->
      match String.split_on_char '_' name with
      | [ "o"; r; c ] ->
          Alcotest.(check bool) name true
            (close v want.(int_of_string r).(int_of_string c))
      | _ -> Alcotest.failf "unexpected output %s" name)
    got;
  Alcotest.(check int) "6 outputs" 6 (List.length got)

let test_sobel_folds_zeros () =
  (* The Sobel kernel's three zeros and ±1 weights fold away: per output,
     6 non-zero taps, of which 4 have weight ±1 (no multiply) — so each
     output costs 2 multiplies and 5 add/subs. *)
  let prog = Image.sobel_x ~rows:1 ~cols:1 in
  let g = Program.dfg prog in
  let count ch =
    List.length
      (List.filter (fun i -> Color.to_char (Dfg.color g i) = ch) (Dfg.nodes g))
  in
  Alcotest.(check int) "2 multiplies" 2 (count 'c');
  Alcotest.(check int) "5 adds+subs" 5 (count 'a' + count 'b')

let conv_prop =
  qtest "convolution = reference on random windows"
    QCheck2.Gen.(
      array_size (pure 3)
        (array_size (pure 3) (float_range (-2.) 2.)))
    (fun kernel ->
      let prog = Image.convolve3x3 ~kernel ~rows:2 ~cols:2 in
      let window =
        Array.init 4 (fun r -> Array.init 4 (fun c -> sin (float_of_int ((r * 7) + c))))
      in
      let want = Image.convolve3x3_reference ~kernel window in
      let got = Program.eval ~env:(window_env window) prog in
      List.for_all
        (fun (name, v) ->
          match String.split_on_char '_' name with
          | [ "o"; r; c ] -> close v want.(int_of_string r).(int_of_string c)
          | _ -> false)
        got)

(* --- bitonic --- *)

let test_bitonic_structure () =
  let prog = Sorting.bitonic ~n:8 in
  let g = Program.dfg prog in
  Alcotest.(check int) "comparator count formula" 24 (Sorting.comparator_count ~n:8);
  Alcotest.(check int) "two nodes per comparator" 48 (Dfg.node_count g);
  let colors = List.map Color.to_char (Dfg.colors g) in
  Alcotest.(check (list char)) "min and max colors" [ 'h'; 'i' ] colors;
  Alcotest.check_raises "power of two"
    (Invalid_argument "Sorting.bitonic: n must be a power of two >= 2") (fun () ->
      ignore (Sorting.bitonic ~n:6))

let bitonic_sorts =
  qtest "bitonic network sorts"
    QCheck2.Gen.(array_size (pure 8) (float_range (-100.) 100.))
    (fun xs ->
      let prog = Sorting.bitonic ~n:8 in
      let env name = xs.(int_of_string (String.sub name 1 (String.length name - 1))) in
      let got =
        Program.eval ~env prog
        |> List.sort (fun (a, _) (b, _) ->
               compare
                 (int_of_string (String.sub a 1 (String.length a - 1)))
                 (int_of_string (String.sub b 1 (String.length b - 1))))
        |> List.map snd
      in
      let want = List.sort compare (Array.to_list xs) in
      List.equal Float.equal got want)

let test_bitonic_maps_to_tile () =
  let prog = Sorting.bitonic ~n:8 in
  match Core.Pipeline.map_program prog with
  | Error m -> Alcotest.failf "mapping failed: %s" m
  | Ok mapped -> (
      let env name = float_of_int (7 - int_of_string (String.sub name 1 1)) in
      match Core.Pipeline.verify mapped ~env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "simulation: %s" m)

(* --- cordic --- *)

let test_cordic_matches_reference () =
  let directions = [ true; false; true; true; false; true ] in
  let prog = Cordic.rotate ~iterations:6 ~directions in
  let x0 = 16384 and y0 = -3000 in
  let env = function
    | "x" -> float_of_int x0
    | "y" -> float_of_int y0
    | _ -> raise Not_found
  in
  let out = Program.eval ~env prog in
  let xr, yr = Cordic.reference ~iterations:6 ~directions ~x:x0 ~y:y0 in
  Alcotest.(check (float 0.)) "x" (float_of_int xr) (List.assoc "xr" out);
  Alcotest.(check (float 0.)) "y" (float_of_int yr) (List.assoc "yr" out)

let test_cordic_serial () =
  let directions = List.init 8 (fun i -> i mod 2 = 0) in
  let prog = Cordic.rotate ~iterations:8 ~directions in
  let g = Program.dfg prog in
  (* Each iteration chains on the previous: depth ~ 2 per iteration. *)
  Alcotest.(check bool) "deep and narrow" true
    (Levels.lower_bound_cycles (Levels.compute g) >= 8);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Cordic.rotate: directions length mismatch") (fun () ->
      ignore (Cordic.rotate ~iterations:3 ~directions:[ true ]))

let cordic_prop =
  qtest "cordic = integer reference"
    QCheck2.Gen.(
      triple (int_range 2 10)
        (int_range (-20000) 20000)
        (int_range (-20000) 20000))
    (fun (iterations, x, y) ->
      let directions = List.init iterations (fun i -> (i * 7) mod 3 <> 0) in
      let prog = Cordic.rotate ~iterations ~directions in
      let env = function
        | "x" -> float_of_int x
        | "y" -> float_of_int y
        | _ -> raise Not_found
      in
      let out = Program.eval ~env prog in
      let xr, yr = Cordic.reference ~iterations ~directions ~x ~y in
      Float.equal (List.assoc "xr" out) (float_of_int xr)
      && Float.equal (List.assoc "yr" out) (float_of_int yr))

(* --- beam search --- *)

let classify_of g = Classify.compute ~span_limit:1 ~capacity:5 (Enumerate.make_ctx g)

let test_beam_matches_or_beats_heuristic () =
  let g = Pg.fig2_3dft () in
  let cls = classify_of g in
  List.iter
    (fun pdef ->
      let heuristic = Select.select ~pdef cls in
      let hc = Schedule.cycles (Mp.schedule ~patterns:heuristic g).Mp.schedule in
      let beam = Beam.search ~width:6 ~pdef cls in
      Alcotest.(check bool)
        (Printf.sprintf "pdef=%d: beam %d <= heuristic %d" pdef beam.Beam.cycles hc)
        true
        (beam.Beam.cycles <= hc);
      Alcotest.(check bool) "covers colors" true
        (Select.covers_all_colors g beam.Beam.patterns);
      Alcotest.(check int) "reported cost is real" beam.Beam.cycles
        (Schedule.cycles (Mp.schedule ~patterns:beam.Beam.patterns g).Mp.schedule))
    [ 1; 2; 3; 4 ]

let test_beam_width1_equals_heuristic_sets () =
  (* Width 1 follows the same greedy trajectory as Select. *)
  let g = Pg.fig2_3dft () in
  let cls = classify_of g in
  let heuristic = Select.select ~pdef:3 cls in
  let beam = Beam.search ~width:1 ~pdef:3 cls in
  Alcotest.(check (list string)) "same pattern multiset"
    (List.sort compare (List.map Pattern.to_string heuristic))
    (List.sort compare (List.map Pattern.to_string beam.Beam.patterns))

let test_beam_args () =
  let cls = classify_of (Pg.fig4_small ()) in
  Alcotest.check_raises "width 0" (Invalid_argument "Beam.search: width must be >= 1")
    (fun () -> ignore (Beam.search ~width:0 ~pdef:2 cls))

(* --- priority variants --- *)

let test_variants_all_cover () =
  List.iter
    (fun (name, g) ->
      let cls = classify_of g in
      List.iter
        (fun v ->
          let pats = Pv.select v ~pdef:4 cls in
          Alcotest.(check bool)
            (Printf.sprintf "%s covers on %s" v.Pv.name name)
            true
            (Select.covers_all_colors g pats);
          (* schedulable *)
          let c = Schedule.cycles (Mp.schedule ~patterns:pats g).Mp.schedule in
          Alcotest.(check bool) "positive length" true (c > 0))
        Pv.all)
    [ ("3dft", Pg.fig2_3dft ()); ("fig4", Pg.fig4_small ()) ]

let test_paper_variant_agrees_with_select () =
  let g = Pg.fig2_3dft () in
  let cls = classify_of g in
  List.iter
    (fun pdef ->
      let a = Select.select ~pdef cls in
      let b = Pv.select Pv.paper ~pdef cls in
      Alcotest.(check (list string))
        (Printf.sprintf "pdef=%d" pdef)
        (List.map Pattern.to_string a)
        (List.map Pattern.to_string b))
    [ 1; 2; 3; 4; 5 ]

(* --- portfolio --- *)

module Portfolio = Mps_select.Portfolio

let test_portfolio_beats_everyone () =
  List.iter
    (fun (name, g) ->
      let cls = classify_of g in
      let rng = Mps_util.Rng.create ~seed:5 in
      let o = Portfolio.run ~annealing:(rng, 300) ~pdef:4 cls in
      (* The winner is real and no strategy in the list beats it. *)
      Alcotest.(check int)
        (Printf.sprintf "%s: winner cost is real" name)
        o.Portfolio.best.Portfolio.cycles
        (Schedule.cycles
           (Mp.schedule ~patterns:o.Portfolio.best.Portfolio.patterns g).Mp.schedule);
      List.iter
        (fun e ->
          Alcotest.(check bool) "ranked" true
            (o.Portfolio.best.Portfolio.cycles <= e.Portfolio.cycles))
        o.Portfolio.all;
      (* eq8 is always among the entries. *)
      Alcotest.(check bool) "eq8 present" true
        (List.exists (fun e -> e.Portfolio.strategy = "eq8") o.Portfolio.all))
    [ ("3dft", Pg.fig2_3dft ()); ("fig4", Pg.fig4_small ()) ]

let test_portfolio_never_worse_than_eq8 () =
  let g = Pg.fig2_3dft () in
  let cls = classify_of g in
  let o = Portfolio.run ~pdef:4 cls in
  let eq8 = List.find (fun e -> e.Portfolio.strategy = "eq8") o.Portfolio.all in
  Alcotest.(check bool) "portfolio <= eq8" true
    (o.Portfolio.best.Portfolio.cycles <= eq8.Portfolio.cycles)

let () =
  Alcotest.run "workloads2"
    [
      ( "convolution",
        [
          Alcotest.test_case "values" `Quick test_convolution_values;
          Alcotest.test_case "sobel folds zeros" `Quick test_sobel_folds_zeros;
          conv_prop;
        ] );
      ( "bitonic",
        [
          Alcotest.test_case "structure" `Quick test_bitonic_structure;
          bitonic_sorts;
          Alcotest.test_case "maps to tile" `Quick test_bitonic_maps_to_tile;
        ] );
      ( "cordic",
        [
          Alcotest.test_case "reference match" `Quick test_cordic_matches_reference;
          Alcotest.test_case "serial structure" `Quick test_cordic_serial;
          cordic_prop;
        ] );
      ( "beam",
        [
          Alcotest.test_case "matches or beats heuristic" `Quick
            test_beam_matches_or_beats_heuristic;
          Alcotest.test_case "width 1 = greedy" `Quick
            test_beam_width1_equals_heuristic_sets;
          Alcotest.test_case "argument checks" `Quick test_beam_args;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "beats every member" `Quick test_portfolio_beats_everyone;
          Alcotest.test_case "never worse than eq8" `Quick
            test_portfolio_never_worse_than_eq8;
        ] );
      ( "priority-variants",
        [
          Alcotest.test_case "all variants cover" `Quick test_variants_all_cover;
          Alcotest.test_case "paper variant = Select" `Quick
            test_paper_variant_agrees_with_select;
        ] );
    ]
