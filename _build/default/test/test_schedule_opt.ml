(* Schedule post-passes: validity-, length- and pattern-preservation, plus
   measured register-pressure effects through the allocator. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Schedule_opt = Mps_scheduler.Schedule_opt
module Mp = Mps_scheduler.Multi_pattern
module Program = Mps_frontend.Program
module Allocation = Mps_montium.Allocation
module Random_dag = Mps_workloads.Random_dag
module Dft = Mps_workloads.Dft
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pats = [ Pattern.of_string "aabcc"; Pattern.of_string "abbcc"; Pattern.of_string "aaacc" ]

let schedule_of g = (Mp.schedule ~patterns:pats g).Mp.schedule

let preserved ?(allow_shorter = false) g before after =
  (* Hoisting can empty the final cycles and legitimately shorten the
     schedule; sinking never can. *)
  (if allow_shorter then Schedule.cycles after <= Schedule.cycles before
   else Schedule.cycles before = Schedule.cycles after)
  && Schedule.validate ~allowed:pats ~capacity:5 g after = []
  && List.init (Schedule.cycles after) (fun c ->
         Pattern.equal (Schedule.pattern_at before c) (Schedule.pattern_at after c))
     |> List.for_all Fun.id

let test_sink_late_3dft () =
  let g = Pg.fig2_3dft () in
  let s = schedule_of g in
  let late = Schedule_opt.sink_late g s in
  Alcotest.(check bool) "preserved" true (preserved g s late);
  (* Sinks end as late as a free slot allows — at least one moved. *)
  let moved =
    List.exists (fun i -> Schedule.cycle_of late i <> Schedule.cycle_of s i) (Dfg.nodes g)
  in
  Alcotest.(check bool) "something moved" true moved;
  Dfg.iter_nodes
    (fun i ->
      Alcotest.(check bool) "never earlier" true
        (Schedule.cycle_of late i >= Schedule.cycle_of s i))
    g

let test_hoist_early_inverts_direction () =
  let g = Pg.fig2_3dft () in
  let s = schedule_of g in
  let early = Schedule_opt.hoist_early g s in
  Alcotest.(check bool) "preserved" true (preserved ~allow_shorter:true g s early);
  Dfg.iter_nodes
    (fun i ->
      Alcotest.(check bool) "never later" true
        (Schedule.cycle_of early i <= Schedule.cycle_of s i))
    g

let test_idempotent () =
  let g = Pg.fig2_3dft () in
  let s = Schedule_opt.sink_late g (schedule_of g) in
  let s2 = Schedule_opt.sink_late g s in
  Dfg.iter_nodes
    (fun i ->
      Alcotest.(check int) "fixed point" (Schedule.cycle_of s i) (Schedule.cycle_of s2 i))
    g

let test_pressure_measured () =
  (* On the winograd3 mapping, report (and sanity-bound) the pressure
     delta; the claim is measured, not theoretical. *)
  let prog = Dft.winograd3 () in
  let g = Program.dfg prog in
  let s = schedule_of g in
  let late = Schedule_opt.sink_late g s in
  let pressure sched =
    match Allocation.allocate prog sched with
    | Ok a -> (Allocation.stats a).Allocation.peak_registers
    | Error m -> Alcotest.failf "allocation: %s" m
  in
  let before = pressure s and after = pressure late in
  Alcotest.(check bool)
    (Printf.sprintf "pressure stays sane (%d -> %d)" before after)
    true
    (after <= before + 2)

let dag_gen =
  QCheck2.Gen.(map (fun seed -> Random_dag.generate ~seed ()) (0 -- 4_000))

let props =
  [
    qtest "sink_late preserves everything" dag_gen (fun g ->
        match Mp.schedule ~patterns:pats g with
        | r -> preserved g r.Mp.schedule (Schedule_opt.sink_late g r.Mp.schedule)
        | exception Mp.Unschedulable _ -> true);
    qtest "hoist_early preserves everything" dag_gen (fun g ->
        match Mp.schedule ~patterns:pats g with
        | r ->
            preserved ~allow_shorter:true g r.Mp.schedule
              (Schedule_opt.hoist_early g r.Mp.schedule)
        | exception Mp.Unschedulable _ -> true);
    qtest "hoist after sink returns within the envelope" dag_gen (fun g ->
        match Mp.schedule ~patterns:pats g with
        | exception Mp.Unschedulable _ -> true
        | r ->
            let s = r.Mp.schedule in
            let back = Schedule_opt.hoist_early g (Schedule_opt.sink_late g s) in
            preserved ~allow_shorter:true g s back);
  ]

let () =
  Alcotest.run "schedule_opt"
    [
      ( "post-passes",
        [
          Alcotest.test_case "sink late on 3dft" `Quick test_sink_late_3dft;
          Alcotest.test_case "hoist early" `Quick test_hoist_early_inverts_direction;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "pressure measured" `Quick test_pressure_measured;
        ]
        @ props );
    ]
