(* Mutation tests: the validators must reject systematically corrupted
   artifacts.  A validator that accepts everything passes all happy-path
   tests — these tests break things on purpose and demand a complaint. *)

module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule
module Mp = Mps_scheduler.Multi_pattern
module Program = Mps_frontend.Program
module Tile = Mps_montium.Tile
module Allocation = Mps_montium.Allocation
module Simulator = Mps_montium.Simulator
module Dft = Mps_workloads.Dft
module Pg = Mps_workloads.Paper_graphs

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- schedule mutations --- *)

let valid_schedule () =
  let g = Pg.fig2_3dft () in
  let pats = [ Pattern.of_string "aabcc"; Pattern.of_string "aaacc" ] in
  let s = (Mp.schedule ~patterns:pats g).Mp.schedule in
  (g, pats, s)

let cycles_array g s = Array.init (Dfg.node_count g) (Schedule.cycle_of s)

let schedule_mutation_prop =
  qtest "moving one node onto/before a predecessor is always caught"
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let g, _, s = valid_schedule () in
      let rng = Mps_util.Rng.create ~seed in
      (* Pick a non-source node and move it to a cycle <= one of its
         predecessors': the Dependency check must fire. *)
      let non_sources =
        List.filter (fun i -> Dfg.preds g i <> []) (Dfg.nodes g) |> Array.of_list
      in
      let victim = Mps_util.Rng.choice rng non_sources in
      let pred = Mps_util.Rng.choice_list rng (Dfg.preds g victim) in
      let arr = cycles_array g s in
      arr.(victim) <- Schedule.cycle_of s pred;
      let mutated = Schedule.of_cycles g arr in
      List.exists
        (function Schedule.Dependency _ -> true | _ -> false)
        (Schedule.validate ~capacity:5 g mutated))

let capacity_mutation_prop =
  qtest "merging two cycles beyond capacity is always caught"
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let g, _, s = valid_schedule () in
      let rng = Mps_util.Rng.create ~seed in
      (* Collapse a random later cycle onto its predecessor cycle; with 5
         ALUs and full cycles this overflows capacity (or breaks deps). *)
      let c = 1 + Mps_util.Rng.int rng (Schedule.cycles s - 1) in
      let arr = cycles_array g s in
      Array.iteri (fun i cy -> if cy = c then arr.(i) <- c - 1) arr;
      let mutated = Schedule.of_cycles g arr in
      Schedule.validate ~capacity:5 g mutated <> [])

let allowed_mutation_prop =
  qtest "a cycle declaring a foreign pattern is always caught"
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let g, pats, s = valid_schedule () in
      let rng = Mps_util.Rng.create ~seed in
      let c = Mps_util.Rng.int rng (Schedule.cycles s) in
      let patterns =
        Array.init (Schedule.cycles s) (fun i ->
            if i = c then Pattern.of_string "bbbbb" else Schedule.pattern_at s i)
      in
      let arr = cycles_array g s in
      let mutated = Schedule.of_cycles ~patterns g arr in
      (* Either the cycle's load no longer fits ('bbbbb' has no a/c slots),
         or the declared pattern is not allowed. *)
      Schedule.validate ~allowed:pats ~capacity:5 g mutated <> [])

(* --- allocation mutations --- *)

let mapped () =
  let prog = Dft.winograd3 () in
  let g = Program.dfg prog in
  let pats = [ Pattern.of_string "aabcc"; Pattern.of_string "aabbb" ] in
  let s = (Mp.schedule ~patterns:pats g).Mp.schedule in
  match Allocation.allocate prog s with
  | Ok a -> (prog, s, a)
  | Error m -> failwith m

(* Rebuilding a mutated allocation requires constructing the abstract type;
   we go through the public surface instead: simulate with a schedule that
   disagrees with the allocation and check the simulator's own validation
   trips.  Each mutation shifts one node by one cycle. *)
let simulator_mutation_prop =
  qtest "simulator rejects schedule/allocation disagreement" ~count:40
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let prog, s, alloc = mapped () in
      let g = Program.dfg prog in
      let rng = Mps_util.Rng.create ~seed in
      let victim = Mps_util.Rng.int rng (Dfg.node_count g) in
      let arr = cycles_array g s in
      arr.(victim) <- arr.(victim) + 1;
      let mutated = Schedule.of_cycles g arr in
      let env = Dft.input_env [| (1.0, 2.0); (0.5, -1.0); (0.25, 0.75) |] in
      match Simulator.run prog mutated alloc ~env with
      | exception Simulator.Machine_error _ -> true
      | _, _ ->
          (* The shift may happen to be consistent (e.g. a sink moving into
             an empty later cycle while its allocation routes stay valid);
             then outputs must still match the reference. *)
          Simulator.check_against_reference prog mutated alloc ~env = Ok ())

let () =
  Alcotest.run "mutation"
    [
      ( "schedule-validators",
        [ schedule_mutation_prop; capacity_mutation_prop; allowed_mutation_prop ] );
      ("simulator", [ simulator_mutation_prop ]);
    ]
