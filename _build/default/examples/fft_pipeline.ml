(* The paper's own workload, end to end with hardware mapping:

     dune exec examples/fft_pipeline.exe

   Take the 3-point DFT (the exact Fig. 2 graph for scheduling, and the
   Winograd 3-point program for execution), select patterns, schedule,
   allocate onto the Montium tile, simulate, and check the numbers against
   an O(N^2) reference DFT. *)

module C = Core

let () =
  (* --- the scheduling story on the paper's exact graph --- *)
  let g = C.Paper_graphs.fig2_3dft () in
  Printf.printf "Fig. 2 graph: %d ops (%s)\n" (C.Dfg.node_count g)
    (String.concat ", "
       (List.map
          (fun (c, k) -> Printf.sprintf "%d %c" k (C.Color.to_char c))
          (C.Dfg.color_counts g)));
  let t = C.Pipeline.run g in
  Format.printf "%a@.@." C.Pipeline.pp_summary t;

  (* --- the executable story on the Winograd 3-point program --- *)
  let prog = C.Dft.winograd3 () in
  (match C.Pipeline.map_program prog with
  | Error m -> failwith ("mapping failed: " ^ m)
  | Ok mapped ->
      let p = mapped.C.Pipeline.pipeline in
      Printf.printf "Winograd 3-DFT mapped: %d cycles, %d configs, energy %.1f units\n"
        p.C.Pipeline.cycles p.C.Pipeline.config.C.Config_space.table_size
        mapped.C.Pipeline.energy.C.Energy.total;
      let stats = C.Allocation.stats mapped.C.Pipeline.allocation in
      Printf.printf "datapath: %d bus transfers, %d spills, peak %d registers\n"
        stats.C.Allocation.bus_transfers stats.C.Allocation.spills
        stats.C.Allocation.peak_registers;

      (* simulate on the tile and compare against the textbook DFT *)
      let xs = [| (1.0, 0.5); (-2.0, 0.25); (0.75, -1.0) |] in
      let env = C.Dft.input_env xs in
      (match C.Pipeline.verify mapped ~env with
      | Ok () -> print_endline "simulator output == reference evaluator"
      | Error m -> failwith ("simulation mismatch: " ^ m));
      let out, _ =
        C.Simulator.run prog p.C.Pipeline.schedule mapped.C.Pipeline.allocation ~env
      in
      let got = C.Dft.output_spectrum ~n:3 out in
      let want = C.Dft.reference ~n:3 xs in
      Array.iteri
        (fun k (re, im) ->
          let wr, wi = want.(k) in
          Printf.printf "X%d = %8.4f %+8.4fi   (reference %8.4f %+8.4fi)\n" k re im wr wi)
        got)
