(* One configuration table, many kernels:

     dune exec examples/multi_kernel.exe

   A realistic application runs a whole suite of kernels on the tile, all
   sharing the 32-entry pattern table.  Compare three ways of choosing the
   shared patterns: jointly (Shared.select), borrowing the set tuned for
   one kernel, and random. *)

module C = Core

let () =
  let kernels =
    [
      C.Shared.kernel ~span_limit:1 ~label:"3dft" (C.Paper_graphs.fig2_3dft ());
      C.Shared.kernel ~span_limit:1 ~label:"w5dft" (C.Program.dfg (C.Dft.winograd5 ()));
      C.Shared.kernel ~span_limit:1 ~label:"fir8x4"
        (C.Program.dfg
           (C.Kernels.fir ~taps:(List.init 8 (fun i -> 0.5 /. float_of_int (i + 1))) ~block:4));
      C.Shared.kernel ~span_limit:1 ~label:"dct8" (C.Program.dfg (C.Kernels.dct8 ()));
    ]
  in
  let pdef = 4 in
  let total patterns =
    List.fold_left
      (fun acc k ->
        match C.Multi_pattern.schedule ~patterns k.C.Shared.graph with
        | r -> acc + C.Schedule.cycles r.C.Multi_pattern.schedule
        | exception C.Multi_pattern.Unschedulable _ -> acc + 999)
      0 kernels
  in
  let shared = C.Shared.select ~pdef kernels in
  Printf.printf "jointly selected (%s):\n"
    (String.concat " " (List.map C.Pattern.to_string shared.C.Shared.patterns));
  List.iter
    (fun (label, cycles) -> Printf.printf "  %-8s %3d cycles\n" label cycles)
    shared.C.Shared.per_kernel_cycles;
  Printf.printf "  total    %3d cycles\n\n" shared.C.Shared.total_cycles;

  List.iter
    (fun donor ->
      let borrowed = C.Select.select ~pdef donor.C.Shared.classify in
      Printf.printf "borrowed from %-8s (%s): total %3d cycles\n" donor.C.Shared.label
        (String.concat " " (List.map C.Pattern.to_string borrowed))
        (total borrowed))
    kernels;

  let rng = C.Rng.create ~seed:5 in
  let union_colors =
    List.concat_map (fun k -> C.Dfg.colors k.C.Shared.graph) kernels
    |> List.sort_uniq C.Color.compare
  in
  let random_totals =
    List.init 10 (fun _ ->
        float_of_int
          (total (C.Random_select.select rng ~colors:union_colors ~capacity:5 ~pdef)))
  in
  Printf.printf "\nrandom shared sets: total %.1f +/- %.1f cycles (10 draws)\n"
    (C.Mstats.mean (Array.of_list random_totals))
    (C.Mstats.stddev (Array.of_list random_totals))
