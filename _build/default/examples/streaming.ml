(* Streaming execution: software-pipelined loops on the tile.

     dune exec examples/streaming.exe

   Takes the library's loop kernels (FIR step, MAC accumulator, IIR biquad,
   moving average), modulo-schedules each under a selected pattern set, and
   prints the initiation interval, the recurrence/resource bounds, and the
   prologue/kernel/epilogue program of the most interesting one. *)

module C = Core

let () =
  let patterns = List.map C.Pattern.of_string [ "aabcc"; "abbcc"; "aaacc" ] in
  Printf.printf "allowed patterns: %s\n\n"
    (String.concat " " (List.map C.Pattern.to_string patterns));
  let t =
    C.Ascii_table.create
      ~header:
        [ "kernel"; "ops"; "RecMII"; "ResMII"; "II"; "latency"; "1000 iters"; "vs single-shot" ]
      ()
  in
  List.iter
    (fun k ->
      let g = C.Loop_graph.body k.C.Loops.loop in
      let single =
        C.Schedule.cycles
          (C.Multi_pattern.schedule ~patterns g).C.Multi_pattern.schedule
      in
      match C.Modulo.schedule ~patterns k.C.Loops.loop with
      | m ->
          C.Ascii_table.add_row t
            [
              k.C.Loops.label;
              string_of_int (C.Dfg.node_count g);
              string_of_int (C.Loop_graph.rec_mii k.C.Loops.loop);
              string_of_int (C.Loop_graph.res_mii k.C.Loops.loop ~patterns);
              string_of_int m.C.Modulo.ii;
              string_of_int m.C.Modulo.makespan;
              string_of_int (C.Pipeline_code.total_cycles m ~iterations:1000);
              Printf.sprintf "%.2fx"
                (float_of_int (1000 * single)
                /. float_of_int (C.Pipeline_code.total_cycles m ~iterations:1000));
            ]
      | exception C.Modulo.No_schedule _ ->
          C.Ascii_table.add_row t
            [ k.C.Loops.label; string_of_int (C.Dfg.node_count g); "-"; "-"; "none"; "-"; "-"; "-" ])
    (C.Loops.all ());
  C.Ascii_table.print t;

  (* The IIR biquad in detail: a real recurrence limits the pipeline. *)
  let iir = C.Loops.iir_stream () in
  let m = C.Modulo.schedule ~patterns iir.C.Loops.loop in
  let p = C.Pipeline_code.expand iir.C.Loops.loop m in
  Printf.printf "\n%s (%s):\n" iir.C.Loops.label iir.C.Loops.description;
  Format.printf "%a@." (C.Pipeline_code.pp (C.Loop_graph.body iir.C.Loops.loop)) p
