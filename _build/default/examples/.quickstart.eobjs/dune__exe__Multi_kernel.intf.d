examples/multi_kernel.mli:
