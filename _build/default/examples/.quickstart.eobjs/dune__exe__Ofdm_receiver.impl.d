examples/ofdm_receiver.ml: Array Core Float Format List Printf String
