examples/montium_mapping.ml: Array Core Format List Printf String
