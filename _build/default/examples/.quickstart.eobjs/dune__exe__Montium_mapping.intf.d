examples/montium_mapping.mli:
