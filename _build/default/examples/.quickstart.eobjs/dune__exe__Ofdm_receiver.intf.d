examples/ofdm_receiver.mli:
