examples/streaming.ml: Core Format List Printf String
