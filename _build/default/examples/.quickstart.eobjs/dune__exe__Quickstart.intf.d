examples/quickstart.mli:
