examples/custom_kernel.ml: Array Core Format List Printf String
