examples/multi_kernel.ml: Array Core List Printf String
