examples/design_space.ml: Core List
