examples/streaming.mli:
