examples/fft_pipeline.mli:
