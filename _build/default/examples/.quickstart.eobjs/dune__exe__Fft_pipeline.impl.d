examples/fft_pipeline.ml: Array Core Format List Printf String
