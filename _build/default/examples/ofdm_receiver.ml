(* The flagship walk-through: a 4-carrier OFDM receiver front end, from
   signal math to loadable configuration.

     dune exec examples/ofdm_receiver.exe

   FFT -> channel equalization -> QPSK slicing as one program; structural
   analysis, pattern selection, scheduling, allocation, cycle-accurate
   simulation against the reference, fixed-point precision, and the final
   configuration listing. *)

module C = Core

let () =
  let n = 4 in
  let prog = C.Ofdm.receiver ~n in
  let g = C.Program.dfg prog in

  (* 1. What are we mapping? *)
  Printf.printf "OFDM receiver, %d carriers: %d ops (%s)\n" n (C.Dfg.node_count g)
    (String.concat " "
       (List.map
          (fun (c, k) -> Printf.sprintf "%s=%d" (C.Color.to_string c) k)
          (C.Dfg.color_counts g)));
  let posets = C.Posets.analyze g in
  Printf.printf "width %d, critical path %d, capacity-5 bound %d\n\n"
    (C.Posets.width posets)
    (C.Levels.lower_bound_cycles (C.Levels.compute g))
    (C.Posets.lower_bound_cycles posets ~capacity:5);

  (* 2. Select patterns and map. *)
  let options = { C.Pipeline.default_options with C.Pipeline.pdef = 6 } in
  match C.Pipeline.map_program ~options prog with
  | Error m -> failwith m
  | Ok mapped ->
      let p = mapped.C.Pipeline.pipeline in
      Format.printf "%a@.@." C.Pipeline.pp_summary p;

      (* 3. Simulate a noisy QPSK symbol through the tile. *)
      let rng = C.Rng.create ~seed:2026 in
      let bits = Array.init n (fun _ -> (C.Rng.bool rng, C.Rng.bool rng)) in
      let channel = Array.init n (fun _ -> (1.0 +. C.Rng.float rng 0.2, C.Rng.float rng 0.2)) in
      (* Transmit: ideal QPSK scaled through the inverse channel, then add
         a little noise; the receiver equalizes with `channel` itself. *)
      let tx k =
        let br, bi = bits.(k) in
        ((if br then 0.7 else -0.7), if bi then 0.7 else -0.7)
      in
      (* time-domain samples = inverse DFT of tx/channel; keep it simple by
         building the frequency-domain signal and inverting numerically *)
      let freq =
        Array.init n (fun k ->
            let sr, si = tx k in
            let hr, hi = channel.(k) in
            let d = (hr *. hr) +. (hi *. hi) in
            (* divide by channel so equalization restores the symbol *)
            (((sr *. hr) +. (si *. hi)) /. d, ((si *. hr) -. (sr *. hi)) /. d))
      in
      let samples =
        Array.init n (fun j ->
            let re = ref 0.0 and im = ref 0.0 in
            for k = 0 to n - 1 do
              let angle = 2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
              let c = cos angle and s = sin angle in
              let xr, xi = freq.(k) in
              re := !re +. ((xr *. c) -. (xi *. s));
              im := !im +. ((xr *. s) +. (xi *. c))
            done;
            (!re /. float_of_int n, !im /. float_of_int n))
      in
      let env = C.Ofdm.env ~samples ~channel in
      (match C.Pipeline.verify mapped ~env with
      | Ok () -> print_endline "tile simulation == reference evaluator"
      | Error m -> failwith m);
      let out, _ =
        C.Simulator.run prog p.C.Pipeline.schedule mapped.C.Pipeline.allocation ~env
      in
      let symbols = C.Ofdm.output_symbols ~n out in
      Printf.printf "\nrecovered symbols (sent -> sliced):\n";
      Array.iteri
        (fun k (re, im) ->
          let br, bi = bits.(k) in
          Printf.printf "  carrier %d: (%+.1f,%+.1f) -> (%+.3f,%+.3f)%s\n" k
            (if br then 0.7 else -0.7)
            (if bi then 0.7 else -0.7)
            re im
            (if (re > 0.0) = br && (im > 0.0) = bi then "" else "  BIT ERROR"))
        symbols;

      (* 4. What would the 16-bit datapath do to it? *)
      let report = C.Fixed_point.compare_against_float (C.Fixed_point.q 12) prog ~env in
      Printf.printf "\nQ3.12 fixed point: max abs error %.2e%s\n"
        report.C.Fixed_point.max_abs
        (if report.C.Fixed_point.saturated then " (saturated!)" else "");

      (* 5. The loadable configuration. *)
      match
        C.Codegen.generate prog p.C.Pipeline.schedule mapped.C.Pipeline.allocation
      with
      | Error m -> failwith m
      | Ok listing ->
          let lines = String.split_on_char '\n' listing in
          Printf.printf "\nconfiguration listing (%d lines; first 12):\n"
            (List.length lines);
          List.iteri (fun i l -> if i < 12 then print_endline l) lines
