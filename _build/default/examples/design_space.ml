(* Design-space exploration: how many patterns does a kernel need?

     dune exec examples/design_space.exe

   Sweeps Pdef and the antichain span limit over several kernels and
   prints cycles, configuration-table size, and the gap to the
   resource-unconstrained lower bound — the numbers an architect looks at
   when sizing the Montium's 32-entry configuration memory. *)

module C = Core

let workloads =
  [
    ("3dft", C.Paper_graphs.fig2_3dft ());
    ("w5dft", C.Program.dfg (C.Dft.winograd5 ()));
    ("fft8", C.Program.dfg (C.Dft.radix2_fft ~n:8));
    ("dct8", C.Program.dfg (C.Kernels.dct8 ()));
  ]

let () =
  let t =
    C.Ascii_table.create
      ~header:[ "workload"; "span"; "Pdef"; "cycles"; "lower bound"; "configs"; "antichains" ]
      ()
  in
  List.iter
    (fun (name, g) ->
      let lower = C.Levels.lower_bound_cycles (C.Levels.compute g) in
      List.iter
        (fun span_limit ->
          List.iter
            (fun pdef ->
              let options =
                {
                  C.Pipeline.default_options with
                  C.Pipeline.pdef;
                  span_limit;
                  enumeration_budget = Some 3_000_000;
                }
              in
              let r = C.Pipeline.run ~options g in
              C.Ascii_table.add_row t
                [
                  name;
                  (match span_limit with None -> "inf" | Some s -> string_of_int s);
                  string_of_int pdef;
                  string_of_int r.C.Pipeline.cycles;
                  string_of_int lower;
                  string_of_int r.C.Pipeline.config.C.Config_space.table_size;
                  string_of_int r.C.Pipeline.antichains
                  ^ (if r.C.Pipeline.truncated then "+" else "");
                ])
            [ 1; 2; 4; 8 ])
        [ Some 0; Some 1; Some 2 ];
      C.Ascii_table.add_separator t)
    workloads;
  C.Ascii_table.print t;
  print_endline "(antichain counts marked '+' hit the enumeration budget)"
