(* Inside the tile: what the datapath does cycle by cycle.

     dune exec examples/montium_mapping.exe

   Maps an 8-point FFT onto the Montium and prints the ALU assignment per
   cycle, the configuration table the sequencer would hold, datapath
   traffic, the energy breakdown, and the effect of shrinking the tile. *)

module C = Core

let () =
  let prog = C.Dft.radix2_fft ~n:8 in
  let g = C.Program.dfg prog in
  Printf.printf "8-point FFT: %d ops\n\n" (C.Dfg.node_count g);
  match C.Pipeline.map_program prog with
  | Error m -> failwith m
  | Ok mapped ->
      let p = mapped.C.Pipeline.pipeline in
      let sched = p.C.Pipeline.schedule in
      let alloc = mapped.C.Pipeline.allocation in
      (* per-cycle ALU occupancy map *)
      let alus = C.Tile.default.C.Tile.alu_count in
      Printf.printf "cycle  pattern   %s\n"
        (String.concat " " (List.init alus (fun a -> Printf.sprintf "ALU%d " a)));
      for c = 0 to C.Schedule.cycles sched - 1 do
        let row = Array.make alus "-    " in
        List.iter
          (fun i -> row.(C.Allocation.alu_of alloc i) <- Printf.sprintf "%-5s" (C.Dfg.name g i))
          (C.Schedule.nodes_at sched c);
        Printf.printf "%5d  %-8s  %s\n" (c + 1)
          (C.Pattern.to_string (C.Schedule.pattern_at sched c))
          (String.concat " " (Array.to_list row))
      done;
      Format.printf "@.%a@." C.Config_space.pp p.C.Pipeline.config;
      let s = C.Allocation.stats alloc in
      Printf.printf
        "\ndatapath: %d bus transfers (peak %d/cycle of %d), %d spills, peak regs %d of %d\n"
        s.C.Allocation.bus_transfers s.C.Allocation.peak_bus_use
        C.Tile.default.C.Tile.bus_count s.C.Allocation.spills
        s.C.Allocation.peak_registers C.Tile.default.C.Tile.registers_per_alu;
      Format.printf "%a@." C.Energy.pp mapped.C.Pipeline.energy;

      (* shrink the register files until allocation has to spill *)
      print_newline ();
      List.iter
        (fun regs ->
          let tile = { C.Tile.default with C.Tile.registers_per_alu = regs } in
          match C.Allocation.allocate ~tile prog sched with
          | Ok a ->
              let s = C.Allocation.stats a in
              Printf.printf "registers/ALU = %2d: %d spills, peak regs %d\n" regs
                s.C.Allocation.spills s.C.Allocation.peak_registers
          | Error m -> Printf.printf "registers/ALU = %2d: allocation fails (%s)\n" regs m)
        [ 16; 8; 4; 2; 1 ]
