(* Writing your own kernel through the expression frontend:

     dune exec examples/custom_kernel.exe

   A 4-tap FIR filter is written as plain arithmetic expressions; the
   frontend lowers it to a DFG (sharing common subexpressions), and the
   usual flow maps it to the tile.  This is the path a user takes for a
   kernel the library does not ship. *)

module C = Core

let () =
  (* y[n] = 0.25*x[n] + 0.5*x[n-1] + 0.5*x[n-2] + 0.25*x[n-3], 4 outputs.
     The window holds 7 samples, newest last. *)
  let taps = [ 0.25; 0.5; 0.5; 0.25 ] in
  let y n =
    (* pair each tap with the window index it reads *)
    let terms = List.mapi (fun k c -> (c, n + 3 - k)) taps in
    let open C.Expr in
    let x i = var (Printf.sprintf "x%d" i) in
    match List.map (fun (c, i) -> const c * x i) terms with
    | first :: rest -> List.fold_left ( + ) first rest
    | [] -> assert false
  in
  let bindings = List.init 4 (fun n -> (Printf.sprintf "y%d" n, y n)) in
  let prog = C.Lower.lower bindings in
  let g = C.Program.dfg prog in
  Printf.printf "lowered FIR: %d ops, %d edges, inputs: %s\n" (C.Dfg.node_count g)
    (C.Dfg.edge_count g)
    (String.concat " " (C.Program.inputs prog));

  (* Map with a small pattern budget and report what the tile would load. *)
  let options = { C.Pipeline.default_options with C.Pipeline.pdef = 3 } in
  (match C.Pipeline.map_program ~options prog with
  | Error m -> failwith m
  | Ok mapped ->
      let p = mapped.C.Pipeline.pipeline in
      Format.printf "%a@." C.Pipeline.pp_summary p;
      (* run it on a step input and compare with the reference FIR *)
      let window = [| 0.0; 0.0; 0.0; 1.0; 1.0; 1.0; 1.0 |] in
      let env name =
        match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
        | Some i when name.[0] = 'x' -> window.(i)
        | _ -> raise Not_found
      in
      (match C.Pipeline.verify mapped ~env with
      | Ok () -> print_endline "tile simulation matches the reference evaluator"
      | Error m -> failwith m);
      let out, _ =
        C.Simulator.run prog p.C.Pipeline.schedule mapped.C.Pipeline.allocation ~env
      in
      let want = C.Kernels.fir_reference ~taps window in
      List.iter
        (fun (name, v) ->
          let i = int_of_string (String.sub name 1 (String.length name - 1)) in
          Printf.printf "%s = %6.3f (reference %6.3f)\n" name v want.(i))
        (List.sort compare out))
