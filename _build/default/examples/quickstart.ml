(* Quickstart: the paper's §5.2 worked example, end to end in a page.

     dune exec examples/quickstart.exe

   Build a small data-flow graph, enumerate its antichains, run the pattern
   selection algorithm, and schedule the graph with the selected patterns. *)

module C = Core

let () =
  (* 1. A five-operation graph: a1 -> a2 -> {b4, b5} <- a3 (Fig. 4). *)
  let g =
    C.Dfg.of_alist
      [
        ("a1", C.Color.add); ("a2", C.Color.add); ("a3", C.Color.add);
        ("b4", C.Color.sub); ("b5", C.Color.sub);
      ]
      [ ("a1", "a2"); ("a2", "b4"); ("a2", "b5"); ("a3", "b4"); ("a3", "b5") ]
  in
  Format.printf "graph:@.%a@." C.Dfg.pp g;

  (* 2. Level analysis: when may each operation run? *)
  let lv = C.Levels.compute g in
  C.Dfg.iter_nodes
    (fun i ->
      Printf.printf "  %s: asap %d, alap %d, height %d\n" (C.Dfg.name g i)
        (C.Levels.asap lv i) (C.Levels.alap lv i) (C.Levels.height lv i))
    g;

  (* 3. Pattern generation: antichains classified by their color bags. *)
  let classify =
    C.Classify.compute ~keep_antichains:true ~capacity:5 (C.Enumerate.make_ctx g)
  in
  Printf.printf "\npattern pool (%d antichains):\n" (C.Classify.total_antichains classify);
  Format.printf "%a@." C.Classify.pp_table classify;

  (* 4. The paper's selection algorithm, two patterns allowed. *)
  let report = C.Select.select_report ~pdef:2 classify in
  List.iteri
    (fun i step ->
      Printf.printf "selected #%d: %s (priority %.0f)\n" (i + 1)
        (C.Pattern.to_string step.C.Select.chosen)
        step.C.Select.priority)
    report.C.Select.steps;

  (* 5. Multi-pattern scheduling under the selected patterns. *)
  let r = C.Multi_pattern.schedule ~patterns:report.C.Select.patterns g in
  Format.printf "@.schedule:@.%a@." (C.Schedule.pp g) r.C.Multi_pattern.schedule;
  Printf.printf "%d cycles (critical path %d)\n"
    (C.Schedule.cycles r.C.Multi_pattern.schedule)
    (C.Levels.lower_bound_cycles lv)
