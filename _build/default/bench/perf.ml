(* Bechamel micro-benchmarks: one Test.make per paper table (timing the code
   that regenerates it) plus scaling benches for the expensive kernels
   (antichain enumeration, classification, selection, scheduling). *)

module Pg = Core.Paper_graphs
module Dfg = Core.Dfg
module Levels = Core.Levels
module Pattern = Core.Pattern
module Enumerate = Core.Enumerate
module Classify = Core.Classify
module Select = Core.Select
module Mp = Core.Multi_pattern
module Random_dag = Core.Random_dag
module Dft = Core.Dft
module Program = Core.Program
open Bechamel
open Toolkit

let capacity = Pg.montium_capacity
let dft3 = Pg.fig2_3dft ()
let fig4 = Pg.fig4_small ()
let w5dft = Program.dfg (Dft.winograd5 ())
let dft3_classify = Classify.compute ~span_limit:1 ~capacity (Enumerate.make_ctx dft3)

let section4_patterns =
  let p1, p2 = Pg.section4_patterns in
  [ Pattern.of_string p1; Pattern.of_string p2 ]

(* One staged test per paper table: the work that regenerates it. *)
let table_tests =
  [
    Test.make ~name:"table1:levels-3dft" (Staged.stage (fun () ->
        ignore (Levels.compute dft3)));
    Test.make ~name:"table2:trace-schedule-3dft" (Staged.stage (fun () ->
        ignore (Mp.schedule ~trace:true ~patterns:section4_patterns dft3)));
    Test.make ~name:"table3:schedule-3-pattern-sets" (Staged.stage (fun () ->
        List.iter
          (fun (pats, _) ->
            ignore (Mp.schedule ~patterns:(List.map Pattern.of_string pats) dft3))
          Pg.table3_pattern_sets));
    Test.make ~name:"table4:classify-fig4" (Staged.stage (fun () ->
        ignore
          (Classify.compute ~keep_antichains:true ~capacity (Enumerate.make_ctx fig4))));
    Test.make ~name:"table5:count-matrix-3dft" (Staged.stage (fun () ->
        ignore
          (Enumerate.count_matrix ~max_size:capacity ~max_span:4
             (Enumerate.make_ctx dft3))));
    Test.make ~name:"table6:frequencies-fig4" (Staged.stage (fun () ->
        ignore (Classify.compute ~capacity (Enumerate.make_ctx fig4))));
    Test.make ~name:"table7:select+schedule-3dft" (Staged.stage (fun () ->
        let pats = Select.select ~pdef:4 dft3_classify in
        ignore (Mp.schedule ~patterns:pats dft3)));
  ]

(* Scaling: the heavy kernels on growing random DAGs. *)
let scaling_tests =
  let graphs =
    List.map
      (fun (layers, width) ->
        let params = { Random_dag.default_params with Random_dag.layers; width } in
        let g = Random_dag.generate ~params ~seed:1 () in
        (Printf.sprintf "%dn" (Dfg.node_count g), g))
      [ (6, 6); (10, 10); (16, 12) ]
  in
  List.concat_map
    (fun (tag, g) ->
      [
        Test.make
          ~name:(Printf.sprintf "enumerate-span1-%s" tag)
          (Staged.stage (fun () ->
               ignore
                 (Enumerate.count ~span_limit:1 ~max_size:capacity
                    (Enumerate.make_ctx g))));
        Test.make
          ~name:(Printf.sprintf "pipeline-%s" tag)
          (Staged.stage (fun () -> ignore (Core.Pipeline.run g)));
      ])
    graphs
  @ [
      Test.make ~name:"pipeline-w5dft"
        (Staged.stage (fun () -> ignore (Core.Pipeline.run w5dft)));
    ]

let run_group name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _clock tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
        (List.sort compare rows))
    merged

let run_all () =
  Printf.printf "\n=== Performance: per-table regeneration cost ===\n";
  run_group "tables" table_tests;
  Printf.printf "\n=== Performance: scaling on random DAGs ===\n";
  run_group "scaling" scaling_tests
