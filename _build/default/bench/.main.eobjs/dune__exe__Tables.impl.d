bench/tables.ml: Array Core Lazy List Mps_util Printf String
