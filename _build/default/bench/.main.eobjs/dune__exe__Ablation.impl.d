bench/ablation.ml: Array Core List Mps_dfg Mps_frontend Mps_util Printf String Sys
