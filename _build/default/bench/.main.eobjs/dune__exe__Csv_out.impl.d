bench/csv_out.ml: Array Core List Mps_util Printf Unix
