bench/main.ml: Ablation Array Csv_out List Perf Sys Tables
