bench/main.mli:
