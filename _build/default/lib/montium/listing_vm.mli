(** Interpreter for generated configuration listings.

    {!Codegen.emit} produces a textual configuration; this module loads
    that text {e alone} — no access to the original program, schedule or
    allocation — and executes it: parse the pattern table, preload the
    input image from an environment, then run the `.code` section cycle by
    cycle against simulated register files, feedback registers and
    memories.  Producing the right numbers from nothing but the listing is
    the end-to-end proof that the emitted artifact is complete; the tests
    diff its outputs against {!Mps_frontend.Program.eval}.

    The listing names destinations implicitly (a result is stored wherever
    later instructions read it from), so the loader performs a two-pass
    link: first parse every instruction, then resolve each result's
    destinations from the consumers' operand texts.  Consumers reference
    producers positionally: `r3` on ALU k refers to the value most recently
    linked to register 3 of ALU k's file, matching the single-assignment
    discipline of {!Register_file}. *)

type t

val load : string -> (t, string) result
(** Parse a listing.  Errors carry a line number and message. *)

val instruction_count : t -> int
val cycle_count : t -> int
val pattern_table : t -> string list

val run :
  t ->
  env:(string -> float) ->
  ((string * float) list, string) result
(** Execute.  Returns the value left by the final instruction of each ALU
    tagged by the comment name of every instruction — i.e. an association
    from node comment names to computed values, so callers can look up any
    node's result, not only designated outputs. *)
