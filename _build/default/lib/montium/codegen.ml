module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern
module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode
module Schedule = Mps_scheduler.Schedule

type summary = { cycles : int; patterns : int; instructions : int; inputs : int }

let emit ?(tile = Tile.default) program schedule alloc slots =
  let g = Program.dfg program in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "; mpsched configuration\n";
  out ".tile alus=%d buses=%d regs=%d mems=%dx%d\n" tile.Tile.alu_count
    tile.Tile.bus_count tile.Tile.registers_per_alu (Tile.memory_count tile)
    tile.Tile.memory_words;
  let cfg = Config_space.of_schedule ~tile schedule in
  out ".patterns\n";
  List.iteri
    (fun i p -> out "  P%d %s\n" i (Pattern.to_padded_string ~capacity:tile.Tile.alu_count p))
    cfg.Config_space.patterns;
  (* Input preload image, sorted for determinism. *)
  let input_lines = ref [] in
  for j = 0 to Dfg.node_count g - 1 do
    let { Program.operands; _ } = Program.instruction program j in
    Array.iteri
      (fun k src ->
        match (src, operands.(k)) with
        | Allocation.From_input { memory }, Program.Input name -> (
            match Register_file.input_address_of slots ~input:name ~memory with
            | Some addr ->
                input_lines := Printf.sprintf "  M%d[%d] = %s\n" memory addr name :: !input_lines
            | None -> ())
        | _ -> ())
      (Allocation.sources alloc j)
  done;
  out ".inputs\n";
  List.iter (Buffer.add_string buf) (List.sort_uniq compare !input_lines);
  out ".code\n";
  let operand_text j k src =
    let { Program.operands; _ } = Program.instruction program j in
    match (src, operands.(k)) with
    | Allocation.From_literal, Program.Literal f -> Printf.sprintf "#%.17g" f
    | Allocation.From_input { memory }, Program.Input name ->
        let addr =
          Option.value
            (Register_file.input_address_of slots ~input:name ~memory)
            ~default:(-1)
        in
        Printf.sprintf "M%d[%d]" memory addr
    | Allocation.From_node { producer; route }, Program.Node _ -> (
        match route with
        | Allocation.Feedback -> "fb"
        | Allocation.Register _ ->
            let alu = Allocation.alu_of alloc j in
            let index =
              Option.value
                (Register_file.register_of slots ~producer ~consumer_alu:alu)
                ~default:(-1)
            in
            Printf.sprintf "r%d" index
        | Allocation.Spill { memory; _ } ->
            let addr =
              Option.value
                (Register_file.spill_address_of slots ~producer ~memory)
                ~default:(-1)
            in
            Printf.sprintf "M%d[%d]" memory addr)
    | _ -> "?"
  in
  (* Destinations of each produced value, so the listing is self-contained
     (the Listing_vm executes it with no other artifact). *)
  let destinations j =
    let dests = ref [] in
    List.iter
      (fun consumer ->
        Array.iter
          (function
            | Allocation.From_node { producer; route } when producer = j -> (
                match route with
                | Allocation.Feedback -> () (* implicit: every ALU latches fb *)
                | Allocation.Register _ ->
                    let alu = Allocation.alu_of alloc consumer in
                    let index =
                      Option.value
                        (Register_file.register_of slots ~producer:j ~consumer_alu:alu)
                        ~default:(-1)
                    in
                    dests := Printf.sprintf "r%d@alu%d" index alu :: !dests
                | Allocation.Spill { memory; _ } ->
                    let addr =
                      Option.value
                        (Register_file.spill_address_of slots ~producer:j ~memory)
                        ~default:(-1)
                    in
                    dests := Printf.sprintf "M%d[%d]" memory addr :: !dests)
            | _ -> ())
          (Allocation.sources alloc consumer))
      (Dfg.succs g j);
    List.sort_uniq compare !dests
  in
  for c = 0 to Schedule.cycles schedule - 1 do
    let pidx = cfg.Config_space.cycle_index.(c) in
    out "cycle %d pattern P%d\n" (c + 1) pidx;
    List.iter
      (fun j ->
        let { Program.opcode; _ } = Program.instruction program j in
        let srcs = Allocation.sources alloc j in
        let args =
          Array.to_list (Array.mapi (fun k src -> operand_text j k src) srcs)
        in
        let dests =
          match destinations j with
          | [] -> ""
          | ds -> " -> " ^ String.concat ", " ds
        in
        out "  alu%d: %-4s %s%s ; %s\n"
          (Allocation.alu_of alloc j)
          (Opcode.to_string opcode)
          (String.concat ", " args)
          dests
          (Dfg.name g j))
      (Schedule.nodes_at schedule c)
  done;
  Buffer.contents buf

let parse_summary text =
  let lines = String.split_on_char '\n' text in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let cycles = ref 0 and patterns = ref 0 and instructions = ref 0 and inputs = ref 0 in
  let section = ref `Preamble in
  let ok = ref true in
  List.iter
    (fun line ->
      if starts_with ".patterns" line then section := `Patterns
      else if starts_with ".inputs" line then section := `Inputs
      else if starts_with ".code" line then section := `Code
      else if starts_with ".tile" line then ()
      else if starts_with ";" line || String.trim line = "" then ()
      else
        match !section with
        | `Patterns -> if starts_with "  P" line then incr patterns else ok := false
        | `Inputs -> if starts_with "  M" line then incr inputs else ok := false
        | `Code ->
            if starts_with "cycle " line then incr cycles
            else if starts_with "  alu" line then incr instructions
            else ok := false
        | `Preamble -> ok := false)
    lines;
  if !ok then
    Ok { cycles = !cycles; patterns = !patterns; instructions = !instructions; inputs = !inputs }
  else Error "unrecognized line in listing"

let generate ?tile program schedule alloc =
  match Register_file.assign ?tile program schedule alloc with
  | Error m -> Error m
  | Ok slots -> Ok (emit ?tile program schedule alloc slots)
