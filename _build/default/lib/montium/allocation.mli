(** Allocation: mapping a scheduled program onto the tile's datapath — the
    compiler phase after scheduling in the Montium flow (paper §1, [3]).

    Given a {!Mps_frontend.Program.t} and a {!Mps_scheduler.Schedule.t},
    allocation decides, per clock cycle:

    - which ALU runs each operation (one operation per ALU per cycle);
    - how every operand reaches its consumer.

    The routing model, simplified from the real tile but resource-faithful:

    - A result needed by an operation on the {e same} ALU in the {e next}
      cycle uses the ALU's feedback path (free).
    - Any other node-to-node value crosses the crossbar {e once}, on the
      cycle it is produced (one global bus per producing node per cycle,
      broadcast to all consumers), and then waits in each consumer ALU's
      register file until its last use there.  Register files hold
      [registers_per_alu] values; when a value cannot be kept in registers
      for its whole lifetime it is {e spilled}: written to one of the
      consumer's local memories instead (one write port per memory per
      cycle) and read back on the consuming cycle (one read port).
    - External inputs live in the consumer ALU's local memories and are
      read on the consuming cycle; instruction literals are free.

    Allocation fails only on genuine resource exhaustion (more producing
    nodes in a cycle than buses, or no free memory write port for a spill);
    with the default tile and capacity-5 schedules the bus bound cannot
    trigger, which a test asserts. *)

type route =
  | Feedback  (** Same ALU, consecutive cycles. *)
  | Register of { via_bus : int option }
      (** Held in the consumer's register file; [via_bus] is the crossbar
          bus used on the producing cycle, [None] when producer and
          consumer share the ALU (local write-back). *)
  | Spill of { via_bus : int option; memory : int }
      (** Held in a consumer-local memory. *)

type operand_source =
  | From_literal
  | From_input of { memory : int }  (** External input, memory-resident. *)
  | From_node of { producer : int; route : route }

type stats = {
  bus_transfers : int;  (** Crossbar transfers (bus·cycle slots used). *)
  spills : int;  (** Values routed through a local memory. *)
  peak_bus_use : int;  (** Max buses used in any one cycle. *)
  peak_registers : int;  (** Max register-file occupancy of any ALU. *)
  input_reads : int;  (** Memory reads serving external inputs. *)
}

type t

val alu_of : t -> int -> int
(** ALU index executing the node. *)

val sources : t -> int -> operand_source array
(** Per-operand routing of the node, in instruction operand order. *)

val stats : t -> stats

val allocate :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  (t, string) result
(** [tile] defaults to {!Tile.default}.  Fails with a message if a cycle
    schedules more nodes than ALUs, or a resource port is exhausted. *)

val validate :
  ?tile:Tile.t -> Mps_frontend.Program.t -> Mps_scheduler.Schedule.t -> t -> (unit, string) result
(** Re-checks every structural resource bound on an existing allocation
    (used by tests and by the simulator before running). *)

val pp : Mps_frontend.Program.t -> Format.formatter -> t -> unit
