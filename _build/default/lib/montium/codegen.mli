(** Configuration/code generation — the textual image a Montium sequencer
    would be loaded with.

    Emits, for a fully mapped program (schedule + allocation + concrete
    storage), a deterministic assembly-like listing:

    {v
    ; mpsched configuration
    .tile alus=5 buses=10 regs=16 mems=10x512
    .patterns
      P0 aabcc
      ...
    .inputs
      M3[0] = x1r
      ...
    .code
    cycle 1 pattern P0
      alu0: add  r[a4] <- M0[0], M1[0]     ; a4
      ...
    v}

    The listing is both human documentation of a mapping and a
    machine-checkable artifact: {!parse_summary} re-reads the structural
    counts so tests can assert the emitter round-trips. *)

type summary = {
  cycles : int;
  patterns : int;
  instructions : int;
  inputs : int;
}

val emit :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  Register_file.t ->
  string

val parse_summary : string -> (summary, string) result
(** Structural re-read of an emitted listing (section and line counts). *)

val generate :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  (string, string) result
(** Storage assignment + emission in one step. *)
