type t = {
  alu_count : int;
  bus_count : int;
  registers_per_alu : int;
  memories_per_alu : int;
  memory_words : int;
  max_configs : int;
}

let default =
  {
    alu_count = 5;
    bus_count = 10;
    registers_per_alu = 16;
    memories_per_alu = 2;
    memory_words = 512;
    max_configs = 32;
  }

let validate t =
  if t.alu_count < 1 then Error "alu_count must be positive"
  else if t.bus_count < 1 then Error "bus_count must be positive"
  else if t.registers_per_alu < 1 then Error "registers_per_alu must be positive"
  else if t.memories_per_alu < 1 then Error "memories_per_alu must be positive"
  else if t.memory_words < 1 then Error "memory_words must be positive"
  else if t.max_configs < 1 then Error "max_configs must be positive"
  else Ok ()

let memory_count t = t.alu_count * t.memories_per_alu

let memory_of t ~alu ~port =
  if alu < 0 || alu >= t.alu_count then
    invalid_arg (Printf.sprintf "Tile.memory_of: alu %d out of range" alu);
  if port < 0 || port >= t.memories_per_alu then
    invalid_arg (Printf.sprintf "Tile.memory_of: port %d out of range" port);
  (alu * t.memories_per_alu) + port

let pp ppf t =
  Format.fprintf ppf
    "tile: %d ALUs, %d buses, %d regs/ALU, %dx%d-word memories/ALU, %d configs"
    t.alu_count t.bus_count t.registers_per_alu t.memories_per_alu t.memory_words
    t.max_configs
