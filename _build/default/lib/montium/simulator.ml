module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode
module Schedule = Mps_scheduler.Schedule

type run_stats = { executed : int; cycles : int; alu_busy : int array }

exception Machine_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Machine_error m)) fmt

type state = {
  feedback : (int * float) option array; (* per ALU: (producer, value) of previous cycle *)
  feedback_next : (int * float) option array;
  register_file : (int, float) Hashtbl.t array; (* per ALU: producer -> value *)
  memory : (int, float) Hashtbl.t array; (* per memory: producer -> value *)
}

let run ?(tile = Tile.default) program schedule alloc ~env =
  (match Allocation.validate ~tile program schedule alloc with
  | Ok () -> ()
  | Error m -> fail "allocation invalid: %s" m);
  let g = Program.dfg program in
  let n = Dfg.node_count g in
  let cycles = Schedule.cycles schedule in
  let st =
    {
      feedback = Array.make tile.Tile.alu_count None;
      feedback_next = Array.make tile.Tile.alu_count None;
      register_file = Array.init tile.Tile.alu_count (fun _ -> Hashtbl.create 16);
      memory = Array.init (Tile.memory_count tile) (fun _ -> Hashtbl.create 16);
    }
  in
  (* Destinations a produced value must be committed to, derived once from
     the consumers' sources. *)
  let commits = Array.make n [] in
  for j = 0 to n - 1 do
    Array.iter
      (function
        | Allocation.From_node { producer; route } ->
            let dest =
              match route with
              | Allocation.Feedback -> `Feedback (Allocation.alu_of alloc j)
              | Allocation.Register _ -> `Register (Allocation.alu_of alloc j)
              | Allocation.Spill { memory; _ } -> `Memory memory
            in
            if not (List.mem dest commits.(producer)) then
              commits.(producer) <- dest :: commits.(producer)
        | Allocation.From_literal | Allocation.From_input _ -> ())
      (Allocation.sources alloc j)
  done;
  let values = Array.make n nan in
  let executed = ref 0 in
  let alu_busy = Array.make tile.Tile.alu_count 0 in
  for c = 0 to cycles - 1 do
    let nodes = Schedule.nodes_at schedule c in
    (* Fetch and compute all of this cycle's operations against the state
       left by earlier cycles (the ALUs run in parallel)... *)
    let results =
      List.map
        (fun j ->
          let { Program.opcode; operands } = Program.instruction program j in
          let alu = Allocation.alu_of alloc j in
          let srcs = Allocation.sources alloc j in
          let args =
            Array.mapi
              (fun k src ->
                match src with
                | Allocation.From_literal -> (
                    match operands.(k) with
                    | Program.Literal f -> f
                    | _ -> fail "node %s: literal source mismatch" (Dfg.name g j))
                | Allocation.From_input _ -> (
                    match operands.(k) with
                    | Program.Input name -> env name
                    | _ -> fail "node %s: input source mismatch" (Dfg.name g j))
                | Allocation.From_node { producer; route } -> (
                    match route with
                    | Allocation.Feedback -> (
                        match st.feedback.(alu) with
                        | Some (p, v) when p = producer -> v
                        | Some (p, _) ->
                            fail "node %s: feedback register holds %s, wanted %s"
                              (Dfg.name g j) (Dfg.name g p) (Dfg.name g producer)
                        | None ->
                            fail "node %s: feedback register empty" (Dfg.name g j))
                    | Allocation.Register _ -> (
                        match Hashtbl.find_opt st.register_file.(alu) producer with
                        | Some v -> v
                        | None ->
                            fail "node %s: %s missing from ALU%d register file"
                              (Dfg.name g j) (Dfg.name g producer) alu)
                    | Allocation.Spill { memory; _ } -> (
                        match Hashtbl.find_opt st.memory.(memory) producer with
                        | Some v -> v
                        | None ->
                            fail "node %s: %s missing from memory %d" (Dfg.name g j)
                              (Dfg.name g producer) memory)))
              srcs
          in
          (j, alu, Opcode.eval opcode args))
        nodes
    in
    (* ...then commit the results for later cycles. *)
    Array.fill st.feedback_next 0 (Array.length st.feedback_next) None;
    List.iter
      (fun (j, alu, v) ->
        values.(j) <- v;
        incr executed;
        alu_busy.(alu) <- alu_busy.(alu) + 1;
        List.iter
          (function
            | `Feedback a ->
                if a <> alu then fail "node %s: feedback to foreign ALU" (Dfg.name g j);
                st.feedback_next.(a) <- Some (j, v)
            | `Register a -> Hashtbl.replace st.register_file.(a) j v
            | `Memory m -> Hashtbl.replace st.memory.(m) j v)
          commits.(j))
      results;
    Array.blit st.feedback_next 0 st.feedback 0 (Array.length st.feedback)
  done;
  if !executed <> n then fail "executed %d of %d operations" !executed n;
  let outputs = List.map (fun (name, i) -> (name, values.(i))) (Program.outputs program) in
  (outputs, { executed = !executed; cycles; alu_busy })

let check_against_reference ?tile program schedule alloc ~env =
  match run ?tile program schedule alloc ~env with
  | exception Machine_error m -> Error m
  | got, _ ->
      let want = Program.eval ~env program in
      let mismatches =
        List.filter_map
          (fun ((name, v), (name', w)) ->
            if name <> name' then Some (Printf.sprintf "output order broke at %s" name)
            else if not (Float.equal v w) then
              Some (Printf.sprintf "%s: simulator %.17g, reference %.17g" name v w)
            else None)
          (List.combine got want)
      in
      (match mismatches with [] -> Ok () | m :: _ -> Error m)
