(** Multi-tile mapping: one kernel spread over several Montium tiles.

    The Montium ships in SoCs (the Chameleon) with several tiles on a
    network-on-chip.  This module maps a DFG across [tiles] tiles:

    - {e partition} the graph by slicing its ASAP levels into contiguous
      bands balanced by node count — level slicing keeps the quotient
      graph acyclic by construction, so tiles form a simple pipeline and
      every cross-tile edge points forward;
    - {e select} patterns independently per tile (each tile has its own
      32-entry table — that is the hardware reality and one of the gains
      of splitting);
    - {e schedule} tiles in order: a node consuming a value produced on an
      earlier tile is released only [hop_latency] cycles after the
      producer's cycle, using the scheduler's release-time hook; the
      paper's algorithm is otherwise unchanged per tile.

    The result records per-tile schedules in a common global clock, the
    cross-tile traffic, and the makespan to compare against the single-tile
    mapping. *)

type options = {
  tiles : int;
  hop_latency : int;  (** NoC cycles from one tile's output to another's input. *)
  pdef : int;  (** Patterns selected per tile. *)
  span_limit : int option;
  capacity : int;
}

val default_options : options
(** 2 tiles, hop latency 2, pdef 4, span 1, capacity 5. *)

type tile_mapping = {
  tile_nodes : int list;  (** Original node ids on this tile. *)
  patterns : Mps_pattern.Pattern.t list;
  start_of : (int * int) list;  (** (original node, global start cycle). *)
  busy_cycles : int;
}

type t = {
  mappings : tile_mapping list;
  makespan : int;  (** Global cycles until the last operation completes. *)
  cut_edges : int;  (** Values crossing tiles. *)
  single_tile_cycles : int;  (** Same flow on one tile, for comparison. *)
}

val map : ?options:options -> Mps_dfg.Dfg.t -> t
(** @raise Invalid_argument for non-positive option fields or more tiles
    than nodes. *)

val validate : Mps_dfg.Dfg.t -> options -> t -> (unit, string) result
(** Checks the partition (every node on exactly one tile), intra-tile
    precedence, and that every cross-tile edge respects the hop latency. *)
