(** Configuration-space accounting (paper §1).

    "Although the five ALUs can execute thousands of different possible
    patterns, for efficiency reasons during one application it is only
    allowed to use up to 32 of them."  This module checks a schedule
    against that limit, counts reconfigurations (cycles whose pattern
    differs from the previous cycle's — the events that cost energy on the
    real tile), and builds the pattern table a sequencer would be loaded
    with. *)

type t = {
  patterns : Mps_pattern.Pattern.t list;  (** Distinct, sorted: the table. *)
  table_size : int;
  fits : bool;  (** [table_size ≤ max_configs]. *)
  reconfigurations : int;
      (** Pattern switches between consecutive cycles (first cycle free). *)
  cycle_index : int array;  (** Per cycle, the index into [patterns]. *)
}

val of_schedule : ?tile:Tile.t -> Mps_scheduler.Schedule.t -> t

val pp : Format.formatter -> t -> unit
