(** Cycle-accurate functional simulation of an allocated schedule.

    The simulator walks the schedule cycle by cycle, maintaining the
    architectural state the allocation claims to use — per-ALU feedback
    registers, per-ALU register files, local memories — and executes each
    operation by fetching operands from exactly the resource its
    {!Allocation.operand_source} names.  A value that is not where the
    allocation said it would be is a hard error, so a successful run is a
    machine-checked proof that the schedule + allocation pair really
    executes on the modeled tile; the numeric outputs are then compared by
    the tests against {!Mps_frontend.Program.eval}, closing the loop from
    expression frontend to datapath. *)

type run_stats = {
  executed : int;  (** Operations executed (= node count). *)
  cycles : int;
  alu_busy : int array;  (** Per-ALU busy-cycle counts. *)
}

exception Machine_error of string
(** An operand was missing from the resource its route names, a feedback
    value was stale, or state was inconsistent — i.e. the allocation lied. *)

val run :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  env:(string -> float) ->
  (string * float) list * run_stats
(** Outputs in program declaration order.  @raise Machine_error as above;
    @raise Not_found from [env] on unbound inputs. *)

val check_against_reference :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  env:(string -> float) ->
  (unit, string) result
(** Runs the simulator and compares every output with the reference
    evaluator, requiring exact equality (the simulator performs the same
    float operations in the same operand order). *)
