module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Enumerate = Mps_antichain.Enumerate
module Select = Mps_select.Select
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule

type options = {
  tiles : int;
  hop_latency : int;
  pdef : int;
  span_limit : int option;
  capacity : int;
}

let default_options =
  { tiles = 2; hop_latency = 2; pdef = 4; span_limit = Some 1; capacity = 5 }

type tile_mapping = {
  tile_nodes : int list;
  patterns : Pattern.t list;
  start_of : (int * int) list;
  busy_cycles : int;
}

type t = {
  mappings : tile_mapping list;
  makespan : int;
  cut_edges : int;
  single_tile_cycles : int;
}

(* Contiguous ASAP-level bands with balanced node counts: tile boundaries
   at the level where the cumulative node count passes i/tiles of the
   total. *)
let partition g ~tiles =
  let lv = Levels.compute g in
  let n = Dfg.node_count g in
  let assignment = Array.make n 0 in
  (* All nodes of one ASAP level share a tile (so the quotient is acyclic);
     the level's tile is set by the cumulative node count below it. *)
  let level_of i = Levels.asap lv i in
  let max_level = List.fold_left (fun acc i -> max acc (level_of i)) 0 (Dfg.nodes g) in
  let level_sizes = Array.make (max_level + 1) 0 in
  Dfg.iter_nodes (fun i -> level_sizes.(level_of i) <- level_sizes.(level_of i) + 1) g;
  let tile_of_level = Array.make (max_level + 1) 0 in
  let seen = ref 0 in
  for l = 0 to max_level do
    let tile = min (tiles - 1) (!seen * tiles / max 1 n) in
    tile_of_level.(l) <- tile;
    seen := !seen + level_sizes.(l)
  done;
  Dfg.iter_nodes (fun i -> assignment.(i) <- tile_of_level.(level_of i)) g;
  assignment

let map ?(options = default_options) g =
  let { tiles; hop_latency; pdef; span_limit; capacity } = options in
  if tiles < 1 then invalid_arg "Multi_tile.map: tiles < 1";
  if hop_latency < 0 then invalid_arg "Multi_tile.map: negative hop latency";
  if pdef < 1 || capacity < 1 then invalid_arg "Multi_tile.map: bad pdef/capacity";
  if tiles > max 1 (Dfg.node_count g) then
    invalid_arg "Multi_tile.map: more tiles than nodes";
  let assignment = partition g ~tiles in
  let single_tile_cycles =
    let cls = Classify.compute ?span_limit ~budget:2_000_000 ~capacity (Enumerate.make_ctx g) in
    let pats = Select.select ~pdef cls in
    Schedule.cycles (Mp.schedule ~patterns:pats g).Mp.schedule
  in
  (* Global start cycle per original node, filled tile by tile. *)
  let n = Dfg.node_count g in
  let global_start = Array.make n (-1) in
  let cut_edges = ref 0 in
  Dfg.iter_edges
    (fun u v -> if assignment.(u) <> assignment.(v) then incr cut_edges)
    g;
  let mappings =
    List.init tiles (fun tile ->
        let tile_nodes =
          List.filter (fun i -> assignment.(i) = tile) (Dfg.nodes g)
        in
        if tile_nodes = [] then
          { tile_nodes = []; patterns = []; start_of = []; busy_cycles = 0 }
        else begin
          let sub, old_of_new = Dfg.induced g tile_nodes in
          let release =
            Array.init (Dfg.node_count sub) (fun ni ->
                let oi = old_of_new.(ni) in
                List.fold_left
                  (fun acc p ->
                    if assignment.(p) <> tile then begin
                      assert (global_start.(p) >= 0);
                      max acc (global_start.(p) + 1 + hop_latency)
                    end
                    else acc)
                  0 (Dfg.preds g oi))
          in
          let cls = Classify.compute ?span_limit ~budget:2_000_000 ~capacity (Enumerate.make_ctx sub) in
          let patterns = Select.select ~pdef cls in
          let sched = (Mp.schedule ~release ~patterns sub).Mp.schedule in
          let start_of =
            List.init (Dfg.node_count sub) (fun ni ->
                let c = Schedule.cycle_of sched ni in
                global_start.(old_of_new.(ni)) <- c;
                (old_of_new.(ni), c))
          in
          let busy_cycles =
            List.sort_uniq compare (List.map snd start_of) |> List.length
          in
          { tile_nodes; patterns; start_of; busy_cycles }
        end)
  in
  let makespan = 1 + Array.fold_left max (-1) global_start in
  { mappings; makespan; cut_edges = !cut_edges; single_tile_cycles }

let validate g options t =
  let exception Bad of string in
  try
    let n = Dfg.node_count g in
    let tile_of = Array.make n (-1) in
    let start = Array.make n (-1) in
    List.iteri
      (fun tile m ->
        List.iter
          (fun i ->
            if tile_of.(i) >= 0 then raise (Bad (Printf.sprintf "node %d on two tiles" i));
            tile_of.(i) <- tile)
          m.tile_nodes;
        List.iter
          (fun (i, c) ->
            if c < 0 then raise (Bad "negative start");
            start.(i) <- c)
          m.start_of)
      t.mappings;
    Array.iteri
      (fun i tl -> if tl < 0 then raise (Bad (Printf.sprintf "node %d unmapped" i)))
      tile_of;
    Dfg.iter_edges
      (fun u v ->
        let gap = if tile_of.(u) = tile_of.(v) then 1 else 1 + options.hop_latency in
        if start.(v) < start.(u) + gap then
          raise
            (Bad
               (Printf.sprintf "edge %s -> %s violates %s timing" (Dfg.name g u)
                  (Dfg.name g v)
                  (if tile_of.(u) = tile_of.(v) then "intra-tile" else "cross-tile"))))
      g;
    if t.makespan <> 1 + Array.fold_left max (-1) start then
      raise (Bad "makespan mismatch");
    Ok ()
  with Bad m -> Error m
