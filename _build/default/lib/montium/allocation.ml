module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode
module Schedule = Mps_scheduler.Schedule

type route =
  | Feedback
  | Register of { via_bus : int option }
  | Spill of { via_bus : int option; memory : int }

type operand_source =
  | From_literal
  | From_input of { memory : int }
  | From_node of { producer : int; route : route }

type stats = {
  bus_transfers : int;
  spills : int;
  peak_bus_use : int;
  peak_registers : int;
  input_reads : int;
}

type t = {
  alus : int array;
  sources : operand_source array array;
  stats : stats;
}

let alu_of t i = t.alus.(i)
let sources t i = t.sources.(i)
let stats t = t.stats

(* Port bookkeeping: one read and one write per memory per cycle. *)
type ports = {
  mem_read : (int * int, unit) Hashtbl.t; (* (memory, cycle) *)
  mem_write : (int * int, unit) Hashtbl.t;
}

let read_free ports memory cycle = not (Hashtbl.mem ports.mem_read (memory, cycle))
let claim_read ports memory cycle = Hashtbl.replace ports.mem_read (memory, cycle) ()
let write_free ports memory cycle = not (Hashtbl.mem ports.mem_write (memory, cycle))
let claim_write ports memory cycle = Hashtbl.replace ports.mem_write (memory, cycle) ()

let allocate ?(tile = Tile.default) program schedule =
  match Tile.validate tile with
  | Error m -> Error (Printf.sprintf "invalid tile: %s" m)
  | Ok () -> (
      let g = Program.dfg program in
      let n = Dfg.node_count g in
      let cycles = Schedule.cycles schedule in
      let alus = Array.make n (-1) in
      let exception Fail of string in
      try
        (* Phase 1: ALU assignment, cycle by cycle, with producer affinity. *)
        for c = 0 to cycles - 1 do
          let nodes = Schedule.nodes_at schedule c in
          if List.length nodes > tile.Tile.alu_count then
            raise
              (Fail
                 (Printf.sprintf "cycle %d schedules %d nodes on %d ALUs" c
                    (List.length nodes) tile.Tile.alu_count));
          let free = Array.make tile.Tile.alu_count true in
          let preferred i =
            let { Program.operands; _ } = Program.instruction program i in
            Array.fold_left
              (fun acc op ->
                match (acc, op) with
                | Some _, _ -> acc
                | None, Program.Node j when alus.(j) >= 0 && free.(alus.(j)) ->
                    Some alus.(j)
                | None, _ -> None)
              None operands
          in
          List.iter
            (fun i ->
              let a =
                match preferred i with
                | Some a -> a
                | None ->
                    let rec first k =
                      if k >= tile.Tile.alu_count then
                        raise (Fail "no free ALU (unreachable)")
                      else if free.(k) then k
                      else first (k + 1)
                    in
                    first 0
              in
              free.(a) <- false;
              alus.(i) <- a)
            nodes
        done;
        (* Phase 2: routing.  Group each value's consumers by consumer ALU
           and decide storage per group. *)
        let ports = { mem_read = Hashtbl.create 64; mem_write = Hashtbl.create 64 } in
        let regs = Array.make_matrix tile.Tile.alu_count (max cycles 1) 0 in
        let buses = Array.make (max cycles 1) 0 in
        let spills = ref 0 and bus_transfers = ref 0 and input_reads = ref 0 in
        (* route_of.(producer) is an association list: consumer alu -> route *)
        let route_of = Array.make n [] in
        let try_registers alu lo hi =
          let fits = ref true in
          for c = lo to hi do
            if regs.(alu).(c) >= tile.Tile.registers_per_alu then fits := false
          done;
          if !fits then begin
            for c = lo to hi do
              regs.(alu).(c) <- regs.(alu).(c) + 1
            done;
            true
          end
          else false
        in
        let try_spill alu ~write_cycle ~read_cycles =
          (* Pick a local memory with a free write port at the producing
             cycle and free read ports at every consuming cycle. *)
          let rec attempt port =
            if port >= tile.Tile.memories_per_alu then None
            else begin
              let m = Tile.memory_of tile ~alu ~port in
              if
                write_free ports m write_cycle
                && List.for_all (fun c -> read_free ports m c) read_cycles
              then begin
                claim_write ports m write_cycle;
                List.iter (fun c -> claim_read ports m c) read_cycles;
                Some m
              end
              else attempt (port + 1)
            end
          in
          attempt 0
        in
        for i = 0 to n - 1 do
          let succs = Dfg.succs g i in
          if succs <> [] then begin
            let c_prod = Schedule.cycle_of schedule i in
            let by_alu = Hashtbl.create 4 in
            List.iter
              (fun j ->
                let a = alus.(j) in
                let prev = Option.value (Hashtbl.find_opt by_alu a) ~default:[] in
                Hashtbl.replace by_alu a (j :: prev))
              succs;
            let groups =
              Hashtbl.fold (fun a js acc -> (a, js) :: acc) by_alu []
              |> List.sort compare
            in
            let needs_bus =
              List.exists (fun (a, _) -> a <> alus.(i)) groups
            in
            let bus =
              if needs_bus then begin
                if buses.(c_prod) >= tile.Tile.bus_count then
                  raise (Fail (Printf.sprintf "out of buses at cycle %d" c_prod));
                let b = buses.(c_prod) in
                buses.(c_prod) <- b + 1;
                incr bus_transfers;
                Some b
              end
              else None
            in
            List.iter
              (fun (a, js) ->
                let read_cycles =
                  List.map (Schedule.cycle_of schedule) js
                  |> List.sort_uniq Int.compare
                in
                let last_use = List.fold_left max 0 read_cycles in
                let all_next =
                  List.for_all (fun c -> c = c_prod + 1) read_cycles
                in
                let via_bus = if a = alus.(i) then None else bus in
                let route =
                  if a = alus.(i) && all_next then Feedback
                  else if try_registers a (c_prod + 1) last_use then
                    Register { via_bus }
                  else begin
                    match try_spill a ~write_cycle:c_prod ~read_cycles with
                    | Some memory ->
                        incr spills;
                        Spill { via_bus; memory }
                    | None ->
                        raise
                          (Fail
                             (Printf.sprintf
                                "node %s: no register or memory room at ALU %d"
                                (Dfg.name g i) a))
                  end
                in
                route_of.(i) <- (a, route) :: route_of.(i))
              groups
          end
        done;
        (* Phase 3: operand sources, claiming input read ports. *)
        let sources =
          Array.init n (fun j ->
              let { Program.operands; _ } = Program.instruction program j in
              let c = Schedule.cycle_of schedule j in
              Array.mapi
                (fun k op ->
                  match op with
                  | Program.Literal _ -> From_literal
                  | Program.Node p ->
                      let route = List.assoc alus.(j) route_of.(p) in
                      From_node { producer = p; route }
                  | Program.Input _ ->
                      (* Inputs are preloaded into the consumer's local
                         memories; prefer the port matching the operand
                         position, falling back to any port whose read slot
                         is still free this cycle. *)
                      let order =
                        List.init tile.Tile.memories_per_alu (fun d ->
                            (min k (tile.Tile.memories_per_alu - 1) + d)
                            mod tile.Tile.memories_per_alu)
                      in
                      let m =
                        match
                          List.find_map
                            (fun port ->
                              let m = Tile.memory_of tile ~alu:alus.(j) ~port in
                              if read_free ports m c then Some m else None)
                            order
                        with
                        | Some m -> m
                        | None ->
                            raise
                              (Fail
                                 (Printf.sprintf
                                    "node %s: all input read ports busy at cycle %d"
                                    (Dfg.name g j) c))
                      in
                      claim_read ports m c;
                      incr input_reads;
                      From_input { memory = m })
                operands)
        in
        let peak_bus_use = Array.fold_left max 0 buses in
        let peak_registers =
          Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 regs
        in
        Ok
          {
            alus;
            sources;
            stats =
              {
                bus_transfers = !bus_transfers;
                spills = !spills;
                peak_bus_use;
                peak_registers;
                input_reads = !input_reads;
              };
          }
      with Fail m -> Error m)

let validate ?(tile = Tile.default) program schedule t =
  let g = Program.dfg program in
  let n = Dfg.node_count g in
  let cycles = Schedule.cycles schedule in
  let exception Bad of string in
  try
    if Array.length t.alus <> n then raise (Bad "alu array length mismatch");
    (* One node per ALU per cycle. *)
    let seen = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      let key = (Schedule.cycle_of schedule i, t.alus.(i)) in
      if t.alus.(i) < 0 || t.alus.(i) >= tile.Tile.alu_count then
        raise (Bad (Printf.sprintf "node %d on invalid ALU" i));
      if Hashtbl.mem seen key then
        raise (Bad (Printf.sprintf "two nodes share ALU %d at cycle %d" t.alus.(i) (fst key)));
      Hashtbl.add seen key ()
    done;
    (* Check each operand's source and accumulate resource usage. *)
    let reads = Hashtbl.create 64 and writes = Hashtbl.create 64 in
    let reg_live = Hashtbl.create 64 in (* (alu, producer) -> last use cycle *)
    let bus_used = Hashtbl.create 64 in (* (cycle, producer) -> unit *)
    for j = 0 to n - 1 do
      let { Program.operands; _ } = Program.instruction program j in
      let srcs = t.sources.(j) in
      if Array.length srcs <> Array.length operands then
        raise (Bad (Printf.sprintf "node %d source arity mismatch" j));
      let cj = Schedule.cycle_of schedule j in
      Array.iteri
        (fun k src ->
          match (operands.(k), src) with
          | Program.Literal _, From_literal -> ()
          | Program.Input name, From_input { memory } ->
              if memory < 0 || memory >= Tile.memory_count tile then
                raise (Bad "input memory out of range");
              let key = (memory, cj) in
              (match Hashtbl.find_opt reads key with
              | Some (`Input name') when name' = name -> ()
              | Some _ ->
                  raise
                    (Bad (Printf.sprintf "read port conflict on memory %d cycle %d" memory cj))
              | None -> Hashtbl.add reads key (`Input name))
          | Program.Node p, From_node { producer; route } ->
              if producer <> p then raise (Bad "operand producer mismatch");
              let cp = Schedule.cycle_of schedule p in
              (match route with
              | Feedback ->
                  if t.alus.(p) <> t.alus.(j) then raise (Bad "feedback across ALUs");
                  if cj <> cp + 1 then raise (Bad "feedback across non-adjacent cycles")
              | Register { via_bus } ->
                  (match via_bus with
                  | None ->
                      if t.alus.(p) <> t.alus.(j) then
                        raise (Bad "bus-less register route across ALUs")
                  | Some b ->
                      if b < 0 || b >= tile.Tile.bus_count then raise (Bad "bus out of range");
                      Hashtbl.replace bus_used (cp, p) ());
                  let key = (t.alus.(j), p) in
                  let prev = Option.value (Hashtbl.find_opt reg_live key) ~default:0 in
                  Hashtbl.replace reg_live key (max prev cj)
              | Spill { via_bus; memory } ->
                  (match via_bus with
                  | None ->
                      if t.alus.(p) <> t.alus.(j) then
                        raise (Bad "bus-less spill route across ALUs")
                  | Some b ->
                      if b < 0 || b >= tile.Tile.bus_count then raise (Bad "bus out of range");
                      Hashtbl.replace bus_used (cp, p) ());
                  if memory < 0 || memory >= Tile.memory_count tile then
                    raise (Bad "spill memory out of range");
                  let rkey = (memory, cj) in
                  (match Hashtbl.find_opt reads rkey with
                  | Some (`Node p') when p' = p -> ()
                  | Some _ ->
                      raise
                        (Bad
                           (Printf.sprintf "read port conflict on memory %d cycle %d" memory cj))
                  | None -> Hashtbl.add reads rkey (`Node p));
                  let wkey = (memory, cp) in
                  (* Several consumers of the same spilled value share one
                     write; only distinct values conflict. *)
                  (match Hashtbl.find_opt writes wkey with
                  | Some p' when p' <> p ->
                      raise
                        (Bad
                           (Printf.sprintf "write port conflict on memory %d cycle %d" memory cp))
                  | _ -> Hashtbl.replace writes wkey p))
          | _ -> raise (Bad (Printf.sprintf "node %d operand %d source kind mismatch" j k)))
        srcs
    done;
    (* Bus capacity per cycle. *)
    let per_cycle = Array.make (max cycles 1) 0 in
    Hashtbl.iter (fun (c, _) () -> per_cycle.(c) <- per_cycle.(c) + 1) bus_used;
    Array.iteri
      (fun c used ->
        if used > tile.Tile.bus_count then
          raise (Bad (Printf.sprintf "cycle %d uses %d buses" c used)))
      per_cycle;
    (* Register pressure: each live (alu, value) occupies one register from
       production+1 to last use. *)
    let pressure = Array.make_matrix tile.Tile.alu_count (max cycles 1) 0 in
    Hashtbl.iter
      (fun (alu, p) last ->
        for c = Schedule.cycle_of schedule p + 1 to last do
          pressure.(alu).(c) <- pressure.(alu).(c) + 1
        done)
      reg_live;
    Array.iteri
      (fun alu row ->
        Array.iteri
          (fun c k ->
            if k > tile.Tile.registers_per_alu then
              raise
                (Bad
                   (Printf.sprintf "ALU %d holds %d registers at cycle %d" alu k c)))
          row)
      pressure;
    Ok ()
  with Bad m -> Error m

let pp program ppf t =
  let g = Program.dfg program in
  Format.fprintf ppf "@[<v>";
  Dfg.iter_nodes
    (fun i ->
      Format.fprintf ppf "%s -> ALU%d@," (Dfg.name g i) t.alus.(i))
    g;
  let s = t.stats in
  Format.fprintf ppf
    "stats: %d bus transfers, %d spills, peak buses %d, peak regs %d, %d input reads@,"
    s.bus_transfers s.spills s.peak_bus_use s.peak_registers s.input_reads;
  Format.fprintf ppf "@]"
