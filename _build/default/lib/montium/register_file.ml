module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Schedule = Mps_scheduler.Schedule

type t = {
  registers : (int * int, int) Hashtbl.t; (* (producer, consumer_alu) -> index *)
  spills : (int * int, int) Hashtbl.t; (* (producer, memory) -> address *)
  inputs : (string * int, int) Hashtbl.t; (* (input, memory) -> address *)
  regs_used : int array;
  words_used : int array;
}

let register_of t ~producer ~consumer_alu =
  Hashtbl.find_opt t.registers (producer, consumer_alu)

let spill_address_of t ~producer ~memory = Hashtbl.find_opt t.spills (producer, memory)
let input_address_of t ~input ~memory = Hashtbl.find_opt t.inputs (input, memory)
let registers_used t = Array.copy t.regs_used
let memory_words_used t = Array.copy t.words_used

(* Lifetimes of register-resident values per ALU, then linear scan. *)
let assign ?(tile = Tile.default) program schedule alloc =
  match Allocation.validate ~tile program schedule alloc with
  | Error m -> Error (Printf.sprintf "allocation invalid: %s" m)
  | Ok () ->
      let g = Program.dfg program in
      let n = Dfg.node_count g in
      let registers = Hashtbl.create 64 in
      let spills = Hashtbl.create 16 in
      let inputs = Hashtbl.create 16 in
      let regs_used = Array.make tile.Tile.alu_count 0 in
      let words_used = Array.make (Tile.memory_count tile) 0 in
      (* Collect, per (producer, consumer alu), the lifetime [start, stop];
         per (producer, memory) and (input, memory) the read cycles. *)
      let reg_live = Hashtbl.create 64 in
      let spill_reads = Hashtbl.create 16 in
      let input_seen = Hashtbl.create 16 in
      for j = 0 to n - 1 do
        let cj = Schedule.cycle_of schedule j in
        let alu_j = Allocation.alu_of alloc j in
        let { Program.operands; _ } = Program.instruction program j in
        Array.iteri
          (fun k src ->
            match src with
            | Allocation.From_node { producer; route = Allocation.Register _ } ->
                let key = (producer, alu_j) in
                let stop =
                  max cj (Option.value (Hashtbl.find_opt reg_live key) ~default:0)
                in
                Hashtbl.replace reg_live key stop
            | Allocation.From_node { producer; route = Allocation.Spill { memory; _ } }
              ->
                let key = (producer, memory) in
                let reads =
                  Option.value (Hashtbl.find_opt spill_reads key) ~default:[]
                in
                Hashtbl.replace spill_reads key (cj :: reads)
            | Allocation.From_input { memory } -> (
                match operands.(k) with
                | Program.Input name -> Hashtbl.replace input_seen (name, memory) ()
                | Program.Literal _ | Program.Node _ -> ())
            | Allocation.From_node { route = Allocation.Feedback; _ }
            | Allocation.From_literal ->
                ())
          (Allocation.sources alloc j)
      done;
      (* Linear scan per ALU: sort lifetimes by start, reuse freed indices. *)
      let by_alu = Array.make tile.Tile.alu_count [] in
      Hashtbl.iter
        (fun (producer, alu) stop ->
          let start = Schedule.cycle_of schedule producer + 1 in
          by_alu.(alu) <- (start, stop, producer) :: by_alu.(alu))
        reg_live;
      Array.iteri
        (fun alu lives ->
          let lives = List.sort compare lives in
          (* active: (stop, index) list *)
          let active = ref [] in
          let free = ref [] in
          let next = ref 0 in
          List.iter
            (fun (start, stop, producer) ->
              let expired, kept =
                List.partition (fun (s, _) -> s < start) !active
              in
              active := kept;
              free := List.map snd expired @ !free;
              let index =
                match !free with
                | i :: rest ->
                    free := rest;
                    i
                | [] ->
                    let i = !next in
                    incr next;
                    i
              in
              active := (stop, index) :: !active;
              Hashtbl.replace registers (producer, alu) index)
            lives;
          regs_used.(alu) <- !next)
        by_alu;
      (* Memory layout: inputs first (name order), then spills (bump with
         reuse after last read). *)
      let overflow = ref None in
      let bump memory =
        let a = words_used.(memory) in
        words_used.(memory) <- a + 1;
        if a >= tile.Tile.memory_words && !overflow = None then
          overflow := Some memory;
        a
      in
      Hashtbl.fold (fun key () acc -> key :: acc) input_seen []
      |> List.sort compare
      |> List.iter (fun (name, memory) ->
             Hashtbl.replace inputs (name, memory) (bump memory));
      (* Spills: process in producer cycle order; free list per memory keyed
         by last read cycle. *)
      let spill_list =
        Hashtbl.fold (fun key reads acc -> (key, reads) :: acc) spill_reads []
        |> List.map (fun ((producer, memory), reads) ->
               ( Schedule.cycle_of schedule producer,
                 List.fold_left max 0 reads,
                 producer,
                 memory ))
        |> List.sort compare
      in
      let mem_free = Hashtbl.create 16 in (* memory -> (free_at, addr) list *)
      List.iter
        (fun (write_cycle, last_read, producer, memory) ->
          let pool = Option.value (Hashtbl.find_opt mem_free memory) ~default:[] in
          let usable, still = List.partition (fun (f, _) -> f < write_cycle) pool in
          let addr, usable =
            match usable with
            | (_, a) :: rest -> (a, rest)
            | [] -> (bump memory, [])
          in
          Hashtbl.replace mem_free memory ((last_read + 1, addr) :: usable @ still);
          Hashtbl.replace spills (producer, memory) addr)
        spill_list;
      (match !overflow with
      | Some memory ->
          Error (Printf.sprintf "memory %d overflows its %d words" memory tile.Tile.memory_words)
      | None ->
          Ok { registers; spills; inputs; regs_used; words_used })
