module Opcode = Mps_frontend.Opcode

type operand =
  | Literal of float
  | Memory of int * int
  | Register of int (* index within the instruction's own ALU file *)
  | Feedback

type dest =
  | Dest_register of { index : int; alu : int }
  | Dest_memory of int * int

type instruction = {
  alu : int;
  opcode : Opcode.t;
  operands : operand list;
  dests : dest list;
  name : string; (* trailing comment: the node's name *)
}

type t = {
  patterns : string list;
  preload : (int * int, string) Hashtbl.t; (* memory cell -> input name *)
  cycles : instruction list array;
}

let instruction_count t =
  Array.fold_left (fun acc c -> acc + List.length c) 0 t.cycles

let cycle_count t = Array.length t.cycles
let pattern_table t = t.patterns

let strip s = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "M3[12]" -> (3, 12) *)
let parse_cell s =
  try
    Scanf.sscanf s "M%d[%d]" (fun m a -> Some (m, a))
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let parse_operand s =
  let s = strip s in
  if s = "fb" then Some Feedback
  else if starts_with "#" s then
    Option.map (fun f -> Literal f) (float_of_string_opt (String.sub s 1 (String.length s - 1)))
  else if starts_with "r" s then
    Option.map (fun i -> Register i) (int_of_string_opt (String.sub s 1 (String.length s - 1)))
  else Option.map (fun (m, a) -> Memory (m, a)) (parse_cell s)

let parse_dest s =
  let s = strip s in
  match String.index_opt s '@' with
  | Some at ->
      let reg = String.sub s 0 at and alu = String.sub s (at + 1) (String.length s - at - 1) in
      if starts_with "r" reg && starts_with "alu" alu then
        match
          ( int_of_string_opt (String.sub reg 1 (String.length reg - 1)),
            int_of_string_opt (String.sub alu 3 (String.length alu - 3)) )
        with
        | Some index, Some alu -> Some (Dest_register { index; alu })
        | _ -> None
      else None
  | None -> Option.map (fun (m, a) -> Dest_memory (m, a)) (parse_cell s)

let split_on_string sep s =
  (* Split [s] on the first occurrence of [sep]. *)
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + m) (n - i - m)))

let parse_instruction lineno line =
  (* "  alu2: add  M0[0], r1 -> r3@alu2, M5[1] ; a4" *)
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let body, comment = split_on_string ";" line in
  let name = match comment with Some c -> strip c | None -> "" in
  match split_on_string ":" (strip body) with
  | _, None -> fail "missing ':' after alu"
  | alu_txt, Some rest -> (
      if not (starts_with "alu" alu_txt) then fail "expected aluN"
      else
        match int_of_string_opt (String.sub alu_txt 3 (String.length alu_txt - 3)) with
        | None -> fail "bad alu index"
        | Some alu -> (
            let rest = strip rest in
            match String.index_opt rest ' ' with
            | None -> fail "missing opcode/operands"
            | Some sp -> (
                let op_txt = String.sub rest 0 sp in
                let tail = strip (String.sub rest sp (String.length rest - sp)) in
                match Opcode.of_string op_txt with
                | None -> fail (Printf.sprintf "unknown opcode %S" op_txt)
                | Some opcode -> (
                    let args_txt, dests_txt = split_on_string "->" tail in
                    let operands =
                      String.split_on_char ',' (strip args_txt)
                      |> List.filter (fun s -> strip s <> "")
                      |> List.map parse_operand
                    in
                    let dests =
                      match dests_txt with
                      | None -> Some []
                      | Some d ->
                          let parsed =
                            String.split_on_char ',' d
                            |> List.filter (fun s -> strip s <> "")
                            |> List.map parse_dest
                          in
                          if List.for_all Option.is_some parsed then
                            Some (List.map Option.get parsed)
                          else None
                    in
                    match (List.for_all Option.is_some operands, dests) with
                    | true, Some dests ->
                        Ok
                          {
                            alu;
                            opcode;
                            operands = List.map Option.get operands;
                            dests;
                            name;
                          }
                    | _ -> fail "unparsable operand or destination"))))

let load text =
  let lines = String.split_on_char '\n' text in
  let patterns = ref [] in
  let preload = Hashtbl.create 16 in
  let cycles = ref [] in (* reversed list of reversed instruction lists *)
  let section = ref `Preamble in
  let error = ref None in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      if !error = None then
        if starts_with ".patterns" raw then section := `Patterns
        else if starts_with ".inputs" raw then section := `Inputs
        else if starts_with ".code" raw then section := `Code
        else if starts_with ".tile" raw || starts_with ";" raw || strip raw = "" then ()
        else
          match !section with
          | `Patterns ->
              (match String.split_on_char ' ' (strip raw) with
              | [ _label; spelling ] -> patterns := spelling :: !patterns
              | _ -> error := Some (Printf.sprintf "line %d: bad pattern entry" lineno))
          | `Inputs -> (
              match split_on_string "=" raw with
              | cell_txt, Some name -> (
                  match parse_cell (strip cell_txt) with
                  | Some cell -> Hashtbl.replace preload cell (strip name)
                  | None -> error := Some (Printf.sprintf "line %d: bad input cell" lineno))
              | _ -> error := Some (Printf.sprintf "line %d: bad input line" lineno))
          | `Code ->
              if starts_with "cycle " raw then cycles := [] :: !cycles
              else if starts_with "  alu" raw then begin
                match (!cycles, parse_instruction lineno raw) with
                | current :: rest, Ok instr -> cycles := (instr :: current) :: rest
                | [], _ -> error := Some (Printf.sprintf "line %d: code before cycle" lineno)
                | _, Error m -> error := Some m
              end
              else error := Some (Printf.sprintf "line %d: unrecognized code line" lineno)
          | `Preamble -> error := Some (Printf.sprintf "line %d: text before sections" lineno))
    lines;
  match !error with
  | Some m -> Error m
  | None ->
      Ok
        {
          patterns = List.rev !patterns;
          preload;
          (* !cycles is newest-first with newest-first instructions;
             rev_map undoes both at once. *)
          cycles = Array.of_list (List.rev_map List.rev !cycles);
        }

let run t ~env =
  let exception Stuck of string in
  try
    let regs : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let mems : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let fb : (int, float) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter (fun cell name -> Hashtbl.replace mems cell (env name)) t.preload;
    let results = ref [] in
    Array.iter
      (fun instrs ->
        (* Read phase: all ALUs fetch against the pre-cycle state. *)
        let computed =
          List.map
            (fun instr ->
              let fetch = function
                | Literal f -> f
                | Feedback -> (
                    match Hashtbl.find_opt fb instr.alu with
                    | Some v -> v
                    | None -> raise (Stuck (instr.name ^ ": empty feedback register")))
                | Register index -> (
                    match Hashtbl.find_opt regs (instr.alu, index) with
                    | Some v -> v
                    | None ->
                        raise
                          (Stuck
                             (Printf.sprintf "%s: register r%d@alu%d empty" instr.name
                                index instr.alu)))
                | Memory (m, a) -> (
                    match Hashtbl.find_opt mems (m, a) with
                    | Some v -> v
                    | None ->
                        raise
                          (Stuck (Printf.sprintf "%s: memory M%d[%d] empty" instr.name m a)))
              in
              let args = Array.of_list (List.map fetch instr.operands) in
              (instr, Opcode.eval instr.opcode args))
            instrs
        in
        (* Write phase. *)
        List.iter
          (fun (instr, v) ->
            Hashtbl.replace fb instr.alu v;
            List.iter
              (function
                | Dest_register { index; alu } -> Hashtbl.replace regs (alu, index) v
                | Dest_memory (m, a) -> Hashtbl.replace mems (m, a) v)
              instr.dests;
            if instr.name <> "" then results := (instr.name, v) :: !results)
          computed)
      t.cycles;
    Ok (List.rev !results)
  with
  | Stuck m -> Error m
  | Not_found -> Error "unbound input name"
