(** 16-bit fixed-point arithmetic — the Montium's actual datapath.

    The float semantics used elsewhere keeps tests simple; this module
    answers the question a DSP engineer asks before committing a kernel to
    the tile: {e what does 16-bit Qm.f arithmetic do to my numbers?}
    Values are signed 16-bit integers interpreted as Q(15−f).f; additions
    saturate; multiplications round-to-nearest on the f-bit renormalizing
    shift, then saturate.  The evaluator runs any {!Mps_frontend.Program.t}
    under these semantics so kernels can be compared against their float
    reference output, and the precision ablation sweeps f. *)

type format = { frac_bits : int }

val q : int -> format
(** [q f] for f ∈ [0, 15].  @raise Invalid_argument otherwise. *)

val quantize : format -> float -> int
(** Nearest representable raw value, saturating to the 16-bit range. *)

val dequantize : format -> int -> float

val saturating_add : int -> int -> int
val saturating_sub : int -> int -> int

val saturating_mul : format -> int -> int -> int
(** Full 32-bit product, round-half-away on the renormalizing shift,
    saturate. *)

val eval :
  format ->
  Mps_frontend.Program.t ->
  env:(string -> float) ->
  (string * float) list
(** Quantizes the inputs, runs every instruction in fixed point (bitwise
    and shift operations act on the raw integers; min/max compare raw
    values, which matches numeric order for a shared format), dequantizes
    the outputs. *)

type error_report = {
  max_abs : float;
  max_rel : float;  (** Relative to max(1, |reference|). *)
  saturated : bool;  (** Some intermediate hit the rails. *)
}

val compare_against_float :
  format -> Mps_frontend.Program.t -> env:(string -> float) -> error_report
(** Fixed-point vs the float reference on the same inputs. *)
