module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode
module Schedule = Mps_scheduler.Schedule

type costs = {
  op_add : float;
  op_mul : float;
  op_other : float;
  bus_transfer : float;
  memory_access : float;
  register_write : float;
  reconfiguration : float;
  idle_alu_cycle : float;
}

let default_costs =
  {
    op_add = 1.0;
    op_mul = 3.0;
    op_other = 1.0;
    bus_transfer = 0.8;
    memory_access = 2.5;
    register_write = 0.3;
    reconfiguration = 100.0;
    idle_alu_cycle = 0.1;
  }

type breakdown = {
  operations : float;
  transfers : float;
  memory : float;
  reconfig : float;
  idle : float;
  total : float;
}

let op_cost costs = function
  | Opcode.Add | Opcode.Sub | Opcode.Neg -> costs.op_add
  | Opcode.Mul | Opcode.Mac -> costs.op_mul
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Min
  | Opcode.Max ->
      costs.op_other

let estimate ?(costs = default_costs) ?(tile = Tile.default) program schedule alloc =
  let g = Program.dfg program in
  let n = Dfg.node_count g in
  let operations = ref 0.0 in
  for i = 0 to n - 1 do
    let { Program.opcode; _ } = Program.instruction program i in
    operations := !operations +. op_cost costs opcode
  done;
  let s = Allocation.stats alloc in
  let transfers = float_of_int s.Allocation.bus_transfers *. costs.bus_transfer in
  (* Each spill is one write plus at least one read; input reads are reads;
     every register-routed value costs one register write. *)
  let register_writes = ref 0 in
  let memory_accesses = ref (s.Allocation.input_reads + (2 * s.Allocation.spills)) in
  for j = 0 to n - 1 do
    Array.iter
      (function
        | Allocation.From_node { route = Allocation.Register _; _ } ->
            incr register_writes
        | Allocation.From_node _ | Allocation.From_literal | Allocation.From_input _ ->
            ())
      (Allocation.sources alloc j)
  done;
  let memory = float_of_int !memory_accesses *. costs.memory_access in
  let registers = float_of_int !register_writes *. costs.register_write in
  let cfg = Config_space.of_schedule ~tile schedule in
  let reconfig = float_of_int cfg.Config_space.reconfigurations *. costs.reconfiguration in
  let idle_slots = (Schedule.cycles schedule * tile.Tile.alu_count) - n in
  let idle = float_of_int (max 0 idle_slots) *. costs.idle_alu_cycle in
  let operations = !operations +. registers in
  {
    operations;
    transfers;
    memory;
    reconfig;
    idle;
    total = operations +. transfers +. memory +. reconfig +. idle;
  }

let pp ppf b =
  Format.fprintf ppf
    "energy: ops %.1f + transfers %.1f + memory %.1f + reconfig %.1f + idle %.1f = %.1f"
    b.operations b.transfers b.memory b.reconfig b.idle b.total
