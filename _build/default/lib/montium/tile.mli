(** The Montium processor tile (paper §1, Fig. 1).

    One tile contains five reconfigurable ALUs, each flanked by two local
    memories; ALU inputs read from small local register files, results
    travel over a crossbar of global buses.  The tile executes one pattern
    per clock cycle, and an application may use at most 32 distinct
    patterns (the configuration-space restriction that motivates the whole
    paper).

    The numbers are exposed as a record so experiments can shrink or grow
    the tile (e.g. a 3-ALU ablation); [default] is the published Montium. *)

type t = {
  alu_count : int;  (** C, the pattern capacity — 5. *)
  bus_count : int;  (** Global buses in the crossbar — 10. *)
  registers_per_alu : int;
      (** Register-file entries local to one ALU (4 banks × 4 words) — 16. *)
  memories_per_alu : int;  (** Local memories flanking each ALU — 2. *)
  memory_words : int;  (** Words per local memory — 512. *)
  max_configs : int;  (** Distinct patterns allowed per application — 32. *)
}

val default : t

val validate : t -> (unit, string) result
(** Sanity: every count positive, at least one memory per ALU. *)

val memory_count : t -> int
(** Total local memories: [alu_count × memories_per_alu]. *)

val memory_of : t -> alu:int -> port:int -> int
(** Global index of the ALU-local memory backing operand position [port].
    @raise Invalid_argument if the alu or port is out of range. *)

val pp : Format.formatter -> t -> unit
