(** First-order energy model for a mapped application.

    The Montium's pitch is energy efficiency (paper §1, [2]); this model
    makes the cost of a mapping visible so the ablations can ask questions
    like "does a smaller pattern table pay for longer schedules?".  Costs
    are in arbitrary energy units per event; the defaults reflect the usual
    CGRA ordering: memory access ≳ multiplier op > adder op ≈ bus hop >
    idle, with reconfiguration two orders above an op (loading a new
    one-cycle configuration word into the sequencer).  Absolute numbers are
    a modeling assumption, documented here, not a paper artifact. *)

type costs = {
  op_add : float;  (** Adder-class operation ('a'/'b' colors). *)
  op_mul : float;  (** Multiplier-class operation. *)
  op_other : float;
  bus_transfer : float;
  memory_access : float;  (** One read or write, spills and inputs alike. *)
  register_write : float;
  reconfiguration : float;
  idle_alu_cycle : float;
}

val default_costs : costs

type breakdown = {
  operations : float;
  transfers : float;
  memory : float;
  reconfig : float;
  idle : float;
  total : float;
}

val estimate :
  ?costs:costs ->
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  breakdown

val pp : Format.formatter -> breakdown -> unit
