lib/montium/allocation.ml: Array Format Hashtbl Int List Mps_dfg Mps_frontend Mps_scheduler Option Printf Tile
