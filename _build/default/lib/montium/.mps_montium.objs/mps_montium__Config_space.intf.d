lib/montium/config_space.mli: Format Mps_pattern Mps_scheduler Tile
