lib/montium/energy.mli: Allocation Format Mps_frontend Mps_scheduler Tile
