lib/montium/simulator.ml: Allocation Array Float Hashtbl List Mps_dfg Mps_frontend Mps_scheduler Printf Tile
