lib/montium/allocation.mli: Format Mps_frontend Mps_scheduler Tile
