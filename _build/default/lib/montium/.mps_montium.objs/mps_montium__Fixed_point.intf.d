lib/montium/fixed_point.mli: Mps_frontend
