lib/montium/codegen.mli: Allocation Mps_frontend Mps_scheduler Register_file Tile
