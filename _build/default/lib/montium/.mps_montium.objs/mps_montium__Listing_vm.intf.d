lib/montium/listing_vm.mli:
