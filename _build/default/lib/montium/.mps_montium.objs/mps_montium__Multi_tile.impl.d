lib/montium/multi_tile.ml: Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Mps_select Printf
