lib/montium/tile.ml: Format Printf
