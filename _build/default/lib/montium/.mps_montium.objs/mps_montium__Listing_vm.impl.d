lib/montium/listing_vm.ml: Array Hashtbl List Mps_frontend Option Printf Scanf String
