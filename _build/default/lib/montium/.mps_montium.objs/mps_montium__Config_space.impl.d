lib/montium/config_space.ml: Array Format List Mps_pattern Mps_scheduler Tile
