lib/montium/tile.mli: Format
