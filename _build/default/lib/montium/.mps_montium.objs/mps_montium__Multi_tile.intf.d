lib/montium/multi_tile.mli: Mps_dfg Mps_pattern
