lib/montium/codegen.ml: Allocation Array Buffer Config_space List Mps_dfg Mps_frontend Mps_pattern Mps_scheduler Option Printf Register_file String Tile
