lib/montium/simulator.mli: Allocation Mps_frontend Mps_scheduler Tile
