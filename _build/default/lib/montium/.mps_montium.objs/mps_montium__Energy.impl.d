lib/montium/energy.ml: Allocation Array Config_space Format Mps_dfg Mps_frontend Mps_scheduler Tile
