lib/montium/register_file.ml: Allocation Array Hashtbl List Mps_dfg Mps_frontend Mps_scheduler Option Printf Tile
