lib/montium/register_file.mli: Allocation Mps_frontend Mps_scheduler Tile
