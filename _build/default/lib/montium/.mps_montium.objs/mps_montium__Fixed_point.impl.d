lib/montium/fixed_point.ml: Array Float List Mps_dfg Mps_frontend
