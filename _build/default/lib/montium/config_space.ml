module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule

type t = {
  patterns : Pattern.t list;
  table_size : int;
  fits : bool;
  reconfigurations : int;
  cycle_index : int array;
}

let of_schedule ?(tile = Tile.default) schedule =
  let patterns = Schedule.distinct_patterns schedule in
  let table_size = List.length patterns in
  let index_of p =
    let rec go i = function
      | [] -> assert false
      | q :: rest -> if Pattern.equal p q then i else go (i + 1) rest
    in
    go 0 patterns
  in
  let cycles = Schedule.cycles schedule in
  let cycle_index =
    Array.init cycles (fun c -> index_of (Schedule.pattern_at schedule c))
  in
  let reconfigurations = ref 0 in
  for c = 1 to cycles - 1 do
    if cycle_index.(c) <> cycle_index.(c - 1) then incr reconfigurations
  done;
  {
    patterns;
    table_size;
    fits = table_size <= tile.Tile.max_configs;
    reconfigurations = !reconfigurations;
    cycle_index;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>config table (%d entr%s, %s):@," t.table_size
    (if t.table_size = 1 then "y" else "ies")
    (if t.fits then "fits" else "OVERFLOWS");
  List.iteri (fun i p -> Format.fprintf ppf "  %d: %a@," i Pattern.pp p) t.patterns;
  Format.fprintf ppf "%d reconfigurations@]" t.reconfigurations
