module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode
module Dfg = Mps_dfg.Dfg
module Topo = Mps_dfg.Topo

type format = { frac_bits : int }

let q f =
  if f < 0 || f > 15 then invalid_arg "Fixed_point.q: frac_bits outside [0,15]";
  { frac_bits = f }

let min_raw = -32768
let max_raw = 32767

let saturate_flag = ref false

let saturate x =
  if x > max_raw then begin
    saturate_flag := true;
    max_raw
  end
  else if x < min_raw then begin
    saturate_flag := true;
    min_raw
  end
  else x

let quantize fmt v =
  let scaled = v *. float_of_int (1 lsl fmt.frac_bits) in
  saturate (int_of_float (Float.round scaled))

let dequantize fmt raw = float_of_int raw /. float_of_int (1 lsl fmt.frac_bits)

let saturating_add a b = saturate (a + b)
let saturating_sub a b = saturate (a - b)

let saturating_mul fmt a b =
  let product = a * b in
  let half = 1 lsl (max 0 (fmt.frac_bits - 1)) in
  let rounded =
    if fmt.frac_bits = 0 then product
    else if product >= 0 then (product + half) asr fmt.frac_bits
    else -((-product + half) asr fmt.frac_bits)
  in
  saturate rounded

(* Bitwise results re-signed to 16 bits (the datapath registers are 16-bit
   two's complement). *)
let to_signed16 x =
  let x = x land 0xFFFF in
  if x land 0x8000 <> 0 then x - 0x10000 else x

let eval_op fmt op args =
  match (op, args) with
  | Opcode.Add, [| a; b |] -> saturating_add a b
  | Opcode.Sub, [| a; b |] -> saturating_sub a b
  | Opcode.Mul, [| a; b |] -> saturating_mul fmt a b
  | Opcode.Neg, [| a |] -> saturate (-a)
  | Opcode.And, [| a; b |] -> to_signed16 (a land b)
  | Opcode.Or, [| a; b |] -> to_signed16 (a lor b)
  | Opcode.Xor, [| a; b |] -> to_signed16 (a lxor b)
  | Opcode.Shl, [| a; b |] -> saturate (a lsl (b land 15))
  | Opcode.Shr, [| a; b |] -> a asr (b land 15)
  | Opcode.Min, [| a; b |] -> min a b
  | Opcode.Max, [| a; b |] -> max a b
  | Opcode.Mac, [| a; b; c |] -> saturating_add (saturating_mul fmt a b) c
  | _ -> invalid_arg "Fixed_point.eval: operand count mismatch"

let eval fmt program ~env =
  saturate_flag := false;
  let g = Program.dfg program in
  let values = Array.make (Dfg.node_count g) 0 in
  List.iter
    (fun i ->
      let { Program.opcode; operands } = Program.instruction program i in
      let quantize_operand k op =
        match op with
        | Program.Input name -> quantize fmt (env name)
        | Program.Node j -> values.(j)
        | Program.Literal f -> (
            match opcode with
            (* Shift counts are raw integers, not Q-format samples. *)
            | Opcode.Shl | Opcode.Shr when k = 1 -> int_of_float f
            | _ -> quantize fmt f)
      in
      let args = Array.mapi quantize_operand operands in
      values.(i) <- eval_op fmt opcode args)
    (Topo.order g);
  List.map (fun (name, i) -> (name, dequantize fmt values.(i))) (Program.outputs program)

type error_report = {
  max_abs : float;
  max_rel : float;
  saturated : bool;
}

let compare_against_float fmt program ~env =
  let fixed = eval fmt program ~env in
  let saturated = !saturate_flag in
  let reference = Program.eval ~env program in
  let max_abs = ref 0.0 and max_rel = ref 0.0 in
  List.iter2
    (fun (n1, fx) (n2, fl) ->
      assert (n1 = n2);
      let abs_err = Float.abs (fx -. fl) in
      max_abs := Float.max !max_abs abs_err;
      max_rel := Float.max !max_rel (abs_err /. Float.max 1.0 (Float.abs fl)))
    fixed reference;
  { max_abs = !max_abs; max_rel = !max_rel; saturated }
