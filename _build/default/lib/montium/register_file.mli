(** Concrete storage assignment: from the allocation's {e routing} decisions
    to physical register indices and memory addresses.

    {!Allocation} decides {e where} each value travels (feedback path,
    consumer register file, consumer-local memory) and proves the counts
    fit; this module pins the actual slots, the last step before code
    generation:

    - register-routed values get an index in the consumer ALU's register
      file by linear scan over lifetimes (production+1 to last use) — two
      values overlap in time ⟺ they get different indices;
    - spilled values get a word address in their memory, bump-allocated
      with reuse after the value's last read;
    - external inputs get stable word addresses per memory, assigned in
      name order (the "preload image" a host would DMA in). *)

type t

val register_of : t -> producer:int -> consumer_alu:int -> int option
(** Register index holding the producer's value in that ALU's file, if the
    route was [Register]. *)

val spill_address_of : t -> producer:int -> memory:int -> int option
val input_address_of : t -> input:string -> memory:int -> int option

val registers_used : t -> int array
(** Per ALU, the number of distinct register indices touched. *)

val memory_words_used : t -> int array
(** Per memory, the high-water word address + 1 (inputs + spills). *)

val assign :
  ?tile:Tile.t ->
  Mps_frontend.Program.t ->
  Mps_scheduler.Schedule.t ->
  Allocation.t ->
  (t, string) result
(** Fails only if a memory overflows its word count (register fit is
    guaranteed by {!Allocation.validate}, which this re-runs first). *)
